// Refinement session: replays the paper's core scenario on a calibrated
// synthetic collection. A "user" starts from a three-term query and keeps
// adding terms (ADD-ONLY); the same session is executed on two systems —
// the conventional stack (DF over LRU buffers) and the paper's stack
// (BAF over RAP buffers) — and the per-refinement disk reads are shown
// side by side.
//
//   $ ./examples/refinement_session [scale]      # default scale 0.05

#include <cstdio>
#include <cstdlib>

#include "corpus/synthetic_corpus.h"
#include "ir/experiment.h"
#include "metrics/effectiveness.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  if (scale <= 0.0 || scale > 1.0) scale = 0.05;

  corpus::CorpusOptions corpus_options;
  corpus_options.scale = scale;
  corpus_options.num_random_topics = 4;
  std::printf("generating a WSJ-calibrated collection at scale %.2f...\n",
              scale);
  auto corpus = corpus::GenerateSyntheticCorpus(corpus_options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  const index::InvertedIndex& index = corpus.value()->index();
  const corpus::Topic& topic = corpus.value()->topics()[0];  // QUERY1.
  std::printf("collection: %u docs, %zu terms, %llu pages; topic: %s\n",
              index.num_docs(), index.lexicon().size(),
              static_cast<unsigned long long>(index.total_pages()),
              topic.title.c_str());

  auto sequence = workload::BuildRefinementSequence(
      topic.title, topic.query, index, workload::RefinementKind::kAddOnly);
  if (!sequence.ok()) {
    std::fprintf(stderr, "workload failed\n");
    return 1;
  }

  uint64_t working_set = ir::SequenceWorkingSetPages(index,
                                                     sequence.value());
  size_t buffers = working_set / 4 + 1;  // Deliberately tight.
  std::printf("session: %zu refinements, %llu-page working set, "
              "%zu buffer pages\n\n",
              sequence.value().steps.size(),
              static_cast<unsigned long long>(working_set), buffers);

  ir::SequenceRunOptions classic;
  classic.buffer_pages = buffers;  // DF + LRU.
  ir::SequenceRunOptions paper;
  paper.buffer_pages = buffers;
  paper.buffer_aware = true;
  paper.policy = buffer::PolicyKind::kRap;

  auto classic_run = ir::RunRefinementSequence(
      index, sequence.value(), topic.relevant_docs, classic);
  auto paper_run = ir::RunRefinementSequence(
      index, sequence.value(), topic.relevant_docs, paper);
  if (!classic_run.ok() || !paper_run.ok()) {
    std::fprintf(stderr, "session failed\n");
    return 1;
  }

  AsciiTable table({"refinement", "terms", "reads DF/LRU",
                    "reads BAF/RAP", "saved", "AP DF", "AP BAF"});
  for (size_t s = 0; s < sequence.value().steps.size(); ++s) {
    const auto& step = sequence.value().steps[s];
    const auto& a = classic_run.value().steps[s];
    const auto& b = paper_run.value().steps[s];
    double saved =
        a.disk_reads == 0
            ? 0.0
            : 1.0 - static_cast<double>(b.disk_reads) /
                        static_cast<double>(a.disk_reads);
    table.AddRow({
        StrFormat("#%zu (+%zu terms)", s + 1, step.added_terms.size()),
        StrFormat("%zu", step.query.size()),
        StrFormat("%llu", static_cast<unsigned long long>(a.disk_reads)),
        StrFormat("%llu", static_cast<unsigned long long>(b.disk_reads)),
        StrFormat("%.0f%%", saved * 100.0),
        StrFormat("%.3f", a.avg_precision),
        StrFormat("%.3f", b.avg_precision),
    });
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("totals: DF/LRU %llu reads, BAF/RAP %llu reads (%.0f%% "
              "saved); effectiveness unchanged\n",
              static_cast<unsigned long long>(
                  classic_run.value().total_disk_reads),
              static_cast<unsigned long long>(
                  paper_run.value().total_disk_reads),
              (1.0 - static_cast<double>(
                         paper_run.value().total_disk_reads) /
                         static_cast<double>(
                             classic_run.value().total_disk_reads)) *
                  100.0);
  return 0;
}
