// irbuf_cli: a small command-line front end to the library — generate and
// persist calibrated collections, inspect them, and run single queries or
// whole refinement sequences under any (algorithm, policy, buffer-size)
// configuration.
//
//   irbuf_cli generate --scale 0.1 --out corpus.irbc
//   irbuf_cli stats corpus.irbc
//   irbuf_cli topics corpus.irbc
//   irbuf_cli query corpus.irbc --topic 0 --policy rap --baf --buffers 200
//   irbuf_cli refine corpus.irbc --topic 1 --kind add-drop --policy mru
//   irbuf_cli serve corpus.irbc --threads 4 --users 8 --queue-depth 8
//
// Observability: --trace prints the structured per-query event timeline
// (phase transitions, hit/miss-tagged fetches, evictions with victim
// metadata, Smax updates); --telemetry FILE writes the machine-readable
// JSON (run summary + trace + metrics-registry snapshot) to FILE.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <atomic>
#include <chrono>
#include <thread>

#include "corpus/corpus_io.h"
#include "fault/fault_injector.h"
#include "fault/fault_spec.h"
#include "ir/experiment.h"
#include "metrics/effectiveness.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/query_tracer.h"
#include "obs/span.h"
#include "serve/query_server.h"
#include "shard/index_sharder.h"
#include "shard/sharded_engine.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

namespace {

struct Args {
  std::string command;
  std::string file;
  double scale = 0.05;
  std::string out = "corpus.irbc";
  int topic = 0;
  std::string policy = "lru";
  bool baf = false;
  size_t buffers = 200;
  std::string kind = "add-only";
  bool trace = false;
  std::string telemetry;  // output path; empty = no JSON export
  // Fault injection / resilience (refine and serve commands).
  std::string fault_spec;     // JSON FaultSpec; empty = no injection.
  uint64_t deadline_ms = 0;   // per-query deadline; 0 = none.
  // Overload control (serve): deadline-aware queued-shed + brownout.
  bool overload = false;
  double shed_factor = 1.0;
  // serve command.
  size_t threads = 4;
  size_t users = 4;
  size_t queue_depth = 0;  // 0 = users.
  size_t loops = 1;
  uint32_t delay_us = 500;
  /// Readahead slots per pool (serve). 0 = synchronous miss path.
  size_t prefetch_depth = 0;
  bool shared_context = false;
  /// Doc-range shards (serve). 1 = the classic single-pool path; N > 1
  /// partitions the index and serves scatter-gather over N per-shard
  /// buffer pools (shard/sharded_engine.h).
  size_t shards = 1;
  /// Chrome trace_event output path (serve); empty = spans off.
  std::string trace_spans;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  irbuf_cli generate [--scale S] [--out FILE]\n"
      "  irbuf_cli stats FILE\n"
      "  irbuf_cli topics FILE\n"
      "  irbuf_cli query FILE [--topic N] [--policy P] [--baf] "
      "[--buffers B] [--trace] [--telemetry OUT]\n"
      "  irbuf_cli refine FILE [--topic N] [--kind add-only|add-drop] "
      "[--policy P] [--baf] [--buffers B] [--trace] [--telemetry OUT]\n"
      "  irbuf_cli serve FILE [--threads N] [--users N] [--queue-depth N] "
      "[--loops N] [--delay-us N] [--policy P] [--baf] [--shared-context] "
      "[--buffers B] [--shards N] [--prefetch-depth N] [--telemetry OUT] "
      "[--trace-spans OUT]\n"
      "policies: lru mru rap lru-2 2q clock fifo\n"
      "--shards N (serve) partitions the index into N doc-range shards, "
      "each with its own buffer pool and policy instance, and serves "
      "queries scatter-gather; --buffers is the TOTAL page budget, split "
      "evenly\n"
      "--prefetch-depth N (serve) arms the async miss pipeline: N "
      "background I/O workers per pool service the evaluators' "
      "page-access plans so list pages are read ahead of the scan "
      "(default 0 = synchronous misses; 4 is a good start at 2ms "
      "device delay)\n"
      "--trace prints the per-query event timeline; --telemetry OUT "
      "writes machine-readable JSON\n"
      "--trace-spans OUT (serve) records per-stage latency spans and "
      "lock waits and writes Chrome trace_event JSON — open OUT in "
      "ui.perfetto.dev; the latency decomposition also lands in "
      "--telemetry output\n"
      "resilience (refine/serve): --fault-spec JSON injects disk faults "
      "(see DESIGN.md \"Failure model\"), e.g.\n"
      "  --fault-spec '{\"seed\":7,\"rules\":[{\"kind\":\"transient\","
      "\"p\":0.01}]}'\n"
      "--deadline-ms N cuts each query at N ms and returns the partial "
      "ranking\n"
      "a rule with \"shard\":N (serve, --shards > 1) applies only to "
      "that shard's device — e.g. black out shard 2 of 4 with\n"
      "  --shards 4 --fault-spec "
      "'{\"rules\":[{\"kind\":\"bad_page\",\"p\":1,\"shard\":2}]}'\n"
      "--overload (serve) arms deadline-aware load shedding: queries "
      "whose --deadline-ms budget is spent while queued are shed with a "
      "typed status instead of evaluated late, and sustained queue delay "
      "browns out (trims) answers before anything is dropped; "
      "--shed-factor F sheds when the remaining budget is under F x the "
      "observed p50 service time (default 1.0)\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  int i = 2;
  if (args->command != "generate" && i < argc && argv[i][0] != '-') {
    args->file = argv[i++];
  }
  for (; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      args->scale = std::atof(v);
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out = v;
    } else if (flag == "--topic") {
      const char* v = next();
      if (v == nullptr) return false;
      args->topic = std::atoi(v);
    } else if (flag == "--policy") {
      const char* v = next();
      if (v == nullptr) return false;
      args->policy = v;
    } else if (flag == "--buffers") {
      const char* v = next();
      if (v == nullptr) return false;
      args->buffers = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--kind") {
      const char* v = next();
      if (v == nullptr) return false;
      args->kind = v;
    } else if (flag == "--telemetry") {
      const char* v = next();
      if (v == nullptr) return false;
      args->telemetry = v;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args->threads = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--users") {
      const char* v = next();
      if (v == nullptr) return false;
      args->users = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--queue-depth") {
      const char* v = next();
      if (v == nullptr) return false;
      args->queue_depth = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--loops") {
      const char* v = next();
      if (v == nullptr) return false;
      args->loops = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--delay-us") {
      const char* v = next();
      if (v == nullptr) return false;
      args->delay_us = static_cast<uint32_t>(std::atoll(v));
    } else if (flag == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      args->shards = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--prefetch-depth") {
      const char* v = next();
      if (v == nullptr) return false;
      args->prefetch_depth = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--fault-spec") {
      const char* v = next();
      if (v == nullptr) return false;
      args->fault_spec = v;
    } else if (flag == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      args->deadline_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--shed-factor") {
      const char* v = next();
      if (v == nullptr) return false;
      args->shed_factor = std::atof(v);
    } else if (flag == "--overload") {
      args->overload = true;
    } else if (flag == "--trace-spans") {
      const char* v = next();
      if (v == nullptr) return false;
      args->trace_spans = v;
    } else if (flag == "--shared-context") {
      args->shared_context = true;
    } else if (flag == "--trace") {
      args->trace = true;
    } else if (flag == "--baf") {
      args->baf = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

int Generate(const Args& args) {
  corpus::CorpusOptions options;
  options.scale = args.scale;
  std::printf("generating (scale %.3f)...\n", args.scale);
  auto corpus = corpus::GenerateSyntheticCorpus(options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  Status saved = corpus::SaveCorpus(*corpus.value(), args.out);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%u docs, %zu terms, %llu postings, %zu topics)\n",
              args.out.c_str(), corpus.value()->index().num_docs(),
              corpus.value()->index().lexicon().size(),
              static_cast<unsigned long long>(
                  corpus.value()->index().disk().total_postings()),
              corpus.value()->topics().size());
  return 0;
}

int Stats(const corpus::SyntheticCorpus& corpus) {
  const index::InvertedIndex& index = corpus.index();
  std::printf("documents        : %u\n", index.num_docs());
  std::printf("terms            : %zu\n", index.lexicon().size());
  std::printf("postings         : %llu\n",
              static_cast<unsigned long long>(
                  index.disk().total_postings()));
  std::printf("pages (size %u)  : %llu\n", corpus.profile().page_size,
              static_cast<unsigned long long>(index.total_pages()));
  std::printf("compressed bytes : %llu (%.2f/posting)\n",
              static_cast<unsigned long long>(
                  index.disk().compressed_bytes()),
              static_cast<double>(index.disk().compressed_bytes()) /
                  static_cast<double>(index.disk().total_postings()));
  std::printf("conversion table : %zu rows / %zu bytes\n",
              index.conversion_table().num_entries(),
              index.conversion_table().ApproxBytes());
  std::printf("topics           : %zu\n", corpus.topics().size());
  AsciiTable table({"group", "pages", "terms"});
  for (const corpus::IdfGroup& g : corpus.profile().groups) {
    table.AddRow({g.name, StrFormat("%u-%u", g.pages_lo, g.pages_hi),
                  StrFormat("%u", g.num_terms)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int Topics(const corpus::SyntheticCorpus& corpus) {
  AsciiTable table({"#", "title", "terms", "pages", "relevant"});
  for (size_t i = 0; i < corpus.topics().size(); ++i) {
    const corpus::Topic& t = corpus.topics()[i];
    table.AddRow({
        StrFormat("%zu", i),
        t.title,
        StrFormat("%zu", t.query.size()),
        StrFormat("%llu", static_cast<unsigned long long>(
                              ir::TotalQueryPages(corpus.index(),
                                                  t.query))),
        StrFormat("%zu", t.relevant_docs.size()),
    });
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

/// Parses --fault-spec and installs the injector on the corpus's disk.
/// Returns nullptr (with a message) on a malformed spec when one was
/// requested; returns an empty unique_ptr with *ok=true when no spec was
/// given. The injector must outlive every read of the run.
std::unique_ptr<fault::FaultInjector> InstallFaultInjector(
    const corpus::SyntheticCorpus& corpus, const Args& args, bool* ok) {
  *ok = true;
  if (args.fault_spec.empty()) return nullptr;
  Result<fault::FaultSpec> spec = fault::ParseFaultSpec(args.fault_spec);
  if (!spec.ok()) {
    std::fprintf(stderr, "bad --fault-spec: %s\n",
                 spec.status().ToString().c_str());
    *ok = false;
    return nullptr;
  }
  auto injector = std::make_unique<fault::FaultInjector>(spec.value());
  corpus.index().disk().SetFaultInjector(injector.get());
  return injector;
}

/// Writes `json` to `path`; reports the destination on success under
/// `label` (the left-hand column of the run summary).
bool WriteJsonFile(const std::string& path, const std::string& json,
                   const char* label = "telemetry") {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
      std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (ok) std::printf("%-13s: %s\n", label, path.c_str());
  return ok;
}

int RunQuery(const corpus::SyntheticCorpus& corpus, const Args& args,
             buffer::PolicyKind policy) {
  if (args.topic < 0 ||
      static_cast<size_t>(args.topic) >= corpus.topics().size()) {
    std::fprintf(stderr, "no topic %d\n", args.topic);
    return 1;
  }
  const corpus::Topic& topic = corpus.topics()[args.topic];
  core::EvalOptions eval;
  eval.buffer_aware = args.baf;
  obs::QueryTracer tracer;
  const bool want_obs = args.trace || !args.telemetry.empty();
  auto result = ir::RunColdQuery(corpus.index(), topic.query, eval, policy,
                                 want_obs ? &tracer : nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s (%s, cold buffers)\n", topic.title.c_str(),
              args.baf ? "BAF" : "DF");
  std::printf("disk reads   : %llu\n",
              static_cast<unsigned long long>(result.value().disk_reads));
  std::printf("postings     : %llu\n",
              static_cast<unsigned long long>(
                  result.value().postings_processed));
  std::printf("accumulators : %llu\n",
              static_cast<unsigned long long>(
                  result.value().accumulators));
  const double ap = metrics::AveragePrecision(result.value().top_docs,
                                              topic.relevant_docs);
  std::printf("AP           : %.4f\n", ap);
  std::printf("top answers  :");
  for (size_t i = 0; i < std::min<size_t>(10, result.value().top_docs.size());
       ++i) {
    std::printf(" d%u", result.value().top_docs[i].doc);
  }
  std::printf("\n");
  if (!args.telemetry.empty()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("label").Str(topic.title);
    w.Key("command").Str("query");
    w.Key("algorithm").Str(args.baf ? "BAF" : "DF");
    w.Key("policy").Str(buffer::PolicyKindName(policy));
    w.Key("disk_reads").UInt(result.value().disk_reads);
    w.Key("postings_processed").UInt(result.value().postings_processed);
    w.Key("accumulators").UInt(result.value().accumulators);
    w.Key("avg_precision").Num(ap);
    w.Key("trace").Raw(tracer.ToJson());
    w.EndObject();
    if (!WriteJsonFile(args.telemetry, std::move(w).Take())) return 1;
  }
  if (args.trace) {
    std::printf("\ntrace (%zu events):\n%s", tracer.events().size(),
                tracer.DumpText().c_str());
  }
  return 0;
}

int Refine(const corpus::SyntheticCorpus& corpus, const Args& args,
           buffer::PolicyKind policy) {
  if (args.topic < 0 ||
      static_cast<size_t>(args.topic) >= corpus.topics().size()) {
    std::fprintf(stderr, "no topic %d\n", args.topic);
    return 1;
  }
  const corpus::Topic& topic = corpus.topics()[args.topic];
  workload::RefinementKind kind = args.kind == "add-drop"
                                      ? workload::RefinementKind::kAddDrop
                                      : workload::RefinementKind::kAddOnly;
  auto sequence = workload::BuildRefinementSequence(
      topic.title, topic.query, corpus.index(), kind);
  if (!sequence.ok()) {
    std::fprintf(stderr, "%s\n", sequence.status().ToString().c_str());
    return 1;
  }
  ir::SequenceRunOptions run;
  run.buffer_aware = args.baf;
  run.policy = policy;
  run.buffer_pages = args.buffers;
  bool fault_ok = false;
  std::unique_ptr<fault::FaultInjector> injector =
      InstallFaultInjector(corpus, args, &fault_ok);
  if (!fault_ok) return 2;
  if (injector != nullptr) run.resilience.enabled = true;
  run.deadline_us = args.deadline_ms * 1000;
  obs::QueryTracer tracer;
  obs::MetricsRegistry registry;
  const bool want_obs = args.trace || !args.telemetry.empty();
  if (want_obs) {
    run.tracer = &tracer;
    run.metrics = &registry;
  }
  auto result = ir::RunRefinementSequence(corpus.index(), sequence.value(),
                                          topic.relevant_docs, run);
  if (injector != nullptr) corpus.index().disk().SetFaultInjector(nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s %s, %s/%s, %zu buffer pages\n", topic.title.c_str(),
              workload::RefinementKindName(kind), args.baf ? "BAF" : "DF",
              buffer::PolicyKindName(policy), args.buffers);
  AsciiTable table({"refinement", "terms", "reads", "postings", "hit%",
                    "evict", "AP", "lost"});
  for (size_t s = 0; s < result.value().steps.size(); ++s) {
    const ir::StepResult& sr = result.value().steps[s];
    table.AddRow({
        StrFormat("%zu", s + 1),
        StrFormat("%zu", sequence.value().steps[s].query.size()),
        StrFormat("%llu", static_cast<unsigned long long>(sr.disk_reads)),
        StrFormat("%llu", static_cast<unsigned long long>(
                              sr.postings_processed)),
        StrFormat("%.1f", sr.buffer.HitRate() * 100.0),
        StrFormat("%llu",
                  static_cast<unsigned long long>(sr.buffer.evictions)),
        StrFormat("%.3f", sr.avg_precision),
        sr.degraded ? StrFormat("%u%s", sr.pages_lost,
                                sr.deadline_hit ? "*" : "")
                    : std::string("-"),
    });
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("total reads: %llu\n",
              static_cast<unsigned long long>(
                  result.value().total_disk_reads));
  if (result.value().degraded_steps > 0) {
    std::printf("degraded    : %u step(s), %llu page(s) lost "
                "(* = deadline hit)\n",
                result.value().degraded_steps,
                static_cast<unsigned long long>(
                    result.value().total_pages_lost));
  }
  if (!args.telemetry.empty()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("run").Raw(ir::SequenceTelemetryJson(
        topic.title, run, result.value(), want_obs ? &tracer : nullptr));
    w.Key("metrics").Raw(registry.ToJson());
    w.EndObject();
    if (!WriteJsonFile(args.telemetry, std::move(w).Take())) return 1;
  }
  if (args.trace) {
    std::printf("\nmetrics:\n%s", registry.DumpText().c_str());
    std::printf("\ntrace (%zu events):\n%s", tracer.events().size(),
                tracer.DumpText().c_str());
  }
  return 0;
}

/// Closed-loop load against a QueryServer: `--users` sessions (cycling
/// over the corpus topics' refinement sequences) with one outstanding
/// query each, `--threads` workers, `--delay-us` simulated device time
/// per buffer miss. Prints throughput, latency percentiles (from the
/// serve.latency_us histogram) and pool hit rate.
int Serve(const corpus::SyntheticCorpus& corpus, const Args& args,
          buffer::PolicyKind policy) {
  std::vector<workload::RefinementSequence> sequences;
  for (const corpus::Topic& topic : corpus.topics()) {
    auto seq = workload::BuildRefinementSequence(
        topic.title, topic.query, corpus.index(),
        workload::RefinementKind::kAddOnly);
    if (!seq.ok()) {
      std::fprintf(stderr, "%s\n", seq.status().ToString().c_str());
      return 1;
    }
    sequences.push_back(std::move(seq).value());
  }

  serve::ServerOptions options;
  options.num_threads = args.threads;
  options.queue_depth = args.queue_depth == 0 ? args.users : args.queue_depth;
  options.buffer_pages = args.buffers;
  options.policy = policy;
  options.eval.buffer_aware = args.baf;
  options.eval.record_trace = false;
  options.shared_context = args.shared_context;
  options.io_delay_us_per_miss = args.delay_us;
  options.prefetch_depth = args.prefetch_depth;
  options.deadline_us = args.deadline_ms * 1000;
  if (args.overload) {
    options.overload.enabled = true;
    options.overload.shed_factor = args.shed_factor;
  }
  // Span recorder outlives the server (the server's destructor detaches
  // it from the disk before workers are gone).
  obs::SpanRecorder recorder;
  const bool spans = !args.trace_spans.empty();
  if (spans) {
    options.span_recorder = &recorder;
    options.profile_contention = true;
  }
  bool fault_ok = false;
  std::unique_ptr<fault::FaultInjector> injector =
      InstallFaultInjector(corpus, args, &fault_ok);
  if (!fault_ok) return 2;
  if (injector != nullptr) options.resilience.enabled = true;

  // --shards N: partition the index and route every query through the
  // scatter-gather engine; the server's built-in pool sits idle.
  const bool sharded_serving = args.shards > 1;
  shard::ShardedIndex sharded_index;
  std::unique_ptr<shard::ShardedEngine> engine;
  if (sharded_serving) {
    shard::ShardOptions sharding;
    sharding.num_shards = args.shards;
    sharding.page_size = corpus.profile().page_size;
    auto sharded = shard::ShardIndex(corpus.index(), sharding);
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharding failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }
    sharded_index = std::move(sharded).value();
    shard::ShardedEngineOptions engine_options;
    engine_options.eval = options.eval;
    engine_options.eval.span_recorder = options.span_recorder;
    engine_options.pool.total_pages = args.buffers;
    engine_options.pool.policy = policy;
    engine_options.pool.io_delay_us_per_miss = args.delay_us;
    engine_options.pool.prefetch_depth = args.prefetch_depth;
    engine_options.pool.resilience = options.resilience;
    engine_options.pool.profile_contention = options.profile_contention;
    engine_options.lanes_per_shard = args.threads;
    engine_options.shared_context = args.shared_context;
    engine = std::make_unique<shard::ShardedEngine>(&sharded_index,
                                                    engine_options);
    options.engine = engine.get();
  }
  // The engine reads the shard posting files, not the source's: each
  // shard gets its own injector holding only the rules that select it
  // ("shard":N) plus the global ones, so a campaign can black out or
  // slow a single failure domain.
  std::vector<std::unique_ptr<fault::FaultInjector>> shard_injectors;
  if (injector != nullptr && sharded_serving) {
    const fault::FaultSpec spec =
        fault::ParseFaultSpec(args.fault_spec).value();  // Validated above.
    for (size_t s = 0; s < sharded_index.num_shards(); ++s) {
      shard_injectors.push_back(std::make_unique<fault::FaultInjector>(
          fault::FilterForShard(spec, s)));
      sharded_index.shard(s).disk().SetFaultInjector(
          shard_injectors.back().get());
    }
  }

  obs::MetricsRegistry registry;
  serve::QueryServer server(&corpus.index(), options);
  server.BindMetrics(&registry);
  if (engine != nullptr) engine->BindMetrics(&registry);
  // Mirror per-mutex wait distributions into the registry so they ride
  // along in the --telemetry metrics snapshot.
  obs::MutexWaitBinding queue_binding;
  obs::MutexWaitBinding latch_binding;
  obs::MutexWaitBinding stripe_binding;
  std::vector<std::unique_ptr<obs::MutexWaitBinding>> shard_bindings;
  if (spans) {
    const std::vector<double> bounds = obs::MutexWaitHistogramBounds();
    queue_binding.Bind(
        server.queue_wait_stats(),
        registry.AddHistogram("mutex.serve.queue.wait_us", bounds,
                              "admission-queue mutex wait (us)"),
        &recorder);
    if (engine != nullptr) {
      // Per-shard latch/stripe waits: the whole point of sharding is
      // that these stay flat as workers grow, so they are individually
      // observable.
      for (size_t s = 0; s < engine->num_shards(); ++s) {
        auto latch = std::make_unique<obs::MutexWaitBinding>();
        latch->Bind(engine->mutable_pool()->shard(s)->latch_wait_stats(),
                    registry.AddHistogram(
                        StrFormat("mutex.shard%zu.latch.wait_us", s), bounds,
                        "shard pool policy-latch wait (us)"),
                    &recorder);
        shard_bindings.push_back(std::move(latch));
        auto stripe = std::make_unique<obs::MutexWaitBinding>();
        stripe->Bind(engine->mutable_pool()->shard(s)->stripe_wait_stats(),
                     registry.AddHistogram(
                         StrFormat("mutex.shard%zu.stripe.wait_us", s),
                         bounds, "shard page-table stripe wait (us)"),
                     &recorder);
        shard_bindings.push_back(std::move(stripe));
      }
    } else {
      latch_binding.Bind(
          server.mutable_pool()->latch_wait_stats(),
          registry.AddHistogram("mutex.pool.latch.wait_us", bounds,
                                "pool policy-latch wait (us)"),
          &recorder);
      stripe_binding.Bind(
          server.mutable_pool()->stripe_wait_stats(),
          registry.AddHistogram("mutex.pool.stripe.wait_us", bounds,
                                "page-table stripe wait (us)"),
          &recorder);
    }
  }
  server.Start();

  std::printf("serving: %zu workers, %zu users, queue depth %zu, "
              "%s/%s%s, %zu buffer pages, %zu shard(s), %u us/read\n",
              options.num_threads, args.users, options.queue_depth,
              args.baf ? "BAF" : "DF", buffer::PolicyKindName(policy),
              args.shared_context ? " (shared ctx)" : "", args.buffers,
              args.shards, args.delay_us);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  std::atomic<bool> failed{false};
  for (size_t u = 0; u < args.users; ++u) {
    clients.emplace_back([&, u] {
      const workload::RefinementSequence& seq = sequences[u % sequences.size()];
      for (size_t loop = 0; loop < args.loops; ++loop) {
        for (const workload::RefinementStep& step : seq.steps) {
          auto r = server.Execute(u, step.query);
          if (!r.ok()) {
            // Typed overload outcomes are the server keeping its
            // latency promise, not a client error.
            if (r.status().code() == StatusCode::kShedWhileQueued ||
                r.status().code() == StatusCode::kResourceExhausted) {
              continue;
            }
            std::fprintf(stderr, "user %zu: %s\n", u,
                         r.status().ToString().c_str());
            failed = true;
            return;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.Stop();
  if (injector != nullptr) {
    corpus.index().disk().SetFaultInjector(nullptr);
    if (engine != nullptr) {
      for (size_t s = 0; s < sharded_index.num_shards(); ++s) {
        sharded_index.shard(s).disk().SetFaultInjector(nullptr);
      }
    }
  }
  if (failed) return 1;

  const serve::ServerStats stats = server.StatsSnapshot();
  const buffer::BufferStats pool = server.PoolStatsSnapshot();
  const obs::Histogram* latency = registry.FindHistogram("serve.latency_us");
  std::printf("completed    : %llu queries in %.3f s (%.1f q/s)\n",
              static_cast<unsigned long long>(stats.completed), wall,
              wall > 0.0 ? static_cast<double>(stats.completed) / wall : 0.0);
  std::printf("latency      : p50 %.2f ms, p90 %.2f ms, p99 %.2f ms\n",
              latency->Percentile(50.0) / 1000.0,
              latency->Percentile(90.0) / 1000.0,
              latency->Percentile(99.0) / 1000.0);
  std::printf("buffer pool  : %.1f%% hits, %llu disk reads, %llu evictions\n",
              pool.HitRate() * 100.0,
              static_cast<unsigned long long>(pool.misses),
              static_cast<unsigned long long>(pool.evictions));
  if (args.prefetch_depth > 0) {
    serve::PoolPrefetchStats prefetch;
    if (engine != nullptr) {
      for (size_t s = 0; s < engine->num_shards(); ++s) {
        const serve::PoolPrefetchStats ps =
            engine->mutable_pool()->shard(s)->PrefetchStatsSnapshot();
        prefetch.issued += ps.issued;
        prefetch.used += ps.used;
        prefetch.wasted += ps.wasted;
        prefetch.coalesced_misses += ps.coalesced_misses;
        prefetch.device_reads += ps.device_reads;
      }
    } else {
      prefetch = server.mutable_pool()->PrefetchStatsSnapshot();
    }
    std::printf("prefetch     : %llu issued (%llu used, %llu wasted), "
                "%llu coalesced misses, %llu device reads\n",
                static_cast<unsigned long long>(prefetch.issued),
                static_cast<unsigned long long>(prefetch.used),
                static_cast<unsigned long long>(prefetch.wasted),
                static_cast<unsigned long long>(prefetch.coalesced_misses),
                static_cast<unsigned long long>(prefetch.device_reads));
  }
  if (engine != nullptr) {
    AsciiTable shard_table({"shard", "fetches", "hit%", "reads", "evict"});
    for (size_t s = 0; s < engine->num_shards(); ++s) {
      const buffer::BufferStats stats =
          engine->mutable_pool()->shard(s)->StatsSnapshot();
      shard_table.AddRow(
          {StrFormat("%zu", s),
           StrFormat("%llu", static_cast<unsigned long long>(stats.fetches)),
           StrFormat("%.1f", stats.HitRate() * 100.0),
           StrFormat("%llu", static_cast<unsigned long long>(stats.misses)),
           StrFormat("%llu",
                     static_cast<unsigned long long>(stats.evictions))});
    }
    std::printf("%s", shard_table.ToString().c_str());
  }
  if (injector != nullptr || options.deadline_us > 0) {
    auto counter = [&](const char* name) -> unsigned long long {
      const obs::Counter* c = registry.FindCounter(name);
      return c != nullptr ? static_cast<unsigned long long>(c->value()) : 0;
    };
    std::printf("resilience   : %llu retries (%llu recovered), "
                "%llu corrupted reads, %llu breaker trips, "
                "%llu degraded, %llu deadline-cut\n",
                counter("fault.retries"), counter("fault.retry_success"),
                counter("fault.corrupted_reads"),
                counter("fault.breaker_trips"), counter("serve.degraded"),
                counter("serve.deadline_exceeded"));
    if (engine != nullptr) {
      unsigned long long trips = 0;
      unsigned long long rejects = 0;
      for (size_t s = 0; s < engine->num_shards(); ++s) {
        trips += counter(StrFormat("shard%zu.breaker.trips", s).c_str());
        rejects += counter(StrFormat("shard%zu.breaker.rejects", s).c_str());
      }
      std::printf("shards       : %llu forfeited mid-query, "
                  "%llu breaker trips, %llu fail-fast rejects\n",
                  counter("engine.shards_lost"), trips, rejects);
    }
  }
  if (args.overload) {
    auto counter = [&](const char* name) -> unsigned long long {
      const obs::Counter* c = registry.FindCounter(name);
      return c != nullptr ? static_cast<unsigned long long>(c->value()) : 0;
    };
    // The admission/queued split: bounces never entered the queue,
    // sheds did but had no budget left at pickup; neither is in the
    // latency percentiles above.
    std::printf("overload     : %llu rejected at admission, "
                "%llu shed while queued, brownout trims %llu terms / "
                "%llu pages\n",
                counter("serve.rejected_at_admission"),
                counter("serve.shed_while_queued"),
                counter("serve.brownout_trim_terms"),
                counter("serve.brownout_trim_pages"));
  }
  AsciiTable table({"session", "queries", "reads", "pages"});
  for (size_t u = 0; u < args.users; ++u) {
    const serve::SessionStats s = server.SessionSnapshot(u);
    table.AddRow({StrFormat("%zu", u), StrFormat("%llu",
                      static_cast<unsigned long long>(s.queries)),
                  StrFormat("%llu",
                      static_cast<unsigned long long>(s.disk_reads)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        s.pages_processed))});
  }
  std::printf("%s", table.ToString().c_str());

  std::string attribution_json;
  if (spans) {
    const std::vector<obs::ThreadSpans> snapshot = recorder.Snapshot();
    if (!WriteJsonFile(args.trace_spans, obs::ToChromeTraceJson(snapshot),
                       "trace")) {
      return 1;
    }
    const obs::SpanAttribution attr = obs::ComputeAttribution(snapshot);
    obs::JsonWriter aw;
    obs::AppendAttributionJson(attr, aw);
    attribution_json = std::move(aw).Take();
    size_t span_count = 0;
    for (const obs::ThreadSpans& t : snapshot) span_count += t.spans.size();
    std::printf("spans        : %zu from %zu threads -> %s "
                "(open in ui.perfetto.dev)\n",
                span_count, snapshot.size(), args.trace_spans.c_str());
    uint64_t latch_wait_ns = 0;
    if (engine != nullptr) {
      for (size_t s = 0; s < engine->num_shards(); ++s) {
        latch_wait_ns += engine->mutable_pool()
                             ->shard(s)
                             ->latch_wait_stats()
                             ->wait_ns_total();
      }
    } else {
      latch_wait_ns =
          server.mutable_pool()->latch_wait_stats()->wait_ns_total();
    }
    std::printf("latch wait   : %s of aggregate worker time "
                "(pool policy latch%s)\n",
                StrFormat("%.2f%%",
                          100.0 * static_cast<double>(latch_wait_ns) / 1e9 /
                              (wall * static_cast<double>(std::max<size_t>(
                                          1, options.num_threads))))
                    .c_str(),
                engine != nullptr ? "es, all shards" : "");
  }

  if (!args.telemetry.empty()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("command").Str("serve");
    w.Key("workers").UInt(options.num_threads);
    w.Key("users").UInt(args.users);
    w.Key("shards").UInt(args.shards);
    w.Key("wall_seconds").Num(wall);
    w.Key("completed").UInt(stats.completed);
    w.Key("rejected").UInt(stats.rejected);
    if (!attribution_json.empty()) {
      w.Key("attribution").Raw(attribution_json);
    }
    w.Key("metrics").Raw(registry.ToJson());
    w.EndObject();
    if (!WriteJsonFile(args.telemetry, std::move(w).Take())) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();

  if (args.command == "generate") return Generate(args);

  if (args.file.empty()) return Usage();
  auto corpus = corpus::LoadCorpus(args.file);
  if (!corpus.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", args.file.c_str(),
                 corpus.status().ToString().c_str());
    return 1;
  }
  auto policy = buffer::ParsePolicyKind(args.policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 2;
  }

  if (args.command == "stats") return Stats(*corpus.value());
  if (args.command == "topics") return Topics(*corpus.value());
  if (args.command == "query") {
    return RunQuery(*corpus.value(), args, policy.value());
  }
  if (args.command == "refine") {
    return Refine(*corpus.value(), args, policy.value());
  }
  if (args.command == "serve") {
    return Serve(*corpus.value(), args, policy.value());
  }
  return Usage();
}
