// Quickstart: index a small embedded news collection through the full
// text-analysis pipeline, then search it interactively through the
// IrSystem facade.
//
//   $ ./examples/quickstart                      # demo queries
//   $ ./examples/quickstart "price increases"    # your own query

#include <cstdio>
#include <string>

#include "corpus/text_corpus.h"
#include "ir/ir_system.h"

using namespace irbuf;

namespace {

void RunQuery(ir::IrSystem* system, const text::AnalysisPipeline& pipeline,
              const std::string& text) {
  std::printf("\nquery: \"%s\"\n", text.c_str());
  auto result = system->Search(text, pipeline);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result.value().top_docs.empty()) {
    std::printf("  (no matching documents)\n");
    return;
  }
  const auto& docs = corpus::EmbeddedNewsCorpus();
  for (size_t i = 0; i < result.value().top_docs.size(); ++i) {
    const core::ScoredDoc& sd = result.value().top_docs[i];
    std::printf("  %zu. [%.3f] %s\n", i + 1, sd.score,
                docs[sd.doc].title.c_str());
  }
  std::printf("  (disk reads: %llu, postings processed: %llu, "
              "candidate set: %llu)\n",
              static_cast<unsigned long long>(result.value().disk_reads),
              static_cast<unsigned long long>(
                  result.value().postings_processed),
              static_cast<unsigned long long>(result.value().accumulators));
}

}  // namespace

int main(int argc, char** argv) {
  // 1. Analyze and index the embedded collection (tokenize, remove
  //    stop-words, Porter-stem — exactly the paper's Section 4.2 recipe).
  auto pipeline = text::AnalysisPipeline::Default();
  auto index = corpus::BuildIndexFromDocuments(corpus::EmbeddedNewsCorpus(),
                                               pipeline, /*page_size=*/16);
  if (!index.ok()) {
    std::fprintf(stderr, "indexing failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %u documents, %zu distinct terms, %llu pages\n",
              index.value().num_docs(), index.value().lexicon().size(),
              static_cast<unsigned long long>(index.value().total_pages()));

  // 2. Stand up a retrieval system: buffer-aware evaluation (BAF) over a
  //    ranking-aware (RAP) buffer pool — the paper's best configuration.
  ir::IrSystemOptions options;
  options.buffer_pages = 32;
  options.policy = buffer::PolicyKind::kRap;
  options.eval.buffer_aware = true;
  options.eval.top_n = 5;
  ir::IrSystem system(&index.value(), options);

  // 3. Search.
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) RunQuery(&system, pipeline, argv[i]);
  } else {
    RunQuery(&system, pipeline, "drastic price increases");
    RunQuery(&system, pipeline, "health hazards from asbestos fibers");
    RunQuery(&system, pipeline, "computer aided medical diagnosis");
    RunQuery(&system, pipeline,
             "satellite launch contracts and investment");
  }
  std::printf("\nbuffer pool: %llu fetches, %.0f%% hit rate\n",
              static_cast<unsigned long long>(
                  system.buffers().stats().fetches),
              system.buffers().stats().HitRate() * 100.0);
  return 0;
}
