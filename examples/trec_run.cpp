// TREC-style batch run: evaluate every topic of the calibrated synthetic
// collection (cold buffers per topic, as in ad-hoc retrieval), reporting
// per-topic efficiency and effectiveness plus a summary — the kind of
// run sheet a TREC participant would produce, with the efficiency columns
// the paper argues the community should also be watching.
//
//   $ ./examples/trec_run [scale]

#include <cstdio>
#include <cstdlib>

#include "corpus/synthetic_corpus.h"
#include "ir/experiment.h"
#include "metrics/effectiveness.h"
#include "metrics/run_stats.h"
#include "util/str.h"

using namespace irbuf;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  if (scale <= 0.0 || scale > 1.0) scale = 0.05;

  corpus::CorpusOptions options;
  options.scale = scale;
  options.num_random_topics = 16;
  auto corpus = corpus::GenerateSyntheticCorpus(options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  const index::InvertedIndex& index = corpus.value()->index();
  std::printf("collection: %u docs / %zu terms / %llu postings, "
              "%zu topics\n\n",
              index.num_docs(), index.lexicon().size(),
              static_cast<unsigned long long>(
                  index.disk().total_postings()),
              corpus.value()->topics().size());

  AsciiTable table({"topic", "terms", "reads", "postings", "candidates",
                    "P@20", "AP"});
  std::vector<double> aps;
  uint64_t total_reads = 0;
  for (const corpus::Topic& topic : corpus.value()->topics()) {
    core::EvalOptions eval;  // DF, Persin's tuned constants.
    eval.top_n = 20;
    auto result = ir::RunColdQuery(index, topic.query, eval);
    if (!result.ok()) continue;
    double ap = metrics::AveragePrecision(result.value().top_docs,
                                          topic.relevant_docs);
    double p20 = metrics::PrecisionAtK(result.value().top_docs,
                                       topic.relevant_docs, 20);
    aps.push_back(ap);
    total_reads += result.value().disk_reads;
    table.AddRow({
        topic.title,
        StrFormat("%zu", topic.query.size()),
        StrFormat("%llu",
                  static_cast<unsigned long long>(result.value().disk_reads)),
        StrFormat("%llu", static_cast<unsigned long long>(
                              result.value().postings_processed)),
        StrFormat("%llu",
                  static_cast<unsigned long long>(
                      result.value().accumulators)),
        StrFormat("%.2f", p20),
        StrFormat("%.3f", ap),
    });
  }
  std::printf("%s\n", table.ToString().c_str());

  metrics::Summary ap_summary = metrics::Summarize(aps);
  std::printf("topics: %zu   mean AP: %.3f   total disk reads: %llu\n",
              ap_summary.count, ap_summary.mean,
              static_cast<unsigned long long>(total_reads));
  std::printf("(AP is measured against the generator's synthetic "
              "relevance judgments; with |relevant| >> 20 its ceiling is "
              "20/|relevant| per topic)\n");
  return 0;
}
