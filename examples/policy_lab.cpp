// Policy lab: run every shipped replacement policy over the same
// refinement workload at several buffer sizes and print the read counts.
// A playground for exploring how access patterns interact with
// replacement decisions (the heart of the paper).
//
//   $ ./examples/policy_lab [scale] [add-only|add-drop]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "corpus/synthetic_corpus.h"
#include "ir/experiment.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  if (scale <= 0.0 || scale > 1.0) scale = 0.05;
  workload::RefinementKind kind =
      (argc > 2 && std::strcmp(argv[2], "add-drop") == 0)
          ? workload::RefinementKind::kAddDrop
          : workload::RefinementKind::kAddOnly;

  corpus::CorpusOptions options;
  options.scale = scale;
  options.num_random_topics = 4;
  auto corpus = corpus::GenerateSyntheticCorpus(options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  const index::InvertedIndex& index = corpus.value()->index();
  const corpus::Topic& topic = corpus.value()->topics()[0];

  auto sequence = workload::BuildRefinementSequence(topic.title,
                                                    topic.query, index,
                                                    kind);
  if (!sequence.ok()) {
    std::fprintf(stderr, "workload failed\n");
    return 1;
  }
  uint64_t working_set = ir::SequenceWorkingSetPages(index,
                                                     sequence.value());
  std::printf("%s refinement of %s; working set %llu pages\n",
              workload::RefinementKindName(kind), topic.title.c_str(),
              static_cast<unsigned long long>(working_set));
  std::printf("total disk reads per policy (DF evaluation):\n\n");

  std::vector<size_t> sizes;
  for (double f : {0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
    sizes.push_back(std::max<size_t>(
        1, static_cast<size_t>(f * static_cast<double>(working_set))));
  }

  std::vector<std::string> headers = {"policy"};
  for (size_t s : sizes) headers.push_back(StrFormat("%zu pg", s));
  AsciiTable table(headers);
  for (buffer::PolicyKind policy : buffer::AllPolicyKinds()) {
    std::vector<std::string> row = {buffer::PolicyKindName(policy)};
    for (size_t pages : sizes) {
      ir::SequenceRunOptions run;
      run.policy = policy;
      run.buffer_pages = pages;
      auto result = ir::RunRefinementSequence(index, sequence.value(), {},
                                              run);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed\n");
        return 1;
      }
      row.push_back(StrFormat(
          "%llu", static_cast<unsigned long long>(
                      result.value().total_disk_reads)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("try: %s %.2f add-drop   (watch MRU hold dropped-term pages "
              "hostage while RAP sheds them)\n",
              argv[0], scale);
  return 0;
}
