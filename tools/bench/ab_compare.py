#!/usr/bin/env python3
"""A/B gate for the hot-path microbenches.

Two modes over the shared TelemetryFile schema
({"bench": ..., "scale": ..., "runs": [{"label": ..., "ns_per_op": ...}]}):

  Single file — pairs every `legacy/NAME` run with its `block/NAME`
  counterpart and checks the speedup against a per-benchmark floor:

    ab_compare.py bench_results/bench_hotpath.json \
        --min-speedup BM_BlockDecode=1.5 --min-speedup BM_EvalDFQuery=1.3

  Two files — compares runs with matching labels (baseline first) and
  flags regressions beyond --threshold percent:

    ab_compare.py bench_results/bench_hotpath.json new_results.json \
        --threshold 10

Ratios of two timings from the same process are robust to machine speed,
so the committed baseline gates same-file speedups anywhere, while the
two-file mode is meant for before/after runs on one machine. Exit code 1
on any violated floor or regression; CI runs this report-only
(continue-on-error) because shared runners make absolute timings noisy.
"""

import argparse
import json
import sys


def load_runs(path):
    """Returns {label: (value, metric)} from one telemetry file.

    metric is "ns_per_op" (lower is better), "throughput_qps" (higher
    is better — the serve bench), or one of the dedicated lower-is-better
    serve pair metrics "p99_us" / "disk_reads" (emitted top-level only by
    the prefetch A/B records, which carry no throughput_qps so the
    priority order below cannot misclassify a full serve cell — those
    always carry throughput_qps and keep it). Serve runs repeat their label
    once per worker count, so runs carrying a "workers" key are keyed
    "label@Nw", matching bench_trend.py; sharded serve runs additionally
    carry a "shards" key and are keyed "label@Nw@Ss" so a 4-shard cell
    never pairs with a 1-shard cell of the same label.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"ab_compare: cannot read {path}: {e}")
    runs = {}
    for run in doc.get("runs", []):
        label = run.get("label")
        if label is None:
            continue
        if run.get("ns_per_op") is not None:
            value, metric = float(run["ns_per_op"]), "ns_per_op"
        elif run.get("throughput_qps") is not None:
            value, metric = float(run["throughput_qps"]), "throughput_qps"
        elif run.get("p99_us") is not None:
            value, metric = float(run["p99_us"]), "p99_us"
        elif run.get("disk_reads") is not None:
            value, metric = float(run["disk_reads"]), "disk_reads"
        else:
            continue
        if "workers" in run:
            label = f"{label}@{run['workers']}w"
        if run.get("shards", 1) != 1:
            label = f"{label}@{run['shards']}s"
        if label in runs:
            sys.exit(f"ab_compare: duplicate label {label!r} in {path}")
        runs[label] = (value, metric)
    if not runs:
        sys.exit(f"ab_compare: no timed runs in {path}")
    return runs


def parse_floors(specs):
    """Parses repeated NAME=RATIO flags into {name: ratio}."""
    floors = {}
    for spec in specs:
        name, sep, ratio = spec.partition("=")
        if not sep:
            sys.exit(f"ab_compare: --min-speedup wants NAME=RATIO, got {spec!r}")
        try:
            floors[name] = float(ratio)
        except ValueError:
            sys.exit(f"ab_compare: bad ratio in {spec!r}")
    return floors


def compare_pairs(runs, floors, default_floor):
    """Single-file mode: legacy/NAME vs block/NAME speedups.

    The speedup is oriented so >= 1.0 always means "block/ is no worse":
    block/legacy for throughput_qps (higher is better — the serve
    overload pair), legacy/block for every lower-is-better metric
    (ns_per_op, and the prefetch pair's p99_us / disk_reads).
    """
    names = sorted(
        label.split("/", 1)[1]
        for label in runs
        if label.startswith("legacy/")
    )
    if not names:
        sys.exit("ab_compare: no legacy/ runs to pair")
    failures = 0
    print(f"{'benchmark':<24} {'legacy':>12} {'block':>12} "
          f"{'speedup':>8} {'floor':>6}")
    for name in names:
        legacy, metric = runs[f"legacy/{name}"]
        pair = runs.get(f"block/{name}")
        if pair is None:
            print(f"{name:<24} {'(no block/ counterpart)':>40}  FAIL")
            failures += 1
            continue
        block, _ = pair
        if metric == "throughput_qps":
            speedup = block / legacy if legacy > 0 else float("inf")
        else:
            speedup = legacy / block if block > 0 else float("inf")
        floor = floors.get(name, default_floor)
        ok = speedup >= floor
        verdict = "ok" if ok else "FAIL"
        print(f"{name:<24} {legacy:>12.1f} {block:>12.1f} "
              f"{speedup:>7.2f}x {floor:>5.2f}x  {verdict}")
        failures += 0 if ok else 1
    return failures


def compare_files(baseline, current, threshold_pct):
    """Two-file mode: same-label regressions beyond threshold_pct.

    The reported delta is always "percent worse": slower for ns_per_op,
    lower-throughput for throughput_qps.
    """
    shared = sorted(set(baseline) & set(current))
    if not shared:
        sys.exit("ab_compare: the two files share no labels")
    failures = 0
    print(f"{'label':<32} {'baseline':>12} {'current':>12} "
          f"{'worse':>8}  metric")
    for label in shared:
        base, metric = baseline[label]
        cur, cur_metric = current[label]
        if metric != cur_metric:
            print(f"{label:<32} metric mismatch "
                  f"({metric} vs {cur_metric})  FAIL")
            failures += 1
            continue
        if base > 0:
            delta_pct = (cur - base) / base * 100.0
            if metric == "throughput_qps":
                delta_pct = -delta_pct
        else:
            delta_pct = 0.0
        ok = delta_pct <= threshold_pct
        verdict = "ok" if ok else "FAIL"
        print(f"{label:<32} {base:>12.1f} {cur:>12.1f} "
              f"{delta_pct:>+7.1f}%  {metric}  {verdict}")
        failures += 0 if ok else 1
    only = sorted(set(baseline) ^ set(current))
    if only:
        print(f"(unpaired labels ignored: {', '.join(only)})")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+",
                        help="one telemetry file (A/B pair mode) or "
                             "baseline + current (regression mode)")
    parser.add_argument("--min-speedup", action="append", default=[],
                        metavar="NAME=RATIO",
                        help="per-benchmark block-vs-legacy floor "
                             "(single-file mode); repeatable")
    parser.add_argument("--default-min-speedup", type=float, default=1.0,
                        help="floor for benchmarks without an explicit "
                             "--min-speedup (default: 1.0 = no regression)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="allowed slowdown percent in two-file mode "
                             "(default: 10)")
    args = parser.parse_args()

    if len(args.files) == 1:
        failures = compare_pairs(load_runs(args.files[0]),
                                 parse_floors(args.min_speedup),
                                 args.default_min_speedup)
    elif len(args.files) == 2:
        if args.min_speedup:
            sys.exit("ab_compare: --min-speedup is single-file mode only")
        failures = compare_files(load_runs(args.files[0]),
                                 load_runs(args.files[1]), args.threshold)
    else:
        sys.exit("ab_compare: expected one or two telemetry files")

    if failures:
        print(f"ab_compare: {failures} check(s) FAILED")
        return 1
    print("ab_compare: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
