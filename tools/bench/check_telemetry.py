#!/usr/bin/env python3
"""Validates every committed bench_results/*.json telemetry envelope.

Each file must parse as JSON and carry the schema_version the tools in
this directory understand, so a bench change that drifts the format
fails CI (and ctest -L lint) instead of silently misleading
ab_compare.py / attribution_report.py / bench_trend.py.

Usage: check_telemetry.py [--root DIR]
Exit status: 0 ok, 1 violations or no files found.
"""

import argparse
import glob
import json
import os
import sys

SUPPORTED_SCHEMA = 3


def check(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"unreadable: {e}"]
    version = doc.get("schema_version")
    if version != SUPPORTED_SCHEMA:
        errors.append(f"schema_version is {version!r}, expected "
                      f"{SUPPORTED_SCHEMA}")
    if not isinstance(doc.get("bench"), str):
        errors.append("missing \"bench\" name")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("missing or empty \"runs\" list")
        return errors
    for i, run in enumerate(runs):
        if not isinstance(run, dict) or "label" not in run:
            errors.append(f"runs[{i}]: no label")
        # Instrumented serve runs promise the decomposition payload.
        if run.get("instrumented"):
            for key in ("attribution", "mutex_waits", "latch_wait_share"):
                if key not in run:
                    errors.append(f"runs[{i}]: instrumented but no {key!r}")
        # Serve cells that declare a prefetch depth promise the async
        # miss-pipeline counters (schema 3).
        if "prefetch_depth" in run:
            for key in ("prefetch_issued", "prefetch_used",
                        "prefetch_wasted", "coalesced_misses",
                        "device_reads"):
                if key not in run:
                    errors.append(
                        f"runs[{i}]: has prefetch_depth but no {key!r}")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")))
    args = parser.parse_args()

    files = sorted(glob.glob(os.path.join(args.root, "bench_results",
                                          "*.json")))
    if not files:
        print("check_telemetry: no bench_results/*.json found",
              file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        rel = os.path.relpath(path, args.root)
        for error in check(path):
            print(f"{rel}: {error}")
            failures += 1
    print(f"check_telemetry: {len(files)} file(s), {failures} problem(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
