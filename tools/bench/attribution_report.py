#!/usr/bin/env python3
"""Renders the latency-attribution telemetry bench_serve_throughput emits.

For every instrumented run in a telemetry file this prints the per-stage
p50/p99 decomposition (which stage dominates the p99-bucket queries?)
and the per-mutex wait summary, ending with the policy-latch wait share
— the number the doc-partitioned-sharding decision (ROADMAP) cites.

Usage:
    attribution_report.py [bench_results/bench_serve_throughput.telemetry.json]
    attribution_report.py FILE --label BAF/RAP --workers 8   # one cell
    attribution_report.py FILE --min-latch-share 0.05        # gate mode

Stage totals are inclusive (a term_loop total contains its page pins),
so shares are read per stage against the wall, not summed across
stages; see DESIGN.md §9.

Exit status: 0 ok, 1 telemetry unusable, 2 usage error,
3 --min-latch-share gate tripped (share at the highest worker count is
BELOW the floor — i.e. the latch is not the bottleneck the share was
expected to show).
"""

import argparse
import json
import sys

# The envelope version this tool understands (bench/bench_util.h).
SUPPORTED_SCHEMA = 3

# Print order: containment first, leaves later, cross-cutting last.
# prefetch_issue covers a whole readahead load on an I/O worker;
# async_wait is the demand-side coalesced wait on an in-flight load.
STAGE_ORDER = [
    "queue_wait", "context_snapshot", "evaluate", "term_loop", "page_pin",
    "miss_read", "crc_verify", "block_decode", "accumulate", "topk_merge",
    "shard_merge", "lock_wait", "prefetch_issue", "async_wait",
]


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return None
    version = doc.get("schema_version")
    if version != SUPPORTED_SCHEMA:
        print(f"error: {path}: schema_version {version!r}, this tool "
              f"understands {SUPPORTED_SCHEMA} (regenerate the telemetry or "
              "update the tool)", file=sys.stderr)
        return None
    return doc


def fmt_us(us):
    if us >= 1000.0:
        return f"{us / 1000.0:.2f}ms"
    return f"{us:.0f}us"


def print_table(rows, header):
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    print(line(header))
    print(line(["-" * w for w in widths]))
    for r in rows:
        print(line(r))


def report_run(run):
    attr = run["attribution"]
    wall = attr.get("wall_us", {})
    print(f"\n=== {run.get('label', '?')} @ {run.get('workers', '?')} workers "
          f"({attr.get('queries', 0)} queries, "
          f"wall p50 {fmt_us(wall.get('p50', 0.0))}, "
          f"p99 {fmt_us(wall.get('p99', 0.0))}) ===")
    rows = []
    for stage in STAGE_ORDER:
        s = run["attribution"].get("stages", {}).get(stage)
        if s is None or s.get("spans", 0) == 0:
            continue
        rows.append([stage, s["spans"], fmt_us(s["p50_us"]),
                     fmt_us(s["p99_us"]), f"{100.0 * s['p99_share']:.1f}%"])
    if rows:
        print_table(rows, ["stage", "spans", "p50", "p99", "p99 share"])
    else:
        print("  (no spans recorded)")

    waits = run.get("mutex_waits", {})
    rows = []
    for name in sorted(waits):
        m = waits[name]
        acq = m.get("acquisitions", 0)
        contended = m.get("contended", 0)
        rows.append([name, acq, contended,
                     f"{100.0 * contended / acq:.2f}%" if acq else "-",
                     f"{m.get('wait_ns_total', 0) / 1e6:.2f}ms"])
    if rows:
        print()
        print_table(rows, ["mutex", "acquisitions", "contended",
                           "contention", "total wait"])
    share = run.get("latch_wait_share")
    if share is not None:
        print(f"\npolicy-latch wait: {100.0 * share:.2f}% of aggregate "
              "worker time")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter, epilog=__doc__)
    parser.add_argument(
        "file", nargs="?",
        default="bench_results/bench_serve_throughput.telemetry.json")
    parser.add_argument("--label", help="only runs with this config label")
    parser.add_argument("--workers", type=int,
                        help="only runs at this worker count")
    parser.add_argument(
        "--min-latch-share", type=float, metavar="FRACTION",
        help="exit 3 unless the latch wait share at the highest selected "
             "worker count is at least FRACTION (evidence gate for the "
             "sharding decision)")
    args = parser.parse_args()

    doc = load(args.file)
    if doc is None:
        return 1
    runs = [r for r in doc.get("runs", [])
            if r.get("instrumented") and "attribution" in r
            and (args.label is None or r.get("label") == args.label)
            and (args.workers is None or r.get("workers") == args.workers)]
    if not runs:
        print(f"error: {args.file}: no instrumented runs match "
              "(was the bench run with --no-spans?)", file=sys.stderr)
        return 1

    print(f"{args.file}: bench {doc.get('bench', '?')}, "
          f"scale {doc.get('scale', '?')}, {len(runs)} instrumented run(s)")
    for run in runs:
        report_run(run)

    if args.min_latch_share is not None:
        top = max(runs, key=lambda r: r.get("workers", 0))
        share = top.get("latch_wait_share", 0.0)
        print(f"\ngate: latch wait share at {top.get('workers')} workers = "
              f"{100.0 * share:.2f}% (floor {100.0 * args.min_latch_share:.2f}%)")
        if share < args.min_latch_share:
            print("gate: FAIL — the policy latch is not the claimed "
                  "bottleneck at this scale")
            return 3
        print("gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
