#!/usr/bin/env python3
"""Perf history across PRs: every committed bench_results/*.json, by commit.

Walks the git history of each committed bench_results/*.json and prints
one table per bench: a row per commit that changed the file (oldest
first), a column per run label, so a PR that re-baselines a bench shows
its trajectory instead of overwriting it silently.

Metric per run, by what the run carries:
    ns_per_op        microbench runs (bench_hotpath)   -> ns/op
    throughput_qps   serve runs (bench_serve_throughput,
                     labelled "LABEL@Nw")              -> queries/s

Usage:
    bench_trend.py                 # all committed bench_results/*.json
    bench_trend.py --file bench_results/bench_hotpath.json
    bench_trend.py --max-commits 10

Exit status: 0 ok (including "nothing committed yet"), 1 git/parse error.
"""

import argparse
import json
import subprocess
import sys


def git(*argv):
    return subprocess.run(["git"] + list(argv), capture_output=True,
                          text=True, check=True).stdout


def committed_files():
    return [line for line in git("ls-files", "bench_results").splitlines()
            if line.endswith(".json")]


def file_history(path, max_commits):
    """[(sha, date, subject)] for commits touching path, oldest first."""
    out = git("log", "--follow", "--format=%h%x09%as%x09%s", "--", path)
    commits = [tuple(line.split("\t", 2)) for line in out.splitlines()]
    commits.reverse()
    if max_commits and len(commits) > max_commits:
        commits = commits[-max_commits:]
    return commits


def metrics_at(sha, path):
    """{label: (metric_name, value)} for the file as of one commit."""
    try:
        doc = json.loads(git("show", f"{sha}:{path}"))
    except (subprocess.CalledProcessError, json.JSONDecodeError):
        return {}
    metrics = {}
    for run in doc.get("runs", []):
        label = run.get("label")
        if label is None:
            continue
        if "ns_per_op" in run:
            metrics[label] = ("ns/op", float(run["ns_per_op"]))
        elif "throughput_qps" in run:
            key = f"{label}@{run.get('workers', '?')}w"
            metrics[key] = ("q/s", float(run["throughput_qps"]))
    return metrics


def print_table(rows, header):
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    def line(cells):
        first = str(cells[0]).ljust(widths[0])
        rest = "  ".join(str(c).rjust(w)
                         for c, w in zip(cells[1:], widths[1:]))
        return f"{first}  {rest}" if rest else first
    print(line(header))
    print(line(["-" * w for w in widths]))
    for r in rows:
        print(line(r))


def trend(path, max_commits):
    commits = file_history(path, max_commits)
    if not commits:
        print(f"{path}: no committed history")
        return
    history = [(sha, date, subject, metrics_at(sha, path))
               for sha, date, subject in commits]
    labels = []
    unit_by_label = {}
    for _, _, _, metrics in history:
        for label, (unit, _) in metrics.items():
            if label not in unit_by_label:
                labels.append(label)
                unit_by_label[label] = unit

    print(f"\n== {path} ==")
    header = ["commit"] + [f"{l} ({unit_by_label[l]})" for l in labels]
    rows = []
    for sha, date, subject, metrics in history:
        row = [f"{sha} {date}"]
        for label in labels:
            entry = metrics.get(label)
            row.append(f"{entry[1]:.1f}" if entry else "-")
        rows.append(row)
    print_table(rows, header)
    for sha, date, subject, _ in history:
        print(f"  {sha}  {subject}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter, epilog=__doc__)
    parser.add_argument("--file", action="append",
                        help="specific committed file(s); default: all of "
                             "git ls-files bench_results/*.json")
    parser.add_argument("--max-commits", type=int, default=0,
                        help="newest N commits per file (0 = all)")
    args = parser.parse_args()

    try:
        files = args.file if args.file else committed_files()
        if not files:
            print("no committed bench_results/*.json yet")
            return 0
        for path in files:
            trend(path, args.max_commits)
        return 0
    except subprocess.CalledProcessError as e:
        print(f"git failed: {e.stderr.strip()}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
