#!/usr/bin/env bash
# Check-only formatting gate: runs clang-format (profile: .clang-format
# at the repo root) over all first-party sources with --dry-run and
# fails if any file would be rewritten. Never modifies the tree.
#
# Usage: tools/lint/check_format.sh
# To fix findings locally:  clang-format -i <file>...
#
# Exits 0 with a notice when clang-format is not installed (the dev
# container ships GCC only); CI installs it and the static-analysis
# job runs this gate ENFORCING — a formatting diff fails the job.
#
# tools/analyze/fixtures is deliberately NOT covered: analyzer fixture
# expectations are line-anchored (// ANALYZE-EXPECT markers), and a
# reformat that moves a line would silently retarget them.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"

FMT="${CLANG_FORMAT:-clang-format}"
if ! command -v "${FMT}" >/dev/null 2>&1; then
  echo "check_format: ${FMT} not found; skipping (install clang-format" \
       "or set CLANG_FORMAT to enable the gate locally)."
  exit 0
fi

cd "${repo_root}"
mapfile -t sources < <(find src bench examples tests tools/lint/fixtures \
  \( -name '*.cc' -o -name '*.h' \) | sort)

echo "check_format: checking ${#sources[@]} files with ${FMT}"
if ! "${FMT}" --dry-run --Werror "${sources[@]}"; then
  echo "check_format: FAILED — run 'clang-format -i' on the files above." >&2
  exit 1
fi
echo "check_format: OK"
