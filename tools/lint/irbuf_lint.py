#!/usr/bin/env python3
"""irbuf's repo-specific invariant linter.

Enforces rules the generic tools (clang-tidy, -Werror=thread-safety)
cannot express, because they encode project protocol rather than
language semantics:

  raw-fetch        Evaluator and serving code (src/core/, src/serve/)
                   must access pages through the PinnedPage RAII
                   protocol (FetchPinned); raw BufferManager::FetchPage
                   returns a pointer the next fetch may invalidate.
  dropped-status   A util::Status / Result<T> returned by a known
                   status API must not be discarded as a bare statement.
                   (The compiler enforces this too via [[nodiscard]] +
                   -Werror=unused-result; the linter keeps the contract
                   visible in review diffs and catches code that is not
                   compiled in every configuration.)
  unguarded-mutex  Mutex members in the concurrent subsystems
                   (src/serve/, src/buffer/, src/obs/) must be the
                   annotated irbuf::Mutex, and every such mutex must
                   appear in at least one IRBUF_GUARDED_BY /
                   IRBUF_PT_GUARDED_BY / IRBUF_REQUIRES contract in its
                   file. A raw std::mutex member is invisible to the
                   thread-safety analysis.
  raw-rand         All randomness must flow through util/rng.h (Pcg32).
                   rand()/srand()/std::random_device/std::mt19937 break
                   the bit-for-bit reproducibility the differential
                   tests rely on.
  raw-sleep        All waits must flow through fault::SleepUs
                   (src/fault/backoff.h). A raw sleep_for/sleep_until/
                   usleep/nanosleep is invisible to the fault layer's
                   accounting and can't be centrally capped or audited;
                   backoff.cc holds the tree's single annotated raw
                   sleep.
  raw-clock        Timing in the hot-path subsystems (src/core/,
                   src/serve/, src/buffer/, src/storage/, src/obs/)
                   must read util/monotonic_clock.h (MonotonicNowNs) or
                   record through obs/span.h. A raw steady_clock/
                   system_clock/clock_gettime call forks the timebase:
                   spans, lock waits and latency accounting stop lining
                   up in one Perfetto timeline, and wall-clock reads
                   are not monotonic across NTP steps.
  hot-alloc        Regions bracketed by // LINT-HOT-LOOP ...
                   // LINT-HOT-LOOP-END mark the per-posting loops the
                   evaluation engine's zero-allocation contract covers
                   (block decode, accumulator probes, run scans). No
                   std::vector may be constructed and no push_back/
                   emplace_back may run inside one — an allocation there
                   is a per-posting cost the A/B benches exist to keep
                   out. Appends that amortize per run/page belong
                   outside the markers.

Usage:
  irbuf_lint.py [--root DIR]    lint the tree (default: repo root)
  irbuf_lint.py --self-test     run the rules against the fixture files
                                in tools/lint/fixtures/ and verify each
                                rule flags exactly its LINT-EXPECT lines

Exit status: 0 clean, 1 violations (or self-test failure), 2 usage error.

A line can be exempted with a trailing `// irbuf-lint: allow(<rule>)`
comment; use sparingly and explain why in an adjacent comment.
"""

import argparse
import os
import re
import sys
from typing import Dict, List, Set, Tuple

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))

# (path, line, rule, message)
Violation = Tuple[str, int, str, str]

ALLOW_RE = re.compile(r"//\s*irbuf-lint:\s*allow\(([\w,\s-]+)\)")
EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([\w,\s-]+)")
LINT_PATH_RE = re.compile(r"//\s*LINT-PATH:\s*(\S+)")


def strip_comments(line: str, in_block: bool) -> Tuple[str, bool]:
    """Removes // and /* */ comment text (string literals are not parsed;
    good enough for lint heuristics on this codebase)."""
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block


def allowed_rules(raw_line: str) -> Set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


# --------------------------------------------------------------------------
# Rule: raw-fetch
# --------------------------------------------------------------------------

RAW_FETCH_SCOPE = ("src/core/", "src/serve/", "src/shard/",
                   "src/workload/", "src/fault/", "src/ir/",
                   "tools/")
RAW_FETCH_RE = re.compile(r"(?:\.|->)\s*FetchPage\s*\(")


def check_raw_fetch(path: str, code_lines: List[Tuple[int, str, str]],
                    out: List[Violation]) -> None:
    if not path.startswith(RAW_FETCH_SCOPE):
        return
    for lineno, code, raw in code_lines:
        if RAW_FETCH_RE.search(code) and "raw-fetch" not in allowed_rules(raw):
            out.append((path, lineno, "raw-fetch",
                        "raw FetchPage bypasses the PinnedPage protocol; "
                        "use FetchPinned so the page cannot be evicted "
                        "while it is being read"))


# --------------------------------------------------------------------------
# Rule: dropped-status
# --------------------------------------------------------------------------

# `Status Foo(...)` / `Result<T> Foo(...)` declarations; collected from
# headers tree-wide plus the file being linted.
STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+)*"
    r"(?:irbuf::|util::)?(?:Status|Result<[^;={}]*>)\s+(\w+)\s*\(")
# A call used as an entire statement: optional receiver chain (no
# parentheses, so wrapper macros match as the outer name instead), a
# name, an argument list, then `;` — nothing consuming the value.
BARE_CALL_RE = re.compile(
    r"^\s*(?:[\w\]\[]+(?:\.|->))*(\w+)\s*\([^;=]*\)\s*;\s*$")
# Names that look like calls but are flow/assertion macros wrapping the
# status, not discards.
BARE_CALL_IGNORE = {
    "IRBUF_RETURN_NOT_OK", "IRBUF_DCHECK", "ASSERT_TRUE", "ASSERT_FALSE",
    "EXPECT_TRUE", "EXPECT_FALSE", "ASSERT_OK", "EXPECT_OK", "return",
}
# Any function declaration: return type tokens, then a name, then `(`.
# Used only to detect names that are ALSO declared with a non-status
# return type — those are ambiguous for a name-based matcher and are
# dropped from the API set (the compiler's [[nodiscard]] still covers
# them precisely).
ANY_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?"
    r"(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+)*"
    r"((?:[\w:]+(?:<[^;={}]*>)?[\s\*&]+)+)(\w+)\s*\(")
DECL_KEYWORDS = {"return", "if", "while", "for", "switch", "case", "else",
                 "new", "delete", "do", "using", "typedef", "goto", "co_return"}
# A previous code line ending with one of these means the next line
# starts a new statement (anything else — `=`, `(`, `,`, `&&` ... —
# means the line is a continuation).
STATEMENT_BOUNDARY = (";", "{", "}", ":", ")")


def collect_status_apis(files: Dict[str, List[str]]) -> Set[str]:
    names: Set[str] = set()
    other_return: Set[str] = set()
    for _, lines in files.items():
        in_block = False
        for raw in lines:
            code, in_block = strip_comments(raw, in_block)
            m = STATUS_DECL_RE.match(code)
            if m:
                names.add(m.group(1))
                continue
            m = ANY_DECL_RE.match(code)
            if m:
                rtype = m.group(1)
                first = rtype.split()[0].rstrip("*&") if rtype.split() else ""
                if first in DECL_KEYWORDS:
                    continue
                if "Status" not in rtype and "Result" not in rtype:
                    other_return.add(m.group(2))
    return names - other_return


def check_dropped_status(path: str, code_lines: List[Tuple[int, str, str]],
                         status_apis: Set[str],
                         out: List[Violation]) -> None:
    if not path.endswith((".cc", ".cpp", ".h")):
        return
    prev_code = ""
    for lineno, code, raw in code_lines:
        starts_statement = (prev_code == ""
                            or prev_code.endswith(STATEMENT_BOUNDARY))
        if code.strip():
            prev_code = code.rstrip()
        if not starts_statement:
            continue
        m = BARE_CALL_RE.match(code)
        if not m:
            continue
        name = m.group(1)
        if name in BARE_CALL_IGNORE or name not in status_apis:
            continue
        if "dropped-status" in allowed_rules(raw):
            continue
        out.append((path, lineno, "dropped-status",
                    f"return value of status API '{name}' is discarded; "
                    "check it, propagate it with IRBUF_RETURN_NOT_OK, or "
                    "annotate `// irbuf-lint: allow(dropped-status)` with "
                    "a reason"))


# --------------------------------------------------------------------------
# Rule: unguarded-mutex
# --------------------------------------------------------------------------

MUTEX_SCOPE = ("src/serve/", "src/shard/", "src/buffer/", "src/obs/",
               "src/fault/", "tools/")
STD_MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::(?:shared_|recursive_|timed_)?mutex\s+(\w+)\s*;")
IRBUF_MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:irbuf::)?Mutex\s+(\w+)\s*;")


def check_unguarded_mutex(path: str, code_lines: List[Tuple[int, str, str]],
                          out: List[Violation]) -> None:
    if not path.startswith(MUTEX_SCOPE) or not path.endswith(".h"):
        return
    whole = "\n".join(code for _, code, _ in code_lines)
    for lineno, code, raw in code_lines:
        allow = allowed_rules(raw)
        m = STD_MUTEX_MEMBER_RE.match(code)
        if m and "unguarded-mutex" not in allow:
            out.append((path, lineno, "unguarded-mutex",
                        f"raw std::mutex member '{m.group(1)}' is invisible "
                        "to the thread-safety analysis; use irbuf::Mutex "
                        "from util/mutex.h with IRBUF_GUARDED_BY contracts"))
            continue
        m = IRBUF_MUTEX_MEMBER_RE.match(code)
        if m and "unguarded-mutex" not in allow:
            name = re.escape(m.group(1))
            contract = re.compile(
                r"IRBUF_(?:PT_)?GUARDED_BY\(\s*" + name + r"\s*\)|"
                r"IRBUF_REQUIRES\(\s*" + name + r"\s*\)")
            if not contract.search(whole):
                out.append((path, lineno, "unguarded-mutex",
                            f"mutex '{m.group(1)}' has no IRBUF_GUARDED_BY/"
                            "IRBUF_PT_GUARDED_BY/IRBUF_REQUIRES contract in "
                            "this file; state what it guards"))


# --------------------------------------------------------------------------
# Rule: raw-rand
# --------------------------------------------------------------------------

RAND_SCOPE = ("src/", "bench/", "examples/")
RAND_EXEMPT = ("src/util/rng.h",)
RAW_RAND_RE = re.compile(
    r"\b(?:std::)?(?:s?rand\s*\(|random_device\b|mt19937(?:_64)?\b)")


def check_raw_rand(path: str, code_lines: List[Tuple[int, str, str]],
                   out: List[Violation]) -> None:
    if not path.startswith(RAND_SCOPE) or path in RAND_EXEMPT:
        return
    for lineno, code, raw in code_lines:
        if RAW_RAND_RE.search(code) and "raw-rand" not in allowed_rules(raw):
            out.append((path, lineno, "raw-rand",
                        "nondeterministic/raw randomness breaks bit-for-bit "
                        "reproducibility; route through util/rng.h (Pcg32)"))


# --------------------------------------------------------------------------
# Rule: raw-sleep
# --------------------------------------------------------------------------

SLEEP_SCOPE = ("src/", "bench/", "examples/", "tools/")
RAW_SLEEP_RE = re.compile(
    r"\bsleep_(?:for|until)\s*\(|\b(?:::)?(?:u|nano)sleep\s*\(")


def check_raw_sleep(path: str, code_lines: List[Tuple[int, str, str]],
                    out: List[Violation]) -> None:
    if not path.startswith(SLEEP_SCOPE):
        return
    for lineno, code, raw in code_lines:
        if RAW_SLEEP_RE.search(code) and "raw-sleep" not in allowed_rules(raw):
            out.append((path, lineno, "raw-sleep",
                        "raw sleep is invisible to the fault layer's "
                        "accounting; wait via fault::SleepUs "
                        "(src/fault/backoff.h)"))


# --------------------------------------------------------------------------
# Rule: raw-clock
# --------------------------------------------------------------------------

CLOCK_SCOPE = ("src/core/", "src/serve/", "src/shard/", "src/buffer/",
               "src/storage/", "src/obs/", "src/fault/", "tools/")
RAW_CLOCK_RE = re.compile(
    r"\b(?:std::chrono::)?(?:steady_clock|system_clock|"
    r"high_resolution_clock)\s*::\s*now\s*\(|\bclock_gettime\s*\(|"
    r"\bgettimeofday\s*\(")


def check_raw_clock(path: str, code_lines: List[Tuple[int, str, str]],
                    out: List[Violation]) -> None:
    if not path.startswith(CLOCK_SCOPE):
        return
    for lineno, code, raw in code_lines:
        if RAW_CLOCK_RE.search(code) and "raw-clock" not in allowed_rules(raw):
            out.append((path, lineno, "raw-clock",
                        "raw clock read forks the hot path's timebase; "
                        "use MonotonicNowNs (util/monotonic_clock.h) or an "
                        "obs::ScopedSpan so spans, lock waits and latency "
                        "accounting share one monotonic timeline"))


# --------------------------------------------------------------------------
# Rule: hot-alloc
# --------------------------------------------------------------------------

HOT_LOOP_START_RE = re.compile(r"//\s*LINT-HOT-LOOP(?!-END)")
HOT_LOOP_END_RE = re.compile(r"//\s*LINT-HOT-LOOP-END")
HOT_ALLOC_RE = re.compile(r"std::vector\s*<|(?:\.|->)\s*(?:push_back|"
                          r"emplace_back)\s*\(")


def check_hot_alloc(path: str, code_lines: List[Tuple[int, str, str]],
                    out: List[Violation]) -> None:
    in_region = False
    region_open_line = 0
    for lineno, code, raw in code_lines:
        # Markers live in comments, so match the raw line.
        if HOT_LOOP_END_RE.search(raw):
            in_region = False
            continue
        if HOT_LOOP_START_RE.search(raw):
            in_region = True
            region_open_line = lineno
            continue
        if not in_region:
            continue
        if HOT_ALLOC_RE.search(code) and "hot-alloc" not in allowed_rules(raw):
            out.append((path, lineno, "hot-alloc",
                        "allocation inside the LINT-HOT-LOOP region opened "
                        f"at line {region_open_line}: these loops run per "
                        "posting and must not construct or grow a "
                        "std::vector; hoist the allocation above the "
                        "marker or amortize it per run/page"))
    if in_region:
        out.append((path, region_open_line, "hot-alloc",
                    "LINT-HOT-LOOP region is never closed; add "
                    "// LINT-HOT-LOOP-END"))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

SOURCE_EXTS = (".cc", ".cpp", ".h")
LINT_DIRS = ("src", "bench", "examples")
# C++ fixture corpora shipped with the tools/ Python entry points: the
# tree run lints them too (at their LINT-PATH virtual path when they
# declare one), so a fixture cannot quietly rot out of the rules it
# demonstrates. Findings on LINT-EXPECT-marked lines are intentional
# and subtracted by run_tree.
FIXTURE_DIRS = ("tools/lint/fixtures", "tools/analyze/fixtures")


def load_tree(root: str) -> Dict[str, List[str]]:
    files: Dict[str, List[str]] = {}
    for top in LINT_DIRS + FIXTURE_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if not name.endswith(SOURCE_EXTS):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                with open(full, encoding="utf-8", errors="replace") as f:
                    files[rel] = f.read().splitlines()
    return files


def lint_file(path: str, lines: List[str], status_apis: Set[str]
              ) -> List[Violation]:
    # (lineno, comment-stripped code, raw line) triples.
    code_lines: List[Tuple[int, str, str]] = []
    in_block = False
    for i, raw in enumerate(lines, start=1):
        code, in_block = strip_comments(raw, in_block)
        code_lines.append((i, code, raw))
    out: List[Violation] = []
    check_raw_fetch(path, code_lines, out)
    check_dropped_status(path, code_lines, status_apis, out)
    check_unguarded_mutex(path, code_lines, out)
    check_raw_rand(path, code_lines, out)
    check_raw_sleep(path, code_lines, out)
    check_raw_clock(path, code_lines, out)
    check_hot_alloc(path, code_lines, out)
    return out


def run_tree(root: str) -> int:
    files = load_tree(root)
    status_apis = collect_status_apis(
        {p: ls for p, ls in files.items() if p.endswith(".h")})
    violations: List[Violation] = []
    for path, lines in sorted(files.items()):
        lint_path = path
        expected: Set[Tuple[int, str]] = set()
        if path.startswith("tools/"):
            # Fixtures lint at the path they claim to live at, and
            # their deliberate violations (LINT-EXPECT lines) are the
            # fixture working as intended, not tree findings.
            for raw in lines:
                m = LINT_PATH_RE.search(raw)
                if m:
                    lint_path = m.group(1)
                    break
            for i, raw in enumerate(lines, start=1):
                m = EXPECT_RE.search(raw)
                if m:
                    for rule in m.group(1).split(","):
                        expected.add((i, rule.strip()))
        found = lint_file(lint_path, lines, status_apis)
        violations.extend(
            (path, lineno, rule, msg)
            for (_p, lineno, rule, msg) in found
            if (lineno, rule) not in expected)
    for path, lineno, rule, msg in violations:
        print(f"{path}:{lineno}: [{rule}] {msg}")
    print(f"irbuf_lint: {len(files)} files, {len(violations)} violation(s)")
    return 1 if violations else 0


def run_self_test() -> int:
    fixtures_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "fixtures")
    failures = 0
    total_expected = 0
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(SOURCE_EXTS):
            continue
        full = os.path.join(fixtures_dir, name)
        with open(full, encoding="utf-8") as f:
            lines = f.read().splitlines()
        # The fixture declares the path it pretends to live at, so the
        # path-scoped rules apply.
        virtual_path = None
        for raw in lines:
            m = LINT_PATH_RE.search(raw)
            if m:
                virtual_path = m.group(1)
                break
        if virtual_path is None:
            print(f"self-test: {name}: missing // LINT-PATH: header")
            failures += 1
            continue
        expected: Set[Tuple[int, str]] = set()
        for i, raw in enumerate(lines, start=1):
            m = EXPECT_RE.search(raw)
            if m:
                for rule in m.group(1).split(","):
                    expected.add((i, rule.strip()))
        total_expected += len(expected)
        # Status APIs: the fixture's own declarations only, so the test
        # is hermetic against repo refactors.
        status_apis = collect_status_apis({virtual_path: lines})
        got = {(lineno, rule)
               for _, lineno, rule, _ in
               lint_file(virtual_path, lines, status_apis)}
        for missing in sorted(expected - got):
            print(f"self-test FAIL: {name}:{missing[0]}: expected "
                  f"[{missing[1]}] was not flagged")
            failures += 1
        for extra in sorted(got - expected):
            print(f"self-test FAIL: {name}:{extra[0]}: unexpected "
                  f"[{extra[1]}] finding")
            failures += 1
    if total_expected == 0:
        print("self-test FAIL: no LINT-EXPECT markers found in fixtures")
        return 1
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(f"self-test: ok ({total_expected} expected findings matched)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to lint (default: repo root)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against the fixture files")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    return run_tree(os.path.abspath(args.root))


if __name__ == "__main__":
    sys.exit(main())
