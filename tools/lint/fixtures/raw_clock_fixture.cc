// LINT-PATH: src/serve/raw_clock_fixture.cc
// Fixture for the raw-clock rule: hot-path subsystems must time through
// util/monotonic_clock.h (MonotonicNowNs) or obs/span.h so every
// recorded interval shares one monotonic timebase.

#include <chrono>
#include <ctime>

#include "util/monotonic_clock.h"

namespace irbuf {

void BadClocks() {
  auto a = std::chrono::steady_clock::now();        // LINT-EXPECT: raw-clock
  auto b = std::chrono::system_clock::now();        // LINT-EXPECT: raw-clock
  auto c = std::chrono::high_resolution_clock::now();  // LINT-EXPECT: raw-clock
  (void)a; (void)b; (void)c;

  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);  // LINT-EXPECT: raw-clock

  // With a `using namespace std::chrono` the qualifier disappears; the
  // rule still matches on the clock name.
  using namespace std::chrono;
  auto d = steady_clock::now();  // LINT-EXPECT: raw-clock
  (void)d;
}

void GoodClocks() {
  // The sanctioned timebase.
  const uint64_t start_ns = MonotonicNowNs();
  const uint64_t dur_ns = MonotonicNowNs() - start_ns;
  (void)dur_ns;

  // Duration arithmetic (no ::now() read) is fine.
  auto window = std::chrono::microseconds(500);
  (void)window;

  // Explicitly waived: a wall-clock timestamp for a log line, where
  // calendar time is the point and the value never enters a latency
  // interval.
  auto stamp = std::chrono::system_clock::now();  // irbuf-lint: allow(raw-clock)
  (void)stamp;
}

}  // namespace irbuf
