// LINT-PATH: src/fault/scope_sample.cc
// Scope-extension fixture: src/fault/ joined the raw-fetch and
// raw-clock scopes (PR 8) — the fault layer sits on the read path, so
// a raw FetchPage or a clock read that forks the retry/backoff
// timebase is just as wrong there as in serve/.

namespace irbuf::fault_fixture {

class Reader {
 public:
  void BypassesPinProtocol() {
    inner_->FetchPage(3);  // LINT-EXPECT: raw-fetch
  }

  long ForksTheTimebase() {
    return std::chrono::steady_clock::now()  // LINT-EXPECT: raw-clock
        .time_since_epoch()
        .count();
  }

 private:
  class Inner {
   public:
    int FetchPage(int id);
  };
  Inner* inner_ = nullptr;
};

}  // namespace irbuf::fault_fixture
