// LINT-PATH: src/serve/unguarded_mutex_fixture.h
// Fixture for the unguarded-mutex rule: concurrent subsystems must use
// the annotated irbuf::Mutex, and every mutex must state what it guards.

#include <mutex>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace irbuf::serve {

class Bad {
 private:
  std::mutex raw_mu_;  // LINT-EXPECT: unguarded-mutex
  Mutex lonely_mu_;    // LINT-EXPECT: unguarded-mutex
  int counter_ = 0;
};

class Good {
 private:
  mutable Mutex mu_;
  int counter_ IRBUF_GUARDED_BY(mu_) = 0;
};

class AlsoGood {
 private:
  Mutex queue_mu_;
  void DrainLocked() IRBUF_REQUIRES(queue_mu_);
};

}  // namespace irbuf::serve
