// LINT-PATH: tools/analyze/fixtures/scope_sample.h
// Scope-extension fixture: proves the widened rule scopes fire on the
// tools/ fixture corpora (raw-fetch, unguarded-mutex, raw-clock,
// raw-sleep). Each marked line must be flagged by --self-test; in a
// tree run the LINT-EXPECT markers subtract them, so the corpus stays
// green while the scopes stay provably live.

#include <chrono>
#include <mutex>
#include <thread>

namespace irbuf::fixture {

class ScopeSample {
 public:
  void RawFetchInToolsScope() {
    pool_->FetchPage(7);  // LINT-EXPECT: raw-fetch
  }

  void RawClockInToolsScope() {
    last_ns_ = std::chrono::steady_clock::now()  // LINT-EXPECT: raw-clock
                   .time_since_epoch()
                   .count();
  }

  void RawSleepInToolsScope() {
    std::this_thread::sleep_for(  // LINT-EXPECT: raw-sleep
        std::chrono::milliseconds(1));
  }

 private:
  class Pool {
   public:
    int FetchPage(int id);
  };

  Pool* pool_ = nullptr;
  long last_ns_ = 0;
  std::mutex mu_;  // LINT-EXPECT: unguarded-mutex
};

}  // namespace irbuf::fixture
