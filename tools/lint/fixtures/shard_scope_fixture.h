// LINT-PATH: src/shard/shard_scope_fixture.h
// Fixture pinning the scope extension for the sharded-serving
// subsystem: src/shard/ is covered by the unguarded-mutex, raw-fetch
// and raw-clock rules exactly like src/serve/ (the coordinator and
// lane threads are as concurrent as the server they feed).

#include <chrono>
#include <mutex>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace irbuf::shard {

class BadLanes {
 private:
  std::mutex raw_mu_;  // LINT-EXPECT: unguarded-mutex
  Mutex lonely_mu_;    // LINT-EXPECT: unguarded-mutex
};

class GoodLanes {
 private:
  mutable Mutex mu_;
  int pending_ IRBUF_GUARDED_BY(mu_) = 0;
  void DrainLocked() IRBUF_REQUIRES(mu_);
};

inline void BadClock() {
  auto t = std::chrono::steady_clock::now();  // LINT-EXPECT: raw-clock
  (void)t;
}

inline void BadFetch(BufferPool& pool) {
  pool.FetchPage(0);  // LINT-EXPECT: raw-fetch
}

}  // namespace irbuf::shard
