// Fixture for the hot-alloc rule: std::vector construction and
// push_back/emplace_back are forbidden between // LINT-HOT-LOOP and
// // LINT-HOT-LOOP-END, anywhere in the lint scope.
// LINT-PATH: src/core/hot_alloc_fixture.cc

#include <vector>

namespace irbuf::core {

// Outside any region: allocation is fine.
inline std::vector<int> ColdPath() {
  std::vector<int> out;
  out.push_back(1);
  return out;
}

inline int HotPath(const std::vector<int>& in) {
  std::vector<int> before_region;  // Hoisted above the marker: fine.
  int sum = 0;
  // LINT-HOT-LOOP: fixture per-posting loop.
  for (int v : in) {
    std::vector<int> scratch;           // LINT-EXPECT: hot-alloc
    before_region.push_back(v);         // LINT-EXPECT: hot-alloc
    before_region.emplace_back(v + 1);  // LINT-EXPECT: hot-alloc
    sum += v;
    // A vetted amortized append may be annotated away:
    before_region.push_back(sum);  // irbuf-lint: allow(hot-alloc)
  }
  // LINT-HOT-LOOP-END
  before_region.push_back(sum);  // Region closed: fine again.
  return sum;
}

// A second region in the same file, left unclosed on purpose.
// LINT-HOT-LOOP: unterminated fixture region.  // LINT-EXPECT: hot-alloc

}  // namespace irbuf::core
