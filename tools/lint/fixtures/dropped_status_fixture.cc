// LINT-PATH: src/storage/dropped_status_fixture.cc
// Fixture for the dropped-status rule: a Status/Result returned by a
// declared status API must not be discarded as a bare statement.

#include "util/status.h"

namespace irbuf {

Status WriteBlock(int block);
Result<int> ReadBlock(int block);

struct Device {
  Status Sync();
};

Status BadCallers(Device& dev) {
  WriteBlock(1);  // LINT-EXPECT: dropped-status
  dev.Sync();     // LINT-EXPECT: dropped-status
  ReadBlock(2);   // LINT-EXPECT: dropped-status

  // Consumed results are fine.
  Status s = WriteBlock(3);
  if (!s.ok()) return s;
  IRBUF_RETURN_NOT_OK(dev.Sync());
  auto r = ReadBlock(4);
  (void)r;

  // Explicitly waived with a reason: shutdown path, error is logged
  // by the device itself.
  dev.Sync();  // irbuf-lint: allow(dropped-status)

  return Status::OK();
}

void NonStatusCallsAreFine() {
  // A bare call to something that is not a status API.
  NonStatusHelper(5);
}

void NonStatusHelper(int);

}  // namespace irbuf
