// LINT-PATH: src/serve/raw_fetch_fixture.cc
// Fixture for the raw-fetch rule: serving/evaluator code must pin pages
// through the PinnedPage RAII protocol, never via raw FetchPage.

#include "buffer/buffer_manager.h"

namespace irbuf::serve {

void BadDirectFetch(buffer::BufferManager& bm, PageId id) {
  auto page = bm.FetchPage(id);  // LINT-EXPECT: raw-fetch
  (void)page;
}

void BadPointerFetch(buffer::BufferManager* bm, PageId id) {
  auto page = bm->FetchPage(id);  // LINT-EXPECT: raw-fetch
  (void)page;
}

void GoodPinnedFetch(ConcurrentBufferPool& pool, PageId id) {
  auto pinned = pool.FetchPinned(id);  // RAII guard: not flagged.
  (void)pinned;
}

// A mention of FetchPage in a comment is not a call.
// The old API was bm.FetchPage(id); do not use it here.

}  // namespace irbuf::serve
