// LINT-PATH: src/serve/raw_sleep_fixture.cc
// Fixture for the raw-sleep rule: waits must flow through
// fault::SleepUs so the fault layer can account for (and chaos tests
// can bound) every delay in the tree.

#include <chrono>
#include <thread>

#include "fault/backoff.h"

namespace irbuf {

void BadWaits() {
  std::this_thread::sleep_for(           // LINT-EXPECT: raw-sleep
      std::chrono::microseconds(100));
  std::this_thread::sleep_until(         // LINT-EXPECT: raw-sleep
      std::chrono::steady_clock::time_point{} + std::chrono::milliseconds(1));
  usleep(100);                           // LINT-EXPECT: raw-sleep
  ::usleep(100);                         // LINT-EXPECT: raw-sleep
}

void GoodWaits() {
  // The blessed path: centrally accounted, capped, and auditable.
  fault::SleepUs(100);

  // The one legitimate raw sleep lives in fault/backoff.cc behind this
  // annotation (with a reason).
  std::this_thread::sleep_for(  // irbuf-lint: allow(raw-sleep)
      std::chrono::microseconds(100));
}

// Mentions in comments are fine: sleep_for is not a call here.
// Identifiers that merely contain the words are fine too.
void sleep_formatter();
int nanosleep_count = 0;

}  // namespace irbuf
