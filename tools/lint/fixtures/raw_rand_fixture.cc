// LINT-PATH: src/workload/raw_rand_fixture.cc
// Fixture for the raw-rand rule: all randomness flows through
// util/rng.h (Pcg32) so runs are bit-for-bit reproducible.

#include <cstdlib>
#include <random>

#include "util/rng.h"

namespace irbuf {

int BadRandomness() {
  std::srand(42);         // LINT-EXPECT: raw-rand
  int a = std::rand();    // LINT-EXPECT: raw-rand
  int b = rand();         // LINT-EXPECT: raw-rand
  std::random_device rd;  // LINT-EXPECT: raw-rand
  std::mt19937 gen(123);  // LINT-EXPECT: raw-rand
  return a + b + static_cast<int>(rd()) + static_cast<int>(gen());
}

uint32_t GoodRandomness() {
  Pcg32 rng(42);  // Seeded deterministic generator: not flagged.
  // Identifiers merely containing the substring are fine: operand,
  // MakeRandomDoc.
  uint32_t operand = rng.Next();
  return operand;
}

}  // namespace irbuf
