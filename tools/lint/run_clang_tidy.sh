#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over every
# first-party translation unit, using a compile_commands.json produced
# by a dedicated CMake configure.
#
# Usage: tools/lint/run_clang_tidy.sh [build-dir]
#   build-dir defaults to build-tidy (kept separate from the main build
#   so switching compilers does not thrash its cache).
#
# Exits 0 with a notice when clang-tidy is not installed (the dev
# container ships GCC only); CI installs clang-tools and enforces it.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
build_dir="${1:-${repo_root}/build-tidy}"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "run_clang_tidy: ${TIDY} not found; skipping (install clang-tools" \
       "or set CLANG_TIDY to enable the gate locally)."
  exit 0
fi

# Prefer clang as the configured compiler so the compile flags in
# compile_commands.json are ones clang-tidy's bundled clang understands;
# fall back to the default compiler otherwise.
configure_args=()
if command -v clang++ >/dev/null 2>&1; then
  configure_args+=(-DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++)
fi

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  "${configure_args[@]}" >/dev/null

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy: ${build_dir}/compile_commands.json missing" >&2
  exit 1
fi

# First-party TUs only: generated/third-party code is not ours to fix.
mapfile -t sources < <(cd "${repo_root}" \
  && find src bench examples -name '*.cc' | sort)

echo "run_clang_tidy: checking ${#sources[@]} files with ${TIDY}"

# run-clang-tidy parallelises when available; otherwise loop.
RUNNER="${RUN_CLANG_TIDY:-run-clang-tidy}"
if command -v "${RUNNER}" >/dev/null 2>&1; then
  cd "${repo_root}"
  # File arguments are regexes matched against the paths in the
  # compilation database, so plain relative paths work unanchored.
  "${RUNNER}" -quiet -p "${build_dir}" -clang-tidy-binary "$(command -v "${TIDY}")" \
    "${sources[@]}" >"${build_dir}/clang-tidy.log" 2>&1 \
    || { cat "${build_dir}/clang-tidy.log"; exit 1; }
  # run-clang-tidy exits 0 even for plain warnings; show them for the log.
  grep -E "warning:|error:" "${build_dir}/clang-tidy.log" || true
else
  status=0
  for f in "${sources[@]}"; do
    "${TIDY}" -p "${build_dir}" --quiet "${repo_root}/${f}" || status=1
  done
  exit "${status}"
fi

echo "run_clang_tidy: OK"
