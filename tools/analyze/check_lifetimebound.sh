#!/usr/bin/env bash
# Compile-fail-style test for the IRBUF_LIFETIME_BOUND annotations
# (util/attributes.h): under clang, a reference bound to pinned/Result
# storage that outlives its owner must produce a -Wdangling diagnostic,
# and the equivalent correct code must compile silently.
#
# Exits 77 (the ctest skip code) when no clang is available — the
# annotation is a no-op elsewhere and CI's semantic-analysis job runs
# this under pinned clang.
set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
CLANG="${IRBUF_CLANG:-clang++}"

if ! command -v "$CLANG" >/dev/null 2>&1; then
  echo "check_lifetimebound: $CLANG not found; skipping"
  exit 77
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Misuse 1: reference into a temporary Result outlives it.
# Misuse 2: pointer out of a temporary PinnedPage outlives the pin.
cat > "$TMP/misuse.cc" << 'EOF'
#include "buffer/buffer_pool.h"
#include "util/status.h"

irbuf::Result<int> MakeResult() { return irbuf::Result<int>(42); }
irbuf::buffer::PinnedPage MakePin() {
  return irbuf::buffer::PinnedPage(nullptr, nullptr, 0, false);
}

const int& BadResultRef() {
  const int& v = MakeResult().value();  // dangles: Result dies here
  return v;
}

const irbuf::storage::Page* BadPinPtr() {
  const irbuf::storage::Page* p = MakePin().get();  // dangles: pin dies
  return p;
}
EOF

cat > "$TMP/correct.cc" << 'EOF'
#include "buffer/buffer_pool.h"
#include "util/status.h"

irbuf::Result<int> MakeResult() { return irbuf::Result<int>(42); }

int GoodCopyOut() {
  irbuf::Result<int> r = MakeResult();
  if (!r.ok()) return -1;
  return r.value();  // value copied while the Result is alive
}
EOF

FLAGS=(-std=c++20 -fsyntax-only -I "$ROOT/src" -Wdangling)

if ! OUT_MISUSE="$("$CLANG" "${FLAGS[@]}" "$TMP/misuse.cc" 2>&1)"; then
  echo "check_lifetimebound: misuse TU failed to parse:"
  echo "$OUT_MISUSE"
  exit 1
fi
if ! grep -qE "dangling|will be destroyed" <<< "$OUT_MISUSE"; then
  echo "check_lifetimebound: FAIL — expected a dangling-reference"
  echo "warning from the lifetimebound annotations, got none:"
  echo "$OUT_MISUSE"
  exit 1
fi
N_WARN=$(grep -cE "dangling|will be destroyed" <<< "$OUT_MISUSE")
if [ "$N_WARN" -lt 2 ]; then
  echo "check_lifetimebound: FAIL — expected both misuses to warn;"
  echo "got:"
  echo "$OUT_MISUSE"
  exit 1
fi

if ! OUT_OK="$("$CLANG" "${FLAGS[@]}" -Werror "$TMP/correct.cc" 2>&1)"; then
  echo "check_lifetimebound: FAIL — correct TU should be clean:"
  echo "$OUT_OK"
  exit 1
fi

echo "check_lifetimebound: OK (both misuses warn, correct code clean)"
exit 0
