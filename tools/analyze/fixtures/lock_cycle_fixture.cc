// Fixture: check 2 (lock-cycle). Two inconsistent acquisition orders
// across classes form a cycle in the lock-order graph; a helper that
// re-acquires a mutex the caller already holds is a self-deadlock.
// The finding anchors at the acquisition that closes the cycle.

struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

class Beta;

class Alpha {
 public:
  void TakeBoth();
  void TakeMineOnly();

  Mutex mu_;
  Beta* beta_ = nullptr;
};

class Beta {
 public:
  void TakeBoth();

  Mutex mu_;
  Alpha* alpha_ = nullptr;
};

// Acquires Alpha::mu_ then Beta::mu_ ...
void Alpha::TakeBoth() {
  MutexLock own(mu_);
  MutexLock other(beta_->mu_);  // ANALYZE-EXPECT: lock-cycle
}

// ... while this path acquires Beta::mu_ then Alpha::mu_: a cycle.
void Beta::TakeBoth() {
  MutexLock own(mu_);
  MutexLock other(alpha_->mu_);
}

// Negative: a single-lock method participates in no cycle.
void Alpha::TakeMineOnly() {
  MutexLock own(mu_);
}

// Interprocedural self-deadlock: Outer holds Table::mu_ and calls
// Inner, which acquires Table::mu_ again.
class Table {
 public:
  void Outer() {
    MutexLock lock(mu_);
    Inner();  // ANALYZE-EXPECT: lock-cycle
  }
  void Inner() {
    MutexLock lock(mu_);
  }

  // Negative: consistent ordering with a second lock is fine.
  void Ordered() {
    MutexLock a(mu_);
    MutexLock b(aux_);
  }
  void OrderedAgain() {
    MutexLock a(mu_);
    MutexLock b(aux_);
  }

 private:
  Mutex mu_;
  Mutex aux_;
};
