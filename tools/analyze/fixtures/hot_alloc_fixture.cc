// Fixture: check 5 (hot-alloc-ast). Inside LINT-HOT-LOOP regions no
// statement may allocate: no new-expressions, no allocating-container
// construction, no allocating calls — directly or through a callee.
// Callees annotated `irbuf-analyzer: amortized-alloc` are trusted to
// keep per-call cost O(1) amortized (doubling growth) and stay legal.

#include <vector>

class Accumulators {
 public:
  int FindOrInsert(int doc) {
    if (size_ + 1 > capacity_) Grow();
    ++size_;
    return doc;
  }

 private:
  // Doubling growth — O(1) amortized per insert.
  // irbuf-analyzer: amortized-alloc
  void Grow() {
    table_.resize(capacity_ == 0 ? 16 : capacity_ * 2);
    capacity_ = table_.size();
  }

  std::vector<int> table_;
  int size_ = 0;
  int capacity_ = 0;
};

class Evaluator {
 public:
  long ScanPostings(std::vector<int>& docs, int n) {
    Accumulators acc;
    long total = 0;
    // LINT-HOT-LOOP: fixture posting scan.
    for (int i = 0; i < n; ++i) {
      total += acc.FindOrInsert(i);
      docs.push_back(i);  // ANALYZE-EXPECT: hot-alloc-ast // LINT-EXPECT: hot-alloc
      int* boxed = new int(i);  // ANALYZE-EXPECT: hot-alloc-ast
      total += *boxed;
      Record(i);  // ANALYZE-EXPECT: hot-alloc-ast
      std::vector<int> scratch;  // ANALYZE-EXPECT: hot-alloc-ast // LINT-EXPECT: hot-alloc
      total += static_cast<long>(scratch.size());
    }
    // LINT-HOT-LOOP-END
    return total;
  }

  // Negative: the same statements outside the region are fine.
  long ColdPath(std::vector<int>& docs, int n) {
    long total = 0;
    for (int i = 0; i < n; ++i) {
      docs.push_back(i);
      Record(i);
    }
    return total;
  }

  // Negative: arithmetic-only hot loop stays clean.
  long GoodHotLoop(const std::vector<int>& docs) {
    long total = 0;
    // LINT-HOT-LOOP: fixture clean scan.
    for (int i = 0; i < static_cast<int>(docs.size()); ++i) {
      total += docs[i];
    }
    // LINT-HOT-LOOP-END
    return total;
  }

 private:
  void Record(int v) { log_.push_back(v); }

  std::vector<int> log_;
};
