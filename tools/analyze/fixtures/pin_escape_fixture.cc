// Fixture: check 1 (pin-escape). Self-contained mirror of the
// buffer-pool pin protocol: references derived from a PinnedPage must
// not outlive the pin. Lines marked ANALYZE-EXPECT must fire; every
// other line must stay clean.

struct PostingBlock {
  int doc_ids[4];
};

struct Page {
  PostingBlock block;
};

struct PinnedPage {
  const Page* get() const;
  void Release();
};

struct Pool {
  PinnedPage Fetch(int id);
};

class PinUser {
 public:
  // Positive: returning a reference derived from a pin that dies with
  // this frame.
  const PostingBlock& BadReturnDerived(int id) {
    PinnedPage page = pool_.Fetch(id);
    const PostingBlock& block = page.get()->block;
    return block;  // ANALYZE-EXPECT: pin-escape
  }

  // Positive: returning a pointer straight through the pin.
  const Page* BadReturnThroughPin(int id) {
    PinnedPage page = pool_.Fetch(id);
    return page.get();  // ANALYZE-EXPECT: pin-escape
  }

  // Positive: caching pinned data in a member that outlives the pin.
  void BadStoreMember(int id) {
    PinnedPage page = pool_.Fetch(id);
    cached_ = &page.get()->block;  // ANALYZE-EXPECT: pin-escape
  }

  // Positive: using a derived reference after the pin was released.
  int BadUseAfterRelease(int id) {
    PinnedPage page = pool_.Fetch(id);
    const PostingBlock& block = page.get()->block;
    page.Release();
    return Sum(block);  // ANALYZE-EXPECT: pin-escape
  }

  // Positive: calling through the pin itself after Release().
  int BadCallAfterRelease(int id) {
    PinnedPage page = pool_.Fetch(id);
    page.Release();
    const Page* raw = page.get();  // ANALYZE-EXPECT: pin-escape
    return raw != nullptr ? 1 : 0;
  }

  // Positive: leaking pinned data into an outer scope that survives
  // the pin's block.
  int BadOuterScope(int id) {
    const Page* leaked = nullptr;
    {
      PinnedPage page = pool_.Fetch(id);
      leaked = page.get();  // ANALYZE-EXPECT: pin-escape
    }
    return leaked->block.doc_ids[0];
  }

  // Negative: copying a value out of pinned storage is legal — the
  // int outlives nothing.
  int GoodCopyOut(int id) {
    PinnedPage page = pool_.Fetch(id);
    const PostingBlock& block = page.get()->block;
    return block.doc_ids[0];
  }

  // Negative: returning the pin itself transfers ownership; the
  // derived data never escapes without its pin.
  PinnedPage GoodTransferPin(int id) {
    PinnedPage page = pool_.Fetch(id);
    return page;
  }

  // Negative: derived reference consumed strictly inside the pin's
  // scope.
  int GoodScopedUse(int id) {
    PinnedPage page = pool_.Fetch(id);
    const PostingBlock& block = page.get()->block;
    int total = Sum(block);
    return total;
  }

 private:
  int Sum(const PostingBlock& b);

  Pool pool_;
  const PostingBlock* cached_ = nullptr;
};
