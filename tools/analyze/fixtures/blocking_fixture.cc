// Fixture: check 3 (blocking-under-lock). No sleep, disk read, join,
// or barrier wait while holding a mutex; CondVar::Wait is legal only
// on the single mutex it atomically releases.

struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

struct CondVar {
  void Wait(Mutex& mu);
  void Signal();
};

void SleepUs(long micros);

struct IoPage;
struct Disk {
  IoPage* ReadPage(int page_no);
};

class LatchHolder {
 public:
  // Positive: sleeping while the latch is held.
  void BadSleepUnderLock() {
    MutexLock lock(mu_);
    SleepUs(1000);  // ANALYZE-EXPECT: blocking-under-lock
  }

  // Positive: a disk read issued with the latch held.
  void BadReadUnderLock() {
    MutexLock lock(mu_);
    page_ = disk_->ReadPage(7);  // ANALYZE-EXPECT: blocking-under-lock
  }

  // Positive: the blocking call hides one level down the call graph.
  void BadIndirectBlock() {
    MutexLock lock(mu_);
    PauseBriefly();  // ANALYZE-EXPECT: blocking-under-lock
  }

  // Positive: waiting on cv_ for mu_ while ALSO holding aux_ — the
  // wait releases mu_ but keeps aux_ pinned across the block.
  void BadWaitHoldingTwo() {
    MutexLock outer(aux_);
    MutexLock inner(mu_);
    cv_.Wait(mu_);  // ANALYZE-EXPECT: blocking-under-lock
  }

  // Negative: the classic condition-variable pattern — waiting on the
  // one mutex the wait releases.
  void GoodLegalWait() {
    MutexLock lock(mu_);
    cv_.Wait(mu_);
  }

  // Negative: blocking work after the lock scope closed.
  void GoodSleepOutsideLock() {
    {
      MutexLock lock(mu_);
      ready_ = true;
    }
    SleepUs(1000);
  }

  // Negative: non-blocking helper under the lock.
  void GoodCheapUnderLock() {
    MutexLock lock(mu_);
    Touch();
  }

 private:
  void PauseBriefly() { SleepUs(50); }
  void Touch() { ready_ = true; }

  Mutex mu_;
  Mutex aux_;
  CondVar cv_;
  Disk* disk_ = nullptr;
  IoPage* page_ = nullptr;
  bool ready_ = false;
};
