// Fixture: check 3 (blocking-under-lock). No sleep, disk read, join,
// or barrier wait while holding a mutex; CondVar::Wait is legal only
// on the single mutex it atomically releases.

struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

struct CondVar {
  void Wait(Mutex& mu);
  void Signal();
};

void SleepUs(long micros);

struct IoPage;
struct Disk {
  IoPage* ReadPage(int page_no);
};

class LatchHolder {
 public:
  // Positive: sleeping while the latch is held.
  void BadSleepUnderLock() {
    MutexLock lock(mu_);
    SleepUs(1000);  // ANALYZE-EXPECT: blocking-under-lock
  }

  // Positive: a disk read issued with the latch held.
  void BadReadUnderLock() {
    MutexLock lock(mu_);
    page_ = disk_->ReadPage(7);  // ANALYZE-EXPECT: blocking-under-lock
  }

  // Positive: the blocking call hides one level down the call graph.
  void BadIndirectBlock() {
    MutexLock lock(mu_);
    PauseBriefly();  // ANALYZE-EXPECT: blocking-under-lock
  }

  // Positive: waiting on cv_ for mu_ while ALSO holding aux_ — the
  // wait releases mu_ but keeps aux_ pinned across the block.
  void BadWaitHoldingTwo() {
    MutexLock outer(aux_);
    MutexLock inner(mu_);
    cv_.Wait(mu_);  // ANALYZE-EXPECT: blocking-under-lock
  }

  // Negative: the classic condition-variable pattern — waiting on the
  // one mutex the wait releases.
  void GoodLegalWait() {
    MutexLock lock(mu_);
    cv_.Wait(mu_);
  }

  // Negative: blocking work after the lock scope closed.
  void GoodSleepOutsideLock() {
    {
      MutexLock lock(mu_);
      ready_ = true;
    }
    SleepUs(1000);
  }

  // Negative: non-blocking helper under the lock.
  void GoodCheapUnderLock() {
    MutexLock lock(mu_);
    Touch();
  }

 private:
  void PauseBriefly() { SleepUs(50); }
  void Touch() { ready_ = true; }

  Mutex mu_;
  Mutex aux_;
  CondVar cv_;
  Disk* disk_ = nullptr;
  IoPage* page_ = nullptr;
  bool ready_ = false;
};

// The async I/O thread-pool shape (ConcurrentBufferPool's prefetch
// workers): a worker loop that dequeues under its queue mutex, legally
// condvar-waits on that same mutex when idle, and must fully release it
// before touching the device.
class IoWorkerPool {
 public:
  // Negative: the correct worker loop — wait on the queue mutex alone,
  // drop it, then read. The device call sits outside every lock scope.
  void GoodWorkerLoop() {
    int page_no = -1;
    {
      MutexLock lock(queue_mu_);
      cv_.Wait(queue_mu_);
      page_no = head_;
    }
    page_ = disk_->ReadPage(page_no);
  }

  // Positive: the tempting shortcut — issuing the readahead while the
  // queue mutex is still held serializes every worker behind one read.
  void BadReadWhileDequeued() {
    MutexLock lock(queue_mu_);
    page_ = disk_->ReadPage(head_);  // ANALYZE-EXPECT: blocking-under-lock
  }

  // Positive: joining a worker thread with the pool latch held — the
  // worker may need that latch to publish, so this deadlocks.
  void BadJoinUnderLatch() {
    MutexLock lock(latch_mu_);
    JoinWorkers();  // ANALYZE-EXPECT: blocking-under-lock
  }

 private:
  void JoinWorkers() { SleepUs(10); }

  Mutex queue_mu_;
  Mutex latch_mu_;
  CondVar cv_;
  Disk* disk_ = nullptr;
  IoPage* page_ = nullptr;
  int head_ = 0;
};
