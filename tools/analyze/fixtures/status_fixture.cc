// Fixture: check 4 (unchecked-status). Every Status/Result value must
// reach a check, a return, or an explicit propagation; bare
// expression-statement calls may not discard one.

struct Status {
  bool ok() const;
  static Status OK();
};

template <typename T>
struct Result {
  bool ok() const;
  T& value();
  Status status() const;
};

Status WriteBack(int frame) {
  return Status::OK();
}

Result<int> Lookup(int key) {
  return Result<int>();
}

class StatusUser {
 public:
  // Positive: a Status landed in a local that nothing ever reads.
  void BadDroppedLocal() {
    Status unused = WriteBack(1);  // ANALYZE-EXPECT: unchecked-status
    count_ = count_ + 1;
  }

  // Positive: a Result landed in a local that nothing ever reads.
  void BadDroppedResult() {
    Result<int> found = Lookup(3);  // ANALYZE-EXPECT: unchecked-status
    count_ = count_ + 1;
  }

  // Positive: the call's Status evaporates in a bare statement.
  void BadBareCall() {
    WriteBack(2);  // ANALYZE-EXPECT: unchecked-status
  }

  // Negative: checked then propagated.
  Status GoodCheckAndReturn() {
    Status st = WriteBack(4);
    if (!st.ok()) return st;
    return Status::OK();
  }

  // Negative: the Result is interrogated before use.
  int GoodCheckedResult() {
    Result<int> found = Lookup(5);
    if (!found.ok()) return -1;
    return found.value();
  }

  // Negative: returning the callee's Status directly propagates it.
  Status GoodDirectPropagate() {
    return WriteBack(6);
  }

 private:
  int count_ = 0;
};
