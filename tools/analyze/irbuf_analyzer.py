#!/usr/bin/env python3
"""irbuf's semantic analyzer: AST/dataflow checks the regex linter cannot express.

Where tools/lint/irbuf_lint.py pattern-matches single lines, this tool
builds a real model of every function in the tree — scopes, local
declarations, lock acquisitions, call graph — and runs dataflow checks
over it:

  pin-escape          A pointer/reference/span derived from a
                      buffer::PinnedPage (frame data, the cached decoded
                      PostingBlock) must not outlive the pin: no
                      returning it from the pinning function, no storing
                      it into a longer-lived object or outer scope, no
                      use after Release()/end of the pin's scope.
                      Moving the PinnedPage itself transfers the pin and
                      is fine; copies of scalar values are fine.
  lock-cycle          Every lock acquisition edge (MutexLock nesting,
                      IRBUF_REQUIRES contracts, interprocedural
                      acquisitions through the call graph) is collected
                      into one lock-order graph; any cycle is a
                      potential deadlock and is reported with the full
                      edge chain. The acyclic graph is also what
                      generates DESIGN.md's lock-ordering table
                      (--emit-lock-table / --check-lock-table).
  blocking-under-lock No disk read, SleepUs, raw sleep, condition-
                      variable wait (other than on the innermost held
                      mutex), barrier wait, future get or thread join
                      may run while any Mutex is held — directly or via
                      any callee. Misses must overlap; the policy latch
                      and the page-table stripes are CAS-speed locks.
  unchecked-status    A util::Status / Result<T> stored into a local
                      must be consumed on some later statement (.ok(),
                      IRBUF_RETURN_NOT_OK, return, passed on). The
                      [[nodiscard]] audit only sees immediate drops of
                      an unnamed temporary; this catches the named ones.
  hot-alloc-ast       Inside // LINT-HOT-LOOP regions: no new
                      expressions, no allocating container/string
                      calls, no construction of allocating locals, and
                      no call to a repo function that (transitively)
                      allocates — unless the callee is annotated
                      `// irbuf-analyzer: amortized-alloc`, the
                      documented contract for amortized growth paths
                      (e.g. AccumulatorSet::Grow).

Frontends. The analyzer runs its checks over a normalized IR
(ir.Function) that two interchangeable frontends produce:

  * clang    (CI)     consumes `clang++ -Xclang -ast-dump=json` driven
                      from compile_commands.json, so the model is exactly
                      what the build sees. AST dumps are cached in
                      --ast-cache keyed on (file content, compile args,
                      clang version) hashes.
  * internal (always) a built-in C++ frontend: comment/string-stripping
                      lexer, brace-accurate scope tracking, declaration
                      and call extraction tuned to this codebase's
                      idiom. It is what the dev container (GCC only) and
                      the ctest `lint` label run.

`--backend auto` (default) picks clang when available, else internal.
Known soundness gaps are documented in DESIGN.md section 11 (lambdas are
analyzed at their definition site; name-based call resolution; no
template instantiation).

Usage:
  irbuf_analyzer.py [--root DIR] [--backend auto|clang|internal]
  irbuf_analyzer.py --self-test        run every check against the
                                       fixture corpus in fixtures/
  irbuf_analyzer.py --emit-lock-table  print the generated lock-order
                                       table (markdown)
  irbuf_analyzer.py --check-lock-table verify DESIGN.md's generated
                                       table matches the tree
  irbuf_analyzer.py --write-lock-table rewrite DESIGN.md's table in place
  irbuf_analyzer.py --json-out FILE    also write findings as JSON

Exit status: 0 clean, 1 findings (or self-test/table-drift failure),
2 usage/environment error.

A line can be exempted with a trailing `// irbuf-analyzer: allow(<check>)`
comment; use sparingly and explain why in an adjacent comment.
"""

import argparse
import hashlib
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
from typing import Dict, List, Optional, Set, Tuple

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))

ALL_CHECKS = ("pin-escape", "lock-cycle", "blocking-under-lock",
              "unchecked-status", "hot-alloc-ast")

ALLOW_RE = re.compile(r"//\s*irbuf-analyzer:\s*allow\(([\w,\s-]+)\)")
AMORTIZED_RE = re.compile(r"//\s*irbuf-analyzer:\s*amortized-alloc")
EXPECT_RE = re.compile(r"//\s*ANALYZE-EXPECT:\s*([\w,\s-]+)")
LINT_PATH_RE = re.compile(r"//\s*LINT-PATH:\s*(\S+)")
HOT_LOOP_START_RE = re.compile(r"//\s*LINT-HOT-LOOP(?!-END)")
HOT_LOOP_END_RE = re.compile(r"//\s*LINT-HOT-LOOP-END")


class Finding:
    """One analyzer finding, printable as path:line: [check] message."""

    def __init__(self, path: str, line: int, check: str, message: str):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.check)

    def __repr__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


# ===========================================================================
# Lexing (internal frontend)
# ===========================================================================

# Token kinds: 'id' (identifier/keyword), 'num', 'str', 'punct'.
class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text}@{self.line}"


_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
# Longest-match punctuation the parser cares about distinguishing.
_PUNCT3 = ("->*", "<<=", ">>=", "...", "<=>")
_PUNCT2 = ("->", "::", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
           "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literal *contents*, preserving
    line structure and literal delimiters (a string literal becomes "")."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                break
            i = j  # keep the newline
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                j = n - 2
            out.append(" ".join(text[i:j + 2].splitlines(True)) if False
                       else "".join(ch if ch == "\n" else " "
                                    for ch in text[i:j + 2]))
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokenize(code: str) -> List[Tok]:
    toks: List[Tok] = []
    line = 1
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        if c == "#":  # preprocessor: skip to end of (continued) line
            while i < n:
                j = code.find("\n", i)
                if j < 0:
                    i = n
                    break
                if code[j - 1] == "\\":
                    i = j + 1
                    line += 1
                    continue
                i = j
                break
            continue
        if c in _ID_START:
            j = i + 1
            while j < n and code[j] in _ID_CONT:
                j += 1
            toks.append(Tok("id", code[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (code[j] in _ID_CONT or code[j] in ".'"):
                j += 1
            toks.append(Tok("num", code[i:j], line))
            i = j
            continue
        if c in "\"'":
            # Literal contents were blanked; consume the empty literal.
            j = code.find(c, i + 1)
            if j < 0:
                j = i
            toks.append(Tok("str", code[i:j + 1], line))
            i = j + 1
            continue
        three, two = code[i:i + 3], code[i:i + 2]
        if three in _PUNCT3:
            toks.append(Tok("punct", three, line))
            i += 3
        elif two in _PUNCT2:
            toks.append(Tok("punct", two, line))
            i += 2
        else:
            toks.append(Tok("punct", c, line))
            i += 1
    return toks


# ===========================================================================
# Normalized IR
# ===========================================================================
#
# A Function is a flat event list over a scope tree, the common currency
# both frontends produce. Events (line, depth, kind, data):
#
#   open/close       scope boundaries; depth is the depth *inside*
#   decl             (type, name, init) - init is a token-text list
#   lock             (guard, mutexpr)   - MutexLock guard(mutexpr)
#   unlock/relock    (guard,)           - guard.Unlock() / guard.Lock()
#   call             (recv, name, args, stmt) - one call site; recv is
#                    the receiver token-text list ([] for free calls),
#                    args a flat token-text list, stmt True when the
#                    call is the whole statement (value unused)
#   return           (tokens,)
#   assign           (lhs_tokens, rhs_tokens)
#   use              (name,)            - identifier read in a statement
#   condwait         (recv, mutexpr)    - CondVar Wait(mutexpr)

class Function:
    def __init__(self, path: str, line: int, qual_name: str, name: str,
                 cls: Optional[str]):
        self.path = path
        self.line = line
        self.qual_name = qual_name   # e.g. serve::ConcurrentBufferPool::FetchPinned
        self.name = name             # unqualified
        self.cls = cls               # enclosing class qual name or None
        self.params: List[Tuple[str, str]] = []   # (type, name)
        self.requires: List[str] = []             # raw IRBUF_REQUIRES args
        self.ret = ""                             # return type token text
        self.end_line = line
        self.events: List[Tuple[int, int, str, tuple]] = []
        self.is_lambda_host = False

    def add(self, line: int, depth: int, kind: str, data: tuple):
        self.events.append((line, depth, kind, data))


class FileModel:
    def __init__(self, path: str):
        self.path = path
        self.functions: List[Function] = []
        # class qual name -> {member name: declared type}
        self.members: Dict[str, Dict[str, str]] = {}
        # (class qual name, member name) -> guarding mutex expr text
        self.guarded: Dict[Tuple[str, str], str] = {}
        self.allow: Dict[int, Set[str]] = {}      # line -> allowed checks
        self.amortized_lines: Set[int] = set()    # `amortized-alloc` lines
        self.hot_regions: List[Tuple[int, int]] = []  # [start, end) lines
        self.new_lines: Set[int] = set()          # lines with `new` exprs
        self.raw_lines: List[str] = []


class Program:
    """Whole-tree model: files plus cross-file indexes."""

    def __init__(self):
        self.files: Dict[str, FileModel] = {}
        self.functions: List[Function] = []
        # unqualified name -> [Function]; last-segment lookup for calls.
        self.by_name: Dict[str, List[Function]] = {}
        self.by_qual: Dict[str, Function] = {}
        # class member type tables merged across files.
        self.members: Dict[str, Dict[str, str]] = {}
        # qual function name -> IRBUF_REQUIRES args seen on any decl.
        self.requires_decls: Dict[str, List[str]] = {}
        # functions annotated amortized-alloc (by qual name).
        self.amortized: Set[str] = set()
        # (class, member) -> guarding mutex expr (from IRBUF_GUARDED_BY).
        self.guarded: Dict[Tuple[str, str], str] = {}
        # class qual name -> path of the file that declared its members.
        self.class_origin: Dict[str, str] = {}

    def add_file(self, fm: FileModel):
        self.files[fm.path] = fm
        self.guarded.update(fm.guarded)
        for cls in fm.members:
            self.class_origin.setdefault(cls, fm.path)
        stash = getattr(fm, "_requires_decls", None)
        if stash:
            for qn, reqs in stash.items():
                self.requires_decls.setdefault(qn, []).extend(reqs)
        for cls, mem in fm.members.items():
            self.members.setdefault(cls, {}).update(mem)
        for fn in fm.functions:
            self.functions.append(fn)
            self.by_name.setdefault(fn.name, []).append(fn)
            self.by_qual[fn.qual_name] = fn

    def finish(self):
        for fn in self.functions:
            extra = self.requires_decls.get(fn.qual_name)
            if extra:
                for r in extra:
                    if r not in fn.requires:
                        fn.requires.append(r)


# ===========================================================================
# Internal frontend: parsing token streams into the IR
# ===========================================================================

CV_KEYWORDS = {"const", "constexpr", "mutable", "static", "inline",
               "virtual", "explicit", "volatile", "register", "typename",
               "friend", "extern", "thread_local"}
NOT_A_TYPE = {"return", "if", "else", "while", "for", "do", "switch",
              "case", "default", "break", "continue", "goto", "new",
              "delete", "throw", "sizeof", "using", "typedef", "public",
              "private", "protected", "template", "operator", "co_return",
              "try", "catch", "namespace", "class", "struct", "enum",
              "union", "static_assert", "alignas"}
ANNOTATION_MACROS = {"IRBUF_REQUIRES", "IRBUF_EXCLUDES", "IRBUF_ACQUIRE",
                     "IRBUF_RELEASE", "IRBUF_TRY_ACQUIRE",
                     "IRBUF_GUARDED_BY", "IRBUF_PT_GUARDED_BY",
                     "IRBUF_CAPABILITY", "IRBUF_SCOPED_CAPABILITY",
                     "IRBUF_NO_THREAD_SAFETY_ANALYSIS",
                     "IRBUF_LIFETIME_BOUND"}


def _skip_balanced(toks: List[Tok], i: int, open_c: str, close_c: str) -> int:
    """i points at open_c; returns index just past its match."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_c:
            depth += 1
        elif t == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _collect_text(toks: List[Tok], lo: int, hi: int) -> List[str]:
    return [t.text for t in toks[lo:hi]]


class InternalParser:
    """Parses one preprocessed C++ file into a FileModel.

    Structure pass: tracks namespace/class nesting, finds function
    definitions (including constructors with init lists), collects class
    member declarations. Body pass: statement segmentation with
    brace-accurate scopes, declaration / call / lock extraction; lambda
    bodies are analyzed inline at their definition site (a documented
    approximation, see DESIGN.md section 11).
    """

    def __init__(self, path: str, raw_text: str):
        self.path = path
        self.raw_lines = raw_text.splitlines()
        code = strip_comments_and_strings(raw_text)
        self.toks = tokenize(code)
        self.fm = FileModel(path)
        self.fm.raw_lines = self.raw_lines
        for t in self.toks:
            if t.kind == "id" and t.text == "new":
                self.fm.new_lines.add(t.line)
        self._collect_line_markers()

    def _collect_line_markers(self):
        region_start = None
        for lineno, raw in enumerate(self.raw_lines, start=1):
            m = ALLOW_RE.search(raw)
            if m:
                self.fm.allow[lineno] = {s.strip()
                                         for s in m.group(1).split(",")}
            if AMORTIZED_RE.search(raw):
                self.fm.amortized_lines.add(lineno)
            if HOT_LOOP_END_RE.search(raw):
                if region_start is not None:
                    self.fm.hot_regions.append((region_start, lineno))
                    region_start = None
            elif HOT_LOOP_START_RE.search(raw):
                region_start = lineno
        if region_start is not None:
            self.fm.hot_regions.append((region_start,
                                        len(self.raw_lines) + 1))

    # ---- structure pass -------------------------------------------------

    def parse(self) -> FileModel:
        self._parse_region(0, len(self.toks), ns=[], cls=[])
        return self.fm

    def _parse_region(self, lo: int, hi: int, ns: List[str],
                      cls: List[str]):
        """Walks declarations between lo and hi at namespace/class scope."""
        toks = self.toks
        i = lo
        while i < hi:
            t = toks[i]
            if t.text == "namespace":
                j = i + 1
                parts = []
                while j < hi and toks[j].text != "{" and toks[j].text != ";":
                    if toks[j].kind == "id":
                        parts.append(toks[j].text)
                    j += 1
                if j < hi and toks[j].text == "{":
                    end = _skip_balanced(toks, j, "{", "}")
                    # "namespace {" (anonymous) adds no name segment.
                    self._parse_region(j + 1, end - 1, ns + parts, cls)
                    i = end
                else:
                    i = j + 1
                continue
            if t.text in ("class", "struct") and i + 1 < hi \
                    and toks[i + 1].kind == "id":
                # Distinguish definition from fwd decl / elaborated use:
                # scan to the first of '{' or ';' at this nesting level.
                # An annotation macro (class IRBUF_CAPABILITY("x") Mutex)
                # sits between the keyword and the real name: skip it.
                ni = i + 1
                while ni < hi and toks[ni].kind == "id" and \
                        toks[ni].text in ANNOTATION_MACROS:
                    ni += 1
                    if ni < hi and toks[ni].text == "(":
                        ni = _skip_balanced(toks, ni, "(", ")")
                if ni >= hi or toks[ni].kind != "id":
                    i = self._skip_statement(i, hi)
                    continue
                name = toks[ni].text
                j = ni + 1
                # Skip IRBUF_CAPABILITY(...) etc. and base clause.
                while j < hi and toks[j].text not in ("{", ";"):
                    if toks[j].text == "(":
                        j = _skip_balanced(toks, j, "(", ")")
                        continue
                    if toks[j].text == "<":
                        # template args in a base clause; skip token-wise
                        j += 1
                        continue
                    j += 1
                if j < hi and toks[j].text == "{":
                    end = _skip_balanced(toks, j, "{", "}")
                    self._parse_class_body(j + 1, end - 1, ns,
                                           cls + [name])
                    i = end
                else:
                    i = j + 1
                continue
            if t.text == "enum":
                # enum/enum class { ... }: skip the brace block entirely.
                j = i + 1
                while j < hi and toks[j].text not in ("{", ";"):
                    j += 1
                i = (_skip_balanced(toks, j, "{", "}")
                     if j < hi and toks[j].text == "{" else j + 1)
                continue
            if t.text == "template":
                # skip template<...> header, keep going (the decl that
                # follows is parsed normally).
                j = i + 1
                if j < hi and toks[j].text == "<":
                    depth = 0
                    while j < hi:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif toks[j].text == ">>":
                            depth -= 2
                            if depth <= 0:
                                break
                        j += 1
                    i = j + 1
                else:
                    i = j
                continue
            # Try a function definition / declaration at this scope.
            nxt = self._try_function(i, hi, ns, cls, in_class=bool(cls))
            if nxt is not None:
                i = nxt
                continue
            # Otherwise: skip one declaration-ish unit.
            i = self._skip_statement(i, hi)

    def _parse_class_body(self, lo: int, hi: int, ns: List[str],
                          cls: List[str]):
        """Class scope: member variables + inline member functions."""
        toks = self.toks
        qual_cls = "::".join(cls)
        members = self.fm.members.setdefault(qual_cls, {})
        i = lo
        while i < hi:
            t = toks[i]
            if t.kind == "id" and t.text in ("public", "private",
                                             "protected") \
                    and i + 1 < hi and toks[i + 1].text == ":":
                i += 2
                continue
            if t.text in ("class", "struct", "enum", "namespace",
                          "template", "using", "friend"):
                # nested types parsed by the region walker semantics
                if t.text in ("class", "struct"):
                    ni = i + 1
                    while ni < hi and toks[ni].kind == "id" and \
                            toks[ni].text in ANNOTATION_MACROS:
                        ni += 1
                        if ni < hi and toks[ni].text == "(":
                            ni = _skip_balanced(toks, ni, "(", ")")
                    name = toks[ni].text if ni < hi and \
                        toks[ni].kind == "id" else None
                    j = ni + 1 if name else i + 1
                    while j < hi and toks[j].text not in ("{", ";"):
                        if toks[j].text == "(":
                            j = _skip_balanced(toks, j, "(", ")")
                            continue
                        j += 1
                    if j < hi and toks[j].text == "{":
                        end = _skip_balanced(toks, j, "{", "}")
                        if name:
                            self._parse_class_body(j + 1, end - 1, ns,
                                                   cls + [name])
                        # struct members may declare a variable after '}'
                        k = end
                        while k < hi and toks[k].text != ";":
                            k += 1
                        i = k + 1
                    else:
                        i = j + 1
                    continue
                i = self._skip_statement(i, hi)
                continue
            nxt = self._try_function(i, hi, ns, cls, in_class=True)
            if nxt is not None:
                i = nxt
                continue
            # Member variable declaration: TYPE name [init] ... ;
            i = self._member_decl(i, hi, qual_cls, members)

    def _member_decl(self, i: int, hi: int, qual_cls: str,
                     members: Dict[str, str]) -> int:
        toks = self.toks
        start = i
        # find the ';' terminating this member (skip balanced groups)
        j = i
        while j < hi and toks[j].text != ";":
            if toks[j].text == "{":
                j = _skip_balanced(toks, j, "{", "}")
                continue
            if toks[j].text == "(":
                j = _skip_balanced(toks, j, "(", ")")
                continue
            j += 1
        stmt = toks[start:j]
        # Peel trailing annotation macros (IRBUF_GUARDED_BY(mu_) etc.)
        # off the declarator so the name resolves correctly, and record
        # the guard relation for the lock table's Guards column.
        guard_expr = None
        while len(stmt) >= 3 and stmt[-1].text == ")":
            k = len(stmt) - 2
            depth = 1
            while k >= 0:
                if stmt[k].text == ")":
                    depth += 1
                elif stmt[k].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k <= 0 or stmt[k - 1].kind != "id" or \
                    stmt[k - 1].text not in ANNOTATION_MACROS:
                break
            if stmt[k - 1].text == "IRBUF_GUARDED_BY":
                guard_expr = " ".join(t.text for t in stmt[k + 1:-1])
            stmt = stmt[:k - 1]
        decl = parse_decl_tokens(stmt)
        if decl is not None:
            dtype, name, _ = decl
            members[name] = dtype
            if guard_expr:
                self.fm.guarded[(qual_cls, name)] = guard_expr
        return j + 1

    def _skip_statement(self, i: int, hi: int) -> int:
        toks = self.toks
        while i < hi:
            t = toks[i].text
            if t == ";":
                return i + 1
            if t == "{":
                return _skip_balanced(toks, i, "{", "}")
            if t == "(":
                i = _skip_balanced(toks, i, "(", ")")
                continue
            i += 1
        return hi

    # ---- function detection ---------------------------------------------

    def _try_function(self, i: int, hi: int, ns: List[str],
                      cls: List[str], in_class: bool) -> Optional[int]:
        """Returns the index past the function if one starts at i."""
        toks = self.toks
        # Scan the pre-paren part: type tokens then the function name
        # (possibly qualified Class::Name) directly before '('.
        j = i
        name_idx = None
        while j < hi:
            t = toks[j]
            if t.text in ("{", "}", ";"):
                return None
            if t.text == "=":
                return None
            if t.text == "operator":
                # operator() etc: treat the operator token as the name.
                k = j + 1
                while k < hi and toks[k].text != "(":
                    k += 1
                name_idx = j
                j = k
                break
            if t.text == "(":
                name_idx = j - 1
                break
            if t.text == "<":
                # template-id in return type or name; token-skip.
                j += 1
                continue
            j += 1
        if name_idx is None or name_idx < i or j >= hi:
            return None
        if toks[name_idx].kind != "id" or \
                toks[name_idx].text in NOT_A_TYPE or \
                toks[name_idx].text in ANNOTATION_MACROS:
            return None
        # Name and owning-class resolution (Foo::Bar::Baz(...)).
        name = toks[name_idx].text
        quals = []
        k = name_idx - 1
        while k - 1 >= i and toks[k].text == "::" and \
                toks[k - 1].kind == "id":
            quals.insert(0, toks[k - 1].text)
            k -= 2
        # Return-type sanity: constructors/destructors have no type
        # tokens; other functions need at least one id token before the
        # name/qualifiers (or the file scope says it's a ctor).
        pre = [t for t in toks[i:k + 1]
               if t.kind == "id" and t.text not in CV_KEYWORDS]
        is_ctor_like = (not pre and (quals and quals[-1] == name.lstrip("~")
                        or (in_class and cls and
                            name.lstrip("~") == cls[-1])))
        if not pre and not is_ctor_like and toks[name_idx].text != "operator":
            return None
        params_end = _skip_balanced(toks, j, "(", ")")
        # Walk the post-param qualifiers to find '{', ';' or rejection.
        m = params_end
        requires: List[str] = []
        seen_colon = False
        while m < hi:
            t = toks[m]
            if t.text == ";":
                # Declaration only: record REQUIRES contract for merge.
                if requires:
                    qn = self._qual_name(ns, cls, quals, name)
                    # store on the program later via FileModel; use a
                    # stash on the model keyed by qual name.
                    self.fm_requires_decl(qn, requires)
                return m + 1
            if t.text == "{":
                if seen_colon:
                    pass  # init-list handled below via _ctor_init_scan
                body_end = _skip_balanced(toks, m, "{", "}")
                fn = self._make_function(i, ns, cls, quals, name)
                fn.requires = requires
                fn.ret = " ".join(t2.text for t2 in toks[i:k + 1])
                fn.end_line = toks[body_end - 1].line \
                    if body_end - 1 < len(toks) else toks[m].line
                self._parse_params(toks[j + 1:params_end - 1], fn)
                self._parse_body(fn, m + 1, body_end - 1)
                self.fm.functions.append(fn)
                return body_end
            if t.kind == "id" and t.text in ("IRBUF_REQUIRES",
                                             "IRBUF_EXCLUDES"):
                is_req = t.text == "IRBUF_REQUIRES"
                if m + 1 < hi and toks[m + 1].text == "(":
                    end = _skip_balanced(toks, m + 1, "(", ")")
                    if is_req:
                        requires.append(
                            " ".join(_collect_text(toks, m + 2, end - 1)))
                    m = end
                    continue
            if t.text in ("const", "noexcept", "override", "final",
                          "mutable", "&", "&&", "throw", "try"):
                m += 1
                continue
            if t.kind == "id" and t.text in ANNOTATION_MACROS:
                m += 1
                if m < hi and toks[m].text == "(":
                    m = _skip_balanced(toks, m, "(", ")")
                continue
            if t.text == "[":
                # [[attribute]]
                depth = 0
                while m < hi:
                    if toks[m].text == "[":
                        depth += 1
                    elif toks[m].text == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    m += 1
                m += 1
                continue
            if t.text == "->":
                # trailing return type: skip to '{' or ';'
                m += 1
                while m < hi and toks[m].text not in ("{", ";"):
                    if toks[m].text == "(":
                        m = _skip_balanced(toks, m, "(", ")")
                        continue
                    m += 1
                continue
            if t.text == ":":
                # ctor init list: skip balanced items until body '{'
                seen_colon = True
                m += 1
                while m < hi and toks[m].text != "{":
                    if toks[m].text == "(":
                        m = _skip_balanced(toks, m, "(", ")")
                        continue
                    if toks[m].text == "{":
                        break
                    if toks[m].kind == "id" and m + 1 < hi and \
                            toks[m + 1].text == "{":
                        m = _skip_balanced(toks, m + 1, "{", "}")
                        continue
                    m += 1
                continue
            if t.text == "=":
                # = default / = delete / = 0
                while m < hi and toks[m].text != ";":
                    m += 1
                return m + 1
            return None
        return None

    def fm_requires_decl(self, qual_name: str, requires: List[str]):
        stash = getattr(self.fm, "_requires_decls", None)
        if stash is None:
            stash = {}
            setattr(self.fm, "_requires_decls", stash)
        stash.setdefault(qual_name, []).extend(requires)

    def _qual_name(self, ns, cls, quals, name) -> str:
        parts = list(ns) + list(cls) + list(quals) + [name]
        return "::".join(parts)

    def _make_function(self, i: int, ns, cls, quals, name) -> Function:
        cls_parts = list(cls) + list(quals)
        qn = self._qual_name(ns, cls, quals, name)
        fn = Function(self.path, self.toks[i].line, qn, name,
                      "::".join(cls_parts) if cls_parts else None)
        return fn

    def _parse_params(self, ptoks: List[Tok], fn: Function):
        # split on top-level commas
        item: List[Tok] = []
        depth = 0
        items = []
        for t in ptoks:
            if t.text in ("(", "<", "[", "{"):
                depth += 1
            elif t.text in (")", ">", "]", "}"):
                depth -= 1
            if t.text == "," and depth == 0:
                items.append(item)
                item = []
            else:
                item.append(t)
        if item:
            items.append(item)
        for it in items:
            ids = [t for t in it if t.kind == "id"
                   and t.text not in CV_KEYWORDS]
            if len(ids) >= 2:
                ptype = " ".join(t.text for t in it[:-1])
                fn.params.append((ptype, ids[-1].text))

    # ---- body pass ------------------------------------------------------

    def _parse_body(self, fn: Function, lo: int, hi: int):
        """Parses a function body into scoped events."""
        self._parse_block(fn, lo, hi, depth=1)

    def _parse_block(self, fn: Function, lo: int, hi: int, depth: int):
        toks = self.toks
        fn.add(toks[lo].line if lo < hi else 0, depth, "open", ())
        i = lo
        while i < hi:
            t = toks[i]
            if t.text == "{":
                end = _skip_balanced(toks, i, "{", "}")
                self._parse_block(fn, i + 1, end - 1, depth + 1)
                i = end
                continue
            if t.text == "}":
                i += 1
                continue
            if t.kind == "id" and t.text in ("if", "while", "switch",
                                             "for", "catch"):
                # header parens: extract decls (for-range, if-init) and
                # calls/uses from the condition; the controlled block is
                # parsed as a nested scope.
                j = i + 1
                if j < hi and toks[j].text == "(":
                    hdr_end = _skip_balanced(toks, j, "(", ")")
                    self._parse_header(fn, j + 1, hdr_end - 1, depth + 1,
                                       kind=t.text)
                    # Note: header decls live at depth+1 — the same
                    # depth as the controlled block, so a for-range var
                    # dies when the loop does.
                    i = hdr_end
                    continue
                i += 1
                continue
            if t.kind == "id" and t.text in ("else", "do", "try"):
                i += 1
                continue
            # A plain statement: up to ';' at this level (or a '{' that
            # opens a nested block mid-statement, e.g. a lambda).
            i = self._parse_statement(fn, i, hi, depth)
        fn.add(toks[hi - 1].line if hi - 1 >= lo and hi - 1 < len(toks)
               else 0, depth, "close", ())

    def _parse_header(self, fn: Function, lo: int, hi: int, depth: int,
                      kind: str):
        toks = self.toks
        # for (init; cond; step) / for (decl : range) / if (decl) ...
        segs: List[Tuple[int, int]] = []
        d = 0
        seg_lo = lo
        colon_at = None
        for k in range(lo, hi):
            tt = toks[k].text
            if tt in ("(", "[", "{"):
                d += 1
            elif tt in (")", "]", "}"):
                d -= 1
            elif tt == ";" and d == 0:
                segs.append((seg_lo, k))
                seg_lo = k + 1
            elif tt == ":" and d == 0 and colon_at is None \
                    and kind == "for":
                colon_at = k
        segs.append((seg_lo, hi))
        if colon_at is not None:
            # range-for: decl : range-expr
            decl = parse_decl_tokens(toks[lo:colon_at])
            rng = toks[colon_at + 1:hi]
            if decl is not None:
                dtype, name, _ = decl
                fn.add(toks[lo].line, depth, "decl",
                       (dtype, name, [t.text for t in rng]))
            self._emit_expr_events(fn, colon_at + 1, hi, depth)
            return
        for (a, b) in segs:
            if a >= b:
                continue
            decl = parse_decl_tokens(toks[a:b])
            if decl is not None:
                dtype, name, init = decl
                self._emit_expr_events(fn, a, b, depth)
                fn.add(toks[a].line, depth, "decl", (dtype, name, init))
            else:
                self._emit_expr_events(fn, a, b, depth)

    def _parse_statement(self, fn: Function, i: int, hi: int,
                         depth: int) -> int:
        """Parses one statement starting at i; returns index past it.

        Handles: MutexLock decls, var decls (incl. lambda initializers,
        whose bodies are parsed inline as nested scopes), returns,
        assignments, calls. A '{' inside the statement that is a lambda
        body is recursed into; any other '{' ends statement parsing for
        safety.
        """
        toks = self.toks
        start = i
        d = 0
        lambda_blocks: List[Tuple[int, int]] = []
        j = i
        while j < hi:
            tt = toks[j].text
            if tt in ("(", "["):
                d += 1
            elif tt in (")", "]"):
                d -= 1
            elif tt == "{":
                # lambda body / brace-init: find it via lookbehind —
                # ']' or ')' preceded by a '[...]' capture means lambda.
                if self._is_lambda_body(j):
                    end = _skip_balanced(toks, j, "{", "}")
                    lambda_blocks.append((j + 1, end - 1))
                    j = end
                    continue
                end = _skip_balanced(toks, j, "{", "}")
                j = end
                continue
            elif tt == ";" and d == 0:
                break
            j += 1
        stmt = toks[start:j]
        # Lambda bodies are parsed as blocks (inline or synthetic) below;
        # exclude their token ranges from statement-level expr events so
        # their calls are not attributed to the wrong context.
        self._statement_events(fn, stmt, depth,
                               start_idx=start, end_idx=j,
                               skip=lambda_blocks)
        for (a, b) in lambda_blocks:
            fn.is_lambda_host = True
            # Immediately-invoked lambdas ( `[&]{...}()` ) run at the
            # definition site and are analyzed inline with the current
            # held-lock set. A stored/posted lambda runs later on an
            # unknown thread: its body becomes a separate synthetic
            # function with an empty entry state (DESIGN.md section 11).
            invoked = b + 1 < len(toks) and toks[b + 1].text == "("
            if invoked:
                self._parse_block(fn, a, b, depth + 1)
            else:
                sub = Function(
                    fn.path, toks[a].line if a < len(toks) else fn.line,
                    f"{fn.qual_name}::<lambda:{toks[a].line}>",
                    "<lambda>", fn.cls)
                sub.params = list(fn.params)
                self._parse_block(sub, a, b, 1)
                sub.end_line = max([sub.line] +
                                   [e[0] for e in sub.events])
                self.fm.functions.append(sub)
        return j + 1 if j < hi else hi

    def _is_lambda_body(self, brace_idx: int) -> bool:
        """True when the '{' at brace_idx opens a lambda body."""
        toks = self.toks
        k = brace_idx - 1
        # skip qualifiers between ) and { : mutable, noexcept, -> type
        while k >= 0 and (toks[k].text in ("mutable", "noexcept", "const")
                          or toks[k].kind == "id"
                          or toks[k].text in ("->", "*", "&", "::", ">",
                                              "<", ",")):
            if toks[k].text == ")" or toks[k].text == "]":
                break
            k -= 1
        if k < 0:
            return False
        if toks[k].text == ")":
            # find matching '(' then check for ']' before it
            depth = 0
            m = k
            while m >= 0:
                if toks[m].text == ")":
                    depth += 1
                elif toks[m].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                m -= 1
            k = m - 1
        if k >= 0 and toks[k].text == "]":
            # walk back to '['
            depth = 0
            m = k
            while m >= 0:
                if toks[m].text == "]":
                    depth += 1
                elif toks[m].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                m -= 1
            # lambda if '[' is at an expression position (not subscript)
            if m >= 0:
                prev = toks[m - 1] if m - 1 >= 0 else None
                if prev is None or prev.text in ("(", ",", "=", "return",
                                                 "{", ";", "&&", "||",
                                                 "?", ":") \
                        or prev.kind == "punct" and prev.text not in (")",
                                                                     "]"):
                    return True
                if prev.kind == "id" and prev.text in ("return",):
                    return True
            return False
        return False

    def _statement_events(self, fn: Function, stmt: List[Tok],
                          depth: int, start_idx: int, end_idx: int,
                          skip: Optional[List[Tuple[int, int]]] = None):
        if not stmt:
            return
        toks = self.toks
        line = stmt[0].line
        texts = [t.text for t in stmt]
        # return statement
        if texts[0] == "return":
            fn.add(line, depth, "return", (texts[1:],))
            self._emit_expr_events(fn, start_idx + 1, end_idx, depth,
                                   skip=skip)
            return
        # MutexLock guard(expr);  (also: MutexLock guard{expr};)
        if texts[0] in ("MutexLock", "irbuf") and "MutexLock" in texts[:3]:
            mi = texts.index("MutexLock")
            if mi + 1 < len(stmt) and stmt[mi + 1].kind == "id":
                guard = stmt[mi + 1].text
                if mi + 2 < len(stmt) and stmt[mi + 2].text in ("(", "{"):
                    close = ")" if stmt[mi + 2].text == "(" else "}"
                    k = mi + 3
                    expr = []
                    d = 1
                    while k < len(stmt):
                        if stmt[k].text == stmt[mi + 2].text:
                            d += 1
                        elif stmt[k].text == close:
                            d -= 1
                            if d == 0:
                                break
                        expr.append(stmt[k].text)
                        k += 1
                    fn.add(line, depth, "lock", (guard, expr))
                    return
        decl = parse_decl_tokens(stmt)
        if decl is not None:
            dtype, name, init = decl
            # expr events first: a "use" on the decl's own statement must
            # not count as consuming the declared value (status check).
            self._emit_expr_events(fn, start_idx, end_idx, depth,
                                   skip=skip)
            fn.add(line, depth, "decl", (dtype, name, init))
            return
        # assignment at top level?
        d = 0
        is_assign = False
        for k, t in enumerate(stmt):
            if t.text in ("(", "[", "{", "<"):
                d += 1
            elif t.text in (")", "]", "}", ">"):
                d -= 1
            elif t.text == ">>":
                d -= 2
            elif t.text == "=" and d <= 0 and k > 0:
                fn.add(line, depth, "assign",
                       (texts[:k], texts[k + 1:]))
                is_assign = True
                break
        # the result of a call on an assignment's RHS is consumed by the
        # assignment, so only a pure expression statement is "bare".
        self._emit_expr_events(fn, start_idx, end_idx, depth,
                               whole_statement=not is_assign, skip=skip)

    def _emit_expr_events(self, fn: Function, lo: int, hi: int,
                          depth: int, whole_statement: bool = False,
                          skip: Optional[List[Tuple[int, int]]] = None):
        """Emits call and use events for the token range [lo, hi)."""
        toks = self.toks
        k = lo
        emitted_call = False
        while k < hi:
            if skip:
                jumped = False
                for (a, b) in skip:
                    if a <= k < b:
                        k = b
                        jumped = True
                        break
                if jumped:
                    continue
            t = toks[k]
            if t.kind == "id" and k + 1 < hi and toks[k + 1].text == "(" \
                    and t.text not in NOT_A_TYPE \
                    and t.text not in ("MutexLock",):
                # receiver chain lookbehind: a.b->c.Method(
                recv: List[str] = []
                m = k - 1
                while m >= lo:
                    if toks[m].text in (".", "->"):
                        m -= 1
                        seg: List[str] = []
                        # a balanced primary: id, id(...)/(...)/[...] chain
                        while m >= lo:
                            tm = toks[m].text
                            if tm in (")", "]"):
                                depth2 = 0
                                while m >= lo:
                                    if toks[m].text in (")", "]"):
                                        depth2 += 1
                                    elif toks[m].text in ("(", "["):
                                        depth2 -= 1
                                        if depth2 == 0:
                                            break
                                    m -= 1
                                seg.insert(0, "()")
                                m -= 1
                                continue
                            if toks[m].kind == "id" or tm == "::":
                                seg.insert(0, tm)
                                m -= 1
                                continue
                            break
                        recv = seg + recv
                        if m >= lo and toks[m].text in (".", "->"):
                            continue
                        break
                    break
                args_end = _skip_balanced(toks, k + 1, "(", ")")
                args = _collect_text(toks, k + 2, args_end - 1)
                fn.add(t.line, depth, "call",
                       (recv, t.text, args, whole_statement
                        and not emitted_call))
                emitted_call = True
                # CondVar wait?
                if t.text == "Wait" and len(args) >= 1:
                    fn.add(t.line, depth, "condwait",
                           (recv, " ".join(args)))
                k += 2  # descend into args for nested calls/uses
                continue
            if t.kind == "id" and t.text not in NOT_A_TYPE \
                    and t.text not in CV_KEYWORDS:
                fn.add(t.line, depth, "use", (t.text,))
            k += 1


def parse_decl_tokens(stmt: List[Tok]) -> Optional[
        Tuple[str, str, List[str]]]:
    """Recognizes `TYPE name [= init | (init) | {init}]` in a statement.

    Returns (type, name, init tokens) or None. A declaration needs a
    real type: either `auto`, or >= 1 type-ish tokens before the name
    where the token sequence cannot be an expression (two adjacent
    identifiers, or identifier after a closing `>` / `&` / `*`).
    """
    if not stmt:
        return None
    texts = [t.text for t in stmt]
    if texts[0] in NOT_A_TYPE or texts[0] in ("IRBUF_DCHECK",
                                              "IRBUF_RETURN_NOT_OK"):
        return None
    # locate the declared name: the last identifier before '=', or
    # before '(' / '{' / end when the prefix parses as a type.
    stop = len(stmt)
    d = 0
    for k, t in enumerate(stmt):
        if t.text in ("(", "[", "{"):
            d += 1
        elif t.text in (")", "]", "}"):
            d -= 1
        elif t.text == "<":
            d += 1
        elif t.text == ">":
            d -= 1
        elif t.text == ">>":
            d -= 2  # nested template close: Result<vector<T>>
        elif t.text == "=" and d == 0:
            stop = k
            break
    # name = last id token directly before stop (allowing ref/ptr marks)
    k = stop - 1
    while k >= 0 and stmt[k].text in ("&", "*", ")"):
        k -= 1
    if k < 0 or stmt[k].kind != "id" or stmt[k].text in NOT_A_TYPE:
        return None
    name = stmt[k].text
    type_toks = [t for t in stmt[:k]]
    # Strip cv keywords for the "is this a type" test.
    core = [t for t in type_toks
            if not (t.kind == "id" and t.text in CV_KEYWORDS)]
    if not core:
        return None
    ids = [t for t in core if t.kind == "id"]
    if not ids:
        return None
    if any(t.text in NOT_A_TYPE for t in ids):
        return None
    # Expression guard: `a = b`-style starts with a single id then '='
    # (handled by stop), `x->y...` etc. contain punctuation a type
    # cannot: reject if core contains '.', '->', '(' before a '<'.
    for t in core:
        if t.text in (".", "->", "+", "-", "/", "==", "!=", "[", "]"):
            return None
    # Adjacent plausibility: last core token must be id, '>', '&' or '*'.
    if core[-1].kind != "id" and core[-1].text not in (">", "&", "*",
                                                       "::", ">>"):
        return None
    if stop == len(stmt):
        # `Type name;` or `Type name(args);` / `Type name{args};`
        init = texts[k + 1:]
        # a bare `name` followed by nothing or parens
        if init and init[0] not in ("(", "{", ";", ""):
            return None
        return (" ".join(t.text for t in type_toks), name,
                [x for x in init if x not in ("(", ")", "{", "}", ";")])
    return (" ".join(t.text for t in type_toks), name, texts[stop + 1:])


# ===========================================================================
# Semantic analysis over the IR
# ===========================================================================

MUTEX_TYPES = ("Mutex",)          # util/mutex.h wrapper (not MutexLock)
STATUS_TYPES = ("Status", "Result")
BLOCKING_CALLS = {"SleepUs", "sleep_for", "sleep_until", "usleep",
                  "nanosleep", "ReadPage", "join", "wait", "wait_for",
                  "wait_until", "get_future_blocking"}
ALLOC_CALLS = {"push_back", "emplace_back", "emplace", "resize",
               "reserve", "append", "make_unique", "make_shared",
               "to_string", "StrFormat", "substr", "str", "insert"}
ALLOC_DECL_TYPES = ("vector", "string", "unordered_map", "unordered_set",
                    "deque", "map", "set", "function", "shared_ptr",
                    "unique_ptr", "stringstream", "ostringstream")
PIN_TYPES = ("PinnedPage",)


def extract_class(typestr: str) -> Optional[str]:
    """Best-effort class name from a declared type's token text."""
    ids = [w for w in typestr.split()
           if w and (w[0].isalpha() or w[0] == "_")
           and w not in CV_KEYWORDS and w not in NOT_A_TYPE
           and w != "std"]
    return ids[-1] if ids else None


def resolve_class(prog: Program, name: Optional[str]) -> Optional[str]:
    if not name:
        return None
    if name in prog.members:
        return name
    cands = [k for k in prog.members if k.endswith("::" + name)]
    if len(cands) == 1:
        return cands[0]
    return name


def class_chain(cls: Optional[str]) -> List[str]:
    """['A::B::C', 'A::B', 'A'] — outer classes as member-lookup fallback."""
    out = []
    while cls:
        out.append(cls)
        cls = cls.rsplit("::", 1)[0] if "::" in cls else None
    return out


def _find_member_owner(prog: Program, cls: Optional[str],
                       member: str) -> Optional[str]:
    for c in class_chain(cls):
        rc = resolve_class(prog, c)
        if rc in prog.members and member in prog.members[rc]:
            return rc
    return None


def normalize_mutex(tokens: List[str], fn: Function, prog: Program,
                    vars_: Dict[str, Tuple[str, int]],
                    trusted: bool = False) -> Optional[str]:
    """Canonical lock name ('Class::member') for a mutex expression.

    `trusted` contexts (MutexLock guard args, IRBUF_REQUIRES) accept a
    bare unresolvable identifier as a member of the enclosing class /
    file-scope mutex; untrusted contexts (a plain `.Lock()` receiver)
    must resolve to a Mutex-typed member to avoid false positives.
    """
    toks = [t for t in tokens if t not in ("&", "*", "this", "std")]
    while toks and toks[0] in ("->", ".", "::"):
        toks = toks[1:]
    if not toks:
        return None
    segs: List[str] = []
    i = 0
    while i < len(toks):
        t = toks[i]
        if t in (".", "->"):
            i += 1
            continue
        if t == "::":
            # fold explicit qualification into the previous segment
            if segs and i + 1 < len(toks):
                segs[-1] = segs[-1] + "::" + toks[i + 1]
                i += 2
                continue
            i += 1
            continue
        if t == "()":
            return None          # call in the chain: unresolvable
        segs.append(t)
        i += 1
    if not segs:
        return None
    base = segs[0]
    cur_cls: Optional[str] = None
    if len(segs) == 1:
        # bare name: parameter, member of this class, or file-scope.
        if base in vars_:
            btype = vars_[base][0]
            if any(m in btype for m in MUTEX_TYPES) or trusted:
                return f"<param>::{base}" if not trusted else \
                    f"<param>::{base}"
            return None
        owner = _find_member_owner(prog, fn.cls, base)
        if owner:
            mtype = prog.members[owner][base]
            if any(m in mtype.split() for m in MUTEX_TYPES) or trusted:
                return f"{owner}::{base}"
            return None
        if trusted:
            return f"{fn.cls}::{base}" if fn.cls else base
        return None
    # dotted chain: resolve the base's class, walk intermediate members.
    if base in vars_:
        cur_cls = extract_class(vars_[base][0])
    else:
        owner = _find_member_owner(prog, fn.cls, base)
        if owner:
            cur_cls = extract_class(prog.members[owner][base])
        elif trusted:
            cur_cls = base        # fixture style: Global.mu
        else:
            return None
    for seg in segs[1:-1]:
        rc = resolve_class(prog, cur_cls)
        if rc in prog.members and seg in prog.members[rc]:
            cur_cls = extract_class(prog.members[rc][seg])
        else:
            return None
    last = segs[-1]
    rc = resolve_class(prog, cur_cls)
    if rc in prog.members and last in prog.members[rc]:
        mtype = prog.members[rc][last]
        if any(m in mtype.split() for m in MUTEX_TYPES) or trusted:
            return f"{rc}::{last}"
        return None
    if trusted and rc:
        return f"{rc}::{last}"
    return None


class CallSite:
    def __init__(self, line: int, held: Tuple[str, ...], recv: List[str],
                 name: str, args: List[str], is_stmt: bool,
                 recv_cls: Optional[str]):
        self.line = line
        self.held = held
        self.recv = recv
        self.name = name
        self.args = args
        self.is_stmt = is_stmt
        self.recv_cls = recv_cls


class FnInfo:
    """Per-function lock/call facts from one simulation walk."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.entry_locks: Set[str] = set()     # from IRBUF_REQUIRES
        self.acquired: Set[str] = set()        # direct body acquisitions
        self.edges: List[Tuple[str, str, int]] = []  # (held, acquired, line)
        self.calls: List[CallSite] = []
        self.condwaits: List[Tuple[int, Tuple[str, ...], Optional[str]]] = []
        # transitive facts (filled by fixpoints)
        self.acq_star: Set[str] = set()
        self.may_block: bool = False
        self.block_reason: str = ""
        self.may_alloc: bool = False
        self.alloc_reason: str = ""


# The mutex wrapper types themselves: their bodies acquire their own
# members generically; the lock IDENTITY lives at their call sites, so
# their internal acquisitions are excluded from the lock graph.
WRAPPER_CLASSES = {"Mutex", "MutexLock", "CondVar"}

# Names so generic (std containers, accessors) that resolving them
# through an unresolved receiver would wire unrelated classes into the
# call graph; calls to them resolve only via an exactly-matched
# receiver class.
GENERIC_METHOD_NAMES = {"size", "empty", "begin", "end", "clear",
                        "find", "count", "at", "front", "back",
                        "reset", "get", "value", "str", "data",
                        "length", "ok", "swap", "insert", "erase"}


def _auto_elem_class(fn: Function, prog: Program,
                     vars_: Dict[str, Tuple[str, int]],
                     init: List[str]) -> Optional[str]:
    """`for (const auto& b : buffers_)`: the element class is the
    innermost template argument of the range's declared type."""
    for tok in init:
        if not tok or not (tok[0].isalpha() or tok[0] == "_"):
            continue
        if tok in vars_:
            t = vars_[tok][0]
        else:
            owner = _find_member_owner(prog, fn.cls, tok)
            if owner is None:
                continue
            t = prog.members[owner][tok]
        ids = [w for w in t.split()
               if w and (w[0].isalpha() or w[0] == "_")
               and w not in CV_KEYWORDS and w != "std"
               and w not in ("vector", "deque", "unique_ptr",
                             "shared_ptr", "array", "list", "map",
                             "unordered_map", "set", "unordered_set",
                             "optional", "span", "auto")]
        if ids:
            return ids[-1]
        return None
    return None


def simulate_locks(fn: Function, prog: Program) -> FnInfo:
    info = FnInfo(fn)
    vars_: Dict[str, Tuple[str, int]] = {p[1]: (p[0], 0)
                                         for p in fn.params}
    # entry lock set from REQUIRES (skip param-generic requirements,
    # e.g. CondVar::Wait(Mutex& mu) IRBUF_REQUIRES(mu)).
    for req in fn.requires:
        rtoks = req.split()
        if len(rtoks) == 1 and rtoks[0] in vars_:
            continue
        ln = normalize_mutex(rtoks, fn, prog, vars_, trusted=True)
        if ln:
            info.entry_locks.add(ln)
    # held: list of [lock, depth_or_None, guard_or_None]
    held: List[List] = [[ln, None, None] for ln in sorted(info.entry_locks)]

    def held_names() -> Tuple[str, ...]:
        return tuple(h[0] for h in held)

    def acquire(lock: Optional[str], depth, guard, line: int):
        if lock is None:
            return
        for h in held:
            info.edges.append((h[0], lock, line))
        if lock not in info.entry_locks:
            info.acquired.add(lock)
        held.append([lock, depth, guard])

    def release_lock(lock: str):
        for idx in range(len(held) - 1, -1, -1):
            if held[idx][0] == lock:
                del held[idx]
                return

    for (line, depth, kind, data) in fn.events:
        if kind == "close":
            for idx in range(len(held) - 1, -1, -1):
                if held[idx][1] is not None and held[idx][1] >= depth:
                    del held[idx]
            for v in [n for n, (_, d) in vars_.items() if d >= depth]:
                del vars_[v]
        elif kind == "decl":
            dtype, name, _init = data
            if "auto" in dtype.split() and _init:
                hint = _auto_elem_class(fn, prog, vars_, _init)
                if hint:
                    dtype = hint
            vars_[name] = (dtype, depth)
        elif kind == "lock":
            guard, expr = data
            ln = normalize_mutex(expr, fn, prog, vars_, trusted=True)
            acquire(ln, depth, guard, line)
            vars_[guard] = ("MutexLock", depth)
        elif kind == "call":
            recv, name, args, is_stmt = data
            # guard re-lock / early unlock: guard.Unlock() / guard.Lock()
            if len(recv) == 1 and recv[0] in vars_ and \
                    vars_[recv[0]][0] == "MutexLock" and \
                    name in ("Lock", "Unlock"):
                g = recv[0]
                if name == "Unlock":
                    for idx in range(len(held) - 1, -1, -1):
                        if held[idx][2] == g:
                            del held[idx]
                            break
                else:
                    # re-lock: re-derive the guard's lock from the
                    # original MutexLock event for this guard name.
                    for (l2, d2, k2, dat2) in fn.events:
                        if k2 == "lock" and dat2[0] == g:
                            ln2 = normalize_mutex(dat2[1], fn, prog,
                                                  vars_, trusted=True)
                            acquire(ln2, vars_[g][1], g, line)
                            break
                continue
            # direct mutex ops: expr.Lock() / expr.Unlock()
            if recv and name in ("Lock", "Unlock", "TryLock"):
                ln = normalize_mutex(recv, fn, prog, vars_, trusted=False)
                if ln:
                    if name == "Lock":
                        acquire(ln, None, None, line)
                    elif name == "Unlock":
                        release_lock(ln)
                    continue
            recv_cls = None
            if recv:
                base = recv[0]
                if base == "this":
                    recv_cls = fn.cls
                elif base in vars_:
                    recv_cls = extract_class(vars_[base][0])
                else:
                    owner = _find_member_owner(prog, fn.cls, base)
                    if owner:
                        recv_cls = extract_class(prog.members[owner][base])
                if recv_cls and len(recv) > 1 and "()" not in recv[1:]:
                    # walk the member chain to the final receiver class
                    cur = recv_cls
                    ok = True
                    for seg in recv[1:]:
                        rc = resolve_class(prog, cur)
                        if rc in prog.members and \
                                seg in prog.members[rc]:
                            cur = extract_class(prog.members[rc][seg])
                        else:
                            ok = False
                            break
                    recv_cls = cur if ok else None
            info.calls.append(CallSite(line, held_names(), recv, name,
                                       args, is_stmt, recv_cls))
        elif kind == "condwait":
            recv, argstr = data
            ln = normalize_mutex(argstr.split(), fn, prog, vars_,
                                 trusted=True)
            info.condwaits.append((line, held_names(), ln))
    if fn.cls and fn.cls.split("::")[-1] in WRAPPER_CLASSES:
        info.acquired.clear()
        info.edges.clear()
        info.entry_locks.clear()
    return info


def resolve_callees(prog: Program, site: CallSite) -> List[Function]:
    cands = prog.by_name.get(site.name, [])
    if not cands:
        return []
    if site.recv_cls:
        last = site.recv_cls.split("::")[-1]
        exact = [c for c in cands
                 if c.cls and c.cls.split("::")[-1] == last]
        if exact:
            return exact
        if site.name in GENERIC_METHOD_NAMES:
            return []      # a std container / accessor, not repo code
        # virtual dispatch through an interface the receiver names:
        # fall through to all candidates (conservative union).
        return cands
    if site.recv and site.name in GENERIC_METHOD_NAMES:
        return []          # x.size() etc. with unresolved receiver
    # no receiver: prefer same-class (implicit this), then free fns.
    return cands


class SemanticAnalyzer:
    """Runs the five checks over a Program built by either frontend."""

    def __init__(self, prog: Program):
        self.prog = prog
        self.infos: Dict[int, FnInfo] = {}
        for fn in prog.functions:
            self.infos[id(fn)] = simulate_locks(fn, prog)
        self._mark_amortized()
        self._fixpoint_acq()
        self._fixpoint_block()
        self._fixpoint_alloc()

    # ---- suppression -----------------------------------------------------

    def _allowed(self, path: str, line: int, check: str) -> bool:
        fm = self.prog.files.get(path)
        if not fm:
            return False
        for ln in (line, line - 1):
            allowed = fm.allow.get(ln)
            if allowed and (check in allowed or "all" in allowed):
                return True
        return False

    def _finding(self, out: List[Finding], path: str, line: int,
                 check: str, msg: str):
        if not self._allowed(path, line, check):
            out.append(Finding(path, line, check, msg))

    # ---- interprocedural fixpoints ---------------------------------------

    def _mark_amortized(self):
        for fn in self.prog.functions:
            fm = self.prog.files.get(fn.path)
            if not fm:
                continue
            for ln in fm.amortized_lines:
                if fn.line - 3 <= ln <= fn.end_line:
                    self.prog.amortized.add(fn.qual_name)

    def _fixpoint_acq(self):
        for info in self.infos.values():
            info.acq_star = set(info.acquired)
        changed = True
        while changed:
            changed = False
            for info in self.infos.values():
                for site in info.calls:
                    for callee in resolve_callees(self.prog, site):
                        ci = self.infos[id(callee)]
                        add = ci.acq_star - ci.entry_locks
                        if not add <= info.acq_star:
                            info.acq_star |= add
                            changed = True

    def _fixpoint_block(self):
        for info in self.infos.values():
            for site in info.calls:
                if site.name in BLOCKING_CALLS and \
                        not resolve_callees(self.prog, site):
                    info.may_block = True
                    info.block_reason = \
                        f"calls {site.name} at line {site.line}"
                    break
            else:
                if info.condwaits:
                    info.may_block = True
                    info.block_reason = "waits on a condition variable"
        changed = True
        while changed:
            changed = False
            for info in self.infos.values():
                if info.may_block:
                    continue
                for site in info.calls:
                    for callee in resolve_callees(self.prog, site):
                        ci = self.infos[id(callee)]
                        if ci.may_block:
                            info.may_block = True
                            info.block_reason = (
                                f"calls {callee.qual_name} "
                                f"({ci.block_reason})")
                            changed = True
                            break
                    if info.may_block:
                        break

    def _direct_alloc(self, info: FnInfo) -> Optional[str]:
        fn = info.fn
        fm = self.prog.files.get(fn.path)
        if fm:
            for ln in fm.new_lines:
                if fn.line <= ln <= fn.end_line:
                    return f"new-expression at line {ln}"
        for (line, depth, kind, data) in fn.events:
            if kind == "decl":
                dtype = data[0]
                hit = next((a for a in ALLOC_DECL_TYPES
                            if a in dtype.split()), None)
                if hit:
                    return f"constructs {hit} at line {line}"
            elif kind == "call":
                if data[1] in ALLOC_CALLS and \
                        not self.prog.by_name.get(data[1]):
                    return f"calls {data[1]} at line {line}"
        return None

    def _fixpoint_alloc(self):
        for info in self.infos.values():
            if info.fn.qual_name in self.prog.amortized:
                continue
            reason = self._direct_alloc(info)
            if reason:
                info.may_alloc = True
                info.alloc_reason = reason
        changed = True
        while changed:
            changed = False
            for info in self.infos.values():
                if info.may_alloc or \
                        info.fn.qual_name in self.prog.amortized:
                    continue
                for site in info.calls:
                    for callee in resolve_callees(self.prog, site):
                        if callee.qual_name in self.prog.amortized:
                            continue
                        ci = self.infos[id(callee)]
                        if ci.may_alloc:
                            info.may_alloc = True
                            info.alloc_reason = (
                                f"calls {callee.qual_name} "
                                f"({ci.alloc_reason})")
                            changed = True
                            break
                    if info.may_alloc:
                        break

    # ---- check 1: pin-escape ---------------------------------------------

    def check_pin_escape(self) -> List[Finding]:
        out: List[Finding] = []
        for fn in self.prog.functions:
            self._pin_escape_fn(fn, out)
        return out

    def _pin_escape_fn(self, fn: Function, out: List[Finding]):
        pins: Dict[str, int] = {}           # live pin var -> decl depth
        dead: Set[str] = set()              # Released pins
        derived: Dict[str, Tuple[str, int]] = {}  # var -> (pin, depth)
        poisoned: Set[str] = set()          # derived vars whose pin died
        decls: Dict[str, int] = {}          # every local -> decl depth
        ret_is_ref = any(w in ("&", "*", "span") for w in fn.ret.split())

        def roots_in(texts: List[str]) -> Optional[str]:
            for w in texts:
                if w in derived and w not in poisoned:
                    return derived[w][0]
            for i, w in enumerate(texts):
                if w in pins:
                    # `pin.get`, `pin->field`, `pin.value()->member`:
                    # anything reached THROUGH the pin is derived data.
                    # (Both frontends put get/value/-> within a few
                    # tokens of the root; a bare `pin` mention - move,
                    # pass-by-ref - is a pin transfer, not an escape.)
                    window = texts[i + 1:i + 5]
                    if any(t in ("get", "->", "value") for t in window):
                        return w
            return None

        for (line, depth, kind, data) in fn.events:
            if kind == "close":
                for p in [n for n, d in pins.items() if d >= depth]:
                    del pins[p]
                    for dv, (root, ddepth) in list(derived.items()):
                        if root == p and ddepth < depth:
                            poisoned.add(dv)
                for dv in [n for n, (_, d) in derived.items()
                           if d >= depth]:
                    del derived[dv]
                    poisoned.discard(dv)
                for n in [n for n, d in decls.items() if d >= depth]:
                    del decls[n]
            elif kind == "decl":
                dtype, name, init = data
                decls[name] = depth
                if any(p in dtype.split() for p in PIN_TYPES):
                    pins[name] = depth
                    dead.discard(name)
                elif ("&" in dtype.split() or "*" in dtype.split()
                      or "span" in dtype):
                    root = roots_in(init)
                    if root:
                        derived[name] = (root, depth)
            elif kind == "return":
                texts = data[0]
                hit = False
                for w in texts:
                    if w in poisoned:
                        self._finding(
                            out, fn.path, line, "pin-escape",
                            f"returns '{w}', derived from a PinnedPage "
                            f"whose pin was already released")
                        hit = True
                        break
                # Returning derived data BY VALUE copies it out while
                # the pin is still held - legal. Only a reference,
                # pointer, or span return type can smuggle the pin's
                # storage out.
                if not hit and ret_is_ref:
                    for w in texts:
                        if w in derived:
                            self._finding(
                                out, fn.path, line, "pin-escape",
                                f"returns '{w}', a reference derived "
                                f"from pinned page '{derived[w][0]}' — "
                                f"the pin dies when this function "
                                f"returns")
                            hit = True
                            break
                    if not hit:
                        root = roots_in(texts)
                        if root:
                            self._finding(
                                out, fn.path, line, "pin-escape",
                                f"returns a reference/pointer into "
                                f"pinned page '{root}'")
            elif kind == "assign":
                lhs, rhs = data
                root = roots_in(rhs)
                src = None
                for w in rhs:
                    if w in derived and w not in poisoned:
                        src = w
                        break
                if root is None:
                    continue
                target = next((w for w in lhs
                               if w and (w[0].isalpha() or w[0] == "_")),
                              None)
                if target is None:
                    continue
                is_member = (target.endswith("_")
                             and target not in decls) or lhs[:1] == ["this"]
                outlives = (target in decls and root in pins
                            and decls[target] < pins[root])
                if is_member or outlives:
                    what = src or f"data from '{root}'"
                    self._finding(
                        out, fn.path, line, "pin-escape",
                        f"stores {what!s} (derived from pinned page "
                        f"'{root}') into "
                        f"{'member' if is_member else 'outer-scope'} "
                        f"'{target}', which outlives the pin")
            elif kind == "call":
                recv, name, args, _is_stmt = data
                if recv and recv[0] in pins and \
                        name in ("Release", "reset"):
                    p = recv[0]
                    dead.add(p)
                    del pins[p]
                    for dv, (root, _d) in derived.items():
                        if root == p:
                            poisoned.add(dv)
                elif recv and recv[0] in dead and name != "Release":
                    self._finding(
                        out, fn.path, line, "pin-escape",
                        f"calls '{name}' on pinned page '{recv[0]}' "
                        f"after Release()")
            elif kind == "use":
                (name,) = data
                if name in poisoned:
                    self._finding(
                        out, fn.path, line, "pin-escape",
                        f"uses '{name}' after the PinnedPage it was "
                        f"derived from was released")
                    poisoned.discard(name)  # one finding per var

    # ---- check 2: lock-order graph / cycles ------------------------------

    def lock_graph(self) -> Dict[Tuple[str, str],
                                 List[Tuple[str, int, str]]]:
        """(held, acquired) -> [(path, line, fn_qual)] across the tree."""
        edges: Dict[Tuple[str, str], List[Tuple[str, int, str]]] = {}

        def add(frm: str, to: str, path: str, line: int, fq: str):
            if frm.startswith("<param>") or to.startswith("<param>"):
                return
            edges.setdefault((frm, to), []).append((path, line, fq))

        for info in self.infos.values():
            fn = info.fn
            for (frm, to, line) in info.edges:
                add(frm, to, fn.path, line, fn.qual_name)
            for site in info.calls:
                if not site.held:
                    continue
                for callee in resolve_callees(self.prog, site):
                    ci = self.infos[id(callee)]
                    for lock in ci.acq_star - ci.entry_locks:
                        for h in site.held:
                            # h == lock is an interprocedural
                            # self-deadlock; keep the edge.
                            add(h, lock, fn.path, site.line,
                                fn.qual_name)
        return edges

    def check_lock_cycle(self) -> List[Finding]:
        out: List[Finding] = []
        edges = self.lock_graph()
        graph: Dict[str, Set[str]] = {}
        for (frm, to) in edges:
            graph.setdefault(frm, set()).add(to)
            graph.setdefault(to, set())
        # self-deadlock: an edge L -> L (non-reentrant mutex).
        for (frm, to), sites in sorted(edges.items()):
            if frm == to:
                path, line, fq = sites[0]
                self._finding(
                    out, path, line, "lock-cycle",
                    f"{fq} acquires '{to}' while already holding it "
                    f"(non-reentrant Mutex self-deadlock)")
        # cycles via iterative DFS (white/grey/black).
        color: Dict[str, int] = {n: 0 for n in graph}
        stack_path: List[str] = []
        reported: Set[frozenset] = set()

        def dfs(start: str):
            stack = [(start, iter(sorted(graph[start])))]
            color[start] = 1
            stack_path.append(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt == node:
                        continue
                    if color[nxt] == 1:
                        cyc = stack_path[stack_path.index(nxt):] + [nxt]
                        key = frozenset(cyc)
                        if key not in reported:
                            reported.add(key)
                            first = edges.get((cyc[0], cyc[1]))
                            path, line, fq = first[0] if first else \
                                ("<unknown>", 0, "?")
                            self._finding(
                                out, path, line, "lock-cycle",
                                "lock-order cycle: " +
                                " -> ".join(cyc) +
                                f" (edge taken in {fq})")
                    elif color[nxt] == 0:
                        color[nxt] = 1
                        stack_path.append(nxt)
                        stack.append((nxt, iter(sorted(graph[nxt]))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    stack_path.pop()
                    stack.pop()

        for n in sorted(graph):
            if color[n] == 0:
                dfs(n)
        return out

    # ---- check 3: blocking while holding a mutex -------------------------

    def check_blocking(self) -> List[Finding]:
        out: List[Finding] = []
        for info in self.infos.values():
            fn = info.fn
            # legal waits: CondVar::Wait(m) while holding exactly {m}.
            legal_wait_lines: Set[int] = set()
            for (line, held, mutex) in info.condwaits:
                extra = [h for h in held if h != mutex]
                if mutex is not None and not extra:
                    legal_wait_lines.add(line)
                elif extra:
                    self._finding(
                        out, fn.path, line, "blocking-under-lock",
                        f"{fn.qual_name} waits on a condition variable "
                        f"for '{mutex}' while also holding "
                        f"{', '.join(repr(e) for e in extra)}")
            for site in info.calls:
                if not site.held:
                    continue
                if site.line in legal_wait_lines and site.name == "Wait":
                    continue
                callees = resolve_callees(self.prog, site)
                if not callees and site.name in BLOCKING_CALLS:
                    self._finding(
                        out, fn.path, site.line, "blocking-under-lock",
                        f"{fn.qual_name} calls blocking '{site.name}' "
                        f"while holding "
                        f"{', '.join(repr(h) for h in site.held)}")
                    continue
                for callee in callees:
                    ci = self.infos[id(callee)]
                    if ci.may_block and not (
                            callee.cls and
                            callee.cls.split('::')[-1] == "CondVar"):
                        self._finding(
                            out, fn.path, site.line,
                            "blocking-under-lock",
                            f"{fn.qual_name} calls "
                            f"{callee.qual_name}, which may block "
                            f"({ci.block_reason}), while holding "
                            f"{', '.join(repr(h) for h in site.held)}")
                        break
        return out

    # ---- check 4: status-propagation dataflow ----------------------------

    def check_status(self) -> List[Finding]:
        out: List[Finding] = []
        for info in self.infos.values():
            fn = info.fn
            events = fn.events
            # a) declared Status/Result values that are never read.
            for idx, (line, depth, kind, data) in enumerate(events):
                if kind != "decl":
                    continue
                dtype, name, _init = data
                words = dtype.replace("<", " ").replace(">", " ").split()
                if not any(s in words for s in STATUS_TYPES):
                    continue
                consumed = False
                for (l2, d2, k2, dat2) in events[idx + 1:]:
                    if k2 == "use" and dat2[0] == name:
                        consumed = True
                        break
                    if k2 == "return" and name in dat2[0]:
                        consumed = True
                        break
                    if k2 == "decl" and dat2[1] == name:
                        break  # shadowed / redeclared in a sibling scope
                if not consumed:
                    self._finding(
                        out, fn.path, line, "unchecked-status",
                        f"{fn.qual_name} declares {dtype.split()[0]} "
                        f"'{name}' but never checks, returns, or "
                        f"propagates it")
            # b) expression-statement calls whose Status result vanishes.
            for site in info.calls:
                if not site.is_stmt:
                    continue
                callees = resolve_callees(self.prog, site)
                if not callees:
                    continue
                rets = []
                for c in callees:
                    words = c.ret.replace("<", " ").replace(">", " ")
                    rets.append(any(s in words.split()
                                    for s in STATUS_TYPES))
                if rets and all(rets):
                    self._finding(
                        out, fn.path, site.line, "unchecked-status",
                        f"{fn.qual_name} discards the "
                        f"Status/Result returned by '{site.name}' "
                        f"(call is a bare expression statement)")
        return out

    # ---- check 5: allocation inside LINT-HOT-LOOP regions ----------------

    def check_hot_alloc(self) -> List[Finding]:
        out: List[Finding] = []
        for path, fm in self.prog.files.items():
            if not fm.hot_regions:
                continue

            def in_region(line: int) -> bool:
                return any(a <= line <= b for (a, b) in fm.hot_regions)

            for ln in sorted(fm.new_lines):
                if in_region(ln):
                    self._finding(
                        out, path, ln, "hot-alloc-ast",
                        "new-expression inside a LINT-HOT-LOOP region")
            for fn in fm.functions:
                info = self.infos[id(fn)]
                for (line, depth, kind, data) in fn.events:
                    if not in_region(line):
                        continue
                    if kind == "decl":
                        dtype = data[0]
                        words = dtype.replace("<", " ") \
                                     .replace(">", " ").split()
                        if any(a in words for a in ALLOC_DECL_TYPES):
                            self._finding(
                                out, path, line, "hot-alloc-ast",
                                f"constructs allocating type "
                                f"'{dtype}' inside a LINT-HOT-LOOP "
                                f"region")
                for site in info.calls:
                    if not in_region(site.line):
                        continue
                    callees = resolve_callees(self.prog, site)
                    if not callees and site.name in ALLOC_CALLS:
                        self._finding(
                            out, path, site.line, "hot-alloc-ast",
                            f"allocating call '{site.name}' inside a "
                            f"LINT-HOT-LOOP region")
                        continue
                    for callee in callees:
                        if callee.qual_name in self.prog.amortized:
                            continue
                        ci = self.infos[id(callee)]
                        if ci.may_alloc:
                            self._finding(
                                out, path, site.line, "hot-alloc-ast",
                                f"call to {callee.qual_name} may "
                                f"allocate ({ci.alloc_reason}) inside "
                                f"a LINT-HOT-LOOP region")
                            break
        return out

    # ---- driver ----------------------------------------------------------

    def run(self, checks=ALL_CHECKS) -> List[Finding]:
        out: List[Finding] = []
        if "pin-escape" in checks:
            out.extend(self.check_pin_escape())
        if "lock-cycle" in checks:
            out.extend(self.check_lock_cycle())
        if "blocking-under-lock" in checks:
            out.extend(self.check_blocking())
        if "unchecked-status" in checks:
            out.extend(self.check_status())
        if "hot-alloc-ast" in checks:
            out.extend(self.check_hot_alloc())
        seen: Set[Tuple[str, int, str]] = set()
        uniq: List[Finding] = []
        for f in sorted(out, key=lambda f: (f.path, f.line, f.check)):
            if f.key() not in seen:
                seen.add(f.key())
                uniq.append(f)
        return uniq

    # ---- lock table ------------------------------------------------------

    def lock_table_markdown(self, src_prefix: str = "src/") -> str:
        """Deterministic markdown lock-ordering table for DESIGN.md."""
        edges = self.lock_graph()
        locks: Set[str] = set()
        for info in self.infos.values():
            if not info.fn.path.startswith(src_prefix):
                continue
            locks |= info.acquired | info.entry_locks
        for (frm, to) in edges:
            locks.add(frm)
            locks.add(to)
        locks = {l for l in locks if not l.startswith("<param>")
                 and self.prog.class_origin.get(
                     l.rsplit("::", 1)[0], "").startswith(src_prefix)}
        preds: Dict[str, Set[str]] = {l: set() for l in locks}
        for (frm, to) in edges:
            if frm in locks and to in locks and frm != to:
                preds[to].add(frm)
        # level = longest acquisition chain ending at the lock (1-based).
        level: Dict[str, int] = {}

        def lv(lock: str, seen: Tuple[str, ...] = ()) -> int:
            if lock in level:
                return level[lock]
            if lock in seen:
                return 1  # cycle: reported by check_lock_cycle
            v = 1 + max((lv(p, seen + (lock,)) for p in preds[lock]),
                        default=0)
            level[lock] = v
            return v

        for l in locks:
            lv(l)
        guards: Dict[str, List[str]] = {l: [] for l in locks}
        for (cls, member), expr in sorted(self.prog.guarded.items()):
            tok = expr.split()[0] if expr.split() else ""
            owner = _find_member_owner(self.prog, cls, tok)
            lock = f"{owner}::{tok}" if owner else f"{cls}::{tok}"
            if lock in guards:
                guards[lock].append(f"{cls}::{member}")
        lines = ["| Lock | Level | Acquired while holding | Guards |",
                 "| --- | --- | --- | --- |"]
        for l in sorted(locks, key=lambda x: (level[x], x)):
            held = ", ".join(f"`{p}`" for p in sorted(preds[l])) \
                if preds[l] else "nothing"
            g = ", ".join(f"`{x}`" for x in guards[l]) if guards[l] \
                else "—"
            lines.append(f"| `{l}` | {level[l]} | {held} | {g} |")
        return "\n".join(lines)


# ===========================================================================
# Clang frontend: JSON AST dump ingestion (-Xclang -ast-dump=json)
# ===========================================================================

def collect_markers(fm: FileModel, raw_lines: List[str]):
    """Comment-level markers (allow / amortized / hot regions) are not in
    the AST; both frontends collect them from source text."""
    region_start = None
    for lineno, raw in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(raw)
        if m:
            fm.allow[lineno] = {s.strip() for s in m.group(1).split(",")}
        if AMORTIZED_RE.search(raw):
            fm.amortized_lines.add(lineno)
        if HOT_LOOP_END_RE.search(raw):
            if region_start is not None:
                fm.hot_regions.append((region_start, lineno))
                region_start = None
        elif HOT_LOOP_START_RE.search(raw):
            region_start = lineno
    if region_start is not None:
        fm.hot_regions.append((region_start, len(raw_lines) + 1))


def _spaced_type(qual_type: str) -> str:
    """'std::vector<int> &' -> 'std :: vector < int > &' (token text)."""
    s = re.sub(r"(::|<|>|&&|&|\*|,)", r" \1 ", qual_type)
    return " ".join(s.split())


class ClangAstConverter:
    """Converts one clang JSON AST (one TU) into FileModels.

    Only nodes whose expansion location lands in `want_path` (the TU's
    main file or a repo header) are kept. Location tracking is stateful:
    clang omits file/line fields that repeat the previous node's values
    in traversal order.
    """

    def __init__(self, repo_root: str, want_prefixes: Tuple[str, ...]):
        self.repo_root = repo_root
        self.want_prefixes = want_prefixes
        self.models: Dict[str, FileModel] = {}
        self.cur_file: Optional[str] = None
        self.cur_line: int = 0

    # -- location handling -------------------------------------------------

    def _loc(self, node: dict) -> Tuple[Optional[str], int]:
        loc = node.get("loc") or {}
        if "expansionLoc" in loc:
            loc = loc["expansionLoc"]
        if not loc:
            rng = node.get("range") or {}
            loc = rng.get("begin") or {}
            if "expansionLoc" in loc:
                loc = loc["expansionLoc"]
        f = loc.get("file")
        if f is not None:
            self.cur_file = self._rel(f)
        if "line" in loc:
            self.cur_line = loc["line"]
        return self.cur_file, self.cur_line

    def _rel(self, path: str) -> str:
        p = os.path.normpath(path)
        root = os.path.normpath(self.repo_root) + os.sep
        if p.startswith(root):
            return p[len(root):]
        return p

    def _wanted(self, path: Optional[str]) -> bool:
        return path is not None and \
            any(path.startswith(p) for p in self.want_prefixes)

    def _model(self, path: str) -> FileModel:
        fm = self.models.get(path)
        if fm is None:
            fm = FileModel(path)
            full = os.path.join(self.repo_root, path)
            if os.path.exists(full):
                with open(full, "r", encoding="utf-8",
                          errors="replace") as f:
                    fm.raw_lines = f.read().splitlines()
                collect_markers(fm, fm.raw_lines)
                for lineno, raw in enumerate(fm.raw_lines, start=1):
                    if re.search(r"\bnew\b", raw):
                        fm.new_lines.add(lineno)
            self.models[path] = fm
        return fm

    # -- entry -------------------------------------------------------------

    def convert(self, tu: dict) -> List[FileModel]:
        self._walk_decl(tu, ns=[], cls=[])
        return list(self.models.values())

    def _walk_decl(self, node: dict, ns: List[str], cls: List[str]):
        kind = node.get("kind", "")
        self._loc(node)
        if kind == "NamespaceDecl":
            name = node.get("name")
            inner_ns = ns + ([name] if name else [])
            for ch in node.get("inner", []):
                self._walk_decl(ch, inner_ns, cls)
            return
        if kind == "CXXRecordDecl":
            name = node.get("name")
            if not name or not node.get("completeDefinition"):
                for ch in node.get("inner", []):
                    self._walk_decl(ch, ns, cls)
                return
            self._record(node, ns, cls + [name])
            return
        if kind in ("FunctionDecl", "CXXMethodDecl",
                    "CXXConstructorDecl", "CXXDestructorDecl"):
            self._function(node, ns, cls)
            return
        if kind in ("TranslationUnitDecl", "LinkageSpecDecl",
                    "ExportDecl"):
            for ch in node.get("inner", []):
                self._walk_decl(ch, ns, cls)

    def _record(self, node: dict, ns: List[str], cls: List[str]):
        path, _line = self._loc(node)
        qual_cls = "::".join(cls)
        members: Dict[str, str] = {}
        for ch in node.get("inner", []):
            k = ch.get("kind", "")
            self._loc(ch)
            if k == "FieldDecl":
                name = ch.get("name")
                qt = (ch.get("type") or {}).get("qualType", "")
                if name:
                    members[name] = _spaced_type(qt)
                    for attr in ch.get("inner", []):
                        if "GuardedBy" in attr.get("kind", ""):
                            names = []
                            _collect_json_names(attr, names)
                            if names and self._wanted(path):
                                fm = self._model(path)
                                fm.guarded[(qual_cls, name)] = names[-1]
            elif k in ("CXXRecordDecl", "CXXMethodDecl",
                       "CXXConstructorDecl", "CXXDestructorDecl",
                       "FunctionDecl"):
                self._walk_decl(ch, ns, cls)
        if members and self._wanted(path):
            fm = self._model(path)
            fm.members.setdefault(qual_cls, {}).update(members)

    def _function(self, node: dict, ns: List[str], cls: List[str]):
        path, line = self._loc(node)
        name = node.get("name", "")
        body = None
        params: List[Tuple[str, str]] = []
        requires: List[str] = []
        for ch in node.get("inner", []):
            k = ch.get("kind", "")
            if k == "ParmVarDecl":
                self._loc(ch)
                pn = ch.get("name")
                qt = (ch.get("type") or {}).get("qualType", "")
                if pn:
                    params.append((_spaced_type(qt), pn))
            elif "RequiresCapability" in k or "LocksRequired" in k:
                names: List[str] = []
                _collect_json_names(ch, names)
                requires.extend(names)
            elif k == "CompoundStmt":
                body = ch
        if not self._wanted(path) or not name:
            return
        qt = (node.get("type") or {}).get("qualType", "")
        ret = _spaced_type(qt.split("(", 1)[0].strip())
        qual = "::".join(ns + cls + [name])
        fn = Function(path, line, qual, name,
                      "::".join(cls) if cls else None)
        fn.params = params
        fn.requires = requires
        fn.ret = ret
        fm = self._model(path)
        if body is None:
            if requires:
                stash = getattr(fm, "_requires_decls", None)
                if stash is None:
                    stash = {}
                    setattr(fm, "_requires_decls", stash)
                stash.setdefault(qual, []).extend(requires)
            return
        self._stmt(fn, body, depth=0)
        fn.end_line = max([line] + [e[0] for e in fn.events])
        fm.functions.append(fn)

    # -- statements --------------------------------------------------------

    def _stmt(self, fn: Function, node: dict, depth: int):
        kind = node.get("kind", "")
        _path, line = self._loc(node)
        if kind == "CompoundStmt":
            fn.add(line, depth + 1, "open", ())
            for ch in node.get("inner", []):
                self._stmt(fn, ch, depth + 1)
            fn.add(self.cur_line, depth + 1, "close", ())
            return
        if kind == "DeclStmt":
            for ch in node.get("inner", []):
                if ch.get("kind") != "VarDecl":
                    continue
                _p, dline = self._loc(ch)
                vname = ch.get("name", "")
                qt = _spaced_type(
                    (ch.get("type") or {}).get("qualType", ""))
                init_names: List[str] = []
                for sub in ch.get("inner", []):
                    self._expr(fn, sub, depth, collect=init_names)
                if "MutexLock" in qt.split():
                    fn.add(dline, depth, "lock", (vname, init_names))
                else:
                    fn.add(dline, depth, "decl",
                           (qt, vname, init_names))
            return
        if kind == "ReturnStmt":
            names: List[str] = []
            for ch in node.get("inner", []):
                self._expr(fn, ch, depth, collect=names)
            fn.add(line, depth, "return", (names,))
            return
        if kind == "BinaryOperator" and node.get("opcode") == "=":
            inner = node.get("inner", [])
            lhs: List[str] = []
            rhs: List[str] = []
            if len(inner) == 2:
                self._expr(fn, inner[0], depth, collect=lhs)
                self._expr(fn, inner[1], depth, collect=rhs)
                fn.add(line, depth, "assign", (lhs, rhs))
            return
        if kind in ("IfStmt", "WhileStmt", "ForStmt", "DoStmt",
                    "CXXForRangeStmt", "SwitchStmt", "CaseStmt",
                    "DefaultStmt", "CXXTryStmt", "CXXCatchStmt"):
            for ch in node.get("inner", []):
                self._stmt(fn, ch, depth)
            return
        # expression statement or anything else: emit expr events.
        self._expr(fn, node, depth, collect=None, is_stmt=True)

    def _expr(self, fn: Function, node: dict, depth: int,
              collect: Optional[List[str]], is_stmt: bool = False):
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        _path, line = self._loc(node)
        if kind == "LambdaExpr":
            for ch in node.get("inner", []):
                if ch.get("kind") == "CompoundStmt":
                    fn.is_lambda_host = True
                    self._stmt(fn, ch, depth)
            return
        if kind in ("CallExpr", "CXXMemberCallExpr",
                    "CXXOperatorCallExpr"):
            inner = node.get("inner", [])
            callee = inner[0] if inner else {}
            name, recv = _callee_name_and_recv(callee)
            args: List[str] = []
            for a in inner[1:]:
                self._expr(fn, a, depth, collect=args)
            if name:
                fn.add(line, depth, "call", (recv, name, args, is_stmt))
                if name == "Wait" and args:
                    fn.add(line, depth, "condwait",
                           (recv, " ".join(args)))
                if collect is not None:
                    collect.extend(recv)
                    collect.append(name)
                    collect.extend(args)
            for n2 in recv:
                if n2 not in ("this", "()"):
                    fn.add(line, depth, "use", (n2,))
            return
        if kind == "DeclRefExpr":
            name = (node.get("referencedDecl") or {}).get("name") \
                or node.get("name")
            if name:
                fn.add(line, depth, "use", (name,))
                if collect is not None:
                    collect.append(name)
            return
        if kind == "MemberExpr":
            name = node.get("name")
            for ch in node.get("inner", []):
                self._expr(fn, ch, depth, collect=collect)
            if name:
                fn.add(line, depth, "use", (name,))
                if collect is not None:
                    if node.get("isArrow"):
                        collect.append("->")
                    else:
                        collect.append(".")
                    collect.append(name)
            return
        if kind == "CompoundStmt":
            self._stmt(fn, node, depth)
            return
        for ch in node.get("inner", []):
            self._expr(fn, ch, depth, collect=collect)


def _collect_json_names(node: dict, out: List[str]):
    if not isinstance(node, dict):
        return
    name = (node.get("referencedDecl") or {}).get("name") \
        or (node.get("name") if node.get("kind") in
            ("DeclRefExpr", "MemberExpr") else None)
    if name:
        out.append(name)
    for ch in node.get("inner", []):
        _collect_json_names(ch, out)


def _callee_name_and_recv(callee: dict) -> Tuple[Optional[str],
                                                 List[str]]:
    """Peels ImplicitCastExpr etc. to get the called name + receiver."""
    node = callee
    while isinstance(node, dict) and node.get("kind") in (
            "ImplicitCastExpr", "ParenExpr", "ConstantExpr"):
        inner = node.get("inner", [])
        node = inner[0] if inner else {}
    kind = node.get("kind", "")
    if kind == "DeclRefExpr":
        return (node.get("referencedDecl") or {}).get("name") \
            or node.get("name"), []
    if kind == "MemberExpr":
        name = node.get("name")
        chain: List[str] = []
        base = node.get("inner", [])
        cur = base[0] if base else {}
        while isinstance(cur, dict):
            k = cur.get("kind", "")
            if k in ("ImplicitCastExpr", "ParenExpr"):
                nxt = cur.get("inner", [])
                cur = nxt[0] if nxt else {}
                continue
            if k == "MemberExpr":
                if cur.get("name"):
                    chain.insert(0, cur["name"])
                nxt = cur.get("inner", [])
                cur = nxt[0] if nxt else {}
                continue
            if k == "DeclRefExpr":
                nm = (cur.get("referencedDecl") or {}).get("name") \
                    or cur.get("name")
                if nm:
                    chain.insert(0, nm)
                break
            if k == "CXXThisExpr":
                chain.insert(0, "this")
                break
            if k in ("CallExpr", "CXXMemberCallExpr"):
                chain.insert(0, "()")
                break
            break
        return name, chain
    return None, []


def run_clang_backend(repo_root: str, build_dir: str, cache_dir: str,
                      paths: List[str]) -> Program:
    """Drives clang over compile_commands.json with an AST-dump cache
    keyed on the source file's content hash + compile flags."""
    ccpath = os.path.join(build_dir, "compile_commands.json")
    with open(ccpath, "r", encoding="utf-8") as f:
        cc = json.load(f)
    clang = os.environ.get("IRBUF_CLANG", "clang++")
    os.makedirs(cache_dir, exist_ok=True)
    prog = Program()
    seen_paths: Set[str] = set()
    for entry in cc:
        src = os.path.normpath(os.path.join(entry.get("directory", "."),
                                            entry["file"]))
        rel = os.path.relpath(src, repo_root)
        if paths and rel not in paths:
            continue
        if not rel.startswith("src" + os.sep):
            continue
        argv = entry.get("arguments")
        if argv is None:
            argv = shlex.split(entry.get("command", ""))
        flags = [a for a in argv[1:]
                 if a not in ("-c", "-o") and not a.endswith(".o")
                 and os.path.normpath(a) != src]
        with open(src, "rb") as f:
            digest = hashlib.sha256(
                f.read() + "\0".join(flags).encode()).hexdigest()
        cached = os.path.join(cache_dir, digest + ".json")
        if os.path.exists(cached):
            with open(cached, "r", encoding="utf-8") as f:
                tu = json.load(f)
        else:
            cmd = ([clang] + flags +
                   ["-fsyntax-only", "-Xclang", "-ast-dump=json", src])
            res = subprocess.run(cmd, capture_output=True, text=True)
            if res.returncode != 0 and not res.stdout:
                raise RuntimeError(
                    f"clang AST dump failed for {rel}:\n{res.stderr}")
            tu = json.loads(res.stdout)
            with open(cached, "w", encoding="utf-8") as f:
                json.dump(tu, f)
        conv = ClangAstConverter(repo_root, ("src/",))
        for fm in conv.convert(tu):
            if fm.path in seen_paths:
                continue
            seen_paths.add(fm.path)
            prog.add_file(fm)
    prog.finish()
    return prog


# ===========================================================================
# Drivers: tree walk, self-test, lock-table file management, main()
# ===========================================================================

TREE_DIRS = ("src",)
LOCK_TABLE_BEGIN = "<!-- BEGIN GENERATED: irbuf-analyzer lock table -->"
LOCK_TABLE_END = "<!-- END GENERATED: irbuf-analyzer lock table -->"


def collect_tree_files(root: str) -> List[str]:
    out: List[str] = []
    for d in TREE_DIRS:
        base = os.path.join(root, d)
        for dirpath, _dirs, files in os.walk(base):
            for f in sorted(files):
                if f.endswith((".h", ".cc")):
                    out.append(os.path.relpath(os.path.join(dirpath, f),
                                               root))
    return sorted(out)


def build_program_internal(root: str, rel_paths: List[str]) -> Program:
    prog = Program()
    for rel in rel_paths:
        full = os.path.join(root, rel)
        with open(full, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        prog.add_file(InternalParser(rel, text).parse())
    prog.finish()
    return prog


def pick_backend(requested: str) -> str:
    if requested != "auto":
        return requested
    clang = os.environ.get("IRBUF_CLANG", "clang++")
    return "clang" if shutil.which(clang) else "internal"


def build_program(root: str, backend: str, build_dir: str,
                  cache_dir: str, rel_paths: List[str]) -> Program:
    if backend == "clang":
        return run_clang_backend(root, build_dir, cache_dir, rel_paths)
    return build_program_internal(root, rel_paths)


# ---- self-test -----------------------------------------------------------

def expected_findings(raw_lines: List[str]) -> Set[Tuple[int, str]]:
    out: Set[Tuple[int, str]] = set()
    for lineno, raw in enumerate(raw_lines, start=1):
        m = EXPECT_RE.search(raw)
        if m:
            for check in m.group(1).split(","):
                out.add((lineno, check.strip()))
    return out


def run_self_test(script_dir: str) -> int:
    fixtures = os.path.join(script_dir, "fixtures")
    failures = 0
    cc_fixtures = sorted(f for f in os.listdir(fixtures)
                         if f.endswith(".cc"))
    for fname in cc_fixtures:
        full = os.path.join(fixtures, fname)
        with open(full, "r", encoding="utf-8") as f:
            text = f.read()
        raw_lines = text.splitlines()
        prog = Program()
        prog.add_file(InternalParser(f"fixtures/{fname}", text).parse())
        prog.finish()
        analyzer = SemanticAnalyzer(prog)
        got = {(f2.line, f2.check) for f2 in analyzer.run()}
        want = expected_findings(raw_lines)
        for (line, check) in sorted(want - got):
            print(f"SELFTEST FAIL {fname}:{line}: expected a "
                  f"'{check}' finding that did not fire")
            failures += 1
        for (line, check) in sorted(got - want):
            print(f"SELFTEST FAIL {fname}:{line}: unexpected "
                  f"'{check}' finding")
            failures += 1
    # clang AST JSON samples: exercise the clang frontend's converter
    # without needing clang in the environment.
    json_fixtures = sorted(f for f in os.listdir(fixtures)
                           if f.endswith(".ast.json"))
    for fname in json_fixtures:
        full = os.path.join(fixtures, fname)
        with open(full, "r", encoding="utf-8") as f:
            tu = json.load(f)
        conv = ClangAstConverter(script_dir, ("fixtures/",))
        prog = Program()
        for fm in conv.convert(tu):
            prog.add_file(fm)
        prog.finish()
        analyzer = SemanticAnalyzer(prog)
        got = {(f2.line, f2.check) for f2 in analyzer.run()}
        expect_path = full[:-len(".ast.json")] + ".expect"
        want: Set[Tuple[int, str]] = set()
        if os.path.exists(expect_path):
            with open(expect_path, "r", encoding="utf-8") as f:
                for raw in f:
                    raw = raw.strip()
                    if not raw or raw.startswith("#"):
                        continue
                    line_s, check = raw.split()
                    want.add((int(line_s), check))
        for (line, check) in sorted(want - got):
            print(f"SELFTEST FAIL {fname}:{line}: expected a "
                  f"'{check}' finding from the clang frontend")
            failures += 1
        for (line, check) in sorted(got - want):
            print(f"SELFTEST FAIL {fname}:{line}: unexpected "
                  f"'{check}' finding from the clang frontend")
            failures += 1
    total = len(cc_fixtures) + len(json_fixtures)
    if failures == 0:
        print(f"self-test OK: {total} fixtures, all expectations met")
        return 0
    print(f"self-test: {failures} failures across {total} fixtures")
    return 1


# ---- lock table file management ------------------------------------------

def replace_lock_table(doc_path: str, table: str) -> Tuple[str, bool]:
    with open(doc_path, "r", encoding="utf-8") as f:
        text = f.read()
    begin = text.find(LOCK_TABLE_BEGIN)
    end = text.find(LOCK_TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        raise RuntimeError(
            f"{doc_path}: generated-lock-table markers not found "
            f"({LOCK_TABLE_BEGIN!r} ... {LOCK_TABLE_END!r})")
    head = text[:begin + len(LOCK_TABLE_BEGIN)]
    tail = text[end:]
    new_text = head + "\n" + table + "\n" + tail
    return new_text, new_text != text


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        description="irbuf semantic analyzer (see module docstring)")
    ap.add_argument("--root", default=REPO_ROOT)
    ap.add_argument("--backend", default="auto",
                    choices=("auto", "clang", "internal"))
    ap.add_argument("--build-dir", default=None,
                    help="build dir containing compile_commands.json "
                         "(clang backend)")
    ap.add_argument("--ast-cache", default=None,
                    help="AST-dump cache dir (clang backend)")
    ap.add_argument("--checks", default=",".join(ALL_CHECKS),
                    help="comma-separated subset of: " +
                         ", ".join(ALL_CHECKS))
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--json-out", default=None)
    ap.add_argument("--emit-lock-table", action="store_true")
    ap.add_argument("--check-lock-table", action="store_true")
    ap.add_argument("--write-lock-table", action="store_true")
    ap.add_argument("--doc", default=None,
                    help="DESIGN.md path for the lock-table modes")
    ap.add_argument("paths", nargs="*",
                    help="restrict analysis to these repo-relative "
                         "files")
    args = ap.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.self_test:
        return run_self_test(script_dir)

    for c in args.checks.split(","):
        if c.strip() and c.strip() not in ALL_CHECKS:
            print(f"unknown check: {c.strip()}", file=sys.stderr)
            return 2
    checks = tuple(c.strip() for c in args.checks.split(",")
                   if c.strip())

    root = os.path.abspath(args.root)
    backend = pick_backend(args.backend)
    table_mode = (args.emit_lock_table or args.check_lock_table
                  or args.write_lock_table)
    if table_mode and args.backend == "auto":
        # the committed table must not depend on which toolchain the
        # machine happens to have: always derive it deterministically.
        backend = "internal"
    build_dir = args.build_dir or os.path.join(root, "build")
    cache_dir = args.ast_cache or os.path.join(build_dir, "ast-cache")
    rel_paths = args.paths or collect_tree_files(root)
    try:
        prog = build_program(root, backend, build_dir, cache_dir,
                             rel_paths)
    except (OSError, RuntimeError, json.JSONDecodeError) as e:
        print(f"irbuf_analyzer: {e}", file=sys.stderr)
        return 2
    analyzer = SemanticAnalyzer(prog)

    if table_mode:
        table = analyzer.lock_table_markdown()
        doc = args.doc or os.path.join(root, "DESIGN.md")
        if args.emit_lock_table:
            print(table)
            return 0
        try:
            new_text, changed = replace_lock_table(doc, table)
        except (OSError, RuntimeError) as e:
            print(f"irbuf_analyzer: {e}", file=sys.stderr)
            return 2
        if args.check_lock_table:
            if changed:
                print(f"{doc}: generated lock table is stale — run\n"
                      f"  python3 tools/analyze/irbuf_analyzer.py "
                      f"--write-lock-table")
                return 1
            print(f"{doc}: lock table is up to date "
                  f"({backend} backend)")
            # fall through: the tree must ALSO be finding-free, so one
            # ctest entry (analyzer_tree) gates both properties.
        else:
            with open(doc, "w", encoding="utf-8") as f:
                f.write(new_text)
            print(f"{doc}: lock table "
                  f"{'updated' if changed else 'already current'}")
            return 0

    findings = analyzer.run(checks)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump([{"path": x.path, "line": x.line,
                        "check": x.check, "message": x.message}
                       for x in findings], f, indent=2)
    for x in findings:
        print(f"{x.path}:{x.line}: [{x.check}] {x.message}")
    n_fn = len(prog.functions)
    print(f"irbuf_analyzer: {len(findings)} finding(s) across "
          f"{len(prog.files)} files / {n_fn} functions "
          f"({backend} backend)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
