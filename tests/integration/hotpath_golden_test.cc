// Golden differential tests for the evaluation hot path: every
// (evaluator x replacement-policy) combination is run over the seeded
// WSJ-calibrated corpus and folded into a digest that covers the ranked
// answers bit-for-bit (doc ids and the raw IEEE-754 bits of every
// score) plus the paper's telemetry (accumulator counts, postings
// processed, disk reads, pages processed).
//
// The expected digests below were recorded from the tree BEFORE the
// block-decode / open-addressing rewrite of the hot path (the scalar
// VByte + std::unordered_map implementation). They pin the rewrite to
// byte-identical ranking output and identical telemetry: any change to
// evaluation semantics — a float accumulated in a different order, an
// accumulator admitted under a different threshold, a posting counted
// differently — shows up as a digest mismatch.
//
// To regenerate after an INTENTIONAL semantic change (none are expected;
// think hard before touching these), run with IRBUF_GOLDEN_PRINT=1 and
// paste the printed table.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "core/boolean_evaluator.h"
#include "core/filtering_evaluator.h"
#include "core/quit_continue_evaluator.h"
#include "corpus/synthetic_corpus.h"

namespace irbuf {
namespace {

// One shared corpus for the whole file: deterministic in (seed, scale).
const corpus::SyntheticCorpus& GoldenCorpus() {
  static const corpus::SyntheticCorpus* corpus = [] {
    corpus::CorpusOptions options;
    options.scale = 0.01;
    options.num_random_topics = 8;
    auto result = corpus::GenerateSyntheticCorpus(options);
    if (!result.ok()) std::abort();
    return result.value().release();
  }();
  return *corpus;
}

// FNV-1a over 64-bit words: simple, stable across platforms.
uint64_t Mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

uint64_t MixDouble(uint64_t h, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return Mix(h, bits);
}

constexpr uint64_t kFnvSeed = 0xCBF29CE484222325ull;

const buffer::PolicyKind kPolicies[] = {
    buffer::PolicyKind::kLru, buffer::PolicyKind::kRap,
    buffer::PolicyKind::kFifo, buffer::PolicyKind::kClock};

constexpr size_t kPoolPages = 32;

uint64_t FilteringDigest(bool buffer_aware, buffer::PolicyKind policy) {
  const corpus::SyntheticCorpus& corpus = GoldenCorpus();
  buffer::BufferManager pool(&corpus.index().disk(), kPoolPages,
                             buffer::MakePolicy(policy));
  core::EvalOptions options;
  options.buffer_aware = buffer_aware;
  options.top_n = 20;
  core::FilteringEvaluator evaluator(&corpus.index(), options);
  uint64_t h = kFnvSeed;
  for (const corpus::Topic& topic : corpus.topics()) {
    auto result = evaluator.Evaluate(topic.query, &pool);
    if (!result.ok()) std::abort();
    const core::EvalResult& r = result.value();
    for (const core::ScoredDoc& sd : r.top_docs) {
      h = Mix(h, sd.doc);
      h = MixDouble(h, sd.score);
    }
    h = Mix(h, r.accumulators);
    h = Mix(h, r.postings_processed);
    h = Mix(h, r.disk_reads);
    h = Mix(h, r.pages_processed);
    h = Mix(h, r.terms_skipped);
  }
  return h;
}

uint64_t BooleanDigest(buffer::PolicyKind policy) {
  const corpus::SyntheticCorpus& corpus = GoldenCorpus();
  buffer::BufferManager pool(&corpus.index().disk(), kPoolPages,
                             buffer::MakePolicy(policy));
  core::BooleanEvaluator evaluator(&corpus.index());
  uint64_t h = kFnvSeed;
  for (const corpus::Topic& topic : corpus.topics()) {
    for (core::BooleanOp op :
         {core::BooleanOp::kAnd, core::BooleanOp::kOr}) {
      auto result = evaluator.Evaluate(topic.query, op, &pool);
      if (!result.ok()) std::abort();
      const core::BooleanResult& r = result.value();
      for (DocId d : r.docs) h = Mix(h, d);
      h = Mix(h, r.docs.size());
      h = Mix(h, r.postings_processed);
      h = Mix(h, r.disk_reads);
    }
  }
  return h;
}

uint64_t QuitContinueDigest(core::LimitMode mode,
                            buffer::PolicyKind policy) {
  const corpus::SyntheticCorpus& corpus = GoldenCorpus();
  buffer::BufferManager pool(&corpus.index().disk(), kPoolPages,
                             buffer::MakePolicy(policy));
  core::QuitContinueOptions options;
  options.mode = mode;
  options.accumulator_limit = 200;
  options.top_n = 20;
  core::QuitContinueEvaluator evaluator(&corpus.index(), options);
  uint64_t h = kFnvSeed;
  for (const corpus::Topic& topic : corpus.topics()) {
    auto result = evaluator.Evaluate(topic.query, &pool);
    if (!result.ok()) std::abort();
    const core::EvalResult& r = result.value();
    for (const core::ScoredDoc& sd : r.top_docs) {
      h = Mix(h, sd.doc);
      h = MixDouble(h, sd.score);
    }
    h = Mix(h, r.accumulators);
    h = Mix(h, r.postings_processed);
  }
  return h;
}

struct GoldenEntry {
  const char* name;
  uint64_t digest;
};

// --- Recorded from the pre-rewrite (scalar VByte + unordered_map)
// implementation; see the file comment. ---
const GoldenEntry kGolden[] = {
    {"DF/LRU", 0xbf868283ac1e963full},
    {"DF/RAP", 0x71aca84db928d232ull},
    {"DF/FIFO", 0xbf868283ac1e963full},
    {"DF/CLOCK", 0xbf868283ac1e963full},
    {"BAF/LRU", 0xc7af5d28eed1e03eull},
    {"BAF/RAP", 0xf4cb9ed1b90d2139ull},
    {"BAF/FIFO", 0xc7af5d28eed1e03eull},
    {"BAF/CLOCK", 0xc7af5d28eed1e03eull},
    {"BOOL/LRU", 0xcce3e89bcca73446ull},
    {"BOOL/RAP", 0x0b74c6a224e26296ull},
    {"BOOL/FIFO", 0x639e5baa79ae948full},
    {"BOOL/CLOCK", 0x639e5baa79ae948full},
    {"QUIT/lru", 0xc6b05343f84848c8ull},
    {"CONTINUE/lru", 0x1177ee41d22af572ull},
};

uint64_t Lookup(const char* name) {
  for (const GoldenEntry& e : kGolden) {
    if (std::strcmp(e.name, name) == 0) return e.digest;
  }
  ADD_FAILURE() << "no golden entry named " << name;
  return 0;
}

bool PrintMode() {
  return std::getenv("IRBUF_GOLDEN_PRINT") != nullptr;
}

void CheckOrPrint(const std::string& name, uint64_t got) {
  if (PrintMode()) {
    std::printf("    {\"%s\", 0x%016llxull},\n", name.c_str(),
                static_cast<unsigned long long>(got));
    return;
  }
  EXPECT_EQ(got, Lookup(name.c_str()))
      << name << ": hot-path output diverged from the pre-rewrite "
      << "implementation (actual digest 0x" << std::hex << got << ")";
}

TEST(HotpathGoldenTest, DfBitIdenticalAcrossPolicies) {
  for (buffer::PolicyKind policy : kPolicies) {
    CheckOrPrint(std::string("DF/") + buffer::PolicyKindName(policy),
                 FilteringDigest(/*buffer_aware=*/false, policy));
  }
}

TEST(HotpathGoldenTest, BafBitIdenticalAcrossPolicies) {
  for (buffer::PolicyKind policy : kPolicies) {
    CheckOrPrint(std::string("BAF/") + buffer::PolicyKindName(policy),
                 FilteringDigest(/*buffer_aware=*/true, policy));
  }
}

TEST(HotpathGoldenTest, BooleanBitIdenticalAcrossPolicies) {
  for (buffer::PolicyKind policy : kPolicies) {
    CheckOrPrint(std::string("BOOL/") + buffer::PolicyKindName(policy),
                 BooleanDigest(policy));
  }
}

TEST(HotpathGoldenTest, QuitContinueBitIdentical) {
  CheckOrPrint("QUIT/lru",
               QuitContinueDigest(core::LimitMode::kQuit,
                                  buffer::PolicyKind::kLru));
  CheckOrPrint("CONTINUE/lru",
               QuitContinueDigest(core::LimitMode::kContinue,
                                  buffer::PolicyKind::kLru));
}

}  // namespace
}  // namespace irbuf
