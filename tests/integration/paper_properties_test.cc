// The paper's qualitative claims, verified on a scaled-down calibrated
// corpus. These are the behaviours the full-scale benches reproduce
// quantitatively; here they gate the build.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "corpus/synthetic_corpus.h"
#include "ir/experiment.h"
#include "metrics/effectiveness.h"
#include "workload/refinement.h"

namespace irbuf {
namespace {

struct SharedState {
  std::unique_ptr<corpus::SyntheticCorpus> corpus;
  workload::RefinementSequence add_only_q1;
  workload::RefinementSequence add_drop_q1;
  uint64_t working_set = 0;
};

const SharedState& Shared() {
  static const SharedState* state = [] {
    auto s = new SharedState();
    corpus::CorpusOptions options;
    options.scale = 0.05;
    options.num_random_topics = 4;
    auto corpus = corpus::GenerateSyntheticCorpus(options);
    if (!corpus.ok()) std::abort();
    s->corpus = std::move(corpus).value();
    const auto& q1 = s->corpus->topics()[0];
    auto ranking =
        workload::RankTermsByContribution(q1.query, s->corpus->index());
    if (!ranking.ok()) std::abort();
    s->add_only_q1 = workload::BuildRefinementSequenceFromRanking(
        "Q1", ranking.value(), workload::RefinementKind::kAddOnly);
    s->add_drop_q1 = workload::BuildRefinementSequenceFromRanking(
        "Q1", ranking.value(), workload::RefinementKind::kAddDrop);
    s->working_set =
        ir::SequenceWorkingSetPages(s->corpus->index(), s->add_only_q1);
    return s;
  }();
  return *state;
}

ir::SequenceRunOptions Config(bool baf, buffer::PolicyKind policy,
                              size_t pages) {
  ir::SequenceRunOptions options;
  options.buffer_aware = baf;
  options.policy = policy;
  options.buffer_pages = pages;
  return options;
}

uint64_t TotalReads(const workload::RefinementSequence& seq,
                    const ir::SequenceRunOptions& options) {
  auto result = ir::RunRefinementSequence(Shared().corpus->index(), seq,
                                          {}, options);
  EXPECT_TRUE(result.ok());
  return result.value().total_disk_reads;
}

TEST(PaperPropertiesTest, DfSavesReadsAndAccumulatorsOverFullEval) {
  // Section 5.1.1: the unsafe optimization reduces disk reads (by ~2/3 on
  // average at full scale) and accumulators (by ~50x).
  const auto& corpus = *Shared().corpus;
  const auto& q1 = corpus.topics()[0].query;
  core::EvalOptions full;
  full.c_ins = 0.0;
  full.c_add = 0.0;
  auto rfull = ir::RunColdQuery(corpus.index(), q1, full);
  core::EvalOptions tuned;
  auto rdf = ir::RunColdQuery(corpus.index(), q1, tuned);
  ASSERT_TRUE(rfull.ok());
  ASSERT_TRUE(rdf.ok());
  EXPECT_LT(rdf.value().disk_reads, rfull.value().disk_reads);
  EXPECT_LT(rdf.value().accumulators * 10, rfull.value().accumulators);
}

TEST(PaperPropertiesTest, BafImprovesOnDfUnderLruWithLimitedBuffers) {
  // Figures 5-6: with limited buffers, BAF/LRU reads far less than
  // DF/LRU on ADD-ONLY sequences.
  size_t pages = Shared().working_set / 12 + 1;
  uint64_t df_lru = TotalReads(Shared().add_only_q1,
                               Config(false, buffer::PolicyKind::kLru,
                                      pages));
  uint64_t baf_lru = TotalReads(Shared().add_only_q1,
                                Config(true, buffer::PolicyKind::kLru,
                                       pages));
  EXPECT_LT(baf_lru, df_lru);
}

TEST(PaperPropertiesTest, BetterPoliciesImproveOnLruForAddOnly) {
  // DF prunes most of each list, so buffer pressure only exists well
  // below the raw working set; 1/12 of it sits in the contended region.
  size_t pages = Shared().working_set / 12 + 1;
  uint64_t lru = TotalReads(Shared().add_only_q1,
                            Config(false, buffer::PolicyKind::kLru, pages));
  uint64_t mru = TotalReads(Shared().add_only_q1,
                            Config(false, buffer::PolicyKind::kMru, pages));
  uint64_t rap = TotalReads(Shared().add_only_q1,
                            Config(false, buffer::PolicyKind::kRap, pages));
  EXPECT_LT(mru, lru);
  EXPECT_LT(rap, lru);
}

TEST(PaperPropertiesTest, RapHandlesAddDropBetterThanMru) {
  // Section 5.3: MRU cannot evict dropped-term pages; RAP evicts them
  // first.
  size_t pages = Shared().working_set / 12 + 1;
  uint64_t mru = TotalReads(Shared().add_drop_q1,
                            Config(false, buffer::PolicyKind::kMru, pages));
  uint64_t rap = TotalReads(Shared().add_drop_q1,
                            Config(false, buffer::PolicyKind::kRap, pages));
  EXPECT_LE(rap, mru);
}

TEST(PaperPropertiesTest, EnoughBuffersMakePoliciesEquivalent) {
  // Beyond the working set, adding buffers has no effect and every
  // policy reads each page exactly once per sequence...
  size_t pages = Shared().working_set + 8;
  uint64_t lru = TotalReads(Shared().add_only_q1,
                            Config(false, buffer::PolicyKind::kLru, pages));
  uint64_t mru = TotalReads(Shared().add_only_q1,
                            Config(false, buffer::PolicyKind::kMru, pages));
  uint64_t rap = TotalReads(Shared().add_only_q1,
                            Config(false, buffer::PolicyKind::kRap, pages));
  EXPECT_EQ(lru, mru);
  EXPECT_EQ(lru, rap);
}

TEST(PaperPropertiesTest, LruMonotoneInBufferSize) {
  const auto& seq = Shared().add_only_q1;
  uint64_t previous = UINT64_MAX;
  for (size_t pages : {1ul, 8ul, 32ul, 128ul, 512ul}) {
    uint64_t reads =
        TotalReads(seq, Config(false, buffer::PolicyKind::kLru, pages));
    EXPECT_LE(reads, previous) << pages;
    previous = reads;
  }
}

TEST(PaperPropertiesTest, EffectivenessPreservedByBafAndPolicies) {
  // Section 5.2: DF's effectiveness is independent of policy/buffer size;
  // BAF stays within a few percent relative on average.
  const auto& corpus = *Shared().corpus;
  const auto& topic = corpus.topics()[0];
  size_t pages = Shared().working_set / 12 + 1;

  auto df = ir::RunRefinementSequence(
      corpus.index(), Shared().add_only_q1, topic.relevant_docs,
      Config(false, buffer::PolicyKind::kLru, pages));
  ASSERT_TRUE(df.ok());
  for (buffer::PolicyKind policy :
       {buffer::PolicyKind::kLru, buffer::PolicyKind::kMru,
        buffer::PolicyKind::kRap}) {
    auto baf = ir::RunRefinementSequence(
        corpus.index(), Shared().add_only_q1, topic.relevant_docs,
        Config(true, policy, pages));
    ASSERT_TRUE(baf.ok());
    double reference = df.value().mean_avg_precision;
    ASSERT_GT(reference, 0.0);
    double relative =
        std::abs(baf.value().mean_avg_precision - reference) / reference;
    EXPECT_LT(relative, 0.15) << buffer::PolicyKindName(policy);
  }
}

TEST(PaperPropertiesTest, DfEffectivenessIndependentOfBuffering) {
  const auto& corpus = *Shared().corpus;
  const auto& topic = corpus.topics()[0];
  auto a = ir::RunRefinementSequence(
      corpus.index(), Shared().add_only_q1, topic.relevant_docs,
      Config(false, buffer::PolicyKind::kLru, 2));
  auto b = ir::RunRefinementSequence(
      corpus.index(), Shared().add_only_q1, topic.relevant_docs,
      Config(false, buffer::PolicyKind::kRap, 1024));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().mean_avg_precision,
                   b.value().mean_avg_precision);
}

TEST(PaperPropertiesTest, LastRefinementBenefitsMost) {
  // Table 7: the last refinement's savings exceed the sequence average.
  size_t pages = Shared().working_set / 12 + 1;
  auto df = ir::RunRefinementSequence(
      Shared().corpus->index(), Shared().add_only_q1, {},
      Config(false, buffer::PolicyKind::kLru, pages));
  auto baf = ir::RunRefinementSequence(
      Shared().corpus->index(), Shared().add_only_q1, {},
      Config(true, buffer::PolicyKind::kRap, pages));
  ASSERT_TRUE(df.ok());
  ASSERT_TRUE(baf.ok());
  uint64_t df_last = df.value().steps.back().disk_reads;
  uint64_t baf_last = baf.value().steps.back().disk_reads;
  EXPECT_LT(baf_last, df_last);
}

}  // namespace
}  // namespace irbuf
