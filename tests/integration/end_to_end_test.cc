// End-to-end integration: raw text -> analysis pipeline -> inverted index
// -> refinement workload -> buffer-managed evaluation -> effectiveness.

#include <gtest/gtest.h>

#include "core/boolean_evaluator.h"
#include "corpus/text_corpus.h"
#include "ir/experiment.h"
#include "ir/ir_system.h"
#include "metrics/effectiveness.h"
#include "workload/refinement.h"

namespace irbuf {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pipeline_.emplace(text::AnalysisPipeline::Default());
    auto index = corpus::BuildIndexFromDocuments(
        corpus::EmbeddedNewsCorpus(), *pipeline_, 4);
    ASSERT_TRUE(index.ok());
    index_.emplace(std::move(index).value());
  }

  std::optional<text::AnalysisPipeline> pipeline_;
  std::optional<index::InvertedIndex> index_;
};

TEST_F(EndToEndTest, RefinementSessionOverRealText) {
  // A user searches, refines twice, and the answers stay sensible.
  ir::IrSystemOptions options;
  options.buffer_pages = 24;
  options.policy = buffer::PolicyKind::kRap;
  options.eval.buffer_aware = true;
  options.eval.top_n = 5;
  ir::IrSystem system(&*index_, options);

  auto r1 = system.Search("health hazards", *pipeline_);
  ASSERT_TRUE(r1.ok());
  auto r2 = system.Search("health hazards from fibers", *pipeline_);
  ASSERT_TRUE(r2.ok());
  auto r3 =
      system.Search("health hazards from asbestos fibers and insulation",
                    *pipeline_);
  ASSERT_TRUE(r3.ok());
  ASSERT_FALSE(r3.value().top_docs.empty());
  // The fiber-hazards article (doc 4) must be the final top answer.
  EXPECT_EQ(r3.value().top_docs[0].doc, 4u);
  // Later refinements reuse buffered pages: second run of overlapping
  // terms must hit.
  EXPECT_GT(system.buffers().stats().hits, 0u);
}

TEST_F(EndToEndTest, WorkloadConstructionOverRealText) {
  core::Query q = core::Query::Parse(
      "drastic price increases hit american stock markets and grocery "
      "shoppers as insurance losses mount after hurricane",
      *pipeline_, index_->lexicon());
  ASSERT_GE(q.size(), 8u);
  auto sequence = workload::BuildRefinementSequence(
      "wsj", q, *index_, workload::RefinementKind::kAddDrop);
  ASSERT_TRUE(sequence.ok());
  ASSERT_GE(sequence.value().steps.size(), 3u);

  ir::SequenceRunOptions run;
  run.buffer_pages = 16;
  run.policy = buffer::PolicyKind::kRap;
  run.buffer_aware = true;
  auto result =
      ir::RunRefinementSequence(*index_, sequence.value(), {}, run);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().total_disk_reads, 0u);
}

TEST_F(EndToEndTest, BooleanAndRankedAgreeOnContainment) {
  // Every document a conjunctive boolean query returns must also be
  // scored by full ranked evaluation of the same terms.
  core::Query q = core::Query::Parse("price increases", *pipeline_,
                                     index_->lexicon());
  ASSERT_EQ(q.size(), 2u);

  core::BooleanEvaluator boolean(&*index_);
  buffer::BufferManager pool1(
      &index_->disk(), 64, buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto anded = boolean.Evaluate(q, core::BooleanOp::kAnd, &pool1);
  ASSERT_TRUE(anded.ok());
  ASSERT_FALSE(anded.value().docs.empty());

  core::EvalOptions full;
  full.c_ins = 0.0;
  full.c_add = 0.0;
  full.top_n = 1000;
  core::FilteringEvaluator ranked(&*index_, full);
  buffer::BufferManager pool2(
      &index_->disk(), 64, buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto scored = ranked.Evaluate(q, &pool2);
  ASSERT_TRUE(scored.ok());

  for (DocId d : anded.value().docs) {
    bool found = false;
    for (const core::ScoredDoc& sd : scored.value().top_docs) {
      if (sd.doc == d) found = true;
    }
    EXPECT_TRUE(found) << "doc " << d;
  }
}

TEST_F(EndToEndTest, TinyBufferPoolStillCorrect) {
  // Correctness must not depend on pool size — only efficiency does.
  core::Query q = core::Query::Parse("computer network security",
                                     *pipeline_, index_->lexicon());
  core::EvalOptions full;
  full.c_ins = 0.0;
  full.c_add = 0.0;
  core::FilteringEvaluator evaluator(&*index_, full);

  buffer::BufferManager big(
      &index_->disk(), 512, buffer::MakePolicy(buffer::PolicyKind::kLru));
  buffer::BufferManager tiny(
      &index_->disk(), 1, buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto rb = evaluator.Evaluate(q, &big);
  auto rt = evaluator.Evaluate(q, &tiny);
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(rt.ok());
  ASSERT_EQ(rb.value().top_docs.size(), rt.value().top_docs.size());
  for (size_t i = 0; i < rb.value().top_docs.size(); ++i) {
    EXPECT_EQ(rb.value().top_docs[i].doc, rt.value().top_docs[i].doc);
    EXPECT_NEAR(rb.value().top_docs[i].score, rt.value().top_docs[i].score,
                1e-9);
  }
  EXPECT_GE(rt.value().disk_reads, rb.value().disk_reads);
}

}  // namespace
}  // namespace irbuf
