// Differential and metamorphic properties across the whole stack:
// configuration knobs that must not change *answers* (page size,
// replacement policy, pool size, persistence round-trips) are swept and
// checked against each other.

#include <gtest/gtest.h>

#include <cstdio>

#include "../core/test_index.h"
#include "core/filtering_evaluator.h"
#include "index/index_io.h"
#include "storage/codec.h"

namespace irbuf {
namespace {

using core::MakeCollection;
using core::MakeRandomCollection;
using core::TestCollection;

std::vector<core::ScoredDoc> EvaluateWith(const index::InvertedIndex& index,
                                          const core::Query& q,
                                          buffer::PolicyKind policy,
                                          size_t pool_pages,
                                          const core::EvalOptions& eval) {
  buffer::BufferManager pool(&index.disk(), pool_pages,
                             buffer::MakePolicy(policy));
  core::FilteringEvaluator evaluator(&index, eval);
  auto result = evaluator.Evaluate(q, &pool);
  EXPECT_TRUE(result.ok());
  return result.value().top_docs;
}

void ExpectSameRanking(const std::vector<core::ScoredDoc>& a,
                       const std::vector<core::ScoredDoc>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc) << what << " position " << i;
    EXPECT_NEAR(a[i].score, b[i].score, 1e-9) << what;
  }
}

// ---- Page size must not change answers. ----

class PageSizeDifferentialTest
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PageSizeDifferentialTest, DfAnswersInvariantToPageSize) {
  uint32_t page_size = GetParam();
  // Same raw lists at the parameterized page size and at a reference
  // page size.
  Pcg32 rng(55);
  std::vector<std::vector<Posting>> lists(6);
  for (auto& list : lists) {
    TruncatedGeometric freq(0.5, 30);
    for (DocId d : SampleDistinct(150, 20 + rng.NextBounded(80), &rng)) {
      list.push_back({d, freq.Sample(&rng)});
    }
  }
  TestCollection reference = MakeCollection(150, 7, lists);
  TestCollection variant = MakeCollection(150, page_size, lists);

  core::Query q;
  for (TermId t = 0; t < 6; ++t) q.AddTerm(t, 1 + t % 2);
  core::EvalOptions tuned;  // Unsafe thresholds ON: the harder case.
  tuned.top_n = 50;
  auto a = EvaluateWith(reference.index, q, buffer::PolicyKind::kLru, 4,
                        tuned);
  auto b = EvaluateWith(variant.index, q, buffer::PolicyKind::kLru, 4,
                        tuned);
  ExpectSameRanking(a, b, "page size");
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageSizeDifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 16, 64, 404));

// ---- Replacement policy and pool size must not change answers. ----

class PolicyDifferentialTest
    : public ::testing::TestWithParam<buffer::PolicyKind> {};

TEST_P(PolicyDifferentialTest, DfAnswersInvariantToPolicyAndPool) {
  TestCollection tc = MakeRandomCollection(66, 250, 9, 4);
  core::Query q;
  for (TermId t = 0; t < 9; ++t) q.AddTerm(t);
  core::EvalOptions tuned;
  tuned.top_n = 30;
  auto reference = EvaluateWith(tc.index, q, buffer::PolicyKind::kLru,
                                tc.index.total_pages() + 1, tuned);
  for (size_t pool : {1ul, 3ul, 17ul, 200ul}) {
    auto variant = EvaluateWith(tc.index, q, GetParam(), pool, tuned);
    ExpectSameRanking(reference, variant, "policy/pool");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyDifferentialTest,
    ::testing::ValuesIn(buffer::AllPolicyKinds()),
    [](const ::testing::TestParamInfo<buffer::PolicyKind>& info) {
      std::string name = buffer::PolicyKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- Persistence round-trips preserve evaluation exactly. ----

class PersistenceDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PersistenceDifferentialTest, SaveLoadEvaluatesIdentically) {
  uint64_t seed = GetParam();
  TestCollection tc =
      MakeRandomCollection(seed, 100 + seed * 13 % 150, 7, 3);
  std::string path = std::string(::testing::TempDir()) +
                     "/diff_" + std::to_string(seed) + ".irbf";
  ASSERT_TRUE(index::SaveIndex(tc.index, path).ok());
  auto loaded = index::LoadIndex(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  Pcg32 rng(seed);
  core::Query q;
  for (int i = 0; i < 4; ++i) q.AddTerm(rng.NextBounded(7), 1);
  core::EvalOptions tuned;
  tuned.top_n = 25;

  auto a = EvaluateWith(tc.index, q, buffer::PolicyKind::kRap, 8, tuned);
  auto b = EvaluateWith(loaded.value(), q, buffer::PolicyKind::kRap, 8,
                        tuned);
  ExpectSameRanking(a, b, "persistence");

  // I/O accounting must also be identical (same pages, same misses).
  buffer::BufferManager p1(&tc.index.disk(), 8,
                           buffer::MakePolicy(buffer::PolicyKind::kLru));
  buffer::BufferManager p2(&loaded.value().disk(), 8,
                           buffer::MakePolicy(buffer::PolicyKind::kLru));
  core::FilteringEvaluator e1(&tc.index, tuned);
  core::FilteringEvaluator e2(&loaded.value(), tuned);
  auto r1 = e1.Evaluate(q, &p1);
  auto r2 = e2.Evaluate(q, &p2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().disk_reads, r2.value().disk_reads);
  EXPECT_EQ(r1.value().postings_processed,
            r2.value().postings_processed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceDifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

// ---- Codec round-trips for both physical layouts. ----

class CodecOrderDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecOrderDifferentialTest, RoundTripsBothLayouts) {
  Pcg32 rng(GetParam() * 31 + 7);
  std::vector<Posting> postings;
  TruncatedGeometric freq(0.5, 40);
  for (DocId d : SampleDistinct(5000, 300, &rng)) {
    postings.push_back({d, freq.Sample(&rng)});
  }
  // Frequency-sorted layout.
  std::vector<Posting> fsorted = postings;
  std::sort(fsorted.begin(), fsorted.end(),
            [](const Posting& a, const Posting& b) {
              if (a.freq != b.freq) return a.freq > b.freq;
              return a.doc < b.doc;
            });
  auto f_decoded = storage::DecodePostings(storage::EncodePostings(fsorted));
  ASSERT_TRUE(f_decoded.ok());
  EXPECT_EQ(f_decoded.value(), fsorted);

  // Document-ordered layout.
  std::vector<Posting> dsorted = postings;
  std::sort(dsorted.begin(), dsorted.end(),
            [](const Posting& a, const Posting& b) {
              return a.doc < b.doc;
            });
  auto d_decoded = storage::DecodePostings(storage::EncodePostings(dsorted));
  ASSERT_TRUE(d_decoded.ok());
  EXPECT_EQ(d_decoded.value(), dsorted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecOrderDifferentialTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace irbuf
