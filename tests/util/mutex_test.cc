#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace irbuf {
namespace {

TEST(MutexWaitStatsTest, BucketLowerBoundsAreLog2Microseconds) {
  EXPECT_EQ(MutexWaitStats::BucketLowerBoundUs(0), 0u);
  EXPECT_EQ(MutexWaitStats::BucketLowerBoundUs(1), 1u);
  EXPECT_EQ(MutexWaitStats::BucketLowerBoundUs(2), 2u);
  EXPECT_EQ(MutexWaitStats::BucketLowerBoundUs(3), 4u);
  EXPECT_EQ(MutexWaitStats::BucketLowerBoundUs(MutexWaitStats::kBuckets - 1),
            uint64_t{1} << (MutexWaitStats::kBuckets - 2));
}

TEST(MutexWaitStatsTest, BucketForMapsWaitsToTheirRange) {
  EXPECT_EQ(MutexWaitStats::BucketFor(0), 0u);
  EXPECT_EQ(MutexWaitStats::BucketFor(999), 0u);          // < 1us
  EXPECT_EQ(MutexWaitStats::BucketFor(1000), 1u);         // [1, 2)us
  EXPECT_EQ(MutexWaitStats::BucketFor(1999), 1u);
  EXPECT_EQ(MutexWaitStats::BucketFor(2000), 2u);         // [2, 4)us
  EXPECT_EQ(MutexWaitStats::BucketFor(3'000'000), 12u);   // [2048, 4096)us
  // Anything from ~0.5s up lands in the final catch-all bucket.
  EXPECT_EQ(MutexWaitStats::BucketFor(uint64_t{3600} * 1'000'000'000),
            MutexWaitStats::kBuckets - 1);
}

TEST(MutexWaitStatsTest, CountersAndHistogramTrackRecordings) {
  MutexWaitStats stats("test.stats");
  EXPECT_STREQ(stats.name(), "test.stats");
  stats.RecordUncontended();
  stats.RecordUncontended();
  stats.RecordWait(1500);  // 1.5us
  EXPECT_EQ(stats.acquisitions(), 3u);
  EXPECT_EQ(stats.contended(), 1u);
  EXPECT_EQ(stats.wait_ns_total(), 1500u);
  EXPECT_EQ(stats.bucket(1), 1u);
  stats.Reset();
  EXPECT_EQ(stats.acquisitions(), 0u);
  EXPECT_EQ(stats.contended(), 0u);
  EXPECT_EQ(stats.bucket(1), 0u);
}

TEST(MutexWaitStatsTest, ObserverFiresOnContendedAcquisitionsOnly) {
  MutexWaitStats stats("test.observer");
  struct Seen {
    int calls = 0;
    uint64_t last_wait_ns = 0;
  } seen;
  stats.SetObserver(
      [](void* ctx, uint64_t wait_ns) {
        auto* s = static_cast<Seen*>(ctx);
        s->calls++;
        s->last_wait_ns = wait_ns;
      },
      &seen);
  stats.RecordUncontended();
  EXPECT_EQ(seen.calls, 0);
  stats.RecordWait(4242);
  EXPECT_EQ(seen.calls, 1);
  EXPECT_EQ(seen.last_wait_ns, 4242u);
}

TEST(MutexTest, UntrackedLockTakesNoStats) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TrackedUncontendedLockCountsWithoutWait) {
  Mutex mu;
  MutexWaitStats stats("test.uncontended");
  mu.TrackContention(&stats);
  for (int i = 0; i < 5; ++i) {
    mu.Lock();
    mu.Unlock();
  }
  EXPECT_EQ(stats.acquisitions(), 5u);
  EXPECT_EQ(stats.contended(), 0u);
  EXPECT_EQ(stats.wait_ns_total(), 0u);
}

TEST(MutexTest, TrackContentionNullptrRevertsToFastPath) {
  Mutex mu;
  MutexWaitStats stats("test.detach");
  mu.TrackContention(&stats);
  mu.Lock();
  mu.Unlock();
  mu.TrackContention(nullptr);
  mu.Lock();
  mu.Unlock();
  EXPECT_EQ(stats.acquisitions(), 1u);  // Only the tracked window counted.
}

TEST(MutexTest, BlockedLockRecordsMeasuredWait) {
  Mutex mu;
  MutexWaitStats stats("test.contended");
  mu.TrackContention(&stats);

  mu.Lock();  // Uncontended: held while the waiter starts.
  std::atomic<bool> attempting{false};
  std::atomic<bool> locked{false};
  std::thread waiter([&] {
    attempting.store(true);
    mu.Lock();  // Blocks until the main thread releases.
    locked.store(true);
    mu.Unlock();
  });
  // Hold the lock until the waiter is at (or inside) its Lock call,
  // then long enough that the measured wait is unambiguous.
  while (!attempting.load()) {
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(locked.load());
  mu.Unlock();
  waiter.join();

  EXPECT_TRUE(locked.load());
  EXPECT_EQ(stats.acquisitions(), 2u);
  EXPECT_EQ(stats.contended(), 1u);
  // The waiter blocked for roughly the sleep; anything over a
  // millisecond proves the wait was measured, not fabricated.
  EXPECT_GT(stats.wait_ns_total(), 1'000'000u);
}

TEST(MutexTest, SharedStatsAggregateAcrossMutexes) {
  // The pool's 16 page-table stripes share one stats object; locks on
  // distinct mutexes must merge into one acquisition stream.
  Mutex a;
  Mutex b;
  MutexWaitStats stats("test.family");
  a.TrackContention(&stats);
  b.TrackContention(&stats);
  a.Lock();
  a.Unlock();
  b.Lock();
  b.Unlock();
  EXPECT_EQ(stats.acquisitions(), 2u);
}

TEST(CondVarTest, WaitIsNotCountedAsContention) {
  // Condition wait is "waiting for work", not lock contention; the
  // instrumented mutex must not charge it to the wait histogram.
  Mutex mu;
  MutexWaitStats stats("test.condvar");
  mu.TrackContention(&stats);
  CondVar cv;
  std::atomic<bool> ready{false};

  std::thread worker([&] {
    MutexLock lock(mu);
    while (!ready.load()) cv.Wait(mu);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    MutexLock lock(mu);
    ready.store(true);
  }
  cv.NotifyOne();
  worker.join();

  // Both threads' Lock calls may or may not have collided (the worker
  // re-acquiring after Wait can contend with the notifier), but the
  // 5ms condition dwell itself must not appear as wait time.
  EXPECT_LT(stats.wait_ns_total(), 4'000'000u);
}

}  // namespace
}  // namespace irbuf
