#include "util/zipf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace irbuf {
namespace {

TEST(ZipfSamplerTest, StaysInRange) {
  Pcg32 rng(1);
  ZipfSampler zipf(100, 1.1);
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = zipf.Sample(&rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
  }
}

TEST(ZipfSamplerTest, RankOneIsMostFrequent) {
  Pcg32 rng(2);
  ZipfSampler zipf(1000, 1.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  int max_count = 0;
  uint64_t max_rank = 0;
  for (auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 1u);
}

TEST(ZipfSamplerTest, SkewMatchesTheory) {
  // For s = 1 and n = 1000, P(1)/P(2) should be about 2.
  Pcg32 rng(3);
  ZipfSampler zipf(1000, 1.0);
  int c1 = 0, c2 = 0;
  for (int i = 0; i < 200000; ++i) {
    uint64_t k = zipf.Sample(&rng);
    if (k == 1) ++c1;
    if (k == 2) ++c2;
  }
  EXPECT_NEAR(static_cast<double>(c1) / c2, 2.0, 0.25);
}

TEST(ZipfSamplerTest, HandlesNonUnitExponent) {
  Pcg32 rng(4);
  for (double s : {0.5, 0.8, 1.5, 2.0}) {
    ZipfSampler zipf(500, s);
    for (int i = 0; i < 2000; ++i) {
      uint64_t k = zipf.Sample(&rng);
      ASSERT_GE(k, 1u);
      ASSERT_LE(k, 500u);
    }
  }
}

TEST(TruncatedGeometricTest, StaysInRange) {
  Pcg32 rng(5);
  TruncatedGeometric g(0.4, 20);
  for (int i = 0; i < 10000; ++i) {
    uint32_t v = g.Sample(&rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 20u);
  }
}

TEST(TruncatedGeometricTest, MeanMatchesTheory) {
  // Untruncated geometric mean is 1/p; truncation at 100 barely matters
  // for p = 0.5.
  Pcg32 rng(6);
  TruncatedGeometric g(0.5, 100);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.Sample(&rng);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(TruncatedGeometricTest, ProbabilityOneAlwaysOne) {
  Pcg32 rng(7);
  TruncatedGeometric g(1.0, 100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g.Sample(&rng), 1u);
}

TEST(TruncatedGeometricTest, SkewedTowardsLowValues) {
  Pcg32 rng(8);
  TruncatedGeometric g(0.6, 50);
  int ones = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    if (g.Sample(&rng) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / total, 0.6, 0.02);
}

TEST(SampleDistinctTest, ReturnsDistinctValuesInRange) {
  Pcg32 rng(9);
  auto sample = SampleDistinct(1000, 100, &rng);
  ASSERT_EQ(sample.size(), 100u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (uint32_t v : sample) EXPECT_LT(v, 1000u);
}

TEST(SampleDistinctTest, FullRangeWhenKEqualsN) {
  Pcg32 rng(10);
  auto sample = SampleDistinct(50, 50, &rng);
  std::sort(sample.begin(), sample.end());
  for (uint32_t i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleDistinctTest, KGreaterThanNClamps) {
  Pcg32 rng(11);
  auto sample = SampleDistinct(10, 100, &rng);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(SampleDistinctTest, CoversTheSpaceOverManyDraws) {
  Pcg32 rng(12);
  std::set<uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    for (uint32_t v : SampleDistinct(20, 5, &rng)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 20u);
}

}  // namespace
}  // namespace irbuf
