#include "util/str.h"

#include <gtest/gtest.h>

namespace irbuf {
namespace {

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(SplitTest, SplitsAndDropsEmptyPieces) {
  auto parts = Split("a,b,,c", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, MultipleDelimiters) {
  auto parts = Split("a b\tc", " \t");
  ASSERT_EQ(parts.size(), 3u);
}

TEST(ToLowerAsciiTest, LowersOnlyAsciiUppercase) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123!"), "hello 123!");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, HandlesLongOutput) {
  std::string long_arg(5000, 'y');
  std::string out = StrFormat("%s!", long_arg.c_str());
  EXPECT_EQ(out.size(), 5001u);
  EXPECT_EQ(out.back(), '!');
}

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"Term", "Pages"});
  table.AddRow({"stockmarket", "1"});
  table.AddRow({"drastic", "44"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("Term"), std::string::npos);
  EXPECT_NE(s.find("stockmarket"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(AsciiTableTest, PadsShortRows) {
  AsciiTable table({"A", "B", "C"});
  table.AddRow({"only-one"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace irbuf
