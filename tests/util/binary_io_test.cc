#include "util/binary_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace irbuf {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(BinaryIoTest, RoundTripsAllTypes) {
  std::string path = TempPath("roundtrip.bin");
  {
    auto writer = BinaryWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().WriteU32(0).ok());
    ASSERT_TRUE(writer.value().WriteU32(4294967295u).ok());
    ASSERT_TRUE(writer.value().WriteU64(1ULL << 52).ok());
    ASSERT_TRUE(writer.value().WriteDouble(-3.14159).ok());
    ASSERT_TRUE(writer.value().WriteString("hello world").ok());
    ASSERT_TRUE(writer.value().WriteString("").ok());
    ASSERT_TRUE(writer.value().WriteBytes({1, 2, 3}).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  auto reader = BinaryReader::Open(path);
  ASSERT_TRUE(reader.ok());
  uint32_t u32 = 7;
  uint64_t u64 = 7;
  double d = 0;
  std::string s;
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(reader.value().ReadU32(&u32).ok());
  EXPECT_EQ(u32, 0u);
  ASSERT_TRUE(reader.value().ReadU32(&u32).ok());
  EXPECT_EQ(u32, 4294967295u);
  ASSERT_TRUE(reader.value().ReadU64(&u64).ok());
  EXPECT_EQ(u64, 1ULL << 52);
  ASSERT_TRUE(reader.value().ReadDouble(&d).ok());
  EXPECT_DOUBLE_EQ(d, -3.14159);
  ASSERT_TRUE(reader.value().ReadString(&s).ok());
  EXPECT_EQ(s, "hello world");
  ASSERT_TRUE(reader.value().ReadString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(reader.value().ReadBytes(&bytes).ok());
  EXPECT_EQ(bytes, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(reader.value().AtEof());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ReadPastEndFails) {
  std::string path = TempPath("short.bin");
  {
    auto writer = BinaryWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().WriteU32(42).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  auto reader = BinaryReader::Open(path);
  ASSERT_TRUE(reader.ok());
  uint64_t u64 = 0;
  EXPECT_EQ(reader.value().ReadU64(&u64).code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, OpenMissingFileFails) {
  EXPECT_FALSE(BinaryReader::Open("/no/such/file.bin").ok());
  EXPECT_FALSE(BinaryWriter::Open("/no/such/dir/file.bin").ok());
}

TEST(BinaryIoTest, AtEofOnEmptyFile) {
  std::string path = TempPath("empty.bin");
  {
    auto writer = BinaryWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  auto reader = BinaryReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().AtEof());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, CloseTwiceFails) {
  std::string path = TempPath("close.bin");
  auto writer = BinaryWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Close().ok());
  EXPECT_EQ(writer.value().Close().code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MoveTransfersOwnership) {
  std::string path = TempPath("move.bin");
  {
    auto writer = BinaryWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    BinaryWriter moved = std::move(writer).value();
    ASSERT_TRUE(moved.WriteU32(9).ok());
    ASSERT_TRUE(moved.Close().ok());
  }
  auto reader = BinaryReader::Open(path);
  ASSERT_TRUE(reader.ok());
  BinaryReader moved = std::move(reader).value();
  uint32_t v = 0;
  ASSERT_TRUE(moved.ReadU32(&v).ok());
  EXPECT_EQ(v, 9u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace irbuf
