#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace irbuf {
namespace {

TEST(Pcg32Test, DeterministicForEqualSeeds) {
  Pcg32 a(123, 7), b(123, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Pcg32Test, DifferentSeedsDiverge) {
  Pcg32 a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32Test, DifferentStreamsDiverge) {
  Pcg32 a(1, 1), b(1, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32Test, BoundedStaysInRange) {
  Pcg32 rng(99);
  for (uint32_t bound : {1u, 2u, 3u, 10u, 404u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Pcg32Test, BoundedZeroOrOneIsZero) {
  Pcg32 rng(5);
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Pcg32Test, BoundedIsRoughlyUniform) {
  Pcg32 rng(7);
  constexpr uint32_t kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace irbuf
