#include "util/status.h"

#include <gtest/gtest.h>

namespace irbuf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    IRBUF_RETURN_NOT_OK(Status::IOError("disk gone"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kIOError);

  auto succeeds = []() -> Status {
    IRBUF_RETURN_NOT_OK(Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(succeeds().ok());
}

}  // namespace
}  // namespace irbuf
