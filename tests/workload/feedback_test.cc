#include "workload/feedback.h"

#include <gtest/gtest.h>

#include "../core/test_index.h"
#include "ir/experiment.h"

namespace irbuf::workload {
namespace {

class FeedbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tc_.emplace(core::MakeRandomCollection(31, 300, 15, 4));
    auto forward = index::ForwardIndex::FromInvertedIndex(tc_->index);
    ASSERT_TRUE(forward.ok());
    forward_.emplace(std::move(forward).value());
  }

  std::optional<core::TestCollection> tc_;
  std::optional<index::ForwardIndex> forward_;
};

TEST_F(FeedbackTest, ExpansionAddsRequestedNumberOfNewTerms) {
  core::Query seed;
  seed.AddTerm(0);
  seed.AddTerm(1);
  auto gold = ir::RunColdQuery(tc_->index, seed, core::EvalOptions{});
  ASSERT_TRUE(gold.ok());

  FeedbackOptions options;
  options.terms_per_round = 3;
  options.max_df_fraction = 1.0;  // Tiny collection: allow all terms.
  core::Query expanded = ExpandWithFeedback(
      seed, gold.value().top_docs, tc_->index, *forward_, options);
  EXPECT_EQ(expanded.size(), seed.size() + 3);
  // Original terms preserved.
  EXPECT_TRUE(expanded.Contains(0));
  EXPECT_TRUE(expanded.Contains(1));
}

TEST_F(FeedbackTest, ExpansionTermsComeFromFeedbackDocs) {
  core::Query seed;
  seed.AddTerm(2);
  auto gold = ir::RunColdQuery(tc_->index, seed, core::EvalOptions{});
  ASSERT_TRUE(gold.ok());
  FeedbackOptions options;
  options.terms_per_round = 2;
  options.feedback_docs = 5;
  options.max_df_fraction = 1.0;
  core::Query expanded = ExpandWithFeedback(
      seed, gold.value().top_docs, tc_->index, *forward_, options);
  // Every added term occurs in at least one of the feedback documents.
  for (const core::QueryTerm& qt : expanded.terms()) {
    if (seed.Contains(qt.term)) continue;
    bool found = false;
    for (size_t i = 0; i < 5 && i < gold.value().top_docs.size(); ++i) {
      for (const index::ForwardPosting& fp :
           forward_->TermsOf(gold.value().top_docs[i].doc)) {
        if (fp.term == qt.term) found = true;
      }
    }
    EXPECT_TRUE(found) << "term " << qt.term;
  }
}

TEST_F(FeedbackTest, CommonTermsExcludedByDfCap) {
  // With a tiny df cap nothing qualifies and the query is unchanged
  // (except possible fq bumps, which the cap also suppresses here).
  core::Query seed;
  seed.AddTerm(0);
  auto gold = ir::RunColdQuery(tc_->index, seed, core::EvalOptions{});
  ASSERT_TRUE(gold.ok());
  FeedbackOptions options;
  options.max_df_fraction = 0.0;
  core::Query expanded = ExpandWithFeedback(
      seed, gold.value().top_docs, tc_->index, *forward_, options);
  EXPECT_EQ(expanded.size(), seed.size());
}

TEST_F(FeedbackTest, SequenceGrowsAcrossRounds) {
  core::Query seed;
  seed.AddTerm(0);
  seed.AddTerm(5);
  seed.AddTerm(9);
  FeedbackOptions options;
  options.terms_per_round = 2;
  options.max_df_fraction = 1.0;
  auto sequence = BuildFeedbackSequence("fb", seed, tc_->index, *forward_,
                                        3, options);
  ASSERT_TRUE(sequence.ok());
  ASSERT_EQ(sequence.value().steps.size(), 4u);  // Seed + 3 rounds.
  EXPECT_EQ(sequence.value().steps[0].query.size(), 3u);
  for (size_t s = 1; s < sequence.value().steps.size(); ++s) {
    // Monotone growth, by at most terms_per_round new terms.
    size_t prev = sequence.value().steps[s - 1].query.size();
    size_t cur = sequence.value().steps[s].query.size();
    EXPECT_GE(cur, prev);
    EXPECT_LE(cur, prev + 2);
    // added_terms annotation matches the actual delta.
    EXPECT_EQ(cur - prev,
              sequence.value().steps[s].added_terms.size());
  }
}

TEST_F(FeedbackTest, SequenceRunsUnderTheExperimentHarness) {
  core::Query seed;
  seed.AddTerm(1);
  seed.AddTerm(3);
  FeedbackOptions options;
  options.max_df_fraction = 1.0;
  auto sequence = BuildFeedbackSequence("fb", seed, tc_->index, *forward_,
                                        2, options);
  ASSERT_TRUE(sequence.ok());
  ir::SequenceRunOptions run;
  run.buffer_pages = 16;
  run.buffer_aware = true;
  run.policy = buffer::PolicyKind::kRap;
  auto result = ir::RunRefinementSequence(tc_->index, sequence.value(),
                                          {}, run);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().steps.size(), 3u);
  EXPECT_GT(result.value().total_disk_reads, 0u);
}

TEST_F(FeedbackTest, DeterministicExpansion) {
  core::Query seed;
  seed.AddTerm(4);
  FeedbackOptions options;
  options.max_df_fraction = 1.0;
  auto a = BuildFeedbackSequence("fb", seed, tc_->index, *forward_, 2,
                                 options);
  auto b = BuildFeedbackSequence("fb", seed, tc_->index, *forward_, 2,
                                 options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().steps.size(), b.value().steps.size());
  for (size_t s = 0; s < a.value().steps.size(); ++s) {
    EXPECT_EQ(a.value().steps[s].query.terms(),
              b.value().steps[s].query.terms());
  }
}

}  // namespace
}  // namespace irbuf::workload
