#include "workload/contribution.h"

#include <gtest/gtest.h>

#include "../core/test_index.h"

namespace irbuf::workload {
namespace {

TEST(ContributionTest, DominantTermRanksFirst) {
  // Term 0 scores massively in the top documents; term 1 barely.
  core::TestCollection tc = core::MakeCollection(
      256, 4,
      {
          {{0, 20}, {1, 15}, {2, 10}},          // Dominant, high idf.
          {{0, 1}, {5, 1}, {6, 1}, {7, 1}},     // Weak.
          {{1, 2}, {2, 2}, {9, 1}, {10, 1}},    // Middling.
      });
  core::Query q;
  q.AddTerm(0, 3);
  q.AddTerm(1, 1);
  q.AddTerm(2, 1);
  auto ranked = RankTermsByContribution(q, tc.index, 20);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked.value().size(), 3u);
  EXPECT_EQ(ranked.value()[0].qt.term, 0u);
  EXPECT_GT(ranked.value()[0].contribution,
            ranked.value()[1].contribution);
  EXPECT_GE(ranked.value()[1].contribution,
            ranked.value()[2].contribution);
}

TEST(ContributionTest, ContributionsMatchHandComputation) {
  // One doc, one term: contribution = w_{d,t} * w_{q,t} / W_d averaged
  // over the single top doc.
  core::TestCollection tc = core::MakeCollection(4, 4, {{{0, 3}}});
  // idf = log2(4/1) = 2; W_0 = 3*2 = 6.
  core::Query q;
  q.AddTerm(0, 2);
  auto ranked = RankTermsByContribution(q, tc.index, 20);
  ASSERT_TRUE(ranked.ok());
  // w_d = 6, w_q = 4 -> partial 24; /W_d = 4.
  EXPECT_DOUBLE_EQ(ranked.value()[0].contribution, 4.0);
}

TEST(ContributionTest, PreservesQueryFrequencies) {
  core::TestCollection tc = core::MakeRandomCollection(3, 50, 5, 4);
  core::Query q;
  q.AddTerm(0, 5);
  q.AddTerm(1, 2);
  auto ranked = RankTermsByContribution(q, tc.index, 10);
  ASSERT_TRUE(ranked.ok());
  uint32_t sum_fq = 0;
  for (const RankedTerm& rt : ranked.value()) sum_fq += rt.qt.fq;
  EXPECT_EQ(sum_fq, 7u);
}

TEST(ContributionTest, DoesNotDisturbCallerBuffers) {
  core::TestCollection tc = core::MakeRandomCollection(5, 50, 5, 4);
  core::Query q;
  q.AddTerm(0);
  auto before = tc.index.disk().stats().reads;
  auto ranked = RankTermsByContribution(q, tc.index, 10);
  ASSERT_TRUE(ranked.ok());
  // It reads the disk (through its private pool) but that is all;
  // verify it read something and the call is self-contained.
  EXPECT_GT(tc.index.disk().stats().reads, before);
}

}  // namespace
}  // namespace irbuf::workload
