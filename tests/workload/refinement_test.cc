#include "workload/refinement.h"

#include <gtest/gtest.h>

#include "../core/test_index.h"

namespace irbuf::workload {
namespace {

std::vector<RankedTerm> MakeRanking(int n) {
  std::vector<RankedTerm> ranking;
  for (int i = 0; i < n; ++i) {
    RankedTerm rt;
    rt.qt.term = static_cast<TermId>(i);
    rt.qt.fq = 1 + i % 3;
    rt.contribution = static_cast<double>(n - i);
    ranking.push_back(rt);
  }
  return ranking;
}

TEST(RefinementTest, AddOnlyGrowsByGroupSize) {
  auto sequence = BuildRefinementSequenceFromRanking(
      "seq", MakeRanking(10), RefinementKind::kAddOnly, 3);
  ASSERT_EQ(sequence.steps.size(), 4u);  // ceil(10/3).
  EXPECT_EQ(sequence.steps[0].query.size(), 3u);
  EXPECT_EQ(sequence.steps[1].query.size(), 6u);
  EXPECT_EQ(sequence.steps[2].query.size(), 9u);
  EXPECT_EQ(sequence.steps[3].query.size(), 10u);  // Last group short.
  for (const auto& step : sequence.steps) {
    EXPECT_TRUE(step.dropped_terms.empty());
  }
  // Refinement 1 holds the three highest-contribution terms.
  EXPECT_TRUE(sequence.steps[0].query.Contains(0));
  EXPECT_TRUE(sequence.steps[0].query.Contains(1));
  EXPECT_TRUE(sequence.steps[0].query.Contains(2));
  EXPECT_FALSE(sequence.steps[0].query.Contains(3));
}

TEST(RefinementTest, AddOnlyQueriesAreSupersets) {
  auto sequence = BuildRefinementSequenceFromRanking(
      "seq", MakeRanking(11), RefinementKind::kAddOnly, 3);
  for (size_t s = 1; s < sequence.steps.size(); ++s) {
    for (const core::QueryTerm& qt : sequence.steps[s - 1].query.terms()) {
      EXPECT_TRUE(sequence.steps[s].query.Contains(qt.term));
    }
  }
}

TEST(RefinementTest, AddDropRemovesLowestOfPreviousGroup) {
  auto sequence = BuildRefinementSequenceFromRanking(
      "seq", MakeRanking(9), RefinementKind::kAddDrop, 3);
  ASSERT_EQ(sequence.steps.size(), 3u);
  // Step 0: terms {0,1,2}. Step 1: adds {3,4,5}, drops 2 (lowest of the
  // previous group) -> 5 terms, exactly the paper's example arithmetic.
  EXPECT_EQ(sequence.steps[0].query.size(), 3u);
  EXPECT_EQ(sequence.steps[1].query.size(), 5u);
  EXPECT_FALSE(sequence.steps[1].query.Contains(2));
  ASSERT_EQ(sequence.steps[1].dropped_terms.size(), 1u);
  EXPECT_EQ(sequence.steps[1].dropped_terms[0], 2u);
  // Step 2: adds {6,7,8}, drops 5 -> 7 terms.
  EXPECT_EQ(sequence.steps[2].query.size(), 7u);
  EXPECT_FALSE(sequence.steps[2].query.Contains(5));
  EXPECT_FALSE(sequence.steps[2].query.Contains(2));  // Still gone.
}

TEST(RefinementTest, QueryFrequenciesCarriedThrough) {
  auto ranking = MakeRanking(6);
  auto sequence = BuildRefinementSequenceFromRanking(
      "seq", ranking, RefinementKind::kAddOnly, 3);
  for (const RankedTerm& rt : ranking) {
    EXPECT_EQ(sequence.steps.back().query.FrequencyOf(rt.qt.term),
              rt.qt.fq);
  }
}

TEST(RefinementTest, GroupSizeOneAndOversized) {
  auto tiny = BuildRefinementSequenceFromRanking(
      "seq", MakeRanking(3), RefinementKind::kAddOnly, 1);
  EXPECT_EQ(tiny.steps.size(), 3u);
  auto one_shot = BuildRefinementSequenceFromRanking(
      "seq", MakeRanking(3), RefinementKind::kAddOnly, 10);
  EXPECT_EQ(one_shot.steps.size(), 1u);
  auto zero_guard = BuildRefinementSequenceFromRanking(
      "seq", MakeRanking(2), RefinementKind::kAddOnly, 0);
  EXPECT_EQ(zero_guard.steps.size(), 2u);
}

TEST(RefinementTest, CollapseAllButLast) {
  auto sequence = BuildRefinementSequenceFromRanking(
      "seq", MakeRanking(12), RefinementKind::kAddOnly, 3);
  ASSERT_EQ(sequence.steps.size(), 4u);
  auto collapsed = CollapseAllButLast(sequence);
  ASSERT_EQ(collapsed.steps.size(), 2u);
  // First collapsed step = state before the last refinement (9 terms).
  EXPECT_EQ(collapsed.steps[0].query.size(), 9u);
  EXPECT_EQ(collapsed.steps[1].query.size(), 12u);
}

TEST(RefinementTest, CollapseDegenerateSequences) {
  auto one = BuildRefinementSequenceFromRanking(
      "seq", MakeRanking(2), RefinementKind::kAddOnly, 3);
  ASSERT_EQ(one.steps.size(), 1u);
  auto collapsed = CollapseAllButLast(one);
  EXPECT_EQ(collapsed.steps.size(), 1u);
}

TEST(RefinementTest, EndToEndFromIndex) {
  core::TestCollection tc = core::MakeRandomCollection(21, 80, 9, 4);
  core::Query q;
  for (TermId t = 0; t < 9; ++t) q.AddTerm(t);
  auto sequence = BuildRefinementSequence("topic", q, tc.index,
                                          RefinementKind::kAddDrop);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence.value().steps.size(), 3u);
  EXPECT_EQ(sequence.value().ranking.size(), 9u);
  // Ranking is sorted by contribution descending.
  for (size_t i = 1; i < sequence.value().ranking.size(); ++i) {
    EXPECT_GE(sequence.value().ranking[i - 1].contribution,
              sequence.value().ranking[i].contribution);
  }
}

TEST(RefinementTest, KindNames) {
  EXPECT_STREQ(RefinementKindName(RefinementKind::kAddOnly), "ADD-ONLY");
  EXPECT_STREQ(RefinementKindName(RefinementKind::kAddDrop), "ADD-DROP");
}

}  // namespace
}  // namespace irbuf::workload
