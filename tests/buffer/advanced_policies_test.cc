#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "buffer/clock_policy.h"
#include "buffer/fifo_policy.h"
#include "buffer/lru_k_policy.h"
#include "buffer/policy_factory.h"
#include "buffer/two_q_policy.h"
#include "test_disk.h"

namespace irbuf::buffer {
namespace {

TEST(FifoPolicyTest, EvictsOldestInsertion) {
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 3, std::make_unique<FifoPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Hit: FIFO unaffected.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 3}).ok());  // Evicts 0 anyway.
  EXPECT_FALSE(bm.Contains(PageId{0, 0}));
  EXPECT_TRUE(bm.Contains(PageId{0, 1}));
}

TEST(ClockPolicyTest, SecondChanceForReferencedPages) {
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 3, std::make_unique<ClockPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  // All reference bits set: the sweep clears them and evicts frame 0.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 3}).ok());
  EXPECT_FALSE(bm.Contains(PageId{0, 0}));

  // Re-reference (0,1): its bit is set again, so the next victim is (0,2).
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  EXPECT_TRUE(bm.Contains(PageId{0, 1}));
  EXPECT_FALSE(bm.Contains(PageId{0, 2}));
}

TEST(LruKPolicyTest, SingleReferencePagesEvictedBeforeTwice) {
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 3, std::make_unique<LruKPolicy>(2));
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Page 0 has 2 refs.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());  // Page 2 has 2 refs.
  // Page 1 has a single reference -> infinite K-distance -> victim.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 3}).ok());
  EXPECT_FALSE(bm.Contains(PageId{0, 1}));
  EXPECT_TRUE(bm.Contains(PageId{0, 0}));
  EXPECT_TRUE(bm.Contains(PageId{0, 2}));
}

TEST(LruKPolicyTest, HistorySurvivesEviction) {
  // LRU-K retains reference history for evicted pages; a page referenced
  // twice long ago still beats a once-referenced newcomer.
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 1, std::make_unique<LruKPolicy>(2));
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());  // Evicts 0; history kept.
  // Re-fetch page 0: it has K refs in history, so when page 2 arrives,
  // page 0 wins... but pool size 1 forces eviction regardless; this test
  // just exercises the retained-history code path end to end.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  EXPECT_TRUE(bm.Contains(PageId{0, 2}));
  EXPECT_EQ(bm.stats().evictions, 3u);
}

TEST(LruKPolicyTest, KEqualsOneBehavesLikeLru) {
  auto disk = MakeTestDisk({4});
  BufferManager lruk(disk.get(), 3, std::make_unique<LruKPolicy>(1));
  ASSERT_TRUE(lruk.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(lruk.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(lruk.FetchPage(PageId{0, 2}).ok());
  ASSERT_TRUE(lruk.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(lruk.FetchPage(PageId{0, 3}).ok());  // LRU would evict 1.
  EXPECT_FALSE(lruk.Contains(PageId{0, 1}));
}


TEST(LruKPolicyTest, HistoryStaysBounded) {
  // The retained ghost history must not grow without bound over a long
  // session: churn far more distinct pages than the trim limit and check
  // the policy still behaves (indirectly: no unbounded state, victims
  // remain valid). 20k distinct pages through a 4-frame pool.
  auto disk = std::make_unique<storage::SimulatedDisk>();
  for (uint32_t p = 0; p < 20000; ++p) {
    ASSERT_TRUE(disk->AppendPage(0, {{p, 1}}, 1.0).ok());
  }
  BufferManager bm(disk.get(), 4, std::make_unique<LruKPolicy>(2));
  for (uint32_t p = 0; p < 20000; ++p) {
    ASSERT_TRUE(bm.FetchPage(PageId{0, p}).ok());
  }
  // Every fetch was a miss (sequential scan), pool stayed consistent.
  EXPECT_EQ(bm.stats().misses, 20000u);
  EXPECT_EQ(bm.ResidentPageIds().size(), 4u);
}

TEST(TwoQPolicyTest, ColdScanDoesNotFlushHotPages) {
  // The signature 2Q property: a page re-referenced after leaving A1in
  // enters Am and survives a long cold scan. Pool of 8: Kin = 2, Kout = 4.
  auto disk = MakeTestDisk({16});
  BufferManager bm(disk.get(), 8, std::make_unique<TwoQPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  for (uint32_t p = 1; p <= 8; ++p) {  // Fill the pool and overflow once.
    ASSERT_TRUE(bm.FetchPage(PageId{0, p}).ok());
  }
  ASSERT_FALSE(bm.Contains(PageId{0, 0}));       // Aged out of A1in.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Ghost hit -> Am.
  // Cold scan over never-re-referenced pages keeps draining A1in only.
  for (uint32_t p = 9; p < 13; ++p) {
    ASSERT_TRUE(bm.FetchPage(PageId{0, p}).ok());
  }
  EXPECT_TRUE(bm.Contains(PageId{0, 0}));
}

TEST(TwoQPolicyTest, HitsInsideA1InDoNotPromote) {
  auto disk = MakeTestDisk({16});
  BufferManager bm(disk.get(), 8, std::make_unique<TwoQPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Hit while in A1in.
  // Push enough new pages through A1in to age page 0 out regardless.
  for (uint32_t p = 1; p <= 8; ++p) {
    ASSERT_TRUE(bm.FetchPage(PageId{0, p}).ok());
  }
  EXPECT_FALSE(bm.Contains(PageId{0, 0}));
}

TEST(PolicyFactoryTest, MakesEveryKind) {
  for (PolicyKind kind : AllPolicyKinds()) {
    auto policy = MakePolicy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_STREQ(policy->name(), PolicyKindName(kind));
  }
}

TEST(PolicyFactoryTest, ParsesNamesCaseInsensitively) {
  EXPECT_EQ(ParsePolicyKind("lru").value(), PolicyKind::kLru);
  EXPECT_EQ(ParsePolicyKind("MRU").value(), PolicyKind::kMru);
  EXPECT_EQ(ParsePolicyKind("Rap").value(), PolicyKind::kRap);
  EXPECT_EQ(ParsePolicyKind("lru-2").value(), PolicyKind::kLruK);
  EXPECT_EQ(ParsePolicyKind("2q").value(), PolicyKind::kTwoQ);
  EXPECT_EQ(ParsePolicyKind("clock").value(), PolicyKind::kClock);
  EXPECT_EQ(ParsePolicyKind("fifo").value(), PolicyKind::kFifo);
  EXPECT_FALSE(ParsePolicyKind("arc").ok());
}

TEST(AllPoliciesTest, SurviveChurnAndFlush) {
  // Property-style stress: every policy must keep the pool consistent
  // under a mixed reference string with interleaved flushes.
  for (PolicyKind kind : AllPolicyKinds()) {
    auto disk = MakeTestDisk({7, 5, 3});
    BufferManager bm(disk.get(), 4, MakePolicy(kind));
    QueryContext ctx;
    ctx.SetWeight(0, 1.0);
    ctx.SetWeight(1, 2.0);
    bm.SetQueryContext(ctx);
    uint32_t seq = 0;
    for (int step = 0; step < 500; ++step) {
      TermId term = seq % 3;
      uint32_t pages = disk->NumPages(term);
      PageId id{term, (seq * 7 + step) % pages};
      ASSERT_TRUE(bm.FetchPage(id).ok())
          << PolicyKindName(kind) << " step " << step;
      ASSERT_LE(bm.ResidentPageIds().size(), 4u);
      if (step % 97 == 0) bm.Flush();
      ++seq;
    }
    // Residency counters must equal the actual resident census.
    uint32_t census[3] = {0, 0, 0};
    for (const PageId& id : bm.ResidentPageIds()) ++census[id.term];
    for (TermId t = 0; t < 3; ++t) {
      EXPECT_EQ(bm.ResidentPages(t), census[t]) << PolicyKindName(kind);
    }
  }
}

}  // namespace
}  // namespace irbuf::buffer
