#include "buffer/buffer_manager.h"

#include <gtest/gtest.h>

#include <vector>

#include "buffer/lru_policy.h"
#include "buffer/policy_factory.h"
#include "obs/query_tracer.h"
#include "test_disk.h"

namespace irbuf::buffer {
namespace {

TEST(BufferManagerTest, HitAndMissAccounting) {
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());

  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Miss.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Hit.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());  // Miss.
  EXPECT_EQ(bm.stats().fetches, 3u);
  EXPECT_EQ(bm.stats().hits, 1u);
  EXPECT_EQ(bm.stats().misses, 2u);
  EXPECT_EQ(bm.stats().evictions, 0u);
  EXPECT_DOUBLE_EQ(bm.stats().HitRate(), 1.0 / 3.0);
  // Misses equal disk reads.
  EXPECT_EQ(disk->stats().reads, 2u);
}

TEST(BufferManagerTest, EvictsWhenFull) {
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());  // Evicts page 0 (LRU).
  EXPECT_EQ(bm.stats().evictions, 1u);
  EXPECT_FALSE(bm.Contains(PageId{0, 0}));
  EXPECT_TRUE(bm.Contains(PageId{0, 1}));
  EXPECT_TRUE(bm.Contains(PageId{0, 2}));
}

TEST(BufferManagerTest, ReturnedPageContentIsCorrect) {
  auto disk = MakeTestDisk({2});
  BufferManager bm(disk.get(), 1, std::make_unique<LruPolicy>());
  auto page = bm.FetchPage(PageId{0, 1});
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value()->id, (PageId{0, 1}));
  EXPECT_EQ(page.value()->block.size(), 2u);
  EXPECT_DOUBLE_EQ(page.value()->max_weight, 99.0);
}

TEST(BufferManagerTest, ResidencyCountersTrackTerms) {
  auto disk = MakeTestDisk({3, 2});
  BufferManager bm(disk.get(), 4, std::make_unique<LruPolicy>());
  EXPECT_EQ(bm.ResidentPages(0), 0u);
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{1, 0}).ok());
  EXPECT_EQ(bm.ResidentPages(0), 2u);
  EXPECT_EQ(bm.ResidentPages(1), 1u);
  EXPECT_EQ(bm.ResidentPages(99), 0u);

  // Refetching a resident page does not change counters.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  EXPECT_EQ(bm.ResidentPages(0), 2u);

  // Filling the pool evicts term 0's LRU page (0,1 was least recent).
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{1, 1}).ok());  // Pool now full; evict.
  EXPECT_EQ(bm.ResidentPages(0) + bm.ResidentPages(1), 4u);
}

TEST(BufferManagerTest, FlushEmptiesEverything) {
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 3, std::make_unique<LruPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  bm.Flush();
  EXPECT_FALSE(bm.Contains(PageId{0, 0}));
  EXPECT_EQ(bm.ResidentPages(0), 0u);
  EXPECT_TRUE(bm.ResidentPageIds().empty());
  // Fetch after flush is a miss again.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  EXPECT_EQ(bm.stats().misses, 3u);
}

TEST(BufferManagerTest, CapacityZeroClampsToOne) {
  auto disk = MakeTestDisk({2});
  BufferManager bm(disk.get(), 0, std::make_unique<LruPolicy>());
  EXPECT_EQ(bm.capacity(), 1u);
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  EXPECT_EQ(bm.stats().evictions, 1u);
}

TEST(BufferManagerTest, MissingPagePropagatesError) {
  auto disk = MakeTestDisk({1});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());
  auto result = bm.FetchPage(PageId{5, 0});
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(BufferManagerTest, ResidentPageIdsMatchesContains) {
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 8, std::make_unique<LruPolicy>());
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(bm.FetchPage(PageId{0, p}).ok());
  }
  auto ids = bm.ResidentPageIds();
  EXPECT_EQ(ids.size(), 4u);
  for (const PageId& id : ids) EXPECT_TRUE(bm.Contains(id));
}

TEST(BufferManagerTest, PoolLargerThanDataNeverEvicts) {
  auto disk = MakeTestDisk({5});
  BufferManager bm(disk.get(), 100, std::make_unique<LruPolicy>());
  for (int round = 0; round < 3; ++round) {
    for (uint32_t p = 0; p < 5; ++p) {
      ASSERT_TRUE(bm.FetchPage(PageId{0, p}).ok());
    }
  }
  EXPECT_EQ(bm.stats().misses, 5u);
  EXPECT_EQ(bm.stats().hits, 10u);
  EXPECT_EQ(bm.stats().evictions, 0u);
}

TEST(BufferManagerTest, ResetStatsLeavesDiskCountersAlone) {
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_EQ(bm.stats().fetches, 3u);
  ASSERT_EQ(disk->stats().reads, 2u);

  // Pool counters and disk counters are independent: resetting one
  // never touches the other, in either direction.
  bm.ResetStats();
  EXPECT_EQ(bm.stats().fetches, 0u);
  EXPECT_EQ(bm.stats().hits, 0u);
  EXPECT_EQ(bm.stats().misses, 0u);
  EXPECT_EQ(bm.stats().evictions, 0u);
  EXPECT_EQ(disk->stats().reads, 2u);

  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());  // Hit: no disk read.
  disk->ResetStats();
  EXPECT_EQ(disk->stats().reads, 0u);
  EXPECT_EQ(bm.stats().fetches, 1u);
  EXPECT_EQ(bm.stats().hits, 1u);
}

TEST(BufferManagerTest, EvictionCallbackSeesVictimMetadata) {
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());
  QueryContext context;
  context.SetWeight(0, 2.0);
  bm.SetQueryContext(std::move(context));

  std::vector<EvictionEvent> events;
  bm.SetEvictionCallback(
      [&](const EvictionEvent& ev) { events.push_back(ev); });

  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());  // Evicts (0,0), LRU.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].page, (PageId{0, 0}));
  // The RAP-style replacement value is max_weight * w_{q,t}.
  EXPECT_DOUBLE_EQ(events[0].value, events[0].max_weight * 2.0);
  // (0,0) entered at fetch 1; the eviction happens during fetch 3.
  EXPECT_EQ(events[0].age_fetches, 2u);

  // Clearing the callback stops delivery but not eviction itself.
  bm.SetEvictionCallback({});
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Evicts again.
  EXPECT_EQ(bm.stats().evictions, 2u);
  EXPECT_EQ(events.size(), 1u);
}

TEST(BufferManagerTest, TracerRecordsFetchesAndEvictions) {
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());
  obs::QueryTracer tracer;
  bm.SetTracer(&tracer);
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // miss
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // hit
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());  // miss
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());  // miss + evict

  EXPECT_EQ(tracer.CountKind(obs::TraceEventKind::kFetch), 4u);
  EXPECT_EQ(tracer.CountKind(obs::TraceEventKind::kEvict), 1u);
  size_t hits = 0;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.kind == obs::TraceEventKind::kFetch && e.hit) ++hits;
  }
  EXPECT_EQ(hits, 1u);

  // Uninstalling stops recording.
  bm.SetTracer(nullptr);
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  EXPECT_EQ(tracer.CountKind(obs::TraceEventKind::kFetch), 4u);
}

TEST(BufferManagerTest, FetchPagePointerIsOnlyValidUntilNextFetch) {
  // The documented lifetime hazard: with one frame, fetching a second
  // page recycles the first page's frame IN PLACE, so the earlier
  // pointer now shows the new page. Callers that hold a page across
  // another fetch must use FetchPinned.
  auto disk = MakeTestDisk({2});
  BufferManager bm(disk.get(), 1, std::make_unique<LruPolicy>());
  auto first = bm.FetchPage(PageId{0, 0});
  ASSERT_TRUE(first.ok());
  const storage::Page* raw = first.value();
  EXPECT_EQ(raw->id.page_no, 0u);
  auto second = bm.FetchPage(PageId{0, 1});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), raw);  // Same frame, recycled in place...
  EXPECT_EQ(raw->id.page_no, 1u);  // ...so the old pointer's content moved.
}

TEST(BufferManagerTest, FetchPinnedProtectsThePageFromEviction) {
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());
  auto pinned = bm.FetchPinned(PageId{0, 0});
  ASSERT_TRUE(pinned.ok());
  EXPECT_TRUE(pinned.value().was_miss());
  EXPECT_EQ(bm.PinCount(PageId{0, 0}), 1u);
  const storage::Page* raw = pinned.value().get();

  // Churn through the rest of the list; page 0 is LRU every time but
  // must never be the victim while pinned.
  for (int round = 0; round < 2; ++round) {
    for (uint32_t p = 1; p < 4; ++p) {
      ASSERT_TRUE(bm.FetchPage(PageId{0, p}).ok());
    }
  }
  EXPECT_TRUE(bm.Contains(PageId{0, 0}));
  EXPECT_EQ(pinned.value().get(), raw);
  EXPECT_EQ(raw->id.page_no, 0u);

  // The guard's destructor releases the pin; then page 0 is evictable.
  pinned.value().Release();
  EXPECT_EQ(bm.PinCount(PageId{0, 0}), 0u);
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 3}).ok());
  EXPECT_FALSE(bm.Contains(PageId{0, 0}));
}

TEST(BufferManagerTest, AllFramesPinnedReportsResourceExhausted) {
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());
  auto a = bm.FetchPinned(PageId{0, 0});
  auto b = bm.FetchPinned(PageId{0, 1});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = bm.FetchPinned(PageId{0, 2});
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // Releasing a pin makes the fetch succeed again.
  b.value().Release();
  EXPECT_TRUE(bm.FetchPinned(PageId{0, 2}).ok());
}

TEST(BufferManagerTest, FlushDiscardsPins) {
  auto disk = MakeTestDisk({2});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());
  auto pinned = bm.FetchPinned(PageId{0, 0});
  ASSERT_TRUE(pinned.ok());
  bm.Flush();
  EXPECT_EQ(bm.PinCount(PageId{0, 0}), 0u);
  // The stale guard's release must not underflow the recycled frame's
  // pin count or block future pins.
  pinned.value().Release();
  auto again = bm.FetchPinned(PageId{0, 1});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(bm.PinCount(PageId{0, 1}), 1u);
}

}  // namespace
}  // namespace irbuf::buffer
