#include "fault/backoff.h"

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "fault/fault_injector.h"
#include "fault/resilient.h"
#include "test_disk.h"

namespace irbuf::buffer {
namespace {

using fault::BackoffPolicy;
using fault::ExponentialBackoff;

TEST(BackoffTest, DeterministicFromSeed) {
  BackoffPolicy policy;
  ExponentialBackoff a(policy, 42);
  ExponentialBackoff b(policy, 42);
  while (a.CanRetry()) {
    ASSERT_TRUE(b.CanRetry());
    EXPECT_EQ(a.NextDelayUs(), b.NextDelayUs());
  }
  EXPECT_FALSE(b.CanRetry());
}

TEST(BackoffTest, ZeroJitterGivesExactSchedule) {
  BackoffPolicy policy;
  policy.max_retries = 4;
  policy.initial_delay_us = 100;
  policy.multiplier = 2.0;
  policy.max_delay_us = 10000;
  policy.jitter = 0.0;
  ExponentialBackoff backoff(policy, 7);
  EXPECT_EQ(backoff.NextDelayUs(), 100u);
  EXPECT_EQ(backoff.NextDelayUs(), 200u);
  EXPECT_EQ(backoff.NextDelayUs(), 400u);
  EXPECT_EQ(backoff.NextDelayUs(), 800u);
  EXPECT_FALSE(backoff.CanRetry());
}

TEST(BackoffTest, JitteredDelayStaysInsideTheBand) {
  BackoffPolicy policy;
  policy.max_retries = 3;
  policy.initial_delay_us = 1000;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ExponentialBackoff backoff(policy, seed);
    uint64_t nominal = policy.initial_delay_us;
    while (backoff.CanRetry()) {
      const uint64_t delay = backoff.NextDelayUs();
      EXPECT_GE(delay, nominal / 2) << "seed " << seed;
      EXPECT_LE(delay, nominal) << "seed " << seed;
      nominal *= 2;
    }
  }
}

TEST(BackoffTest, DelayCapsAtMaximum) {
  BackoffPolicy policy;
  policy.max_retries = 6;
  policy.initial_delay_us = 100;
  policy.multiplier = 10.0;
  policy.max_delay_us = 500;
  policy.jitter = 0.0;
  ExponentialBackoff backoff(policy, 3);
  EXPECT_EQ(backoff.NextDelayUs(), 100u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(backoff.NextDelayUs(), 500u);
}

// ---- The BufferManager's miss-path retry loop. ----

fault::ResilienceOptions FastResilience() {
  fault::ResilienceOptions options;
  options.enabled = true;
  options.breaker_enabled = false;
  options.sleep_on_backoff = false;  // Schedules drawn, not slept.
  return options;
}

TEST(BufferRetryTest, TransientErrorsAreRetriedToSuccess) {
  auto disk = MakeTestDisk({4});
  fault::FaultSpec spec;
  fault::FaultRule rule{fault::FaultKind::kTransientRead, 1.0};
  rule.max_faults = 2;  // Fails exactly twice, then the device is clean.
  spec.rules.push_back(rule);
  fault::FaultInjector injector(spec);
  disk->SetFaultInjector(&injector);

  BufferManager pool(disk.get(), 2, MakePolicy(PolicyKind::kLru));
  pool.SetResilience(FastResilience());
  auto page = pool.FetchPinned(PageId{0, 0});
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page.value()->id, (PageId{0, 0}));
  ASSERT_NE(pool.resilience(), nullptr);
  EXPECT_EQ(pool.resilience()->total_retries(), 2u);
  EXPECT_EQ(pool.resilience()->retries_exhausted(), 0u);
  // One successful fetch: the stats see a single miss, not the retries.
  EXPECT_EQ(pool.stats().fetches, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferRetryTest, ExhaustedRetriesSurfaceTheError) {
  auto disk = MakeTestDisk({4});
  fault::FaultSpec spec;
  spec.rules.push_back({fault::FaultKind::kTransientRead, 1.0});
  fault::FaultInjector injector(spec);
  disk->SetFaultInjector(&injector);

  BufferManager pool(disk.get(), 2, MakePolicy(PolicyKind::kLru));
  fault::ResilienceOptions options = FastResilience();
  options.backoff.max_retries = 3;
  pool.SetResilience(options);
  auto page = pool.FetchPinned(PageId{0, 0});
  EXPECT_EQ(page.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(pool.resilience()->total_retries(), 3u);
  EXPECT_EQ(pool.resilience()->retries_exhausted(), 1u);
}

TEST(BufferRetryTest, FailedReadReturnsTheReservedFrame) {
  // Capacity 1: if a failed read leaked its reserved frame, the next
  // fetch would have no frame left. It must not cost pool capacity.
  auto disk = MakeTestDisk({4});
  fault::FaultSpec spec;
  fault::FaultRule rule{fault::FaultKind::kTransientRead, 1.0};
  rule.page_lo = 0;
  rule.page_hi = 0;
  spec.rules.push_back(rule);
  fault::FaultInjector injector(spec);
  disk->SetFaultInjector(&injector);

  BufferManager pool(disk.get(), 1, MakePolicy(PolicyKind::kLru));
  pool.SetResilience(FastResilience());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pool.FetchPinned(PageId{0, 0}).status().code(),
              StatusCode::kUnavailable);
  }
  // Pages outside the faulted range still fit in the (single) frame.
  {
    auto ok_page = pool.FetchPinned(PageId{0, 1});
    ASSERT_TRUE(ok_page.ok()) << ok_page.status().ToString();
    EXPECT_EQ(ok_page.value()->id, (PageId{0, 1}));
  }
  // And once the device heals, so does the faulted page.
  disk->SetFaultInjector(nullptr);
  auto healed = pool.FetchPinned(PageId{0, 0});
  ASSERT_TRUE(healed.ok());
}

TEST(BufferRetryTest, PermanentBadPageIsNotRetried) {
  auto disk = MakeTestDisk({4});
  fault::FaultSpec spec;
  spec.rules.push_back({fault::FaultKind::kPermanentBadPage, 1.0});
  fault::FaultInjector injector(spec);
  disk->SetFaultInjector(&injector);

  BufferManager pool(disk.get(), 2, MakePolicy(PolicyKind::kLru));
  pool.SetResilience(FastResilience());
  auto page = pool.FetchPinned(PageId{0, 0});
  EXPECT_EQ(page.status().code(), StatusCode::kIOError);
  // Bad media fails on the first attempt; burning the backoff schedule
  // on it would only slow the degraded query down.
  EXPECT_EQ(pool.resilience()->total_retries(), 0u);
}

TEST(BufferRetryTest, DisabledResilienceIsPassThrough) {
  auto disk = MakeTestDisk({4});
  fault::FaultSpec spec;
  spec.rules.push_back({fault::FaultKind::kTransientRead, 1.0});
  fault::FaultInjector injector(spec);
  disk->SetFaultInjector(&injector);

  BufferManager pool(disk.get(), 2, MakePolicy(PolicyKind::kLru));
  // No SetResilience: the transient error surfaces unretried.
  auto page = pool.FetchPinned(PageId{0, 0});
  EXPECT_EQ(page.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(pool.resilience(), nullptr);
}

}  // namespace
}  // namespace irbuf::buffer
