#include "buffer/rap_policy.h"

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "test_disk.h"

namespace irbuf::buffer {
namespace {

QueryContext ContextFor(std::initializer_list<std::pair<TermId, double>> ws) {
  QueryContext ctx;
  for (auto& [term, w] : ws) ctx.SetWeight(term, w);
  return ctx;
}

TEST(RapPolicyTest, EvictsLowestReplacementValue) {
  // Term 0 pages have stored weights 100, 99, ...; term 1: 200, 199, ...
  auto disk = MakeTestDisk({3, 3});
  BufferManager bm(disk.get(), 3, std::make_unique<RapPolicy>());
  bm.SetQueryContext(ContextFor({{0, 1.0}, {1, 1.0}}));

  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Value 100.
  ASSERT_TRUE(bm.FetchPage(PageId{1, 0}).ok());  // Value 200.
  ASSERT_TRUE(bm.FetchPage(PageId{1, 1}).ok());  // Value 199.
  ASSERT_TRUE(bm.FetchPage(PageId{1, 2}).ok());  // Evicts (0,0): lowest.
  EXPECT_FALSE(bm.Contains(PageId{0, 0}));
  EXPECT_TRUE(bm.Contains(PageId{1, 0}));
}

TEST(RapPolicyTest, QueryWeightScalesPageValue) {
  auto disk = MakeTestDisk({3, 3});
  BufferManager bm(disk.get(), 3, std::make_unique<RapPolicy>());
  // Term 0 is weighted much higher than term 1, inverting the raw stored
  // weights (Equation 6: value = max-weight * w_{q,t}).
  bm.SetQueryContext(ContextFor({{0, 10.0}, {1, 1.0}}));
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Value 1000.
  ASSERT_TRUE(bm.FetchPage(PageId{1, 0}).ok());  // Value 200.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());  // Value 990.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());  // Evicts (1,0).
  EXPECT_FALSE(bm.Contains(PageId{1, 0}));
}

TEST(RapPolicyTest, DroppedTermPagesEvictedFirst) {
  // Section 3.3 example 2: pages of terms removed during refinement have
  // w_{q,t} = 0 and go first, even if their stored weights are huge.
  auto disk = MakeTestDisk({3, 3});
  BufferManager bm(disk.get(), 4, std::make_unique<RapPolicy>());
  bm.SetQueryContext(ContextFor({{0, 1.0}, {1, 1.0}}));
  ASSERT_TRUE(bm.FetchPage(PageId{1, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{1, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());

  // Refined query: term 1 dropped.
  bm.SetQueryContext(ContextFor({{0, 1.0}}));
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());  // Needs an eviction.
  // A term-1 page must have gone, not a term-0 page.
  EXPECT_TRUE(bm.Contains(PageId{0, 0}));
  EXPECT_TRUE(bm.Contains(PageId{0, 1}));
  EXPECT_EQ(bm.ResidentPages(1), 1u);
}

TEST(RapPolicyTest, TailEvictedBeforeHead) {
  // Among equal (zero) values, the tail of the list goes before the head.
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 2, std::make_unique<RapPolicy>());
  bm.SetQueryContext(ContextFor({{0, 1.0}}));
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  // Term 0 dropped: both resident pages now value 0.
  bm.SetQueryContext(QueryContext{});
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  EXPECT_TRUE(bm.Contains(PageId{0, 0}));   // Head kept.
  EXPECT_FALSE(bm.Contains(PageId{0, 1}));  // Tail evicted.
}

TEST(RapPolicyTest, FirstPagesSurviveWithinOneTerm) {
  // Section 3.3 example 1: within one queried term, the first page (the
  // highest stored weight) should be the one retained.
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 2, std::make_unique<RapPolicy>());
  bm.SetQueryContext(ContextFor({{0, 2.0}}));
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());  // Evicts page 1.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 3}).ok());  // Evicts page 2.
  EXPECT_TRUE(bm.Contains(PageId{0, 0}));
  EXPECT_TRUE(bm.Contains(PageId{0, 3}));
}

TEST(RapPolicyTest, ValueOfReflectsContext) {
  auto disk = MakeTestDisk({1});
  auto policy = std::make_unique<RapPolicy>();
  RapPolicy* rap = policy.get();
  BufferManager bm(disk.get(), 1, std::move(policy));
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  // No context yet: value is 0.
  EXPECT_DOUBLE_EQ(rap->ValueOf(0), 0.0);
  bm.SetQueryContext(ContextFor({{0, 3.0}}));
  EXPECT_DOUBLE_EQ(rap->ValueOf(0), 300.0);
}

TEST(QueryContextTest, MergeMaxKeepsHighestWeight) {
  QueryContext a = ContextFor({{1, 2.0}, {2, 5.0}});
  QueryContext b = ContextFor({{2, 3.0}, {3, 7.0}});
  a.MergeMax(b);
  EXPECT_DOUBLE_EQ(a.WeightOf(1), 2.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(2), 5.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(3), 7.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(9), 0.0);
}

}  // namespace
}  // namespace irbuf::buffer
