// Shared helper for the buffer tests: builds a tiny simulated disk with a
// known layout. Term t gets `pages_per_term[t]` pages; page p of term t
// stores max_weight = 100*(t+1) - p so that earlier pages always have the
// higher stored weight (as frequency-sorted lists do).

#ifndef IRBUF_TESTS_BUFFER_TEST_DISK_H_
#define IRBUF_TESTS_BUFFER_TEST_DISK_H_

#include <memory>
#include <vector>

#include "storage/simulated_disk.h"

namespace irbuf::buffer {

inline std::unique_ptr<storage::SimulatedDisk> MakeTestDisk(
    const std::vector<uint32_t>& pages_per_term) {
  auto disk = std::make_unique<storage::SimulatedDisk>();
  for (TermId t = 0; t < pages_per_term.size(); ++t) {
    for (uint32_t p = 0; p < pages_per_term[t]; ++p) {
      std::vector<Posting> postings = {
          {p * 2, 5}, {p * 2 + 1, 1}};  // Arbitrary valid content.
      double max_weight = 100.0 * (t + 1) - p;
      auto status = disk->AppendPage(t, postings, max_weight);
      if (!status.ok()) std::abort();
    }
  }
  return disk;
}

}  // namespace irbuf::buffer

#endif  // IRBUF_TESTS_BUFFER_TEST_DISK_H_
