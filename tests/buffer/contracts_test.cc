// Death tests for the runtime contract checks (buffer/contracts.h,
// util/dcheck.h): each check must actually abort on a violation, and the
// checks must be live on the real pin/eviction/stats paths. These are
// the runtime mirror of the compile-time thread-safety annotations — see
// the "Static analysis" section of DESIGN.md.

#include "buffer/contracts.h"

#include <gtest/gtest.h>

#include <memory>

#include "buffer/buffer_pool.h"
#include "serve/concurrent_buffer_pool.h"
#include "test_disk.h"
#include "util/dcheck.h"

namespace irbuf::buffer {
namespace {

#if defined(IRBUF_ENABLE_DCHECKS)

class ContractsDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The serving pool spawns no threads here, but the default "fast"
    // death-test style is documented unsafe once any thread exists.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(ContractsDeathTest, DcheckAbortsOnFalseCondition) {
  EXPECT_DEATH(IRBUF_DCHECK(1 + 1 == 3, "arithmetic broke"),
               "arithmetic broke");
}

TEST_F(ContractsDeathTest, DcheckPassesOnTrueCondition) {
  IRBUF_DCHECK(1 + 1 == 2, "never printed");  // Must not abort.
}

TEST_F(ContractsDeathTest, PinReleaseCheckFiresOnUnderflow) {
  EXPECT_DEATH(contracts::CheckPinRelease(0), "no outstanding pins");
  contracts::CheckPinRelease(1);  // A held pin releases fine.
}

TEST_F(ContractsDeathTest, VictimCheckFiresOnPinnedFrame) {
  EXPECT_DEATH(contracts::CheckVictimEvictable(/*occupied=*/true, /*pins=*/2),
               "pinned frame");
  EXPECT_DEATH(contracts::CheckVictimEvictable(/*occupied=*/false, /*pins=*/0),
               "unoccupied frame");
  contracts::CheckVictimEvictable(true, 0);  // A legal victim passes.
}

TEST_F(ContractsDeathTest, StatsConservationCheckFiresOnImbalance) {
  EXPECT_DEATH(contracts::CheckStatsConservation(10, 4, 5),
               "fetches != hits \\+ misses");
  contracts::CheckStatsConservation(10, 4, 6);
}

TEST_F(ContractsDeathTest, DiskReadConservationCheckFiresOnImbalance) {
  // An unaccounted device read (the duplicate-read bug class)...
  EXPECT_DEATH(contracts::CheckDiskReadConservation(/*misses=*/5,
                                                    /*prefetch_reads=*/2,
                                                    /*device_reads=*/8),
               "device-read conservation violated");
  // ...and a read counted but never issued both trip it.
  EXPECT_DEATH(contracts::CheckDiskReadConservation(5, 2, 6),
               "device-read conservation violated");
  contracts::CheckDiskReadConservation(5, 2, 7);  // Balanced passes.
}

// The checks are wired into the real pin lifecycle: releasing more
// guards than pins aborts inside ConcurrentBufferPool::Unpin.
TEST_F(ContractsDeathTest, DoubleReleaseOnServingPoolDies) {
  EXPECT_DEATH(
      {
        auto disk = MakeTestDisk({2});
        serve::ConcurrentPoolOptions options;
        options.capacity = 2;
        serve::ConcurrentBufferPool pool(disk.get(), options);
        auto pinned = pool.FetchPinned(PageId{0, 0});
        ASSERT_TRUE(pinned.ok());
        // A guard forged on the same frame without its own pin: the
        // second release underflows the count.
        PinnedPage forged(&pool, pinned.value().get(),
                          pinned.value().frame(), /*was_miss=*/false);
        forged.Release();          // pins 1 -> 0.
        pinned.value().Release();  // pins 0 -> contract violation.
      },
      "no outstanding pins");
}

// Destroying the serving pool with a live guard violates the quiescence
// contract.
TEST_F(ContractsDeathTest, PoolDestructionWithLivePinDies) {
  EXPECT_DEATH(
      {
        auto disk = MakeTestDisk({2});
        serve::ConcurrentPoolOptions options;
        options.capacity = 2;
        auto pool =
            std::make_unique<serve::ConcurrentBufferPool>(disk.get(), options);
        auto pinned = pool->FetchPinned(PageId{0, 0});
        ASSERT_TRUE(pinned.ok());
        pool.reset();  // Outstanding pin -> contract violation.
        pinned.value().Release();
      },
      "outstanding pins");
}

#else

TEST(ContractsDeathTest, SkippedWithoutDchecks) {
  GTEST_SKIP() << "built with IRBUF_DCHECKS=OFF";
}

#endif  // IRBUF_ENABLE_DCHECKS

}  // namespace
}  // namespace irbuf::buffer
