#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "buffer/lru_policy.h"
#include "buffer/mru_policy.h"
#include "test_disk.h"

namespace irbuf::buffer {
namespace {

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 3, std::make_unique<LruPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());  // Refresh page 0.
  ASSERT_TRUE(bm.FetchPage(PageId{0, 3}).ok());  // Evict page 1.
  EXPECT_TRUE(bm.Contains(PageId{0, 0}));
  EXPECT_FALSE(bm.Contains(PageId{0, 1}));
}

TEST(MruPolicyTest, EvictsMostRecentlyUsed) {
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 3, std::make_unique<MruPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 3}).ok());  // Evict page 2 (MRU).
  EXPECT_TRUE(bm.Contains(PageId{0, 0}));
  EXPECT_TRUE(bm.Contains(PageId{0, 1}));
  EXPECT_FALSE(bm.Contains(PageId{0, 2}));
}

TEST(LruPolicyTest, SequentialRescanWithTightBufferAlwaysMisses) {
  // The classic [Sto81] pathology the paper leans on: repeatedly scanning
  // N+1 pages through an N-page LRU pool yields zero hits.
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 3, std::make_unique<LruPolicy>());
  for (int round = 0; round < 5; ++round) {
    for (uint32_t p = 0; p < 4; ++p) {
      ASSERT_TRUE(bm.FetchPage(PageId{0, p}).ok());
    }
  }
  EXPECT_EQ(bm.stats().hits, 0u);
  EXPECT_EQ(bm.stats().misses, 20u);
}

TEST(MruPolicyTest, SequentialRescanWithTightBufferMostlyHits) {
  // MRU is the classic fix for repeated sequential scans [CD85]: all but
  // one resident page survive each rescan.
  auto disk = MakeTestDisk({4});
  BufferManager bm(disk.get(), 3, std::make_unique<MruPolicy>());
  for (int round = 0; round < 5; ++round) {
    for (uint32_t p = 0; p < 4; ++p) {
      ASSERT_TRUE(bm.FetchPage(PageId{0, p}).ok());
    }
  }
  // Round 1: 4 misses. Rounds 2-5: pages 0,1 always resident (2 hits)...
  EXPECT_GT(bm.stats().hits, 7u);
  EXPECT_LT(bm.stats().misses, 13u);
}

TEST(RecencyPoliciesTest, EvictionThenReinsertKeepsStateConsistent) {
  for (bool mru : {false, true}) {
    auto disk = MakeTestDisk({6});
    std::unique_ptr<ReplacementPolicy> policy;
    if (mru) {
      policy = std::make_unique<MruPolicy>();
    } else {
      policy = std::make_unique<LruPolicy>();
    }
    BufferManager bm(disk.get(), 2, std::move(policy));
    // Churn through all pages twice in both directions.
    for (int p = 0; p < 6; ++p) {
      ASSERT_TRUE(bm.FetchPage(PageId{0, static_cast<uint32_t>(p)}).ok());
    }
    for (int p = 5; p >= 0; --p) {
      ASSERT_TRUE(bm.FetchPage(PageId{0, static_cast<uint32_t>(p)}).ok());
    }
    EXPECT_EQ(bm.ResidentPageIds().size(), 2u);
  }
}

TEST(RecencyPoliciesTest, ResetAfterFlush) {
  auto disk = MakeTestDisk({3});
  BufferManager bm(disk.get(), 2, std::make_unique<LruPolicy>());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());
  bm.Flush();
  ASSERT_TRUE(bm.FetchPage(PageId{0, 2}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 0}).ok());
  ASSERT_TRUE(bm.FetchPage(PageId{0, 1}).ok());  // Evicts 2 (LRU).
  EXPECT_FALSE(bm.Contains(PageId{0, 2}));
}

}  // namespace
}  // namespace irbuf::buffer
