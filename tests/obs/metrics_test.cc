#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace irbuf::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketsAreInclusiveUpperBounds) {
  Histogram h({1.0, 4.0, 16.0});
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + implicit +inf.
  h.Observe(1.0);   // exactly on a bound -> that bucket
  h.Observe(0.0);   // first bucket
  h.Observe(4.0);   // second bucket (inclusive)
  h.Observe(4.5);   // third bucket
  h.Observe(100.0); // +inf bucket
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 109.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 109.5 / 5.0);
}

TEST(HistogramTest, ResetZeroesButKeepsLayout) {
  Histogram h({2.0});
  h.Observe(1.0);
  h.Observe(3.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  ASSERT_EQ(h.bucket_counts().size(), 2u);
  EXPECT_EQ(h.bucket_counts()[0], 0u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
  EXPECT_EQ(h.bounds().size(), 1u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.AddCounter("disk.reads", "pages read");
  Counter* b = registry.AddCounter("disk.reads");
  EXPECT_EQ(a, b);  // Same handle: components may bind independently.
  EXPECT_EQ(registry.size(), 1u);
  a->Add(7);
  EXPECT_EQ(b->value(), 7u);
}

TEST(MetricsRegistryTest, WrongKindReRegistrationReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.AddCounter("x"), nullptr);
  EXPECT_EQ(registry.AddGauge("x"), nullptr);
  EXPECT_EQ(registry.AddHistogram("x", {1.0}), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossGrowth) {
  MetricsRegistry registry;
  Counter* first = registry.AddCounter("first");
  // Force plenty of internal growth; `first` must stay valid (the hot
  // path records through handles resolved once at wiring time).
  for (int i = 0; i < 200; ++i) {
    registry.AddCounter("c" + std::to_string(i));
  }
  first->Add(3);
  EXPECT_EQ(registry.FindCounter("first")->value(), 3u);
}

TEST(MetricsRegistryTest, FindRespectsKindAndAbsence) {
  MetricsRegistry registry;
  registry.AddCounter("c");
  registry.AddGauge("g");
  registry.AddHistogram("h", {1.0, 2.0});
  EXPECT_NE(registry.FindCounter("c"), nullptr);
  EXPECT_NE(registry.FindGauge("g"), nullptr);
  EXPECT_NE(registry.FindHistogram("h"), nullptr);
  EXPECT_EQ(registry.FindCounter("g"), nullptr);  // wrong kind
  EXPECT_EQ(registry.FindGauge("h"), nullptr);
  EXPECT_EQ(registry.FindHistogram("c"), nullptr);
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
}

TEST(MetricsRegistryTest, ResetZeroesEveryInstrumentKeepsHandles) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("c");
  Gauge* g = registry.AddGauge("g");
  Histogram* h = registry.AddHistogram("h", {10.0});
  c->Add(5);
  g->Set(1.5);
  h->Observe(3.0);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // The same handles keep working after Reset.
  c->Add(1);
  EXPECT_EQ(registry.FindCounter("c")->value(), 1u);
}

TEST(MetricsRegistryTest, ToJsonGroupsByKind) {
  MetricsRegistry registry;
  registry.AddCounter("disk.reads")->Add(12);
  registry.AddGauge("pool.load")->Set(0.75);
  Histogram* h = registry.AddHistogram("lat", {1.0, 2.0});
  h->Observe(1.5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"disk.reads\":12}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"pool.load\":0.75}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"lat\":{\"count\":1,\"sum\":1.5,"
                      "\"p50\":1.5,\"p90\":1.5,\"p99\":1.5,"
                      "\"bounds\":[1,2],\"buckets\":[0,1,0]}"),
            std::string::npos)
      << json;
}

TEST(HistogramTest, PercentileInterpolatesBucketRepresentatives) {
  // Buckets: (0,10] rep 5, (10,20] rep 15, +inf rep 20.
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 90; ++i) h.Observe(5.0);
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  // 90 copies of 5 then 10 of 15: expanded ranks 0..89 are 5.
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 5.0);
  EXPECT_NEAR(h.Percentile(90.0), 5.0 + 0.1 * 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 15.0);
  // Overflow observations are pinned to the last finite bound.
  Histogram over({10.0, 20.0});
  over.Observe(1000.0);
  EXPECT_DOUBLE_EQ(over.Percentile(50.0), 20.0);
  // Empty histogram yields 0.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 5.0);
  Histogram empty({10.0});
  EXPECT_DOUBLE_EQ(empty.Percentile(50.0), 0.0);
}

TEST(MetricsRegistryTest, DumpTextListsEveryInstrument) {
  MetricsRegistry registry;
  registry.AddCounter("buffer.fetches")->Add(9);
  registry.AddHistogram("age", {4.0})->Observe(2.0);
  std::string text = registry.DumpText();
  EXPECT_NE(text.find("buffer.fetches"), std::string::npos);
  EXPECT_NE(text.find("9"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
  EXPECT_NE(text.find("+inf:0"), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyRegistryExportsAreWellFormed) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(registry.DumpText(), "");
}

}  // namespace
}  // namespace irbuf::obs
