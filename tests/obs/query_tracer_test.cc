#include "obs/query_tracer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "../core/test_index.h"
#include "core/filtering_evaluator.h"
#include "ir/experiment.h"
#include "obs/metrics.h"
#include "workload/refinement.h"

namespace irbuf::obs {
namespace {

TEST(QueryTracerTest, RecordsEventsInOrderWithStepTags) {
  QueryTracer tracer;
  tracer.BeginQuery(2);
  tracer.BeginTerm(7, 3, 0.5, 0.1);
  tracer.Fetch(7, 0, false);
  tracer.Smax(7, 0.0, 10.0);
  tracer.Phase(7, "ins->add");
  tracer.EndTerm(7, 10.0, 42);
  tracer.Accumulators(5);
  tracer.EndQuery(10.0, 5);
  tracer.BeginStep(1);
  tracer.BeginQuery(1);
  tracer.SkipTerm(9, 0.2, 0.3);
  tracer.EndQuery(10.0, 5);

  const std::vector<TraceEvent>& ev = tracer.events();
  ASSERT_EQ(ev.size(), 12u);
  EXPECT_EQ(ev[0].kind, TraceEventKind::kQueryBegin);
  EXPECT_EQ(ev[0].n, 2u);
  EXPECT_EQ(ev[1].kind, TraceEventKind::kTermBegin);
  EXPECT_EQ(ev[1].term, 7u);
  EXPECT_DOUBLE_EQ(ev[1].a, 0.5);
  EXPECT_DOUBLE_EQ(ev[1].b, 0.1);
  EXPECT_EQ(ev[1].n, 3u);
  EXPECT_EQ(ev[2].kind, TraceEventKind::kFetch);
  EXPECT_FALSE(ev[2].hit);
  EXPECT_EQ(ev[3].kind, TraceEventKind::kSmax);
  EXPECT_DOUBLE_EQ(ev[3].b, 10.0);
  EXPECT_EQ(ev[4].kind, TraceEventKind::kPhase);
  EXPECT_STREQ(ev[4].phase, "ins->add");
  EXPECT_EQ(ev[5].kind, TraceEventKind::kTermEnd);
  EXPECT_EQ(ev[5].n, 42u);
  EXPECT_EQ(ev[7].kind, TraceEventKind::kQueryEnd);
  // Events before BeginStep(1) carry step 0; after, step 1.
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(ev[i].step, 0u) << i;
  for (size_t i = 8; i < ev.size(); ++i) EXPECT_EQ(ev[i].step, 1u) << i;
  EXPECT_EQ(tracer.current_step(), 1u);
  EXPECT_EQ(tracer.CountKind(TraceEventKind::kQueryBegin), 2u);
  EXPECT_EQ(tracer.CountKind(TraceEventKind::kTermSkip), 1u);
  EXPECT_EQ(tracer.CountKind(TraceEventKind::kEvict), 0u);

  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.current_step(), 0u);
}

TEST(QueryTracerTest, SmaxTrajectoryIsPerStepTermEndValues) {
  QueryTracer tracer;
  tracer.EndTerm(1, 5.0, 1);
  tracer.EndTerm(2, 9.0, 1);
  tracer.BeginStep(1);
  tracer.EndTerm(3, 11.0, 1);
  std::vector<double> step0 = tracer.SmaxTrajectory(0);
  ASSERT_EQ(step0.size(), 2u);
  EXPECT_DOUBLE_EQ(step0[0], 5.0);
  EXPECT_DOUBLE_EQ(step0[1], 9.0);
  std::vector<double> step1 = tracer.SmaxTrajectory(1);
  ASSERT_EQ(step1.size(), 1u);
  EXPECT_DOUBLE_EQ(step1[0], 11.0);
  EXPECT_TRUE(tracer.SmaxTrajectory(7).empty());
}

TEST(QueryTracerTest, JsonAndTextExports) {
  QueryTracer tracer;
  tracer.BeginQuery(1);
  tracer.Fetch(3, 2, true);
  tracer.Evict(4, 0, 6.0, 12.0, 9);
  tracer.EndQuery(0.0, 1);
  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"events\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"fetch\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hit\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"evict\""), std::string::npos) << json;
  std::string text = tracer.DumpText();
  EXPECT_NE(text.find("query_begin"), std::string::npos) << text;
  EXPECT_NE(text.find("evict"), std::string::npos) << text;
}

// --- End-to-end: the whole stack records a coherent timeline ----------

class TracedEvaluationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tc_.emplace(core::MakeRandomCollection(41, 120, 10, 3));
    for (TermId t = 0; t < 10; ++t) query_.AddTerm(t, 1 + t % 3);
  }

  core::EvalResult Run(size_t pool_pages, QueryTracer* tracer) {
    core::EvalOptions options;  // Persin's tuned constants.
    options.tracer = tracer;
    core::FilteringEvaluator evaluator(&tc_->index, options);
    buffer::BufferManager pool(
        &tc_->index.disk(), pool_pages,
        buffer::MakePolicy(buffer::PolicyKind::kLru));
    pool.SetTracer(tracer);
    auto result = evaluator.Evaluate(query_, &pool);
    EXPECT_TRUE(result.ok());
    stats_ = pool.stats();
    return std::move(result).value();
  }

  std::optional<core::TestCollection> tc_;
  core::Query query_;
  buffer::BufferStats stats_;
};

TEST_F(TracedEvaluationTest, TimelineIsWellFormed) {
  QueryTracer tracer;
  core::EvalResult result = Run(/*pool_pages=*/4, &tracer);
  const std::vector<TraceEvent>& ev = tracer.events();
  ASSERT_FALSE(ev.empty());
  EXPECT_EQ(ev.front().kind, TraceEventKind::kQueryBegin);
  EXPECT_EQ(ev.front().n, query_.size());
  EXPECT_EQ(ev.back().kind, TraceEventKind::kQueryEnd);
  EXPECT_EQ(ev.back().n, result.accumulators);

  // Fetch events agree one-for-one with the pool's counters, and their
  // hit tags partition into the pool's hit/miss counts.
  size_t hits = 0, misses = 0;
  for (const TraceEvent& e : ev) {
    if (e.kind != TraceEventKind::kFetch) continue;
    (e.hit ? hits : misses)++;
  }
  EXPECT_EQ(hits + misses, stats_.fetches);
  EXPECT_EQ(hits, stats_.hits);
  EXPECT_EQ(misses, stats_.misses);
  EXPECT_EQ(misses, result.disk_reads);

  // A 4-page pool over a multi-term query must evict, and every eviction
  // event carries a positive replacement age.
  EXPECT_EQ(tracer.CountKind(TraceEventKind::kEvict), stats_.evictions);
  EXPECT_GT(stats_.evictions, 0u);
  for (const TraceEvent& e : ev) {
    if (e.kind == TraceEventKind::kEvict) {
      EXPECT_GT(e.n, 0u);
    }
  }

  // Terms begin before they end, never nested.
  bool in_term = false;
  size_t term_ends = 0;
  for (const TraceEvent& e : ev) {
    if (e.kind == TraceEventKind::kTermBegin) {
      EXPECT_FALSE(in_term);
      in_term = true;
    } else if (e.kind == TraceEventKind::kTermEnd) {
      EXPECT_TRUE(in_term);
      in_term = false;
      ++term_ends;
    }
  }
  EXPECT_FALSE(in_term);
  EXPECT_EQ(term_ends + result.terms_skipped, query_.size());

  // Phase labels come from the fixed transition vocabulary, and the
  // Smax trajectory is non-decreasing (scores only accumulate).
  const std::set<std::string> allowed = {"ins->add", "ins->drop",
                                         "add->drop"};
  for (const TraceEvent& e : ev) {
    if (e.kind == TraceEventKind::kPhase) {
      EXPECT_TRUE(allowed.count(e.phase)) << e.phase;
    }
  }
  std::vector<double> smax = tracer.SmaxTrajectory(0);
  EXPECT_EQ(smax.size(), term_ends);
  EXPECT_TRUE(std::is_sorted(smax.begin(), smax.end()));
}

TEST_F(TracedEvaluationTest, TracingIsObservationallyPure) {
  // The differential guarantee: a traced run returns a bit-identical
  // EvalResult and identical pool counters to an untraced one.
  QueryTracer tracer;
  core::EvalResult traced = Run(4, &tracer);
  buffer::BufferStats traced_stats = stats_;
  core::EvalResult plain = Run(4, nullptr);

  EXPECT_FALSE(tracer.events().empty());
  ASSERT_EQ(traced.top_docs.size(), plain.top_docs.size());
  for (size_t i = 0; i < plain.top_docs.size(); ++i) {
    EXPECT_EQ(traced.top_docs[i].doc, plain.top_docs[i].doc) << i;
    // Bit-identical, not merely close.
    EXPECT_EQ(std::memcmp(&traced.top_docs[i].score,
                          &plain.top_docs[i].score, sizeof(double)),
              0)
        << i;
  }
  EXPECT_EQ(traced.disk_reads, plain.disk_reads);
  EXPECT_EQ(traced.pages_processed, plain.pages_processed);
  EXPECT_EQ(traced.postings_processed, plain.postings_processed);
  EXPECT_EQ(traced.accumulators, plain.accumulators);
  EXPECT_EQ(traced.terms_skipped, plain.terms_skipped);
  EXPECT_EQ(traced_stats.fetches, stats_.fetches);
  EXPECT_EQ(traced_stats.hits, stats_.hits);
  EXPECT_EQ(traced_stats.misses, stats_.misses);
  EXPECT_EQ(traced_stats.evictions, stats_.evictions);
}

// --- Sequence-level telemetry -----------------------------------------

TEST(SequenceTelemetryTest, ExportCarriesPerStepObservability) {
  core::TestCollection tc = core::MakeRandomCollection(99, 400, 12, 4);
  core::Query q;
  for (TermId t = 0; t < 12; ++t) q.AddTerm(t, 1 + t % 2);
  auto seq = workload::BuildRefinementSequence(
      "test", q, tc.index, workload::RefinementKind::kAddOnly);
  ASSERT_TRUE(seq.ok());

  QueryTracer tracer;
  MetricsRegistry registry;
  ir::SequenceRunOptions options;
  options.buffer_pages = 6;  // tight: forces misses and evictions
  options.tracer = &tracer;
  options.metrics = &registry;
  auto result =
      ir::RunRefinementSequence(tc.index, seq.value(), {}, options);
  ASSERT_TRUE(result.ok());

  // Per-step buffer deltas are consistent with the step's disk reads and
  // sum to the registry's whole-run counters.
  uint64_t fetches = 0, evictions = 0;
  for (size_t s = 0; s < result.value().steps.size(); ++s) {
    const ir::StepResult& sr = result.value().steps[s];
    EXPECT_EQ(sr.buffer.misses, sr.disk_reads) << s;
    EXPECT_EQ(sr.buffer.fetches, sr.buffer.hits + sr.buffer.misses) << s;
    fetches += sr.buffer.fetches;
    evictions += sr.buffer.evictions;
  }
  EXPECT_EQ(registry.FindCounter("buffer.fetches")->value(), fetches);
  EXPECT_EQ(registry.FindCounter("buffer.evictions")->value(), evictions);
  EXPECT_EQ(registry.FindCounter("disk.reads")->value(),
            result.value().total_disk_reads);
  EXPECT_GT(evictions, 0u);

  // The tracer tagged events with every step index.
  EXPECT_EQ(tracer.current_step() + 1, result.value().steps.size());
  EXPECT_FALSE(tracer.SmaxTrajectory(0).empty());

  // The JSON export carries the acceptance-criteria fields.
  std::string json = ir::SequenceTelemetryJson("test", options,
                                               result.value(), &tracer);
  for (const char* key :
       {"\"total_disk_reads\":", "\"hit_rate\":", "\"evictions\":",
        "\"phase_transitions\":", "\"smax_trajectory\":",
        "\"eviction_events\":", "\"steps\":["}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace irbuf::obs
