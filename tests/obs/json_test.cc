#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace irbuf::obs {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("reads").UInt(42);
  w.Key("tag").Str("hot");
  w.Key("rate").Num(0.5);
  w.Key("delta").Int(-3);
  w.Key("on").Bool(true);
  w.Key("none").Null();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            "{\"reads\":42,\"tag\":\"hot\",\"rate\":0.5,\"delta\":-3,"
            "\"on\":true,\"none\":null}");
}

TEST(JsonWriterTest, NestedContainersGetCommasRight) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").BeginArray();
  w.UInt(1);
  w.BeginObject().Key("x").UInt(2).EndObject();
  w.BeginArray().EndArray();
  w.EndArray();
  w.Key("b").BeginObject().EndObject();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), "{\"a\":[1,{\"x\":2},[]],\"b\":{}}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Num(std::nan(""));
  w.Num(INFINITY);
  w.Num(1.0);
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[null,null,1]");
}

TEST(JsonWriterTest, RawSplicesAsOneValue) {
  JsonWriter w;
  w.BeginArray();
  w.UInt(1);
  w.Raw("{\"pre\":true}");
  w.UInt(2);
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[1,{\"pre\":true},2]");
}

TEST(JsonWriterTest, TopLevelScalar) {
  JsonWriter w;
  w.Str("just a string");
  EXPECT_EQ(w.str(), "\"just a string\"");
}

}  // namespace
}  // namespace irbuf::obs
