#include "obs/span.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace irbuf::obs {
namespace {

TEST(ScopedSpanTest, NullRecorderRecordsNothing) {
  // The "disabled is free" contract: a null recorder must be a no-op
  // (no registration, no clock reads, nothing to snapshot afterwards).
  { ScopedSpan span(nullptr, SpanStage::kEvaluate, 42); }
  SpanRecorder probe;
  EXPECT_TRUE(probe.Snapshot().empty());
}

TEST(ScopedSpanTest, RecordsStageTermQueryAndDepth) {
  SpanRecorder recorder;
  recorder.SetCurrentQuery(7);
  {
    ScopedSpan outer(&recorder, SpanStage::kEvaluate);
    {
      ScopedSpan inner(&recorder, SpanStage::kTermLoop, 5);
    }
  }
  recorder.SetCurrentQuery(SpanRecorder::kNoQuery);

  std::vector<ThreadSpans> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  ASSERT_EQ(snapshot[0].spans.size(), 2u);
  // Inner closes first.
  const Span& inner = snapshot[0].spans[0];
  const Span& outer = snapshot[0].spans[1];
  EXPECT_EQ(inner.stage, SpanStage::kTermLoop);
  EXPECT_EQ(inner.term, 5u);
  EXPECT_EQ(inner.query, 7u);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(outer.stage, SpanStage::kEvaluate);
  EXPECT_EQ(outer.depth, 0);
  // The inner span nests inside the outer interval.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
}

TEST(SpanRecorderTest, RecordManualClampsBackwardsInterval) {
  SpanRecorder recorder;
  recorder.RecordManual(SpanStage::kQueueWait, 1000, 4000, 3);
  recorder.RecordManual(SpanStage::kQueueWait, 4000, 1000, 4);  // end < start
  std::vector<ThreadSpans> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  ASSERT_EQ(snapshot[0].spans.size(), 2u);
  EXPECT_EQ(snapshot[0].spans[0].dur_ns, 3000u);
  EXPECT_EQ(snapshot[0].spans[0].query, 3u);
  EXPECT_EQ(snapshot[0].spans[1].dur_ns, 0u);
}

TEST(SpanRecorderTest, ClearDropsSpansKeepsRegistration) {
  SpanRecorder recorder;
  { ScopedSpan span(&recorder, SpanStage::kPagePin); }
  ASSERT_EQ(recorder.Snapshot().size(), 1u);
  recorder.Clear();
  std::vector<ThreadSpans> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);  // Thread still registered.
  EXPECT_TRUE(snapshot[0].spans.empty());
}

TEST(SpanRecorderTest, ThreadsRecordIntoSeparateBuffers) {
  SpanRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      recorder.SetCurrentQuery(static_cast<uint32_t>(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(&recorder, SpanStage::kAccumulate,
                        static_cast<uint32_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<ThreadSpans> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), static_cast<size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snapshot[t].tid, static_cast<uint32_t>(t));
    EXPECT_EQ(snapshot[t].spans.size(),
              static_cast<size_t>(kSpansPerThread));
    // Every span in one buffer carries that thread's query tag: buffers
    // are genuinely thread-private.
    for (const Span& s : snapshot[t].spans) {
      EXPECT_EQ(s.query, snapshot[t].spans[0].query);
    }
  }
}

TEST(SpanRecorderTest, TwoRecordersDoNotShareBuffers) {
  // The thread-local cache keys on the recorder id, so interleaving two
  // live recorders routes each span to the right one.
  SpanRecorder a;
  SpanRecorder b;
  { ScopedSpan span(&a, SpanStage::kEvaluate); }
  { ScopedSpan span(&b, SpanStage::kTopKMerge); }
  { ScopedSpan span(&a, SpanStage::kPagePin); }
  std::vector<ThreadSpans> sa = a.Snapshot();
  std::vector<ThreadSpans> sb = b.Snapshot();
  // `a` saw this thread twice (re-registration after the switch to `b`
  // hands out a fresh tid, documented in BufferForThisThread).
  size_t a_spans = 0;
  for (const ThreadSpans& ts : sa) a_spans += ts.spans.size();
  size_t b_spans = 0;
  for (const ThreadSpans& ts : sb) b_spans += ts.spans.size();
  EXPECT_EQ(a_spans, 2u);
  EXPECT_EQ(b_spans, 1u);
  for (const ThreadSpans& ts : sb) {
    for (const Span& s : ts.spans) {
      EXPECT_EQ(s.stage, SpanStage::kTopKMerge);
    }
  }
}

std::vector<ThreadSpans> TwoQuerySnapshot() {
  // Query 1: wall 1000us = queue_wait 100us + evaluate 900us (depth 0);
  // a 400us term_loop nests inside evaluate (depth 1, inclusive).
  // Query 2: wall 200us = queue_wait 50us + evaluate 150us.
  // One non-query lock wait that must stay out of per-query tables.
  ThreadSpans t0;
  t0.tid = 0;
  t0.spans = {
      Span{0, 100000, 1, 0, SpanStage::kQueueWait, 0},
      Span{100000, 900000, 1, 0, SpanStage::kEvaluate, 0},
      Span{150000, 400000, 1, 5, SpanStage::kTermLoop, 1},
  };
  ThreadSpans t1;
  t1.tid = 1;
  t1.spans = {
      Span{0, 50000, 2, 0, SpanStage::kQueueWait, 0},
      Span{50000, 150000, 2, 0, SpanStage::kEvaluate, 0},
      Span{60000, 10000, SpanRecorder::kNoQuery, 0, SpanStage::kLockWait, 1},
  };
  return {t0, t1};
}

TEST(ComputeAttributionTest, WallAndStagePercentiles) {
  const SpanAttribution attr = ComputeAttribution(TwoQuerySnapshot());
  EXPECT_EQ(attr.queries, 2u);  // kNoQuery spans don't mint a query.
  // Walls {200us, 1000us}: linear-interpolation percentiles.
  EXPECT_NEAR(attr.wall_p50_us, 600.0, 1e-9);
  EXPECT_NEAR(attr.wall_p99_us, 992.0, 1e-9);

  const auto& evaluate =
      attr.stages[static_cast<size_t>(SpanStage::kEvaluate)];
  EXPECT_EQ(evaluate.spans, 2u);
  EXPECT_EQ(evaluate.total_ns, 1050000u);
  EXPECT_NEAR(evaluate.p50_us, 525.0, 1e-9);  // {150us, 900us} median
  // p99 bucket = the 1000us query alone: stage shares are read against
  // its wall, inclusively.
  EXPECT_NEAR(evaluate.p99_share, 0.9, 1e-12);
  const auto& term_loop =
      attr.stages[static_cast<size_t>(SpanStage::kTermLoop)];
  EXPECT_NEAR(term_loop.p99_share, 0.4, 1e-12);
  const auto& queue_wait =
      attr.stages[static_cast<size_t>(SpanStage::kQueueWait)];
  EXPECT_NEAR(queue_wait.p99_share, 0.1, 1e-12);

  // The kNoQuery lock wait is counted globally but has no query to
  // attribute to.
  const auto& lock_wait =
      attr.stages[static_cast<size_t>(SpanStage::kLockWait)];
  EXPECT_EQ(lock_wait.spans, 1u);
  EXPECT_EQ(lock_wait.total_ns, 10000u);
  EXPECT_NEAR(lock_wait.p99_share, 0.0, 1e-12);
}

TEST(ComputeAttributionTest, EmptySnapshotYieldsZeros) {
  const SpanAttribution attr = ComputeAttribution({});
  EXPECT_EQ(attr.queries, 0u);
  EXPECT_EQ(attr.wall_p50_us, 0.0);
  for (const auto& s : attr.stages) {
    EXPECT_EQ(s.spans, 0u);
  }
}

TEST(AttributionJsonTest, EmitsEveryStageKey) {
  const SpanAttribution attr = ComputeAttribution(TwoQuerySnapshot());
  JsonWriter w;
  AppendAttributionJson(attr, w);
  const std::string json = std::move(w).Take();
  // Schema stability: all stages present even when unused, so the
  // report tool never branches on key existence.
  for (size_t i = 0; i < kNumSpanStages; ++i) {
    const std::string key =
        std::string("\"") + SpanStageName(static_cast<SpanStage>(i)) + "\"";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"queries\":2"), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\""), std::string::npos);
}

TEST(ChromeTraceTest, EmitsCompleteEventsInMicroseconds) {
  std::vector<ThreadSpans> threads(1);
  threads[0].tid = 3;
  threads[0].spans = {Span{2500, 1500, 9, 4, SpanStage::kBlockDecode, 2}};
  const std::string json = ToChromeTraceJson(threads);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"block_decode\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.5"), std::string::npos);   // ns -> us
  EXPECT_NE(json.find("\"dur\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"query\":9"), std::string::npos);
  EXPECT_NE(json.find("\"term\":4"), std::string::npos);
}

TEST(ChromeTraceTest, OmitsNoQueryAndZeroTermArgs) {
  std::vector<ThreadSpans> threads(1);
  threads[0].tid = 0;
  threads[0].spans = {
      Span{0, 10, SpanRecorder::kNoQuery, 0, SpanStage::kLockWait, 0}};
  const std::string json = ToChromeTraceJson(threads);
  EXPECT_EQ(json.find("\"query\""), std::string::npos);
  EXPECT_EQ(json.find("\"term\""), std::string::npos);
}

TEST(MutexWaitJsonTest, HistogramPairsSkipEmptyBuckets) {
  MutexWaitStats stats("test.mutex");
  stats.RecordUncontended();
  stats.RecordWait(500);        // < 1us -> bucket 0
  stats.RecordWait(3'000'000);  // 3ms = 3000us -> [2048, 4096)us
  JsonWriter w;
  AppendMutexWaitJson(stats, w);
  const std::string json = std::move(w).Take();
  EXPECT_NE(json.find("\"acquisitions\":3"), std::string::npos);
  EXPECT_NE(json.find("\"contended\":2"), std::string::npos);
  EXPECT_NE(json.find("[0,1]"), std::string::npos);
  EXPECT_NE(json.find("[2048,1]"), std::string::npos);
  EXPECT_EQ(json.find("[1,"), std::string::npos);  // empty bucket omitted
}

TEST(MutexWaitBindingTest, MirrorsContendedWaitsIntoHistogramAndSpans) {
  MutexWaitStats stats("test.bound");
  Histogram hist(MutexWaitHistogramBounds());
  SpanRecorder recorder;
  MutexWaitBinding binding;
  binding.Bind(&stats, &hist, &recorder);

  recorder.SetCurrentQuery(11);
  stats.RecordUncontended();    // Not a wait: nothing mirrored.
  stats.RecordWait(2'000'000);  // 2ms wait on this thread.
  recorder.SetCurrentQuery(SpanRecorder::kNoQuery);

  EXPECT_EQ(hist.count(), 1u);
  EXPECT_NEAR(hist.sum(), 2000.0, 1e-9);  // Mirrored in microseconds.

  std::vector<ThreadSpans> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  ASSERT_EQ(snapshot[0].spans.size(), 1u);
  EXPECT_EQ(snapshot[0].spans[0].stage, SpanStage::kLockWait);
  EXPECT_EQ(snapshot[0].spans[0].dur_ns, 2'000'000u);
  EXPECT_EQ(snapshot[0].spans[0].query, 11u);
}

TEST(MutexWaitBindingTest, HistogramBoundsMirrorStatsBuckets) {
  const std::vector<double> bounds = MutexWaitHistogramBounds();
  ASSERT_EQ(bounds.size(), MutexWaitStats::kBuckets - 1);
  EXPECT_EQ(bounds.front(), 1.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], 2.0 * bounds[i - 1]);
  }
}

TEST(SpanStageNameTest, AllStagesNamed) {
  for (size_t i = 0; i < kNumSpanStages; ++i) {
    EXPECT_STRNE(SpanStageName(static_cast<SpanStage>(i)), "unknown");
  }
}

}  // namespace
}  // namespace irbuf::obs
