// Sharded serving under real concurrency: 8 server workers fanning out
// over 4 shard pools (TSan coverage for the lane handoff, the Smax
// barrier and the per-shard latches). Registered with the `concurrency`
// label so CI's ThreadSanitizer job picks it up.

#include <gtest/gtest.h>

#include <future>
#include <tuple>
#include <vector>

#include "../core/test_index.h"
#include "core/filtering_evaluator.h"
#include "fault/backoff.h"
#include "serve/concurrent_buffer_pool.h"
#include "serve/query_server.h"
#include "shard/index_sharder.h"
#include "shard/sharded_engine.h"

namespace irbuf {
namespace {

using core::MakeRandomCollection;
using core::TestCollection;

TEST(ShardedStressTest, EightWorkersFourShardsThousandQueries) {
  constexpr size_t kWorkers = 8;
  constexpr size_t kShards = 4;
  constexpr size_t kQueries = 1000;
  constexpr uint32_t kPageSize = 4;

  TestCollection tc = MakeRandomCollection(71, 200, 12, kPageSize);

  // A small distinct query mix; expected rankings precomputed with the
  // sequential evaluator (DF ranking is buffer-state independent, so
  // every concurrent interleaving must reproduce them exactly).
  Pcg32 rng(9001);
  std::vector<core::Query> mix;
  std::vector<std::vector<core::ScoredDoc>> expected;
  {
    core::EvalOptions eval;
    core::FilteringEvaluator reference(&tc.index, eval);
    for (size_t i = 0; i < 20; ++i) {
      core::Query q;
      for (TermId t : SampleDistinct(12, 2 + rng.NextBounded(3), &rng)) {
        q.AddTerm(t, 1 + rng.NextBounded(2));
      }
      buffer::BufferManager pool(&tc.index.disk(), 16,
                                 buffer::MakePolicy(buffer::PolicyKind::kLru));
      auto result = reference.Evaluate(q, &pool);
      ASSERT_TRUE(result.ok());
      expected.push_back(std::move(result.value().top_docs));
      mix.push_back(std::move(q));
    }
  }

  shard::ShardOptions sharding;
  sharding.num_shards = kShards;
  sharding.page_size = kPageSize;
  auto sharded = shard::ShardIndex(tc.index, sharding);
  ASSERT_TRUE(sharded.ok());

  shard::ShardedEngineOptions engine_options;
  engine_options.pool.total_pages = 64;
  engine_options.pool.policy = buffer::PolicyKind::kRap;
  engine_options.lanes_per_shard = kWorkers;
  engine_options.shared_context = true;
  shard::ShardedEngine engine(&sharded.value(), engine_options);

  serve::ServerOptions server_options;
  server_options.num_threads = kWorkers;
  server_options.queue_depth = kQueries;
  server_options.engine = &engine;
  serve::QueryServer server(&tc.index, server_options);
  server.Start();

  std::vector<std::future<Result<serve::QueryResponse>>> futures;
  std::vector<size_t> which;
  futures.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    const size_t q = i % mix.size();
    auto submitted = server.Submit(1 + (i % kWorkers), mix[q]);
    ASSERT_TRUE(submitted.ok()) << submitted.status().message();
    futures.push_back(std::move(submitted.value()));
    which.push_back(q);
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response.value().annotation, StatusCode::kOk);
    const std::vector<core::ScoredDoc>& got =
        response.value().eval.top_docs;
    const std::vector<core::ScoredDoc>& want = expected[which[i]];
    ASSERT_EQ(got.size(), want.size()) << "query " << i;
    for (size_t r = 0; r < got.size(); ++r) {
      EXPECT_EQ(got[r].doc, want[r].doc) << "query " << i << " rank " << r;
      EXPECT_EQ(got[r].score, want[r].score)
          << "query " << i << " rank " << r;
    }
  }
  server.Stop();

  const serve::ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.submitted, kQueries);
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(stats.failed, 0u);

  // Aggregate conservation across the shard pools.
  const buffer::BufferStats pool_stats = server.PoolStatsSnapshot();
  EXPECT_EQ(pool_stats.fetches, pool_stats.hits + pool_stats.misses);
  EXPECT_GT(pool_stats.fetches, 0u);
}

// Same workload with per-shard readahead at depth 8: the async miss
// pipeline (coalescing FSM, prefetch workers, window reclaim) under
// 8 server workers x 4 shard pools, with the rankings still exact (DF
// ranking is buffer-state independent, so readahead must be invisible)
// and device-read conservation holding per shard.
TEST(ShardedStressTest, PrefetchDepth8KeepsRankingsExactAcrossShards) {
  constexpr size_t kWorkers = 8;
  constexpr size_t kShards = 4;
  constexpr size_t kQueries = 1000;
  constexpr uint32_t kPageSize = 4;

  TestCollection tc = MakeRandomCollection(71, 200, 12, kPageSize);

  Pcg32 rng(9001);
  std::vector<core::Query> mix;
  std::vector<std::vector<core::ScoredDoc>> expected;
  {
    core::EvalOptions eval;
    core::FilteringEvaluator reference(&tc.index, eval);
    for (size_t i = 0; i < 20; ++i) {
      core::Query q;
      for (TermId t : SampleDistinct(12, 2 + rng.NextBounded(3), &rng)) {
        q.AddTerm(t, 1 + rng.NextBounded(2));
      }
      buffer::BufferManager pool(&tc.index.disk(), 16,
                                 buffer::MakePolicy(buffer::PolicyKind::kLru));
      auto result = reference.Evaluate(q, &pool);
      ASSERT_TRUE(result.ok());
      expected.push_back(std::move(result.value().top_docs));
      mix.push_back(std::move(q));
    }
  }

  shard::ShardOptions sharding;
  sharding.num_shards = kShards;
  sharding.page_size = kPageSize;
  auto sharded = shard::ShardIndex(tc.index, sharding);
  ASSERT_TRUE(sharded.ok());

  shard::ShardedEngineOptions engine_options;
  engine_options.pool.total_pages = 64;
  engine_options.pool.policy = buffer::PolicyKind::kRap;
  engine_options.pool.prefetch_depth = 8;
  engine_options.lanes_per_shard = kWorkers;
  engine_options.shared_context = true;
  shard::ShardedEngine engine(&sharded.value(), engine_options);

  serve::ServerOptions server_options;
  server_options.num_threads = kWorkers;
  server_options.queue_depth = kQueries;
  server_options.engine = &engine;
  serve::QueryServer server(&tc.index, server_options);
  server.Start();

  std::vector<std::future<Result<serve::QueryResponse>>> futures;
  std::vector<size_t> which;
  futures.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    const size_t q = i % mix.size();
    auto submitted = server.Submit(1 + (i % kWorkers), mix[q]);
    ASSERT_TRUE(submitted.ok()) << submitted.status().message();
    futures.push_back(std::move(submitted.value()));
    which.push_back(q);
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response.value().annotation, StatusCode::kOk);
    const std::vector<core::ScoredDoc>& got =
        response.value().eval.top_docs;
    const std::vector<core::ScoredDoc>& want = expected[which[i]];
    ASSERT_EQ(got.size(), want.size()) << "query " << i;
    for (size_t r = 0; r < got.size(); ++r) {
      EXPECT_EQ(got[r].doc, want[r].doc) << "query " << i << " rank " << r;
      EXPECT_EQ(got[r].score, want[r].score)
          << "query " << i << " rank " << r;
    }
  }
  server.Stop();

  const serve::ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(stats.failed, 0u);

  // Per-shard device-read conservation: demand misses plus successful
  // readaheads account for every read each shard pool issued. Readahead
  // runs on background workers, so poll until the counters go quiet
  // (Stop() joined the server workers, not the prefetch workers).
  auto totals = [&] {
    uint64_t misses = 0, issued = 0, device = 0;
    for (size_t s = 0; s < kShards; ++s) {
      const serve::ConcurrentBufferPool* pool =
          engine.mutable_pool()->shard(s);
      const serve::PoolPrefetchStats ps = pool->PrefetchStatsSnapshot();
      misses += pool->StatsSnapshot().misses;
      issued += ps.issued;
      device += ps.device_reads;
    }
    return std::tuple<uint64_t, uint64_t, uint64_t>(misses, issued, device);
  };
  auto [misses, issued, device] = totals();
  for (int i = 0; i < 100 && misses + issued != device; ++i) {
    fault::SleepUs(20000);
    std::tie(misses, issued, device) = totals();
  }
  EXPECT_EQ(misses + issued, device);
  EXPECT_GT(device, 0u);
}

}  // namespace
}  // namespace irbuf
