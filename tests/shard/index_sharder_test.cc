// IndexSharder invariants: doc-range partitioning, order preservation,
// global-vs-shard-local lexicon statistics, and the shards=1 physical
// byte-identity that anchors the differential suite.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "../core/test_index.h"
#include "shard/index_sharder.h"
#include "storage/codec.h"

namespace irbuf {
namespace {

using core::MakeRandomCollection;
using core::TestCollection;

// Decodes every page of `index`'s list for `t` into one flat vector.
std::vector<Posting> DecodeList(const index::InvertedIndex& index, TermId t) {
  std::vector<Posting> postings;
  storage::PostingBlock block;
  for (uint32_t p = 0; p < index.disk().NumPages(t); ++p) {
    auto image = index.disk().PageImage(PageId{t, p});
    EXPECT_TRUE(image.ok());
    EXPECT_TRUE(storage::DecodePostingsInto(*image.value(), &block).ok());
    for (size_t i = 0; i < block.size(); ++i) {
      postings.push_back(Posting{block.doc_ids[i], block.freqs[i]});
    }
  }
  return postings;
}

TEST(IndexSharderTest, RejectsDegenerateOptions) {
  TestCollection tc = MakeRandomCollection(7, 50, 5, 8);
  shard::ShardOptions zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_FALSE(shard::ShardIndex(tc.index, zero_shards).ok());
  shard::ShardOptions zero_page;
  zero_page.page_size = 0;
  EXPECT_FALSE(shard::ShardIndex(tc.index, zero_page).ok());
}

TEST(IndexSharderTest, DocRangesPartitionTheCollection) {
  TestCollection tc = MakeRandomCollection(11, 103, 8, 8);
  for (size_t num_shards : {1u, 2u, 3u, 4u, 8u}) {
    shard::ShardOptions options;
    options.num_shards = num_shards;
    options.page_size = 8;
    auto sharded = shard::ShardIndex(tc.index, options);
    ASSERT_TRUE(sharded.ok());
    const shard::ShardedIndex& si = sharded.value();
    ASSERT_EQ(si.num_shards(), num_shards);
    // Ranges are contiguous, disjoint, and cover [0, N).
    EXPECT_EQ(si.doc_begin(0), 0u);
    for (size_t s = 0; s + 1 < num_shards; ++s) {
      EXPECT_EQ(si.doc_end(s), si.doc_begin(s + 1));
    }
    EXPECT_EQ(si.doc_end(num_shards - 1), si.num_docs());
    // ShardOf agrees with the ranges.
    for (DocId d = 0; d < si.num_docs(); ++d) {
      const size_t s = si.ShardOf(d);
      EXPECT_GE(d, si.doc_begin(s));
      EXPECT_LT(d, si.doc_end(s));
    }
  }
}

TEST(IndexSharderTest, ShardListsAreOrderPreservingDocRangeFilters) {
  TestCollection tc = MakeRandomCollection(13, 120, 10, 8);
  shard::ShardOptions options;
  options.num_shards = 3;
  options.page_size = 5;  // Deliberately different from the source's.
  auto sharded = shard::ShardIndex(tc.index, options);
  ASSERT_TRUE(sharded.ok());
  const shard::ShardedIndex& si = sharded.value();

  for (TermId t = 0; t < tc.index.lexicon().size(); ++t) {
    const std::vector<Posting> source = DecodeList(tc.index, t);
    for (size_t s = 0; s < si.num_shards(); ++s) {
      // Expected: the source list filtered to the shard's doc range,
      // order preserved.
      std::vector<Posting> expected;
      for (const Posting& p : source) {
        if (si.ShardOf(p.doc) == s) expected.push_back(p);
      }
      const std::vector<Posting> actual = DecodeList(si.shard(s), t);
      ASSERT_EQ(actual.size(), expected.size())
          << "term " << t << " shard " << s;
      for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i].doc, expected[i].doc);
        EXPECT_EQ(actual[i].freq, expected[i].freq);
      }
    }
  }
}

TEST(IndexSharderTest, GlobalStatsStayGlobalAndLocalStatsTurnLocal) {
  TestCollection tc = MakeRandomCollection(17, 90, 8, 8);
  shard::ShardOptions options;
  options.num_shards = 4;
  options.page_size = 8;
  auto sharded = shard::ShardIndex(tc.index, options);
  ASSERT_TRUE(sharded.ok());
  const shard::ShardedIndex& si = sharded.value();

  const index::Lexicon& global = tc.index.lexicon();
  for (TermId t = 0; t < global.size(); ++t) {
    const index::TermInfo& src = global.info(t);
    // The coordinator's lexicon is the source's, verbatim.
    EXPECT_EQ(si.lexicon().info(t).idf, src.idf);
    EXPECT_EQ(si.lexicon().info(t).fmax, src.fmax);
    EXPECT_EQ(si.lexicon().info(t).pages, src.pages);

    uint32_t fmax_over_shards = 0;
    uint32_t postings = 0;
    for (size_t s = 0; s < si.num_shards(); ++s) {
      const index::TermInfo& info = si.shard(s).lexicon().info(t);
      // idf/ft remain GLOBAL in every shard (scores depend on them).
      EXPECT_EQ(info.idf, src.idf);
      EXPECT_EQ(info.ft, src.ft);
      // pages is shard-local and consistent with the shard's disk.
      EXPECT_EQ(info.pages, si.shard(s).disk().NumPages(t));
      EXPECT_LE(info.fmax, src.fmax);
      fmax_over_shards = std::max(fmax_over_shards, info.fmax);
      postings += static_cast<uint32_t>(DecodeList(si.shard(s), t).size());
    }
    // Global fmax is recovered as the max over shards, and no posting
    // is lost or duplicated.
    EXPECT_EQ(fmax_over_shards, src.fmax);
    EXPECT_EQ(postings, static_cast<uint32_t>(DecodeList(tc.index, t).size()));
  }

  // Every shard carries the full global norm vector.
  for (size_t s = 0; s < si.num_shards(); ++s) {
    ASSERT_EQ(si.shard(s).num_docs(), tc.index.num_docs());
    for (DocId d = 0; d < tc.index.num_docs(); ++d) {
      EXPECT_EQ(si.shard(s).doc_norm(d), tc.index.doc_norm(d));
    }
  }
}

TEST(IndexSharderTest, SingleShardAtSourcePageSizeIsByteIdentical) {
  const uint32_t page_size = 8;
  TestCollection tc = MakeRandomCollection(19, 80, 6, page_size);
  shard::ShardOptions options;
  options.num_shards = 1;
  options.page_size = page_size;
  auto sharded = shard::ShardIndex(tc.index, options);
  ASSERT_TRUE(sharded.ok());
  const index::InvertedIndex& shard0 = sharded.value().shard(0);

  ASSERT_EQ(shard0.total_pages(), tc.index.total_pages());
  for (TermId t = 0; t < tc.index.lexicon().size(); ++t) {
    ASSERT_EQ(shard0.disk().NumPages(t), tc.index.disk().NumPages(t));
    for (uint32_t p = 0; p < tc.index.disk().NumPages(t); ++p) {
      auto source_image = tc.index.disk().PageImage(PageId{t, p});
      auto shard_image = shard0.disk().PageImage(PageId{t, p});
      ASSERT_TRUE(source_image.ok());
      ASSERT_TRUE(shard_image.ok());
      // Same chunking -> same encoded images, byte for byte.
      EXPECT_EQ(*shard_image.value(), *source_image.value())
          << "term " << t << " page " << p;
    }
  }
}

TEST(IndexSharderTest, MoreShardsThanDocsLeavesSurplusShardsEmpty) {
  TestCollection tc = MakeRandomCollection(23, 3, 4, 4);
  shard::ShardOptions options;
  options.num_shards = 8;
  auto sharded = shard::ShardIndex(tc.index, options);
  ASSERT_TRUE(sharded.ok());
  const shard::ShardedIndex& si = sharded.value();
  ASSERT_EQ(si.num_shards(), 8u);
  uint64_t pages = 0;
  for (size_t s = 0; s < si.num_shards(); ++s) {
    if (si.doc_begin(s) >= si.num_docs()) {
      EXPECT_EQ(si.shard(s).total_pages(), 0u);
    }
    pages += si.shard(s).total_pages();
  }
  EXPECT_GT(pages, 0u);
}

}  // namespace
}  // namespace irbuf
