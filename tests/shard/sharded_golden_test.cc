// Golden differentials for the scatter-gather engine: the sharded
// ranking must equal the unsharded evaluator's BIT FOR BIT (exact
// double equality, not tolerance), across {DF warm sequences, BAF cold
// queries} x {LRU, RAP, FIFO, CLOCK} x shard counts — and at shards=1
// the whole QueryServer response (counters and trace included) must be
// byte-identical to the legacy single-pool serving path.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../core/test_index.h"
#include "core/filtering_evaluator.h"
#include "serve/query_server.h"
#include "shard/index_sharder.h"
#include "shard/sharded_engine.h"

namespace irbuf {
namespace {

using core::MakeRandomCollection;
using core::TestCollection;

constexpr uint32_t kPageSize = 4;
constexpr buffer::PolicyKind kPolicies[] = {
    buffer::PolicyKind::kLru, buffer::PolicyKind::kRap,
    buffer::PolicyKind::kFifo, buffer::PolicyKind::kClock};

// A deterministic refinement-ish sequence of multi-term queries.
std::vector<core::Query> MakeQueries(const TestCollection& tc, uint64_t seed,
                                     size_t count) {
  Pcg32 rng(seed);
  const uint32_t num_terms =
      static_cast<uint32_t>(tc.index.lexicon().size());
  std::vector<core::Query> queries;
  for (size_t i = 0; i < count; ++i) {
    core::Query q;
    const uint32_t width = 2 + rng.NextBounded(3);
    for (TermId t : SampleDistinct(num_terms, width, &rng)) {
      q.AddTerm(t, 1 + rng.NextBounded(2));
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

void ExpectBitIdentical(const std::vector<core::ScoredDoc>& sharded,
                        const std::vector<core::ScoredDoc>& reference,
                        const std::string& what) {
  ASSERT_EQ(sharded.size(), reference.size()) << what;
  for (size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].doc, reference[i].doc) << what << " rank " << i;
    // Exact FP equality — the whole point of the barrier design.
    EXPECT_EQ(sharded[i].score, reference[i].score) << what << " rank " << i;
  }
}

shard::ShardedEngineOptions EngineOptions(buffer::PolicyKind policy,
                                          bool buffer_aware) {
  shard::ShardedEngineOptions options;
  options.eval.buffer_aware = buffer_aware;
  options.pool.total_pages = 16;
  options.pool.policy = policy;
  return options;
}

// ---- DF: warm sequences, every policy, several shard counts. ----

TEST(ShardedGoldenTest, DfWarmSequencesMatchUnshardedBitForBit) {
  TestCollection tc = MakeRandomCollection(31, 160, 12, kPageSize);
  const std::vector<core::Query> queries = MakeQueries(tc, 77, 6);
  core::EvalOptions eval;  // DF

  for (buffer::PolicyKind policy : kPolicies) {
    // Unsharded reference: one pool warmed across the whole sequence.
    buffer::BufferManager reference_pool(&tc.index.disk(), 16,
                                         buffer::MakePolicy(policy));
    core::FilteringEvaluator reference(&tc.index, eval);
    std::vector<std::vector<core::ScoredDoc>> expected;
    for (const core::Query& q : queries) {
      auto result = reference.Evaluate(q, &reference_pool);
      ASSERT_TRUE(result.ok());
      expected.push_back(std::move(result.value().top_docs));
    }

    for (size_t num_shards : {1u, 2u, 3u, 4u}) {
      shard::ShardOptions sharding;
      sharding.num_shards = num_shards;
      sharding.page_size = kPageSize;
      auto sharded = shard::ShardIndex(tc.index, sharding);
      ASSERT_TRUE(sharded.ok());
      shard::ShardedEngine engine(&sharded.value(),
                                  EngineOptions(policy, false));
      for (size_t i = 0; i < queries.size(); ++i) {
        auto result = engine.Evaluate(queries[i], nullptr, 0);
        ASSERT_TRUE(result.ok());
        ExpectBitIdentical(
            result.value().top_docs, expected[i],
            "DF policy " + std::to_string(static_cast<int>(policy)) +
                " shards " + std::to_string(num_shards) + " query " +
                std::to_string(i));
      }
    }
  }
}

// ---- BAF: cold single queries, every policy. Both paths see b_t = 0
// for every unprocessed term throughout, so the buffer-aware order (and
// hence everything downstream) coincides. ----

TEST(ShardedGoldenTest, BafColdQueriesMatchUnshardedBitForBit) {
  TestCollection tc = MakeRandomCollection(37, 140, 10, kPageSize);
  const std::vector<core::Query> queries = MakeQueries(tc, 101, 5);
  core::EvalOptions eval;
  eval.buffer_aware = true;

  for (buffer::PolicyKind policy : kPolicies) {
    for (size_t num_shards : {1u, 2u, 4u}) {
      shard::ShardOptions sharding;
      sharding.num_shards = num_shards;
      sharding.page_size = kPageSize;
      auto sharded = shard::ShardIndex(tc.index, sharding);
      ASSERT_TRUE(sharded.ok());
      for (size_t i = 0; i < queries.size(); ++i) {
        // Fresh pools on both sides: the cold-start contract.
        buffer::BufferManager reference_pool(&tc.index.disk(), 16,
                                             buffer::MakePolicy(policy));
        core::FilteringEvaluator reference(&tc.index, eval);
        auto expected = reference.Evaluate(queries[i], &reference_pool);
        ASSERT_TRUE(expected.ok());

        shard::ShardedEngine engine(&sharded.value(),
                                    EngineOptions(policy, true));
        auto result = engine.Evaluate(queries[i], nullptr, 0);
        ASSERT_TRUE(result.ok());
        ExpectBitIdentical(
            result.value().top_docs, expected.value().top_docs,
            "BAF policy " + std::to_string(static_cast<int>(policy)) +
                " shards " + std::to_string(num_shards) + " query " +
                std::to_string(i));
      }
    }
  }
}

// ---- Shared-context RAP: per-shard SharedQueryContext snapshots must
// not change the (DF) ranking either. ----

TEST(ShardedGoldenTest, SharedContextDfStillMatches) {
  TestCollection tc = MakeRandomCollection(41, 120, 10, kPageSize);
  const std::vector<core::Query> queries = MakeQueries(tc, 55, 4);
  core::EvalOptions eval;

  buffer::BufferManager reference_pool(
      &tc.index.disk(), 16, buffer::MakePolicy(buffer::PolicyKind::kRap));
  core::FilteringEvaluator reference(&tc.index, eval);

  shard::ShardOptions sharding;
  sharding.num_shards = 4;
  sharding.page_size = kPageSize;
  auto sharded = shard::ShardIndex(tc.index, sharding);
  ASSERT_TRUE(sharded.ok());
  shard::ShardedEngineOptions options =
      EngineOptions(buffer::PolicyKind::kRap, false);
  options.shared_context = true;
  options.lanes_per_shard = 2;
  shard::ShardedEngine engine(&sharded.value(), options);

  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected = reference.Evaluate(queries[i], &reference_pool);
    auto result = engine.Evaluate(queries[i], nullptr, 0);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(result.ok());
    ExpectBitIdentical(result.value().top_docs, expected.value().top_docs,
                       "shared-context query " + std::to_string(i));
  }
}

// ---- shards=1 through the server: the engine-routed QueryServer must
// reproduce the legacy single-pool path byte for byte — ranking,
// counters and the per-term trace. ----

TEST(ShardedGoldenTest, SingleShardServerResponseByteIdenticalToLegacy) {
  TestCollection tc = MakeRandomCollection(43, 150, 10, kPageSize);
  const std::vector<core::Query> queries = MakeQueries(tc, 203, 8);

  serve::ServerOptions legacy;
  legacy.num_threads = 1;
  legacy.buffer_pages = 16;
  legacy.policy = buffer::PolicyKind::kRap;
  serve::QueryServer legacy_server(&tc.index, legacy);
  legacy_server.Start();

  shard::ShardOptions sharding;
  sharding.num_shards = 1;
  sharding.page_size = kPageSize;  // Source page size: byte-identical shard.
  auto sharded = shard::ShardIndex(tc.index, sharding);
  ASSERT_TRUE(sharded.ok());
  shard::ShardedEngineOptions engine_options =
      EngineOptions(buffer::PolicyKind::kRap, false);
  shard::ShardedEngine engine(&sharded.value(), engine_options);

  serve::ServerOptions routed;
  routed.num_threads = 1;
  routed.engine = &engine;
  serve::QueryServer routed_server(&tc.index, routed);
  routed_server.Start();

  for (size_t i = 0; i < queries.size(); ++i) {
    auto legacy_response = legacy_server.Execute(1, queries[i]);
    auto routed_response = routed_server.Execute(1, queries[i]);
    ASSERT_TRUE(legacy_response.ok());
    ASSERT_TRUE(routed_response.ok());
    const core::EvalResult& want = legacy_response.value().eval;
    const core::EvalResult& got = routed_response.value().eval;

    ExpectBitIdentical(got.top_docs, want.top_docs,
                       "server query " + std::to_string(i));
    EXPECT_EQ(got.disk_reads, want.disk_reads);
    EXPECT_EQ(got.pages_processed, want.pages_processed);
    EXPECT_EQ(got.postings_processed, want.postings_processed);
    EXPECT_EQ(got.accumulators, want.accumulators);
    EXPECT_EQ(got.terms_skipped, want.terms_skipped);
    EXPECT_EQ(got.degraded, want.degraded);
    EXPECT_EQ(got.deadline_hit, want.deadline_hit);
    EXPECT_EQ(got.quality_bound, want.quality_bound);
    ASSERT_EQ(got.trace.size(), want.trace.size());
    for (size_t j = 0; j < got.trace.size(); ++j) {
      EXPECT_EQ(got.trace[j].term, want.trace[j].term);
      EXPECT_EQ(got.trace[j].idf, want.trace[j].idf);
      EXPECT_EQ(got.trace[j].total_pages, want.trace[j].total_pages);
      EXPECT_EQ(got.trace[j].smax_before, want.trace[j].smax_before);
      EXPECT_EQ(got.trace[j].smax_after, want.trace[j].smax_after);
      EXPECT_EQ(got.trace[j].f_ins, want.trace[j].f_ins);
      EXPECT_EQ(got.trace[j].f_add, want.trace[j].f_add);
      EXPECT_EQ(got.trace[j].pages_processed, want.trace[j].pages_processed);
      EXPECT_EQ(got.trace[j].pages_read, want.trace[j].pages_read);
      EXPECT_EQ(got.trace[j].postings_processed,
                want.trace[j].postings_processed);
      EXPECT_EQ(got.trace[j].skipped, want.trace[j].skipped);
      EXPECT_EQ(got.trace[j].pages_lost, want.trace[j].pages_lost);
    }
  }

  // Identical decisions -> identical pool stats, shard prefix aside.
  const buffer::BufferStats legacy_stats =
      legacy_server.PoolStatsSnapshot();
  const buffer::BufferStats routed_stats =
      routed_server.PoolStatsSnapshot();
  EXPECT_EQ(routed_stats.fetches, legacy_stats.fetches);
  EXPECT_EQ(routed_stats.hits, legacy_stats.hits);
  EXPECT_EQ(routed_stats.misses, legacy_stats.misses);
  EXPECT_EQ(routed_stats.evictions, legacy_stats.evictions);
}

// ---- Multi-shard ranking still agrees with ground truth. ----

TEST(ShardedGoldenTest, ShardedRankingMatchesBruteForceOnLooseThresholds) {
  TestCollection tc = MakeRandomCollection(47, 100, 8, kPageSize);
  const std::vector<core::Query> queries = MakeQueries(tc, 19, 5);

  shard::ShardOptions sharding;
  sharding.num_shards = 4;
  sharding.page_size = kPageSize;
  auto sharded = shard::ShardIndex(tc.index, sharding);
  ASSERT_TRUE(sharded.ok());
  shard::ShardedEngineOptions options =
      EngineOptions(buffer::PolicyKind::kLru, false);
  // Thresholds off: the filtered evaluation degenerates to exact
  // cosine, so the merged answer must equal brute force exactly.
  options.eval.c_ins = 0.0;
  options.eval.c_add = 0.0;
  shard::ShardedEngine engine(&sharded.value(), options);

  for (const core::Query& q : queries) {
    auto result = engine.Evaluate(q, nullptr, 0);
    ASSERT_TRUE(result.ok());
    const std::vector<core::ScoredDoc> truth =
        BruteForceRanking(tc, q, options.eval.top_n);
    ASSERT_EQ(result.value().top_docs.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(result.value().top_docs[i].doc, truth[i].doc);
      EXPECT_NEAR(result.value().top_docs[i].score, truth[i].score, 1e-9);
    }
  }
}

}  // namespace
}  // namespace irbuf
