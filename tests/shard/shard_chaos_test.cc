// Shard-level failure domains under chaos: one shard blacked out, one
// shard straggling, one shard flapping — at 2 and 4 shards, through the
// bare engine and the full QueryServer. The invariants:
//
//   * a dead / straggling / flapping shard never fails or hangs a
//     query — the answer comes from the surviving shards, degraded;
//   * conservation: a forfeited shard's whole possible contribution is
//     charged to the merged result — quality_bound equals the sum over
//     the query's terms of LostShardTermBound EXACTLY, pages_lost the
//     sum of ShardTermPages — whether the shard died page by page or
//     was forfeited wholesale;
//   * the degraded ranking equals ground truth over the surviving
//     shards' documents (thresholds off), and recall@10 against the
//     full collection keeps a floor;
//   * at p = 0 the whole failure-domain apparatus (breakers on, soft
//     deadline armed, injector attached) is bit-invisible.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "../core/test_index.h"
#include "core/filtering_evaluator.h"
#include "fault/fault_injector.h"
#include "serve/query_server.h"
#include "shard/index_sharder.h"
#include "shard/sharded_engine.h"

namespace irbuf {
namespace {

using core::MakeRandomCollection;
using core::TestCollection;

constexpr uint32_t kPageSize = 3;

fault::ResilienceOptions FastResilience() {
  fault::ResilienceOptions options;
  options.enabled = true;
  options.sleep_on_backoff = false;
  options.backoff.max_retries = 1;
  return options;
}

/// Breaker that trips after two failed steps — small enough that a
/// blacked-out shard is forfeited wholesale mid-query.
fault::BreakerOptions TwitchyBreaker() {
  fault::BreakerOptions options;
  options.window = 2;
  options.min_samples = 2;
  options.trip_error_rate = 0.5;
  options.open_cooldown_us = 1000;
  return options;
}

shard::ShardedEngineOptions ChaosEngineOptions() {
  shard::ShardedEngineOptions options;
  // Thresholds off: every live shard computes exact cosine over its doc
  // range, so the degraded answer is deterministic and the conservation
  // assertions are exact (no skip path contributes to quality_bound).
  options.eval.c_ins = 0.0;
  options.eval.c_add = 0.0;
  options.eval.top_n = 20;
  options.pool.total_pages = 16;
  options.pool.resilience = FastResilience();
  options.shard_breaker = TwitchyBreaker();
  return options;
}

std::vector<core::Query> ChaosQueries(uint32_t num_terms) {
  std::vector<core::Query> queries;
  for (uint32_t take : {4u, 7u, num_terms}) {
    core::Query q;
    for (TermId t = 0; t < std::min(take, num_terms); ++t) {
      q.AddTerm(t, 1 + t % 3);
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Ground truth restricted to documents outside [lost_begin, lost_end):
/// what a query answered without one shard's doc range must score.
std::vector<core::ScoredDoc> SurvivorRanking(const TestCollection& tc,
                                             const core::Query& query,
                                             uint32_t n, DocId lost_begin,
                                             DocId lost_end) {
  std::map<DocId, double> scores;
  for (const core::QueryTerm& qt : query.terms()) {
    const double idf = tc.index.lexicon().info(qt.term).idf;
    for (const Posting& p : tc.lists[qt.term]) {
      if (p.doc >= lost_begin && p.doc < lost_end) continue;
      scores[p.doc] += static_cast<double>(p.freq) * idf *
                       static_cast<double>(qt.fq) * idf;
    }
  }
  std::vector<core::ScoredDoc> ranked;
  for (auto& [doc, acc] : scores) {
    double norm = tc.index.doc_norm(doc);
    ranked.push_back(core::ScoredDoc{doc, norm > 0.0 ? acc / norm : 0.0});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const core::ScoredDoc& a, const core::ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (ranked.size() > n) ranked.resize(n);
  return ranked;
}

double RecallAt10(const std::vector<core::ScoredDoc>& got,
                  const std::vector<core::ScoredDoc>& reference) {
  const size_t n = std::min<size_t>(10, reference.size());
  if (n == 0) return 1.0;
  size_t found = 0;
  const size_t got_n = std::min<size_t>(10, got.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < got_n; ++j) {
      if (got[j].doc == reference[i].doc) {
        ++found;
        break;
      }
    }
  }
  return static_cast<double>(found) / static_cast<double>(n);
}

/// The charge a dead shard must have left on the merge: the sum over
/// the query's terms of its shard-local per-term bounds. When the shard
/// was forfeited wholesale (shards_lost == 1, partial dropped) the
/// engine accumulates in exactly this order, so the double equality is
/// EXACT; when it died page by page without being forfeited the total
/// is the same sum in page order, identical up to FP associativity.
void ExpectForfeitureConserved(const shard::ShardedEngine& engine,
                               size_t shard, const core::Query& query,
                               const core::EvalResult& merged) {
  double expected_bound = 0.0;
  uint32_t expected_lost = 0;
  for (const core::QueryTerm& qt : query.terms()) {
    expected_bound += engine.LostShardTermBound(shard, qt);
    expected_lost += engine.ShardTermPages(shard, qt.term);
  }
  if (merged.shards_lost == 1) {
    EXPECT_EQ(merged.quality_bound, expected_bound);
  } else {
    EXPECT_NEAR(merged.quality_bound, expected_bound,
                1e-9 * std::max(1.0, expected_bound));
  }
  EXPECT_EQ(merged.pages_lost, expected_lost);
}

// ---- Single-shard blackout: every query answered, degraded, exact. ----

class ShardBlackoutTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardBlackoutTest, BlackoutDegradesToSurvivingShards) {
  const size_t num_shards = GetParam();
  TestCollection tc = MakeRandomCollection(811, 240, 10, kPageSize);
  shard::ShardOptions sharding;
  sharding.num_shards = num_shards;
  sharding.page_size = kPageSize;
  auto sharded = shard::ShardIndex(tc.index, sharding);
  ASSERT_TRUE(sharded.ok());

  const size_t dead_shard = num_shards - 1;
  fault::FaultSpec spec;
  spec.rules.push_back({fault::FaultKind::kPermanentBadPage, 1.0});
  fault::FaultInjector injector(spec);
  sharded.value().shard(dead_shard).disk().SetFaultInjector(&injector);

  shard::ShardedEngine engine(&sharded.value(), ChaosEngineOptions());
  const DocId lost_begin = sharded.value().doc_begin(dead_shard);
  const DocId lost_end = sharded.value().doc_end(dead_shard);

  for (const core::Query& q : ChaosQueries(10)) {
    auto r = engine.Evaluate(q, nullptr, 0);
    // A dead shard degrades the query; it never fails it.
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const core::EvalResult& er = r.value();
    EXPECT_TRUE(er.degraded);
    EXPECT_TRUE(std::isfinite(er.quality_bound));
    EXPECT_GT(er.quality_bound, 0.0);

    // Conservation: the merge charges the dead shard's whole possible
    // contribution, bit-exactly — whether it died page by page (before
    // the breaker tripped) or was forfeited wholesale (after).
    ExpectForfeitureConserved(engine, dead_shard, q, er);

    // The degraded ranking IS the ground truth over surviving docs.
    const auto reference =
        SurvivorRanking(tc, q, 20, lost_begin, lost_end);
    ASSERT_EQ(er.top_docs.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(er.top_docs[i].doc, reference[i].doc) << "rank " << i;
      EXPECT_NEAR(er.top_docs[i].score, reference[i].score, 1e-9);
    }

    // Recall against the FULL collection is deterministic: a surviving
    // doc in the full top-10 only moves UP when the dead range's docs
    // drop out, so recall@10 is exactly the surviving fraction of the
    // full top-10 — and at 4 shards that keeps the committed 0.5 floor.
    const auto full = core::BruteForceRanking(tc, q, 20);
    const size_t n = std::min<size_t>(10, full.size());
    size_t survived = 0;
    for (size_t i = 0; i < n; ++i) {
      if (full[i].doc < lost_begin || full[i].doc >= lost_end) ++survived;
    }
    const double recall = RecallAt10(er.top_docs, full);
    EXPECT_DOUBLE_EQ(recall, static_cast<double>(survived) /
                                 static_cast<double>(n));
    if (num_shards == 4) {
      EXPECT_GE(recall, 0.5);
    }
  }

  // After the first couple of probing steps the breaker is open and the
  // shard is forfeited per query without touching its device.
  ASSERT_NE(engine.shard_breaker(dead_shard), nullptr);
  EXPECT_GE(engine.shard_breaker(dead_shard)->trips(), 1u);
  sharded.value().shard(dead_shard).disk().SetFaultInjector(nullptr);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardBlackoutTest,
                         ::testing::Values<size_t>(2, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::to_string(info.param) + "shards";
                         });

// ---- Straggler: a latency-spiking shard is abandoned, not waited on. ----

TEST(ShardStragglerTest, StragglingShardForfeitedAtSoftDeadline) {
  TestCollection tc = MakeRandomCollection(823, 200, 8, kPageSize);
  shard::ShardOptions sharding;
  sharding.num_shards = 4;
  sharding.page_size = kPageSize;
  auto sharded = shard::ShardIndex(tc.index, sharding);
  ASSERT_TRUE(sharded.ok());

  // Every miss on shard 1 sleeps 200x the base device delay: a
  // straggler, not a failure — no read ever errors. One spiked miss
  // (40 ms) alone overshoots the 20 ms soft step deadline, while a
  // healthy shard's whole term (a handful of 200 us misses) stays an
  // order of magnitude inside it.
  const size_t slow_shard = 1;
  fault::FaultSpec spec;
  fault::FaultRule latency{fault::FaultKind::kLatencySpike, 1.0};
  latency.latency_multiplier = 200.0;
  spec.rules.push_back(latency);
  fault::FaultInjector injector(spec);
  sharded.value().shard(slow_shard).disk().SetFaultInjector(&injector);

  shard::ShardedEngineOptions options = ChaosEngineOptions();
  options.pool.io_delay_us_per_miss = 200;
  options.shard_step_soft_deadline_us = 20'000;
  shard::ShardedEngine engine(&sharded.value(), options);

  core::Query q;
  for (TermId t = 0; t < 8; ++t) q.AddTerm(t, 1);
  auto r = engine.Evaluate(q, nullptr, 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const core::EvalResult& er = r.value();
  EXPECT_TRUE(er.degraded);
  EXPECT_EQ(er.shards_lost, 1u);
  ExpectForfeitureConserved(engine, slow_shard, q, er);

  // Wholesale forfeiture drops the straggler's partial entirely, so the
  // answer equals ground truth over the other three shards' docs.
  const auto reference =
      SurvivorRanking(tc, q, 20, sharded.value().doc_begin(slow_shard),
                      sharded.value().doc_end(slow_shard));
  ASSERT_EQ(er.top_docs.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(er.top_docs[i].doc, reference[i].doc) << "rank " << i;
    EXPECT_NEAR(er.top_docs[i].score, reference[i].score, 1e-9);
  }
  // No SetFaultInjector(nullptr) here: the straggler's abandoned step
  // may still be inside ReadPage when Evaluate returns (that is the
  // point of the forfeit), so clearing the injector now would race the
  // lane thread. Declaration order already guarantees safety — the
  // engine (which joins its lanes) dies before the injector does.
}

// ---- Flapping: a shard that fails intermittently across a sequence. ----

class ShardFlappingTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardFlappingTest, FlappingShardNeverFailsOrHangsQueries) {
  const size_t num_shards = GetParam();
  TestCollection tc = MakeRandomCollection(829, 260, 10, kPageSize);
  shard::ShardOptions sharding;
  sharding.num_shards = num_shards;
  sharding.page_size = kPageSize;
  auto sharded = shard::ShardIndex(tc.index, sharding);
  ASSERT_TRUE(sharded.ok());

  // Transient failures at 60%: with one retry some pages recover, some
  // are lost, so the shard's breaker flaps open/half-open/closed across
  // the sequence.
  const size_t flappy = 0;
  fault::FaultSpec spec;
  spec.seed = 7;
  spec.rules.push_back({fault::FaultKind::kTransientRead, 0.6});
  fault::FaultInjector injector(spec);
  sharded.value().shard(flappy).disk().SetFaultInjector(&injector);

  shard::ShardedEngineOptions options = ChaosEngineOptions();
  options.shard_breaker.window = 4;
  options.shard_breaker.min_samples = 4;
  options.shard_breaker.open_cooldown_us = 200;
  shard::ShardedEngine engine(&sharded.value(), options);

  const std::vector<core::Query> queries = ChaosQueries(10);
  for (int round = 0; round < 4; ++round) {
    for (const core::Query& q : queries) {
      auto r = engine.Evaluate(q, nullptr, 0);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      const core::EvalResult& er = r.value();
      // Degradation accounts for itself under flapping too.
      EXPECT_EQ(er.degraded,
                er.pages_lost > 0 || er.deadline_hit || er.work_trimmed ||
                    er.shards_lost > 0);
      EXPECT_GE(er.quality_bound, 0.0);
      EXPECT_TRUE(std::isfinite(er.quality_bound));
      if (er.pages_lost > 0) {
        EXPECT_GT(er.quality_bound, 0.0);
      }
      // Pool-stat conservation survives the chaos.
      const buffer::BufferStats stats = engine.PoolStats();
      EXPECT_EQ(stats.fetches, stats.hits + stats.misses);
    }
  }
  sharded.value().shard(flappy).disk().SetFaultInjector(nullptr);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardFlappingTest,
                         ::testing::Values<size_t>(2, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::to_string(info.param) + "shards";
                         });

// ---- p = 0: breakers + soft deadline + injector are bit-invisible. ----

TEST(ShardChaosZeroRateTest, FailureDomainApparatusIsBitInvisible) {
  TestCollection tc = MakeRandomCollection(31, 160, 12, kPageSize);
  core::EvalOptions eval;  // DF, default thresholds.

  // Unsharded reference: one pool warmed across the whole sequence.
  std::vector<core::Query> queries;
  {
    Pcg32 rng(77);
    const uint32_t num_terms =
        static_cast<uint32_t>(tc.index.lexicon().size());
    for (size_t i = 0; i < 6; ++i) {
      core::Query q;
      const uint32_t width = 2 + rng.NextBounded(3);
      for (TermId t : SampleDistinct(num_terms, width, &rng)) {
        q.AddTerm(t, 1 + rng.NextBounded(2));
      }
      queries.push_back(std::move(q));
    }
  }
  core::FilteringEvaluator reference(&tc.index, eval);

  for (size_t num_shards : {2u, 4u}) {
    // Fresh reference pool per shard count: each sharded run below
    // replays the same warm sequence from cold.
    buffer::BufferManager reference_pool(
        &tc.index.disk(), 16, buffer::MakePolicy(buffer::PolicyKind::kLru));
    shard::ShardOptions sharding;
    sharding.num_shards = num_shards;
    sharding.page_size = kPageSize;
    auto sharded = shard::ShardIndex(tc.index, sharding);
    ASSERT_TRUE(sharded.ok());

    // The whole apparatus armed, zero faults injected.
    fault::FaultSpec empty_spec;
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    for (size_t s = 0; s < num_shards; ++s) {
      injectors.push_back(std::make_unique<fault::FaultInjector>(empty_spec));
      sharded.value().shard(s).disk().SetFaultInjector(injectors.back().get());
    }
    shard::ShardedEngineOptions options;
    options.pool.total_pages = 16;
    options.pool.resilience = FastResilience();
    options.shard_breakers = true;
    options.shard_step_soft_deadline_us = 10'000'000;  // Armed, generous.
    shard::ShardedEngine engine(&sharded.value(), options);

    for (size_t i = 0; i < queries.size(); ++i) {
      auto expected = reference.Evaluate(queries[i], &reference_pool);
      auto got = engine.Evaluate(queries[i], nullptr, 0);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_FALSE(got.value().degraded);
      EXPECT_EQ(got.value().shards_lost, 0u);
      ASSERT_EQ(got.value().top_docs.size(),
                expected.value().top_docs.size());
      for (size_t j = 0; j < got.value().top_docs.size(); ++j) {
        EXPECT_EQ(got.value().top_docs[j].doc,
                  expected.value().top_docs[j].doc)
            << "shards " << num_shards << " query " << i << " rank " << j;
        // Bit-identical, not just close.
        EXPECT_EQ(got.value().top_docs[j].score,
                  expected.value().top_docs[j].score)
            << "shards " << num_shards << " query " << i << " rank " << j;
      }
    }
    for (size_t s = 0; s < num_shards; ++s) {
      EXPECT_EQ(engine.shard_breaker(s)->trips(), 0u);
      sharded.value().shard(s).disk().SetFaultInjector(nullptr);
    }
  }
}

// ---- Blackout through the full serving stack, concurrent clients. ----

TEST(ShardChaosServerTest, ServerAbsorbsShardBlackoutAcrossWorkers) {
  TestCollection tc = MakeRandomCollection(839, 240, 10, kPageSize);
  shard::ShardOptions sharding;
  sharding.num_shards = 4;
  sharding.page_size = kPageSize;
  auto sharded = shard::ShardIndex(tc.index, sharding);
  ASSERT_TRUE(sharded.ok());

  const size_t dead_shard = 2;
  fault::FaultSpec spec;
  spec.rules.push_back({fault::FaultKind::kPermanentBadPage, 1.0});
  fault::FaultInjector injector(spec);
  sharded.value().shard(dead_shard).disk().SetFaultInjector(&injector);

  shard::ShardedEngineOptions engine_options = ChaosEngineOptions();
  engine_options.lanes_per_shard = 8;
  shard::ShardedEngine engine(&sharded.value(), engine_options);

  serve::ServerOptions options;
  options.num_threads = 8;
  options.queue_depth = 64;
  options.engine = &engine;
  serve::QueryServer server(&tc.index, options);
  server.Start();

  const std::vector<core::Query> queries = ChaosQueries(10);
  std::vector<std::thread> clients;
  std::atomic<uint64_t> failures{0};
  for (size_t session = 0; session < 4; ++session) {
    clients.emplace_back([&, session] {
      for (int loop = 0; loop < 3; ++loop) {
        for (const core::Query& q : queries) {
          auto response = server.Execute(session, q);
          if (!response.ok()) {
            ++failures;
            continue;
          }
          const core::EvalResult& er = response.value().eval;
          // Every answer is degraded — the dead shard always costs
          // something — and accounts for itself.
          EXPECT_TRUE(er.degraded);
          EXPECT_TRUE(er.pages_lost > 0 || er.shards_lost > 0);
          EXPECT_GT(er.quality_bound, 0.0);
          EXPECT_TRUE(std::isfinite(er.quality_bound));
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  server.Stop();
  sharded.value().shard(dead_shard).disk().SetFaultInjector(nullptr);

  EXPECT_EQ(failures.load(), 0u);
  const serve::ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.submitted, 4u * 3u * queries.size());
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.failed, 0u);
  const buffer::BufferStats pool = server.PoolStatsSnapshot();
  EXPECT_EQ(pool.fetches, pool.hits + pool.misses);
}

}  // namespace
}  // namespace irbuf
