#include "text/stopwords.h"

#include <gtest/gtest.h>

namespace irbuf::text {
namespace {

TEST(StopWordListTest, DefaultEnglishContainsFunctionWords) {
  StopWordList list = StopWordList::DefaultEnglish();
  EXPECT_TRUE(list.Contains("the"));
  EXPECT_TRUE(list.Contains("and"));
  EXPECT_TRUE(list.Contains("of"));
  EXPECT_FALSE(list.Contains("stockmarket"));
  EXPECT_FALSE(list.Contains("fiber"));
  EXPECT_GT(list.size(), 50u);
}

TEST(StopWordListTest, ExplicitList) {
  StopWordList list({"foo", "bar"});
  EXPECT_TRUE(list.Contains("foo"));
  EXPECT_FALSE(list.Contains("baz"));
  EXPECT_EQ(list.size(), 2u);
}

TEST(StopWordListTest, FromCollectionFrequencyPicksTopFt) {
  // The paper's approach: the `count` terms with highest document
  // frequency become stop-words.
  std::vector<std::pair<std::string, uint32_t>> fts = {
      {"the", 170000}, {"market", 40000}, {"fiber", 600},
      {"of", 165000},  {"a", 160000},
  };
  StopWordList list = StopWordList::FromCollectionFrequency(fts, 3);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.Contains("the"));
  EXPECT_TRUE(list.Contains("of"));
  EXPECT_TRUE(list.Contains("a"));
  EXPECT_FALSE(list.Contains("market"));
  EXPECT_FALSE(list.Contains("fiber"));
}

TEST(StopWordListTest, FromCollectionFrequencyTiesAreDeterministic) {
  std::vector<std::pair<std::string, uint32_t>> fts = {
      {"b", 10}, {"a", 10}, {"c", 10}};
  StopWordList list = StopWordList::FromCollectionFrequency(fts, 2);
  EXPECT_TRUE(list.Contains("a"));
  EXPECT_TRUE(list.Contains("b"));
  EXPECT_FALSE(list.Contains("c"));
}

TEST(StopWordListTest, CountLargerThanVocabulary) {
  std::vector<std::pair<std::string, uint32_t>> fts = {{"x", 1}};
  StopWordList list = StopWordList::FromCollectionFrequency(fts, 100);
  EXPECT_EQ(list.size(), 1u);
}

}  // namespace
}  // namespace irbuf::text
