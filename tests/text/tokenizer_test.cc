#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace irbuf::text {
namespace {

TEST(TokenizerTest, SplitsOnNonLetters) {
  auto tokens = TokenizeAll("Stock markets, rally! 42 times");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "stock");
  EXPECT_EQ(tokens[1], "markets");
  EXPECT_EQ(tokens[2], "rally");
  EXPECT_EQ(tokens[3], "times");
}

TEST(TokenizerTest, LowercasesTokens) {
  auto tokens = TokenizeAll("AMERICAN StockMarkets");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "american");
  EXPECT_EQ(tokens[1], "stockmarkets");
}

TEST(TokenizerTest, DropsNumbersAndPunctuation) {
  auto tokens = TokenizeAll("1987--1992 ... 530MB!");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "mb");
}

TEST(TokenizerTest, HyphensSplitWords) {
  auto tokens = TokenizeAll("fine-diameter");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "fine");
  EXPECT_EQ(tokens[1], "diameter");
}

TEST(TokenizerTest, EmptyAndAllSeparatorInput) {
  EXPECT_TRUE(TokenizeAll("").empty());
  EXPECT_TRUE(TokenizeAll(" \t\n.,;!").empty());
}

TEST(TokenizerTest, StreamingInterfaceMatchesBatch) {
  const std::string input = "drastic price increases";
  Tokenizer tok(input);
  std::string t;
  std::vector<std::string> streamed;
  while (tok.Next(&t)) streamed.push_back(t);
  EXPECT_EQ(streamed, TokenizeAll(input));
  EXPECT_FALSE(tok.Next(&t));  // Exhausted stays exhausted.
}

}  // namespace
}  // namespace irbuf::text
