#include "text/porter_stemmer.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace irbuf::text {
namespace {

// The paper's own examples (Sections 3.2.1 and 4.2).
TEST(PorterStemmerTest, PaperExamples) {
  EXPECT_EQ(PorterStem("computer"), "comput");
  EXPECT_EQ(PorterStem("computing"), "comput");
  EXPECT_EQ(PorterStem("increases"), "increas");
  EXPECT_EQ(PorterStem("investment"), "invest");
  EXPECT_EQ(PorterStem("american"), "american");
  EXPECT_EQ(PorterStem("drastic"), "drastic");
  EXPECT_EQ(PorterStem("price"), "price");
}

TEST(PorterStemmerTest, Step1aPlurals) {
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("ties"), "ti");
  EXPECT_EQ(PorterStem("caress"), "caress");
  EXPECT_EQ(PorterStem("cats"), "cat");
}

TEST(PorterStemmerTest, Step1bEdIng) {
  EXPECT_EQ(PorterStem("feed"), "feed");
  EXPECT_EQ(PorterStem("agreed"), "agre");
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("bled"), "bled");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("sing"), "sing");
}

TEST(PorterStemmerTest, Step1bFixups) {
  EXPECT_EQ(PorterStem("conflated"), "conflat");
  EXPECT_EQ(PorterStem("troubled"), "troubl");
  EXPECT_EQ(PorterStem("sized"), "size");
  EXPECT_EQ(PorterStem("hopping"), "hop");
  EXPECT_EQ(PorterStem("tanned"), "tan");
  EXPECT_EQ(PorterStem("falling"), "fall");
  EXPECT_EQ(PorterStem("hissing"), "hiss");
  EXPECT_EQ(PorterStem("fizzed"), "fizz");
  EXPECT_EQ(PorterStem("failing"), "fail");
  EXPECT_EQ(PorterStem("filing"), "file");
}

TEST(PorterStemmerTest, Step1cYToI) {
  EXPECT_EQ(PorterStem("happy"), "happi");
  EXPECT_EQ(PorterStem("sky"), "sky");
}

TEST(PorterStemmerTest, Step2DoubleSuffixes) {
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("rational"), "ration");
  EXPECT_EQ(PorterStem("valenci"), "valenc");
  EXPECT_EQ(PorterStem("hesitanci"), "hesit");
  EXPECT_EQ(PorterStem("digitizer"), "digit");
  EXPECT_EQ(PorterStem("conformabli"), "conform");
  EXPECT_EQ(PorterStem("radicalli"), "radic");
  EXPECT_EQ(PorterStem("differentli"), "differ");
  EXPECT_EQ(PorterStem("vileli"), "vile");
  EXPECT_EQ(PorterStem("analogousli"), "analog");
  EXPECT_EQ(PorterStem("vietnamization"), "vietnam");
  EXPECT_EQ(PorterStem("predication"), "predic");
  EXPECT_EQ(PorterStem("operator"), "oper");
  EXPECT_EQ(PorterStem("feudalism"), "feudal");
  EXPECT_EQ(PorterStem("decisiveness"), "decis");
  EXPECT_EQ(PorterStem("hopefulness"), "hope");
  EXPECT_EQ(PorterStem("callousness"), "callous");
  EXPECT_EQ(PorterStem("formaliti"), "formal");
  EXPECT_EQ(PorterStem("sensitiviti"), "sensit");
  EXPECT_EQ(PorterStem("sensibiliti"), "sensibl");
}

TEST(PorterStemmerTest, Step3) {
  EXPECT_EQ(PorterStem("triplicate"), "triplic");
  EXPECT_EQ(PorterStem("formative"), "form");
  EXPECT_EQ(PorterStem("formalize"), "formal");
  EXPECT_EQ(PorterStem("electriciti"), "electr");
  EXPECT_EQ(PorterStem("electrical"), "electr");
  EXPECT_EQ(PorterStem("hopeful"), "hope");
  EXPECT_EQ(PorterStem("goodness"), "good");
}

TEST(PorterStemmerTest, Step4) {
  EXPECT_EQ(PorterStem("revival"), "reviv");
  EXPECT_EQ(PorterStem("allowance"), "allow");
  EXPECT_EQ(PorterStem("inference"), "infer");
  EXPECT_EQ(PorterStem("airliner"), "airlin");
  EXPECT_EQ(PorterStem("gyroscopic"), "gyroscop");
  EXPECT_EQ(PorterStem("adjustable"), "adjust");
  EXPECT_EQ(PorterStem("defensible"), "defens");
  EXPECT_EQ(PorterStem("irritant"), "irrit");
  EXPECT_EQ(PorterStem("replacement"), "replac");
  EXPECT_EQ(PorterStem("adjustment"), "adjust");
  EXPECT_EQ(PorterStem("dependent"), "depend");
  EXPECT_EQ(PorterStem("adoption"), "adopt");
  EXPECT_EQ(PorterStem("homologou"), "homolog");
  EXPECT_EQ(PorterStem("communism"), "commun");
  EXPECT_EQ(PorterStem("activate"), "activ");
  EXPECT_EQ(PorterStem("angulariti"), "angular");
  EXPECT_EQ(PorterStem("homologous"), "homolog");
  EXPECT_EQ(PorterStem("effective"), "effect");
  EXPECT_EQ(PorterStem("bowdlerize"), "bowdler");
}

TEST(PorterStemmerTest, Step5) {
  EXPECT_EQ(PorterStem("probate"), "probat");
  EXPECT_EQ(PorterStem("rate"), "rate");
  EXPECT_EQ(PorterStem("cease"), "ceas");
  EXPECT_EQ(PorterStem("controll"), "control");
  EXPECT_EQ(PorterStem("roll"), "roll");
}

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem(""), "");
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem("sky"), "sky");
}

TEST(PorterStemmerTest, RelatedWordsShareStems) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"connect", "connected"},   {"connect", "connecting"},
      {"connect", "connection"},  {"connect", "connections"},
      {"probe", "probed"},        {"argue", "argued"},
  };
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(PorterStem(a), PorterStem(b)) << a << " vs " << b;
  }
}

}  // namespace
}  // namespace irbuf::text
