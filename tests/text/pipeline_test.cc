#include "text/pipeline.h"

#include <gtest/gtest.h>

namespace irbuf::text {
namespace {

TEST(PipelineTest, PaperExampleQuery) {
  // Section 3.2.1: "drastic price increases in American stockmarkets"
  // becomes "drastic price increas american stockmarket".
  AnalysisPipeline pipeline = AnalysisPipeline::Default();
  auto terms =
      pipeline.Analyze("drastic price increases in American stockmarkets");
  ASSERT_EQ(terms.size(), 5u);
  EXPECT_EQ(terms[0], "drastic");
  EXPECT_EQ(terms[1], "price");
  EXPECT_EQ(terms[2], "increas");
  EXPECT_EQ(terms[3], "american");
  EXPECT_EQ(terms[4], "stockmarket");
}

TEST(PipelineTest, StopwordsRemovedBeforeStemming) {
  AnalysisPipeline pipeline = AnalysisPipeline::Default();
  auto terms = pipeline.Analyze("the prices of the fibers");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "price");
  EXPECT_EQ(terms[1], "fiber");
}

TEST(PipelineTest, OptionsDisableStages) {
  PipelineOptions options;
  options.remove_stopwords = false;
  options.stem = false;
  AnalysisPipeline pipeline(StopWordList::DefaultEnglish(), options);
  auto terms = pipeline.Analyze("the prices");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "the");
  EXPECT_EQ(terms[1], "prices");
}

TEST(PipelineTest, TermFrequenciesCountRepeats) {
  AnalysisPipeline pipeline = AnalysisPipeline::Default();
  auto freqs =
      pipeline.TermFrequencies("price prices pricing priced market");
  // "price", "prices", "priced" all stem to "price"; "pricing" stems to
  // "price" as well.
  ASSERT_EQ(freqs.count("price"), 1u);
  EXPECT_GE(freqs["price"], 3u);
  EXPECT_EQ(freqs["market"], 1u);
}

TEST(PipelineTest, EmptyInput) {
  AnalysisPipeline pipeline = AnalysisPipeline::Default();
  EXPECT_TRUE(pipeline.Analyze("").empty());
  EXPECT_TRUE(pipeline.TermFrequencies("the of and").empty());
}

}  // namespace
}  // namespace irbuf::text
