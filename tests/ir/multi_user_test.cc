#include "ir/multi_user.h"

#include <gtest/gtest.h>

#include "../core/test_index.h"
#include "ir/experiment.h"

namespace irbuf::ir {
namespace {

class MultiUserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tc_.emplace(core::MakeRandomCollection(123, 500, 18, 4));
    // Three users; users 0 and 1 share half their terms (overlapping
    // interests), user 2 is disjoint.
    sequences_.push_back(SequenceFor({0, 1, 2, 3, 4, 5, 6, 7, 8}));
    sequences_.push_back(SequenceFor({4, 5, 6, 7, 8, 9, 10, 11, 12}));
    sequences_.push_back(SequenceFor({13, 14, 15, 16, 17}));
  }

  workload::RefinementSequence SequenceFor(std::vector<TermId> terms) {
    core::Query q;
    for (TermId t : terms) q.AddTerm(t);
    auto seq = workload::BuildRefinementSequence(
        "user", q, tc_->index, workload::RefinementKind::kAddOnly);
    EXPECT_TRUE(seq.ok());
    return std::move(seq).value();
  }

  std::optional<core::TestCollection> tc_;
  std::vector<workload::RefinementSequence> sequences_;
};

TEST_F(MultiUserTest, RunsEveryUsersSteps) {
  MultiUserOptions options;
  options.buffer_pages = 16;
  auto result = RunMultiUserWorkload(tc_->index, sequences_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().users.size(), 3u);
  EXPECT_EQ(result.value().users[0].steps_run, sequences_[0].steps.size());
  EXPECT_EQ(result.value().users[2].steps_run, sequences_[2].steps.size());
  uint64_t sum = 0;
  for (const UserResult& ur : result.value().users) sum += ur.disk_reads;
  EXPECT_EQ(sum, result.value().total_disk_reads);
  EXPECT_GT(result.value().total_disk_reads, 0u);
}

TEST_F(MultiUserTest, Deterministic) {
  MultiUserOptions options;
  options.buffer_pages = 12;
  options.policy = buffer::PolicyKind::kRap;
  options.shared_context = true;
  auto a = RunMultiUserWorkload(tc_->index, sequences_, options);
  auto b = RunMultiUserWorkload(tc_->index, sequences_, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().total_disk_reads, b.value().total_disk_reads);
}

TEST_F(MultiUserTest, OverlappingUsersBenefitFromSharedPool) {
  // The paper's conjecture: "users may benefit from pages cached in
  // buffers for other users". User 1 shares five terms with user 0, so a
  // shared pool should serve user 1 partly from user 0's reads; compare
  // against running the users on isolated pools of the same total size...
  MultiUserOptions options;
  options.buffer_pages = 90;
  auto shared = RunMultiUserWorkload(tc_->index, sequences_, options);
  ASSERT_TRUE(shared.ok());

  uint64_t isolated_reads = 0;
  for (const workload::RefinementSequence& seq : sequences_) {
    SequenceRunOptions iso;
    iso.buffer_pages = 30;  // A third of the shared pool each.
    auto run = RunRefinementSequence(tc_->index, seq, {}, iso);
    ASSERT_TRUE(run.ok());
    isolated_reads += run.value().total_disk_reads;
  }
  EXPECT_LT(shared.value().total_disk_reads, isolated_reads);
}

TEST_F(MultiUserTest, SharedContextProtectsOtherUsersPages) {
  // With per-query RAP, user A's pages have value 0 while user B runs and
  // are evicted first; the shared context keeps them valued. Under
  // contention the shared variant must not be worse.
  MultiUserOptions per_query;
  per_query.buffer_pages = 24;
  per_query.policy = buffer::PolicyKind::kRap;
  per_query.shared_context = false;
  MultiUserOptions shared = per_query;
  shared.shared_context = true;

  auto a = RunMultiUserWorkload(tc_->index, sequences_, per_query);
  auto b = RunMultiUserWorkload(tc_->index, sequences_, shared);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b.value().total_disk_reads, a.value().total_disk_reads);
}

TEST_F(MultiUserTest, HitRateAccounting) {
  MultiUserOptions options;
  options.buffer_pages = 4096;  // Everything fits: later steps all hit.
  auto result = RunMultiUserWorkload(tc_->index, sequences_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().HitRate(), 0.3);
  EXPECT_EQ(result.value().total_fetches - result.value().total_hits,
            result.value().total_disk_reads);
}

TEST_F(MultiUserTest, EmptyWorkload) {
  MultiUserOptions options;
  auto result = RunMultiUserWorkload(tc_->index, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().total_disk_reads, 0u);
  EXPECT_TRUE(result.value().users.empty());
}

}  // namespace
}  // namespace irbuf::ir
