#include "ir/experiment.h"

#include <gtest/gtest.h>

#include "../core/test_index.h"
#include "workload/refinement.h"

namespace irbuf::ir {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tc_.emplace(core::MakeRandomCollection(99, 400, 12, 4));
    core::Query q;
    for (TermId t = 0; t < 12; ++t) q.AddTerm(t, 1 + t % 2);
    auto seq = workload::BuildRefinementSequence(
        "test", q, tc_->index, workload::RefinementKind::kAddOnly);
    ASSERT_TRUE(seq.ok());
    sequence_ = std::move(seq).value();
  }

  std::optional<core::TestCollection> tc_;
  workload::RefinementSequence sequence_;
};

TEST_F(ExperimentTest, RunsAllSteps) {
  SequenceRunOptions options;
  options.buffer_pages = 8;
  auto result = RunRefinementSequence(tc_->index, sequence_, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().steps.size(), sequence_.steps.size());
  uint64_t sum = 0;
  for (const StepResult& s : result.value().steps) sum += s.disk_reads;
  EXPECT_EQ(sum, result.value().total_disk_reads);
  EXPECT_GT(result.value().total_disk_reads, 0u);
}

TEST_F(ExperimentTest, UnlimitedBuffersNeverRereadWithin) {
  // With buffers >= working set, total reads equal the working set size
  // (each page read exactly once across the whole ADD-ONLY sequence).
  uint64_t ws = SequenceWorkingSetPages(tc_->index, sequence_);
  SequenceRunOptions options;
  options.buffer_pages = ws + 4;
  options.c_ins = 0.0;  // Full evaluation: every page touched.
  options.c_add = 0.0;
  auto result = RunRefinementSequence(tc_->index, sequence_, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().total_disk_reads, ws);
}

TEST_F(ExperimentTest, MoreBuffersNeverHurtLru) {
  SequenceRunOptions small;
  small.buffer_pages = 4;
  SequenceRunOptions big;
  big.buffer_pages = 64;
  auto r_small = RunRefinementSequence(tc_->index, sequence_, {}, small);
  auto r_big = RunRefinementSequence(tc_->index, sequence_, {}, big);
  ASSERT_TRUE(r_small.ok());
  ASSERT_TRUE(r_big.ok());
  EXPECT_LE(r_big.value().total_disk_reads,
            r_small.value().total_disk_reads);
}

TEST_F(ExperimentTest, EffectivenessReportedWhenJudgmentsGiven) {
  std::vector<DocId> relevant;
  // Use the full-eval top docs of the final query as "relevant".
  core::EvalOptions full;
  full.c_ins = 0.0;
  full.c_add = 0.0;
  auto gold = RunColdQuery(tc_->index, sequence_.steps.back().query, full);
  ASSERT_TRUE(gold.ok());
  for (const core::ScoredDoc& sd : gold.value().top_docs) {
    relevant.push_back(sd.doc);
  }
  std::sort(relevant.begin(), relevant.end());

  SequenceRunOptions options;
  options.buffer_pages = 16;
  auto result =
      RunRefinementSequence(tc_->index, sequence_, relevant, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().mean_avg_precision, 0.0);
  EXPECT_GT(result.value().steps.back().avg_precision, 0.0);
}

TEST_F(ExperimentTest, TotalQueryPagesSumsLexicon) {
  core::Query q;
  q.AddTerm(0);
  q.AddTerm(3);
  uint64_t expected = tc_->index.lexicon().info(0).pages +
                      tc_->index.lexicon().info(3).pages;
  EXPECT_EQ(TotalQueryPages(tc_->index, q), expected);
}

TEST_F(ExperimentTest, WorkingSetCountsDistinctTermsOnce) {
  uint64_t ws = SequenceWorkingSetPages(tc_->index, sequence_);
  // ADD-ONLY's last step contains every term of the sequence.
  EXPECT_EQ(ws, TotalQueryPages(tc_->index, sequence_.steps.back().query));
}

TEST_F(ExperimentTest, ColdQueryIsReproducible) {
  core::EvalOptions eval;
  auto a = RunColdQuery(tc_->index, sequence_.steps[1].query, eval);
  auto b = RunColdQuery(tc_->index, sequence_.steps[1].query, eval);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().disk_reads, b.value().disk_reads);
  ASSERT_EQ(a.value().top_docs.size(), b.value().top_docs.size());
  for (size_t i = 0; i < a.value().top_docs.size(); ++i) {
    EXPECT_EQ(a.value().top_docs[i].doc, b.value().top_docs[i].doc);
  }
}

}  // namespace
}  // namespace irbuf::ir
