#include "ir/refinement_session.h"

#include <gtest/gtest.h>

#include "corpus/text_corpus.h"

namespace irbuf::ir {
namespace {

class RefinementSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pipeline_.emplace(text::AnalysisPipeline::Default());
    auto index = corpus::BuildIndexFromDocuments(
        corpus::EmbeddedNewsCorpus(), *pipeline_, 8);
    ASSERT_TRUE(index.ok());
    index_.emplace(std::move(index).value());
    IrSystemOptions options;
    options.buffer_pages = 32;
    options.policy = buffer::PolicyKind::kRap;
    options.eval.buffer_aware = true;
    options.eval.top_n = 5;
    system_.emplace(&*index_, options);
  }

  std::optional<text::AnalysisPipeline> pipeline_;
  std::optional<index::InvertedIndex> index_;
  std::optional<IrSystem> system_;
};

TEST_F(RefinementSessionTest, AddTextThenSubmit) {
  RefinementSession session(&*system_);
  session.AddText("health hazards", *pipeline_);
  EXPECT_EQ(session.query().size(), 2u);
  auto step = session.Submit();
  ASSERT_TRUE(step.ok());
  EXPECT_FALSE(step.value().top_docs.empty());
  EXPECT_EQ(session.history().size(), 1u);
}

TEST_F(RefinementSessionTest, RefinementReusesBuffers) {
  RefinementSession session(&*system_);
  session.AddText("health hazards from fibers", *pipeline_);
  auto first = session.Submit();
  ASSERT_TRUE(first.ok());
  // Add a term and resubmit: the original lists are buffered, so the
  // second submission reads at most a few new pages.
  session.AddText("asbestos", *pipeline_);
  auto second = session.Submit();
  ASSERT_TRUE(second.ok());
  EXPECT_LE(second.value().disk_reads, first.value().disk_reads);
  EXPECT_EQ(session.total_disk_reads(),
            first.value().disk_reads + second.value().disk_reads);
  // The fiber-hazards document stays the top answer.
  EXPECT_EQ(second.value().top_docs[0].doc, 4u);
}

TEST_F(RefinementSessionTest, RemoveTermShrinksQuery) {
  RefinementSession session(&*system_);
  session.AddText("price increases", *pipeline_);
  ASSERT_EQ(session.query().size(), 2u);
  TermId price = index_->lexicon().Find("price").value();
  EXPECT_TRUE(session.RemoveTerm(price));
  EXPECT_FALSE(session.RemoveTerm(price));
  EXPECT_EQ(session.query().size(), 1u);
  auto step = session.Submit();
  ASSERT_TRUE(step.ok());
}

TEST_F(RefinementSessionTest, HistoryRecordsEachSubmission) {
  RefinementSession session(&*system_);
  session.AddText("stock markets", *pipeline_);
  ASSERT_TRUE(session.Submit().ok());
  session.AddText("volatility", *pipeline_);
  ASSERT_TRUE(session.Submit().ok());
  ASSERT_EQ(session.history().size(), 2u);
  EXPECT_LT(session.history()[0].query.size(),
            session.history()[1].query.size());
}

TEST_F(RefinementSessionTest, EmptyQuerySubmitsCleanly) {
  RefinementSession session(&*system_);
  auto step = session.Submit();
  ASSERT_TRUE(step.ok());
  EXPECT_TRUE(step.value().top_docs.empty());
  EXPECT_EQ(step.value().disk_reads, 0u);
}

}  // namespace
}  // namespace irbuf::ir
