#include "ir/ir_system.h"

#include <gtest/gtest.h>

#include "corpus/text_corpus.h"

namespace irbuf::ir {
namespace {

class IrSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pipeline_.emplace(text::AnalysisPipeline::Default());
    auto index = corpus::BuildIndexFromDocuments(
        corpus::EmbeddedNewsCorpus(), *pipeline_, 8);
    ASSERT_TRUE(index.ok());
    index_.emplace(std::move(index).value());
  }

  std::optional<text::AnalysisPipeline> pipeline_;
  std::optional<index::InvertedIndex> index_;
};

TEST_F(IrSystemTest, SearchReturnsRankedAnswers) {
  IrSystemOptions options;
  options.buffer_pages = 32;
  options.eval.top_n = 5;
  IrSystem system(&*index_, options);
  auto result = system.Search("stock market prices", *pipeline_);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().top_docs.empty());
  EXPECT_LE(result.value().top_docs.size(), 5u);
  // Scores descend.
  for (size_t i = 1; i < result.value().top_docs.size(); ++i) {
    EXPECT_GE(result.value().top_docs[i - 1].score,
              result.value().top_docs[i].score);
  }
}

TEST_F(IrSystemTest, BuffersPersistAcrossSearches) {
  IrSystemOptions options;
  options.buffer_pages = 64;
  IrSystem system(&*index_, options);
  ASSERT_TRUE(system.Search("satellite launch contract", *pipeline_).ok());
  uint64_t misses_after_first = system.buffers().stats().misses;
  // The same query again: everything buffered.
  ASSERT_TRUE(system.Search("satellite launch contract", *pipeline_).ok());
  EXPECT_EQ(system.buffers().stats().misses, misses_after_first);

  system.FlushBuffers();
  ASSERT_TRUE(system.Search("satellite launch contract", *pipeline_).ok());
  EXPECT_GT(system.buffers().stats().misses, misses_after_first);
}

TEST_F(IrSystemTest, PolicyAndAlgorithmConfigurable) {
  IrSystemOptions options;
  options.buffer_pages = 16;
  options.policy = buffer::PolicyKind::kRap;
  options.eval.buffer_aware = true;
  IrSystem system(&*index_, options);
  EXPECT_STREQ(system.buffers().policy_name(), "RAP");
  auto result = system.Search("drastic price increases", *pipeline_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().top_docs.empty());
}

TEST_F(IrSystemTest, UnknownTermsYieldEmptyResult) {
  IrSystem system(&*index_, IrSystemOptions{});
  auto result = system.Search("zzzz qqqq", *pipeline_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().top_docs.empty());
}

}  // namespace
}  // namespace irbuf::ir
