// EvalControl work budgets — the serve layer's brownout rungs. Rung 1
// (max_terms) forfeits the tail of the processing order exactly like a
// deadline does; rung 2 (max_pages_per_term) truncates each list with
// per-page bound accounting. Both must be honest (quality_bound covers
// everything trimmed, to the bit) and both must be perfect no-ops at 0.

#include <gtest/gtest.h>

#include <vector>

#include "core/filtering_evaluator.h"
#include "core/scorer.h"
#include "test_index.h"

namespace irbuf::core {
namespace {

core::Query WideQuery(uint32_t num_terms) {
  core::Query q;
  for (TermId t = 0; t < num_terms; ++t) q.AddTerm(t, 1 + t % 2);
  return q;
}

// ---- Rung 1: max_terms forfeits the DF tail, bound bit-exact. ----

TEST(EvalBudgetTest, MaxTermsForfeitsDfTailExactly) {
  TestCollection tc = MakeRandomCollection(601, 200, 8, 3);
  const Query q = WideQuery(8);
  EvalOptions eval;
  eval.c_ins = 0.0;  // Thresholds off: the comparison below is exact.
  eval.c_add = 0.0;
  eval.top_n = 15;
  FilteringEvaluator evaluator(&tc.index, eval);

  EvalControl control;
  control.max_terms = 3;
  buffer::BufferManager pool(&tc.index.disk(), 16,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto r = evaluator.Evaluate(q, &pool, &control);
  ASSERT_TRUE(r.ok());
  const EvalResult& er = r.value();
  EXPECT_TRUE(er.work_trimmed);
  EXPECT_TRUE(er.degraded);
  EXPECT_FALSE(er.deadline_hit);  // The server trimmed, not the clock.

  // The forfeited terms are exactly the DF-order tail; their charge is
  // the same per-term w(fmax, idf) * w_qt a deadline forfeit uses,
  // accumulated in the same order — exact equality, not epsilon.
  const std::vector<QueryTerm> order = DfTermOrder(q, tc.index.lexicon());
  double expected_bound = 0.0;
  for (size_t i = control.max_terms; i < order.size(); ++i) {
    const index::TermInfo& info = tc.index.lexicon().info(order[i].term);
    expected_bound += DocTermWeight(info.fmax, info.idf) *
                      QueryTermWeight(order[i].fq, info.idf);
  }
  EXPECT_EQ(er.quality_bound, expected_bound);

  // The answer equals evaluating only the surviving prefix.
  Query prefix;
  for (size_t i = 0; i < control.max_terms; ++i) {
    prefix.AddTerm(order[i].term, order[i].fq);
  }
  const auto reference = BruteForceRanking(tc, prefix, 15);
  ASSERT_EQ(er.top_docs.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(er.top_docs[i].doc, reference[i].doc) << "rank " << i;
    EXPECT_NEAR(er.top_docs[i].score, reference[i].score, 1e-9);
  }
}

TEST(EvalBudgetTest, MaxTermsCapsBafRounds) {
  TestCollection tc = MakeRandomCollection(607, 180, 8, 3);
  EvalOptions eval;
  eval.buffer_aware = true;
  eval.record_trace = true;
  FilteringEvaluator evaluator(&tc.index, eval);

  EvalControl control;
  control.max_terms = 2;
  buffer::BufferManager pool(&tc.index.disk(), 16,
                             buffer::MakePolicy(buffer::PolicyKind::kRap));
  auto r = evaluator.Evaluate(WideQuery(8), &pool, &control);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().work_trimmed);
  EXPECT_TRUE(r.value().degraded);
  EXPECT_GT(r.value().quality_bound, 0.0);
  // At most two BAF rounds actually evaluated a term.
  EXPECT_LE(r.value().trace.size(), 2u);
}

// ---- Rung 2: max_pages_per_term truncates lists, bound bit-exact. ----

TEST(EvalBudgetTest, MaxPagesPerTermTruncatesWithPageBounds) {
  TestCollection tc = MakeRandomCollection(613, 220, 6, 3);
  const Query q = WideQuery(6);
  EvalOptions eval;
  eval.c_ins = 0.0;
  eval.c_add = 0.0;
  eval.record_trace = true;
  FilteringEvaluator evaluator(&tc.index, eval);

  EvalControl control;
  control.max_pages_per_term = 2;
  buffer::BufferManager pool(&tc.index.disk(), 16,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto r = evaluator.Evaluate(q, &pool, &control);
  ASSERT_TRUE(r.ok());
  const EvalResult& er = r.value();
  EXPECT_TRUE(er.work_trimmed);
  EXPECT_TRUE(er.degraded);
  EXPECT_GT(er.pages_trimmed, 0u);

  // Per term: at most 2 pages touched, the rest charged per page at
  // PageMaxWeight * w_qt — replicate the evaluator's own accumulation
  // order (DF term order, then page order) for exact equality.
  double expected_bound = 0.0;
  uint32_t expected_trimmed = 0;
  for (const QueryTerm& qt : DfTermOrder(q, tc.index.lexicon())) {
    const index::TermInfo& info = tc.index.lexicon().info(qt.term);
    const double wq = QueryTermWeight(qt.fq, info.idf);
    for (uint32_t p = control.max_pages_per_term; p < info.pages; ++p) {
      expected_bound += tc.index.disk().PageMaxWeight(PageId{qt.term, p}) * wq;
    }
    if (info.pages > control.max_pages_per_term) {
      expected_trimmed += info.pages - control.max_pages_per_term;
    }
  }
  EXPECT_EQ(er.quality_bound, expected_bound);
  EXPECT_EQ(er.pages_trimmed, expected_trimmed);
  for (const TermTrace& row : er.trace) {
    EXPECT_LE(row.pages_processed, 2u);
    const uint32_t total = tc.index.lexicon().info(row.term).pages;
    EXPECT_EQ(row.pages_trimmed,
              total > 2u ? total - 2u : 0u);
  }
}

// ---- TermwiseRun snapshots EvalControl by value. ----

// The sharded serve path Begins every shard's run with a stack-local
// EvalControl and explicitly allows abandoned straggler steps to
// execute after the coordinator's Evaluate returned — so a run that
// merely borrowed the pointer would dereference dead stack. The run
// must snapshot the control at Begin: clobbering (or destroying) the
// caller's copy afterwards changes nothing.
TEST(EvalBudgetTest, TermwiseRunCopiesControlByValue) {
  TestCollection tc = MakeRandomCollection(619, 220, 4, 3);
  const Query q = WideQuery(4);
  EvalOptions eval;
  eval.c_ins = 0.0;
  eval.c_add = 0.0;
  eval.record_trace = true;
  FilteringEvaluator evaluator(&tc.index, eval);
  buffer::BufferManager pool(&tc.index.disk(), 16,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));

  FilteringEvaluator::TermwiseRun run(&evaluator, &pool);
  {
    EvalControl control;
    control.max_pages_per_term = 2;
    run.Begin(q, &control);
    control.max_pages_per_term = 0;  // Stale storage, reused.
  }  // ...and destroyed before the first Step.

  double smax = 0.0;
  for (const QueryTerm& qt : DfTermOrder(q, tc.index.lexicon())) {
    auto step = run.Step(qt, smax);
    ASSERT_TRUE(step.ok());
    smax = step.value().smax;
  }
  const EvalResult er = run.Finish();
  // The page cap from Begin-time still governs every step.
  EXPECT_TRUE(er.work_trimmed);
  EXPECT_GT(er.pages_trimmed, 0u);
  for (const TermTrace& row : er.trace) {
    EXPECT_LE(row.pages_processed, 2u);
  }
}

// ---- Zero budgets are perfect no-ops. ----

TEST(EvalBudgetTest, ZeroBudgetsAreBitInvisible) {
  TestCollection tc = MakeRandomCollection(617, 180, 8, 3);
  const Query q = WideQuery(8);
  EvalOptions eval;
  FilteringEvaluator evaluator(&tc.index, eval);

  buffer::BufferManager plain_pool(
      &tc.index.disk(), 12, buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto plain = evaluator.Evaluate(q, &plain_pool);
  ASSERT_TRUE(plain.ok());

  EvalControl control;  // All budgets 0, no deadline.
  buffer::BufferManager pool(&tc.index.disk(), 12,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto r = evaluator.Evaluate(q, &pool, &control);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().work_trimmed);
  EXPECT_FALSE(r.value().degraded);
  EXPECT_EQ(r.value().pages_trimmed, 0u);
  EXPECT_EQ(r.value().disk_reads, plain.value().disk_reads);
  EXPECT_EQ(r.value().postings_processed, plain.value().postings_processed);
  ASSERT_EQ(r.value().top_docs.size(), plain.value().top_docs.size());
  for (size_t i = 0; i < r.value().top_docs.size(); ++i) {
    EXPECT_EQ(r.value().top_docs[i].doc, plain.value().top_docs[i].doc);
    EXPECT_EQ(r.value().top_docs[i].score, plain.value().top_docs[i].score);
  }
}

}  // namespace
}  // namespace irbuf::core
