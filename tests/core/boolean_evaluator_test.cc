#include "core/boolean_evaluator.h"

#include <gtest/gtest.h>

#include "test_index.h"

namespace irbuf::core {
namespace {

TestCollection BooleanCollection() {
  // Term 0: docs {1, 2, 3}. Term 1: docs {2, 3, 4}. Term 2: docs {5}.
  return MakeCollection(16, 2,
                        {{{1, 1}, {2, 2}, {3, 1}},
                         {{2, 1}, {3, 3}, {4, 1}},
                         {{5, 2}}});
}

TEST(BooleanEvaluatorTest, AndIntersects) {
  TestCollection tc = BooleanCollection();
  BooleanEvaluator evaluator(&tc.index);
  auto pool = MakeBigPool(tc);
  Query q;
  q.AddTerm(0);
  q.AddTerm(1);
  auto result = evaluator.Evaluate(q, BooleanOp::kAnd, &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().docs, (std::vector<DocId>{2, 3}));
}

TEST(BooleanEvaluatorTest, OrUnions) {
  TestCollection tc = BooleanCollection();
  BooleanEvaluator evaluator(&tc.index);
  auto pool = MakeBigPool(tc);
  Query q;
  q.AddTerm(0);
  q.AddTerm(2);
  auto result = evaluator.Evaluate(q, BooleanOp::kOr, &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().docs, (std::vector<DocId>{1, 2, 3, 5}));
}

TEST(BooleanEvaluatorTest, EmptyIntersection) {
  TestCollection tc = BooleanCollection();
  BooleanEvaluator evaluator(&tc.index);
  auto pool = MakeBigPool(tc);
  Query q;
  q.AddTerm(0);
  q.AddTerm(2);
  auto result = evaluator.Evaluate(q, BooleanOp::kAnd, &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().docs.empty());
}

TEST(BooleanEvaluatorTest, ReadsEveryPageOfEveryTerm) {
  // Boolean evaluation is safe: no filtering, all postings touched.
  TestCollection tc = BooleanCollection();
  BooleanEvaluator evaluator(&tc.index);
  auto pool = MakeBigPool(tc);
  Query q;
  q.AddTerm(0);
  q.AddTerm(1);
  q.AddTerm(2);
  auto result = evaluator.Evaluate(q, BooleanOp::kOr, &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().pages_processed, tc.index.total_pages());
  EXPECT_EQ(result.value().postings_processed, 7u);
}

TEST(BooleanEvaluatorTest, EmptyQuery) {
  TestCollection tc = BooleanCollection();
  BooleanEvaluator evaluator(&tc.index);
  auto pool = MakeBigPool(tc);
  auto result = evaluator.Evaluate(Query{}, BooleanOp::kAnd, &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().docs.empty());
  EXPECT_EQ(result.value().disk_reads, 0u);
}

}  // namespace
}  // namespace irbuf::core
