// Shared fixture for the evaluator tests: builds small indices from
// explicit posting lists and computes ground-truth cosine rankings by
// brute force, independently of the evaluator under test.

#ifndef IRBUF_TESTS_CORE_TEST_INDEX_H_
#define IRBUF_TESTS_CORE_TEST_INDEX_H_

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "core/query.h"
#include "index/index_builder.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace irbuf::core {

struct TestCollection {
  index::InvertedIndex index;
  /// Raw lists, term id -> postings (unsorted ok), for ground truth.
  std::vector<std::vector<Posting>> lists;
};

/// Builds an index over `lists` (term t named "t<t>").
inline TestCollection MakeCollection(uint32_t num_docs, uint32_t page_size,
                                     std::vector<std::vector<Posting>> lists) {
  index::IndexBuilderOptions options;
  options.page_size = page_size;
  options.num_docs = num_docs;
  index::IndexBuilder builder(options);
  for (size_t t = 0; t < lists.size(); ++t) {
    auto id = builder.AddTermPostings("t" + std::to_string(t), lists[t]);
    if (!id.ok() || id.value() != t) std::abort();
  }
  auto index = std::move(builder).Build();
  if (!index.ok()) std::abort();
  return TestCollection{std::move(index).value(), std::move(lists)};
}

/// A random collection with Zipf-ish lists; deterministic in `seed`.
inline TestCollection MakeRandomCollection(uint64_t seed, uint32_t num_docs,
                                           uint32_t num_terms,
                                           uint32_t page_size) {
  Pcg32 rng(seed);
  std::vector<std::vector<Posting>> lists(num_terms);
  for (uint32_t t = 0; t < num_terms; ++t) {
    uint32_t ft = 1 + rng.NextBounded(num_docs - 1);
    TruncatedGeometric freq(0.55, 40);
    for (DocId d : SampleDistinct(num_docs, ft, &rng)) {
      lists[t].push_back(Posting{d, freq.Sample(&rng)});
    }
  }
  return MakeCollection(num_docs, page_size, std::move(lists));
}

/// Ground truth: full cosine ranking of `query` over the raw lists.
inline std::vector<ScoredDoc> BruteForceRanking(const TestCollection& tc,
                                                const Query& query,
                                                uint32_t n) {
  std::map<DocId, double> scores;
  for (const QueryTerm& qt : query.terms()) {
    const double idf = tc.index.lexicon().info(qt.term).idf;
    for (const Posting& p : tc.lists[qt.term]) {
      scores[p.doc] += static_cast<double>(p.freq) * idf *
                       static_cast<double>(qt.fq) * idf;
    }
  }
  std::vector<ScoredDoc> ranked;
  for (auto& [doc, acc] : scores) {
    double norm = tc.index.doc_norm(doc);
    ranked.push_back(ScoredDoc{doc, norm > 0.0 ? acc / norm : 0.0});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (ranked.size() > n) ranked.resize(n);
  return ranked;
}

/// A buffer pool big enough that replacement never happens.
inline buffer::BufferManager MakeBigPool(const TestCollection& tc) {
  return buffer::BufferManager(&tc.index.disk(),
                               tc.index.total_pages() + 1,
                               buffer::MakePolicy(buffer::PolicyKind::kLru));
}

}  // namespace irbuf::core

#endif  // IRBUF_TESTS_CORE_TEST_INDEX_H_
