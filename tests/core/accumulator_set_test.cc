// Unit tests for the open-addressing AccumulatorSet: adversarial DocId
// patterns for the hash/probe machinery, and a reference-model
// differential against std::unordered_map — size() is the paper's
// memory metric, so the table must agree with the map it replaced
// op-for-op, not just at the end.

#include "core/accumulator_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace irbuf::core {
namespace {

TEST(AccumulatorSetTest, FindOnEmptySetIsNull) {
  AccumulatorSet acc;
  EXPECT_EQ(acc.FindOrNull(0), nullptr);
  EXPECT_EQ(acc.FindOrNull(123456), nullptr);
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.size(), 0u);
}

TEST(AccumulatorSetTest, SentinelIdNeverAliasesEmptySlots) {
  // 0xFFFFFFFF is the empty-slot sentinel. Probing it must miss, not
  // hand back an unoccupied slot's value (doc ids come from gap sums
  // over decoded pages, so a corrupt page can reach this id).
  AccumulatorSet acc;
  EXPECT_EQ(acc.FindOrNull(0xFFFFFFFFu), nullptr);
  for (DocId d = 0; d < 100; ++d) acc.FindOrInsert(d) = 1.0;
  EXPECT_EQ(acc.FindOrNull(0xFFFFFFFFu), nullptr);
  EXPECT_EQ(acc.size(), 100u);
}

TEST(AccumulatorSetTest, FindOrInsertCreatesZeroInitialized) {
  AccumulatorSet acc;
  double& a = acc.FindOrInsert(7);
  EXPECT_EQ(a, 0.0);
  a += 2.5;
  EXPECT_EQ(acc.FindOrInsert(7), 2.5);  // Same slot, not a new one.
  EXPECT_EQ(acc.size(), 1u);
}

TEST(AccumulatorSetTest, InsertKeepsExistingValueLikeEmplace) {
  AccumulatorSet acc;
  acc.Insert(3, 1.5);
  // unordered_map::emplace semantics: a duplicate insert is a no-op
  // that returns the existing accumulator.
  EXPECT_EQ(acc.Insert(3, 99.0), 1.5);
  EXPECT_EQ(acc.size(), 1u);
}

TEST(AccumulatorSetTest, GrowsUnderDenseIds) {
  AccumulatorSet acc;
  for (DocId d = 0; d < 10000; ++d) {
    acc.FindOrInsert(d) = static_cast<double>(d);
  }
  ASSERT_EQ(acc.size(), 10000u);
  for (DocId d = 0; d < 10000; ++d) {
    double* a = acc.FindOrNull(d);
    ASSERT_NE(a, nullptr) << d;
    EXPECT_EQ(*a, static_cast<double>(d));
  }
  EXPECT_EQ(acc.FindOrNull(10000), nullptr);
}

TEST(AccumulatorSetTest, GrowsUnderStrideAliasingIds) {
  // Stride-2^k ids alias catastrophically under mask-the-low-bits
  // hashing; the Fibonacci multiplier must keep probe chains short
  // enough that this completes instantly and correctly.
  for (DocId stride : {256u, 1024u, 65536u}) {
    AccumulatorSet acc;
    for (DocId i = 0; i < 4000; ++i) {
      acc.FindOrInsert(i * stride) = static_cast<double>(i);
    }
    ASSERT_EQ(acc.size(), 4000u) << "stride " << stride;
    for (DocId i = 0; i < 4000; ++i) {
      double* a = acc.FindOrNull(i * stride);
      ASSERT_NE(a, nullptr) << "stride " << stride << " i " << i;
      EXPECT_EQ(*a, static_cast<double>(i));
    }
    EXPECT_EQ(acc.FindOrNull(7), nullptr);
  }
}

TEST(AccumulatorSetTest, RandomIdsSurviveRehashes) {
  Pcg32 rng(5150);
  AccumulatorSet acc;
  std::unordered_map<DocId, double> reference;
  for (int i = 0; i < 20000; ++i) {
    const DocId d = rng.NextU32() & 0x7FFFFFFFu;
    const double w = static_cast<double>(rng.NextBounded(1000)) / 7.0;
    acc.FindOrInsert(d) += w;
    reference[d] += w;
  }
  ASSERT_EQ(acc.size(), reference.size());
  for (const auto& [d, v] : reference) {
    double* a = acc.FindOrNull(d);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(*a, v);
  }
}

TEST(AccumulatorSetTest, IterationVisitsEveryAccumulatorOnce) {
  AccumulatorSet acc;
  for (DocId d = 0; d < 500; ++d) acc.FindOrInsert(d * 3) = d * 0.5;
  std::vector<std::pair<DocId, double>> seen;
  for (const auto& [doc, val] : acc) seen.emplace_back(doc, val);
  ASSERT_EQ(seen.size(), 500u);
  std::sort(seen.begin(), seen.end());
  for (DocId d = 0; d < 500; ++d) {
    EXPECT_EQ(seen[d].first, d * 3);
    EXPECT_EQ(seen[d].second, d * 0.5);
  }
}

TEST(AccumulatorSetTest, ClearKeepsTableUsable) {
  AccumulatorSet acc;
  for (DocId d = 0; d < 1000; ++d) acc.FindOrInsert(d) = 1.0;
  acc.Clear();
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.begin(), acc.end());
  EXPECT_EQ(acc.FindOrNull(5), nullptr);
  acc.FindOrInsert(5) = 2.0;
  EXPECT_EQ(acc.size(), 1u);
}

// Replays a DF-shaped op trace — the Find / conditional-Insert /
// accumulate mix the filtering evaluator issues, with the skewed doc
// distribution a real posting stream has — against the unordered_map
// the table replaced. size() (the paper's memory metric) and every
// accumulator value must match at each term boundary.
TEST(AccumulatorSetTest, SizeMatchesMapOnRecordedDfTrace) {
  Pcg32 rng(1998);
  AccumulatorSet acc;
  std::unordered_map<DocId, double> reference;
  for (int term = 0; term < 12; ++term) {
    const double wq = 0.25 + 0.125 * term;
    const bool add_only = term % 3 == 2;  // Past the insert threshold.
    const int postings = 200 + static_cast<int>(rng.NextBounded(1800));
    for (int i = 0; i < postings; ++i) {
      // Zipf-ish doc skew: small ids recur across terms, as hot
      // documents do in a real collection.
      DocId d = rng.NextBounded(512);
      if (rng.NextBounded(4) == 0) d = rng.NextBounded(100000);
      const double w = wq * (1 + rng.NextBounded(20));
      if (add_only) {
        if (double* a = acc.FindOrNull(d)) *a += w;
        if (auto it = reference.find(d); it != reference.end()) {
          it->second += w;
        }
      } else {
        acc.FindOrInsert(d) += w;
        reference[d] += w;
      }
    }
    ASSERT_EQ(acc.size(), reference.size()) << "after term " << term;
  }
  for (const auto& [d, v] : reference) {
    double* a = acc.FindOrNull(d);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(*a, v);
  }
}

// Regression pin for the amortized-alloc contract on
// AccumulatorSet::Grow (the analyzer trusts the annotation; this test
// keeps it honest): doubling growth means at most ~log2(N) + 1
// reallocations over N inserts, so the per-posting cost inside the
// evaluator hot loops stays O(1) amortized. A switch to, say,
// fixed-increment growth would blow the bound immediately.
TEST(AccumulatorSetTest, GrowthIsAmortizedDoubling) {
  AccumulatorSet acc;
  constexpr int kInserts = 100000;
  int reallocations = 0;
  const double* watched = nullptr;
  for (int i = 0; i < kInserts; ++i) {
    acc.Insert(static_cast<DocId>(i), 1.0);
    const double* now = acc.FindOrNull(0);
    ASSERT_NE(now, nullptr);
    if (now != watched) {
      ++reallocations;
      watched = now;
    }
  }
  // log2(100000) ~= 17; the first observation also counts as a
  // "change" from nullptr. Leave a little slack, but far below any
  // linear-growth regime (which would be in the thousands).
  EXPECT_LE(reallocations, 20);
}

}  // namespace
}  // namespace irbuf::core
