#include "core/quit_continue_evaluator.h"

#include <gtest/gtest.h>

#include "obs/query_tracer.h"

#include "test_index.h"

namespace irbuf::core {
namespace {

TEST(QuitContinueTest, UnlimitedBudgetMatchesBruteForce) {
  TestCollection tc = MakeRandomCollection(77, 80, 8, 4);
  Query q;
  q.AddTerm(0, 1);
  q.AddTerm(2, 2);
  q.AddTerm(5, 1);
  QuitContinueOptions options;
  options.accumulator_limit = 1000000;
  options.top_n = 100;
  QuitContinueEvaluator evaluator(&tc.index, options);
  auto pool = MakeBigPool(tc);
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  auto expected = BruteForceRanking(tc, q, 100);
  ASSERT_EQ(result.value().top_docs.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.value().top_docs[i].doc, expected[i].doc);
    EXPECT_NEAR(result.value().top_docs[i].score, expected[i].score, 1e-9);
  }
}

TEST(QuitContinueTest, LimitBoundsAccumulators) {
  TestCollection tc = MakeRandomCollection(78, 200, 8, 4);
  Query q;
  for (TermId t = 0; t < 8; ++t) q.AddTerm(t);
  for (LimitMode mode : {LimitMode::kQuit, LimitMode::kContinue}) {
    QuitContinueOptions options;
    options.accumulator_limit = 25;
    options.mode = mode;
    QuitContinueEvaluator evaluator(&tc.index, options);
    auto pool = MakeBigPool(tc);
    auto result = evaluator.Evaluate(q, &pool);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().accumulators, 25u);
  }
}

TEST(QuitContinueTest, QuitStopsReadingButContinueDoesNot) {
  TestCollection tc = MakeRandomCollection(79, 300, 10, 4);
  Query q;
  for (TermId t = 0; t < 10; ++t) q.AddTerm(t);

  QuitContinueOptions quit;
  quit.accumulator_limit = 10;
  quit.mode = LimitMode::kQuit;
  QuitContinueOptions cont = quit;
  cont.mode = LimitMode::kContinue;

  auto pool1 = MakeBigPool(tc);
  auto pool2 = MakeBigPool(tc);
  auto rquit = QuitContinueEvaluator(&tc.index, quit).Evaluate(q, &pool1);
  auto rcont = QuitContinueEvaluator(&tc.index, cont).Evaluate(q, &pool2);
  ASSERT_TRUE(rquit.ok());
  ASSERT_TRUE(rcont.ok());
  // Quit aborts as soon as the budget fills: far less I/O.
  EXPECT_LT(rquit.value().pages_processed,
            rcont.value().pages_processed);
  // Continue reads every page of every list.
  uint64_t all_pages = 0;
  for (const QueryTerm& qt : q.terms()) {
    all_pages += tc.index.lexicon().info(qt.term).pages;
  }
  EXPECT_EQ(rcont.value().pages_processed, all_pages);
}

TEST(QuitContinueTest, ContinueScoresExistingCandidatesFully) {
  // One doc appears in both lists; with limit 1 and the high-idf list
  // first, that doc's accumulator must still receive the second term's
  // contribution under Continue.
  TestCollection tc = MakeCollection(
      64, 4, {{{7, 5}}, {{3, 2}, {7, 4}, {9, 1}}});
  Query q;
  q.AddTerm(0, 1);  // idf 6: processed first, inserts doc 7.
  q.AddTerm(1, 1);
  QuitContinueOptions options;
  options.accumulator_limit = 1;
  options.mode = LimitMode::kContinue;
  QuitContinueEvaluator evaluator(&tc.index, options);
  auto pool = MakeBigPool(tc);
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().top_docs.size(), 1u);
  EXPECT_EQ(result.value().top_docs[0].doc, 7u);
  // Score includes both terms: (5*idf0)*(1*idf0) + (4*idf1)*(1*idf1),
  // normalized by W_7.
  const double idf0 = tc.index.lexicon().info(0).idf;
  const double idf1 = tc.index.lexicon().info(1).idf;
  const double expected =
      (5 * idf0 * idf0 + 4 * idf1 * idf1) / tc.index.doc_norm(7);
  EXPECT_NEAR(result.value().top_docs[0].score, expected, 1e-9);
}

TEST(QuitContinueTest, WorksOnDocumentOrderedIndexes) {
  index::IndexBuilderOptions builder_options;
  builder_options.page_size = 3;
  builder_options.num_docs = 100;
  builder_options.order = index::ListOrder::kDocumentOrdered;
  index::IndexBuilder builder(builder_options);
  ASSERT_TRUE(builder
                  .AddTermPostings("x", {{9, 1}, {2, 7}, {50, 3}, {11, 2}})
                  .ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().order(), index::IndexListOrder::kDocumentOrdered);

  Query q;
  q.AddTerm(0);
  QuitContinueOptions options;
  options.top_n = 10;
  QuitContinueEvaluator evaluator(&index.value(), options);
  buffer::BufferManager pool(&index.value().disk(), 8,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().top_docs.size(), 4u);
  EXPECT_EQ(result.value().top_docs[0].doc, 2u);  // Highest freq.
}

// Regression pin for the one-shot grow->quit / grow->capped trace
// event: the limit_hit latch in QuitContinueEvaluator::Evaluate keeps
// the tracer's Phase push_back off the steady-state posting path (it
// is the justification for the analyzer's allow(hot-alloc-ast)
// exemption there). At most ONE kPhase event may fire per query, no
// matter how many postings hit the budget check.
TEST(QuitContinueTest, BudgetPhaseTraceFiresAtMostOncePerQuery) {
  TestCollection tc = MakeRandomCollection(79, 200, 8, 4);
  Query q;
  for (TermId t = 0; t < 8; ++t) q.AddTerm(t);
  for (LimitMode mode : {LimitMode::kQuit, LimitMode::kContinue}) {
    obs::QueryTracer tracer;
    QuitContinueOptions options;
    options.accumulator_limit = 10;  // hit early and often
    options.mode = mode;
    options.tracer = &tracer;
    QuitContinueEvaluator evaluator(&tc.index, options);
    auto pool = MakeBigPool(tc);
    ASSERT_TRUE(evaluator.Evaluate(q, &pool).ok());
    auto phase_count = [&tracer] {
      size_t n = 0;
      for (const obs::TraceEvent& e : tracer.events()) {
        if (e.kind == obs::TraceEventKind::kPhase) ++n;
      }
      return n;
    };
    EXPECT_EQ(phase_count(), 1u);
    // The latch is per query, not per evaluator: a second query gets
    // its own single transition event.
    ASSERT_TRUE(evaluator.Evaluate(q, &pool).ok());
    EXPECT_EQ(phase_count(), 2u);
  }
}

}  // namespace
}  // namespace irbuf::core
