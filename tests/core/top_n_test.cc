#include "core/top_n.h"

#include <gtest/gtest.h>

#include "test_index.h"

namespace irbuf::core {
namespace {

TestCollection TwoDocCollection() {
  // doc 0: freq 3 of term 0 (idf log2(4/2)=1); doc 1: freq 1.
  // doc 2: freq 4 of term 1 (idf 1).
  return MakeCollection(4, 404,
                        {{{0, 3}, {1, 1}}, {{2, 4}, {3, 1}}});
}

TEST(TopNTest, NormalizesByDocNorm) {
  TestCollection tc = TwoDocCollection();
  AccumulatorSet acc;
  acc.Insert(0, 9.0);
  acc.Insert(1, 9.0);
  auto top = SelectTopN(acc, tc.index, 10);
  ASSERT_EQ(top.size(), 2u);
  // W_0 = 3, W_1 = 1 -> doc 1 ranks first with score 9.
  EXPECT_EQ(top[0].doc, 1u);
  EXPECT_DOUBLE_EQ(top[0].score, 9.0);
  EXPECT_EQ(top[1].doc, 0u);
  EXPECT_DOUBLE_EQ(top[1].score, 3.0);
}

TEST(TopNTest, KeepsOnlyNBest) {
  TestCollection tc = TwoDocCollection();
  AccumulatorSet acc;
  for (DocId d = 0; d < 4; ++d) acc.Insert(d, 1.0 + d);
  auto top = SelectTopN(acc, tc.index, 2);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_GE(top[0].score, top[1].score);
}

TEST(TopNTest, TiesBrokenByDocIdAscending) {
  TestCollection tc = MakeCollection(4, 404, {{{0, 1}, {1, 1}, {2, 1}}});
  AccumulatorSet acc;
  acc.Insert(2, 5.0);
  acc.Insert(0, 5.0);
  acc.Insert(1, 5.0);
  auto top = SelectTopN(acc, tc.index, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].doc, 0u);
  EXPECT_EQ(top[1].doc, 1u);
}

TEST(TopNTest, ZeroNAndEmptySet) {
  TestCollection tc = TwoDocCollection();
  AccumulatorSet acc;
  EXPECT_TRUE(SelectTopN(acc, tc.index, 5).empty());
  acc.Insert(0, 1.0);
  EXPECT_TRUE(SelectTopN(acc, tc.index, 0).empty());
}

TEST(TopNTest, ZeroNormDocsScoreZero) {
  TestCollection tc = MakeCollection(4, 404, {{{0, 1}}});
  AccumulatorSet acc;
  acc.Insert(3, 7.0);  // Doc 3 never appears in any list: norm 0.
  auto top = SelectTopN(acc, tc.index, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].score, 0.0);
}

TEST(AccumulatorSetTest, BasicOperations) {
  AccumulatorSet acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.Find(3), nullptr);
  double& v = acc.Insert(3, 1.5);
  EXPECT_EQ(acc.size(), 1u);
  v += 1.0;
  ASSERT_NE(acc.Find(3), nullptr);
  EXPECT_DOUBLE_EQ(*acc.Find(3), 2.5);
  acc.Clear();
  EXPECT_TRUE(acc.empty());
}

}  // namespace
}  // namespace irbuf::core
