#include <gtest/gtest.h>

#include <set>

#include "core/filtering_evaluator.h"
#include "test_index.h"

namespace irbuf::core {
namespace {

EvalOptions BafOptions(double c_ins = 0.07, double c_add = 0.002) {
  EvalOptions options;
  options.c_ins = c_ins;
  options.c_add = c_add;
  options.buffer_aware = true;
  options.top_n = 100;
  return options;
}

TEST(BafEvaluatorTest, FullEvalMatchesDfExactly) {
  // With filtering off, both algorithms process every posting; the
  // processing order cannot change the final accumulated scores.
  TestCollection tc = MakeRandomCollection(42, 120, 10, 4);
  Query q;
  for (TermId t = 0; t < 7; ++t) q.AddTerm(t, 1 + t % 3);

  EvalOptions df_options = BafOptions(0.0, 0.0);
  df_options.buffer_aware = false;
  FilteringEvaluator df(&tc.index, df_options);
  FilteringEvaluator baf(&tc.index, BafOptions(0.0, 0.0));

  auto pool1 = MakeBigPool(tc);
  auto pool2 = MakeBigPool(tc);
  auto rdf = df.Evaluate(q, &pool1);
  auto rbaf = baf.Evaluate(q, &pool2);
  ASSERT_TRUE(rdf.ok());
  ASSERT_TRUE(rbaf.ok());
  ASSERT_EQ(rdf.value().top_docs.size(), rbaf.value().top_docs.size());
  for (size_t i = 0; i < rdf.value().top_docs.size(); ++i) {
    EXPECT_EQ(rdf.value().top_docs[i].doc, rbaf.value().top_docs[i].doc);
    EXPECT_NEAR(rdf.value().top_docs[i].score,
                rbaf.value().top_docs[i].score, 1e-9);
  }
  EXPECT_EQ(rdf.value().disk_reads, rbaf.value().disk_reads);
}

TEST(BafEvaluatorTest, ColdStartOrderMatchesDfOrder) {
  // With nothing buffered and Smax = 0, d_t equals the list length, so
  // BAF picks shortest-list-first = decreasing idf = DF's order.
  TestCollection tc = MakeRandomCollection(9, 100, 8, 2);
  Query q;
  for (TermId t = 0; t < 8; ++t) q.AddTerm(t);

  EvalOptions df_options = BafOptions(0.0, 0.0);
  df_options.buffer_aware = false;
  FilteringEvaluator df(&tc.index, df_options);
  FilteringEvaluator baf(&tc.index, BafOptions(0.0, 0.0));

  auto pool1 = MakeBigPool(tc);
  auto pool2 = MakeBigPool(tc);
  auto rdf = df.Evaluate(q, &pool1);
  auto rbaf = baf.Evaluate(q, &pool2);
  ASSERT_TRUE(rdf.ok());
  ASSERT_TRUE(rbaf.ok());
  ASSERT_EQ(rdf.value().trace.size(), rbaf.value().trace.size());
  for (size_t i = 0; i < rdf.value().trace.size(); ++i) {
    EXPECT_EQ(rdf.value().trace[i].term, rbaf.value().trace[i].term) << i;
  }
}

TEST(BafEvaluatorTest, BufferedTermProcessedFirst) {
  // Three equal-length lists; pre-load term 2's pages into the pool. BAF
  // must process term 2 first (d_t = 0), DF would not.
  std::vector<std::vector<Posting>> lists(3);
  for (TermId t = 0; t < 3; ++t) {
    for (DocId d = 0; d < 8; ++d) {
      lists[t].push_back({d + t, 2});
    }
  }
  TestCollection tc = MakeCollection(64, 2, std::move(lists));
  buffer::BufferManager pool(&tc.index.disk(), 16,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(pool.FetchPage(PageId{2, p}).ok());
  }

  Query q;
  q.AddTerm(0);
  q.AddTerm(1);
  q.AddTerm(2);
  FilteringEvaluator baf(&tc.index, BafOptions(0.0, 0.0));
  auto result = baf.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().trace.size(), 3u);
  EXPECT_EQ(result.value().trace[0].term, 2u);
  EXPECT_EQ(result.value().trace[0].pages_read, 0u);  // All buffered.
  EXPECT_EQ(result.value().trace[0].pages_processed, 4u);
}

TEST(BafEvaluatorTest, RefinementReadsLessThanDf) {
  // The Section 3.2.1 scenario: run a query, then refine it by adding a
  // medium-idf term while the original lists are buffered. BAF pushes the
  // new term back and reads fewer pages than DF.
  Pcg32 rng(77);
  std::vector<std::vector<Posting>> lists;
  // Five "original" terms: short-ish lists.
  for (int t = 0; t < 5; ++t) {
    std::vector<Posting> list;
    uint32_t ft = 20 + rng.NextBounded(20);
    TruncatedGeometric freq(0.5, 30);
    for (DocId d : SampleDistinct(2000, ft, &rng)) {
      list.push_back({d, freq.Sample(&rng)});
    }
    lists.push_back(std::move(list));
  }
  // The added term: long list, mid idf.
  {
    std::vector<Posting> list;
    TruncatedGeometric freq(0.6, 30);
    for (DocId d : SampleDistinct(2000, 400, &rng)) {
      list.push_back({d, freq.Sample(&rng)});
    }
    lists.push_back(std::move(list));
  }
  TestCollection tc = MakeCollection(2000, 4, std::move(lists));

  Query original;
  for (TermId t = 0; t < 5; ++t) original.AddTerm(t, 1 + t % 2);
  Query refined = original;
  refined.AddTerm(5, 1);

  auto run = [&tc, &original, &refined](bool buffer_aware) {
    EvalOptions options = BafOptions(0.2, 0.02);
    options.buffer_aware = buffer_aware;
    FilteringEvaluator evaluator(&tc.index, options);
    buffer::BufferManager pool(
        &tc.index.disk(), tc.index.total_pages() + 1,
        buffer::MakePolicy(buffer::PolicyKind::kLru));
    auto first = evaluator.Evaluate(original, &pool);
    EXPECT_TRUE(first.ok());
    auto second = evaluator.Evaluate(refined, &pool);
    EXPECT_TRUE(second.ok());
    return second.value().disk_reads;
  };

  uint64_t df_reads = run(false);
  uint64_t baf_reads = run(true);
  EXPECT_LE(baf_reads, df_reads);
  EXPECT_GT(df_reads, 0u);
}

TEST(BafEvaluatorTest, NewTermCanBeSkippedEntirely) {
  // A refinement term with tiny fmax can be skipped altogether by BAF
  // (Section 3.2.2's caveat)...
  std::vector<Posting> strong = {{0, 40}, {1, 30}};
  std::vector<Posting> weak;
  for (DocId d = 50; d < 70; ++d) weak.push_back({d, 1});
  TestCollection tc = MakeCollection(1024, 4, {strong, weak});

  Query q;
  q.AddTerm(0, 5);
  q.AddTerm(1, 1);
  {
    FilteringEvaluator baf(&tc.index, BafOptions(0.2, 0.02));
    auto pool = MakeBigPool(tc);
    auto result = baf.Evaluate(q, &pool);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().terms_skipped, 1u);
  }
  // ...unless the always-read-first-page fix is on.
  {
    EvalOptions options = BafOptions(0.2, 0.02);
    options.always_read_first_page = true;
    FilteringEvaluator baf(&tc.index, options);
    auto pool = MakeBigPool(tc);
    auto result = baf.Evaluate(q, &pool);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().terms_skipped, 0u);
    // The weak term's first page was read and contributed.
    bool weak_processed = false;
    for (const TermTrace& t : result.value().trace) {
      if (t.term == 1 && t.pages_processed >= 1) weak_processed = true;
    }
    EXPECT_TRUE(weak_processed);
  }
}

TEST(BafEvaluatorTest, EffectivenessCloseToDfUnderFiltering) {
  // Property over random collections: the BAF/DF top-20 overlap must be
  // high even with tuned (unsafe) thresholds.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    TestCollection tc = MakeRandomCollection(seed, 300, 12, 8);
    Pcg32 rng(seed);
    Query q;
    for (int i = 0; i < 8; ++i) {
      q.AddTerm(rng.NextBounded(12), 1 + rng.NextBounded(2));
    }
    EvalOptions df_options;
    df_options.top_n = 20;
    FilteringEvaluator df(&tc.index, df_options);
    EvalOptions baf_options = df_options;
    baf_options.buffer_aware = true;
    FilteringEvaluator baf(&tc.index, baf_options);

    auto pool1 = MakeBigPool(tc);
    auto pool2 = MakeBigPool(tc);
    auto rdf = df.Evaluate(q, &pool1);
    auto rbaf = baf.Evaluate(q, &pool2);
    ASSERT_TRUE(rdf.ok());
    ASSERT_TRUE(rbaf.ok());

    std::set<DocId> df_docs, baf_docs;
    for (const auto& sd : rdf.value().top_docs) df_docs.insert(sd.doc);
    for (const auto& sd : rbaf.value().top_docs) baf_docs.insert(sd.doc);
    size_t overlap = 0;
    for (DocId d : df_docs) overlap += baf_docs.count(d);
    // On a cold pool BAF's order equals DF's except for estimation error;
    // answers should agree almost perfectly.
    EXPECT_GE(overlap * 10, df_docs.size() * 8) << "seed " << seed;
  }
}

}  // namespace
}  // namespace irbuf::core
