#include "core/query.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "text/pipeline.h"

namespace irbuf::core {
namespace {

TEST(QueryTest, AddAccumulatesFrequency) {
  Query q;
  q.AddTerm(3, 2);
  q.AddTerm(5);
  q.AddTerm(3, 1);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.FrequencyOf(3), 3u);
  EXPECT_EQ(q.FrequencyOf(5), 1u);
  EXPECT_EQ(q.FrequencyOf(9), 0u);
  EXPECT_TRUE(q.Contains(3));
  EXPECT_FALSE(q.Contains(9));
}

TEST(QueryTest, AddZeroFrequencyIsNoOp) {
  Query q;
  q.AddTerm(1, 0);
  EXPECT_TRUE(q.empty());
}

TEST(QueryTest, RemoveTerm) {
  Query q;
  q.AddTerm(1);
  q.AddTerm(2);
  EXPECT_TRUE(q.RemoveTerm(1));
  EXPECT_FALSE(q.RemoveTerm(1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.Contains(1));
}

TEST(QueryTest, InsertionOrderPreserved) {
  Query q;
  q.AddTerm(9);
  q.AddTerm(1);
  q.AddTerm(5);
  ASSERT_EQ(q.terms().size(), 3u);
  EXPECT_EQ(q.terms()[0].term, 9u);
  EXPECT_EQ(q.terms()[1].term, 1u);
  EXPECT_EQ(q.terms()[2].term, 5u);
}

class QueryParseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index::IndexBuilderOptions options;
    index::IndexBuilder builder(options);
    ASSERT_TRUE(
        builder.AddDocument(0, {{"price", 2}, {"fiber", 1}}).ok());
    ASSERT_TRUE(builder.AddDocument(1, {{"market", 1}}).ok());
    auto index = std::move(builder).Build();
    ASSERT_TRUE(index.ok());
    index_.emplace(std::move(index).value());
  }

  std::optional<index::InvertedIndex> index_;
};

TEST_F(QueryParseTest, ResolvesStemsAgainstLexicon) {
  auto pipeline = text::AnalysisPipeline::Default();
  size_t oov = 0;
  Query q = Query::Parse("the prices of fibers", pipeline,
                         index_->lexicon(), &oov);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(oov, 0u);
  auto price = index_->lexicon().Find("price");
  ASSERT_TRUE(price.ok());
  EXPECT_TRUE(q.Contains(price.value()));
}

TEST_F(QueryParseTest, CountsOutOfVocabularyTerms) {
  auto pipeline = text::AnalysisPipeline::Default();
  size_t oov = 0;
  Query q = Query::Parse("price zebra unicorns", pipeline,
                         index_->lexicon(), &oov);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(oov, 2u);
}

TEST_F(QueryParseTest, RepeatedWordsRaiseQueryFrequency) {
  auto pipeline = text::AnalysisPipeline::Default();
  Query q = Query::Parse("price price pricing", pipeline,
                         index_->lexicon());
  auto price = index_->lexicon().Find("price");
  ASSERT_TRUE(price.ok());
  EXPECT_EQ(q.FrequencyOf(price.value()), 3u);
}

}  // namespace
}  // namespace irbuf::core
