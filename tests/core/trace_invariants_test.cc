// Property tests over the evaluator's execution trace: accounting
// identities that must hold for every query, corpus, pool size and
// algorithm variant.

#include <gtest/gtest.h>

#include "core/filtering_evaluator.h"
#include "test_index.h"

namespace irbuf::core {
namespace {

struct TraceCase {
  uint64_t seed;
  bool buffer_aware;
  size_t pool_pages;
};

class TraceInvariantsTest : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceInvariantsTest, AccountingIdentitiesHold) {
  const TraceCase& param = GetParam();
  TestCollection tc =
      MakeRandomCollection(param.seed, 200, 10, 4);
  Pcg32 rng(param.seed * 3 + 1);
  Query q;
  for (int i = 0; i < 6; ++i) {
    q.AddTerm(rng.NextBounded(10), 1 + rng.NextBounded(3));
  }

  EvalOptions options;  // Tuned constants, trace on.
  options.buffer_aware = param.buffer_aware;
  FilteringEvaluator evaluator(&tc.index, options);
  buffer::BufferManager pool(&tc.index.disk(), param.pool_pages,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  const EvalResult& er = result.value();

  // One trace row per unique query term.
  EXPECT_EQ(er.trace.size(), q.size());

  uint64_t sum_reads = 0, sum_processed = 0, sum_postings = 0;
  uint32_t skipped = 0;
  for (const TermTrace& t : er.trace) {
    const index::TermInfo& info = tc.index.lexicon().info(t.term);
    EXPECT_EQ(t.total_pages, info.pages);
    EXPECT_LE(t.pages_read, t.pages_processed);
    EXPECT_LE(t.pages_processed, t.total_pages);
    // Thresholds are consistent: f_ins >= f_add >= 0.
    EXPECT_GE(t.f_ins, t.f_add);
    EXPECT_GE(t.f_add, 0.0);
    // Smax never decreases while a term is processed.
    EXPECT_GE(t.smax_after, t.smax_before);
    if (t.skipped) {
      ++skipped;
      EXPECT_EQ(t.pages_processed, 0u);
      EXPECT_EQ(t.postings_processed, 0u);
      // A skip requires fmax <= f_add.
      EXPECT_LE(static_cast<double>(info.fmax), t.f_add);
    } else {
      EXPECT_GE(t.pages_processed, 1u);
      EXPECT_GE(t.postings_processed, 1u);
      // Postings processed can't exceed the pages' capacity.
      EXPECT_LE(t.postings_processed,
                static_cast<uint64_t>(t.pages_processed) * 4);
    }
    sum_reads += t.pages_read;
    sum_processed += t.pages_processed;
    sum_postings += t.postings_processed;
  }
  EXPECT_EQ(er.disk_reads, sum_reads);
  EXPECT_EQ(er.pages_processed, sum_processed);
  EXPECT_EQ(er.postings_processed, sum_postings);
  EXPECT_EQ(er.terms_skipped, skipped);
  // Pool-level identity: evaluator reads == pool misses.
  EXPECT_EQ(er.disk_reads, pool.stats().misses);
  // Answers are sorted by score descending (doc ascending on ties).
  for (size_t i = 1; i < er.top_docs.size(); ++i) {
    if (er.top_docs[i - 1].score == er.top_docs[i].score) {
      EXPECT_LT(er.top_docs[i - 1].doc, er.top_docs[i].doc);
    } else {
      EXPECT_GT(er.top_docs[i - 1].score, er.top_docs[i].score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceInvariantsTest,
    ::testing::Values(TraceCase{1, false, 1}, TraceCase{1, true, 1},
                      TraceCase{2, false, 8}, TraceCase{2, true, 8},
                      TraceCase{3, false, 64}, TraceCase{3, true, 64},
                      TraceCase{4, false, 1000}, TraceCase{4, true, 1000},
                      TraceCase{5, false, 16}, TraceCase{5, true, 16}),
    [](const ::testing::TestParamInfo<TraceCase>& info) {
      return std::string(info.param.buffer_aware ? "BAF" : "DF") + "_s" +
             std::to_string(info.param.seed) + "_p" +
             std::to_string(info.param.pool_pages);
    });

}  // namespace
}  // namespace irbuf::core
