#include <gtest/gtest.h>

#include "core/filtering_evaluator.h"
#include "test_index.h"

namespace irbuf::core {
namespace {

EvalOptions FullEval() {
  EvalOptions options;
  options.c_ins = 0.0;
  options.c_add = 0.0;
  options.top_n = 100;
  return options;
}

TEST(DfEvaluatorTest, FullEvaluationMatchesBruteForce) {
  TestCollection tc = MakeRandomCollection(11, 60, 8, 4);
  Query q;
  q.AddTerm(0, 1);
  q.AddTerm(3, 2);
  q.AddTerm(5, 1);
  FilteringEvaluator evaluator(&tc.index, FullEval());
  auto pool = MakeBigPool(tc);
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());

  auto expected = BruteForceRanking(tc, q, 100);
  ASSERT_EQ(result.value().top_docs.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.value().top_docs[i].doc, expected[i].doc) << i;
    EXPECT_NEAR(result.value().top_docs[i].score, expected[i].score, 1e-9);
  }
}

// Parameterized sweep: full evaluation equals brute force on many random
// collections and queries (the safe-baseline invariant).
class DfGroundTruthTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DfGroundTruthTest, FullEvalEqualsBruteForce) {
  uint64_t seed = GetParam();
  TestCollection tc =
      MakeRandomCollection(seed, 40 + seed % 50, 6 + seed % 5, 3);
  Pcg32 rng(seed * 977);
  Query q;
  size_t num_terms = tc.lists.size();
  for (int i = 0; i < 4; ++i) {
    q.AddTerm(rng.NextBounded(static_cast<uint32_t>(num_terms)),
              1 + rng.NextBounded(3));
  }
  FilteringEvaluator evaluator(&tc.index, FullEval());
  auto pool = MakeBigPool(tc);
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  auto expected = BruteForceRanking(tc, q, 100);
  ASSERT_EQ(result.value().top_docs.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.value().top_docs[i].doc, expected[i].doc)
        << "seed " << seed << " position " << i;
    EXPECT_NEAR(result.value().top_docs[i].score, expected[i].score, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfGroundTruthTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(DfEvaluatorTest, ProcessesTermsInDecreasingIdfOrder) {
  // Three terms with distinct list lengths -> distinct idfs.
  TestCollection tc = MakeCollection(
      64, 2,
      {
          {{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {6, 1}, {7, 1}},
          {{0, 2}, {1, 1}},
          {{0, 3}, {1, 2}, {2, 1}, {3, 1}},
      });
  Query q;
  q.AddTerm(0);
  q.AddTerm(1);
  q.AddTerm(2);
  FilteringEvaluator evaluator(&tc.index, FullEval());
  auto pool = MakeBigPool(tc);
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  const auto& trace = result.value().trace;
  ASSERT_EQ(trace.size(), 3u);
  // Shortest list (highest idf) first: term 1, then 2, then 0.
  EXPECT_EQ(trace[0].term, 1u);
  EXPECT_EQ(trace[1].term, 2u);
  EXPECT_EQ(trace[2].term, 0u);
  EXPECT_GE(trace[0].idf, trace[1].idf);
  EXPECT_GE(trace[1].idf, trace[2].idf);
}

TEST(DfEvaluatorTest, SmaxIsMonotoneAcrossTrace) {
  TestCollection tc = MakeRandomCollection(5, 80, 10, 3);
  Query q;
  for (TermId t = 0; t < 6; ++t) q.AddTerm(t);
  EvalOptions options;  // Tuned constants.
  FilteringEvaluator evaluator(&tc.index, options);
  auto pool = MakeBigPool(tc);
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  double last = 0.0;
  for (const TermTrace& t : result.value().trace) {
    EXPECT_GE(t.smax_before, last);
    EXPECT_GE(t.smax_after, t.smax_before);
    last = t.smax_after;
  }
}

TEST(DfEvaluatorTest, AdditionThresholdTruncatesLongLists) {
  // One short high-idf booster term, then a long list whose tail is all
  // freq 1: once Smax is high, the long list's tail must not be read.
  std::vector<Posting> booster = {{0, 30}};
  std::vector<Posting> long_list;
  long_list.push_back({0, 25});  // Keeps Smax growing on doc 0.
  for (DocId d = 1; d <= 40; ++d) long_list.push_back({d, 1});
  TestCollection tc =
      MakeCollection(1024, 4, {booster, long_list});

  Query q;
  q.AddTerm(0, 5);
  q.AddTerm(1, 1);
  EvalOptions options;
  options.c_ins = 0.07;
  options.c_add = 0.002;
  FilteringEvaluator evaluator(&tc.index, options);
  auto pool = MakeBigPool(tc);
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  const auto& trace = result.value().trace;
  ASSERT_EQ(trace.size(), 2u);
  // Booster (1 page) processed first (higher idf), then the long list
  // stops early: strictly fewer pages than its total.
  EXPECT_EQ(trace[1].term, 1u);
  EXPECT_GT(trace[1].f_add, 1.0);
  EXPECT_LT(trace[1].pages_processed, trace[1].total_pages);
  EXPECT_LT(result.value().postings_processed, 1u + long_list.size());
}

TEST(DfEvaluatorTest, FmaxSkipAvoidsAllReads) {
  // Second term's fmax is 1; with Smax already large its f_add exceeds 1
  // and step 4b skips the list without touching the disk.
  std::vector<Posting> booster = {{0, 50}};
  std::vector<Posting> weak;
  for (DocId d = 10; d < 30; ++d) weak.push_back({d, 1});
  TestCollection tc = MakeCollection(1024, 4, {booster, weak});

  Query q;
  q.AddTerm(0, 5);
  q.AddTerm(1, 1);
  EvalOptions options;
  options.c_ins = 0.2;
  options.c_add = 0.02;
  FilteringEvaluator evaluator(&tc.index, options);
  auto pool = MakeBigPool(tc);

  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().trace.size(), 2u);
  const TermTrace& weak_trace = result.value().trace[1];
  EXPECT_EQ(weak_trace.term, 1u);
  EXPECT_TRUE(weak_trace.skipped);
  EXPECT_EQ(weak_trace.pages_read, 0u);
  EXPECT_EQ(weak_trace.pages_processed, 0u);
  EXPECT_EQ(result.value().terms_skipped, 1u);
}

TEST(DfEvaluatorTest, InsertionThresholdShrinksCandidateSet) {
  TestCollection tc = MakeRandomCollection(17, 200, 6, 8);
  Query q;
  for (TermId t = 0; t < 6; ++t) q.AddTerm(t);

  auto pool1 = MakeBigPool(tc);
  FilteringEvaluator full(&tc.index, FullEval());
  auto full_result = full.Evaluate(q, &pool1);
  ASSERT_TRUE(full_result.ok());

  EvalOptions tuned;
  tuned.c_ins = 0.07;
  tuned.c_add = 0.002;
  auto pool2 = MakeBigPool(tc);
  FilteringEvaluator filtered(&tc.index, tuned);
  auto filtered_result = filtered.Evaluate(q, &pool2);
  ASSERT_TRUE(filtered_result.ok());

  EXPECT_LT(filtered_result.value().accumulators,
            full_result.value().accumulators);
  EXPECT_LE(filtered_result.value().postings_processed,
            full_result.value().postings_processed);
}

TEST(DfEvaluatorTest, EmptyQueryYieldsEmptyResult) {
  TestCollection tc = MakeRandomCollection(3, 20, 3, 4);
  FilteringEvaluator evaluator(&tc.index, FullEval());
  auto pool = MakeBigPool(tc);
  auto result = evaluator.Evaluate(Query{}, &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().top_docs.empty());
  EXPECT_EQ(result.value().disk_reads, 0u);
}

TEST(DfEvaluatorTest, TraceCanBeDisabled) {
  TestCollection tc = MakeRandomCollection(3, 20, 3, 4);
  EvalOptions options = FullEval();
  options.record_trace = false;
  FilteringEvaluator evaluator(&tc.index, options);
  auto pool = MakeBigPool(tc);
  Query q;
  q.AddTerm(0);
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().trace.empty());
  EXPECT_GT(result.value().disk_reads, 0u);
}

TEST(DfEvaluatorTest, DiskReadsMatchBufferMisses) {
  TestCollection tc = MakeRandomCollection(23, 100, 5, 4);
  Query q;
  for (TermId t = 0; t < 5; ++t) q.AddTerm(t);
  buffer::BufferManager pool(&tc.index.disk(), 3,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  FilteringEvaluator evaluator(&tc.index, FullEval());
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().disk_reads, pool.stats().misses);
  EXPECT_EQ(result.value().pages_processed, pool.stats().fetches);
}

}  // namespace
}  // namespace irbuf::core
