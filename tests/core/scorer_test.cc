#include "core/scorer.h"

#include <gtest/gtest.h>

namespace irbuf::core {
namespace {

TEST(ScorerTest, WeightsFollowEquation3) {
  EXPECT_DOUBLE_EQ(DocTermWeight(3, 2.0), 6.0);
  EXPECT_DOUBLE_EQ(QueryTermWeight(5, 7.2), 36.0);
  EXPECT_DOUBLE_EQ(PartialSimilarity(3, 5, 2.0), 6.0 * 10.0);
}

TEST(ScorerTest, ThresholdsFollowEquation5) {
  // f_ins = c_ins * Smax / (fq * idf^2).
  Thresholds th = ComputeThresholds(0.07, 0.002, 4000.0, 2, 2.0);
  EXPECT_DOUBLE_EQ(th.f_ins, 0.07 * 4000.0 / (2 * 4.0));
  EXPECT_DOUBLE_EQ(th.f_add, 0.002 * 4000.0 / (2 * 4.0));
  EXPECT_GE(th.f_ins, th.f_add);
}

TEST(ScorerTest, ZeroSmaxGivesZeroThresholds) {
  Thresholds th = ComputeThresholds(0.07, 0.002, 0.0, 3, 5.0);
  EXPECT_DOUBLE_EQ(th.f_ins, 0.0);
  EXPECT_DOUBLE_EQ(th.f_add, 0.0);
}

TEST(ScorerTest, ZeroIdfIsSafe) {
  // A term present in every document has idf 0; thresholds degrade to 0
  // rather than dividing by zero.
  Thresholds th = ComputeThresholds(0.07, 0.002, 1000.0, 1, 0.0);
  EXPECT_DOUBLE_EQ(th.f_ins, 0.0);
  EXPECT_DOUBLE_EQ(th.f_add, 0.0);
}

TEST(ScorerTest, ThresholdsScaleInverselyWithIdfSquared) {
  // Low-idf (long-list) terms get much higher thresholds — the mechanism
  // behind the paper's QUERY4 savings.
  Thresholds low_idf = ComputeThresholds(0.0, 0.002, 10000.0, 1, 2.0);
  Thresholds high_idf = ComputeThresholds(0.0, 0.002, 10000.0, 1, 8.0);
  EXPECT_DOUBLE_EQ(low_idf.f_add / high_idf.f_add, 16.0);
}

TEST(ScorerTest, BuildQueryContextUsesLexiconIdf) {
  index::Lexicon lexicon;
  TermId a = lexicon.AddTerm("a");
  TermId b = lexicon.AddTerm("b");
  lexicon.mutable_info(a).idf = 2.0;
  lexicon.mutable_info(b).idf = 3.0;

  Query q;
  q.AddTerm(a, 5);
  q.AddTerm(b, 1);
  buffer::QueryContext ctx = BuildQueryContext(q, lexicon);
  EXPECT_DOUBLE_EQ(ctx.WeightOf(a), 10.0);
  EXPECT_DOUBLE_EQ(ctx.WeightOf(b), 3.0);
  EXPECT_DOUBLE_EQ(ctx.WeightOf(99), 0.0);
}

}  // namespace
}  // namespace irbuf::core
