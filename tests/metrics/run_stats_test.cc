#include "metrics/run_stats.h"

#include <gtest/gtest.h>

namespace irbuf::metrics {
namespace {

TEST(SummarizeTest, BasicStatistics) {
  Summary s = Summarize({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_EQ(s.count, 4u);
}

TEST(SummarizeTest, OddCountMedian) {
  Summary s = Summarize({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(SummarizeTest, SingleAndEmpty) {
  Summary one = Summarize({7.0});
  EXPECT_DOUBLE_EQ(one.min, 7.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_EQ(one.count, 1u);

  Summary none = Summarize({});
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.mean, 0.0);
}

TEST(FractionAboveTest, CountsStrictlyAbove) {
  std::vector<double> v = {0.5, 0.7, 0.7, 0.9};
  EXPECT_DOUBLE_EQ(FractionAbove(v, 0.7), 0.25);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionAbove({}, 0.5), 0.0);
}

}  // namespace
}  // namespace irbuf::metrics
