#include "metrics/run_stats.h"

#include <gtest/gtest.h>

namespace irbuf::metrics {
namespace {

TEST(SummarizeTest, BasicStatistics) {
  Summary s = Summarize({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_EQ(s.count, 4u);
}

TEST(SummarizeTest, OddCountMedian) {
  Summary s = Summarize({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(SummarizeTest, SingleAndEmpty) {
  Summary one = Summarize({7.0});
  EXPECT_DOUBLE_EQ(one.min, 7.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_EQ(one.count, 1u);

  Summary none = Summarize({});
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.mean, 0.0);
}

TEST(PercentileTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 99.0), 0.0);
}

TEST(PercentileTest, SingleElementIsEveryPercentile) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 100.0), 7.0);
}

TEST(PercentileTest, EvenLengthInterpolatesBetweenRanks) {
  // Linear interpolation between closest ranks: rank = p/100 * (n-1).
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 90.0), 3.7);  // rank 2.7
}

TEST(PercentileTest, OddLengthHitsExactRanks) {
  std::vector<double> v = {10.0, 30.0, 20.0, 50.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 75.0), 40.0);
}

TEST(PercentileTest, DuplicatesCollapseToTheirValue) {
  std::vector<double> v = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 90.0), 5.0);
  // Mixed duplicates: sorted 1 1 1 9 -> p50 interpolates within the 1s.
  EXPECT_DOUBLE_EQ(Percentile({1.0, 9.0, 1.0, 1.0}, 50.0), 1.0);
}

TEST(PercentileTest, OutOfRangePIsClamped) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 200.0), 3.0);
}

TEST(SummarizeTest, TailPercentilesMatchPercentile) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  Summary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.p90, Percentile(v, 90.0));
  EXPECT_DOUBLE_EQ(s.p99, Percentile(v, 99.0));
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_GE(s.p99, s.p90);
  EXPECT_LE(s.p99, s.max);

  Summary none = Summarize({});
  EXPECT_DOUBLE_EQ(none.p90, 0.0);
  EXPECT_DOUBLE_EQ(none.p99, 0.0);
}

TEST(PercentileWeightedTest, UnitWeightsMatchPercentile) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  std::vector<uint64_t> ones = {1, 1, 1, 1};
  for (double p : {0.0, 25.0, 50.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(PercentileWeighted(v, ones, p), Percentile(v, p)) << p;
  }
}

TEST(PercentileWeightedTest, WeightsExpandTheSample) {
  // 90 copies of 5 and 10 copies of 15 == the expanded 100-point sample.
  std::vector<double> v = {5.0, 15.0};
  std::vector<uint64_t> w = {90, 10};
  EXPECT_DOUBLE_EQ(PercentileWeighted(v, w, 50.0), 5.0);
  // rank 89.1 interpolates between the last 5 and the first 15.
  EXPECT_NEAR(PercentileWeighted(v, w, 90.0), 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(PercentileWeighted(v, w, 99.0), 15.0);
}

TEST(PercentileWeightedTest, ZeroWeightsAreSkipped) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PercentileWeighted(v, {0, 5, 0}, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(PercentileWeighted(v, {0, 0, 0}, 50.0), 0.0);
}

TEST(PercentileWeightedTest, DegenerateInputsYieldZero) {
  EXPECT_DOUBLE_EQ(PercentileWeighted({}, {}, 50.0), 0.0);
  // Mismatched lengths are rejected rather than read out of bounds.
  EXPECT_DOUBLE_EQ(PercentileWeighted({1.0}, {1, 2}, 50.0), 0.0);
}

TEST(FractionAboveTest, CountsStrictlyAbove) {
  std::vector<double> v = {0.5, 0.7, 0.7, 0.9};
  EXPECT_DOUBLE_EQ(FractionAbove(v, 0.7), 0.25);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionAbove({}, 0.5), 0.0);
}

}  // namespace
}  // namespace irbuf::metrics
