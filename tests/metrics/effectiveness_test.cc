#include "metrics/effectiveness.h"

#include <gtest/gtest.h>

namespace irbuf::metrics {
namespace {

std::vector<core::ScoredDoc> Ranked(std::initializer_list<DocId> docs) {
  std::vector<core::ScoredDoc> out;
  double score = 100.0;
  for (DocId d : docs) out.push_back({d, score -= 1.0});
  return out;
}

TEST(EffectivenessTest, PrecisionAtK) {
  auto ranked = Ranked({1, 2, 3, 4});
  std::vector<DocId> relevant = {2, 4, 9};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 1), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 4), 0.5);
  // k beyond the ranking: missing positions count as misses.
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 8), 0.25);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 0), 0.0);
}

TEST(EffectivenessTest, Recall) {
  auto ranked = Ranked({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(Recall(ranked, {2, 4}), 1.0);
  EXPECT_DOUBLE_EQ(Recall(ranked, {2, 9}), 0.5);
  EXPECT_DOUBLE_EQ(Recall(ranked, {7, 8, 9}), 0.0);
  EXPECT_DOUBLE_EQ(Recall(ranked, {}), 0.0);
}

TEST(EffectivenessTest, AveragePrecisionPerfectRanking) {
  // All relevant documents at the top: AP = 1.
  auto ranked = Ranked({5, 6, 1, 2});
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, {5, 6}), 1.0);
}

TEST(EffectivenessTest, AveragePrecisionTextbookExample) {
  // Relevant at ranks 1 and 3 of {1,2,3}, R = 2:
  // AP = (1/1 + 2/3) / 2 = 5/6.
  auto ranked = Ranked({10, 11, 12});
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, {10, 12}), 5.0 / 6.0);
}

TEST(EffectivenessTest, AveragePrecisionPenalizesUnretrieved) {
  // One of two relevant docs never retrieved: its precision term is 0.
  auto ranked = Ranked({10});
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, {10, 99}), 0.5);
}

TEST(EffectivenessTest, AveragePrecisionEmptyCases) {
  EXPECT_DOUBLE_EQ(AveragePrecision({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision(Ranked({1}), {}), 0.0);
}

}  // namespace
}  // namespace irbuf::metrics
