#include "index/forward_index.h"

#include <gtest/gtest.h>

#include <cmath>

#include "index/index_builder.h"

namespace irbuf::index {
namespace {

InvertedIndex SmallIndex() {
  IndexBuilderOptions options;
  options.page_size = 2;
  options.num_docs = 6;
  IndexBuilder builder(options);
  // Term 0 in docs {0, 2, 4}; term 1 in docs {2, 3}; term 2 in doc {5}.
  EXPECT_TRUE(builder.AddTermPostings("a", {{0, 3}, {2, 1}, {4, 2}}).ok());
  EXPECT_TRUE(builder.AddTermPostings("b", {{2, 5}, {3, 1}}).ok());
  EXPECT_TRUE(builder.AddTermPostings("c", {{5, 7}}).ok());
  auto index = std::move(builder).Build();
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

TEST(ForwardIndexTest, InvertsTheInvertedIndex) {
  InvertedIndex index = SmallIndex();
  auto forward = ForwardIndex::FromInvertedIndex(index);
  ASSERT_TRUE(forward.ok());
  EXPECT_EQ(forward.value().num_docs(), 6u);
  EXPECT_EQ(forward.value().num_entries(),
            index.disk().total_postings());

  auto doc2 = forward.value().TermsOf(2);
  ASSERT_EQ(doc2.size(), 2u);
  EXPECT_EQ(doc2[0], (ForwardPosting{0, 1}));
  EXPECT_EQ(doc2[1], (ForwardPosting{1, 5}));

  auto doc5 = forward.value().TermsOf(5);
  ASSERT_EQ(doc5.size(), 1u);
  EXPECT_EQ(doc5[0], (ForwardPosting{2, 7}));

  EXPECT_TRUE(forward.value().TermsOf(1).empty());
}

TEST(ForwardIndexTest, TermVectorsSortedByTermId) {
  InvertedIndex index = SmallIndex();
  auto forward = ForwardIndex::FromInvertedIndex(index);
  ASSERT_TRUE(forward.ok());
  for (DocId d = 0; d < forward.value().num_docs(); ++d) {
    auto terms = forward.value().TermsOf(d);
    for (size_t i = 1; i < terms.size(); ++i) {
      EXPECT_LT(terms[i - 1].term, terms[i].term);
    }
  }
}

TEST(ForwardIndexTest, AgreesWithDocNorms) {
  // Sum over a doc's forward entries of (freq * idf)^2 must reproduce
  // W_d^2 — a cross-structure consistency check.
  InvertedIndex index = SmallIndex();
  auto forward = ForwardIndex::FromInvertedIndex(index);
  ASSERT_TRUE(forward.ok());
  for (DocId d = 0; d < index.num_docs(); ++d) {
    double sum = 0.0;
    for (const ForwardPosting& fp : forward.value().TermsOf(d)) {
      double w = fp.freq * index.lexicon().info(fp.term).idf;
      sum += w * w;
    }
    EXPECT_NEAR(std::sqrt(sum), index.doc_norm(d), 1e-9) << "doc " << d;
  }
}

}  // namespace
}  // namespace irbuf::index
