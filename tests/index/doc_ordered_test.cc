// Tests of the document-ordered index layout (the traditional
// organization the paper contrasts against in footnote 14).

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "core/filtering_evaluator.h"
#include "index/index_builder.h"
#include "index/index_io.h"

namespace irbuf::index {
namespace {

InvertedIndex BuildDocOrdered() {
  IndexBuilderOptions options;
  options.page_size = 2;
  options.num_docs = 64;
  options.order = ListOrder::kDocumentOrdered;
  IndexBuilder builder(options);
  // Unsorted input; high frequency deliberately late in doc order.
  EXPECT_TRUE(builder
                  .AddTermPostings(
                      "x", {{40, 9}, {1, 1}, {20, 1}, {5, 2}, {60, 1}})
                  .ok());
  EXPECT_TRUE(builder.AddTermPostings("y", {{3, 4}}).ok());
  auto index = std::move(builder).Build();
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

TEST(DocOrderedIndexTest, PagesAreDocOrdered) {
  InvertedIndex index = BuildDocOrdered();
  EXPECT_EQ(index.order(), IndexListOrder::kDocumentOrdered);
  storage::Page page;
  DocId last = 0;
  for (uint32_t p = 0; p < index.lexicon().info(0).pages; ++p) {
    ASSERT_TRUE(index.disk().ReadPage(PageId{0, p}, &page).ok());
    ASSERT_TRUE(storage::IsDocumentOrdered(page.block));
    EXPECT_GT(page.block.doc_ids.front(), last);
    last = page.block.doc_ids.back();
  }
}

TEST(DocOrderedIndexTest, StatisticsStillCorrect) {
  InvertedIndex index = BuildDocOrdered();
  const TermInfo& info = index.lexicon().info(0);
  EXPECT_EQ(info.ft, 5u);
  EXPECT_EQ(info.fmax, 9u);  // Max over the list, not the first posting.
  EXPECT_EQ(info.pages, 3u);
  // Page max-weights reflect the true per-page maximum.
  EXPECT_DOUBLE_EQ(index.disk().PageMaxWeight(PageId{0, 1}),
                   9.0 * info.idf);  // Page [(20,1),(40,9)].
}

TEST(DocOrderedIndexTest, NoConversionTableRows) {
  InvertedIndex index = BuildDocOrdered();
  EXPECT_EQ(index.conversion_table().num_entries(), 0u);
  // Lookup degrades conservatively to "all pages".
  EXPECT_EQ(index.conversion_table().PagesToProcess(0, 3.0, 3, 9), 3u);
}

TEST(DocOrderedIndexTest, FilteringCannotStopEarly) {
  // A strong first term raises thresholds; on a frequency-sorted index
  // the second list would be truncated, on a document-ordered one it is
  // read in full — and the late high-frequency posting still counts.
  for (ListOrder order :
       {ListOrder::kFrequencySorted, ListOrder::kDocumentOrdered}) {
    IndexBuilderOptions options;
    options.page_size = 4;
    options.num_docs = 1024;
    options.order = order;
    IndexBuilder builder(options);
    ASSERT_TRUE(builder.AddTermPostings("booster", {{0, 50}}).ok());
    std::vector<Posting> list;
    for (DocId d = 1; d <= 39; ++d) list.push_back({d, 1});
    list.push_back({999, 30});  // High frequency, last in doc order.
    ASSERT_TRUE(builder.AddTermPostings("long", std::move(list)).ok());
    auto index = std::move(builder).Build();
    ASSERT_TRUE(index.ok());

    core::Query q;
    auto booster = index.value().lexicon().Find("booster");
    auto long_term = index.value().lexicon().Find("long");
    ASSERT_TRUE(booster.ok());
    ASSERT_TRUE(long_term.ok());
    q.AddTerm(booster.value(), 5);
    q.AddTerm(long_term.value(), 1);

    core::EvalOptions eval;
    eval.c_ins = 0.02;  // Low enough that the late f=30 posting inserts.
    eval.c_add = 0.002;
    core::FilteringEvaluator evaluator(&index.value(), eval);
    buffer::BufferManager pool(
        &index.value().disk(), 64,
        buffer::MakePolicy(buffer::PolicyKind::kLru));
    auto result = evaluator.Evaluate(q, &pool);
    ASSERT_TRUE(result.ok());

    uint32_t long_pages = index.value().lexicon().info(long_term.value()).pages;
    const core::TermTrace& trace = result.value().trace.back();
    if (order == ListOrder::kFrequencySorted) {
      EXPECT_LT(trace.pages_processed, long_pages);
    } else {
      // Footnote 14: document-ordered lists are read in full.
      EXPECT_EQ(trace.pages_processed, long_pages);
      // The trailing high-frequency posting was found and scored: doc
      // 999 must be a strong answer.
      bool found = false;
      for (const core::ScoredDoc& sd : result.value().top_docs) {
        if (sd.doc == 999) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(DocOrderedIndexTest, PersistenceRoundTripsOrder) {
  InvertedIndex original = BuildDocOrdered();
  std::string path = std::string(::testing::TempDir()) + "/docord.irbf";
  ASSERT_TRUE(SaveIndex(original, path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().order(), IndexListOrder::kDocumentOrdered);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace irbuf::index
