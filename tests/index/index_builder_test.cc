#include "index/index_builder.h"

#include <gtest/gtest.h>

#include <cmath>

namespace irbuf::index {
namespace {

TEST(IndexBuilderTest, StreamingPathBuildsCorrectStatistics) {
  IndexBuilderOptions options;
  options.page_size = 2;
  options.num_docs = 8;
  IndexBuilder builder(options);

  // Term 0: appears in 4 of 8 docs -> idf = log2(8/4) = 1.
  auto t0 = builder.AddTermPostings(
      "alpha", {{0, 1}, {1, 5}, {2, 2}, {3, 1}});
  ASSERT_TRUE(t0.ok());
  // Term 1: appears in 1 doc -> idf = 3.
  auto t1 = builder.AddTermPostings("beta", {{5, 7}});
  ASSERT_TRUE(t1.ok());

  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  const InvertedIndex& idx = index.value();

  const TermInfo& a = idx.lexicon().info(t0.value());
  EXPECT_EQ(a.ft, 4u);
  EXPECT_EQ(a.fmax, 5u);
  EXPECT_DOUBLE_EQ(a.idf, 1.0);
  EXPECT_EQ(a.pages, 2u);  // 4 postings, 2 per page.

  const TermInfo& b = idx.lexicon().info(t1.value());
  EXPECT_EQ(b.ft, 1u);
  EXPECT_EQ(b.fmax, 7u);
  EXPECT_DOUBLE_EQ(b.idf, 3.0);
  EXPECT_EQ(b.pages, 1u);

  EXPECT_EQ(idx.num_docs(), 8u);
  EXPECT_EQ(idx.total_pages(), 3u);
}

TEST(IndexBuilderTest, PagesAreFrequencySorted) {
  IndexBuilderOptions options;
  options.page_size = 3;
  options.num_docs = 100;
  IndexBuilder builder(options);
  // Deliberately unsorted input.
  ASSERT_TRUE(builder
                  .AddTermPostings("x", {{10, 1},
                                         {3, 9},
                                         {50, 4},
                                         {2, 9},
                                         {40, 4},
                                         {7, 2}})
                  .ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());

  storage::Page page;
  ASSERT_TRUE(index.value().disk().ReadPage(PageId{0, 0}, &page).ok());
  // Highest frequencies first; doc ascending within ties.
  std::vector<Posting> postings = page.MaterializePostings();
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0], (Posting{2, 9}));
  EXPECT_EQ(postings[1], (Posting{3, 9}));
  EXPECT_EQ(postings[2], (Posting{40, 4}));

  ASSERT_TRUE(index.value().disk().ReadPage(PageId{0, 1}, &page).ok());
  postings = page.MaterializePostings();
  EXPECT_EQ(postings[0], (Posting{50, 4}));
  EXPECT_EQ(postings[1], (Posting{7, 2}));
  EXPECT_EQ(postings[2], (Posting{10, 1}));
}

TEST(IndexBuilderTest, PageMaxWeightStored) {
  IndexBuilderOptions options;
  options.page_size = 2;
  options.num_docs = 16;
  IndexBuilder builder(options);
  ASSERT_TRUE(
      builder.AddTermPostings("x", {{0, 8}, {1, 4}, {2, 2}, {3, 1}}).ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  const double idf = index.value().lexicon().info(0).idf;  // log2(16/4)=2.
  EXPECT_DOUBLE_EQ(idf, 2.0);
  // Page 0 holds freq 8 first -> max weight 8 * idf; page 1 holds freq 2.
  EXPECT_DOUBLE_EQ(index.value().disk().PageMaxWeight(PageId{0, 0}),
                   8.0 * idf);
  EXPECT_DOUBLE_EQ(index.value().disk().PageMaxWeight(PageId{0, 1}),
                   2.0 * idf);
}

TEST(IndexBuilderTest, DocNormsMatchEquation2) {
  IndexBuilderOptions options;
  options.page_size = 404;
  options.num_docs = 4;
  IndexBuilder builder(options);
  // Term a: docs {0,1} -> idf 1. Term b: doc {0} -> idf 2.
  ASSERT_TRUE(builder.AddTermPostings("a", {{0, 3}, {1, 1}}).ok());
  ASSERT_TRUE(builder.AddTermPostings("b", {{0, 2}}).ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  // W_0 = sqrt((3*1)^2 + (2*2)^2) = sqrt(25) = 5.
  EXPECT_DOUBLE_EQ(index.value().doc_norm(0), 5.0);
  EXPECT_DOUBLE_EQ(index.value().doc_norm(1), 1.0);
  EXPECT_DOUBLE_EQ(index.value().doc_norm(3), 0.0);
}

TEST(IndexBuilderTest, ConversionTableMatchesStoppingRule) {
  IndexBuilderOptions options;
  options.page_size = 2;
  options.num_docs = 1000;
  IndexBuilder builder(options);
  // Frequencies (sorted desc): 9 9 | 4 2 | 2 1 -> 3 pages.
  ASSERT_TRUE(builder
                  .AddTermPostings(
                      "x", {{1, 9}, {2, 9}, {3, 4}, {4, 2}, {5, 2}, {6, 1}})
                  .ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  const auto& table = index.value().conversion_table();
  // Threshold 0: everything read -> 3 pages.
  EXPECT_EQ(table.PagesToProcess(0, 0.0, 3, 9), 3u);
  // Threshold 1: stop at the first freq<=1 posting (position 5, page 2)
  // -> 3 pages.
  EXPECT_EQ(table.PagesToProcess(0, 1.0, 3, 9), 3u);
  // Threshold 2: first freq<=2 posting is position 3 (page 1) -> 2 pages.
  EXPECT_EQ(table.PagesToProcess(0, 2.0, 3, 9), 2u);
  // Threshold 4: first freq<=4 posting is position 2 (page 1) -> 2 pages.
  EXPECT_EQ(table.PagesToProcess(0, 4.0, 3, 9), 2u);
  // Threshold 5..8: only the freq-9 run passes -> page 0 still read up to
  // position 2 -> 2 pages (the stopping posting is on page 1).
  EXPECT_EQ(table.PagesToProcess(0, 5.0, 3, 9), 2u);
  // Threshold 9 >= fmax: skipped entirely.
  EXPECT_EQ(table.PagesToProcess(0, 9.0, 3, 9), 0u);
}

TEST(IndexBuilderTest, DocumentPathInvertsDocuments) {
  IndexBuilderOptions options;
  options.page_size = 404;
  IndexBuilder builder(options);
  ASSERT_TRUE(builder.AddDocument(0, {{"price", 2}, {"fiber", 1}}).ok());
  ASSERT_TRUE(builder.AddDocument(1, {{"price", 1}}).ok());
  ASSERT_TRUE(builder.AddDocument(2, {{"market", 3}}).ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  const InvertedIndex& idx = index.value();
  EXPECT_EQ(idx.num_docs(), 3u);

  auto price = idx.lexicon().Find("price");
  ASSERT_TRUE(price.ok());
  EXPECT_EQ(idx.lexicon().info(price.value()).ft, 2u);
  EXPECT_EQ(idx.lexicon().info(price.value()).fmax, 2u);

  storage::Page page;
  ASSERT_TRUE(idx.disk().ReadPage(PageId{price.value(), 0}, &page).ok());
  const std::vector<Posting> postings = page.MaterializePostings();
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0], (Posting{0, 2}));
  EXPECT_EQ(postings[1], (Posting{1, 1}));
}

TEST(IndexBuilderTest, StreamingRequiresDeclaredCollectionSize) {
  IndexBuilder builder(IndexBuilderOptions{});
  auto result = builder.AddTermPostings("x", {{0, 1}});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IndexBuilderTest, RejectsOutOfRangeAndZeroFrequency) {
  IndexBuilderOptions options;
  options.num_docs = 10;
  IndexBuilder builder(options);
  EXPECT_EQ(builder.AddTermPostings("a", {{10, 1}}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(builder.AddTermPostings("b", {{0, 0}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddTermPostings("c", {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IndexBuilderTest, RejectsDuplicateStreamingTerm) {
  IndexBuilderOptions options;
  options.num_docs = 10;
  IndexBuilder builder(options);
  ASSERT_TRUE(builder.AddTermPostings("dup", {{0, 1}}).ok());
  EXPECT_EQ(builder.AddTermPostings("dup", {{1, 1}}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(IndexBuilderTest, BuilderConsumedOnlyOnce) {
  IndexBuilderOptions options;
  options.num_docs = 4;
  IndexBuilder builder(options);
  ASSERT_TRUE(builder.AddTermPostings("a", {{0, 1}}).ok());
  ASSERT_TRUE(std::move(builder).Build().ok());
  EXPECT_EQ(std::move(builder).Build().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(builder.AddDocument(0, {{"x", 1}}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IndexBuilderTest, MultiPageTermGetsConversionRow) {
  IndexBuilderOptions options;
  options.page_size = 2;
  options.num_docs = 100;
  IndexBuilder builder(options);
  ASSERT_TRUE(builder.AddTermPostings("multi", {{0, 1}, {1, 1}, {2, 1}}).ok());
  ASSERT_TRUE(builder.AddTermPostings("single", {{0, 1}}).ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  // Only the multi-page term contributes a row (footnote 6 of the paper).
  EXPECT_EQ(index.value().conversion_table().num_entries(), 1u);
}

}  // namespace
}  // namespace irbuf::index
