#include "index/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "index/index_builder.h"

namespace irbuf::index {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

InvertedIndex MakeIndex() {
  IndexBuilderOptions options;
  options.page_size = 2;
  options.num_docs = 32;
  IndexBuilder builder(options);
  EXPECT_TRUE(builder
                  .AddTermPostings("alpha",
                                   {{0, 9}, {1, 4}, {2, 2}, {3, 1}, {4, 1}})
                  .ok());
  EXPECT_TRUE(builder.AddTermPostings("beta", {{5, 3}, {6, 1}}).ok());
  EXPECT_TRUE(builder.AddTermPostings("gamma", {{7, 2}}).ok());
  auto index = std::move(builder).Build();
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

TEST(IndexIoTest, RoundTripPreservesEverything) {
  InvertedIndex original = MakeIndex();
  std::string path = TempPath("roundtrip.irbf");
  ASSERT_TRUE(SaveIndex(original, path).ok());

  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const InvertedIndex& idx = loaded.value();

  EXPECT_EQ(idx.num_docs(), original.num_docs());
  ASSERT_EQ(idx.lexicon().size(), original.lexicon().size());
  for (TermId t = 0; t < idx.lexicon().size(); ++t) {
    const TermInfo& a = original.lexicon().info(t);
    const TermInfo& b = idx.lexicon().info(t);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.ft, b.ft);
    EXPECT_EQ(a.fmax, b.fmax);
    EXPECT_EQ(a.pages, b.pages);
    EXPECT_DOUBLE_EQ(a.idf, b.idf);
  }
  for (DocId d = 0; d < idx.num_docs(); ++d) {
    EXPECT_DOUBLE_EQ(idx.doc_norm(d), original.doc_norm(d));
  }
  EXPECT_EQ(idx.conversion_table().num_entries(),
            original.conversion_table().num_entries());
  EXPECT_EQ(idx.total_pages(), original.total_pages());
  EXPECT_EQ(idx.disk().total_postings(),
            original.disk().total_postings());

  // Page contents identical.
  for (TermId t = 0; t < idx.lexicon().size(); ++t) {
    for (uint32_t p = 0; p < idx.lexicon().info(t).pages; ++p) {
      storage::Page pa, pb;
      ASSERT_TRUE(original.disk().ReadPage(PageId{t, p}, &pa).ok());
      ASSERT_TRUE(idx.disk().ReadPage(PageId{t, p}, &pb).ok());
      EXPECT_EQ(pa.block, pb.block);
      EXPECT_DOUBLE_EQ(pa.max_weight, pb.max_weight);
    }
  }

  // Lexicon lookup by text still works after load.
  ASSERT_TRUE(idx.lexicon().Find("beta").ok());
  EXPECT_EQ(idx.lexicon().Find("beta").value(), 1u);
  std::remove(path.c_str());
}

TEST(IndexIoTest, MissingFileFails) {
  EXPECT_EQ(LoadIndex("/nonexistent/dir/x.irbf").status().code(),
            StatusCode::kIOError);
}

TEST(IndexIoTest, WrongMagicRejected) {
  std::string path = TempPath("garbage.irbf");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not an index at all, just text padding 12345678", f);
  std::fclose(f);
  EXPECT_EQ(LoadIndex(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IndexIoTest, TruncatedFileRejected) {
  InvertedIndex original = MakeIndex();
  std::string path = TempPath("truncated.irbf");
  ASSERT_TRUE(SaveIndex(original, path).ok());
  // Truncate to 60% of its size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size * 6 / 10), 0);
  EXPECT_FALSE(LoadIndex(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace irbuf::index
