#include "index/conversion_table.h"

#include <gtest/gtest.h>

namespace irbuf::index {
namespace {

ConversionTable::Row MakeRow(std::initializer_list<uint16_t> values) {
  ConversionTable::Row row{};
  size_t i = 0;
  for (uint16_t v : values) row[i++] = v;
  return row;
}

TEST(ConversionTableTest, LooksUpByFlooredThreshold) {
  ConversionTable table;
  // Pages to process at integer thresholds 0..10.
  table.AddTerm(7, MakeRow({50, 20, 8, 4, 2, 1, 1, 1, 1, 1, 1}));
  EXPECT_EQ(table.PagesToProcess(7, 0.0, 50, 100), 50u);
  EXPECT_EQ(table.PagesToProcess(7, 0.9, 50, 100), 50u);
  EXPECT_EQ(table.PagesToProcess(7, 1.0, 50, 100), 20u);
  EXPECT_EQ(table.PagesToProcess(7, 1.7, 50, 100), 20u);
  EXPECT_EQ(table.PagesToProcess(7, 2.2, 50, 100), 8u);
  EXPECT_EQ(table.PagesToProcess(7, 5.0, 50, 100), 1u);
}

TEST(ConversionTableTest, ClampsAboveMaxThreshold) {
  ConversionTable table;
  table.AddTerm(1, MakeRow({9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 2}));
  EXPECT_EQ(table.PagesToProcess(1, 10.0, 9, 100), 2u);
  EXPECT_EQ(table.PagesToProcess(1, 55.5, 9, 100), 2u);
}

TEST(ConversionTableTest, FmaxShortCircuitsToZero) {
  // Step 4b of the algorithms: fmax <= fadd means the whole list skips.
  ConversionTable table;
  table.AddTerm(1, MakeRow({9, 8, 7, 6, 5, 4, 3, 2, 1, 1, 1}));
  EXPECT_EQ(table.PagesToProcess(1, 12.0, 9, 12), 0u);
  EXPECT_EQ(table.PagesToProcess(1, 12.5, 9, 12), 0u);
  EXPECT_EQ(table.PagesToProcess(1, 11.9, 9, 12), 1u);
}

TEST(ConversionTableTest, SinglePageTermsNeedNoEntry) {
  ConversionTable table;
  EXPECT_EQ(table.PagesToProcess(3, 0.5, 1, 4), 1u);
  EXPECT_EQ(table.PagesToProcess(3, 4.0, 1, 4), 0u);  // fmax <= fadd.
  EXPECT_EQ(table.PagesToProcess(3, 0.0, 0, 0), 0u);
}

TEST(ConversionTableTest, UnknownMultiPageTermIsConservative) {
  ConversionTable table;
  EXPECT_EQ(table.PagesToProcess(9, 3.0, 17, 100), 17u);
}

TEST(ConversionTableTest, MemoryFootprintTracksEntries) {
  ConversionTable table;
  EXPECT_EQ(table.num_entries(), 0u);
  table.AddTerm(0, MakeRow({2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}));
  table.AddTerm(1, MakeRow({3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}));
  EXPECT_EQ(table.num_entries(), 2u);
  EXPECT_GT(table.ApproxBytes(), 0u);
}

}  // namespace
}  // namespace irbuf::index
