#include "index/lexicon.h"

#include <gtest/gtest.h>

namespace irbuf::index {
namespace {

TEST(LexiconTest, AddAndFind) {
  Lexicon lexicon;
  TermId a = lexicon.AddTerm("fiber");
  TermId b = lexicon.AddTerm("price");
  EXPECT_NE(a, b);
  EXPECT_EQ(lexicon.size(), 2u);
  ASSERT_TRUE(lexicon.Find("fiber").ok());
  EXPECT_EQ(lexicon.Find("fiber").value(), a);
  EXPECT_EQ(lexicon.Find("price").value(), b);
}

TEST(LexiconTest, AddTermIsIdempotentForSameText) {
  Lexicon lexicon;
  TermId a = lexicon.AddTerm("invest");
  TermId b = lexicon.AddTerm("invest");
  EXPECT_EQ(a, b);
  EXPECT_EQ(lexicon.size(), 1u);
}

TEST(LexiconTest, EmptyTextAlwaysCreatesFreshTerm) {
  Lexicon lexicon;
  TermId a = lexicon.AddTerm("");
  TermId b = lexicon.AddTerm("");
  EXPECT_NE(a, b);
}

TEST(LexiconTest, MissingTermNotFound) {
  Lexicon lexicon;
  lexicon.AddTerm("x");
  EXPECT_EQ(lexicon.Find("y").status().code(), StatusCode::kNotFound);
}

TEST(LexiconTest, InfoIsMutable) {
  Lexicon lexicon;
  TermId t = lexicon.AddTerm("drastic");
  lexicon.mutable_info(t).ft = 44;
  lexicon.mutable_info(t).idf = 7.09;
  lexicon.mutable_info(t).fmax = 12;
  lexicon.mutable_info(t).pages = 4;
  const TermInfo& info = lexicon.info(t);
  EXPECT_EQ(info.ft, 44u);
  EXPECT_DOUBLE_EQ(info.idf, 7.09);
  EXPECT_EQ(info.fmax, 12u);
  EXPECT_EQ(info.pages, 4u);
  EXPECT_EQ(info.text, "drastic");
}

}  // namespace
}  // namespace irbuf::index
