#include "serve/concurrent_buffer_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "../buffer/test_disk.h"
#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "util/rng.h"

namespace irbuf::serve {
namespace {

using buffer::MakeTestDisk;
using buffer::PinnedPage;
using buffer::PolicyKind;

ConcurrentPoolOptions Opts(size_t capacity,
                           PolicyKind policy = PolicyKind::kLru) {
  ConcurrentPoolOptions o;
  o.capacity = capacity;
  o.policy = policy;
  return o;
}

TEST(ConcurrentPoolTest, PinBlocksEvictionAndReleaseAllows) {
  auto disk = MakeTestDisk({3});
  ConcurrentBufferPool pool(disk.get(), Opts(2));

  auto a = pool.FetchPinned(PageId{0, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.value().was_miss());
  EXPECT_EQ(pool.PinCount(PageId{0, 0}), 1u);

  auto b = pool.FetchPinned(PageId{0, 1});
  ASSERT_TRUE(b.ok());

  // Both frames pinned: a third distinct page cannot get a frame.
  auto c = pool.FetchPinned(PageId{0, 2});
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);

  // Releasing one pin frees exactly one frame.
  a.value().Release();
  EXPECT_EQ(pool.PinCount(PageId{0, 0}), 0u);
  auto c2 = pool.FetchPinned(PageId{0, 2});
  ASSERT_TRUE(c2.ok());
  // Page {0,0} was the only unpinned frame, so it was the victim.
  EXPECT_EQ(pool.ResidentPages(0), 2u);
  EXPECT_EQ(pool.PinCount(PageId{0, 1}), 1u);

  const buffer::BufferStats stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.fetches, stats.hits + stats.misses);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ConcurrentPoolTest, PinnedPointerSurvivesEvictionPressure) {
  auto disk = MakeTestDisk({8});
  ConcurrentBufferPool pool(disk.get(), Opts(3));

  auto pinned = pool.FetchPinned(PageId{0, 0});
  ASSERT_TRUE(pinned.ok());
  const storage::Page* raw = pinned.value().get();
  ASSERT_NE(raw, nullptr);

  // Churn every other frame several times over.
  for (int round = 0; round < 3; ++round) {
    for (uint32_t p = 1; p < 8; ++p) {
      auto r = pool.FetchPinned(PageId{0, p});
      ASSERT_TRUE(r.ok());
    }
  }
  // The pinned page was never evicted and its frame never recycled.
  EXPECT_EQ(pinned.value().get(), raw);
  EXPECT_EQ(raw->id.page_no, 0u);
  EXPECT_EQ(pool.PinCount(PageId{0, 0}), 1u);
}

TEST(ConcurrentPoolTest, HitMissAttributionPerFetch) {
  auto disk = MakeTestDisk({2});
  ConcurrentBufferPool pool(disk.get(), Opts(4));

  auto miss = pool.FetchPinned(PageId{0, 0});
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss.value().was_miss());
  miss.value().Release();

  auto hit = pool.FetchPinned(PageId{0, 0});
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit.value().was_miss());

  const buffer::BufferStats stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.fetches, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.misses, disk->stats().reads);
}

TEST(ConcurrentPoolTest, UnknownPageReportsNotFoundAndFreesTheFrame) {
  auto disk = MakeTestDisk({1});
  ConcurrentBufferPool pool(disk.get(), Opts(1));

  auto bad = pool.FetchPinned(PageId{7, 0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);

  // The reserved frame went back to the free list; the pool still works
  // and the failed fetch was not counted (misses == disk reads).
  auto good = pool.FetchPinned(PageId{0, 0});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(pool.StatsSnapshot().misses, disk->stats().reads);
}

/// Drives BufferManager and ConcurrentBufferPool through the same fetch
/// sequence on one thread and asserts identical decisions.
void ExpectSingleThreadEquivalence(PolicyKind kind, bool with_context) {
  auto disk_a = MakeTestDisk({6, 4, 5, 3});
  auto disk_b = MakeTestDisk({6, 4, 5, 3});
  buffer::BufferManager manager(disk_a.get(), 4, buffer::MakePolicy(kind));
  ConcurrentBufferPool pool(disk_b.get(), Opts(4, kind));

  if (with_context) {
    buffer::QueryContext ctx;
    ctx.SetWeight(0, 2.0);
    ctx.SetWeight(2, 5.0);
    buffer::QueryContext ctx_copy = ctx;
    manager.SetQueryContext(std::move(ctx));
    pool.SetQueryContext(std::move(ctx_copy));
  }

  Pcg32 rng(99);
  const std::vector<uint32_t> pages = {6, 4, 5, 3};
  for (int i = 0; i < 400; ++i) {
    const TermId term = rng.NextBounded(4);
    const PageId id{term, rng.NextBounded(pages[term])};
    auto a = manager.FetchPinned(id);
    auto b = pool.FetchPinned(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().was_miss(), b.value().was_miss()) << "fetch " << i;
  }
  for (TermId t = 0; t < 4; ++t) {
    EXPECT_EQ(manager.ResidentPages(t), pool.ResidentPages(t)) << "t" << t;
  }
  const buffer::BufferStats sa = manager.StatsSnapshot();
  const buffer::BufferStats sb = pool.StatsSnapshot();
  EXPECT_EQ(sa.fetches, sb.fetches);
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.evictions, sb.evictions);
}

TEST(ConcurrentPoolTest, SingleThreadMatchesBufferManagerLru) {
  ExpectSingleThreadEquivalence(PolicyKind::kLru, false);
}

TEST(ConcurrentPoolTest, SingleThreadMatchesBufferManagerRap) {
  ExpectSingleThreadEquivalence(PolicyKind::kRap, true);
}

TEST(ConcurrentPoolTest, SingleThreadMatchesBufferManagerClock) {
  ExpectSingleThreadEquivalence(PolicyKind::kClock, false);
}

TEST(ConcurrentPoolTest, ExternalContextModeIgnoresSetQueryContext) {
  auto disk = MakeTestDisk({2});
  ConcurrentBufferPool pool(disk.get(), Opts(2, PolicyKind::kRap));
  pool.SetExternalContextMode(true);
  buffer::QueryContext ctx;
  ctx.SetWeight(0, 3.0);
  pool.SetQueryContext(std::move(ctx));  // Must be a no-op, not a crash.
  auto r = pool.FetchPinned(PageId{0, 0});
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace irbuf::serve
