// Differential coverage for the latency-attribution layer: turning the
// instrumentation ON must not change a single answer or counter, and
// turning it OFF must leave the serve path exactly as the seed had it
// (nullptr recorder = never-instrumented; the constructor of every
// ScopedSpan site is one null test). The bit-identity claim in
// ISSUE/ROADMAP rides on these tests plus the BM_SpanScope pair in
// bench_micro.

#include <gtest/gtest.h>

#include <array>
#include <initializer_list>
#include <optional>
#include <vector>

#include "../core/test_index.h"
#include "obs/span.h"
#include "serve/query_server.h"

namespace irbuf::serve {
namespace {

class SpanDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tc_.emplace(core::MakeRandomCollection(321, 400, 16, 4));
  }

  static std::vector<core::Query> QueryStream() {
    auto make = [](std::initializer_list<TermId> terms) {
      core::Query q;
      for (TermId t : terms) q.AddTerm(t);
      return q;
    };
    return {
        make({0, 1, 2}), make({0, 1, 2, 3}),  make({4, 5, 6}),
        make({7, 8}),    make({0, 2, 7, 10}), make({11, 12, 13}),
        make({0, 1, 2, 3, 4}),
    };
  }

  struct RunOutcome {
    std::vector<core::EvalResult> results;
    buffer::BufferStats pool;
  };

  /// Runs the query stream against a fresh server, one query in flight
  /// at a time (so the pool's eviction history is deterministic and the
  /// counters are comparable bit for bit across runs).
  RunOutcome Run(obs::SpanRecorder* recorder, bool profile_contention) {
    ServerOptions options;
    options.num_threads = 2;
    options.buffer_pages = 16;
    options.policy = buffer::PolicyKind::kRap;
    options.eval.buffer_aware = true;
    options.span_recorder = recorder;
    options.profile_contention = profile_contention;
    QueryServer server(&tc_->index, options);
    server.Start();

    RunOutcome outcome;
    for (const core::Query& q : QueryStream()) {
      auto response = server.Execute(1, q);
      EXPECT_TRUE(response.ok());
      if (response.ok()) {
        outcome.results.push_back(std::move(response.value().eval));
      }
    }
    outcome.pool = server.PoolStatsSnapshot();
    server.Stop();
    return outcome;
  }

  std::optional<core::TestCollection> tc_;
};

TEST_F(SpanDifferentialTest, InstrumentationOnIsBitIdenticalToOff) {
  RunOutcome off = Run(nullptr, false);

  obs::SpanRecorder recorder;
  RunOutcome on = Run(&recorder, true);

  ASSERT_EQ(off.results.size(), on.results.size());
  for (size_t i = 0; i < off.results.size(); ++i) {
    // Rankings: same docs, bit-identical scores.
    ASSERT_EQ(off.results[i].top_docs.size(), on.results[i].top_docs.size())
        << "query " << i;
    for (size_t d = 0; d < off.results[i].top_docs.size(); ++d) {
      EXPECT_EQ(off.results[i].top_docs[d].doc, on.results[i].top_docs[d].doc)
          << "query " << i;
      EXPECT_EQ(off.results[i].top_docs[d].score,
                on.results[i].top_docs[d].score)
          << "query " << i;
    }
    // I/O accounting: the spans wrap the work, they don't add any.
    EXPECT_EQ(off.results[i].disk_reads, on.results[i].disk_reads)
        << "query " << i;
    EXPECT_EQ(off.results[i].pages_processed, on.results[i].pages_processed)
        << "query " << i;
    EXPECT_EQ(off.results[i].postings_processed,
              on.results[i].postings_processed)
        << "query " << i;
  }
  EXPECT_EQ(off.pool.fetches, on.pool.fetches);
  EXPECT_EQ(off.pool.hits, on.pool.hits);
  EXPECT_EQ(off.pool.misses, on.pool.misses);
  EXPECT_EQ(off.pool.evictions, on.pool.evictions);
}

TEST_F(SpanDifferentialTest, InstrumentedRunRecordsTheWholeStageVocabulary) {
  obs::SpanRecorder recorder;
  RunOutcome on = Run(&recorder, true);
  ASSERT_EQ(on.results.size(), QueryStream().size());

  const std::vector<obs::ThreadSpans> snapshot = recorder.Snapshot();
  std::array<uint64_t, obs::kNumSpanStages> by_stage{};
  for (const obs::ThreadSpans& ts : snapshot) {
    for (const obs::Span& s : ts.spans) {
      by_stage[static_cast<size_t>(s.stage)]++;
    }
  }
  using obs::SpanStage;
  // One queue-wait, context snapshot, evaluate and top-k per query.
  const uint64_t n = on.results.size();
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kQueueWait)], n);
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kContextSnapshot)], n);
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kEvaluate)], n);
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kTopKMerge)], n);
  // Per-term and per-page stages track the eval counters exactly. The
  // term loop opens its span before the skip test, so skipped terms
  // still record one (cheap) kTermLoop span each.
  uint64_t terms = 0;
  for (const core::Query& q : QueryStream()) terms += q.size();
  uint64_t pages = 0;
  uint64_t reads = 0;
  for (const auto& r : on.results) {
    pages += r.pages_processed;
    reads += r.disk_reads;
  }
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kTermLoop)], terms);
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kPagePin)], pages);
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kMissRead)], reads);
  // Every miss CRC-verifies and decodes its page inside the read.
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kCrcVerify)], reads);
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kBlockDecode)], reads);
  EXPECT_EQ(by_stage[static_cast<size_t>(SpanStage::kAccumulate)], pages);

  // The attribution sees every query, tagged with its admission id.
  const obs::SpanAttribution attr = obs::ComputeAttribution(snapshot);
  EXPECT_EQ(attr.queries, n);
  EXPECT_GT(attr.wall_p99_us, 0.0);
}

TEST_F(SpanDifferentialTest, ContentionProfilingCoversTheServeMutexes) {
  obs::SpanRecorder recorder;
  ServerOptions options;
  options.num_threads = 2;
  options.buffer_pages = 16;
  options.span_recorder = &recorder;
  options.profile_contention = true;
  QueryServer server(&tc_->index, options);
  server.Start();
  for (const core::Query& q : QueryStream()) {
    ASSERT_TRUE(server.Execute(1, q).ok());
  }
  server.Stop();

  // Every queue submit/pickup goes through the tracked queue mutex, and
  // every page fetch through the tracked policy latch; the counts prove
  // TrackContention reached the real locks, not copies.
  EXPECT_GT(server.queue_wait_stats()->acquisitions(), 0u);
  EXPECT_GT(server.mutable_pool()->latch_wait_stats()->acquisitions(), 0u);
  EXPECT_GT(server.mutable_pool()->stripe_wait_stats()->acquisitions(), 0u);
}

TEST_F(SpanDifferentialTest, UnprofiledRunLeavesStatsUntouched) {
  ServerOptions options;
  options.num_threads = 1;
  options.buffer_pages = 16;
  QueryServer server(&tc_->index, options);
  server.Start();
  ASSERT_TRUE(server.Execute(1, QueryStream()[0]).ok());
  server.Stop();
  EXPECT_EQ(server.queue_wait_stats()->acquisitions(), 0u);
  EXPECT_EQ(server.mutable_pool()->latch_wait_stats()->acquisitions(), 0u);
  EXPECT_EQ(server.mutable_pool()->stripe_wait_stats()->acquisitions(), 0u);
}

}  // namespace
}  // namespace irbuf::serve
