// Overload control: deadline-aware shedding from the admission queue
// (kShedWhileQueued, CoDel-style against the observed p50 service time)
// and the queue-delay-EWMA brownout ladder (trim terms, then cap pages
// per term) that degrades answers before the server starts dropping
// them. Also pins the serve.* metric split: admission bounces and
// queued sheds are separate counters, and shed queries never pollute
// the latency histogram.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "../core/test_index.h"
#include "core/filtering_evaluator.h"
#include "fault/backoff.h"
#include "obs/metrics.h"
#include "serve/query_server.h"

namespace irbuf {
namespace {

using core::MakeRandomCollection;
using core::TestCollection;

core::Query WideQuery(uint32_t num_terms) {
  core::Query q;
  for (TermId t = 0; t < num_terms; ++t) q.AddTerm(t, 1);
  return q;
}

// ---- Shedding: a queued query whose budget is spent is dropped with a
// typed status, visible in its own counter, invisible to latency. ----

TEST(OverloadShedTest, QueuedQueryPastDeadlineIsShedTyped) {
  TestCollection tc = MakeRandomCollection(911, 200, 8, 3);
  serve::ServerOptions options;
  options.num_threads = 1;
  options.queue_depth = 16;
  options.buffer_pages = 8;
  options.deadline_us = 20'000;
  options.overload.enabled = true;
  serve::QueryServer server(&tc.index, options);
  obs::MetricsRegistry registry;
  server.BindMetrics(&registry);

  // Fill the queue BEFORE starting the worker, then let every
  // submission-measured deadline elapse: with the budget spent while
  // queued, all four are shed at dequeue — no worker ever evaluates
  // into a guaranteed-late answer.
  std::vector<std::future<Result<serve::QueryResponse>>> futures;
  for (int i = 0; i < 4; ++i) {
    auto submitted = server.Submit(1, WideQuery(8));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  fault::SleepUs(30'000);
  server.Start();

  for (auto& f : futures) {
    Result<serve::QueryResponse> r = f.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kShedWhileQueued)
        << r.status().ToString();
  }

  // A fresh query with its budget intact is served normally.
  auto fresh = server.Execute(1, WideQuery(8));
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  server.Stop();

  const serve::ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.shed, 4u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.failed, 0u);

  // Metric split: sheds land in their own counter, not in failures or
  // admission rejections — and never in the latency histogram.
  EXPECT_EQ(registry.FindCounter("serve.shed_while_queued")->value(), 4u);
  EXPECT_EQ(registry.FindCounter("serve.rejected_at_admission")->value(), 0u);
  EXPECT_EQ(registry.FindHistogram("serve.latency_us")->count(), 1u);
}

TEST(OverloadShedTest, ShedRequiresMinimumServiceSamples) {
  TestCollection tc = MakeRandomCollection(917, 150, 6, 3);
  serve::ServerOptions options;
  options.num_threads = 1;
  options.buffer_pages = 8;
  options.deadline_us = 1'000'000;  // Generous: nothing actually late.
  options.overload.enabled = true;
  options.overload.min_service_samples = 1u << 30;  // p50 never trusted.
  options.overload.shed_factor = 1e9;  // Would shed everything if trusted.
  serve::QueryServer server(&tc.index, options);
  server.Start();
  for (int i = 0; i < 5; ++i) {
    auto r = server.Execute(1, WideQuery(6));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  server.Stop();
  EXPECT_EQ(server.StatsSnapshot().shed, 0u);
  EXPECT_EQ(server.StatsSnapshot().completed, 5u);
}

TEST(OverloadShedTest, DisabledOverloadNeverSheds) {
  TestCollection tc = MakeRandomCollection(919, 150, 6, 3);
  serve::ServerOptions options;
  options.num_threads = 1;
  options.io_delay_us_per_miss = 2000;
  options.deadline_us = 500;  // Tight — but measured from pickup.
  serve::QueryServer server(&tc.index, options);

  std::vector<std::future<Result<serve::QueryResponse>>> futures;
  for (int i = 0; i < 3; ++i) {
    auto submitted = server.Submit(1, WideQuery(6));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  fault::SleepUs(2000);
  server.Start();
  for (auto& f : futures) {
    Result<serve::QueryResponse> r = f.get();
    // Without overload control the deadline starts at pickup: queue
    // dwell is free, every query is evaluated (partial at worst).
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  server.Stop();
  EXPECT_EQ(server.StatsSnapshot().shed, 0u);
  EXPECT_EQ(server.StatsSnapshot().completed, 3u);
}

// ---- Brownout ladder: queue delay trims work before anything sheds. ----

TEST(OverloadBrownoutTest, QueueDelayEwmaTrimsTermsThenPages) {
  TestCollection tc = MakeRandomCollection(929, 220, 10, 3);
  serve::ServerOptions options;
  options.num_threads = 1;
  options.queue_depth = 16;
  options.buffer_pages = 8;
  options.deadline_us = 0;  // No deadline: isolate the ladder from sheds.
  options.overload.enabled = true;
  options.overload.ewma_alpha = 1.0;  // EWMA == last dwell: deterministic.
  options.overload.brownout_term_threshold_us = 500;
  options.overload.brownout_max_terms = 3;
  options.overload.brownout_page_threshold_us = 1u << 30;  // Rung 2 off.
  serve::QueryServer server(&tc.index, options);
  obs::MetricsRegistry registry;
  server.BindMetrics(&registry);

  // Two queries queued before Start: the first is dequeued with a dwell
  // well past the rung-1 threshold, so it runs term-trimmed.
  std::vector<std::future<Result<serve::QueryResponse>>> futures;
  for (int i = 0; i < 2; ++i) {
    auto submitted = server.Submit(1, WideQuery(10));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  fault::SleepUs(2000);
  server.Start();
  for (auto& f : futures) {
    Result<serve::QueryResponse> r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const core::EvalResult& er = r.value().eval;
    // Rung 1: at most 3 of the 10 terms evaluated, the rest forfeited
    // into the quality bound — degraded, but answered and honest.
    EXPECT_TRUE(er.work_trimmed);
    EXPECT_TRUE(er.degraded);
    EXPECT_GT(er.quality_bound, 0.0);
  }
  server.Stop();
  EXPECT_GE(server.QueueDelayEwmaUs(), 500.0);
  EXPECT_GE(registry.FindCounter("serve.brownout_trim_terms")->value(), 1u);
  EXPECT_EQ(registry.FindCounter("serve.brownout_trim_pages")->value(), 0u);
  EXPECT_EQ(server.StatsSnapshot().shed, 0u);  // Trimmed, never dropped.
}

TEST(OverloadBrownoutTest, SecondRungCapsPagesPerTerm) {
  TestCollection tc = MakeRandomCollection(937, 220, 8, 3);
  serve::ServerOptions options;
  options.num_threads = 1;
  options.buffer_pages = 8;
  options.deadline_us = 0;
  options.overload.enabled = true;
  options.overload.ewma_alpha = 1.0;
  options.overload.brownout_term_threshold_us = 500;
  options.overload.brownout_max_terms = 8;  // Rung 1 armed but roomy.
  options.overload.brownout_page_threshold_us = 500;
  options.overload.brownout_max_pages_per_term = 1;
  serve::QueryServer server(&tc.index, options);
  obs::MetricsRegistry registry;
  server.BindMetrics(&registry);

  auto submitted = server.Submit(1, WideQuery(8));
  ASSERT_TRUE(submitted.ok());
  fault::SleepUs(2000);
  server.Start();
  Result<serve::QueryResponse> r = submitted.value().get();
  server.Stop();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const core::EvalResult& er = r.value().eval;
  // Rung 2: every term reads at most one page; the trimmed tail pages
  // are accounted like deadline-forfeited ones.
  EXPECT_TRUE(er.work_trimmed);
  EXPECT_GT(er.pages_trimmed, 0u);
  EXPECT_GT(er.quality_bound, 0.0);
  EXPECT_LE(er.pages_processed, 8u);  // <= one page per term.
  EXPECT_GE(registry.FindCounter("serve.brownout_trim_pages")->value(), 1u);
}

TEST(OverloadBrownoutTest, IdleServerNeverBrownsOut) {
  TestCollection tc = MakeRandomCollection(941, 180, 8, 3);
  serve::ServerOptions options;
  options.num_threads = 2;
  options.overload.enabled = true;
  options.overload.brownout_term_threshold_us = 50'000;
  serve::QueryServer server(&tc.index, options);
  server.Start();
  // Closed-loop single client: dwell stays near zero, no rung engages.
  for (int i = 0; i < 6; ++i) {
    auto r = server.Execute(1, WideQuery(8));
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().eval.work_trimmed);
    EXPECT_FALSE(r.value().eval.degraded);
  }
  server.Stop();
  EXPECT_LT(server.QueueDelayEwmaUs(), 50'000.0);
}

// ---- The admission-bounce counter stays separate from sheds. ----

TEST(OverloadMetricSplitTest, AdmissionRejectionIsNotAShed) {
  TestCollection tc = MakeRandomCollection(947, 150, 6, 3);
  serve::ServerOptions options;
  options.num_threads = 1;
  options.queue_depth = 2;
  options.overload.enabled = true;
  options.deadline_us = 1'000'000;
  serve::QueryServer server(&tc.index, options);
  obs::MetricsRegistry registry;
  server.BindMetrics(&registry);

  // Not started: submissions past queue_depth bounce at admission.
  std::vector<std::future<Result<serve::QueryResponse>>> futures;
  size_t bounced = 0;
  for (int i = 0; i < 5; ++i) {
    auto submitted = server.Submit(1, WideQuery(6));
    if (submitted.ok()) {
      futures.push_back(std::move(submitted).value());
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
      ++bounced;
    }
  }
  EXPECT_EQ(bounced, 3u);
  server.Start();
  for (auto& f : futures) (void)f.get();
  server.Stop();

  const serve::ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(registry.FindCounter("serve.rejected_at_admission")->value(), 3u);
  EXPECT_EQ(stats.shed + stats.completed, 2u);
}

}  // namespace
}  // namespace irbuf
