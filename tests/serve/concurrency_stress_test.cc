// Multi-threaded stress tests for the serving subsystem. These run under
// ThreadSanitizer in CI (ctest -L concurrency) — they are written to
// maximise interleavings (many threads, small pool, overlapping term
// sets), and their assertions are conservation laws that hold under any
// schedule, not schedule-dependent values.

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "../buffer/test_disk.h"
#include "../core/test_index.h"
#include "fault/backoff.h"
#include "serve/concurrent_buffer_pool.h"
#include "serve/query_server.h"
#include "util/rng.h"

namespace irbuf::serve {
namespace {

constexpr size_t kClients = 8;
constexpr size_t kQueriesPerClient = 125;

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tc_.emplace(core::MakeRandomCollection(123, 500, 18, 4));
  }

  /// A random query of 2-5 terms from a client-specific window, so
  /// clients overlap pairwise but not globally (contended pages).
  core::Query RandomQuery(size_t client, Pcg32* rng) {
    const uint32_t num_terms = 18;
    const uint32_t base = static_cast<uint32_t>(client * 2) % num_terms;
    core::Query q;
    const uint32_t k = 2 + rng->NextBounded(4);
    for (uint32_t i = 0; i < k; ++i) {
      q.AddTerm((base + rng->NextBounded(9)) % num_terms);
    }
    return q;
  }

  /// Closed-loop load: kClients threads, each its own session, one
  /// outstanding query at a time. Asserts the conservation laws.
  void RunClosedLoop(const ServerOptions& options) {
    QueryServer server(&tc_->index, options);
    server.Start();
    const uint64_t disk_reads_before = tc_->index.disk().stats().reads;

    std::vector<std::thread> clients;
    std::atomic<uint64_t> answered{0};
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Pcg32 rng(1000 + c);
        for (size_t i = 0; i < kQueriesPerClient; ++i) {
          auto r = server.Execute(c, RandomQuery(c, &rng));
          ASSERT_TRUE(r.ok()) << r.status().message();
          ASSERT_FALSE(r.value().eval.top_docs.empty());
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : clients) t.join();
    server.Stop();

    const uint64_t total = kClients * kQueriesPerClient;
    EXPECT_EQ(answered.load(), total);

    const ServerStats stats = server.StatsSnapshot();
    EXPECT_EQ(stats.submitted, total);
    EXPECT_EQ(stats.completed, total);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.rejected, 0u);  // Closed loop never overflows.

    // Pool conservation: every fetch is exactly one of hit/miss, and
    // every miss is exactly one disk read.
    const buffer::BufferStats pool = server.PoolStatsSnapshot();
    EXPECT_EQ(pool.fetches, pool.hits + pool.misses);
    EXPECT_EQ(pool.misses,
              tc_->index.disk().stats().reads - disk_reads_before);
    EXPECT_GT(pool.hits, 0u);  // Overlapping topics must share pages.

    // Session conservation: per-user accounting sums to the totals.
    uint64_t session_queries = 0;
    uint64_t session_reads = 0;
    for (size_t c = 0; c < kClients; ++c) {
      const SessionStats s = server.SessionSnapshot(c);
      EXPECT_EQ(s.queries, kQueriesPerClient) << "session " << c;
      session_queries += s.queries;
      session_reads += s.disk_reads;
    }
    EXPECT_EQ(session_queries, total);
    EXPECT_EQ(session_reads, pool.misses);
  }

  std::optional<core::TestCollection> tc_;
};

TEST_F(ConcurrencyStressTest, EightWorkersLruDfConserveStats) {
  ServerOptions options;
  options.num_threads = 8;
  options.queue_depth = kClients;
  options.buffer_pages = 32;
  options.policy = buffer::PolicyKind::kLru;
  RunClosedLoop(options);
}

TEST_F(ConcurrencyStressTest, EightWorkersRapBafSharedContextConserveStats) {
  // The hardest configuration: ranking-aware replacement reading the
  // merged context snapshot while every completion republishes it, and
  // BAF reading b_t estimates that race with insertions/evictions.
  ServerOptions options;
  options.num_threads = 8;
  options.queue_depth = kClients;
  options.buffer_pages = 32;
  options.policy = buffer::PolicyKind::kRap;
  options.eval.buffer_aware = true;
  options.shared_context = true;
  RunClosedLoop(options);
}

TEST_F(ConcurrencyStressTest, SubmitFloodRespectsQueueBound) {
  // Open-loop flood from many threads against a tiny queue: every
  // submission is either admitted (and eventually answered) or visibly
  // rejected — nothing is lost or double-counted.
  ServerOptions options;
  options.num_threads = 2;
  options.queue_depth = 4;
  options.buffer_pages = 32;
  QueryServer server(&tc_->index, options);
  server.Start();

  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> floods;
  for (size_t c = 0; c < 4; ++c) {
    floods.emplace_back([&, c] {
      Pcg32 rng(77 + c);
      std::vector<std::future<Result<QueryResponse>>> pending;
      for (size_t i = 0; i < 100; ++i) {
        auto r = server.Submit(c, RandomQuery(c, &rng));
        if (r.ok()) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          pending.push_back(std::move(r).value());
        } else {
          ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
      for (auto& f : pending) {
        ASSERT_TRUE(f.get().ok());  // Admitted => answered.
      }
    });
  }
  for (auto& t : floods) t.join();
  server.Stop();

  const ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.submitted, admitted.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.completed, admitted.load());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(admitted.load() + rejected.load(), 400u);
}

TEST(ConcurrentPoolStressTest, HammerWithHeldPinsConservesStats) {
  // Raw pool hammer: each thread holds one pin while fetching a second
  // page, so the evictor constantly trips over pinned frames and must
  // take the re-check-and-retry path.
  auto disk = buffer::MakeTestDisk({12, 12, 12, 12});
  ConcurrentPoolOptions opts;
  opts.capacity = 24;
  opts.policy = buffer::PolicyKind::kLru;
  ConcurrentBufferPool pool(disk.get(), opts);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Pcg32 rng(500 + t);
      for (int i = 0; i < 2000; ++i) {
        const PageId first{rng.NextBounded(4), rng.NextBounded(12)};
        auto held = pool.FetchPinned(first);
        ASSERT_TRUE(held.ok()) << held.status().message();
        ASSERT_EQ(held.value().get()->id.term, first.term);
        const PageId second{rng.NextBounded(4), rng.NextBounded(12)};
        auto other = pool.FetchPinned(second);
        ASSERT_TRUE(other.ok()) << other.status().message();
        ASSERT_EQ(other.value().get()->id.page_no, second.page_no);
        // Held pin's frame must have stayed intact throughout.
        ASSERT_EQ(held.value().get()->id.term, first.term);
        ASSERT_EQ(held.value().get()->id.page_no, first.page_no);
      }
    });
  }
  for (auto& t : threads) t.join();

  const buffer::BufferStats stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.fetches, 8u * 2000u * 2u);
  EXPECT_EQ(stats.fetches, stats.hits + stats.misses);
  EXPECT_EQ(stats.misses, disk->stats().reads);
  // Everything unpinned at the end.
  for (TermId term = 0; term < 4; ++term) {
    for (uint32_t p = 0; p < 12; ++p) {
      EXPECT_EQ(pool.PinCount(PageId{term, p}), 0u);
    }
  }
}

TEST(ConcurrentPoolStressTest, SamePageMissStormIssuesExactlyOneRead) {
  // The duplicate-read race: many threads demand the SAME cold page
  // while the (slow, simulated) device transfer is in flight. The
  // in-flight table must coalesce all of them onto one PageLoad, so the
  // device sees exactly one read under ANY schedule — the loader counts
  // the miss, everyone else a (possibly coalesced) hit.
  auto disk = buffer::MakeTestDisk({4});
  ConcurrentPoolOptions opts;
  opts.capacity = 8;
  opts.io_delay_us_per_miss = 10000;  // A wide window for the storm.
  ConcurrentBufferPool pool(disk.get(), opts);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto r = pool.FetchPinned(PageId{0, 0});
      ASSERT_TRUE(r.ok()) << r.status().message();
      ASSERT_EQ(r.value().get()->id.page_no, 0u);
    });
  }
  for (auto& t : threads) t.join();

  const buffer::BufferStats stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.fetches, 8u);
  EXPECT_EQ(stats.misses, 1u);  // One loader; the page is never evicted.
  EXPECT_EQ(stats.hits, 7u);
  EXPECT_EQ(disk->stats().reads, 1u);
  const PoolPrefetchStats ps = pool.PrefetchStatsSnapshot();
  EXPECT_EQ(ps.device_reads, 1u);
  // How many of the 7 hits actually waited on the in-flight load is
  // schedule-dependent; it can never exceed the hit count.
  EXPECT_LE(ps.coalesced_misses, 7u);
}

TEST(ConcurrentPoolStressTest, MissStormConservesDiskReadsExactly) {
  // Heavy overlap plus eviction pressure: misses must equal device
  // reads EXACTLY (no duplicate reads, no unaccounted reads) even while
  // the same page is simultaneously demanded, evicted and re-demanded.
  // The pool destructor re-checks both conservation laws under DCHECK.
  auto disk = buffer::MakeTestDisk({12, 12});
  ConcurrentPoolOptions opts;
  opts.capacity = 10;  // Far below the 24-page working set.
  opts.io_delay_us_per_miss = 200;
  ConcurrentBufferPool pool(disk.get(), opts);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Pcg32 rng(42 + t);
      for (int i = 0; i < 300; ++i) {
        const PageId id{rng.NextBounded(2), rng.NextBounded(12)};
        auto r = pool.FetchPinned(id);
        ASSERT_TRUE(r.ok()) << r.status().message();
        ASSERT_EQ(r.value().get()->id.page_no, id.page_no);
      }
    });
  }
  for (auto& t : threads) t.join();

  const buffer::BufferStats stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.fetches, stats.hits + stats.misses);
  EXPECT_EQ(stats.misses, disk->stats().reads);  // Exact, not <=.
  EXPECT_EQ(pool.PrefetchStatsSnapshot().device_reads, disk->stats().reads);
}

TEST(ConcurrentPoolStressTest, PrefetchHammerConservesDeviceReads) {
  // Readahead and demand racing on the same pages: every successful
  // device read is accounted exactly once — misses + prefetch_issued ==
  // device reads == what the disk counted — and the destructor
  // re-checks the same law after joining the I/O workers.
  auto disk = buffer::MakeTestDisk({10, 10, 10, 10});
  ConcurrentPoolOptions opts;
  opts.capacity = 24;
  opts.prefetch_depth = 4;
  opts.io_delay_us_per_miss = 100;
  ConcurrentBufferPool pool(disk.get(), opts);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Pcg32 rng(7 + t);
      for (int i = 0; i < 200; ++i) {
        const TermId term = rng.NextBounded(4);
        const uint32_t page = rng.NextBounded(10);
        if (i % 4 == 0) {
          std::vector<PageId> plan;
          for (uint32_t p = page; p < 10; ++p) {
            plan.push_back(PageId{term, p});
          }
          pool.Prefetch(buffer::PageAccessPlan(plan.data(), plan.size()));
        }
        auto r = pool.FetchPinned(PageId{term, page});
        ASSERT_TRUE(r.ok()) << r.status().message();
        ASSERT_EQ(r.value().get()->id.term, term);
      }
    });
  }
  for (auto& t : threads) t.join();

  // The clients are done, but readahead workers may still be draining
  // hints; wait until the device-read counter goes quiet before taking
  // the quiescent snapshots.
  uint64_t last = pool.PrefetchStatsSnapshot().device_reads;
  for (int i = 0; i < 100; ++i) {
    fault::SleepUs(20000);
    const uint64_t now = pool.PrefetchStatsSnapshot().device_reads;
    if (now == last && now == disk->stats().reads) break;
    last = now;
  }

  const buffer::BufferStats stats = pool.StatsSnapshot();
  const PoolPrefetchStats ps = pool.PrefetchStatsSnapshot();
  EXPECT_EQ(stats.fetches, stats.hits + stats.misses);
  EXPECT_EQ(stats.misses + ps.issued, ps.device_reads);
  EXPECT_EQ(ps.device_reads, disk->stats().reads);
  // Every issued readahead is at most one of used/wasted (or still
  // sitting untouched in the window).
  EXPECT_LE(ps.used + ps.wasted, ps.issued);
}

TEST(ConcurrentPoolStressTest, SimulatedIoDelayOverlapsAcrossThreads) {
  // With a per-miss device delay, N threads missing on N distinct pages
  // must overlap their (simulated) I/O: wall time for the batch is far
  // below N * delay. This is the mechanism the throughput benchmark
  // relies on, so pin it down here.
  auto disk = buffer::MakeTestDisk({16});
  ConcurrentPoolOptions opts;
  opts.capacity = 16;
  opts.io_delay_us_per_miss = 20000;  // 20 ms per miss.
  ConcurrentBufferPool pool(disk.get(), opts);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto r = pool.FetchPinned(PageId{0, t});
      ASSERT_TRUE(r.ok());
    });
  }
  for (auto& t : threads) t.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_EQ(pool.StatsSnapshot().misses, 8u);
  // Serial would be >= 160 ms; allow generous scheduling slack.
  EXPECT_LT(elapsed.count(), 120);
}

}  // namespace
}  // namespace irbuf::serve
