#include "fault/circuit_breaker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fault/backoff.h"
#include "fault/fault_injector.h"
#include "fault/resilient.h"
#include "obs/metrics.h"
#include "serve/concurrent_buffer_pool.h"
#include "storage/simulated_disk.h"

namespace irbuf::fault {
namespace {

BreakerOptions SmallBreaker() {
  BreakerOptions options;
  options.window = 4;
  options.trip_error_rate = 0.5;
  options.min_samples = 4;
  options.open_cooldown_us = 1000;
  options.half_open_successes = 2;
  return options;
}

TEST(CircuitBreakerTest, FullStateMachineCycle) {
  uint64_t now = 0;
  CircuitBreaker breaker(SmallBreaker(), [&now] { return now; });
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // Failures below min_samples must not trip.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.AllowRequest());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // The fourth failure reaches min_samples at 100% error rate: open.
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);

  // Open rejects fail fast, without touching the device.
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.rejects(), 2u);

  // Cooldown elapses: the next request is a half-open probe.
  now += 1000;
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);

  // A probe failure slams it back open (and counts a trip).
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);

  // Cooldown again, then enough consecutive probe successes: closed.
  now += 1000;
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // Closing reset the window: one stale failure cannot re-trip.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, MixedOutcomesBelowThresholdStayClosed) {
  uint64_t now = 0;
  BreakerOptions options = SmallBreaker();
  options.window = 8;
  options.min_samples = 8;
  options.trip_error_rate = 0.5;
  CircuitBreaker breaker(options, [&now] { return now; });
  // 3 failures out of every 8 = 37.5% error rate: below the 50% trip
  // threshold, even sustained forever.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(breaker.AllowRequest());
      if (i < 3) {
        breaker.RecordFailure();
      } else {
        breaker.RecordSuccess();
      }
      ASSERT_EQ(breaker.state(), BreakerState::kClosed);
    }
  }
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, SlidingWindowForgetsOldFailures) {
  uint64_t now = 0;
  BreakerOptions options = SmallBreaker();
  options.window = 4;
  options.min_samples = 4;
  CircuitBreaker breaker(options, [&now] { return now; });
  // Two early failures, then a run of successes that pushes them out of
  // the window; two *new* failures then see a window of 2/4 = 50%...
  breaker.RecordFailure();
  breaker.RecordFailure();
  for (int i = 0; i < 4; ++i) breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // 1/4 < 50%.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);  // 2/4 >= 50%.
}

TEST(CircuitBreakerTest, MetricsTrackTripsAndRejects) {
  obs::MetricsRegistry registry;
  obs::Counter* trips = registry.AddCounter("t", "trips");
  obs::Counter* rejects = registry.AddCounter("r", "rejects");
  uint64_t now = 0;
  CircuitBreaker breaker(SmallBreaker(), [&now] { return now; });
  breaker.BindMetrics(trips, rejects);
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(trips->value(), breaker.trips());
  EXPECT_EQ(rejects->value(), breaker.rejects());
  EXPECT_EQ(trips->value(), 1u);
  EXPECT_EQ(rejects->value(), 1u);
}

// ---- Trip and recover, end to end through the retry loop. ----

TEST(CircuitBreakerTest, ResilientReaderTripsFastFailsAndRecovers) {
  uint64_t now = 0;
  ResilienceOptions options;
  options.enabled = true;
  options.sleep_on_backoff = false;
  options.backoff.max_retries = 0;  // Isolate the breaker's behaviour.
  options.breaker = SmallBreaker();
  ResilientReader reader(options, [&now] { return now; });

  bool device_down = true;
  uint64_t device_touches = 0;
  const auto read = [&]() -> Status {
    ++device_touches;
    return device_down ? Status::Unavailable("device down") : Status::OK();
  };

  // Four failing reads trip the breaker.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(reader.Read(PageId{0, 0}, read).ok());
  }
  ASSERT_NE(reader.breaker(), nullptr);
  EXPECT_EQ(reader.breaker()->state(), BreakerState::kOpen);
  EXPECT_EQ(device_touches, 4u);

  // While open, reads are rejected without touching the device at all.
  ReadOutcome outcome;
  Status rejected = reader.Read(PageId{0, 0}, read, &outcome);
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(outcome.rejected_by_breaker);
  EXPECT_EQ(outcome.attempts, 0u);
  EXPECT_EQ(device_touches, 4u);

  // The device heals; after the cooldown the half-open probes succeed
  // and the breaker closes — full recovery.
  device_down = false;
  now += options.breaker.open_cooldown_us;
  EXPECT_TRUE(reader.Read(PageId{0, 0}, read).ok());
  EXPECT_EQ(reader.breaker()->state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(reader.Read(PageId{0, 0}, read).ok());
  EXPECT_EQ(reader.breaker()->state(), BreakerState::kClosed);
  EXPECT_EQ(device_touches, 6u);
}

TEST(CircuitBreakerTest, ConcurrentPoolBreakerTripsUnderDeviceFailure) {
  storage::SimulatedDisk disk;
  for (uint32_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(disk.AppendPage(0, {{p * 2, 3}, {p * 2 + 1, 1}},
                                100.0 - p).ok());
  }
  FaultSpec spec;
  spec.rules.push_back({FaultKind::kTransientRead, 1.0});
  FaultInjector injector(spec);
  disk.SetFaultInjector(&injector);

  serve::ConcurrentPoolOptions options;
  options.capacity = 4;
  options.resilience.enabled = true;
  options.resilience.sleep_on_backoff = false;
  options.resilience.backoff.max_retries = 1;
  options.resilience.breaker.window = 4;
  options.resilience.breaker.min_samples = 4;
  options.resilience.breaker.trip_error_rate = 0.5;
  options.resilience.breaker.open_cooldown_us = 2000;
  serve::ConcurrentBufferPool pool(&disk, options);

  // Sustained failure trips the breaker...
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(pool.FetchPinned(PageId{0, i % 8}).ok());
  }
  ASSERT_NE(pool.resilience(), nullptr);
  ASSERT_NE(pool.resilience()->breaker(), nullptr);
  EXPECT_GE(pool.resilience()->breaker()->trips(), 1u);

  // ...and after the device heals and the cooldown passes, the pool
  // serves reads again (possibly via one half-open probe round).
  disk.SetFaultInjector(nullptr);
  SleepUs(3000);
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    recovered = pool.FetchPinned(PageId{0, 0}).ok();
    if (!recovered) SleepUs(1000);
  }
  EXPECT_TRUE(recovered);
  // More successful misses complete the half-open probe streak (a buffer
  // hit never reaches the breaker, so fetch pages not yet resident).
  for (uint32_t p = 1; p < 4; ++p) {
    EXPECT_TRUE(pool.FetchPinned(PageId{0, p}).ok());
  }
  EXPECT_EQ(pool.resilience()->breaker()->state(), BreakerState::kClosed);
}

// ---- Half-open admits exactly one probe, even under concurrency. ----

TEST(CircuitBreakerHalfOpenTest, SingleProbeSlotSequential) {
  uint64_t now = 0;
  CircuitBreaker breaker(SmallBreaker(), [&now] { return now; });
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  now += 1000;

  // The first caller after the cooldown owns the probe; every caller
  // until it records an outcome fails fast (counted as a reject).
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.rejects(), 2u);

  // The probe's success frees the slot for the next probe; the streak
  // (2 successes) closes the breaker.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerHalfOpenTest, FailedProbeReopensAndHoldsUntilCooldown) {
  uint64_t now = 0;
  CircuitBreaker breaker(SmallBreaker(), [&now] { return now; });
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  now += 1000;
  ASSERT_TRUE(breaker.AllowRequest());
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);

  // The failed probe slams the breaker open AND releases the slot: no
  // caller is admitted until a full new cooldown elapses.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  now += 999;
  EXPECT_FALSE(breaker.AllowRequest());
  now += 1;
  EXPECT_TRUE(breaker.AllowRequest());  // New probe, new cooldown.
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerHalfOpenTest, ConcurrentCallersExactlyOneWinsProbe) {
  // Many threads race AllowRequest the moment the cooldown elapses;
  // the single-probe gate must admit exactly one of them, however the
  // scheduler interleaves.
  for (int round = 0; round < 20; ++round) {
    uint64_t now = 0;
    CircuitBreaker breaker(SmallBreaker(), [&now] { return now; });
    for (int i = 0; i < 4; ++i) breaker.RecordFailure();
    ASSERT_EQ(breaker.state(), BreakerState::kOpen);
    now = 1000;  // Written before the threads start: no clock race.

    constexpr int kCallers = 8;
    std::atomic<int> admitted{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back([&] {
        if (breaker.AllowRequest()) {
          ++admitted;
        } else {
          ++rejected;
        }
      });
    }
    for (std::thread& t : callers) t.join();

    EXPECT_EQ(admitted.load(), 1) << "round " << round;
    EXPECT_EQ(rejected.load(), kCallers - 1) << "round " << round;
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);

    // The winner records its outcome; a success keeps probing alive, so
    // the next lone caller is admitted — the slot did not wedge.
    breaker.RecordSuccess();
    EXPECT_TRUE(breaker.AllowRequest());
    breaker.RecordSuccess();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  }
}

}  // namespace
}  // namespace irbuf::fault
