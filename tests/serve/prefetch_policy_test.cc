// Prefetch-vs-policy differential suite: across {LRU, RAP, CLOCK, FIFO}
// the async miss pipeline must be invisible to everything that matters —
// rankings are bit-identical with readahead on or off (a plan is a pure
// hint; every page still arrives through FetchPinned), and the
// replacement policy's victim choices are undistorted by prefetch-tagged
// frames it was never told about (no OnInsert until a demand touch).

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "../buffer/test_disk.h"
#include "../core/test_index.h"
#include "buffer/policy_factory.h"
#include "core/filtering_evaluator.h"
#include "fault/backoff.h"
#include "serve/concurrent_buffer_pool.h"
#include "util/zipf.h"

namespace irbuf::serve {
namespace {

using buffer::PolicyKind;

constexpr PolicyKind kPolicies[] = {PolicyKind::kLru, PolicyKind::kRap,
                                    PolicyKind::kClock, PolicyKind::kFifo};

const char* Name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "LRU";
    case PolicyKind::kRap: return "RAP";
    case PolicyKind::kClock: return "CLOCK";
    case PolicyKind::kFifo: return "FIFO";
    default: return "?";
  }
}

/// Bounded wait on an asynchronous pool condition (readahead runs on
/// background workers; tests must not assert mid-flight).
template <typename Pred>
void WaitUntil(Pred pred, const char* what) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return;
    fault::SleepUs(1000);
  }
  FAIL() << "timed out waiting for " << what;
}

// (a) Rankings are bit-identical with readahead on vs off, for every
// policy. DF evaluation is buffer-state independent, so any divergence
// here means a prefetched page's CONTENT differed from the demand-read
// page — exactly the corruption the pipeline must never introduce.
TEST(PrefetchPolicyTest, RankingsBitIdenticalPrefetchOnOff) {
  core::TestCollection tc = core::MakeRandomCollection(321, 300, 10, 3);
  Pcg32 rng(5);
  std::vector<core::Query> queries;
  for (int i = 0; i < 12; ++i) {
    core::Query q;
    for (TermId t : SampleDistinct(10, 2 + rng.NextBounded(3), &rng)) {
      q.AddTerm(t, 1 + rng.NextBounded(2));
    }
    queries.push_back(std::move(q));
  }
  core::EvalOptions eval;
  core::FilteringEvaluator evaluator(&tc.index, eval);

  for (PolicyKind kind : kPolicies) {
    SCOPED_TRACE(Name(kind));
    ConcurrentPoolOptions off;
    off.capacity = 12;
    off.policy = kind;
    ConcurrentPoolOptions on = off;
    on.prefetch_depth = 4;
    ConcurrentBufferPool pool_off(&tc.index.disk(), off);
    ConcurrentBufferPool pool_on(&tc.index.disk(), on);

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto a = evaluator.Evaluate(queries[qi], &pool_off);
      auto b = evaluator.Evaluate(queries[qi], &pool_on);
      ASSERT_TRUE(a.ok()) << a.status().message();
      ASSERT_TRUE(b.ok()) << b.status().message();
      ASSERT_EQ(a.value().top_docs.size(), b.value().top_docs.size())
          << "query " << qi;
      for (size_t r = 0; r < a.value().top_docs.size(); ++r) {
        EXPECT_EQ(a.value().top_docs[r].doc, b.value().top_docs[r].doc)
            << "query " << qi << " rank " << r;
        EXPECT_EQ(a.value().top_docs[r].score, b.value().top_docs[r].score)
            << "query " << qi << " rank " << r;  // Bitwise, no tolerance.
      }
      EXPECT_EQ(a.value().quality_bound, b.value().quality_bound);
      EXPECT_EQ(a.value().degraded, b.value().degraded);
    }
  }
}

// (b) Victim-choice integrity: the policy never learns prefetch-tagged
// frames, so over the SAME demand stream and the SAME number of
// policy-managed frames the victim sequence is identical whether or not
// a readahead window occupies the rest of the pool. The off-pool gets
// capacity 4; the on-pool gets capacity 8 whose 4 extra frames are
// filled by readahead pages of a term the demand stream never touches
// (the window cap for depth 2 is min(2*2, 8/2) = 4, so none of them is
// ever reclaimed either).
TEST(PrefetchPolicyTest, VictimSequenceUndistortedByUntouchedPrefetch) {
  for (PolicyKind kind : kPolicies) {
    SCOPED_TRACE(Name(kind));
    auto disk_off = buffer::MakeTestDisk({8, 4});
    auto disk_on = buffer::MakeTestDisk({8, 4});

    ConcurrentPoolOptions off;
    off.capacity = 4;
    off.policy = kind;
    ConcurrentBufferPool pool_off(disk_off.get(), off);

    ConcurrentPoolOptions on;
    on.capacity = 8;
    on.policy = kind;
    on.prefetch_depth = 2;
    ConcurrentBufferPool pool_on(disk_on.get(), on);

    if (kind == PolicyKind::kRap) {
      buffer::QueryContext ctx;
      ctx.SetWeight(0, 2.0);
      buffer::QueryContext ctx_copy = ctx;
      pool_off.SetQueryContext(std::move(ctx));
      pool_on.SetQueryContext(std::move(ctx_copy));
    }

    std::vector<PageId> victims_off;
    std::vector<PageId> victims_on;
    pool_off.SetEvictionObserver([&](PageId id, bool policy_victim) {
      if (policy_victim) victims_off.push_back(id);
    });
    pool_on.SetEvictionObserver([&](PageId id, bool policy_victim) {
      if (policy_victim) victims_on.push_back(id);
    });

    // Park term-1 readahead in the on-pool's spare frames; the demand
    // stream below never touches term 1.
    std::vector<PageId> plan;
    for (uint32_t p = 0; p < 4; ++p) plan.push_back(PageId{1, p});
    pool_on.Prefetch(buffer::PageAccessPlan(plan.data(), plan.size()));
    WaitUntil(
        [&] {
          return pool_on.PrefetchStatsSnapshot().issued == 4 &&
                 pool_on.ResidentPages(1) == 4;
        },
        "the term-1 readahead to publish");

    // Identical demand stream on both pools: re-references over 8
    // term-0 pages against 4 policy frames, forcing steady evictions.
    Pcg32 rng(17);
    for (int i = 0; i < 200; ++i) {
      const PageId id{0, rng.NextBounded(8)};
      auto a = pool_off.FetchPinned(id);
      auto b = pool_on.FetchPinned(id);
      ASSERT_TRUE(a.ok()) << a.status().message();
      ASSERT_TRUE(b.ok()) << b.status().message();
      EXPECT_EQ(a.value().was_miss(), b.value().was_miss()) << "fetch " << i;
    }

    ASSERT_EQ(victims_off.size(), victims_on.size());
    ASSERT_GT(victims_off.size(), 0u);  // The stream must evict at all.
    for (size_t i = 0; i < victims_off.size(); ++i) {
      EXPECT_EQ(victims_on[i].term, victims_off[i].term) << "victim " << i;
      EXPECT_EQ(victims_on[i].page_no, victims_off[i].page_no)
          << "victim " << i;
      // A tagged frame the policy never saw must never be its victim.
      EXPECT_EQ(victims_on[i].term, 0u) << "victim " << i;
    }

    // The window was never demand-touched: nothing promoted, nothing
    // reclaimed, all four term-1 pages still parked.
    const PoolPrefetchStats ps = pool_on.PrefetchStatsSnapshot();
    EXPECT_EQ(ps.issued, 4u);
    EXPECT_EQ(ps.used, 0u);
    EXPECT_EQ(ps.wasted, 0u);
    EXPECT_EQ(pool_on.ResidentPages(1), 4u);
  }
}

// A demand touch promotes a tagged frame: the policy learns it (as an
// insert), prefetch_used counts it, and the fetch is a hit that never
// reached the device.
TEST(PrefetchPolicyTest, DemandTouchPromotesPrefetchedFrame) {
  auto disk = buffer::MakeTestDisk({6});
  ConcurrentPoolOptions opts;
  opts.capacity = 8;
  opts.prefetch_depth = 2;
  ConcurrentBufferPool pool(disk.get(), opts);

  std::vector<PageId> plan = {PageId{0, 2}, PageId{0, 3}};
  pool.Prefetch(buffer::PageAccessPlan(plan.data(), plan.size()));
  WaitUntil([&] { return pool.PrefetchStatsSnapshot().issued == 2; },
            "the readahead to publish");
  const uint64_t reads_before = disk->stats().reads;

  auto r = pool.FetchPinned(PageId{0, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().was_miss());  // Resident: a hit, no device read.
  EXPECT_EQ(disk->stats().reads, reads_before);

  const PoolPrefetchStats ps = pool.PrefetchStatsSnapshot();
  EXPECT_EQ(ps.used, 1u);
  EXPECT_EQ(ps.wasted, 0u);
  const buffer::BufferStats stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

// The bounded window self-reclaims: readahead beyond the window cap
// evicts the OLDEST tagged frame (counted wasted, no policy callback),
// never an untagged one, so readahead cannot consume more than its
// share of the pool no matter how long the plan is.
TEST(PrefetchPolicyTest, WindowOverflowReclaimsOldestTaggedOnly) {
  auto disk = buffer::MakeTestDisk({12});
  ConcurrentPoolOptions opts;
  opts.capacity = 16;
  opts.prefetch_depth = 2;  // Window cap = min(4, 8) = 4.
  ConcurrentBufferPool pool(disk.get(), opts);

  std::vector<std::pair<PageId, bool>> evictions;
  pool.SetEvictionObserver([&](PageId id, bool policy_victim) {
    evictions.push_back({id, policy_victim});
  });

  std::vector<PageId> plan;
  for (uint32_t p = 0; p < 10; ++p) plan.push_back(PageId{0, p});
  pool.Prefetch(buffer::PageAccessPlan(plan.data(), plan.size()));
  WaitUntil([&] { return pool.PrefetchStatsSnapshot().issued == 10; },
            "the whole plan to be read");
  WaitUntil([&] { return pool.PrefetchStatsSnapshot().wasted == 6; },
            "window overflow reclaims");

  // 10 readaheads through a 4-frame window: 6 reclaimed, oldest first,
  // every one a non-policy eviction.
  const PoolPrefetchStats ps = pool.PrefetchStatsSnapshot();
  EXPECT_EQ(ps.issued, 10u);
  EXPECT_EQ(ps.wasted, 6u);
  EXPECT_EQ(ps.used, 0u);
  for (const auto& [id, policy_victim] : evictions) {
    EXPECT_FALSE(policy_victim) << "page " << id.page_no;
  }
  EXPECT_EQ(pool.ResidentPages(0), 4u);  // Exactly the window survives.
}

}  // namespace
}  // namespace irbuf::serve
