#include "serve/query_server.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "../core/test_index.h"
#include "ir/ir_system.h"
#include "ir/multi_user.h"
#include "workload/refinement.h"

namespace irbuf::serve {
namespace {

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tc_.emplace(core::MakeRandomCollection(123, 500, 18, 4));
  }

  core::Query MakeQuery(const std::vector<TermId>& terms) {
    core::Query q;
    for (TermId t : terms) q.AddTerm(t);
    return q;
  }

  /// A short stream of overlapping queries (refinement-style growth).
  std::vector<core::Query> QueryStream() {
    return {
        MakeQuery({0, 1, 2}),        MakeQuery({0, 1, 2, 3}),
        MakeQuery({4, 5, 6}),        MakeQuery({0, 1, 2, 3, 7}),
        MakeQuery({4, 5, 6, 8, 9}),  MakeQuery({10, 11}),
        MakeQuery({0, 2, 7, 10}),    MakeQuery({12, 13, 14, 15}),
    };
  }

  std::optional<core::TestCollection> tc_;
};

/// The tentpole equivalence: a 1-thread server answers exactly what the
/// single-user IrSystem facade answers, query for query — same ranked
/// docs, same scores, same per-query I/O attribution.
void ExpectMatchesIrSystem(const core::TestCollection& tc,
                           buffer::PolicyKind policy, bool buffer_aware,
                           bool shared_context,
                           const std::vector<core::Query>& queries) {
  ir::IrSystemOptions sys_opts;
  sys_opts.buffer_pages = 16;
  sys_opts.policy = policy;
  sys_opts.eval.buffer_aware = buffer_aware;
  ir::IrSystem system(&tc.index, sys_opts);

  ServerOptions srv_opts;
  srv_opts.num_threads = 1;
  srv_opts.buffer_pages = 16;
  srv_opts.policy = policy;
  srv_opts.eval.buffer_aware = buffer_aware;
  srv_opts.shared_context = shared_context;
  QueryServer server(&tc.index, srv_opts);
  server.Start();

  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected = system.Search(queries[i]);
    auto served = server.Execute(1, queries[i]);
    ASSERT_TRUE(expected.ok()) << "query " << i;
    ASSERT_TRUE(served.ok()) << "query " << i;
    EXPECT_EQ(served.value().eval.top_docs, expected.value().top_docs)
        << "query " << i;
    EXPECT_EQ(served.value().eval.disk_reads, expected.value().disk_reads)
        << "query " << i;
    EXPECT_EQ(served.value().eval.pages_processed,
              expected.value().pages_processed)
        << "query " << i;
  }

  const buffer::BufferStats direct = system.buffers().StatsSnapshot();
  const buffer::BufferStats pooled = server.PoolStatsSnapshot();
  EXPECT_EQ(direct.fetches, pooled.fetches);
  EXPECT_EQ(direct.hits, pooled.hits);
  EXPECT_EQ(direct.misses, pooled.misses);
  EXPECT_EQ(direct.evictions, pooled.evictions);
}

TEST_F(QueryServerTest, OneThreadMatchesIrSystemDfLru) {
  ExpectMatchesIrSystem(*tc_, buffer::PolicyKind::kLru, false, false,
                        QueryStream());
}

TEST_F(QueryServerTest, OneThreadMatchesIrSystemBafLru) {
  ExpectMatchesIrSystem(*tc_, buffer::PolicyKind::kLru, true, false,
                        QueryStream());
}

TEST_F(QueryServerTest, OneThreadMatchesIrSystemDfRap) {
  ExpectMatchesIrSystem(*tc_, buffer::PolicyKind::kRap, false, false,
                        QueryStream());
}

TEST_F(QueryServerTest, OneThreadMatchesIrSystemBafRapSharedContext) {
  // With one query in flight the merged shared context degenerates to
  // that query's own weights, so even shared-context mode must
  // reproduce the single-user answers exactly.
  ExpectMatchesIrSystem(*tc_, buffer::PolicyKind::kRap, true, true,
                        QueryStream());
}

TEST_F(QueryServerTest, OneThreadRoundRobinMatchesMultiUserWorkload) {
  // ir::RunMultiUserWorkload is the 1-thread special case of the server:
  // submitting the same user/step interleave to a 1-thread server must
  // reproduce its per-user I/O accounting.
  std::vector<workload::RefinementSequence> sequences;
  for (const auto& terms : std::vector<std::vector<TermId>>{
           {0, 1, 2, 3, 4, 5, 6, 7, 8},
           {4, 5, 6, 7, 8, 9, 10, 11, 12},
           {13, 14, 15, 16, 17}}) {
    core::Query q;
    for (TermId t : terms) q.AddTerm(t);
    auto seq = workload::BuildRefinementSequence(
        "user", q, tc_->index, workload::RefinementKind::kAddOnly);
    ASSERT_TRUE(seq.ok());
    sequences.push_back(std::move(seq).value());
  }

  ir::MultiUserOptions mu;
  mu.buffer_pages = 16;
  mu.policy = buffer::PolicyKind::kLru;
  auto reference = ir::RunMultiUserWorkload(tc_->index, sequences, mu);
  ASSERT_TRUE(reference.ok());

  ServerOptions srv_opts;
  srv_opts.num_threads = 1;
  srv_opts.buffer_pages = 16;
  srv_opts.policy = buffer::PolicyKind::kLru;
  srv_opts.eval.top_n = mu.top_n;
  srv_opts.eval.record_trace = false;
  QueryServer server(&tc_->index, srv_opts);
  server.Start();

  size_t max_steps = 0;
  for (const auto& seq : sequences) {
    max_steps = std::max(max_steps, seq.steps.size());
  }
  for (size_t step = 0; step < max_steps; ++step) {
    for (size_t user = 0; user < sequences.size(); ++user) {
      if (step >= sequences[user].steps.size()) continue;
      auto response = server.Execute(user, sequences[user].steps[step].query);
      ASSERT_TRUE(response.ok());
    }
  }

  for (size_t user = 0; user < sequences.size(); ++user) {
    const SessionStats session = server.SessionSnapshot(user);
    EXPECT_EQ(session.queries, reference.value().users[user].steps_run)
        << "user " << user;
    EXPECT_EQ(session.disk_reads, reference.value().users[user].disk_reads)
        << "user " << user;
    EXPECT_EQ(session.pages_processed,
              reference.value().users[user].pages_processed)
        << "user " << user;
  }
  const buffer::BufferStats pooled = server.PoolStatsSnapshot();
  EXPECT_EQ(pooled.fetches, reference.value().total_fetches);
  EXPECT_EQ(pooled.hits, reference.value().total_hits);
}

TEST_F(QueryServerTest, AdmissionQueueRejectsWhenFull) {
  ServerOptions opts;
  opts.num_threads = 2;
  opts.queue_depth = 2;
  opts.buffer_pages = 16;
  QueryServer server(&tc_->index, opts);
  // Not started: submissions stack up deterministically.
  auto a = server.Submit(1, MakeQuery({0, 1}));
  auto b = server.Submit(2, MakeQuery({2, 3}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(server.QueueDepth(), 2u);

  auto c = server.Submit(3, MakeQuery({4, 5}));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.StatsSnapshot().rejected, 1u);

  // Once workers drain the queue, the backlog clears and admissions
  // succeed again.
  server.Start();
  ASSERT_TRUE(a.value().get().ok());
  ASSERT_TRUE(b.value().get().ok());
  auto d = server.Execute(3, MakeQuery({4, 5}));
  ASSERT_TRUE(d.ok());
  const ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(QueryServerTest, StopFailsPendingAndRefusesNewWork) {
  ServerOptions opts;
  opts.num_threads = 1;
  opts.buffer_pages = 16;
  QueryServer server(&tc_->index, opts);
  auto pending = server.Submit(1, MakeQuery({0, 1}));
  ASSERT_TRUE(pending.ok());
  server.Stop();  // Never started: the queued query is orphaned.

  Result<QueryResponse> outcome = pending.value().get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);

  auto refused = server.Submit(2, MakeQuery({2, 3}));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(QueryServerTest, SessionAccountingSeparatesUsers) {
  ServerOptions opts;
  opts.num_threads = 1;
  opts.buffer_pages = 32;
  QueryServer server(&tc_->index, opts);
  server.Start();

  auto r1 = server.Execute(7, MakeQuery({0, 1, 2}));
  auto r2 = server.Execute(9, MakeQuery({3, 4}));
  auto r3 = server.Execute(7, MakeQuery({0, 1, 2, 5}));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r1.value().session_step, 1u);
  EXPECT_EQ(r3.value().session_step, 2u);

  const SessionStats s7 = server.SessionSnapshot(7);
  const SessionStats s9 = server.SessionSnapshot(9);
  EXPECT_EQ(s7.queries, 2u);
  EXPECT_EQ(s9.queries, 1u);
  EXPECT_EQ(s7.disk_reads,
            r1.value().eval.disk_reads + r3.value().eval.disk_reads);
  EXPECT_EQ(server.SessionSnapshot(42).queries, 0u);  // Unknown session.
}

TEST_F(QueryServerTest, ServedAnswersMatchBruteForceGroundTruth) {
  ServerOptions opts;
  opts.num_threads = 2;
  opts.buffer_pages = 64;
  // Safe evaluation: no filtering, exact cosine ranking.
  opts.eval.c_ins = 0.0;
  opts.eval.c_add = 0.0;
  opts.eval.top_n = 10;
  QueryServer server(&tc_->index, opts);
  server.Start();

  core::Query q = MakeQuery({0, 1, 2, 3});
  auto served = server.Execute(1, q);
  ASSERT_TRUE(served.ok());
  std::vector<core::ScoredDoc> expected =
      core::BruteForceRanking(*tc_, q, 10);
  ASSERT_EQ(served.value().eval.top_docs.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(served.value().eval.top_docs[i].doc, expected[i].doc);
    EXPECT_NEAR(served.value().eval.top_docs[i].score, expected[i].score,
                1e-9);
  }
}

TEST_F(QueryServerTest, BindMetricsExportsServeInstruments) {
  obs::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_threads = 1;
  opts.buffer_pages = 16;
  QueryServer server(&tc_->index, opts);
  server.BindMetrics(&registry);
  server.Start();
  ASSERT_TRUE(server.Execute(1, MakeQuery({0, 1, 2})).ok());
  server.Stop();

  ASSERT_NE(registry.FindCounter("serve.submitted"), nullptr);
  EXPECT_EQ(registry.FindCounter("serve.submitted")->value(), 1u);
  EXPECT_EQ(registry.FindCounter("serve.completed")->value(), 1u);
  const obs::Histogram* latency = registry.FindHistogram("serve.latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 1u);
  // The JSON telemetry carries the percentile satellite.
  EXPECT_NE(registry.ToJson().find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace irbuf::serve
