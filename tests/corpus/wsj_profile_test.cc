#include "corpus/wsj_profile.h"

#include <gtest/gtest.h>

namespace irbuf::corpus {
namespace {

TEST(WsjProfileTest, PaperConstantsVerbatim) {
  WsjProfile p = PaperWsjProfile();
  EXPECT_EQ(p.num_docs, 173252u);
  EXPECT_EQ(p.num_terms, 167017u);
  EXPECT_EQ(p.page_size, 404u);
  EXPECT_EQ(p.multi_page_terms, 6060u);
  ASSERT_EQ(p.groups.size(), 4u);
  EXPECT_EQ(p.groups[0].num_terms, 265u);
  EXPECT_EQ(p.groups[1].num_terms, 1255u);
  EXPECT_EQ(p.groups[2].num_terms, 4540u);
  EXPECT_EQ(p.groups[3].num_terms, 160957u);
  // Group term counts sum to the vocabulary size.
  uint32_t total = 0;
  for (const IdfGroup& g : p.groups) total += g.num_terms;
  EXPECT_EQ(total, p.num_terms);
  // Multi-page groups sum to the multi-page term count.
  EXPECT_EQ(p.groups[0].num_terms + p.groups[1].num_terms +
                p.groups[2].num_terms,
            p.multi_page_terms);
}

TEST(WsjProfileTest, FtRangesConsistentWithPageRanges) {
  WsjProfile p = PaperWsjProfile();
  for (const IdfGroup& g : p.groups) {
    EXPECT_EQ(g.ft_hi, g.pages_hi * p.page_size) << g.name;
    EXPECT_EQ(g.ft_lo, (g.pages_lo - 1) * p.page_size) << g.name;
    EXPECT_GT(g.ft_hi, g.ft_lo) << g.name;
  }
}

TEST(WsjProfileTest, GroupOfPagesClassifies) {
  WsjProfile p = PaperWsjProfile();
  EXPECT_EQ(GroupOfPages(p, 1), 3);
  EXPECT_EQ(GroupOfPages(p, 2), 2);
  EXPECT_EQ(GroupOfPages(p, 10), 2);
  EXPECT_EQ(GroupOfPages(p, 11), 1);
  EXPECT_EQ(GroupOfPages(p, 50), 1);
  EXPECT_EQ(GroupOfPages(p, 51), 0);
  EXPECT_EQ(GroupOfPages(p, 115), 0);
  EXPECT_EQ(GroupOfPages(p, 400), -1);
  EXPECT_EQ(GroupOfPages(p, 0), -1);
}

TEST(WsjProfileTest, ScalingPreservesStructure) {
  WsjProfile p = ScaledWsjProfile(0.1);
  // Documents, terms and the page size scale linearly...
  EXPECT_NEAR(p.num_docs, 17325, 5);
  EXPECT_NEAR(p.page_size, 40, 1);
  uint32_t total = 0;
  for (const IdfGroup& g : p.groups) total += g.num_terms;
  EXPECT_EQ(p.num_terms, total);
  EXPECT_NEAR(p.num_terms, 16702, 20);
  // ...postings quadratically (scale x terms, each scale x as long)...
  EXPECT_NEAR(static_cast<double>(p.total_postings), 315000.0, 100.0);
  // ...and each group keeps the paper's page-count ranges, so the
  // buffer-size dynamics stay comparable at any scale.
  WsjProfile paper = PaperWsjProfile();
  for (size_t g = 0; g < p.groups.size(); ++g) {
    EXPECT_EQ(p.groups[g].pages_lo, paper.groups[g].pages_lo);
    EXPECT_EQ(p.groups[g].pages_hi, paper.groups[g].pages_hi);
  }
  // idf bands are preserved: ft_hi / N matches the paper's ratio.
  EXPECT_NEAR(static_cast<double>(p.groups[0].ft_hi) / p.num_docs,
              static_cast<double>(paper.groups[0].ft_hi) / paper.num_docs,
              0.02);
}

TEST(WsjProfileTest, ScaleOneIsThePaperProfile) {
  WsjProfile a = ScaledWsjProfile(1.0);
  WsjProfile b = PaperWsjProfile();
  EXPECT_EQ(a.num_docs, b.num_docs);
  EXPECT_EQ(a.num_terms, b.num_terms);
}

TEST(WsjProfileTest, ScaledFtBoundariesNonOverlapping) {
  for (double scale : {0.5, 0.1, 0.03, 0.01}) {
    WsjProfile p = ScaledWsjProfile(scale);
    for (size_t i = 1; i < p.groups.size(); ++i) {
      EXPECT_LE(p.groups[i].ft_hi, p.groups[i - 1].ft_lo)
          << "scale " << scale << " group " << i;
    }
  }
}

}  // namespace
}  // namespace irbuf::corpus
