#include "corpus/text_corpus.h"

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "core/filtering_evaluator.h"

namespace irbuf::corpus {
namespace {

TEST(TextCorpusTest, EmbeddedCorpusIsNonTrivial) {
  const auto& docs = EmbeddedNewsCorpus();
  EXPECT_GE(docs.size(), 30u);
  for (const TextDocument& doc : docs) {
    EXPECT_FALSE(doc.title.empty());
    EXPECT_GT(doc.body.size(), 80u);
  }
}

TEST(TextCorpusTest, BuildsSearchableIndex) {
  auto pipeline = text::AnalysisPipeline::Default();
  auto index = BuildIndexFromDocuments(EmbeddedNewsCorpus(), pipeline, 16);
  ASSERT_TRUE(index.ok());
  const index::InvertedIndex& idx = index.value();
  EXPECT_EQ(idx.num_docs(), EmbeddedNewsCorpus().size());
  EXPECT_GT(idx.lexicon().size(), 100u);

  // Stop-words are not indexed; stems are.
  EXPECT_FALSE(idx.lexicon().Find("the").ok());
  EXPECT_TRUE(idx.lexicon().Find("price").ok());
  EXPECT_TRUE(idx.lexicon().Find("fiber").ok());

  // Query through the full stack: the fiber-hazards document must rank
  // first for a fiber query.
  core::Query q = core::Query::Parse("health hazards from fibers",
                                     pipeline, idx.lexicon());
  ASSERT_GE(q.size(), 2u);
  core::EvalOptions options;
  options.c_ins = 0.0;
  options.c_add = 0.0;
  core::FilteringEvaluator evaluator(&idx, options);
  buffer::BufferManager pool(&idx.disk(), 64,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto result = evaluator.Evaluate(q, &pool);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().top_docs.empty());
  // Doc 4 is "Health hazards from fine diameter fibers studied".
  EXPECT_EQ(result.value().top_docs[0].doc, 4u);
}

TEST(TextCorpusTest, DocNormsPositiveForAllDocs) {
  auto pipeline = text::AnalysisPipeline::Default();
  auto index = BuildIndexFromDocuments(EmbeddedNewsCorpus(), pipeline, 16);
  ASSERT_TRUE(index.ok());
  for (DocId d = 0; d < index.value().num_docs(); ++d) {
    EXPECT_GT(index.value().doc_norm(d), 0.0) << d;
  }
}

}  // namespace
}  // namespace irbuf::corpus
