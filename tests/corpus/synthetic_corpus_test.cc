#include "corpus/synthetic_corpus.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "storage/page.h"

namespace irbuf::corpus {
namespace {

// One shared small corpus for the whole file (generation is the slow bit).
const SyntheticCorpus& SmallCorpus() {
  static const SyntheticCorpus* corpus = [] {
    CorpusOptions options;
    options.scale = 0.02;
    options.num_random_topics = 8;
    auto result = GenerateSyntheticCorpus(options);
    if (!result.ok()) std::abort();
    return result.value().release();
  }();
  return *corpus;
}

TEST(SyntheticCorpusTest, GroupCountsMatchProfileExactly) {
  const SyntheticCorpus& c = SmallCorpus();
  const WsjProfile& profile = c.profile();
  std::vector<uint32_t> counts(profile.groups.size(), 0);
  for (TermId t = 0; t < c.index().lexicon().size(); ++t) {
    int g = GroupOfPages(profile, c.index().lexicon().info(t).pages);
    ASSERT_GE(g, 0) << "term " << t << " pages "
                    << c.index().lexicon().info(t).pages;
    ++counts[g];
  }
  for (size_t g = 0; g < profile.groups.size(); ++g) {
    EXPECT_EQ(counts[g], profile.groups[g].num_terms)
        << profile.groups[g].name;
  }
}

TEST(SyntheticCorpusTest, PostingCountNearProfileTarget) {
  // At extreme downscale, integer floors (every term has at least one
  // posting) bias the total upward; 20% slack covers that. The full-scale
  // total is exact to ~0.01% (see bench_table4_index_stats).
  const SyntheticCorpus& c = SmallCorpus();
  double measured =
      static_cast<double>(c.index().disk().total_postings());
  double target = static_cast<double>(c.profile().total_postings);
  EXPECT_NEAR(measured / target, 1.0, 0.2);
}

TEST(SyntheticCorpusTest, IdfDecreasesWithTermId) {
  const SyntheticCorpus& c = SmallCorpus();
  const auto& lexicon = c.index().lexicon();
  for (TermId t = 1; t < lexicon.size(); ++t) {
    ASSERT_GE(lexicon.info(t).idf, lexicon.info(t - 1).idf - 1e-9);
  }
}

TEST(SyntheticCorpusTest, IdfRangesMatchGroups) {
  const SyntheticCorpus& c = SmallCorpus();
  const WsjProfile& profile = c.profile();
  const auto& lexicon = c.index().lexicon();
  for (TermId t = 0; t < lexicon.size(); ++t) {
    int g = GroupOfPages(profile, lexicon.info(t).pages);
    ASSERT_GE(g, 0);
    // idf within the group's band (generous slack for scaled rounding).
    EXPECT_GT(lexicon.info(t).idf, profile.groups[g].idf_lo - 0.6);
    EXPECT_LT(lexicon.info(t).idf, profile.groups[g].idf_hi + 0.6);
  }
}

TEST(SyntheticCorpusTest, TopicsAreWellFormed) {
  const SyntheticCorpus& c = SmallCorpus();
  ASSERT_EQ(c.topics().size(), 12u);  // 4 designed + 8 random.
  EXPECT_NE(c.topics()[0].title.find("QUERY1"), std::string::npos);
  for (const Topic& topic : c.topics()) {
    EXPECT_GE(topic.query.size(), 20u) << topic.title;
    EXPECT_LE(topic.query.size(), 110u) << topic.title;
    EXPECT_FALSE(topic.relevant_docs.empty()) << topic.title;
    // Judgments sorted and in range.
    for (size_t i = 1; i < topic.relevant_docs.size(); ++i) {
      ASSERT_LT(topic.relevant_docs[i - 1], topic.relevant_docs[i]);
    }
    EXPECT_LT(topic.relevant_docs.back(), c.index().num_docs());
    // Every query term resolves in the lexicon.
    for (const core::QueryTerm& qt : topic.query.terms()) {
      ASSERT_LT(qt.term, c.index().lexicon().size());
      EXPECT_GE(qt.fq, 1u);
    }
  }
}

TEST(SyntheticCorpusTest, DesignedQueryShapesMatchPaper) {
  const SyntheticCorpus& c = SmallCorpus();
  EXPECT_EQ(c.topics()[0].query.size(), 36u);  // QUERY1 (Table 5/6).
  EXPECT_EQ(c.topics()[1].query.size(), 31u);  // QUERY2.
  EXPECT_EQ(c.topics()[2].query.size(), 31u);  // QUERY3.
  EXPECT_EQ(c.topics()[3].query.size(), 99u);  // QUERY4.
}

TEST(SyntheticCorpusTest, ListsAreFrequencySortedOnDisk) {
  const SyntheticCorpus& c = SmallCorpus();
  // Spot-check the longest list and a handful of short ones.
  storage::Page page;
  uint32_t last_min = UINT32_MAX;
  for (uint32_t p = 0; p < c.index().lexicon().info(0).pages; ++p) {
    ASSERT_TRUE(c.index().disk().ReadPage(PageId{0, p}, &page).ok());
    ASSERT_TRUE(storage::IsFrequencySorted(page.block));
    EXPECT_LE(page.MaxFreq(), last_min);
    last_min = page.MinFreq();
  }
}

TEST(SyntheticCorpusTest, LexiconStatisticsConsistent) {
  const SyntheticCorpus& c = SmallCorpus();
  const auto& lexicon = c.index().lexicon();
  uint32_t page_size = c.profile().page_size;
  for (TermId t = 0; t < lexicon.size(); t += 97) {
    const index::TermInfo& info = lexicon.info(t);
    EXPECT_EQ(info.pages, (info.ft + page_size - 1) / page_size);
    EXPECT_GE(info.fmax, 1u);
    EXPECT_NEAR(info.idf,
                std::log2(static_cast<double>(c.index().num_docs()) /
                          info.ft),
                1e-9);
  }
}

TEST(SyntheticCorpusTest, DeterministicInSeed) {
  CorpusOptions options;
  options.scale = 0.01;
  options.num_random_topics = 2;
  auto a = GenerateSyntheticCorpus(options);
  auto b = GenerateSyntheticCorpus(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()->index().disk().total_postings(),
            b.value()->index().disk().total_postings());
  EXPECT_EQ(a.value()->index().disk().compressed_bytes(),
            b.value()->index().disk().compressed_bytes());
  ASSERT_EQ(a.value()->topics().size(), b.value()->topics().size());
  for (size_t i = 0; i < a.value()->topics().size(); ++i) {
    EXPECT_EQ(a.value()->topics()[i].relevant_docs,
              b.value()->topics()[i].relevant_docs);
  }

  options.seed = 43;
  auto d = GenerateSyntheticCorpus(options);
  ASSERT_TRUE(d.ok());
  EXPECT_NE(a.value()->index().disk().compressed_bytes(),
            d.value()->index().disk().compressed_bytes());
}

TEST(SyntheticCorpusTest, StopwordConfigurationAddsLongLists) {
  CorpusOptions options;
  options.scale = 0.01;
  options.num_random_topics = 2;
  options.include_stopwords = true;
  options.num_stopwords = 10;
  auto corpus = GenerateSyntheticCorpus(options);
  ASSERT_TRUE(corpus.ok());
  const auto& lexicon = corpus.value()->index().lexicon();
  // The first 10 terms are stop-words with idf below the low group.
  for (TermId t = 0; t < 10; ++t) {
    EXPECT_LT(lexicon.info(t).idf, 1.91) << t;
    EXPECT_EQ(lexicon.info(t).text.substr(0, 4), "stop");
  }
  // Queries contain at least one stop-word.
  size_t queries_with_stops = 0;
  for (const Topic& topic : corpus.value()->topics()) {
    for (const core::QueryTerm& qt : topic.query.terms()) {
      if (qt.term < 10) {
        ++queries_with_stops;
        break;
      }
    }
  }
  EXPECT_GT(queries_with_stops, 0u);
}

TEST(SyntheticCorpusTest, ScaleFromEnvParsesAndClamps) {
  unsetenv("IRBUF_SCALE");
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  setenv("IRBUF_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 0.25);
  setenv("IRBUF_SCALE", "7", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  setenv("IRBUF_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  unsetenv("IRBUF_SCALE");
}

}  // namespace
}  // namespace irbuf::corpus
