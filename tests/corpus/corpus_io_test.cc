#include "corpus/corpus_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace irbuf::corpus {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

CorpusOptions TinyOptions() {
  CorpusOptions options;
  options.scale = 0.01;
  options.num_random_topics = 2;
  return options;
}

TEST(CorpusIoTest, RoundTripPreservesTopicsAndIndex) {
  auto original = GenerateSyntheticCorpus(TinyOptions());
  ASSERT_TRUE(original.ok());
  std::string path = TempPath("corpus.irbc");
  ASSERT_TRUE(SaveCorpus(*original.value(), path).ok());

  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const SyntheticCorpus& a = *original.value();
  const SyntheticCorpus& b = *loaded.value();
  EXPECT_EQ(a.profile().num_docs, b.profile().num_docs);
  EXPECT_EQ(a.profile().page_size, b.profile().page_size);
  ASSERT_EQ(a.topics().size(), b.topics().size());
  for (size_t i = 0; i < a.topics().size(); ++i) {
    EXPECT_EQ(a.topics()[i].title, b.topics()[i].title);
    EXPECT_EQ(a.topics()[i].relevant_docs, b.topics()[i].relevant_docs);
    ASSERT_EQ(a.topics()[i].query.size(), b.topics()[i].query.size());
    for (const core::QueryTerm& qt : a.topics()[i].query.terms()) {
      EXPECT_EQ(b.topics()[i].query.FrequencyOf(qt.term), qt.fq);
    }
  }
  EXPECT_EQ(a.index().disk().total_postings(),
            b.index().disk().total_postings());
  EXPECT_EQ(a.index().total_pages(), b.index().total_pages());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadOrGenerateCachesOnFirstCall) {
  std::string path = TempPath("cache.irbc");
  std::remove(path.c_str());

  auto first = LoadOrGenerateCorpus(TinyOptions(), path);
  ASSERT_TRUE(first.ok());
  // Cache file now exists; loading again must agree.
  auto second = LoadOrGenerateCorpus(TinyOptions(), path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value()->index().disk().total_postings(),
            second.value()->index().disk().total_postings());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, UncacheableLocationStillGenerates) {
  auto result =
      LoadOrGenerateCorpus(TinyOptions(), "/nonexistent/dir/cache.irbc");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value()->index().lexicon().size(), 0u);
}

TEST(CorpusIoTest, EmptyCachePathSkipsCaching) {
  auto result = LoadOrGenerateCorpus(TinyOptions(), "");
  ASSERT_TRUE(result.ok());
}

TEST(CorpusIoTest, WrongMagicRejected) {
  std::string path = TempPath("bad.irbc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("junk junk junk junk", f);
  std::fclose(f);
  EXPECT_FALSE(LoadCorpus(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace irbuf::corpus
