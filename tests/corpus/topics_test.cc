#include "corpus/topics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace irbuf::corpus {
namespace {

// A catalog over a hand-made descending-ft vocabulary.
class TopicsTest : public ::testing::Test {
 protected:
  TopicsTest() {
    // 200 terms, ft descending from 4040 down; large enough that a
    // 100-term random topic never exhausts the vocabulary.
    for (int i = 0; i < 200; ++i) {
      fts_.push_back(std::max<uint32_t>(
          1, static_cast<uint32_t>(4040.0 / (1 + i * 0.5))));
    }
    catalog_.emplace(&fts_, /*num_docs=*/8192, /*page_size=*/404);
  }

  std::vector<uint32_t> fts_;
  std::optional<TermCatalog> catalog_;
};

TEST_F(TopicsTest, CatalogStatistics) {
  EXPECT_EQ(catalog_->size(), 200u);
  EXPECT_EQ(catalog_->FtOf(0), 4040u);
  EXPECT_DOUBLE_EQ(catalog_->IdfOf(0), std::log2(8192.0 / 4040.0));
  EXPECT_EQ(catalog_->PagesOf(0), 10u);
  EXPECT_EQ(catalog_->PagesOf(59), 1u);
}

TEST_F(TopicsTest, IdfNonDecreasingInTermId) {
  for (TermId t = 1; t < catalog_->size(); ++t) {
    EXPECT_GE(catalog_->IdfOf(t), catalog_->IdfOf(t - 1));
  }
}

TEST_F(TopicsTest, ClaimByIdfFindsNearestUnused) {
  std::vector<bool> used(catalog_->size(), false);
  double target = catalog_->IdfOf(30);
  TermId first = catalog_->ClaimByIdf(target, &used);
  EXPECT_EQ(first, 30u);
  EXPECT_TRUE(used[30]);
  // Claiming the same target again returns a neighbour, not the same id.
  TermId second = catalog_->ClaimByIdf(target, &used);
  EXPECT_NE(second, first);
  EXPECT_TRUE(second == 29u || second == 31u);
}

TEST_F(TopicsTest, ClaimByIdfHandlesExtremes) {
  std::vector<bool> used(catalog_->size(), false);
  EXPECT_EQ(catalog_->ClaimByIdf(-100.0, &used), 0u);
  EXPECT_EQ(catalog_->ClaimByIdf(1e9, &used), catalog_->size() - 1);
}

TEST_F(TopicsTest, DesignedSpecsHaveThePaperShapes) {
  std::vector<bool> used(catalog_->size(), false);
  Pcg32 rng(1);
  // The catalog is tiny, so designed specs will reuse neighbours, but
  // the structural properties must hold regardless.
  auto specs = DesignedTopicSpecs(*catalog_, &used, &rng);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].terms.size(), 36u);
  EXPECT_EQ(specs[1].terms.size(), 31u);
  EXPECT_EQ(specs[2].terms.size(), 31u);
  EXPECT_EQ(specs[3].terms.size(), 99u);
  for (const TopicSpec& spec : specs) {
    EXPECT_FALSE(spec.title.empty());
    EXPECT_GT(spec.num_relevant, 0u);
    EXPECT_FALSE(spec.boosts.empty());
    for (const BoostSpec& b : spec.boosts) {
      EXPECT_GT(b.strength, 0.0);
      EXPECT_LE(b.strength, 1.0);
    }
  }
  // QUERY1's dominant boost is strength 1.0 (Table 6's top contributor).
  double max_strength = 0.0;
  for (const BoostSpec& b : specs[0].boosts) {
    max_strength = std::max(max_strength, b.strength);
  }
  EXPECT_DOUBLE_EQ(max_strength, 1.0);
}

TEST_F(TopicsTest, RandomSpecReleasesItsClaims) {
  std::vector<bool> used(catalog_->size(), false);
  used[0] = true;  // Simulate a designed-topic claim.
  Pcg32 rng(7);
  TopicSpec spec = RandomTopicSpec(*catalog_, 0, &used, &rng);
  EXPECT_GE(spec.terms.size(), 30u);
  EXPECT_LE(spec.terms.size(), 100u);
  // All its own claims are released; the designed claim is untouched.
  size_t still_used = 0;
  for (bool u : used) still_used += u ? 1 : 0;
  EXPECT_EQ(still_used, 1u);
  EXPECT_TRUE(used[0]);
  // Terms within the topic are unique.
  std::set<TermId> unique;
  for (const core::QueryTerm& qt : spec.terms) unique.insert(qt.term);
  EXPECT_EQ(unique.size(), spec.terms.size());
  // The designed claim was never picked.
  EXPECT_EQ(unique.count(0), 0u);
}

TEST_F(TopicsTest, RandomSpecDeterministicInRng) {
  std::vector<bool> used_a(catalog_->size(), false);
  std::vector<bool> used_b(catalog_->size(), false);
  Pcg32 rng_a(42), rng_b(42);
  TopicSpec a = RandomTopicSpec(*catalog_, 3, &used_a, &rng_a);
  TopicSpec b = RandomTopicSpec(*catalog_, 3, &used_b, &rng_b);
  EXPECT_EQ(a.title, b.title);
  ASSERT_EQ(a.terms.size(), b.terms.size());
  for (size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(a.terms[i], b.terms[i]);
  }
}

}  // namespace
}  // namespace irbuf::corpus
