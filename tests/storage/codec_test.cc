#include "storage/codec.h"

#include <gtest/gtest.h>

#include "storage/page.h"
#include "util/rng.h"

namespace irbuf::storage {
namespace {

TEST(VByteTest, RoundTripsSmallAndLargeValues) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 16383u, 16384u, 4294967295u}) {
    std::vector<uint8_t> buf;
    VByteEncode(v, &buf);
    size_t pos = 0;
    uint32_t decoded = 0;
    ASSERT_TRUE(VByteDecode(buf, &pos, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VByteTest, SmallValuesTakeOneByte) {
  std::vector<uint8_t> buf;
  VByteEncode(127, &buf);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  VByteEncode(128, &buf);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(VByteTest, TruncatedInputFails) {
  std::vector<uint8_t> buf;
  VByteEncode(100000, &buf);
  buf.pop_back();
  size_t pos = 0;
  uint32_t v = 0;
  EXPECT_FALSE(VByteDecode(buf, &pos, &v));
}

TEST(VByteTest, MultipleValuesStream) {
  std::vector<uint8_t> buf;
  for (uint32_t v = 0; v < 100; ++v) VByteEncode(v * 37, &buf);
  size_t pos = 0;
  for (uint32_t v = 0; v < 100; ++v) {
    uint32_t d = 0;
    ASSERT_TRUE(VByteDecode(buf, &pos, &d));
    EXPECT_EQ(d, v * 37);
  }
  EXPECT_EQ(pos, buf.size());
}

std::vector<Posting> MakeFrequencySorted(int n, Pcg32* rng) {
  std::vector<Posting> postings;
  uint32_t freq = 20;
  DocId doc = 0;
  for (int i = 0; i < n; ++i) {
    if (rng->NextBounded(4) == 0 && freq > 1) {
      --freq;
      doc = rng->NextBounded(10);
    } else {
      doc += 1 + rng->NextBounded(50);
    }
    postings.push_back(Posting{doc, freq});
  }
  return postings;
}

TEST(PostingsCodecTest, RoundTripsEmptyAndSingle) {
  EXPECT_TRUE(DecodePostings(EncodePostings({})).value().empty());
  std::vector<Posting> one = {Posting{42, 7}};
  auto decoded = DecodePostings(EncodePostings(one));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), one);
}

TEST(PostingsCodecTest, RoundTripsRandomLists) {
  Pcg32 rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    auto postings = MakeFrequencySorted(1 + rng.NextBounded(500), &rng);
    ASSERT_TRUE(IsFrequencySorted(postings));
    auto decoded = DecodePostings(EncodePostings(postings));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), postings) << "trial " << trial;
  }
}

TEST(PostingsCodecTest, CompressionApproachesPaperRatio) {
  // The paper reports ~6 bytes -> ~1 byte per posting for frequency-sorted
  // indexes [PZSD96]. A realistic skew (mostly freq 1, doc gaps < 2^14)
  // should land well under 3 bytes per posting here.
  Pcg32 rng(7);
  std::vector<Posting> postings;
  DocId doc = 0;
  for (int i = 0; i < 5000; ++i) {
    doc += 1 + rng.NextBounded(30);
    postings.push_back(Posting{doc, 1});
  }
  auto encoded = EncodePostings(postings);
  double bytes_per_posting =
      static_cast<double>(encoded.size()) / postings.size();
  EXPECT_LT(bytes_per_posting, 1.5);
}

TEST(PostingsCodecTest, CorruptHeaderRejected) {
  std::vector<uint8_t> junk = {0x00};  // Non-terminated vbyte.
  EXPECT_FALSE(DecodePostings(junk).ok());
}

TEST(PostingsCodecTest, TrailingGarbageRejected) {
  auto encoded = EncodePostings({Posting{1, 2}});
  encoded.push_back(0x81);
  EXPECT_FALSE(DecodePostings(encoded).ok());
}

TEST(PostingsCodecTest, TruncatedBodyRejected) {
  auto encoded = EncodePostings({Posting{1, 2}, Posting{5, 2}});
  encoded.resize(encoded.size() - 1);
  EXPECT_FALSE(DecodePostings(encoded).ok());
}

}  // namespace
}  // namespace irbuf::storage
