#include "storage/codec.h"

#include <gtest/gtest.h>

#include "storage/page.h"
#include "util/rng.h"

namespace irbuf::storage {
namespace {

TEST(VByteTest, RoundTripsSmallAndLargeValues) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 16383u, 16384u, 4294967295u}) {
    std::vector<uint8_t> buf;
    VByteEncode(v, &buf);
    size_t pos = 0;
    uint32_t decoded = 0;
    ASSERT_TRUE(VByteDecode(buf, &pos, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VByteTest, SmallValuesTakeOneByte) {
  std::vector<uint8_t> buf;
  VByteEncode(127, &buf);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  VByteEncode(128, &buf);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(VByteTest, TruncatedInputFails) {
  std::vector<uint8_t> buf;
  VByteEncode(100000, &buf);
  buf.pop_back();
  size_t pos = 0;
  uint32_t v = 0;
  EXPECT_FALSE(VByteDecode(buf, &pos, &v));
}

TEST(VByteTest, MultipleValuesStream) {
  std::vector<uint8_t> buf;
  for (uint32_t v = 0; v < 100; ++v) VByteEncode(v * 37, &buf);
  size_t pos = 0;
  for (uint32_t v = 0; v < 100; ++v) {
    uint32_t d = 0;
    ASSERT_TRUE(VByteDecode(buf, &pos, &d));
    EXPECT_EQ(d, v * 37);
  }
  EXPECT_EQ(pos, buf.size());
}

std::vector<Posting> MakeFrequencySorted(int n, Pcg32* rng) {
  std::vector<Posting> postings;
  uint32_t freq = 20;
  DocId doc = 0;
  for (int i = 0; i < n; ++i) {
    if (rng->NextBounded(4) == 0 && freq > 1) {
      --freq;
      doc = rng->NextBounded(10);
    } else {
      doc += 1 + rng->NextBounded(50);
    }
    postings.push_back(Posting{doc, freq});
  }
  return postings;
}

TEST(PostingsCodecTest, RoundTripsEmptyAndSingle) {
  EXPECT_TRUE(DecodePostings(EncodePostings({})).value().empty());
  std::vector<Posting> one = {Posting{42, 7}};
  auto decoded = DecodePostings(EncodePostings(one));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), one);
}

TEST(PostingsCodecTest, RoundTripsRandomLists) {
  Pcg32 rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    auto postings = MakeFrequencySorted(1 + rng.NextBounded(500), &rng);
    ASSERT_TRUE(IsFrequencySorted(postings));
    auto decoded = DecodePostings(EncodePostings(postings));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), postings) << "trial " << trial;
  }
}

TEST(PostingsCodecTest, CompressionApproachesPaperRatio) {
  // The paper reports ~6 bytes -> ~1 byte per posting for frequency-sorted
  // indexes [PZSD96]. A realistic skew (mostly freq 1, doc gaps < 2^14)
  // should land well under 3 bytes per posting here.
  Pcg32 rng(7);
  std::vector<Posting> postings;
  DocId doc = 0;
  for (int i = 0; i < 5000; ++i) {
    doc += 1 + rng.NextBounded(30);
    postings.push_back(Posting{doc, 1});
  }
  auto encoded = EncodePostings(postings);
  double bytes_per_posting =
      static_cast<double>(encoded.size()) / postings.size();
  EXPECT_LT(bytes_per_posting, 1.5);
}

TEST(PostingsCodecTest, CorruptHeaderRejected) {
  std::vector<uint8_t> junk = {0x00};  // Non-terminated vbyte.
  EXPECT_FALSE(DecodePostings(junk).ok());
}

TEST(PostingsCodecTest, TrailingGarbageRejected) {
  auto encoded = EncodePostings({Posting{1, 2}});
  encoded.push_back(0x81);
  EXPECT_FALSE(DecodePostings(encoded).ok());
}

TEST(PostingsCodecTest, TruncatedBodyRejected) {
  auto encoded = EncodePostings({Posting{1, 2}, Posting{5, 2}});
  encoded.resize(encoded.size() - 1);
  EXPECT_FALSE(DecodePostings(encoded).ok());
}

// --- PostingBlock / DecodePostingsInto (the hot-path block decoder) ---

// The on-disk image is pinned byte for byte: the block decoder reads the
// same PZSD96 layout the scalar decoder always wrote, so pages encoded
// before the block-decode rewrite stay readable and CRCs are unchanged.
// count=3; run {freq 9, len 2, doc 2, gap 1}; run {freq 4, len 1, doc 40}.
TEST(PostingsCodecTest, EncodedImageBytesArePinned) {
  const std::vector<uint8_t> expected = {0x83, 0x89, 0x82, 0x82,
                                         0x81, 0x84, 0x81, 0xA8};
  EXPECT_EQ(EncodePostings({{2, 9}, {3, 9}, {40, 4}}), expected);

  // Multi-byte vbyte: doc 300 = 44 + 2*128 -> continuation byte 0x2C,
  // terminator 0x82.
  const std::vector<uint8_t> large = {0x81, 0x81, 0x81, 0x2C, 0x82};
  EXPECT_EQ(EncodePostings({{300, 1}}), large);
}

TEST(PostingBlockTest, DecodeMatchesLegacyOnRandomLists) {
  Pcg32 rng(90125);
  PostingBlock block;
  for (int trial = 0; trial < 100; ++trial) {
    auto postings = MakeFrequencySorted(1 + rng.NextBounded(1500), &rng);
    auto encoded = EncodePostings(postings);
    auto legacy = DecodePostings(encoded);
    ASSERT_TRUE(legacy.ok());
    ASSERT_TRUE(DecodePostingsInto(encoded, &block).ok()) << trial;
    EXPECT_EQ(block.ToPostings(), legacy.value()) << "trial " << trial;
    // Run extents tile [0, size) and agree with the freqs array.
    uint32_t expect_begin = 0;
    for (const PostingRun& run : block.runs) {
      ASSERT_EQ(run.begin, expect_begin);
      ASSERT_LT(run.begin, run.end);
      for (uint32_t i = run.begin; i < run.end; ++i) {
        ASSERT_EQ(block.freqs[i], run.freq);
      }
      expect_begin = run.end;
    }
    EXPECT_EQ(expect_begin, block.size());
  }
}

TEST(PostingBlockTest, DecodeRoundTripsDocOrderedLists) {
  // Document-ordered layout: freq varies posting to posting, so runs
  // shrink to singletons — worst case for the run-extent machinery.
  Pcg32 rng(64);
  std::vector<Posting> postings;
  DocId doc = 0;
  for (int i = 0; i < 600; ++i) {
    doc += 1 + rng.NextBounded(40);
    postings.push_back(Posting{doc, 1 + rng.NextBounded(9)});
  }
  ASSERT_TRUE(IsDocumentOrdered(postings));
  PostingBlock block;
  ASSERT_TRUE(DecodePostingsInto(EncodePostings(postings), &block).ok());
  EXPECT_EQ(block.ToPostings(), postings);
}

TEST(PostingBlockTest, SteadyStateDecodeReusesBuffers) {
  Pcg32 rng(11);
  auto big = EncodePostings(MakeFrequencySorted(404, &rng));
  auto small = EncodePostings(MakeFrequencySorted(50, &rng));
  PostingBlock block;
  ASSERT_TRUE(DecodePostingsInto(big, &block).ok());
  const DocId* docs = block.doc_ids.data();
  const uint32_t* freqs = block.freqs.data();
  // Re-decoding pages that fit the high-water capacity must not touch
  // the allocator: the arrays stay exactly where they were.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(DecodePostingsInto(i % 2 ? small : big, &block).ok());
    EXPECT_EQ(block.doc_ids.data(), docs);
    EXPECT_EQ(block.freqs.data(), freqs);
  }
}

TEST(PostingBlockTest, FromPostingsMatchesDecode) {
  Pcg32 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    auto postings = MakeFrequencySorted(1 + rng.NextBounded(300), &rng);
    PostingBlock decoded, rebuilt;
    ASSERT_TRUE(
        DecodePostingsInto(EncodePostings(postings), &decoded).ok());
    rebuilt.FromPostings(postings);
    EXPECT_EQ(decoded, rebuilt) << "trial " << trial;
  }
}

TEST(PostingBlockTest, CorruptImagesFailTyped) {
  PostingBlock block;
  const auto expect_corrupted = [&block](std::vector<uint8_t> image) {
    Status s = DecodePostingsInto(image, &block);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kCorrupted) << s.message();
  };
  expect_corrupted({});                        // Empty image.
  expect_corrupted({0x00});                    // Non-terminated count.
  expect_corrupted({0xFF});                    // Count 127 > image size.
  expect_corrupted({0x81, 0x81, 0x80});        // Run length 0.
  expect_corrupted({0x81, 0x81, 0x82, 0x81, 0x81});  // Run 2 > count 1.
  expect_corrupted({0x00, 0x00, 0x00, 0x00, 0x00, 0x81});  // Over-long.
  auto valid = EncodePostings({{1, 2}, {5, 2}});
  auto trailing = valid;
  trailing.push_back(0x81);
  expect_corrupted(trailing);  // Trailing bytes after postings.
}

TEST(PostingBlockTest, WrappingRunLengthFailsTyped) {
  // Run length near 2^32: with filled > 0, a uint32 `filled + run` sum
  // wraps below count and would let DecodeRunDocs write past doc_ids
  // (heap overflow). The validation must be done in 64 bits.
  const std::vector<uint8_t> image = {
      0x83,                          // count = 3
      0x81, 0x82, 0x80, 0x81,        // run 1: freq 1, len 2, docs {0, 1}
      0x81,                          // run 2: freq 1
      0x7e, 0x7f, 0x7f, 0x7f, 0x8f,  // run 2: len 0xFFFFFFFE (2 + len wraps to 0)
      0x82,                          // run 2: first doc
      0x81, 0x81, 0x81, 0x81,        // run 2: eight single-byte gaps — enough
      0x81, 0x81, 0x81, 0x81,        //   for one full bulk-decode word past
                                     //   the single slot left in doc_ids
  };
  PostingBlock block;
  Status s = DecodePostingsInto(image, &block);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorrupted) << s.message();
}

TEST(PostingBlockTest, EveryTruncationOfValidImageFailsTyped) {
  // Fuzz-style sweep: no strict prefix of a valid image may decode (the
  // trailing-bytes check makes full-image consumption mandatory, so any
  // truncation is caught), and none may crash or misdecode silently.
  Pcg32 rng(404);
  PostingBlock block;
  for (int trial = 0; trial < 10; ++trial) {
    auto encoded =
        EncodePostings(MakeFrequencySorted(1 + rng.NextBounded(200), &rng));
    for (size_t cut = 0; cut < encoded.size(); ++cut) {
      std::vector<uint8_t> prefix(encoded.begin(), encoded.begin() + cut);
      Status s = DecodePostingsInto(prefix, &block);
      ASSERT_FALSE(s.ok()) << "prefix of " << cut << " bytes decoded";
      EXPECT_EQ(s.code(), StatusCode::kCorrupted);
    }
  }
}

TEST(PostingBlockTest, BitFlipsNeverCrashTheDecoder) {
  // Single-bit corruption sweep: a flipped image either still parses
  // (CRC catches it upstream in SimulatedDisk) or fails kCorrupted;
  // either way the decoder stays in bounds (ASan-checked in CI).
  Pcg32 rng(2718);
  auto encoded = EncodePostings(MakeFrequencySorted(120, &rng));
  PostingBlock block;
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = encoded;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      Status s = DecodePostingsInto(flipped, &block);
      if (!s.ok()) {
        EXPECT_EQ(s.code(), StatusCode::kCorrupted);
      }
    }
  }
}

}  // namespace
}  // namespace irbuf::storage
