#include "storage/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>

#include "fault/fault_injector.h"
#include "storage/simulated_disk.h"

namespace irbuf::storage {
namespace {

TEST(Crc32cTest, StandardCheckValue) {
  // The CRC32C check value: the CRC of the ASCII digits "123456789".
  // Any table-generation or polynomial mistake breaks this constant.
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t*>(digits), 9), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(Crc32c(nullptr, 0), 0u); }

TEST(Crc32cTest, SensitiveToEveryBit) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  const uint32_t reference = Crc32c(data);
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    std::vector<uint8_t> flipped = data;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32c(flipped), reference) << "bit " << bit;
  }
}

TEST(Crc32cTest, SlicedPathMatchesByteAtATimeSplit) {
  // Crc32c must be a pure function of the byte sequence regardless of
  // alignment: the same bytes at different offsets give the same CRC.
  std::vector<uint8_t> data(257);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i ^ (i >> 3));
  }
  const uint32_t reference = Crc32c(data);
  std::vector<uint8_t> shifted(data.size() + 3);
  std::memcpy(shifted.data() + 3, data.data(), data.size());
  EXPECT_EQ(Crc32c(shifted.data() + 3, data.size()), reference);
}

TEST(Crc32cTest, DiskDetectsInFlightBitFlip) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.AppendPage(0, {{10, 5}, {3, 2}, {7, 2}}, 5.0).ok());

  // A clean read verifies.
  Page page;
  ASSERT_TRUE(disk.ReadPage(PageId{0, 0}, &page).ok());

  // With a bit-flip rule firing on every read, the stored CRC no longer
  // matches the (copy of the) image and the read fails typed.
  fault::FaultSpec spec;
  spec.rules.push_back({fault::FaultKind::kBitFlip, 1.0});
  fault::FaultInjector injector(spec);
  disk.SetFaultInjector(&injector);
  Status corrupted = disk.ReadPage(PageId{0, 0}, &page);
  EXPECT_EQ(corrupted.code(), StatusCode::kCorrupted);
  EXPECT_TRUE(StatusCodeIsRetryable(corrupted.code()));

  // The flip hit a transient copy: removing the injector, the stored
  // image is intact and reads verify again.
  disk.SetFaultInjector(nullptr);
  ASSERT_TRUE(disk.ReadPage(PageId{0, 0}, &page).ok());
  EXPECT_EQ(page.block.size(), 3u);
}

TEST(Crc32cTest, BudgetedBitFlipClearsOnRetry) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.AppendPage(0, {{4, 3}, {9, 1}}, 3.0).ok());
  fault::FaultSpec spec;
  fault::FaultRule rule{fault::FaultKind::kBitFlip, 1.0};
  rule.max_faults = 1;
  spec.rules.push_back(rule);
  fault::FaultInjector injector(spec);
  disk.SetFaultInjector(&injector);

  Page page;
  EXPECT_EQ(disk.ReadPage(PageId{0, 0}, &page).code(),
            StatusCode::kCorrupted);
  // Budget spent: the retry is clean, as a real in-flight flip would be.
  EXPECT_TRUE(disk.ReadPage(PageId{0, 0}, &page).ok());
  EXPECT_EQ(injector.injected(fault::FaultKind::kBitFlip), 1u);
}

}  // namespace
}  // namespace irbuf::storage
