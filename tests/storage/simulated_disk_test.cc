#include "storage/simulated_disk.h"

#include <gtest/gtest.h>

namespace irbuf::storage {
namespace {

std::vector<Posting> SamplePage() {
  return {{10, 5}, {3, 2}, {7, 2}, {1, 1}};
}

TEST(SimulatedDiskTest, AppendAndRead) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.AppendPage(0, SamplePage(), 50.0).ok());
  Page page;
  ASSERT_TRUE(disk.ReadPage(PageId{0, 0}, &page).ok());
  EXPECT_EQ(page.MaterializePostings(), SamplePage());
  EXPECT_DOUBLE_EQ(page.max_weight, 50.0);
  EXPECT_EQ(page.id, (PageId{0, 0}));
}

TEST(SimulatedDiskTest, ReadCountsAccumulate) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.AppendPage(0, SamplePage(), 1.0).ok());
  Page page;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(disk.ReadPage(PageId{0, 0}, &page).ok());
  }
  EXPECT_EQ(disk.stats().reads, 5u);
  EXPECT_EQ(disk.stats().postings_decoded, 5u * SamplePage().size());
  EXPECT_GT(disk.stats().bytes_read, 0u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().reads, 0u);
}

TEST(SimulatedDiskTest, MultipleTermsAndPages) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.AppendPage(2, {{1, 4}, {2, 1}}, 4.0).ok());
  ASSERT_TRUE(disk.AppendPage(2, {{9, 1}}, 1.0).ok());
  ASSERT_TRUE(disk.AppendPage(5, {{3, 2}}, 2.0).ok());
  EXPECT_EQ(disk.NumPages(2), 2u);
  EXPECT_EQ(disk.NumPages(5), 1u);
  EXPECT_EQ(disk.NumPages(0), 0u);
  EXPECT_EQ(disk.NumPages(99), 0u);
  EXPECT_EQ(disk.total_pages(), 3u);
  EXPECT_EQ(disk.total_postings(), 4u);

  Page page;
  ASSERT_TRUE(disk.ReadPage(PageId{2, 1}, &page).ok());
  EXPECT_EQ(page.block.size(), 1u);
  EXPECT_EQ(page.block.doc_ids[0], 9u);
}

TEST(SimulatedDiskTest, MissingPageIsNotFound) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.AppendPage(0, SamplePage(), 1.0).ok());
  Page page;
  EXPECT_EQ(disk.ReadPage(PageId{0, 1}, &page).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(disk.ReadPage(PageId{7, 0}, &page).code(),
            StatusCode::kNotFound);
}

TEST(SimulatedDiskTest, RejectsEmptyAndUnsortedPages) {
  SimulatedDisk disk;
  EXPECT_EQ(disk.AppendPage(0, {}, 0.0).code(),
            StatusCode::kInvalidArgument);
  // Neither frequency-sorted (freq ascends) nor document-ordered (doc
  // descends): rejected.
  EXPECT_EQ(disk.AppendPage(0, {{5, 1}, {2, 3}}, 3.0).code(),
            StatusCode::kInvalidArgument);
  // Document-ordered pages are a supported layout (footnote 14).
  EXPECT_TRUE(disk.AppendPage(0, {{1, 1}, {2, 5}}, 5.0).ok());
}

TEST(SimulatedDiskTest, PageMaxWeightWithoutRead) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.AppendPage(1, SamplePage(), 123.5).ok());
  EXPECT_DOUBLE_EQ(disk.PageMaxWeight(PageId{1, 0}), 123.5);
  EXPECT_DOUBLE_EQ(disk.PageMaxWeight(PageId{1, 9}), 0.0);
  EXPECT_EQ(disk.stats().reads, 0u);  // No read performed.
}

TEST(SimulatedDiskTest, CompressionAccounting) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.AppendPage(0, SamplePage(), 1.0).ok());
  EXPECT_GT(disk.compressed_bytes(), 0u);
  EXPECT_LT(disk.compressed_bytes(), SamplePage().size() * 8);
}

}  // namespace
}  // namespace irbuf::storage
