#include "storage/cost_model.h"

#include <gtest/gtest.h>

namespace irbuf::storage {
namespace {

TEST(CostModelTest, ChargesReadsAndCpu) {
  CostModel model;  // 10 + 0.5 ms per read, 1 us per posting.
  EXPECT_DOUBLE_EQ(model.ElapsedMs(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.ElapsedMs(10, 0), 105.0);
  EXPECT_DOUBLE_EQ(model.ElapsedMs(0, 2000), 2.0);
  EXPECT_DOUBLE_EQ(model.ElapsedMs(10, 2000), 107.0);
}

TEST(CostModelTest, PaperEraIsDiskBound) {
  // One page read costs as much as ~10k postings of CPU: saving reads is
  // what matters, the premise of the whole paper.
  CostModel model = CostModel::PaperEra();
  EXPECT_GT(model.ElapsedMs(1, 0), model.ElapsedMs(0, 10000));
}

TEST(CostModelTest, ModernNvmeShiftsTheBalance) {
  CostModel nvme = CostModel::ModernNvme();
  CostModel disk = CostModel::PaperEra();
  // Same workload: NVMe estimate must be far smaller and CPU-dominated.
  EXPECT_LT(nvme.ElapsedMs(1000, 400000), disk.ElapsedMs(1000, 400000));
  EXPECT_GT(nvme.ElapsedMs(0, 400000),
            nvme.ElapsedMs(1000, 0));  // CPU term dominates.
}

}  // namespace
}  // namespace irbuf::storage
