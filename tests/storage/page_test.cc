#include "storage/page.h"

#include <gtest/gtest.h>

namespace irbuf::storage {
namespace {

TEST(PageIdTest, PackIsInjective) {
  PageId a{1, 2}, b{2, 1}, c{1, 3};
  EXPECT_NE(a.Pack(), b.Pack());
  EXPECT_NE(a.Pack(), c.Pack());
  EXPECT_EQ(a.Pack(), (PageId{1, 2}).Pack());
}

TEST(PageIdTest, HashSpreads) {
  PageIdHash hash;
  EXPECT_NE(hash(PageId{0, 0}), hash(PageId{0, 1}));
  EXPECT_NE(hash(PageId{1, 0}), hash(PageId{0, 1}));
}

// Postings spelled out as a vector: IsFrequencySorted is overloaded on
// std::vector<Posting> and PostingBlock, so a bare braced list would be
// ambiguous.
using PostingVec = std::vector<Posting>;

TEST(FrequencySortedTest, AcceptsValidOrder) {
  EXPECT_TRUE(IsFrequencySorted(PostingVec{}));
  EXPECT_TRUE(IsFrequencySorted(PostingVec{{5, 3}}));
  EXPECT_TRUE(
      IsFrequencySorted(PostingVec{{5, 3}, {9, 3}, {1, 2}, {2, 2}, {0, 1}}));
}

TEST(FrequencySortedTest, RejectsAscendingFreq) {
  EXPECT_FALSE(IsFrequencySorted(PostingVec{{1, 1}, {2, 2}}));
}

TEST(FrequencySortedTest, RejectsDocDisorderWithinTies) {
  EXPECT_FALSE(IsFrequencySorted(PostingVec{{9, 3}, {5, 3}}));
  EXPECT_FALSE(
      IsFrequencySorted(PostingVec{{5, 3}, {5, 3}}));  // Duplicate doc.
}

TEST(PageTest, MinMaxFreq) {
  Page page;
  EXPECT_EQ(page.MaxFreq(), 0u);
  EXPECT_EQ(page.MinFreq(), 0u);
  page.SetPostings({{1, 9}, {4, 5}, {2, 1}});
  EXPECT_EQ(page.MaxFreq(), 9u);
  EXPECT_EQ(page.MinFreq(), 1u);
}

}  // namespace
}  // namespace irbuf::storage
