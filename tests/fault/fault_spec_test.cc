#include "fault/fault_spec.h"

#include <gtest/gtest.h>

namespace irbuf::fault {
namespace {

TEST(FaultSpecTest, ParsesFullCampaign) {
  auto spec = ParseFaultSpec(
      R"({"seed":42,"rules":[)"
      R"({"kind":"transient","p":0.25,"term_lo":1,"term_hi":3},)"
      R"({"kind":"bad_page","p":1.0,"page_lo":2,"page_hi":2,)"
      R"("max_faults":5},)"
      R"({"kind":"latency","p":0.5,"latency_mult":8.5},)"
      R"({"kind":"bit_flip","p":0.01}]})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().seed, 42u);
  ASSERT_EQ(spec.value().rules.size(), 4u);
  EXPECT_EQ(spec.value().rules[0].kind, FaultKind::kTransientRead);
  EXPECT_DOUBLE_EQ(spec.value().rules[0].probability, 0.25);
  EXPECT_EQ(spec.value().rules[0].term_lo, 1u);
  EXPECT_EQ(spec.value().rules[0].term_hi, 3u);
  EXPECT_EQ(spec.value().rules[1].kind, FaultKind::kPermanentBadPage);
  EXPECT_EQ(spec.value().rules[1].max_faults, 5u);
  EXPECT_EQ(spec.value().rules[2].kind, FaultKind::kLatencySpike);
  EXPECT_DOUBLE_EQ(spec.value().rules[2].latency_multiplier, 8.5);
  EXPECT_EQ(spec.value().rules[3].kind, FaultKind::kBitFlip);
}

TEST(FaultSpecTest, DefaultsWhenKeysOmitted) {
  auto spec = ParseFaultSpec(R"({"rules":[{"kind":"transient","p":1}]})");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().seed, 1u);
  const FaultRule& rule = spec.value().rules[0];
  EXPECT_EQ(rule.term_lo, 0u);
  EXPECT_EQ(rule.term_hi, std::numeric_limits<TermId>::max());
  EXPECT_EQ(rule.page_hi, std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(rule.max_faults, 0u);
}

TEST(FaultSpecTest, RoundTripsThroughToJson) {
  FaultSpec spec;
  spec.seed = 7;
  FaultRule transient{FaultKind::kTransientRead, 0.125};
  transient.term_lo = 2;
  transient.max_faults = 9;
  spec.rules.push_back(transient);
  FaultRule latency{FaultKind::kLatencySpike, 0.5};
  latency.latency_multiplier = 4.0;
  spec.rules.push_back(latency);

  auto parsed = ParseFaultSpec(spec.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().seed, 7u);
  ASSERT_EQ(parsed.value().rules.size(), 2u);
  EXPECT_EQ(parsed.value().rules[0].kind, FaultKind::kTransientRead);
  EXPECT_DOUBLE_EQ(parsed.value().rules[0].probability, 0.125);
  EXPECT_EQ(parsed.value().rules[0].term_lo, 2u);
  EXPECT_EQ(parsed.value().rules[0].max_faults, 9u);
  EXPECT_DOUBLE_EQ(parsed.value().rules[1].latency_multiplier, 4.0);
}

TEST(FaultSpecTest, RejectsMalformedCampaigns) {
  // A typoed campaign must fail loudly, never run fault-free.
  EXPECT_EQ(ParseFaultSpec("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec(R"({"sed":1})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseFaultSpec(R"({"rules":[{"kind":"transiant","p":1}]})")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseFaultSpec(R"({"rules":[{"kind":"transient","prob":1}]})")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseFaultSpec(R"({"rules":[{"kind":"transient","p":1.5}]})")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseFaultSpec(
          R"({"rules":[{"kind":"latency","p":1,"latency_mult":0.5}]})")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec(R"({"seed":1} trailing)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultSpecTest, ShardSelectorRoundTripsAndValidates) {
  // Parse: a rule pinned to shard 2.
  auto parsed = ParseFaultSpec(
      R"({"seed":9,"rules":[{"kind":"bad_page","p":1,"shard":2},)"
      R"({"kind":"transient","p":0.5}]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().rules.size(), 2u);
  EXPECT_EQ(parsed.value().rules[0].shard, 2);
  EXPECT_EQ(parsed.value().rules[1].shard, -1);

  // ToJson round-trip preserves the selector (and omits the default).
  auto reparsed = ParseFaultSpec(parsed.value().ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().rules[0].shard, 2);
  EXPECT_EQ(reparsed.value().rules[1].shard, -1);

  // A negative shard is rejected at parse time.
  EXPECT_EQ(
      ParseFaultSpec(R"({"rules":[{"kind":"transient","p":1,"shard":-1}]})")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(FaultSpecTest, FilterForShardSelectsAndStrips) {
  FaultSpec spec;
  spec.seed = 33;
  FaultRule everywhere{FaultKind::kTransientRead, 0.25};
  FaultRule only_shard1{FaultKind::kPermanentBadPage, 1.0};
  only_shard1.shard = 1;
  FaultRule only_shard2{FaultKind::kLatencySpike, 0.5};
  only_shard2.shard = 2;
  only_shard2.latency_multiplier = 7.0;
  spec.rules = {everywhere, only_shard1, only_shard2};

  // Shard 1 sees the global rule plus its own, selector stripped (the
  // per-shard injector applies every rule it holds unconditionally).
  const FaultSpec s1 = FilterForShard(spec, 1);
  EXPECT_EQ(s1.seed, spec.seed);
  ASSERT_EQ(s1.rules.size(), 2u);
  EXPECT_EQ(s1.rules[0].kind, FaultKind::kTransientRead);
  EXPECT_EQ(s1.rules[1].kind, FaultKind::kPermanentBadPage);
  EXPECT_EQ(s1.rules[0].shard, -1);
  EXPECT_EQ(s1.rules[1].shard, -1);

  // Shard 0 sees only the global rule; shard 2 keeps its multiplier.
  EXPECT_EQ(FilterForShard(spec, 0).rules.size(), 1u);
  const FaultSpec s2 = FilterForShard(spec, 2);
  ASSERT_EQ(s2.rules.size(), 2u);
  EXPECT_EQ(s2.rules[1].latency_multiplier, 7.0);
}

TEST(FaultSpecTest, RuleRangeMatching) {
  FaultRule rule;
  rule.term_lo = 2;
  rule.term_hi = 4;
  rule.page_lo = 1;
  rule.page_hi = 1;
  EXPECT_TRUE(rule.Matches(PageId{3, 1}));
  EXPECT_TRUE(rule.Matches(PageId{2, 1}));
  EXPECT_TRUE(rule.Matches(PageId{4, 1}));
  EXPECT_FALSE(rule.Matches(PageId{1, 1}));
  EXPECT_FALSE(rule.Matches(PageId{5, 1}));
  EXPECT_FALSE(rule.Matches(PageId{3, 0}));
  EXPECT_FALSE(rule.Matches(PageId{3, 2}));
}

}  // namespace
}  // namespace irbuf::fault
