#include "fault/fault_injector.h"

#include <gtest/gtest.h>

namespace irbuf::fault {
namespace {

using Outcome = FaultDecision::Outcome;

TEST(FaultInjectorTest, EmptySpecNeverInjects) {
  FaultInjector injector(FaultSpec{});
  for (uint32_t p = 0; p < 100; ++p) {
    FaultDecision fate = injector.Consult(PageId{1, p});
    EXPECT_EQ(fate.outcome, Outcome::kNone);
    EXPECT_DOUBLE_EQ(fate.latency_multiplier, 1.0);
  }
  EXPECT_EQ(injector.total_injected(), 0u);
}

TEST(FaultInjectorTest, ZeroProbabilityNeverInjects) {
  FaultSpec spec;
  spec.rules.push_back({FaultKind::kTransientRead, 0.0});
  spec.rules.push_back({FaultKind::kPermanentBadPage, 0.0});
  FaultInjector injector(spec);
  for (uint32_t p = 0; p < 200; ++p) {
    EXPECT_EQ(injector.Consult(PageId{0, p}).outcome, Outcome::kNone);
  }
  EXPECT_EQ(injector.total_injected(), 0u);
}

TEST(FaultInjectorTest, PermanentBadPageIsStableAcrossReads) {
  // A permanently bad page is a pure function of (seed, rule, page):
  // every consult of the same page decides the same way, like failed
  // media (and unlike a per-read transient).
  FaultSpec spec;
  spec.seed = 99;
  spec.rules.push_back({FaultKind::kPermanentBadPage, 0.3});
  FaultInjector injector(spec);
  std::vector<bool> first_fate;
  for (uint32_t p = 0; p < 64; ++p) {
    first_fate.push_back(injector.Consult(PageId{5, p}).outcome ==
                         Outcome::kPermanent);
  }
  for (int round = 0; round < 3; ++round) {
    for (uint32_t p = 0; p < 64; ++p) {
      EXPECT_EQ(injector.Consult(PageId{5, p}).outcome == Outcome::kPermanent,
                first_fate[p])
          << "page " << p << " changed its fate on round " << round;
    }
  }
  // At p=0.3 over 64 pages, some but not all pages should be bad.
  size_t bad = 0;
  for (bool b : first_fate) bad += b ? 1 : 0;
  EXPECT_GT(bad, 0u);
  EXPECT_LT(bad, 64u);
}

TEST(FaultInjectorTest, TwoInjectorsWithSameSeedAgreeOnPermanentFates) {
  FaultSpec spec;
  spec.seed = 1234;
  spec.rules.push_back({FaultKind::kPermanentBadPage, 0.5});
  FaultInjector a(spec);
  FaultInjector b(spec);
  for (uint32_t t = 0; t < 8; ++t) {
    for (uint32_t p = 0; p < 32; ++p) {
      EXPECT_EQ(a.Consult(PageId{t, p}).outcome,
                b.Consult(PageId{t, p}).outcome);
    }
  }
}

TEST(FaultInjectorTest, MaxFaultsBudgetIsExact) {
  // p=1 with max_faults=3: exactly the first three consults fail, the
  // rest succeed — the contract retry tests build on.
  FaultSpec spec;
  FaultRule rule{FaultKind::kTransientRead, 1.0};
  rule.max_faults = 3;
  spec.rules.push_back(rule);
  FaultInjector injector(spec);
  int transients = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.Consult(PageId{0, 0}).outcome == Outcome::kTransient) {
      ++transients;
      EXPECT_LT(i, 3) << "budget overran";
    }
  }
  EXPECT_EQ(transients, 3);
  EXPECT_EQ(injector.injected(FaultKind::kTransientRead), 3u);
  EXPECT_EQ(injector.total_injected(), 3u);
}

TEST(FaultInjectorTest, SeverityOrderingPermanentWins) {
  FaultSpec spec;
  spec.rules.push_back({FaultKind::kTransientRead, 1.0});
  spec.rules.push_back({FaultKind::kBitFlip, 1.0});
  spec.rules.push_back({FaultKind::kPermanentBadPage, 1.0});
  FaultInjector injector(spec);
  EXPECT_EQ(injector.Consult(PageId{0, 0}).outcome, Outcome::kPermanent);
}

TEST(FaultInjectorTest, BitFlipOutranksTransient) {
  FaultSpec spec;
  spec.rules.push_back({FaultKind::kTransientRead, 1.0});
  spec.rules.push_back({FaultKind::kBitFlip, 1.0});
  FaultInjector injector(spec);
  EXPECT_EQ(injector.Consult(PageId{0, 0}).outcome, Outcome::kBitFlip);
}

TEST(FaultInjectorTest, LatencyMultipliersCompose) {
  FaultSpec spec;
  FaultRule a{FaultKind::kLatencySpike, 1.0};
  a.latency_multiplier = 3.0;
  FaultRule b{FaultKind::kLatencySpike, 1.0};
  b.latency_multiplier = 2.0;
  spec.rules.push_back(a);
  spec.rules.push_back(b);
  FaultInjector injector(spec);
  FaultDecision fate = injector.Consult(PageId{0, 0});
  EXPECT_EQ(fate.outcome, Outcome::kNone);
  EXPECT_DOUBLE_EQ(fate.latency_multiplier, 6.0);
  EXPECT_EQ(injector.injected(FaultKind::kLatencySpike), 2u);
}

TEST(FaultInjectorTest, RangeRestrictionsScopeTheBlastRadius) {
  FaultSpec spec;
  FaultRule rule{FaultKind::kPermanentBadPage, 1.0};
  rule.term_lo = 3;
  rule.term_hi = 3;
  spec.rules.push_back(rule);
  FaultInjector injector(spec);
  EXPECT_EQ(injector.Consult(PageId{3, 0}).outcome, Outcome::kPermanent);
  EXPECT_EQ(injector.Consult(PageId{2, 0}).outcome, Outcome::kNone);
  EXPECT_EQ(injector.Consult(PageId{4, 0}).outcome, Outcome::kNone);
}

}  // namespace
}  // namespace irbuf::fault
