// The chaos harness: refinement-style workloads under randomized fault
// schedules, across both evaluation algorithms (DF, BAF), both headline
// replacement policies (LRU, RAP) and both serving shapes (1 worker,
// 8 workers). The invariants:
//
//   * no crash, no contract (DCHECK) violation, no failed query — device
//     faults degrade answers, they never abort them;
//   * buffer-stats conservation (fetches == hits + misses) under every
//     schedule;
//   * a fault-free (p = 0) run through the resilience stack is
//     bit-identical to a run without it;
//   * every degraded answer accounts for itself: pages_lost > 0 or a
//     deadline hit, with a finite positive quality bound;
//   * recall@10 keeps a floor that scales with the pages actually lost.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "../core/test_index.h"
#include "core/filtering_evaluator.h"
#include "fault/backoff.h"
#include "fault/fault_injector.h"
#include "obs/query_tracer.h"
#include "serve/concurrent_buffer_pool.h"
#include "serve/query_server.h"

namespace irbuf {
namespace {

using core::MakeRandomCollection;
using core::TestCollection;

struct ChaosConfig {
  bool buffer_aware;
  buffer::PolicyKind policy;
};

std::string ConfigName(const ::testing::TestParamInfo<ChaosConfig>& info) {
  std::string name = info.param.buffer_aware ? "BAF_" : "DF_";
  name += buffer::PolicyKindName(info.param.policy);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

const ChaosConfig kConfigs[] = {
    {false, buffer::PolicyKind::kLru},
    {false, buffer::PolicyKind::kRap},
    {true, buffer::PolicyKind::kLru},
    {true, buffer::PolicyKind::kRap},
};

fault::ResilienceOptions FastResilience() {
  fault::ResilienceOptions options;
  options.enabled = true;
  options.sleep_on_backoff = false;  // Schedules drawn, not slept.
  return options;
}

/// A moderate randomized campaign, deterministic in `seed`.
fault::FaultSpec ChaosSpec(uint64_t seed) {
  fault::FaultSpec spec;
  spec.seed = seed;
  spec.rules.push_back({fault::FaultKind::kTransientRead, 0.10});
  spec.rules.push_back({fault::FaultKind::kBitFlip, 0.05});
  spec.rules.push_back({fault::FaultKind::kPermanentBadPage, 0.04});
  fault::FaultRule latency{fault::FaultKind::kLatencySpike, 0.10};
  latency.latency_multiplier = 3.0;
  spec.rules.push_back(latency);
  return spec;
}

/// The refinement-style query sequence the chaos runs share: growing
/// prefixes of the term space, evaluated over one persistent pool.
std::vector<core::Query> RefinementQueries(uint32_t num_terms) {
  std::vector<core::Query> queries;
  for (uint32_t take : {3u, 6u, num_terms}) {
    core::Query q;
    for (TermId t = 0; t < std::min(take, num_terms); ++t) {
      q.AddTerm(t, 1 + t % 3);
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

double RecallAt10(const std::vector<core::ScoredDoc>& got,
                  const std::vector<core::ScoredDoc>& reference) {
  const size_t n = std::min<size_t>(10, reference.size());
  if (n == 0) return 1.0;
  size_t found = 0;
  const size_t got_n = std::min<size_t>(10, got.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < got_n; ++j) {
      if (got[j].doc == reference[i].doc) {
        ++found;
        break;
      }
    }
  }
  return static_cast<double>(found) / static_cast<double>(n);
}

uint64_t QueryPages(const index::InvertedIndex& index, const core::Query& q) {
  uint64_t total = 0;
  for (const core::QueryTerm& qt : q.terms()) {
    total += index.lexicon().info(qt.term).pages;
  }
  return total;
}

// ---- p = 0: the resilience stack must be bit-invisible. ----

class ChaosZeroRateTest : public ::testing::TestWithParam<ChaosConfig> {};

TEST_P(ChaosZeroRateTest, FaultFreeRunIsBitIdentical) {
  const ChaosConfig& config = GetParam();
  TestCollection tc = MakeRandomCollection(404, 300, 10, 3);
  core::EvalOptions eval;
  eval.buffer_aware = config.buffer_aware;
  eval.top_n = 25;

  // Reference: no injector, no resilience.
  std::vector<core::EvalResult> reference;
  {
    buffer::BufferManager pool(&tc.index.disk(), 12,
                               buffer::MakePolicy(config.policy));
    core::FilteringEvaluator evaluator(&tc.index, eval);
    for (const core::Query& q : RefinementQueries(10)) {
      auto r = evaluator.Evaluate(q, &pool);
      ASSERT_TRUE(r.ok());
      reference.push_back(std::move(r).value());
    }
  }

  // Same workload through an installed (but fault-free) injector and an
  // enabled resilience stack.
  fault::FaultSpec empty_spec;
  empty_spec.seed = 404;
  fault::FaultInjector injector(empty_spec);
  tc.index.disk().SetFaultInjector(&injector);
  buffer::BufferManager pool(&tc.index.disk(), 12,
                             buffer::MakePolicy(config.policy));
  pool.SetResilience(FastResilience());
  core::FilteringEvaluator evaluator(&tc.index, eval);
  const std::vector<core::Query> queries = RefinementQueries(10);
  for (size_t s = 0; s < queries.size(); ++s) {
    auto r = evaluator.Evaluate(queries[s], &pool);
    ASSERT_TRUE(r.ok());
    const core::EvalResult& got = r.value();
    const core::EvalResult& want = reference[s];
    EXPECT_EQ(got.disk_reads, want.disk_reads) << "step " << s;
    EXPECT_EQ(got.pages_processed, want.pages_processed) << "step " << s;
    EXPECT_EQ(got.postings_processed, want.postings_processed)
        << "step " << s;
    EXPECT_EQ(got.accumulators, want.accumulators) << "step " << s;
    EXPECT_FALSE(got.degraded) << "step " << s;
    EXPECT_EQ(got.pages_lost, 0u) << "step " << s;
    ASSERT_EQ(got.top_docs.size(), want.top_docs.size()) << "step " << s;
    for (size_t i = 0; i < got.top_docs.size(); ++i) {
      EXPECT_EQ(got.top_docs[i].doc, want.top_docs[i].doc)
          << "step " << s << " rank " << i;
      // Bit-identical, not just close.
      EXPECT_EQ(got.top_docs[i].score, want.top_docs[i].score)
          << "step " << s << " rank " << i;
    }
  }
  EXPECT_EQ(injector.total_injected(), 0u);
  tc.index.disk().SetFaultInjector(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Configs, ChaosZeroRateTest,
                         ::testing::ValuesIn(kConfigs), ConfigName);

// ---- Deterministic degradation: a fully bad term drops out exactly. ----

TEST(ChaosDegradationTest, FullyBadTermDegradesToRemainingTerms) {
  TestCollection tc = MakeRandomCollection(77, 250, 8, 3);
  core::Query full;
  for (TermId t = 0; t < 8; ++t) full.AddTerm(t, 1);
  core::Query without_term0;
  for (TermId t = 1; t < 8; ++t) without_term0.AddTerm(t, 1);

  // Safe full evaluation, so the comparison is exact (no thresholds).
  core::EvalOptions eval;
  eval.c_ins = 0.0;
  eval.c_add = 0.0;
  eval.top_n = 20;

  fault::FaultSpec spec;
  fault::FaultRule bad{fault::FaultKind::kPermanentBadPage, 1.0};
  bad.term_hi = 0;  // Only term 0's pages are bad media.
  spec.rules.push_back(bad);
  fault::FaultInjector injector(spec);
  tc.index.disk().SetFaultInjector(&injector);

  obs::QueryTracer tracer;
  core::EvalOptions traced = eval;
  traced.tracer = &tracer;
  buffer::BufferManager pool(&tc.index.disk(), 16,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  pool.SetResilience(FastResilience());
  core::FilteringEvaluator evaluator(&tc.index, traced);
  auto degraded = evaluator.Evaluate(full, &pool);
  tc.index.disk().SetFaultInjector(nullptr);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

  EXPECT_TRUE(degraded.value().degraded);
  EXPECT_EQ(degraded.value().pages_lost,
            tc.index.lexicon().info(0).pages);
  EXPECT_GT(degraded.value().quality_bound, 0.0);
  EXPECT_TRUE(std::isfinite(degraded.value().quality_bound));
  EXPECT_FALSE(degraded.value().deadline_hit);

  // The degraded answer equals evaluating the query without the lost
  // term: unreadable postings contribute nothing, everything else is
  // untouched.
  const auto reference = core::BruteForceRanking(tc, without_term0, 20);
  ASSERT_EQ(degraded.value().top_docs.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(degraded.value().top_docs[i].doc, reference[i].doc)
        << "rank " << i;
    EXPECT_NEAR(degraded.value().top_docs[i].score, reference[i].score,
                1e-9);
  }

  // The tracer saw one page_lost event per lost page, and the bounds it
  // recorded sum to the result's quality bound.
  uint32_t lost_events = 0;
  double bound_sum = 0.0;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.kind != obs::TraceEventKind::kPageLost) continue;
    ++lost_events;
    EXPECT_EQ(e.term, 0u);
    bound_sum += e.a;
  }
  EXPECT_EQ(lost_events, degraded.value().pages_lost);
  EXPECT_NEAR(bound_sum, degraded.value().quality_bound, 1e-9);
}

// ---- Deadlines cut at term boundaries, deterministically. ----

uint64_t g_fake_now_us = 0;
uint64_t FakeNow() { return g_fake_now_us; }

TEST(ChaosDeadlineTest, ExpiredDeadlineForfeitsEverything) {
  TestCollection tc = MakeRandomCollection(31, 200, 6, 3);
  core::Query q;
  for (TermId t = 0; t < 6; ++t) q.AddTerm(t, 1);
  core::EvalOptions eval;
  buffer::BufferManager pool(&tc.index.disk(), 8,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  core::FilteringEvaluator evaluator(&tc.index, eval);

  core::EvalControl control;
  control.now_us = &FakeNow;
  control.deadline_us = 10;
  g_fake_now_us = 1000;  // Already past the deadline at the first check.
  auto r = evaluator.Evaluate(q, &pool, &control);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().deadline_hit);
  EXPECT_TRUE(r.value().degraded);
  EXPECT_TRUE(r.value().top_docs.empty());
  EXPECT_GT(r.value().quality_bound, 0.0);
  EXPECT_EQ(r.value().disk_reads, 0u);  // Cut before any device work.
}

TEST(ChaosDeadlineTest, GenerousDeadlineChangesNothing) {
  TestCollection tc = MakeRandomCollection(31, 200, 6, 3);
  core::Query q;
  for (TermId t = 0; t < 6; ++t) q.AddTerm(t, 1);
  core::EvalOptions eval;
  core::FilteringEvaluator evaluator(&tc.index, eval);

  buffer::BufferManager clean_pool(
      &tc.index.disk(), 8, buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto reference = evaluator.Evaluate(q, &clean_pool);
  ASSERT_TRUE(reference.ok());

  core::EvalControl control;
  control.now_us = &FakeNow;
  control.deadline_us = 1u << 30;
  g_fake_now_us = 0;
  buffer::BufferManager pool(&tc.index.disk(), 8,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto r = evaluator.Evaluate(q, &pool, &control);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().deadline_hit);
  EXPECT_FALSE(r.value().degraded);
  ASSERT_EQ(r.value().top_docs.size(), reference.value().top_docs.size());
  for (size_t i = 0; i < r.value().top_docs.size(); ++i) {
    EXPECT_EQ(r.value().top_docs[i].doc, reference.value().top_docs[i].doc);
    EXPECT_EQ(r.value().top_docs[i].score,
              reference.value().top_docs[i].score);
  }
}

// ---- Randomized single-threaded chaos sweeps. ----

class ChaosSweepTest : public ::testing::TestWithParam<ChaosConfig> {};

TEST_P(ChaosSweepTest, RandomScheduleNeverFailsAQuery) {
  const ChaosConfig& config = GetParam();
  TestCollection tc = MakeRandomCollection(505, 300, 10, 3);
  core::EvalOptions eval;
  eval.buffer_aware = config.buffer_aware;
  eval.top_n = 25;

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    fault::FaultInjector injector(ChaosSpec(seed));
    tc.index.disk().SetFaultInjector(&injector);
    buffer::BufferManager pool(&tc.index.disk(), 12,
                               buffer::MakePolicy(config.policy));
    pool.SetResilience(FastResilience());
    core::FilteringEvaluator evaluator(&tc.index, eval);
    for (const core::Query& q : RefinementQueries(10)) {
      auto r = evaluator.Evaluate(q, &pool);
      // Invariant 1: device faults degrade, they never fail the query.
      ASSERT_TRUE(r.ok()) << "seed " << seed << ": "
                          << r.status().ToString();
      const core::EvalResult& er = r.value();
      // Invariant 2: degradation accounts for itself.
      EXPECT_EQ(er.degraded, er.pages_lost > 0 || er.deadline_hit)
          << "seed " << seed;
      EXPECT_GE(er.quality_bound, 0.0);
      EXPECT_TRUE(std::isfinite(er.quality_bound));
      if (er.pages_lost > 0) EXPECT_GT(er.quality_bound, 0.0);
      // Invariant 3: stats conservation under every schedule.
      const buffer::BufferStats& stats = pool.stats();
      EXPECT_EQ(stats.fetches, stats.hits + stats.misses)
          << "seed " << seed;
    }
    tc.index.disk().SetFaultInjector(nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, ChaosSweepTest,
                         ::testing::ValuesIn(kConfigs), ConfigName);

// ---- Recall floor: lost pages cost bounded answer quality. ----

TEST(ChaosRecallTest, RecallFloorScalesWithPagesLost) {
  TestCollection tc = MakeRandomCollection(606, 400, 10, 3);
  core::Query q;
  for (TermId t = 0; t < 10; ++t) q.AddTerm(t, 1);
  core::EvalOptions eval;
  eval.c_ins = 0.0;  // Full evaluation isolates the fault-driven loss.
  eval.c_add = 0.0;
  eval.top_n = 20;
  core::FilteringEvaluator evaluator(&tc.index, eval);

  buffer::BufferManager clean_pool(
      &tc.index.disk(), 16, buffer::MakePolicy(buffer::PolicyKind::kLru));
  auto reference = evaluator.Evaluate(q, &clean_pool);
  ASSERT_TRUE(reference.ok());

  const uint64_t total_pages = QueryPages(tc.index, q);
  ASSERT_GT(total_pages, 0u);
  for (double rate : {0.0, 0.05, 0.15}) {
    fault::FaultSpec spec;
    spec.seed = 42;
    spec.rules.push_back(
        {fault::FaultKind::kPermanentBadPage, rate});
    fault::FaultInjector injector(spec);
    tc.index.disk().SetFaultInjector(&injector);
    buffer::BufferManager pool(&tc.index.disk(), 16,
                               buffer::MakePolicy(buffer::PolicyKind::kLru));
    pool.SetResilience(FastResilience());
    auto r = evaluator.Evaluate(q, &pool);
    tc.index.disk().SetFaultInjector(nullptr);
    ASSERT_TRUE(r.ok());

    const double frac_lost = static_cast<double>(r.value().pages_lost) /
                             static_cast<double>(total_pages);
    const double recall =
        RecallAt10(r.value().top_docs, reference.value().top_docs);
    // The floor scales with the fraction of the query's pages actually
    // lost: each lost page can displace at most a bounded amount of the
    // true top answers. The factor 3 is generous slack over the
    // deterministic outcome; zero loss must mean perfect recall.
    EXPECT_GE(recall, std::max(0.0, 1.0 - 3.0 * frac_lost))
        << "rate " << rate << " lost " << r.value().pages_lost << "/"
        << total_pages;
    if (r.value().pages_lost == 0) {
      EXPECT_DOUBLE_EQ(recall, 1.0) << "rate " << rate;
    }
  }
}

// ---- Concurrent chaos: the full serving stack, 1 and 8 workers. ----

class ChaosServerTest
    : public ::testing::TestWithParam<std::tuple<ChaosConfig, size_t>> {};

TEST_P(ChaosServerTest, ServerAbsorbsFaultsAcrossWorkers) {
  const ChaosConfig& config = std::get<0>(GetParam());
  const size_t workers = std::get<1>(GetParam());
  TestCollection tc = MakeRandomCollection(707, 300, 10, 3);
  fault::FaultInjector injector(ChaosSpec(workers));
  tc.index.disk().SetFaultInjector(&injector);

  serve::ServerOptions options;
  options.num_threads = workers;
  options.queue_depth = 64;
  options.buffer_pages = 16;
  options.policy = config.policy;
  options.eval.buffer_aware = config.buffer_aware;
  options.eval.record_trace = false;
  options.resilience = FastResilience();
  options.resilience.breaker.min_samples = 6;
  serve::QueryServer server(&tc.index, options);
  server.Start();

  const std::vector<core::Query> queries = RefinementQueries(10);
  std::vector<std::thread> clients;
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> failures{0};
  for (size_t session = 0; session < 4; ++session) {
    clients.emplace_back([&, session] {
      for (int loop = 0; loop < 3; ++loop) {
        for (const core::Query& q : queries) {
          auto response = server.Execute(session, q);
          if (!response.ok()) {
            ++failures;
            continue;
          }
          const core::EvalResult& er = response.value().eval;
          // Degradation accounts for itself even under concurrency.
          EXPECT_EQ(er.degraded, er.pages_lost > 0 || er.deadline_hit);
          EXPECT_GE(er.quality_bound, 0.0);
          EXPECT_TRUE(std::isfinite(er.quality_bound));
          EXPECT_EQ(response.value().annotation == StatusCode::kOk,
                    !er.deadline_hit);
          if (er.degraded) ++degraded;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  server.Stop();
  tc.index.disk().SetFaultInjector(nullptr);

  // Device faults never fail a query — they degrade it.
  EXPECT_EQ(failures.load(), 0u);
  const serve::ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.submitted, 4u * 3u * queries.size());
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
  EXPECT_EQ(stats.failed, 0u);
  const buffer::BufferStats pool = server.PoolStatsSnapshot();
  EXPECT_EQ(pool.fetches, pool.hits + pool.misses);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChaosServerTest,
    ::testing::Combine(::testing::ValuesIn(kConfigs),
                       ::testing::Values<size_t>(1, 8)),
    [](const ::testing::TestParamInfo<std::tuple<ChaosConfig, size_t>>&
           info) {
      return ConfigName({std::get<0>(info.param), info.index}) + "_" +
             std::to_string(std::get<1>(info.param)) + "workers";
    });

// ---- Faults on the readahead path degrade like faults on the demand
// path. A failed prefetch load publishes nothing — the later demand
// fetch retries the device itself and forfeits the page through the
// normal degradation accounting — so the answer (ranking, degraded
// flag, pages_lost, quality bound) is bitwise identical whether the
// bad pages were first touched by a prefetch worker or by the query.

TEST(ChaosPrefetchTest, FaultedPrefetchDegradesExactlyLikeFaultedDemand) {
  TestCollection tc = MakeRandomCollection(77, 250, 8, 3);
  core::Query full;
  for (TermId t = 0; t < 8; ++t) full.AddTerm(t, 1);

  // Safe full evaluation: no thresholds, so the comparison is exact.
  core::EvalOptions eval;
  eval.c_ins = 0.0;
  eval.c_add = 0.0;
  eval.top_n = 20;
  core::FilteringEvaluator evaluator(&tc.index, eval);

  fault::FaultSpec spec;
  fault::FaultRule bad{fault::FaultKind::kPermanentBadPage, 1.0};
  bad.term_hi = 0;  // Only term 0's pages are bad media.
  spec.rules.push_back(bad);
  fault::FaultInjector injector(spec);
  tc.index.disk().SetFaultInjector(&injector);

  serve::ConcurrentPoolOptions demand_opts;
  demand_opts.capacity = 16;
  demand_opts.resilience = FastResilience();
  serve::ConcurrentBufferPool demand_pool(&tc.index.disk(), demand_opts);
  auto via_demand = evaluator.Evaluate(full, &demand_pool);

  serve::ConcurrentPoolOptions prefetch_opts = demand_opts;
  prefetch_opts.prefetch_depth = 4;
  serve::ConcurrentBufferPool prefetch_pool(&tc.index.disk(),
                                            prefetch_opts);
  // Force the bad pages through the readahead path first. The failed
  // loads are silent; give the workers time to finish failing so the
  // query's demand fetches are true retries, not coalesced joins —
  // either way the outcome below must be the same.
  std::vector<PageId> plan;
  for (uint32_t p = 0; p < tc.index.lexicon().info(0).pages; ++p) {
    plan.push_back(PageId{0, p});
  }
  prefetch_pool.Prefetch(buffer::PageAccessPlan(plan.data(), plan.size()));
  fault::SleepUs(50000);
  auto via_prefetch = evaluator.Evaluate(full, &prefetch_pool);
  tc.index.disk().SetFaultInjector(nullptr);

  ASSERT_TRUE(via_demand.ok()) << via_demand.status().ToString();
  ASSERT_TRUE(via_prefetch.ok()) << via_prefetch.status().ToString();
  const core::EvalResult& d = via_demand.value();
  const core::EvalResult& p = via_prefetch.value();

  EXPECT_TRUE(d.degraded);
  EXPECT_TRUE(p.degraded);
  EXPECT_EQ(p.pages_lost, d.pages_lost);
  EXPECT_EQ(p.quality_bound, d.quality_bound);  // Bitwise, no tolerance.
  ASSERT_EQ(p.top_docs.size(), d.top_docs.size());
  for (size_t i = 0; i < d.top_docs.size(); ++i) {
    EXPECT_EQ(p.top_docs[i].doc, d.top_docs[i].doc) << "rank " << i;
    EXPECT_EQ(p.top_docs[i].score, d.top_docs[i].score) << "rank " << i;
  }

  // Every readahead of term 0 failed silently: nothing of the bad term
  // ever became resident. (The evaluator's own readahead of the healthy
  // terms 1..7 still runs and may be used — that is the point: faults
  // disable nothing globally.) The misses + issued == device-reads
  // conservation is re-checked at pool destruction.
  EXPECT_EQ(prefetch_pool.ResidentPages(0), 0u);
}

}  // namespace
}  // namespace irbuf
