// Pins the telemetry-file envelope the downstream tools parse
// (ab_compare.py, attribution_report.py, bench_trend.py): every file
// TelemetryFile writes must lead with the schema_version those tools
// check before trusting the rest. Compiled against the real
// bench/bench_util.cc, so a schema change that forgets the version
// bump (or the field) fails here, not in a Python stack trace.

#include "bench_util.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

namespace irbuf::bench {
namespace {

std::string WriteAndRead(const std::string& name, TelemetryFile& file) {
  EXPECT_TRUE(file.Close());
  std::ifstream in(std::string(::testing::TempDir()) + "/" + name +
                   ".telemetry.json");
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in), {});
}

class TelemetrySchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Redirect ResultsDir() into the test sandbox.
    ::setenv("IRBUF_RESULTS_DIR", ::testing::TempDir().c_str(), 1);
  }
  void TearDown() override { ::unsetenv("IRBUF_RESULTS_DIR"); }
};

TEST_F(TelemetrySchemaTest, CloseStampsCurrentSchemaVersion) {
  TelemetryFile file("schema_probe");
  RunRecord record;
  record.label = "probe";
  record.policy = "lru";
  file.Add(record);
  const std::string json = WriteAndRead("schema_probe", file);

  const std::string version_key =
      "\"schema_version\":" + std::to_string(kTelemetrySchemaVersion);
  const size_t version_at = json.find(version_key);
  ASSERT_NE(version_at, std::string::npos) << json;
  // The version leads the envelope: a tool can reject a file before
  // parsing any run payload.
  EXPECT_LT(version_at, json.find("\"bench\""));
  EXPECT_NE(json.find("\"bench\":\"schema_probe\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":["), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"probe\""), std::string::npos);
}

TEST_F(TelemetrySchemaTest, EnvelopeBracesBalance) {
  TelemetryFile file("balance_probe");
  file.AddRaw("{\"label\":\"raw\",\"nested\":{\"k\":[1,2]}}");
  const std::string json = WriteAndRead("balance_probe", file);
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TelemetrySchemaTest, RunRecordJsonCarriesSharedSchemaKeys) {
  RunRecord record;
  record.label = "BAF/RAP";
  record.policy = "rap";
  record.buffer_aware = true;
  record.buffer_pages = 64;
  record.disk_reads = 7;
  const std::string json = RunRecordJson(record);
  EXPECT_NE(json.find("\"label\":\"BAF/RAP\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"BAF\""), std::string::npos);
  EXPECT_NE(json.find("\"buffer_pages\":64"), std::string::npos);
  EXPECT_NE(json.find("\"disk_reads\":7"), std::string::npos);
  // The record payload itself is NOT versioned — the envelope is.
  EXPECT_EQ(json.find("schema_version"), std::string::npos);
}

}  // namespace
}  // namespace irbuf::bench
