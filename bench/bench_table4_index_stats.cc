// Reproduces Table 4 ("Characteristics of inverted lists in the WSJ
// collection") plus the Section 4.2 collection statistics and the
// Section 3.2.2 conversion-table footprint.

#include <cstdio>

#include "bench_util.h"
#include "util/str.h"

using namespace irbuf;

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();
  const corpus::WsjProfile& profile = corpus.profile();

  bench::PrintHeader(
      "Table 4 - characteristics of inverted lists, by idf group",
      "265 / 1,255 / 4,540 / 160,957 terms per group; 167,017 terms; "
      "~31.5M postings; 6,060 multi-page terms; conversion table ~121 KB");

  std::vector<uint32_t> counts(profile.groups.size(), 0);
  std::vector<double> idf_min(profile.groups.size(), 1e9);
  std::vector<double> idf_max(profile.groups.size(), -1e9);
  uint32_t multi_page = 0;
  for (TermId t = 0; t < index.lexicon().size(); ++t) {
    const index::TermInfo& info = index.lexicon().info(t);
    if (info.pages > 1) ++multi_page;
    int g = corpus::GroupOfPages(profile, info.pages);
    if (g < 0) continue;
    ++counts[g];
    if (info.idf < idf_min[g]) idf_min[g] = info.idf;
    if (info.idf > idf_max[g]) idf_max[g] = info.idf;
  }

  AsciiTable table({"Group", "idf range (paper)", "idf range (measured)",
                    "Pages", "Terms (paper)", "Terms (measured)"});
  for (size_t g = 0; g < profile.groups.size(); ++g) {
    const corpus::IdfGroup& group = profile.groups[g];
    table.AddRow({
        group.name,
        StrFormat("%.2f-%.2f", group.idf_lo, group.idf_hi),
        counts[g] > 0 ? StrFormat("%.2f-%.2f", idf_min[g], idf_max[g])
                      : "-",
        StrFormat("%u-%u", group.pages_lo, group.pages_hi),
        StrFormat("%u", group.num_terms),
        StrFormat("%u", counts[g]),
    });
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Collection statistics (Section 4.2):\n");
  std::printf("  documents          : %u (paper: 173,252 at scale 1)\n",
              index.num_docs());
  std::printf("  distinct terms     : %zu (paper: 167,017)\n",
              index.lexicon().size());
  std::printf("  postings           : %llu (paper: ~31.5M)\n",
              static_cast<unsigned long long>(
                  index.disk().total_postings()));
  std::printf("  pages (PageSize=%u): %llu\n", profile.page_size,
              static_cast<unsigned long long>(index.total_pages()));
  std::printf("  multi-page terms   : %u (paper: 6,060)\n", multi_page);
  std::printf("  bytes/posting      : %.2f (paper: ~1 [PZSD96])\n",
              static_cast<double>(index.disk().compressed_bytes()) /
                  static_cast<double>(index.disk().total_postings()));
  std::printf(
      "  conversion table   : %zu rows, %zu bytes (paper: 6,060 rows, "
      "121,200 bytes)\n",
      index.conversion_table().num_entries(),
      index.conversion_table().ApproxBytes());
  return 0;
}
