// Reproduces Figures 7 and 8: total disk reads of the ADD-DROP
// refinement sequences for QUERY1 and QUERY2, as a function of buffer
// size, for all six (algorithm x policy) combinations.
//
// Paper shape: like Figures 5-6 except MRU degrades — it can never evict
// the most-recently-used page, so dropped-term pages stay resident and
// MRU sometimes does worse than LRU; RAP assigns dropped-term pages
// value 0 and sheds them first.

#include <cstdio>

#include "bench_util.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

namespace {

void RunQuery(const corpus::SyntheticCorpus& corpus, int topic_index,
              const char* figure, const char* alias,
              bench::TelemetryFile* telemetry) {
  const index::InvertedIndex& index = corpus.index();
  const corpus::Topic& topic = corpus.topics()[topic_index];

  auto sequence = workload::BuildRefinementSequence(
      alias, topic.query, index, workload::RefinementKind::kAddDrop);
  if (!sequence.ok()) {
    std::fprintf(stderr, "sequence build failed\n");
    std::exit(1);
  }
  uint64_t working_set = ir::SequenceWorkingSetPages(index,
                                                     sequence.value());
  std::printf("\n%s: ADD-DROP-%s, working set %llu pages, %zu "
              "refinements\n",
              figure, alias,
              static_cast<unsigned long long>(working_set),
              sequence.value().steps.size());

  auto combos = bench::PaperCombos();
  std::vector<std::string> headers = {"buffers"};
  for (const bench::Combo& combo : combos) headers.push_back(combo.label);
  AsciiTable table(headers);

  uint64_t mru_total = 0, lru_total = 0, rap_total = 0;
  for (size_t pages : bench::BufferSizeAxis(working_set + 8, 14)) {
    std::vector<std::string> row = {StrFormat("%zu", pages)};
    for (const bench::Combo& combo : combos) {
      ir::SequenceRunOptions options = bench::ComboOptions(combo, pages);
      auto result = ir::RunRefinementSequence(
          index, sequence.value(), topic.relevant_docs, options);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed\n");
        std::exit(1);
      }
      uint64_t reads = result.value().total_disk_reads;
      row.push_back(StrFormat("%llu",
                              static_cast<unsigned long long>(reads)));
      telemetry->Add(bench::MakeRunRecord(
          StrFormat("%s %s %s", figure, alias, combo.label.c_str()),
          options, result.value()));
      if (!combo.buffer_aware) {
        if (combo.policy == buffer::PolicyKind::kMru) mru_total += reads;
        if (combo.policy == buffer::PolicyKind::kLru) lru_total += reads;
        if (combo.policy == buffer::PolicyKind::kRap) rap_total += reads;
      }
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("area under curve, DF rows: LRU %llu, MRU %llu, RAP %llu "
              "(paper: MRU loses its Fig-5/6 advantage and can trail LRU; "
              "RAP stays best)\n",
              static_cast<unsigned long long>(lru_total),
              static_cast<unsigned long long>(mru_total),
              static_cast<unsigned long long>(rap_total));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figures 7-8 - total disk reads vs buffer size, ADD-DROP workload",
      "MRU keeps dropped-term pages forever and degrades (sometimes below "
      "LRU); RAP evicts dropped-term pages first and stays best");
  bench::TelemetryFile telemetry("bench_fig7_8_adddrop_curves");
  RunQuery(bench::GetCorpus(), 0, "Figure 7", "QUERY1", &telemetry);
  RunQuery(bench::GetCorpus(), 1, "Figure 8", "QUERY2", &telemetry);
  return telemetry.Close() ? 0 : 1;
}
