// Hot-path A/B microbench: the two inner loops every figure in the
// paper is bounded by — decode a compressed posting page, then
// probe/update an accumulator per posting — measured side by side in
// their pre-rewrite (`legacy/`) and block (`block/`) forms:
//
//   BM_BlockDecode        page image -> postings, scalar AoS vs
//                         PostingBlock bulk decode into reused buffers
//   BM_AccumulatorProbe   probe/update mix over a warmed candidate set,
//                         std::unordered_map vs open-addressing table
//   BM_EvalDFQuery        full DF evaluation kernel per topic query
//                         (thresholds, smax, ins/add/drop) over cached
//                         pages — per-posting AoS loop vs per-run SoA
//   BM_EvalBAFQuery       same kernel under BAF's fewest-reads term
//                         ordering (conversion-table estimates)
//   BM_BufferFetchDecoded buffer-hit path: pin a resident page and read
//                         one posting from its decoded block (block
//                         path only — hits always hand decoded data)
//
// The legacy variants transplant the exact pre-rewrite loops (scalar
// VByteDecode into std::vector<Posting>, per-posting unordered_map
// probe with per-posting weight multiply); the evaluation kernels run
// from in-memory pages in both variants, so the A/B isolates the
// kernel and neither side pays fetch or I/O cost.
//
// Machine-readable output: bench_results/bench_hotpath.json (shared
// TelemetryFile schema; one run object per variant). tools/bench/
// ab_compare.py diffs the legacy//block/ pairs and two such files.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "core/accumulator_set.h"
#include "core/scorer.h"
#include "index/conversion_table.h"
#include "util/rng.h"
#include "util/str.h"

using namespace irbuf;

namespace {

/// Defeats dead-code elimination without google-benchmark: everything a
/// kernel computes folds into this sink, printed at the end.
uint64_t g_sink = 0;

/// Median-free steady-state timer: warms up, then grows the batch size
/// until one timed batch covers `min_time_s`, and reports ns per op.
template <typename Fn>
double MeasureNsPerOp(Fn&& fn, double min_time_s = 0.25) {
  using Clock = std::chrono::steady_clock;
  fn();
  fn();  // Warm-up: touch caches, fault in pages, grow tables.
  uint64_t iters = 1;
  while (true) {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < iters; ++i) fn();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= min_time_s || iters > (1ull << 40)) {
      return elapsed * 1e9 / static_cast<double>(iters);
    }
    if (elapsed <= 0.0) {
      iters *= 64;
    } else {
      // Aim 40% past the target so the next batch usually suffices.
      const double scale = 1.4 * min_time_s / elapsed;
      iters = static_cast<uint64_t>(static_cast<double>(iters) * scale) + 1;
    }
  }
}

std::string RunJson(const std::string& label, double ns_per_op,
                    uint64_t items_per_op) {
  const double ns_per_item =
      items_per_op > 0 ? ns_per_op / static_cast<double>(items_per_op)
                       : ns_per_op;
  return StrFormat(
      "{\"label\":\"%s\",\"ns_per_op\":%.2f,\"items_per_op\":%llu,"
      "\"ns_per_item\":%.4f,\"mitems_per_sec\":%.2f}",
      label.c_str(), ns_per_op,
      static_cast<unsigned long long>(items_per_op), ns_per_item,
      ns_per_item > 0.0 ? 1e3 / ns_per_item : 0.0);
}

void Report(bench::TelemetryFile* out, const std::string& name,
            double legacy_ns, double block_ns, uint64_t items) {
  std::printf("  %-22s legacy %10.1f ns/op   block %10.1f ns/op   "
              "speedup %.2fx\n",
              name.c_str(), legacy_ns, block_ns, legacy_ns / block_ns);
  out->AddRaw(RunJson("legacy/" + name, legacy_ns, items));
  out->AddRaw(RunJson("block/" + name, block_ns, items));
}

// --- BM_BlockDecode ---------------------------------------------------

void BenchBlockDecode(bench::TelemetryFile* out) {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const storage::SimulatedDisk& disk = corpus.index().disk();
  // Real page images from the longest inverted lists: the byte stream
  // the decoder sees in production, single-byte gaps dominating.
  std::vector<const std::vector<uint8_t>*> images;
  uint64_t postings = 0;
  for (TermId t = 0;
       t < corpus.index().lexicon().size() && images.size() < 64; ++t) {
    const index::TermInfo& info = corpus.index().lexicon().info(t);
    if (info.pages < 2) continue;
    for (uint32_t p = 0; p < info.pages && images.size() < 64; ++p) {
      auto image = disk.PageImage(PageId{t, p});
      if (!image.ok()) std::abort();
      images.push_back(image.value());
    }
  }
  if (images.empty()) std::abort();
  {
    storage::PostingBlock probe;
    for (const auto* image : images) {
      if (!storage::DecodePostingsInto(*image, &probe).ok()) std::abort();
      postings += probe.size();
    }
  }

  const double legacy_ns = MeasureNsPerOp([&images] {
    for (const auto* image : images) {
      auto decoded = storage::DecodePostings(*image);
      if (!decoded.ok()) std::abort();
      g_sink += decoded.value().size();
    }
  });
  storage::PostingBlock block;
  const double block_ns = MeasureNsPerOp([&images, &block] {
    for (const auto* image : images) {
      if (!storage::DecodePostingsInto(*image, &block).ok()) std::abort();
      g_sink += block.size();
    }
  });
  Report(out, "BM_BlockDecode", legacy_ns, block_ns, postings);
}

// --- BM_AccumulatorProbe ----------------------------------------------

void BenchAccumulatorProbe(bench::TelemetryFile* out) {
  // The probe stream a posting loop issues: skewed doc ids, ~2/3 hits
  // against a warmed candidate set, misses inserting new candidates.
  Pcg32 rng(42);
  std::vector<DocId> warm(20000);
  for (DocId& d : warm) d = rng.NextBounded(60000);
  std::vector<DocId> stream(50000);
  for (DocId& d : stream) d = rng.NextBounded(90000);

  const double legacy_ns = MeasureNsPerOp([&warm, &stream] {
    std::unordered_map<DocId, double> acc;
    for (DocId d : warm) acc.emplace(d, 1.0);
    for (DocId d : stream) {
      auto it = acc.find(d);
      if (it == acc.end()) it = acc.emplace(d, 0.0).first;
      it->second += 1.5;
    }
    g_sink += acc.size();
  });
  const double block_ns = MeasureNsPerOp([&warm, &stream] {
    core::AccumulatorSet acc;
    for (DocId d : warm) acc.Insert(d, 1.0);
    for (DocId d : stream) acc.FindOrInsert(d) += 1.5;
    g_sink += acc.size();
  });
  Report(out, "BM_AccumulatorProbe", legacy_ns, block_ns,
         warm.size() + stream.size());
}

// --- BM_EvalDFQuery / BM_EvalBAFQuery ---------------------------------

/// Cached in-memory pages of every term the topic queries touch, in
/// both representations, plus the lexicon stats the kernels consume.
struct EvalFixture {
  struct TermPages {
    TermId term = 0;
    uint32_t fq = 0;
    index::TermInfo info;
    std::vector<std::vector<Posting>> aos;
    const std::vector<storage::PostingBlock>* soa = nullptr;
  };
  // Per topic, terms pre-sorted in DF's decreasing-idf order.
  std::vector<std::vector<TermPages>> topics;
  uint64_t total_postings = 0;
};

EvalFixture BuildEvalFixture() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();
  static std::unordered_map<TermId, std::vector<storage::PostingBlock>>
      soa_cache;
  EvalFixture fx;
  for (const corpus::Topic& topic : corpus.topics()) {
    std::vector<EvalFixture::TermPages> terms;
    for (const core::QueryTerm& qt : topic.query.terms()) {
      EvalFixture::TermPages tp;
      tp.term = qt.term;
      tp.fq = qt.fq;
      tp.info = index.lexicon().info(qt.term);
      auto [it, fresh] = soa_cache.try_emplace(qt.term);
      for (uint32_t p = 0; p < tp.info.pages; ++p) {
        storage::Page page;
        if (!index.disk().ReadPage(PageId{qt.term, p}, &page).ok()) {
          std::abort();
        }
        if (fresh) it->second.push_back(page.block);
        tp.aos.push_back(page.MaterializePostings());
        fx.total_postings += page.block.size();
      }
      tp.soa = &it->second;
      terms.push_back(std::move(tp));
    }
    std::sort(terms.begin(), terms.end(),
              [](const EvalFixture::TermPages& a,
                 const EvalFixture::TermPages& b) {
                if (a.info.idf != b.info.idf) return a.info.idf > b.info.idf;
                if (a.info.pages != b.info.pages) {
                  return a.info.pages < b.info.pages;
                }
                return a.term < b.term;
              });
    fx.topics.push_back(std::move(terms));
  }
  return fx;
}

constexpr double kCIns = 0.07;
constexpr double kCAdd = 0.002;

/// The pre-rewrite ProcessTerm inner loop, verbatim: per-posting AoS
/// iteration, per-posting weight multiply, unordered_map probes.
void LegacyTermKernel(const EvalFixture::TermPages& tp,
                      std::unordered_map<DocId, double>* acc,
                      double* smax) {
  const core::Thresholds th =
      core::ComputeThresholds(kCIns, kCAdd, *smax, tp.fq, tp.info.idf);
  if (static_cast<double>(tp.info.fmax) <= th.f_add) return;
  const double wq = core::QueryTermWeight(tp.fq, tp.info.idf);
  bool stop = false;
  for (const std::vector<Posting>& page : tp.aos) {
    if (stop) break;
    for (const Posting& p : page) {
      const double f = static_cast<double>(p.freq);
      if (f > th.f_ins) {
        const double partial =
            core::DocTermWeight(p.freq, tp.info.idf) * wq;
        auto [it, inserted] = acc->try_emplace(p.doc, 0.0);
        it->second += partial;
        if (it->second > *smax) *smax = it->second;
      } else if (f > th.f_add) {
        auto it = acc->find(p.doc);
        if (it != acc->end()) {
          it->second += core::DocTermWeight(p.freq, tp.info.idf) * wq;
          if (it->second > *smax) *smax = it->second;
        }
      } else {
        stop = true;
        break;
      }
    }
  }
}

/// The rewritten inner loop: run-granular thresholds, hoisted weight,
/// open-addressing probes over the SoA block.
void BlockTermKernel(const EvalFixture::TermPages& tp,
                     core::AccumulatorSet* acc, double* smax) {
  const core::Thresholds th =
      core::ComputeThresholds(kCIns, kCAdd, *smax, tp.fq, tp.info.idf);
  if (static_cast<double>(tp.info.fmax) <= th.f_add) return;
  const double wq = core::QueryTermWeight(tp.fq, tp.info.idf);
  bool stop = false;
  for (const storage::PostingBlock& block : *tp.soa) {
    if (stop) break;
    for (const storage::PostingRun& run : block.runs) {
      const double f = static_cast<double>(run.freq);
      if (f > th.f_ins) {
        const double partial =
            core::DocTermWeight(run.freq, tp.info.idf) * wq;
        for (uint32_t i = run.begin; i < run.end; ++i) {
          double& a = acc->FindOrInsert(block.doc_ids[i]);
          a += partial;
          if (a > *smax) *smax = a;
        }
      } else if (f > th.f_add) {
        const double partial =
            core::DocTermWeight(run.freq, tp.info.idf) * wq;
        for (uint32_t i = run.begin; i < run.end; ++i) {
          if (double* a = acc->FindOrNull(block.doc_ids[i])) {
            *a += partial;
            if (*a > *smax) *smax = *a;
          }
        }
      } else {
        stop = true;
        break;
      }
    }
  }
}

/// BAF's round structure: each round picks the unprocessed term with
/// the fewest estimated reads (conversion-table p_t at the current
/// Smax; no buffer, so b_t = 0), then runs `kernel` on it.
template <typename Kernel>
void BafOrder(const std::vector<EvalFixture::TermPages>& terms,
              const index::ConversionTable& table, double* smax,
              Kernel&& kernel) {
  std::vector<double> cached_smax(terms.size(), -1.0);
  std::vector<uint32_t> pt(terms.size(), 0);
  std::vector<bool> done(terms.size(), false);
  for (size_t round = 0; round < terms.size(); ++round) {
    size_t best = terms.size();
    for (size_t i = 0; i < terms.size(); ++i) {
      if (done[i]) continue;
      const EvalFixture::TermPages& tp = terms[i];
      if (cached_smax[i] != *smax) {
        const double f_add =
            core::ComputeThresholds(kCIns, kCAdd, *smax, tp.fq,
                                    tp.info.idf)
                .f_add;
        pt[i] = table.PagesToProcess(tp.term, f_add, tp.info.pages,
                                     tp.info.fmax);
        cached_smax[i] = *smax;
      }
      if (best == terms.size() || pt[i] < pt[best] ||
          (pt[i] == pt[best] &&
           terms[i].info.idf > terms[best].info.idf)) {
        best = i;
      }
    }
    done[best] = true;
    kernel(terms[best]);
  }
}

void BenchEvalQueries(bench::TelemetryFile* out) {
  const EvalFixture fx = BuildEvalFixture();
  const index::ConversionTable& table =
      bench::GetCorpus().index().conversion_table();

  // DF: static decreasing-idf order (terms are pre-sorted).
  const double df_legacy = MeasureNsPerOp([&fx] {
    for (const auto& terms : fx.topics) {
      std::unordered_map<DocId, double> acc;
      double smax = 0.0;
      for (const auto& tp : terms) LegacyTermKernel(tp, &acc, &smax);
      g_sink += acc.size();
    }
  });
  const double df_block = MeasureNsPerOp([&fx] {
    for (const auto& terms : fx.topics) {
      core::AccumulatorSet acc;
      double smax = 0.0;
      for (const auto& tp : terms) BlockTermKernel(tp, &acc, &smax);
      g_sink += acc.size();
    }
  });
  Report(out, "BM_EvalDFQuery", df_legacy / fx.topics.size(),
         df_block / fx.topics.size(), fx.total_postings);

  // BAF: fewest-estimated-reads order, same kernels.
  const double baf_legacy = MeasureNsPerOp([&fx, &table] {
    for (const auto& terms : fx.topics) {
      std::unordered_map<DocId, double> acc;
      double smax = 0.0;
      BafOrder(terms, table, &smax,
               [&acc, &smax](const EvalFixture::TermPages& tp) {
                 LegacyTermKernel(tp, &acc, &smax);
               });
      g_sink += acc.size();
    }
  });
  const double baf_block = MeasureNsPerOp([&fx, &table] {
    for (const auto& terms : fx.topics) {
      core::AccumulatorSet acc;
      double smax = 0.0;
      BafOrder(terms, table, &smax,
               [&acc, &smax](const EvalFixture::TermPages& tp) {
                 BlockTermKernel(tp, &acc, &smax);
               });
      g_sink += acc.size();
    }
  });
  Report(out, "BM_EvalBAFQuery", baf_legacy / fx.topics.size(),
         baf_block / fx.topics.size(), fx.total_postings);
}

// --- BM_BufferFetchDecoded --------------------------------------------

void BenchBufferFetchDecoded(bench::TelemetryFile* out) {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();
  buffer::BufferManager pool(&index.disk(), 128,
                             buffer::MakePolicy(buffer::PolicyKind::kLru));
  // Warm a resident working set smaller than the pool, then measure the
  // pure hit path: pin, read one posting from the decoded block, unpin.
  std::vector<PageId> resident;
  for (TermId t = 0; t < index.lexicon().size() && resident.size() < 96;
       ++t) {
    for (uint32_t p = 0;
         p < index.lexicon().info(t).pages && resident.size() < 96; ++p) {
      resident.push_back(PageId{t, p});
    }
  }
  for (PageId id : resident) {
    if (!pool.FetchPage(id).ok()) std::abort();
  }
  Pcg32 rng(99);
  std::vector<PageId> sequence(4096);
  for (PageId& id : sequence) {
    id = resident[rng.NextBounded(static_cast<uint32_t>(resident.size()))];
  }
  const double hit_ns = MeasureNsPerOp([&pool, &sequence] {
    for (PageId id : sequence) {
      auto page = pool.FetchPinned(id);
      if (!page.ok()) std::abort();
      g_sink += page.value()->block.doc_ids[0];
    }
  });
  const double per_fetch = hit_ns / static_cast<double>(sequence.size());
  std::printf("  %-22s                          block %10.1f ns/op\n",
              "BM_BufferFetchDecoded", per_fetch);
  out->AddRaw(RunJson("block/BM_BufferFetchDecoded", per_fetch, 1));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "bench_hotpath",
      "A/B of the evaluation hot path: block decode, open-addressing "
      "accumulators, run-granular filtering kernels");
  bench::TelemetryFile out("bench_hotpath");
  BenchBlockDecode(&out);
  BenchAccumulatorProbe(&out);
  BenchEvalQueries(&out);
  BenchBufferFetchDecoded(&out);
  out.Close();
  // The telemetry file doubles as the committed A/B baseline, under the
  // name the acceptance gate and ab_compare.py expect.
  const std::string from = bench::ResultsDir() + "/bench_hotpath.telemetry.json";
  const std::string to = bench::ResultsDir() + "/bench_hotpath.json";
  std::rename(from.c_str(), to.c_str());
  std::printf("  sink %llu\n", static_cast<unsigned long long>(g_sink));
  return 0;
}
