// Reproduces the Section 5.2 retrieval-effectiveness analysis:
//  * DF's effectiveness is identical regardless of policy or buffer size
//    (its evaluation never looks at buffer contents);
//  * BAF's effectiveness is within 5% relative of DF's in over 90% of
//    runs and equal on average;
//  * the only memory-metric anomaly is BAF/LRU, whose average
//    accumulator count roughly doubles (2,575 -> 5,453 in the paper).

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "metrics/run_stats.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();

  bench::PrintHeader(
      "Section 5.2 - retrieval effectiveness and accumulators across "
      "configurations (ADD-ONLY)",
      "BAF within 5% relative of DF in >90% of runs, equal on average; "
      "DF invariant to buffering; BAF/LRU average accumulators ~2x DF");

  // A representative slice of topics and buffer sizes keeps the runtime
  // sane; topics 0..24 include the four designed queries.
  const size_t kTopics = std::min<size_t>(25, corpus.topics().size());
  const double kFractions[] = {0.10, 0.30, 0.60};

  std::vector<double> relative_diffs;
  std::map<buffer::PolicyKind, std::vector<double>> diffs_by_policy;
  double df_ap_sum = 0.0, baf_ap_sum = 0.0;
  size_t ap_runs = 0;
  double df_acc_sum = 0.0, baf_lru_acc_sum = 0.0;
  size_t acc_runs = 0;

  for (size_t ti = 0; ti < kTopics; ++ti) {
    const corpus::Topic& topic = corpus.topics()[ti];
    auto sequence = workload::BuildRefinementSequence(
        topic.title, topic.query, index,
        workload::RefinementKind::kAddOnly);
    if (!sequence.ok()) continue;
    uint64_t working_set = ir::SequenceWorkingSetPages(index,
                                                       sequence.value());

    for (double fraction : kFractions) {
      size_t pages = std::max<size_t>(
          1, static_cast<size_t>(fraction *
                                 static_cast<double>(working_set)));
      // n = 200 answers, the upper end of what Section 2.1 calls a
      // user-manageable result size; AP over 200 answers has the
      // granularity the paper's relative-difference statistic needs.
      ir::SequenceRunOptions df_options = bench::ComboOptions(
          {false, buffer::PolicyKind::kLru, "DF/LRU"}, pages);
      df_options.top_n = 200;
      auto df = ir::RunRefinementSequence(index, sequence.value(),
                                          topic.relevant_docs, df_options);
      if (!df.ok()) continue;
      df_acc_sum += static_cast<double>(df.value().max_accumulators);
      ++acc_runs;

      for (buffer::PolicyKind policy :
           {buffer::PolicyKind::kLru, buffer::PolicyKind::kMru,
            buffer::PolicyKind::kRap}) {
        ir::SequenceRunOptions baf_options =
            bench::ComboOptions({true, policy, "BAF"}, pages);
        baf_options.top_n = 200;
        auto baf = ir::RunRefinementSequence(
            index, sequence.value(), topic.relevant_docs, baf_options);
        if (!baf.ok()) continue;
        double reference = df.value().mean_avg_precision;
        double measured = baf.value().mean_avg_precision;
        if (reference > 0.0) {
          double diff = std::abs(measured - reference) / reference;
          relative_diffs.push_back(diff);
          diffs_by_policy[policy].push_back(diff);
          df_ap_sum += reference;
          baf_ap_sum += measured;
          ++ap_runs;
        }
        if (policy == buffer::PolicyKind::kLru) {
          baf_lru_acc_sum +=
              static_cast<double>(baf.value().max_accumulators);
        }
      }
    }
  }

  metrics::Summary diffs = metrics::Summarize(relative_diffs);
  double within5 = 1.0 - metrics::FractionAbove(relative_diffs, 0.05);
  std::printf("runs compared                 : %zu\n", diffs.count);
  std::printf("BAF within 5%% relative of DF : %.0f%% of runs "
              "(paper: >90%%)\n",
              within5 * 100.0);
  for (const auto& [policy, diffs_vec] : diffs_by_policy) {
    std::printf("  BAF/%-5s within 5%%: %.0f%%  median diff %s\n",
                buffer::PolicyKindName(policy),
                (1.0 - metrics::FractionAbove(diffs_vec, 0.05)) * 100.0,
                bench::Percent(metrics::Summarize(diffs_vec).median)
                    .c_str());
  }
  std::printf("mean relative difference      : %s (paper: same on "
              "average)\n",
              bench::Percent(diffs.mean).c_str());
  std::printf("mean AP, DF vs BAF            : %.4f vs %.4f\n",
              df_ap_sum / static_cast<double>(ap_runs),
              baf_ap_sum / static_cast<double>(ap_runs));
  std::printf("avg peak accumulators, DF     : %.0f\n",
              df_acc_sum / static_cast<double>(acc_runs));
  std::printf("avg peak accumulators, BAF/LRU: %.0f (paper: roughly "
              "doubles, 2575 -> 5453)\n",
              baf_lru_acc_sum / static_cast<double>(acc_runs));

  // DF invariance check: identical AP across policies and pool sizes.
  const corpus::Topic& q1 = corpus.topics()[0];
  auto seq = workload::BuildRefinementSequence(
      "Q1", q1.query, index, workload::RefinementKind::kAddOnly);
  if (seq.ok()) {
    double reference = -1.0;
    bool invariant = true;
    for (buffer::PolicyKind policy :
         {buffer::PolicyKind::kLru, buffer::PolicyKind::kMru,
          buffer::PolicyKind::kRap}) {
      for (size_t pages : {3ul, 64ul, 4096ul}) {
        auto run = ir::RunRefinementSequence(
            index, seq.value(), q1.relevant_docs,
            bench::ComboOptions({false, policy, "DF"}, pages));
        if (!run.ok()) continue;
        if (reference < 0.0) {
          reference = run.value().mean_avg_precision;
        } else if (run.value().mean_avg_precision != reference) {
          invariant = false;
        }
      }
    }
    std::printf("DF effectiveness invariant to policy/buffers: %s "
                "(paper: yes, by construction)\n",
                invariant ? "yes" : "NO");
  }
  return 0;
}
