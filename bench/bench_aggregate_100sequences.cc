// Reproduces the Section 5.2.1 aggregate over all 100 ADD-ONLY
// sequences: "the best-case savings relative to DF/LRU range from 46% to
// 90%, with both mean and median around 75%, and 74 sequences (out of
// 100) showing maximal improvement of over 70%".
//
// For each topic's ADD-ONLY sequence, BAF/RAP and DF/LRU are run across
// a ladder of buffer sizes (fractions of the sequence's working set);
// the best-case saving is the maximum over sizes of
// 1 - reads(BAF/RAP) / reads(DF/LRU).

#include <cstdio>

#include "bench_util.h"
#include "metrics/run_stats.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();

  bench::PrintHeader(
      "Section 5.2.1 aggregate - best-case savings over all 100 ADD-ONLY "
      "sequences (BAF/RAP vs DF/LRU)",
      "range 46-90%, mean and median ~75%, 74/100 sequences above 70%");

  // The paper reads each sequence's best case off its full curve; a
  // reasonably fine grid over the contended region approximates that
  // (Figures 5-6 place the optima at ~15-35% of the working set).
  const double kFractions[] = {0.05, 0.10, 0.15, 0.20, 0.25,
                               0.30, 0.40, 0.50, 0.75};
  bench::Combo df_lru{false, buffer::PolicyKind::kLru, "DF/LRU"};
  bench::Combo baf_rap{true, buffer::PolicyKind::kRap, "BAF/RAP"};

  bench::TelemetryFile telemetry("bench_aggregate_100sequences");
  std::vector<double> best_savings;
  size_t done = 0;
  for (const corpus::Topic& topic : corpus.topics()) {
    auto sequence = workload::BuildRefinementSequence(
        topic.title, topic.query, index,
        workload::RefinementKind::kAddOnly);
    if (!sequence.ok()) continue;
    uint64_t working_set = ir::SequenceWorkingSetPages(index,
                                                       sequence.value());
    double best = 0.0;
    for (double fraction : kFractions) {
      size_t pages = std::max<size_t>(
          1, static_cast<size_t>(fraction *
                                 static_cast<double>(working_set)));
      auto base = ir::RunRefinementSequence(
          index, sequence.value(), {}, bench::ComboOptions(df_lru, pages));
      auto ours = ir::RunRefinementSequence(
          index, sequence.value(), {},
          bench::ComboOptions(baf_rap, pages));
      if (!base.ok() || !ours.ok()) continue;
      double savings = bench::SavingsVs(ours.value().total_disk_reads,
                                        base.value().total_disk_reads);
      if (savings > best) best = savings;
    }
    best_savings.push_back(best);
    obs::JsonWriter run;
    run.BeginObject();
    run.Key("label").Str(topic.title);
    run.Key("working_set_pages").UInt(working_set);
    run.Key("best_savings").Num(best);
    run.EndObject();
    telemetry.AddRaw(std::move(run).Take());
    if (++done % 20 == 0) {
      std::fprintf(stderr, "[bench] %zu/%zu sequences done\n", done,
                   corpus.topics().size());
    }
  }

  metrics::Summary summary = metrics::Summarize(best_savings);
  double above70 = metrics::FractionAbove(best_savings, 0.70);
  std::printf("sequences measured : %zu\n", summary.count);
  std::printf("best-case savings  : min %s  median %s  mean %s  max %s\n",
              bench::Percent(summary.min).c_str(),
              bench::Percent(summary.median).c_str(),
              bench::Percent(summary.mean).c_str(),
              bench::Percent(summary.max).c_str());
  std::printf("  (paper: range 46%%-90%%, mean/median ~75%%)\n");
  std::printf("tail (distribution) : p90 %s  p99 %s\n",
              bench::Percent(summary.p90).c_str(),
              bench::Percent(summary.p99).c_str());
  std::printf("sequences above 70%% savings: %.0f%% (paper: 74%%)\n",
              above70 * 100.0);

  std::printf("\nhistogram (best-case savings):\n");
  const char* buckets[] = {"0-10%", "10-20%", "20-30%", "30-40%",
                           "40-50%", "50-60%", "60-70%", "70-80%",
                           "80-90%", "90-100%"};
  int counts[10] = {};
  for (double s : best_savings) {
    int b = static_cast<int>(s * 10.0);
    if (b < 0) b = 0;
    if (b > 9) b = 9;
    ++counts[b];
  }
  for (int b = 0; b < 10; ++b) {
    std::printf("  %-8s %3d ", buckets[b], counts[b]);
    for (int i = 0; i < counts[b]; ++i) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
