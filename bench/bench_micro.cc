// Microbenchmarks (google-benchmark) for the hot paths underneath the
// reproduction: stemming, posting compression, buffer-manager fetches per
// policy, accumulator updates and top-n selection. These quantify the
// constant factors behind the simulator's CPU-cost metric.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "core/accumulator_set.h"
#include "core/top_n.h"
#include "index/index_builder.h"
#include "obs/span.h"
#include "storage/codec.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace irbuf {
namespace {

const char* kWords[] = {
    "computers",   "computing",     "increases",  "investment",
    "american",    "stockmarkets",  "relational", "conditional",
    "hesitancy",   "formalization", "electrical", "adjustment",
    "gyroscopic",  "dependable",    "insulation", "manufacturing",
};

void BM_PorterStem(benchmark::State& state) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::PorterStem(kWords[i++ % std::size(kWords)]));
  }
}
BENCHMARK(BM_PorterStem);

void BM_Tokenize(benchmark::State& state) {
  std::string input;
  for (int i = 0; i < 50; ++i) {
    input += "Drastic price increases hit American stock markets in 1987; ";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::TokenizeAll(input));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_Tokenize);

std::vector<Posting> MakePagePostings(size_t n) {
  Pcg32 rng(5);
  TruncatedGeometric freq(0.55, 30);
  std::vector<Posting> postings;
  for (size_t i = 0; i < n; ++i) {
    postings.push_back(
        Posting{static_cast<DocId>(i * 7 + 3), freq.Sample(&rng)});
  }
  std::sort(postings.begin(), postings.end(),
            [](const Posting& a, const Posting& b) {
              if (a.freq != b.freq) return a.freq > b.freq;
              return a.doc < b.doc;
            });
  return postings;
}

void BM_EncodePostings(benchmark::State& state) {
  auto postings = MakePagePostings(404);
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::EncodePostings(postings));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 404);
}
BENCHMARK(BM_EncodePostings);

// Decode A/B: the scalar allocate-per-page decoder the codebase started
// with versus the bulk block decoder the evaluators now consume.
void BM_DecodePostings_legacy(benchmark::State& state) {
  auto image = storage::EncodePostings(MakePagePostings(404));
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::DecodePostings(image));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 404);
  state.SetLabel("legacy/BM_DecodePostings");
}
BENCHMARK(BM_DecodePostings_legacy);

void BM_DecodePostings_block(benchmark::State& state) {
  auto image = storage::EncodePostings(MakePagePostings(404));
  storage::PostingBlock block;
  for (auto _ : state) {
    if (!storage::DecodePostingsInto(image, &block).ok()) std::abort();
    benchmark::DoNotOptimize(block.doc_ids.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 404);
  state.SetLabel("block/BM_DecodePostings");
}
BENCHMARK(BM_DecodePostings_block);

// Accumulator A/B: the unordered_map the evaluators used before the
// open-addressing table, same find-or-insert-then-add stream.
void BM_AccumulatorUpdates_legacy(benchmark::State& state) {
  Pcg32 rng(7);
  std::vector<DocId> docs(10000);
  for (DocId& d : docs) d = rng.NextBounded(100000);
  for (auto _ : state) {
    std::unordered_map<DocId, double> acc;
    for (DocId d : docs) {
      auto [it, inserted] = acc.try_emplace(d, 0.0);
      it->second += 1.5;
    }
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(docs.size()));
  state.SetLabel("legacy/BM_AccumulatorUpdates");
}
BENCHMARK(BM_AccumulatorUpdates_legacy);

void BM_AccumulatorUpdates_block(benchmark::State& state) {
  Pcg32 rng(7);
  std::vector<DocId> docs(10000);
  for (DocId& d : docs) d = rng.NextBounded(100000);
  for (auto _ : state) {
    core::AccumulatorSet acc;
    for (DocId d : docs) {
      acc.FindOrInsert(d) += 1.5;
    }
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(docs.size()));
  state.SetLabel("block/BM_AccumulatorUpdates");
}
BENCHMARK(BM_AccumulatorUpdates_block);

const index::InvertedIndex& MicroIndex() {
  static index::InvertedIndex* index = [] {
    index::IndexBuilderOptions options;
    options.page_size = 404;
    options.num_docs = 100000;
    index::IndexBuilder builder(options);
    Pcg32 rng(11);
    TruncatedGeometric freq(0.55, 30);
    for (int t = 0; t < 8; ++t) {
      std::vector<Posting> postings;
      for (DocId d : SampleDistinct(100000, 8080, &rng)) {
        postings.push_back(Posting{d, freq.Sample(&rng)});
      }
      auto id = builder.AddTermPostings("term" + std::to_string(t),
                                        std::move(postings));
      if (!id.ok()) std::abort();
    }
    auto built = std::move(builder).Build();
    if (!built.ok()) std::abort();
    return new index::InvertedIndex(std::move(built).value());
  }();
  return *index;
}

void BM_BufferFetch(benchmark::State& state) {
  const index::InvertedIndex& index = MicroIndex();
  auto kind = static_cast<buffer::PolicyKind>(state.range(0));
  buffer::BufferManager pool(&index.disk(), 64,
                             buffer::MakePolicy(kind));
  buffer::QueryContext ctx;
  for (TermId t = 0; t < 8; ++t) ctx.SetWeight(t, 1.0 + t);
  pool.SetQueryContext(std::move(ctx));
  Pcg32 rng(13);
  for (auto _ : state) {
    TermId term = rng.NextBounded(8);
    uint32_t page = rng.NextBounded(index.lexicon().info(term).pages);
    benchmark::DoNotOptimize(pool.FetchPage(PageId{term, page}));
  }
  state.SetLabel(buffer::PolicyKindName(kind));
}
BENCHMARK(BM_BufferFetch)
    ->Arg(static_cast<int>(buffer::PolicyKind::kLru))
    ->Arg(static_cast<int>(buffer::PolicyKind::kMru))
    ->Arg(static_cast<int>(buffer::PolicyKind::kRap))
    ->Arg(static_cast<int>(buffer::PolicyKind::kLruK))
    ->Arg(static_cast<int>(buffer::PolicyKind::kTwoQ))
    ->Arg(static_cast<int>(buffer::PolicyKind::kClock))
    ->Arg(static_cast<int>(buffer::PolicyKind::kFifo));

// Span-tracing cost pair: the disabled path (null recorder — what every
// hot-path site pays when tracing is off, one branch in and one out)
// versus full recording. The disabled number is the one the
// "instrumentation off is free" contract rides on.
void BM_SpanScope_disabled(benchmark::State& state) {
  obs::SpanRecorder* recorder = nullptr;
  for (auto _ : state) {
    obs::ScopedSpan span(recorder, obs::SpanStage::kPagePin, 1);
    benchmark::DoNotOptimize(recorder);
  }
  state.SetLabel("disabled/BM_SpanScope");
}
BENCHMARK(BM_SpanScope_disabled);

void BM_SpanScope_enabled(benchmark::State& state) {
  obs::SpanRecorder recorder;
  recorder.SetCurrentQuery(7);
  uint64_t n = 0;
  for (auto _ : state) {
    obs::ScopedSpan span(&recorder, obs::SpanStage::kPagePin, 1);
    benchmark::DoNotOptimize(n);
    // Bound the recorder's memory: a long benchmark run would otherwise
    // retain every span. The amortized clear cost is in the noise.
    if ((++n & 0xFFFF) == 0) recorder.Clear();
  }
  state.SetLabel("enabled/BM_SpanScope");
}
BENCHMARK(BM_SpanScope_enabled);

// Mutex-profiling cost pair: a plain (seed-equivalent) lock/unlock
// versus one with contention tracking attached, uncontended — the
// try_lock + relaxed counter the instrumented fast path adds. Waits are
// only timed when the lock actually blocks, which an uncontended
// single-thread loop never does, so no clock reads happen here.
void BM_MutexLock_plain(benchmark::State& state) {
  Mutex mu;
  for (auto _ : state) {
    mu.Lock();
    mu.Unlock();
  }
  state.SetLabel("plain/BM_MutexLock");
}
BENCHMARK(BM_MutexLock_plain);

void BM_MutexLock_profiled(benchmark::State& state) {
  Mutex mu;
  MutexWaitStats stats("bench.mutex");
  mu.TrackContention(&stats);
  for (auto _ : state) {
    mu.Lock();
    mu.Unlock();
  }
  benchmark::DoNotOptimize(stats.acquisitions());
  state.SetLabel("profiled/BM_MutexLock");
}
BENCHMARK(BM_MutexLock_profiled);

void BM_SelectTopN(benchmark::State& state) {
  const index::InvertedIndex& index = MicroIndex();
  Pcg32 rng(17);
  core::AccumulatorSet acc;
  for (int i = 0; i < 50000; ++i) {
    acc.Insert(rng.NextBounded(100000), rng.NextDouble() * 1000.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SelectTopN(acc, index, static_cast<uint32_t>(
                                         state.range(0))));
  }
}
BENCHMARK(BM_SelectTopN)->Arg(20)->Arg(200);

}  // namespace
}  // namespace irbuf

BENCHMARK_MAIN();
