// Extension experiment: response-time estimates under two device models.
// The paper's premise is a disk-bound 1990s system (one random read ~
// 10 ms); this bench asks whether its techniques still matter when reads
// cost 100x less (NVMe-class), using the simulator's read and posting
// counters with a simple sequential cost model.

#include <cstdio>

#include "bench_util.h"
#include "storage/cost_model.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();

  bench::PrintHeader(
      "Extension - response-time estimates: 1990s disk vs NVMe",
      "the paper's savings are read-counts; this converts them to time "
      "under both device eras (Section 2.4's cost factors)");

  const corpus::Topic& topic = corpus.topics()[0];  // QUERY1.
  auto sequence = workload::BuildRefinementSequence(
      topic.title, topic.query, index, workload::RefinementKind::kAddOnly);
  if (!sequence.ok()) return 1;
  uint64_t working_set = ir::SequenceWorkingSetPages(index,
                                                     sequence.value());
  size_t pages = std::max<size_t>(2, working_set / 5);

  storage::CostModel disk = storage::CostModel::PaperEra();
  storage::CostModel nvme = storage::CostModel::ModernNvme();

  std::printf("ADD-ONLY-QUERY1, %zu buffer pages; per-sequence totals\n\n",
              pages);
  AsciiTable table({"combination", "reads", "postings", "disk-era ms",
                    "nvme-era ms"});
  double base_disk_ms = 0.0, base_nvme_ms = 0.0;
  double best_disk_ms = 1e300, best_nvme_ms = 1e300;
  for (const bench::Combo& combo : bench::PaperCombos()) {
    auto result = ir::RunRefinementSequence(
        index, sequence.value(), {}, bench::ComboOptions(combo, pages));
    if (!result.ok()) return 1;
    uint64_t reads = result.value().total_disk_reads;
    uint64_t postings = result.value().total_postings_processed;
    double disk_ms = disk.ElapsedMs(reads, postings);
    double nvme_ms = nvme.ElapsedMs(reads, postings);
    if (combo.label == "DF/LRU") {
      base_disk_ms = disk_ms;
      base_nvme_ms = nvme_ms;
    }
    best_disk_ms = std::min(best_disk_ms, disk_ms);
    best_nvme_ms = std::min(best_nvme_ms, nvme_ms);
    table.AddRow({
        combo.label,
        StrFormat("%llu", static_cast<unsigned long long>(reads)),
        StrFormat("%llu", static_cast<unsigned long long>(postings)),
        StrFormat("%.1f", disk_ms),
        StrFormat("%.1f", nvme_ms),
    });
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("speedup of best configuration over DF/LRU: %.1fx on a "
              "1990s disk, %.1fx on NVMe\n",
              base_disk_ms / best_disk_ms, base_nvme_ms / best_nvme_ms);
  std::printf("(buffer-awareness matters less when reads are cheap — but "
              "the filtering evaluator also cuts the CPU term, so gains "
              "persist)\n");
  return 0;
}
