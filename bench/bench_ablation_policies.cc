// Ablation: the full replacement-policy zoo on refinement workloads.
// Tests the paper's footnote-7 assertion that the newer LRU-K and 2Q
// policies "will fare no better than LRU in this case" (repeated
// sequential reads of frequency-sorted lists), and positions CLOCK and
// FIFO for context.

#include <cstdio>

#include "bench_util.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

namespace {

void RunWorkload(const corpus::SyntheticCorpus& corpus,
                 workload::RefinementKind kind) {
  const index::InvertedIndex& index = corpus.index();
  const corpus::Topic& topic = corpus.topics()[0];
  auto sequence = workload::BuildRefinementSequence("QUERY1", topic.query,
                                                    index, kind);
  if (!sequence.ok()) {
    std::fprintf(stderr, "sequence build failed\n");
    std::exit(1);
  }
  uint64_t working_set = ir::SequenceWorkingSetPages(index,
                                                     sequence.value());

  std::printf("\n%s-QUERY1 (DF), total reads by policy and buffer size:\n",
              workload::RefinementKindName(kind));
  std::vector<size_t> sizes;
  for (double f : {0.05, 0.15, 0.30, 0.60, 1.05}) {
    sizes.push_back(std::max<size_t>(
        1, static_cast<size_t>(f * static_cast<double>(working_set))));
  }

  std::vector<std::string> headers = {"policy"};
  for (size_t s : sizes) headers.push_back(StrFormat("%zu", s));
  AsciiTable table(headers);

  for (buffer::PolicyKind policy : buffer::AllPolicyKinds()) {
    std::vector<std::string> row = {buffer::PolicyKindName(policy)};
    for (size_t pages : sizes) {
      ir::SequenceRunOptions options;
      options.policy = policy;
      options.buffer_pages = pages;
      auto result = ir::RunRefinementSequence(index, sequence.value(), {},
                                              options);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed\n");
        std::exit(1);
      }
      row.push_back(StrFormat(
          "%llu", static_cast<unsigned long long>(
                      result.value().total_disk_reads)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation - replacement-policy zoo on refinement workloads",
      "footnote 7: LRU-2 and 2Q fare no better than LRU on the repeated "
      "sequential access of refinement; RAP dominates; MRU wins on "
      "ADD-ONLY but degrades on ADD-DROP");
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  RunWorkload(corpus, workload::RefinementKind::kAddOnly);
  RunWorkload(corpus, workload::RefinementKind::kAddDrop);
  return 0;
}
