// Shared infrastructure for the reproduction benches: corpus caching,
// experiment headers, and the (algorithm x policy) configuration matrix
// of the paper's Figures 5-8.

#ifndef IRBUF_BENCH_BENCH_UTIL_H_
#define IRBUF_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus_io.h"
#include "corpus/synthetic_corpus.h"
#include "ir/experiment.h"
#include "obs/json.h"

namespace irbuf::bench {

/// The corpus every bench shares: scale from IRBUF_SCALE (default 1.0 =
/// the paper's full WSJ profile), cached under IRBUF_CACHE_DIR (default
/// ./irbuf_cache) so only the first bench binary pays generation cost.
const corpus::SyntheticCorpus& GetCorpus();

/// The with-stop-words corpus of the Section 5.1.1 footnote.
const corpus::SyntheticCorpus& GetStopwordCorpus();

/// The scale the shared corpus was built at.
double CorpusScale();

/// Prints the standard experiment banner.
void PrintHeader(const std::string& experiment, const std::string& claim);

/// One (algorithm, policy) combination of the paper's figures.
struct Combo {
  bool buffer_aware;
  buffer::PolicyKind policy;
  std::string label;  // e.g. "DF/LRU".
};

/// The six combinations of Figures 5-8, in the paper's legend order.
std::vector<Combo> PaperCombos();

/// Sequence-run options for a combo at a buffer size.
ir::SequenceRunOptions ComboOptions(const Combo& combo, size_t pages);

/// Evenly spread buffer sizes from 1 to `max_pages` (inclusive),
/// `points` of them — the x-axis of Figures 5-8.
std::vector<size_t> BufferSizeAxis(size_t max_pages, size_t points);

/// "76.5%" formatting for savings relative to a baseline.
std::string Percent(double fraction);

/// Savings of `value` relative to `baseline` (1 - value/baseline).
double SavingsVs(uint64_t value, uint64_t baseline);

// --- Machine-readable bench output -----------------------------------
//
// Every bench keeps its human-readable tables, but ALSO appends one JSON
// object per run — the same schema as the obs telemetry export — to
// bench_results/<bench>.telemetry.json via TelemetryFile. Downstream
// tooling parses the JSON; the printf tables are presentation only and
// free to drift.

/// Directory machine-readable output lands in (IRBUF_RESULTS_DIR,
/// default ./bench_results), created on demand.
std::string ResultsDir();

/// Version of the telemetry-file envelope, carried in every file as
/// "schema_version" so downstream tooling (ab_compare.py,
/// attribution_report.py, bench_trend.py) can reject format drift
/// instead of silently misreading it. History:
///   3 — serve cells gained the async-miss-pipeline fields
///       "prefetch_depth", "prefetch_issued", "prefetch_used",
///       "prefetch_wasted", "coalesced_misses" and "device_reads"
///       (demand misses + readahead reads); the prefetch A/B pair adds
///       lower-is-better records carrying top-level "p99_us" /
///       "disk_reads" for ab_compare floors (this PR).
///   2 — schema_version field added; serve runs gained "instrumented",
///       "attribution", "mutex_waits", "latch_wait_share".
///   1 — implicit: {"bench","scale","runs":[...]} without a version.
inline constexpr uint64_t kTelemetrySchemaVersion = 3;

/// One run of one configuration — the shared schema all benches emit.
struct RunRecord {
  std::string label;            // e.g. "DF/LRU" or a scenario name
  std::string policy;           // replacement policy name
  bool buffer_aware = false;    // false = DF, true = BAF
  size_t buffer_pages = 0;
  uint64_t disk_reads = 0;
  uint64_t postings_processed = 0;
  uint64_t accumulators = 0;    // max over the run's steps
  double mean_avg_precision = 0.0;
  /// Optional pre-rendered JSON object spliced in under "detail"
  /// (e.g. ir::SequenceTelemetryJson output). Empty = omitted.
  std::string detail_json;
};

/// Fills a RunRecord from a sequence run under `options`.
RunRecord MakeRunRecord(const std::string& label,
                        const ir::SequenceRunOptions& options,
                        const ir::SequenceRunResult& result);

/// Renders `record` as one JSON object (shared schema).
std::string RunRecordJson(const RunRecord& record);

/// Collects run records for one bench binary and writes
/// `<ResultsDir()>/<bench>.telemetry.json` on Close (or destruction):
/// {"bench":...,"scale":...,"runs":[...]}.
class TelemetryFile {
 public:
  explicit TelemetryFile(std::string bench);
  ~TelemetryFile();

  TelemetryFile(const TelemetryFile&) = delete;
  TelemetryFile& operator=(const TelemetryFile&) = delete;

  void Add(const RunRecord& record);
  /// Appends a pre-rendered JSON object to the run list.
  void AddRaw(std::string json_object);

  /// Writes the file; returns false (and warns on stderr) on I/O error.
  /// Idempotent; the destructor calls it if the caller did not.
  bool Close();

 private:
  std::string bench_;
  std::vector<std::string> runs_;
  bool closed_ = false;
};

}  // namespace irbuf::bench

#endif  // IRBUF_BENCH_BENCH_UTIL_H_
