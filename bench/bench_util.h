// Shared infrastructure for the reproduction benches: corpus caching,
// experiment headers, and the (algorithm x policy) configuration matrix
// of the paper's Figures 5-8.

#ifndef IRBUF_BENCH_BENCH_UTIL_H_
#define IRBUF_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "corpus/corpus_io.h"
#include "corpus/synthetic_corpus.h"
#include "ir/experiment.h"

namespace irbuf::bench {

/// The corpus every bench shares: scale from IRBUF_SCALE (default 1.0 =
/// the paper's full WSJ profile), cached under IRBUF_CACHE_DIR (default
/// ./irbuf_cache) so only the first bench binary pays generation cost.
const corpus::SyntheticCorpus& GetCorpus();

/// The with-stop-words corpus of the Section 5.1.1 footnote.
const corpus::SyntheticCorpus& GetStopwordCorpus();

/// The scale the shared corpus was built at.
double CorpusScale();

/// Prints the standard experiment banner.
void PrintHeader(const std::string& experiment, const std::string& claim);

/// One (algorithm, policy) combination of the paper's figures.
struct Combo {
  bool buffer_aware;
  buffer::PolicyKind policy;
  std::string label;  // e.g. "DF/LRU".
};

/// The six combinations of Figures 5-8, in the paper's legend order.
std::vector<Combo> PaperCombos();

/// Sequence-run options for a combo at a buffer size.
ir::SequenceRunOptions ComboOptions(const Combo& combo, size_t pages);

/// Evenly spread buffer sizes from 1 to `max_pages` (inclusive),
/// `points` of them — the x-axis of Figures 5-8.
std::vector<size_t> BufferSizeAxis(size_t max_pages, size_t points);

/// "76.5%" formatting for savings relative to a baseline.
std::string Percent(double fraction);

/// Savings of `value` relative to `baseline` (1 - value/baseline).
double SavingsVs(uint64_t value, uint64_t baseline);

}  // namespace irbuf::bench

#endif  // IRBUF_BENCH_BENCH_UTIL_H_
