// Extension experiment: frequency-sorted vs document-ordered index
// layout (footnote 14: "algorithms that use inverted lists ordered by
// document identifiers can be expected to read most of the inverted list
// pages [Bro95]; those algorithms would perform significantly worse than
// DF here"), plus the Quit/Continue accumulator-limiting heuristics of
// [MZ94] as alternative evaluation strategies.

#include <cstdio>

#include "bench_util.h"
#include "buffer/buffer_manager.h"
#include "core/quit_continue_evaluator.h"
#include "metrics/effectiveness.h"
#include "util/str.h"

using namespace irbuf;

namespace {

const corpus::SyntheticCorpus& DocOrderedCorpus() {
  static const corpus::SyntheticCorpus* corpus = [] {
    corpus::CorpusOptions options;
    options.scale = corpus::ScaleFromEnv();
    options.list_order = index::ListOrder::kDocumentOrdered;
    options.num_random_topics = std::max<uint32_t>(
        8, static_cast<uint32_t>(96.0 * options.scale));
    const char* env = std::getenv("IRBUF_CACHE_DIR");
    std::string dir = env != nullptr ? env : "./irbuf_cache";
    std::string path =
        dir + StrFormat("/irbuf_corpus_s%.4f_seed42_docord.irbc",
                        options.scale);
    auto result = corpus::LoadOrGenerateCorpus(options, path);
    if (!result.ok()) {
      std::fprintf(stderr, "doc-ordered corpus failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    return result.value().release();
  }();
  return *corpus;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension - document-ordered lists (footnote 14) and "
      "Quit/Continue [MZ94]",
      "document-ordered evaluation reads essentially every page of every "
      "query term; frequency-sorted DF skips most of them");

  const corpus::SyntheticCorpus& freq_corpus = bench::GetCorpus();
  const corpus::SyntheticCorpus& doc_corpus = DocOrderedCorpus();

  // --- Footnote 14: same designed queries, both layouts, tuned DF. ---
  AsciiTable layout_table({"query", "pages", "freq-sorted reads",
                           "doc-ordered reads", "doc-ordered/total"});
  for (int qi = 0; qi < 4; ++qi) {
    core::EvalOptions tuned;
    auto freq = ir::RunColdQuery(freq_corpus.index(),
                                 freq_corpus.topics()[qi].query, tuned);
    auto doc = ir::RunColdQuery(doc_corpus.index(),
                                doc_corpus.topics()[qi].query, tuned);
    if (!freq.ok() || !doc.ok()) return 1;
    uint64_t pages = ir::TotalQueryPages(doc_corpus.index(),
                                         doc_corpus.topics()[qi].query);
    layout_table.AddRow({
        StrFormat("QUERY%d", qi + 1),
        StrFormat("%llu", static_cast<unsigned long long>(pages)),
        StrFormat("%llu",
                  static_cast<unsigned long long>(freq.value().disk_reads)),
        StrFormat("%llu",
                  static_cast<unsigned long long>(doc.value().disk_reads)),
        bench::Percent(static_cast<double>(doc.value().disk_reads) /
                       static_cast<double>(pages)),
    });
  }
  std::printf("%s", layout_table.ToString().c_str());
  std::printf("(the paper's conjecture: document-ordered algorithms read "
              "most pages — the last column should be near 100%%)\n\n");

  // --- Quit/Continue vs DF on the frequency-sorted index. ---
  bench::PrintHeader(
      "Quit/Continue accumulator limiting vs DF thresholds",
      "[MZ94] bounds memory directly; DF bounds it via c_ins. Compare "
      "reads, accumulators and answer overlap at equal budgets");

  const auto& topics = freq_corpus.topics();
  const size_t kTopics = std::min<size_t>(10, topics.size());

  AsciiTable qc_table({"strategy", "avg reads", "avg accumulators",
                       "avg top-20 overlap vs safe baseline"});
  struct Strategy {
    const char* label;
    bool is_df;
    core::LimitMode mode;
    size_t limit;
  };
  const Strategy strategies[] = {
      {"DF (0.07/0.002)", true, core::LimitMode::kQuit, 0},
      {"Quit L=1000", false, core::LimitMode::kQuit, 1000},
      {"Quit L=5000", false, core::LimitMode::kQuit, 5000},
      {"Continue L=1000", false, core::LimitMode::kContinue, 1000},
      {"Continue L=5000", false, core::LimitMode::kContinue, 5000},
  };

  // Safe-baseline answers for overlap measurement.
  std::vector<std::vector<core::ScoredDoc>> gold(kTopics);
  for (size_t ti = 0; ti < kTopics; ++ti) {
    core::EvalOptions full;
    full.c_ins = 0.0;
    full.c_add = 0.0;
    auto r = ir::RunColdQuery(freq_corpus.index(), topics[ti].query, full);
    if (!r.ok()) return 1;
    gold[ti] = r.value().top_docs;
  }

  for (const Strategy& s : strategies) {
    double reads = 0.0, accs = 0.0, overlap = 0.0;
    for (size_t ti = 0; ti < kTopics; ++ti) {
      core::EvalResult er;
      if (s.is_df) {
        core::EvalOptions tuned;
        auto r = ir::RunColdQuery(freq_corpus.index(), topics[ti].query,
                                  tuned);
        if (!r.ok()) return 1;
        er = std::move(r).value();
      } else {
        core::QuitContinueOptions options;
        options.mode = s.mode;
        options.accumulator_limit = s.limit;
        core::QuitContinueEvaluator evaluator(&freq_corpus.index(),
                                              options);
        buffer::BufferManager pool(
            &freq_corpus.index().disk(),
            ir::TotalQueryPages(freq_corpus.index(), topics[ti].query) + 1,
            buffer::MakePolicy(buffer::PolicyKind::kLru));
        auto r = evaluator.Evaluate(topics[ti].query, &pool);
        if (!r.ok()) return 1;
        er = std::move(r).value();
      }
      reads += static_cast<double>(er.disk_reads);
      accs += static_cast<double>(er.accumulators);
      size_t hits = 0;
      for (const core::ScoredDoc& a : er.top_docs) {
        for (const core::ScoredDoc& b : gold[ti]) {
          if (a.doc == b.doc) {
            ++hits;
            break;
          }
        }
      }
      overlap += gold[ti].empty()
                     ? 1.0
                     : static_cast<double>(hits) /
                           static_cast<double>(gold[ti].size());
    }
    double n = static_cast<double>(kTopics);
    qc_table.AddRow({
        s.label,
        StrFormat("%.0f", reads / n),
        StrFormat("%.0f", accs / n),
        bench::Percent(overlap / n),
    });
  }
  std::printf("%s", qc_table.ToString().c_str());
  std::printf("(Continue reads everything but caps memory; Quit saves "
              "I/O at a steep effectiveness cost; DF's thresholds get "
              "both, which is the paper's starting point)\n");
  return 0;
}
