#include "bench_util.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/str.h"

namespace irbuf::bench {

namespace {

std::string CacheDir() {
  const char* env = std::getenv("IRBUF_CACHE_DIR");
  std::string dir = env != nullptr ? env : "./irbuf_cache";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

const corpus::SyntheticCorpus* BuildCorpus(bool stopwords) {
  double scale = corpus::ScaleFromEnv();
  corpus::CorpusOptions options;
  options.scale = scale;
  options.include_stopwords = stopwords;
  // Topic count scales with the vocabulary: keeping all 100 topics on a
  // shrunken collection would stack their relevance boosts onto the same
  // few multi-page terms and distort the frequency tails.
  options.num_random_topics = std::max<uint32_t>(
      8, static_cast<uint32_t>(std::llround(96.0 * scale)));
  std::string path =
      CacheDir() + StrFormat("/irbuf_corpus_s%.4f_seed%llu%s.irbc", scale,
                             static_cast<unsigned long long>(options.seed),
                             stopwords ? "_stop" : "");
  std::fprintf(stderr,
               "[bench] corpus scale=%.4f%s (cache: %s) ...\n", scale,
               stopwords ? " +stopwords" : "", path.c_str());
  auto result = corpus::LoadOrGenerateCorpus(options, path);
  if (!result.ok()) {
    std::fprintf(stderr, "[bench] corpus setup failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  std::fprintf(stderr, "[bench] corpus ready: %u docs, %zu terms, %llu "
                       "pages, %llu postings\n",
               result.value()->index().num_docs(),
               result.value()->index().lexicon().size(),
               static_cast<unsigned long long>(
                   result.value()->index().total_pages()),
               static_cast<unsigned long long>(
                   result.value()->index().disk().total_postings()));
  return result.value().release();
}

}  // namespace

const corpus::SyntheticCorpus& GetCorpus() {
  static const corpus::SyntheticCorpus* corpus = BuildCorpus(false);
  return *corpus;
}

const corpus::SyntheticCorpus& GetStopwordCorpus() {
  static const corpus::SyntheticCorpus* corpus = BuildCorpus(true);
  return *corpus;
}

double CorpusScale() { return corpus::ScaleFromEnv(); }

void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf("\n==============================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", claim.c_str());
  std::printf("==============================================================================\n");
}

std::vector<Combo> PaperCombos() {
  return {
      {false, buffer::PolicyKind::kLru, "DF/LRU"},
      {false, buffer::PolicyKind::kMru, "DF/MRU"},
      {false, buffer::PolicyKind::kRap, "DF/RAP"},
      {true, buffer::PolicyKind::kLru, "BAF/LRU"},
      {true, buffer::PolicyKind::kMru, "BAF/MRU"},
      {true, buffer::PolicyKind::kRap, "BAF/RAP"},
  };
}

ir::SequenceRunOptions ComboOptions(const Combo& combo, size_t pages) {
  ir::SequenceRunOptions options;
  options.buffer_aware = combo.buffer_aware;
  options.policy = combo.policy;
  options.buffer_pages = pages;
  return options;
}

std::vector<size_t> BufferSizeAxis(size_t max_pages, size_t points) {
  std::vector<size_t> sizes;
  if (points < 2 || max_pages <= 1) {
    sizes.push_back(std::max<size_t>(1, max_pages));
    return sizes;
  }
  for (size_t i = 0; i < points; ++i) {
    size_t size = 1 + i * (max_pages - 1) / (points - 1);
    if (sizes.empty() || size != sizes.back()) sizes.push_back(size);
  }
  return sizes;
}

std::string Percent(double fraction) {
  return StrFormat("%.1f%%", fraction * 100.0);
}

double SavingsVs(uint64_t value, uint64_t baseline) {
  if (baseline == 0) return 0.0;
  return 1.0 - static_cast<double>(value) / static_cast<double>(baseline);
}

}  // namespace irbuf::bench
