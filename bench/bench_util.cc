#include "bench_util.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/str.h"

namespace irbuf::bench {

namespace {

std::string CacheDir() {
  const char* env = std::getenv("IRBUF_CACHE_DIR");
  std::string dir = env != nullptr ? env : "./irbuf_cache";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

const corpus::SyntheticCorpus* BuildCorpus(bool stopwords) {
  double scale = corpus::ScaleFromEnv();
  corpus::CorpusOptions options;
  options.scale = scale;
  options.include_stopwords = stopwords;
  // Topic count scales with the vocabulary: keeping all 100 topics on a
  // shrunken collection would stack their relevance boosts onto the same
  // few multi-page terms and distort the frequency tails.
  options.num_random_topics = std::max<uint32_t>(
      8, static_cast<uint32_t>(std::llround(96.0 * scale)));
  std::string path =
      CacheDir() + StrFormat("/irbuf_corpus_s%.4f_seed%llu%s.irbc", scale,
                             static_cast<unsigned long long>(options.seed),
                             stopwords ? "_stop" : "");
  std::fprintf(stderr,
               "[bench] corpus scale=%.4f%s (cache: %s) ...\n", scale,
               stopwords ? " +stopwords" : "", path.c_str());
  auto result = corpus::LoadOrGenerateCorpus(options, path);
  if (!result.ok()) {
    std::fprintf(stderr, "[bench] corpus setup failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  std::fprintf(stderr, "[bench] corpus ready: %u docs, %zu terms, %llu "
                       "pages, %llu postings\n",
               result.value()->index().num_docs(),
               result.value()->index().lexicon().size(),
               static_cast<unsigned long long>(
                   result.value()->index().total_pages()),
               static_cast<unsigned long long>(
                   result.value()->index().disk().total_postings()));
  return result.value().release();
}

}  // namespace

const corpus::SyntheticCorpus& GetCorpus() {
  static const corpus::SyntheticCorpus* corpus = BuildCorpus(false);
  return *corpus;
}

const corpus::SyntheticCorpus& GetStopwordCorpus() {
  static const corpus::SyntheticCorpus* corpus = BuildCorpus(true);
  return *corpus;
}

double CorpusScale() { return corpus::ScaleFromEnv(); }

void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf("\n==============================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", claim.c_str());
  std::printf("==============================================================================\n");
}

std::vector<Combo> PaperCombos() {
  return {
      {false, buffer::PolicyKind::kLru, "DF/LRU"},
      {false, buffer::PolicyKind::kMru, "DF/MRU"},
      {false, buffer::PolicyKind::kRap, "DF/RAP"},
      {true, buffer::PolicyKind::kLru, "BAF/LRU"},
      {true, buffer::PolicyKind::kMru, "BAF/MRU"},
      {true, buffer::PolicyKind::kRap, "BAF/RAP"},
  };
}

ir::SequenceRunOptions ComboOptions(const Combo& combo, size_t pages) {
  ir::SequenceRunOptions options;
  options.buffer_aware = combo.buffer_aware;
  options.policy = combo.policy;
  options.buffer_pages = pages;
  return options;
}

std::vector<size_t> BufferSizeAxis(size_t max_pages, size_t points) {
  std::vector<size_t> sizes;
  if (points < 2 || max_pages <= 1) {
    sizes.push_back(std::max<size_t>(1, max_pages));
    return sizes;
  }
  for (size_t i = 0; i < points; ++i) {
    size_t size = 1 + i * (max_pages - 1) / (points - 1);
    if (sizes.empty() || size != sizes.back()) sizes.push_back(size);
  }
  return sizes;
}

std::string Percent(double fraction) {
  return StrFormat("%.1f%%", fraction * 100.0);
}

double SavingsVs(uint64_t value, uint64_t baseline) {
  if (baseline == 0) return 0.0;
  return 1.0 - static_cast<double>(value) / static_cast<double>(baseline);
}

std::string ResultsDir() {
  const char* env = std::getenv("IRBUF_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "./bench_results";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

RunRecord MakeRunRecord(const std::string& label,
                        const ir::SequenceRunOptions& options,
                        const ir::SequenceRunResult& result) {
  RunRecord record;
  record.label = label;
  record.policy = buffer::PolicyKindName(options.policy);
  record.buffer_aware = options.buffer_aware;
  record.buffer_pages = options.buffer_pages;
  record.disk_reads = result.total_disk_reads;
  record.postings_processed = result.total_postings_processed;
  record.accumulators = result.max_accumulators;
  record.mean_avg_precision = result.mean_avg_precision;
  return record;
}

std::string RunRecordJson(const RunRecord& record) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("label").Str(record.label);
  w.Key("policy").Str(record.policy);
  w.Key("algorithm").Str(record.buffer_aware ? "BAF" : "DF");
  w.Key("buffer_pages").UInt(record.buffer_pages);
  w.Key("disk_reads").UInt(record.disk_reads);
  w.Key("postings_processed").UInt(record.postings_processed);
  w.Key("accumulators").UInt(record.accumulators);
  w.Key("mean_avg_precision").Num(record.mean_avg_precision);
  if (!record.detail_json.empty()) {
    w.Key("detail").Raw(record.detail_json);
  }
  w.EndObject();
  return std::move(w).Take();
}

TelemetryFile::TelemetryFile(std::string bench)
    : bench_(std::move(bench)) {}

TelemetryFile::~TelemetryFile() { Close(); }

void TelemetryFile::Add(const RunRecord& record) {
  runs_.push_back(RunRecordJson(record));
}

void TelemetryFile::AddRaw(std::string json_object) {
  runs_.push_back(std::move(json_object));
}

bool TelemetryFile::Close() {
  if (closed_) return true;
  closed_ = true;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").UInt(kTelemetrySchemaVersion);
  w.Key("bench").Str(bench_);
  w.Key("scale").Num(CorpusScale());
  w.Key("runs").BeginArray();
  for (const std::string& run : runs_) w.Raw(run);
  w.EndArray();
  w.EndObject();
  const std::string path =
      ResultsDir() + "/" + bench_ + ".telemetry.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return false;
  }
  const std::string& json = w.str();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                      json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (ok) std::fprintf(stderr, "[bench] telemetry: %s\n", path.c_str());
  return ok;
}

}  // namespace irbuf::bench
