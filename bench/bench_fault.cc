// Resilience bench: what the fault layer costs when nothing fails, and
// what answers degrade to when things do.
//
// Two measurements across fault rates {0, 0.1%, 1%, 5%}:
//   1. Overhead: an ADD-ONLY refinement run with the resilience stack
//      enabled but fault-free must match the plain run's reads exactly
//      (bit-identical results are asserted in tests; here the claim is
//      the counters) and stay within noise on wall time.
//   2. Degradation curve: under mixed transient/bad-page/bit-flip
//      campaigns, disk reads, retries, pages lost and effectiveness as
//      a function of the fault rate — the graceful-degradation story in
//      numbers.
//
// Machine-readable output: bench_results/bench_fault.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault_injector.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

namespace {

/// A mixed campaign at overall rate `rate`: mostly transient errors,
/// with bad media and in-flight corruption at a quarter of the rate
/// each. Deterministic per rate (seed fixed).
fault::FaultSpec CampaignAt(double rate) {
  fault::FaultSpec spec;
  spec.seed = 7;
  if (rate > 0.0) {
    spec.rules.push_back({fault::FaultKind::kTransientRead, rate});
    spec.rules.push_back({fault::FaultKind::kPermanentBadPage, rate / 4});
    spec.rules.push_back({fault::FaultKind::kBitFlip, rate / 4});
  }
  return spec;
}

struct FaultRun {
  double rate = 0.0;
  std::string label;
  bool resilience = false;
  uint64_t disk_reads = 0;
  uint64_t injected = 0;
  uint64_t retries = 0;
  uint32_t degraded_steps = 0;
  uint64_t pages_lost = 0;
  double map = 0.0;
  double wall_ms = 0.0;
};

std::string FaultRunJson(const FaultRun& r) {
  return StrFormat(
      "{\"rate\":%g,\"label\":\"%s\",\"resilience\":%s,"
      "\"disk_reads\":%llu,\"faults_injected\":%llu,\"retries\":%llu,"
      "\"degraded_steps\":%u,\"pages_lost\":%llu,"
      "\"mean_avg_precision\":%.4f,\"wall_ms\":%.2f}",
      r.rate, r.label.c_str(), r.resilience ? "true" : "false",
      static_cast<unsigned long long>(r.disk_reads),
      static_cast<unsigned long long>(r.injected),
      static_cast<unsigned long long>(r.retries), r.degraded_steps,
      static_cast<unsigned long long>(r.pages_lost), r.map, r.wall_ms);
}

FaultRun RunOnce(const corpus::SyntheticCorpus& corpus,
                 const workload::RefinementSequence& sequence,
                 const std::vector<DocId>& relevant,
                 const bench::Combo& combo, size_t pages, double rate,
                 bool resilience) {
  FaultRun out;
  out.rate = rate;
  out.label = combo.label;
  out.resilience = resilience;

  const fault::FaultSpec spec = CampaignAt(rate);
  fault::FaultInjector injector(spec);
  if (!spec.rules.empty()) {
    corpus.index().disk().SetFaultInjector(&injector);
  }

  ir::SequenceRunOptions options = bench::ComboOptions(combo, pages);
  options.resilience.enabled = resilience;
  // The registry reports how many backoff retries the run absorbed;
  // binding it changes no counters or results.
  obs::MetricsRegistry registry;
  options.metrics = &registry;
  const auto start = std::chrono::steady_clock::now();
  auto result = ir::RunRefinementSequence(corpus.index(), sequence,
                                          relevant, options);
  const auto end = std::chrono::steady_clock::now();
  corpus.index().disk().SetFaultInjector(nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed (rate %g): %s\n", rate,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  const obs::Counter* rc = registry.FindCounter("fault.retries");
  out.retries = rc != nullptr ? rc->value() : 0;
  out.disk_reads = result.value().total_disk_reads;
  out.injected = injector.total_injected();
  out.degraded_steps = result.value().degraded_steps;
  out.pages_lost = result.value().total_pages_lost;
  out.map = result.value().mean_avg_precision;
  out.wall_ms = std::chrono::duration<double, std::milli>(end - start)
                    .count();
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Resilience - overhead at p=0 and the degradation curve",
      "fault-free runs through the resilience stack match plain runs "
      "exactly; under faults, queries degrade (bounded pages lost) "
      "instead of failing");
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const corpus::Topic& topic = corpus.topics()[0];
  auto sequence = workload::BuildRefinementSequence(
      "QUERY1", topic.query, corpus.index(),
      workload::RefinementKind::kAddOnly);
  if (!sequence.ok()) {
    std::fprintf(stderr, "sequence build failed\n");
    return 1;
  }
  const uint64_t working_set =
      ir::SequenceWorkingSetPages(corpus.index(), sequence.value());
  const size_t pages = static_cast<size_t>(working_set / 2 + 1);
  std::printf("ADD-ONLY-QUERY1, working set %llu pages, %zu buffers\n",
              static_cast<unsigned long long>(working_set), pages);

  std::vector<FaultRun> runs;
  AsciiTable table({"rate", "config", "resil", "reads", "injected",
                    "retries", "degraded", "lost", "MAP", "wall ms"});
  const std::vector<bench::Combo> combos = {
      {false, buffer::PolicyKind::kLru, "DF/LRU"},
      {true, buffer::PolicyKind::kRap, "BAF/RAP"},
  };
  for (const bench::Combo& combo : combos) {
    // The p=0 overhead pair: plain, then through the enabled stack.
    for (bool resilience : {false, true}) {
      runs.push_back(RunOnce(corpus, sequence.value(),
                             topic.relevant_docs, combo, pages, 0.0,
                             resilience));
    }
    const FaultRun& plain = runs[runs.size() - 2];
    const FaultRun& wrapped = runs[runs.size() - 1];
    if (plain.disk_reads != wrapped.disk_reads ||
        wrapped.degraded_steps != 0) {
      std::fprintf(stderr,
                   "p=0 mismatch for %s: %llu vs %llu reads, %u "
                   "degraded\n",
                   combo.label.c_str(),
                   static_cast<unsigned long long>(plain.disk_reads),
                   static_cast<unsigned long long>(wrapped.disk_reads),
                   wrapped.degraded_steps);
      return 1;
    }
    // The degradation curve.
    for (double rate : {0.001, 0.01, 0.05}) {
      runs.push_back(RunOnce(corpus, sequence.value(),
                             topic.relevant_docs, combo, pages, rate,
                             /*resilience=*/true));
    }
  }
  for (const FaultRun& r : runs) {
    table.AddRow({
        StrFormat("%.3g", r.rate),
        r.label,
        r.resilience ? "on" : "off",
        StrFormat("%llu", static_cast<unsigned long long>(r.disk_reads)),
        StrFormat("%llu", static_cast<unsigned long long>(r.injected)),
        StrFormat("%llu", static_cast<unsigned long long>(r.retries)),
        StrFormat("%u", r.degraded_steps),
        StrFormat("%llu", static_cast<unsigned long long>(r.pages_lost)),
        StrFormat("%.4f", r.map),
        StrFormat("%.1f", r.wall_ms),
    });
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("p=0 through the resilience stack: reads identical, 0 "
              "degraded steps (asserted)\n");

  const std::string path = bench::ResultsDir() + "/bench_fault.json";
  std::string json = StrFormat("{\"bench\":\"bench_fault\",\"scale\":%g,"
                               "\"runs\":[",
                               bench::CorpusScale());
  for (size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) json += ",";
    json += FaultRunJson(runs[i]);
  }
  json += "]}";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
      std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!wrote) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return 1;
  }
  std::printf("json         : %s\n", path.c_str());
  return 0;
}
