// Extension experiment (Section 3.3's future-work sketch, implemented):
// multi-user refinement over one shared buffer pool. Measures
//  * the paper's conjecture that users benefit from pages cached for
//    other users (shared pool vs same memory split into private pools);
//  * the two sketched RAP variants: per-query replacement value vs a
//    context merged over all active queries (max w_{q,t} per term).

#include <cstdio>

#include "bench_util.h"
#include "ir/multi_user.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();

  bench::PrintHeader(
      "Extension - multi-user refinement over a shared buffer pool",
      "Section 3.3: options for multi-user RAP; 'users may benefit from "
      "pages cached in buffers for other users'");

  // Four users: the four designed topics, ADD-ONLY.
  std::vector<workload::RefinementSequence> sequences;
  uint64_t union_ws = 0;
  for (int ti = 0; ti < 4; ++ti) {
    auto seq = workload::BuildRefinementSequence(
        corpus.topics()[ti].title, corpus.topics()[ti].query, index,
        workload::RefinementKind::kAddOnly);
    if (!seq.ok()) {
      std::fprintf(stderr, "sequence build failed\n");
      return 1;
    }
    union_ws += ir::SequenceWorkingSetPages(index, seq.value());
    sequences.push_back(std::move(seq).value());
  }
  std::printf("4 users (QUERY1-QUERY4), combined working set %llu pages\n",
              static_cast<unsigned long long>(union_ws));

  struct Config {
    const char* label;
    buffer::PolicyKind policy;
    bool baf;
    bool shared_context;
  };
  const Config configs[] = {
      {"DF / LRU", buffer::PolicyKind::kLru, false, false},
      {"DF / MRU", buffer::PolicyKind::kMru, false, false},
      {"DF / RAP (per-query)", buffer::PolicyKind::kRap, false, false},
      {"DF / RAP (shared ctx)", buffer::PolicyKind::kRap, false, true},
      {"BAF / RAP (per-query)", buffer::PolicyKind::kRap, true, false},
      {"BAF / RAP (shared ctx)", buffer::PolicyKind::kRap, true, true},
  };

  std::vector<size_t> pool_sizes;
  for (double f : {0.05, 0.10, 0.20, 0.40}) {
    pool_sizes.push_back(std::max<size_t>(
        4, static_cast<size_t>(f * static_cast<double>(union_ws))));
  }

  std::vector<std::string> headers = {"configuration"};
  for (size_t p : pool_sizes) headers.push_back(StrFormat("%zu pg", p));
  AsciiTable table(headers);
  for (const Config& config : configs) {
    std::vector<std::string> row = {config.label};
    for (size_t pages : pool_sizes) {
      ir::MultiUserOptions options;
      options.buffer_pages = pages;
      options.policy = config.policy;
      options.buffer_aware = config.baf;
      options.shared_context = config.shared_context;
      auto result = ir::RunMultiUserWorkload(index, sequences, options);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed\n");
        return 1;
      }
      row.push_back(StrFormat(
          "%llu", static_cast<unsigned long long>(
                      result.value().total_disk_reads)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());

  // Shared pool vs private pools of the same total size (DF/LRU).
  std::printf("shared pool vs equal-memory private pools (DF/LRU):\n");
  for (size_t pages : pool_sizes) {
    ir::MultiUserOptions options;
    options.buffer_pages = pages;
    auto shared = ir::RunMultiUserWorkload(index, sequences, options);
    if (!shared.ok()) return 1;
    uint64_t isolated = 0;
    for (const workload::RefinementSequence& seq : sequences) {
      ir::SequenceRunOptions iso;
      iso.buffer_pages = std::max<size_t>(1, pages / sequences.size());
      auto run = ir::RunRefinementSequence(index, seq, {}, iso);
      if (!run.ok()) return 1;
      isolated += run.value().total_disk_reads;
    }
    std::printf("  %5zu pages: shared %llu vs private %llu (%s saved)\n",
                pages,
                static_cast<unsigned long long>(
                    shared.value().total_disk_reads),
                static_cast<unsigned long long>(isolated),
                bench::Percent(
                    bench::SavingsVs(shared.value().total_disk_reads,
                                     isolated))
                    .c_str());
  }
  return 0;
}
