// Reproduces Figure 4 ("Evolution of Smax during processing of query
// terms") for QUERY1-QUERY3: Smax rises fastest and highest for QUERY1
// (one dominant mid-idf-order term), in two steps for QUERY2, and stays
// low for QUERY3.

#include <cstdio>

#include "bench_util.h"
#include "obs/query_tracer.h"
#include "util/str.h"

using namespace irbuf;

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();

  bench::PrintHeader(
      "Figure 4 - evolution of Smax while processing query terms",
      "QUERY1 rises fastest/highest (big jump at term ~12); QUERY2 rises "
      "in two steps (terms ~13 and ~23); QUERY3 stays flat and low");

  // The trajectory comes out of the obs tracer (kTermEnd events), the
  // same channel the telemetry export uses; the legacy per-term
  // TermTrace stays available but is no longer needed here.
  bench::TelemetryFile telemetry("bench_fig4_smax_evolution");
  std::vector<std::vector<double>> series(3);
  size_t longest = 0;
  for (int qi = 0; qi < 3; ++qi) {
    core::EvalOptions tuned;  // DF with Persin's constants.
    obs::QueryTracer tracer;
    auto result = ir::RunColdQuery(index, corpus.topics()[qi].query, tuned,
                                   buffer::PolicyKind::kLru, &tracer);
    if (!result.ok()) {
      std::fprintf(stderr, "query %d failed\n", qi);
      return 1;
    }
    series[qi] = tracer.SmaxTrajectory(0);
    longest = std::max(longest, series[qi].size());

    obs::JsonWriter run;
    run.BeginObject();
    run.Key("label").Str(StrFormat("QUERY%d", qi + 1));
    run.Key("disk_reads").UInt(result.value().disk_reads);
    run.Key("smax_trajectory").BeginArray();
    for (double s : series[qi]) run.Num(s);
    run.EndArray();
    run.EndObject();
    telemetry.AddRaw(std::move(run).Take());
  }

  std::printf("%6s %14s %14s %14s\n", "term", "QUERY1", "QUERY2",
              "QUERY3");
  for (size_t i = 0; i < longest; ++i) {
    std::printf("%6zu", i + 1);
    for (int qi = 0; qi < 3; ++qi) {
      if (i < series[qi].size()) {
        std::printf(" %14.1f", series[qi][i]);
      } else {
        std::printf(" %14s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\nFinal Smax: QUERY1=%.0f QUERY2=%.0f QUERY3=%.0f "
              "(paper figure peaks near 30000 / 15000 / 7000 at scale 1; "
              "shape, ordering and jump positions are the reproduced "
              "features)\n",
              series[0].back(), series[1].back(), series[2].back());
  return telemetry.Close() ? 0 : 1;
}
