// Reproduces Table 5 ("Details of investigated queries"): per designed
// query, the term count, total inverted-list pages, pages read by DF with
// tuned thresholds, and the resulting savings over unoptimized DF.

#include <cstdio>

#include "bench_util.h"
#include "util/str.h"

using namespace irbuf;

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();

  bench::PrintHeader(
      "Table 5 - details of investigated queries (QUERY1-QUERY4)",
      "terms 36/31/31/99; pages 659/610/563/4093; reads 150/341/510/678; "
      "savings 77.2% / 44.1% / 9.4% / 83.4%");

  struct PaperRow {
    const char* alias;
    int terms;
    int pages;
    int read;
    double savings;
  };
  const PaperRow paper[4] = {
      {"QUERY1", 36, 659, 150, 0.772},
      {"QUERY2", 31, 610, 341, 0.441},
      {"QUERY3", 31, 563, 510, 0.094},
      {"QUERY4", 99, 4093, 678, 0.834},
  };

  AsciiTable table({"Alias", "Terms", "Pages", "Read", "Savings",
                    "(paper terms)", "(paper pages)", "(paper read)",
                    "(paper savings)"});
  for (int qi = 0; qi < 4; ++qi) {
    const corpus::Topic& topic = corpus.topics()[qi];

    core::EvalOptions full;
    full.c_ins = 0.0;
    full.c_add = 0.0;
    auto rfull = ir::RunColdQuery(index, topic.query, full);
    core::EvalOptions tuned;  // Persin's constants.
    auto rdf = ir::RunColdQuery(index, topic.query, tuned);
    if (!rfull.ok() || !rdf.ok()) {
      std::fprintf(stderr, "query %d failed\n", qi);
      return 1;
    }
    double savings = bench::SavingsVs(rdf.value().disk_reads,
                                      rfull.value().disk_reads);
    table.AddRow({
        paper[qi].alias,
        StrFormat("%zu", topic.query.size()),
        StrFormat("%llu", static_cast<unsigned long long>(
                              ir::TotalQueryPages(index, topic.query))),
        StrFormat("%llu",
                  static_cast<unsigned long long>(rdf.value().disk_reads)),
        bench::Percent(savings),
        StrFormat("%d", paper[qi].terms),
        StrFormat("%d", paper[qi].pages),
        StrFormat("%d", paper[qi].read),
        bench::Percent(paper[qi].savings),
    });
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(buffers flushed before each query; DF with c_ins=0.07, "
              "c_add=0.002 vs the c=0 full-evaluation baseline)\n");
  return 0;
}
