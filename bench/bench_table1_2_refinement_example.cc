// Reproduces Tables 1 and 2 (the Section 3.2.1 refinement example):
// a five-term query is evaluated and then refined by adding a medium-idf
// term ("invest") while the original inverted lists are still buffered.
// DF processes the new term third (by idf) and reads its pages from disk;
// BAF pushes it to the end of the processing order, where the risen
// thresholds make most of those reads unnecessary.
//
// Paper result: DF reads 37 pages of the new term; BAF reads only 20,
// and all other terms hit buffers.

#include <cstdio>

#include <cmath>

#include "bench_util.h"
#include "buffer/buffer_manager.h"
#include "core/filtering_evaluator.h"
#include "util/str.h"

using namespace irbuf;

namespace {

// The example's terms: name used by the paper, target idf in our
// calibrated vocabulary, and the within-document frequency character the
// example needs. The paper's Smax trajectory (288 -> 333 -> 591) relies
// on the query's common terms occurring *often* in the top documents
// ("price" dozens of times in an article about price increases), so the
// common-term surrogates are chosen with high fmax; "drastic" provides a
// moderate initial Smax, so its surrogate has a modest fmax.
// `same_topic` terms are drawn from one designed topic so they co-occur
// in its relevant documents; the others come from random topics and stay
// weakly correlated.
struct ExampleTerm {
  const char* name;
  double idf;
  bool high_fmax;
  bool same_topic;
};
constexpr ExampleTerm kOriginal[] = {
    {"stockmarket", 12.01, false, false}, {"drastic", 7.09, false, false},
    {"american", 2.34, true, true},       {"increas", 1.99, true, true},
    {"price", 1.92, true, true},
};
constexpr ExampleTerm kAdded = {"invest", 2.36, true, true};

// Picks a term with idf near `target` from `candidates` (terms of the
// designed topics, which co-occur in relevant documents the way the
// paper's real query terms do). Among the near-idf candidates, prefers
// the highest or lowest fmax as requested.
TermId ClaimTerm(const index::Lexicon& lexicon,
                 const std::vector<TermId>& candidates,
                 const ExampleTerm& spec, std::vector<bool>* used) {
  TermId best = candidates.front();
  double best_score = 1e18;
  for (TermId t : candidates) {
    if ((*used)[t]) continue;
    const index::TermInfo& info = lexicon.info(t);
    double dist = std::abs(info.idf - spec.idf);
    if (dist > 0.45) continue;
    // Idf proximity dominates loosely; fmax preference breaks the rest.
    double fmax_score = spec.high_fmax
                            ? -static_cast<double>(info.fmax)
                            : static_cast<double>(info.fmax);
    double score = dist * 2.0 + fmax_score * 0.1;
    if (score < best_score) {
      best = t;
      best_score = score;
    }
  }
  if (best_score == 1e18) {
    // No candidate inside the window: fall back to nearest idf.
    double best_dist = 1e18;
    for (TermId t : candidates) {
      if ((*used)[t]) continue;
      double dist = std::abs(lexicon.info(t).idf - spec.idf);
      if (dist < best_dist) {
        best = t;
        best_dist = dist;
      }
    }
  }
  (*used)[best] = true;
  return best;
}

void PrintTrace(const char* title, const core::EvalResult& result,
                const std::vector<std::pair<TermId, std::string>>& names) {
  std::printf("\n%s\n", title);
  AsciiTable table({"Term", "idft", "Pages", "Smax", "fins", "fadd",
                    "Proc.", "Read"});
  for (const core::TermTrace& t : result.trace) {
    std::string name;
    for (const auto& [term, alias] : names) {
      if (term == t.term) name = alias;
    }
    table.AddRow({
        name,
        StrFormat("%.2f", t.idf),
        StrFormat("%u", t.total_pages),
        StrFormat("%.1f", t.smax_before),
        StrFormat("%d", static_cast<int>(t.f_ins)),
        StrFormat("%d", static_cast<int>(t.f_add)),
        StrFormat("%u", t.pages_processed),
        StrFormat("%u", t.pages_read),
    });
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("total disk reads for the refined query: %llu\n",
              static_cast<unsigned long long>(result.disk_reads));
}

}  // namespace

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();
  const index::Lexicon& lexicon = index.lexicon();

  bench::PrintHeader(
      "Tables 1-2 - the Section 3.2.1 refinement example (DF vs BAF)",
      "DF reads 37 pages of the added term 'invest'; BAF pushes it back "
      "and reads only 20; every original term hits buffers (0 reads)");

  // Claim example terms by idf from the topics' queries (topic terms
  // co-occur in relevant documents, like the paper's real query terms
  // do), mirroring the paper's idf values. The fmax preference picks
  // strongly-boosted common terms (so Smax grows while they are
  // processed, as in the paper's 288 -> 591 trajectory) and a weakly-
  // boosted "drastic" (so the starting Smax is moderate).
  std::vector<TermId> correlated;  // QUERY4's topic vocabulary.
  for (const core::QueryTerm& qt : corpus.topics()[3].query.terms()) {
    correlated.push_back(qt.term);
  }
  // Background pool: terms outside every topic vocabulary, i.e. with no
  // relevance boosts at all — their fmax is the natural within-document
  // maximum, like the paper's "drastic" (Smax 288.5 after processing it).
  std::vector<bool> in_topic(lexicon.size(), false);
  for (const corpus::Topic& topic : corpus.topics()) {
    for (const core::QueryTerm& qt : topic.query.terms()) {
      in_topic[qt.term] = true;
    }
  }
  std::vector<TermId> background;
  for (TermId t = 0; t < lexicon.size(); ++t) {
    if (!in_topic[t]) background.push_back(t);
  }
  std::vector<bool> used(lexicon.size(), false);
  std::vector<std::pair<TermId, std::string>> names;
  core::Query original;
  for (const ExampleTerm& et : kOriginal) {
    TermId t = ClaimTerm(lexicon, et.same_topic ? correlated : background,
                         et, &used);
    names.emplace_back(t, et.name);
    // The topical common terms carry query frequency 2 (refined queries
    // repeat their central terms, e.g. via relevance feedback); their
    // accumulation is what lifts Smax mid-query, as in the paper's run.
    original.AddTerm(t, et.same_topic ? 2 : 1);
  }
  TermId invest = ClaimTerm(lexicon, correlated, kAdded, &used);
  names.emplace_back(invest, kAdded.name);
  core::Query refined = original;
  refined.AddTerm(invest, 1);

  // The example uses higher tuning constants so thresholds rise quickly
  // on a six-term query (Section 3.2.1, footnote 4; the paper picked
  // 0.2 / 0.02 for its collection — our calibrated collection needs a
  // slightly higher c_add for the same threshold trajectory).
  core::EvalOptions options;
  options.c_ins = 0.2;
  options.c_add = 0.03;

  uint64_t pool_pages = ir::TotalQueryPages(index, refined) + 8;
  for (bool buffer_aware : {false, true}) {
    options.buffer_aware = buffer_aware;
    core::FilteringEvaluator evaluator(&index, options);
    buffer::BufferManager pool(
        &index.disk(), pool_pages,
        buffer::MakePolicy(buffer::PolicyKind::kLru));
    auto warm = evaluator.Evaluate(original, &pool);
    if (!warm.ok()) {
      std::fprintf(stderr, "warm-up failed\n");
      return 1;
    }
    auto run = evaluator.Evaluate(refined, &pool);
    if (!run.ok()) {
      std::fprintf(stderr, "refined run failed\n");
      return 1;
    }
    PrintTrace(buffer_aware
                   ? "Table 2 - refined query under BAF (term pushed back)"
                   : "Table 1 - refined query under DF (idf order)",
               run.value(), names);
  }

  std::printf(
      "\n(paper, Table 1: invest processed 3rd, 37 pages read; Table 2: "
      "invest processed last, 20 pages read; all other terms buffered)\n");
  return 0;
}
