// Ablation 1: the c_ins / c_add tuning space (Persin's knobs, Section
// 3.1). Sweeps threshold constants over the first 20 topics and reports
// read savings, candidate-set size and effectiveness loss vs the safe
// baseline — reproducing the trade-off that motivates the paper's use of
// (0.07, 0.002).
//
// Ablation 2: conversion-table accuracy (Section 3.2.2). BAF's disk-read
// estimates rest on the fadd -> pages table; this measures how often the
// table predicts the exact page count DF ends up processing.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "metrics/effectiveness.h"
#include "metrics/run_stats.h"
#include "util/str.h"

using namespace irbuf;

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();
  const size_t kTopics = std::min<size_t>(20, corpus.topics().size());

  bench::PrintHeader(
      "Ablation - filtering-threshold tuning (c_ins, c_add)",
      "higher c_add saves more reads, higher c_ins shrinks the candidate "
      "set; Persin's (0.07, 0.002) keeps effectiveness essentially "
      "unchanged (Section 3.1)");

  struct Setting {
    double c_ins;
    double c_add;
    const char* note;
  };
  const Setting settings[] = {
      {0.0, 0.0, "safe baseline"},
      {0.01, 0.0005, ""},
      {0.07, 0.002, "paper [Per94]"},
      {0.2, 0.02, "example (3.2.1)"},
      {0.5, 0.05, ""},
      {1.0, 0.1, "aggressive"},
  };

  // Reference answers from the safe baseline.
  std::vector<std::vector<core::ScoredDoc>> gold(kTopics);
  std::vector<uint64_t> gold_reads(kTopics), gold_accs(kTopics);
  for (size_t ti = 0; ti < kTopics; ++ti) {
    core::EvalOptions full;
    full.c_ins = 0.0;
    full.c_add = 0.0;
    auto r = ir::RunColdQuery(index, corpus.topics()[ti].query, full);
    if (!r.ok()) return 1;
    gold[ti] = r.value().top_docs;
    gold_reads[ti] = r.value().disk_reads;
    gold_accs[ti] = r.value().accumulators;
  }

  AsciiTable table({"c_ins", "c_add", "read savings", "acc reduction",
                    "mean AP", "top-20 overlap", "note"});
  for (const Setting& s : settings) {
    double savings_sum = 0.0, acc_ratio_sum = 0.0, ap_sum = 0.0;
    double overlap_sum = 0.0;
    for (size_t ti = 0; ti < kTopics; ++ti) {
      core::EvalOptions options;
      options.c_ins = s.c_ins;
      options.c_add = s.c_add;
      auto r = ir::RunColdQuery(index, corpus.topics()[ti].query, options);
      if (!r.ok()) return 1;
      savings_sum += bench::SavingsVs(r.value().disk_reads,
                                      gold_reads[ti]);
      acc_ratio_sum += static_cast<double>(gold_accs[ti]) /
                       static_cast<double>(
                           std::max<uint64_t>(1, r.value().accumulators));
      ap_sum += metrics::AveragePrecision(
          r.value().top_docs, corpus.topics()[ti].relevant_docs);
      size_t overlap = 0;
      for (const core::ScoredDoc& a : r.value().top_docs) {
        for (const core::ScoredDoc& b : gold[ti]) {
          if (a.doc == b.doc) {
            ++overlap;
            break;
          }
        }
      }
      overlap_sum += gold[ti].empty()
                         ? 1.0
                         : static_cast<double>(overlap) / gold[ti].size();
    }
    double n = static_cast<double>(kTopics);
    table.AddRow({
        StrFormat("%.3f", s.c_ins),
        StrFormat("%.4f", s.c_add),
        bench::Percent(savings_sum / n),
        StrFormat("%.1fx", acc_ratio_sum / n),
        StrFormat("%.4f", ap_sum / n),
        bench::Percent(overlap_sum / n),
        s.note,
    });
  }
  std::printf("%s\n", table.ToString().c_str());

  // --- Conversion-table accuracy. ---
  bench::PrintHeader(
      "Ablation - conversion-table accuracy (BAF's p_t estimate)",
      "the table encodes DF's exact stopping rule for thresholds <= 10, "
      "so estimates should match actual pages processed almost always");
  uint64_t terms_total = 0, exact = 0;
  double abs_err_sum = 0.0;
  for (size_t ti = 0; ti < kTopics; ++ti) {
    core::EvalOptions tuned;  // Trace on by default.
    auto r = ir::RunColdQuery(index, corpus.topics()[ti].query, tuned);
    if (!r.ok()) return 1;
    for (const core::TermTrace& t : r.value().trace) {
      const index::TermInfo& info = index.lexicon().info(t.term);
      uint32_t predicted = index.conversion_table().PagesToProcess(
          t.term, t.f_add, info.pages, info.fmax);
      ++terms_total;
      if (predicted == t.pages_processed) ++exact;
      abs_err_sum += std::abs(static_cast<double>(predicted) -
                              static_cast<double>(t.pages_processed));
    }
  }
  std::printf("term evaluations checked : %llu\n",
              static_cast<unsigned long long>(terms_total));
  std::printf("exact page predictions   : %.1f%%\n",
              100.0 * static_cast<double>(exact) /
                  static_cast<double>(terms_total));
  std::printf("mean |error| (pages)     : %.3f\n",
              abs_err_sum / static_cast<double>(terms_total));
  return 0;
}
