// Reproduces Figure 3 ("Disk savings of DF as a function of total length
// of inverted lists of terms in queries") over all 100 topics, plus the
// Section 5.1.1 aggregate claims: ~2/3 average read savings, ~50x fewer
// accumulators, and the footnote-13 with-stop-words configuration
// (~90% read savings, >98% accumulator savings).

#include <cstdio>

#include "bench_util.h"
#include "metrics/run_stats.h"
#include "util/str.h"

using namespace irbuf;

namespace {

struct Aggregate {
  metrics::Summary read_savings;
  double mean_acc_ratio = 0.0;
};

Aggregate RunAllTopics(const corpus::SyntheticCorpus& corpus,
                       bool print_scatter) {
  const index::InvertedIndex& index = corpus.index();
  std::vector<double> savings;
  double acc_ratio_sum = 0.0;
  size_t acc_count = 0;

  if (print_scatter) {
    std::printf("%-28s %8s %8s %8s %9s\n", "topic", "pages", "full",
                "df", "savings");
  }
  for (const corpus::Topic& topic : corpus.topics()) {
    core::EvalOptions full;
    full.c_ins = 0.0;
    full.c_add = 0.0;
    auto rfull = ir::RunColdQuery(index, topic.query, full);
    core::EvalOptions tuned;
    auto rdf = ir::RunColdQuery(index, topic.query, tuned);
    if (!rfull.ok() || !rdf.ok()) continue;

    double s = bench::SavingsVs(rdf.value().disk_reads,
                                rfull.value().disk_reads);
    savings.push_back(s);
    if (rdf.value().accumulators > 0) {
      acc_ratio_sum += static_cast<double>(rfull.value().accumulators) /
                       static_cast<double>(rdf.value().accumulators);
      ++acc_count;
    }
    if (print_scatter) {
      std::printf("%-28s %8llu %8llu %8llu %9s\n", topic.title.c_str(),
                  static_cast<unsigned long long>(
                      ir::TotalQueryPages(index, topic.query)),
                  static_cast<unsigned long long>(rfull.value().disk_reads),
                  static_cast<unsigned long long>(rdf.value().disk_reads),
                  bench::Percent(s).c_str());
    }
  }

  Aggregate agg;
  agg.read_savings = metrics::Summarize(savings);
  agg.mean_acc_ratio =
      acc_count > 0 ? acc_ratio_sum / static_cast<double>(acc_count) : 0.0;
  return agg;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 3 - disk savings of DF vs total inverted-list pages "
      "(100 topics, cold buffers per query)",
      "average savings ~2/3 of disk reads; accumulators reduced ~50x; "
      "savings vary widely per query (designed Q1-Q4 at 77/44/9/83%)");

  Aggregate no_stops = RunAllTopics(bench::GetCorpus(), true);
  std::printf("\nWithout stop-words (the paper's main configuration):\n");
  std::printf("  read savings: min %s  median %s  mean %s  max %s "
              "(paper mean: ~66.7%%)\n",
              bench::Percent(no_stops.read_savings.min).c_str(),
              bench::Percent(no_stops.read_savings.median).c_str(),
              bench::Percent(no_stops.read_savings.mean).c_str(),
              bench::Percent(no_stops.read_savings.max).c_str());
  std::printf("  accumulator reduction: %.1fx (paper: ~50x)\n",
              no_stops.mean_acc_ratio);

  std::printf("\nWith stop-words re-added (Section 5.1.1 footnote 13):\n");
  Aggregate stops = RunAllTopics(bench::GetStopwordCorpus(), false);
  std::printf("  read savings: mean %s (paper: ~90%%)\n",
              bench::Percent(stops.read_savings.mean).c_str());
  std::printf("  accumulator reduction: %.1fx (paper: >50x, '98%% fewer "
              "accumulators')\n",
              stops.mean_acc_ratio);
  return 0;
}
