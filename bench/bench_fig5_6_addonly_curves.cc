// Reproduces Figures 5 and 6: total disk reads of the full ADD-ONLY
// refinement sequences for QUERY1 and QUERY2, as a function of buffer
// size, for all six (algorithm x policy) combinations.
//
// Paper shape: DF/LRU is worst across the range; BAF and/or MRU/RAP cut
// reads sharply; all curves flatten once buffers hold the working set;
// best case BAF/RAP saves >70% vs DF/LRU.

#include <cstdio>

#include "bench_util.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

namespace {

void RunQuery(const corpus::SyntheticCorpus& corpus, int topic_index,
              const char* figure, const char* alias,
              bench::TelemetryFile* telemetry) {
  const index::InvertedIndex& index = corpus.index();
  const corpus::Topic& topic = corpus.topics()[topic_index];

  auto sequence = workload::BuildRefinementSequence(
      alias, topic.query, index, workload::RefinementKind::kAddOnly);
  if (!sequence.ok()) {
    std::fprintf(stderr, "sequence build failed\n");
    std::exit(1);
  }
  uint64_t working_set = ir::SequenceWorkingSetPages(index,
                                                     sequence.value());
  std::printf("\n%s: ADD-ONLY-%s, working set %llu pages, %zu "
              "refinements\n",
              figure, alias,
              static_cast<unsigned long long>(working_set),
              sequence.value().steps.size());

  auto combos = bench::PaperCombos();
  std::vector<std::string> headers = {"buffers"};
  for (const bench::Combo& combo : combos) headers.push_back(combo.label);
  AsciiTable table(headers);

  double best_savings = 0.0;
  size_t best_size = 0;
  for (size_t pages : bench::BufferSizeAxis(working_set + 8, 14)) {
    std::vector<std::string> row = {StrFormat("%zu", pages)};
    uint64_t df_lru = 0, baf_rap = 0;
    for (const bench::Combo& combo : combos) {
      ir::SequenceRunOptions options = bench::ComboOptions(combo, pages);
      auto result = ir::RunRefinementSequence(
          index, sequence.value(), topic.relevant_docs, options);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed\n");
        std::exit(1);
      }
      uint64_t reads = result.value().total_disk_reads;
      row.push_back(StrFormat("%llu",
                              static_cast<unsigned long long>(reads)));
      if (combo.label == "DF/LRU") df_lru = reads;
      if (combo.label == "BAF/RAP") baf_rap = reads;
      telemetry->Add(bench::MakeRunRecord(
          StrFormat("%s %s %s", figure, alias, combo.label.c_str()),
          options, result.value()));
    }
    // The paper's "best case": the buffer size where the improvement of
    // BAF/RAP over DF/LRU is largest.
    double savings = bench::SavingsVs(baf_rap, df_lru);
    if (savings > best_savings) {
      best_savings = savings;
      best_size = pages;
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("best-case BAF/RAP vs DF/LRU (at %zu buffers): %s savings "
              "(paper: >70%% for both sequences)\n",
              best_size, bench::Percent(best_savings).c_str());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figures 5-6 - total disk reads vs buffer size, ADD-ONLY workload",
      "DF/LRU worst across buffer sizes; BAF and better policies save up "
      "to >70%; curves flatten at the working-set size");
  bench::TelemetryFile telemetry("bench_fig5_6_addonly_curves");
  RunQuery(bench::GetCorpus(), 0, "Figure 5", "QUERY1", &telemetry);
  RunQuery(bench::GetCorpus(), 1, "Figure 6", "QUERY2", &telemetry);
  return telemetry.Close() ? 0 : 1;
}
