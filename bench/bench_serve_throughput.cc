// Closed-loop load benchmark for the irbuf::serve subsystem: N users,
// each looping over their topic's refinement queries with one
// outstanding query at a time, against a QueryServer with a shared
// concurrent buffer pool. Sweeps worker-thread counts and the (DF/BAF x
// LRU/RAP) configuration matrix; reports throughput, latency
// percentiles and buffer hit rate per cell.
//
// The paper's simulator is single-threaded, so device time is simulated
// here too: every buffer miss sleeps `--delay-us` (default 2000 us,
// chosen so miss service time dominates the single-pool serial path
// and the sharded rows' cross-shard miss overlap is visible)
// OUTSIDE all pool locks. Worker threads therefore overlap their
// (simulated) I/O exactly as a multi-threaded server overlaps real
// device reads — which is where the thread-count scaling comes from
// even on a single-core host.
//
// Latency attribution: by default every cell runs with span tracing and
// lock-contention profiling on, so the telemetry carries a per-stage
// p50/p99 decomposition, per-mutex wait histograms and the policy-latch
// wait share — the evidence the sharding decision (ROADMAP) needs.
// --no-spans turns all instrumentation off for A/B runs against the
// uninstrumented baseline (tools/bench/ab_compare.py two-file mode).
//
// Usage: bench_serve_throughput [--users N] [--loops N] [--delay-us N]
//                               [--queue-depth N] [--no-spans]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <map>
#include <memory>

#include "bench_util.h"
#include "fault/backoff.h"
#include "metrics/run_stats.h"
#include "obs/json.h"
#include "obs/span.h"
#include "serve/query_server.h"
#include "shard/index_sharder.h"
#include "shard/sharded_engine.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

namespace {

struct Args {
  size_t users = 8;
  size_t loops = 3;  // Times each user replays their sequence.
  uint32_t delay_us = 2000;
  size_t queue_depth = 0;  // 0 = users (closed loop never rejects).
  bool instrument = true;  // Span tracing + contention profiling.
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> long { return i + 1 < argc ? atol(argv[++i]) : 0; };
    if (std::strcmp(argv[i], "--users") == 0) {
      args.users = static_cast<size_t>(std::max(1L, value()));
    } else if (std::strcmp(argv[i], "--loops") == 0) {
      args.loops = static_cast<size_t>(std::max(1L, value()));
    } else if (std::strcmp(argv[i], "--delay-us") == 0) {
      args.delay_us = static_cast<uint32_t>(std::max(0L, value()));
    } else if (std::strcmp(argv[i], "--queue-depth") == 0) {
      args.queue_depth = static_cast<size_t>(std::max(0L, value()));
    } else if (std::strcmp(argv[i], "--no-spans") == 0) {
      args.instrument = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (args.queue_depth == 0) args.queue_depth = args.users;
  return args;
}

struct Config {
  const char* label;
  buffer::PolicyKind policy;
  bool baf;
  bool shared_context;
  /// Doc-range shards. 1 = the classic single shared pool; > 1 routes
  /// every query through shard::ShardedEngine (per-shard pools with the
  /// same TOTAL page budget, scatter-gather merge).
  size_t shards = 1;
};

struct CellResult {
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;
  uint64_t completed = 0;
  /// Admission rejections (ResourceExhausted) — nonzero only when the
  /// queue saturates, i.e. queue_depth < the closed-loop population.
  uint64_t rejected = 0;
  uint64_t disk_reads = 0;
  /// Async miss pipeline (schema 3): the readahead depth the cell ran
  /// at plus the pool's prefetch counters (summed over shard pools when
  /// sharded). device_reads = demand misses + readahead reads — the
  /// honest device total CheckDiskReadConservation pins at destruction.
  size_t prefetch_depth = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_used = 0;
  uint64_t prefetch_wasted = 0;
  uint64_t coalesced_misses = 0;
  uint64_t device_reads = 0;
  /// Per-shard hit rates (size == shards when sharded, else empty).
  std::vector<double> shard_hit_rates;
  // Attribution (empty / 0 when the cell ran --no-spans):
  std::string attribution_json;  // obs::AppendAttributionJson output
  std::string mutex_json;        // {"serve.queue":{...},"pool.latch":...}
  /// Policy-latch wait as a fraction of total worker wall time
  /// (wait_ns_total / (wall * workers)) — the sharding-decision number.
  double latch_wait_share = 0.0;
};

/// One cell of the sweep: `threads` workers serving the closed-loop
/// user population to completion. `sharded` must be non-null when
/// config.shards > 1 (prebuilt once per shard count, outside the cell).
CellResult RunCell(const index::InvertedIndex& index,
                   const shard::ShardedIndex* sharded,
                   const std::vector<workload::RefinementSequence>& seqs,
                   const Config& config, size_t threads, size_t pool_pages,
                   size_t prefetch_depth, const Args& args) {
  serve::ServerOptions options;
  options.num_threads = threads;
  options.queue_depth = args.queue_depth;
  options.buffer_pages = pool_pages;
  options.policy = config.policy;
  options.eval.buffer_aware = config.baf;
  options.eval.record_trace = false;
  options.shared_context = config.shared_context;
  options.io_delay_us_per_miss = args.delay_us;
  options.prefetch_depth = prefetch_depth;
  obs::SpanRecorder recorder;
  if (args.instrument) {
    options.span_recorder = &recorder;
    options.profile_contention = true;
  }
  // Route the cell's queries through the scatter-gather engine when
  // sharded; the server's built-in pool then sits idle.
  std::unique_ptr<shard::ShardedEngine> engine;
  if (config.shards > 1) {
    shard::ShardedEngineOptions engine_options;
    engine_options.eval = options.eval;
    engine_options.eval.span_recorder = options.span_recorder;
    engine_options.pool.total_pages = pool_pages;  // Same TOTAL budget.
    engine_options.pool.policy = config.policy;
    engine_options.pool.io_delay_us_per_miss = args.delay_us;
    engine_options.pool.prefetch_depth = prefetch_depth;
    engine_options.pool.profile_contention = args.instrument;
    engine_options.lanes_per_shard = threads;
    engine_options.shared_context = config.shared_context;
    engine = std::make_unique<shard::ShardedEngine>(sharded, engine_options);
    options.engine = engine.get();
  }
  serve::QueryServer server(&index, options);
  // Mirror contended waits into kLockWait spans so the attribution's
  // lock_wait row and the mutex-wait tables come from one measurement.
  obs::MutexWaitBinding queue_binding;
  obs::MutexWaitBinding latch_binding;
  obs::MutexWaitBinding stripe_binding;
  std::vector<std::unique_ptr<obs::MutexWaitBinding>> shard_bindings;
  if (args.instrument) {
    queue_binding.Bind(server.queue_wait_stats(), nullptr, &recorder);
    if (engine != nullptr) {
      for (size_t s = 0; s < engine->num_shards(); ++s) {
        auto latch = std::make_unique<obs::MutexWaitBinding>();
        latch->Bind(engine->mutable_pool()->shard(s)->latch_wait_stats(),
                    nullptr, &recorder);
        shard_bindings.push_back(std::move(latch));
        auto stripe = std::make_unique<obs::MutexWaitBinding>();
        stripe->Bind(engine->mutable_pool()->shard(s)->stripe_wait_stats(),
                     nullptr, &recorder);
        shard_bindings.push_back(std::move(stripe));
      }
    } else {
      latch_binding.Bind(server.mutable_pool()->latch_wait_stats(), nullptr,
                         &recorder);
      stripe_binding.Bind(server.mutable_pool()->stripe_wait_stats(), nullptr,
                          &recorder);
    }
  }
  server.Start();

  std::vector<std::vector<double>> latencies(args.users);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (size_t u = 0; u < args.users; ++u) {
    clients.emplace_back([&, u] {
      const workload::RefinementSequence& seq = seqs[u % seqs.size()];
      for (size_t loop = 0; loop < args.loops; ++loop) {
        for (const workload::RefinementStep& step : seq.steps) {
          Result<serve::QueryResponse> r = server.Execute(u, step.query);
          // Saturated admission (queue_depth < the closed-loop
          // population): back off and resubmit. The server counts every
          // rejection, and the cell's telemetry reports the total.
          while (!r.ok() &&
                 r.status().code() == StatusCode::kResourceExhausted) {
            fault::SleepUs(200);
            r = server.Execute(u, step.query);
          }
          if (!r.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         r.status().message().c_str());
            std::exit(1);
          }
          latencies[u].push_back(
              static_cast<double>(r.value().latency.count()));
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.Stop();

  std::vector<double> all;
  for (const auto& per_user : latencies) {
    all.insert(all.end(), per_user.begin(), per_user.end());
  }
  const buffer::BufferStats pool = server.PoolStatsSnapshot();

  CellResult cell;
  cell.wall_seconds = wall;
  cell.completed = server.StatsSnapshot().completed;
  cell.rejected = server.StatsSnapshot().rejected;
  cell.throughput_qps =
      wall > 0.0 ? static_cast<double>(cell.completed) / wall : 0.0;
  cell.p50_us = metrics::Percentile(all, 50.0);
  cell.p90_us = metrics::Percentile(all, 90.0);
  cell.p99_us = metrics::Percentile(all, 99.0);
  cell.hit_rate = pool.HitRate();
  cell.disk_reads = pool.misses;
  cell.prefetch_depth = prefetch_depth;
  serve::PoolPrefetchStats prefetch;
  if (engine != nullptr) {
    for (size_t s = 0; s < engine->num_shards(); ++s) {
      const serve::PoolPrefetchStats shard_stats =
          engine->mutable_pool()->shard(s)->PrefetchStatsSnapshot();
      prefetch.issued += shard_stats.issued;
      prefetch.used += shard_stats.used;
      prefetch.wasted += shard_stats.wasted;
      prefetch.coalesced_misses += shard_stats.coalesced_misses;
      prefetch.device_reads += shard_stats.device_reads;
    }
  } else {
    prefetch = server.mutable_pool()->PrefetchStatsSnapshot();
  }
  cell.prefetch_issued = prefetch.issued;
  cell.prefetch_used = prefetch.used;
  cell.prefetch_wasted = prefetch.wasted;
  cell.coalesced_misses = prefetch.coalesced_misses;
  cell.device_reads = prefetch.device_reads;
  if (engine != nullptr) {
    for (size_t s = 0; s < engine->num_shards(); ++s) {
      cell.shard_hit_rates.push_back(
          engine->mutable_pool()->shard(s)->StatsSnapshot().HitRate());
    }
  }

  if (args.instrument) {
    const obs::SpanAttribution attr =
        obs::ComputeAttribution(recorder.Snapshot());
    obs::JsonWriter aw;
    obs::AppendAttributionJson(attr, aw);
    cell.attribution_json = std::move(aw).Take();

    obs::JsonWriter mw;
    mw.BeginObject();
    mw.Key("serve.queue");
    obs::AppendMutexWaitJson(*server.queue_wait_stats(), mw);
    uint64_t latch_wait_ns = 0;
    if (engine != nullptr) {
      for (size_t s = 0; s < engine->num_shards(); ++s) {
        serve::ConcurrentBufferPool* shard_pool =
            engine->mutable_pool()->shard(s);
        mw.Key(StrFormat("shard%zu.latch", s));
        obs::AppendMutexWaitJson(*shard_pool->latch_wait_stats(), mw);
        mw.Key(StrFormat("shard%zu.stripe", s));
        obs::AppendMutexWaitJson(*shard_pool->stripe_wait_stats(), mw);
        latch_wait_ns += shard_pool->latch_wait_stats()->wait_ns_total();
      }
    } else {
      serve::ConcurrentBufferPool* pool_ptr = server.mutable_pool();
      mw.Key("pool.latch");
      obs::AppendMutexWaitJson(*pool_ptr->latch_wait_stats(), mw);
      mw.Key("pool.stripe");
      obs::AppendMutexWaitJson(*pool_ptr->stripe_wait_stats(), mw);
      latch_wait_ns = pool_ptr->latch_wait_stats()->wait_ns_total();
    }
    mw.EndObject();
    cell.mutex_json = std::move(mw).Take();

    // Latch wait over the cell's aggregate worker time: with T workers
    // the run had wall * T thread-seconds to spend, and this is the
    // fraction of it spent blocked on policy latches (summed over every
    // shard pool when sharded).
    const double worker_seconds =
        wall * static_cast<double>(std::max<size_t>(1, threads));
    if (worker_seconds > 0.0) {
      cell.latch_wait_share =
          static_cast<double>(latch_wait_ns) / 1e9 / worker_seconds;
    }
  }
  return cell;
}

/// Renders one sweep cell as the schema-3 telemetry object. `label`
/// overrides config.label so the prefetch A/B pair can reuse the
/// matrix emitter under its legacy/ and block/ names.
std::string CellJson(const char* label, const Config& config, size_t threads,
                     const Args& args, const CellResult& cell) {
  obs::JsonWriter w;
  w.BeginObject()
      .Key("label").Str(label)
      .Key("policy").Str(buffer::PolicyKindName(config.policy))
      .Key("buffer_aware").Bool(config.baf)
      .Key("shared_context").Bool(config.shared_context)
      .Key("shards").UInt(config.shards)
      .Key("workers").UInt(threads)
      .Key("users").UInt(args.users)
      .Key("queries").UInt(cell.completed)
      .Key("rejected").UInt(cell.rejected)
      .Key("wall_seconds").Num(cell.wall_seconds)
      .Key("throughput_qps").Num(cell.throughput_qps)
      .Key("latency_us")
      .BeginObject()
      .Key("p50").Num(cell.p50_us)
      .Key("p90").Num(cell.p90_us)
      .Key("p99").Num(cell.p99_us)
      .EndObject()
      .Key("hit_rate").Num(cell.hit_rate)
      .Key("disk_reads").UInt(cell.disk_reads)
      .Key("prefetch_depth").UInt(cell.prefetch_depth)
      .Key("prefetch_issued").UInt(cell.prefetch_issued)
      .Key("prefetch_used").UInt(cell.prefetch_used)
      .Key("prefetch_wasted").UInt(cell.prefetch_wasted)
      .Key("coalesced_misses").UInt(cell.coalesced_misses)
      .Key("device_reads").UInt(cell.device_reads)
      .Key("instrumented").Bool(args.instrument);
  if (!cell.shard_hit_rates.empty()) {
    w.Key("shard_hit_rates").BeginArray();
    for (double rate : cell.shard_hit_rates) w.Num(rate);
    w.EndArray();
  }
  if (args.instrument) {
    w.Key("attribution").Raw(cell.attribution_json);
    w.Key("mutex_waits").Raw(cell.mutex_json);
    w.Key("latch_wait_share").Num(cell.latch_wait_share);
  }
  w.EndObject();
  return std::move(w).Take();
}

/// One overload cell: a doubled closed-loop population against a
/// 2-worker server, every query carrying the same completion deadline.
/// `shed` arms overload control (deadline-aware queued-shed + brownout);
/// off, the server is the FIFO baseline that evaluates every admitted
/// query no matter how stale. Goodput counts only answers that came
/// back within the deadline — the FIFO baseline's late answers complete
/// but don't count, which is exactly the "silent latency" the shedding
/// path converts into typed, visible drops.
struct OverloadCell {
  double wall_seconds = 0.0;
  double goodput_qps = 0.0;
  uint64_t completed = 0;
  uint64_t good = 0;  // Completed within deadline_us of submission.
  uint64_t late = 0;  // Completed, but past the deadline (FIFO's sin).
  uint64_t shed = 0;  // Typed kShedWhileQueued outcomes.
};

OverloadCell RunOverloadCell(
    const index::InvertedIndex& index,
    const std::vector<workload::RefinementSequence>& seqs, bool shed,
    uint64_t deadline_us, size_t threads, size_t users, size_t pool_pages,
    const Args& args) {
  serve::ServerOptions options;
  options.num_threads = threads;
  options.queue_depth = users;  // Admission never the limiter here.
  options.buffer_pages = pool_pages;
  options.io_delay_us_per_miss = args.delay_us;
  options.deadline_us = deadline_us;
  options.overload.enabled = shed;
  serve::QueryServer server(&index, options);
  server.Start();

  std::vector<uint64_t> good(users, 0);
  std::vector<uint64_t> late(users, 0);
  std::vector<uint64_t> shed_count(users, 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (size_t u = 0; u < users; ++u) {
    clients.emplace_back([&, u] {
      const workload::RefinementSequence& seq = seqs[u % seqs.size()];
      for (size_t loop = 0; loop < args.loops; ++loop) {
        for (const workload::RefinementStep& step : seq.steps) {
          Result<serve::QueryResponse> r = server.Execute(u, step.query);
          if (!r.ok()) {
            if (r.status().code() == StatusCode::kShedWhileQueued) {
              ++shed_count[u];
              continue;
            }
            std::fprintf(stderr, "overload cell query failed: %s\n",
                         r.status().message().c_str());
            std::exit(1);
          }
          const uint64_t latency_us =
              static_cast<uint64_t>(r.value().latency.count());
          if (latency_us <= deadline_us) {
            ++good[u];
          } else {
            ++late[u];
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.Stop();

  OverloadCell cell;
  cell.wall_seconds = wall;
  cell.completed = server.StatsSnapshot().completed;
  for (size_t u = 0; u < users; ++u) {
    cell.good += good[u];
    cell.late += late[u];
    cell.shed += shed_count[u];
  }
  cell.goodput_qps =
      wall > 0.0 ? static_cast<double>(cell.good) / wall : 0.0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();

  bench::PrintHeader(
      "Extension - concurrent query serving under closed-loop load",
      "a multi-user server over one shared pool: throughput scales with "
      "workers while buffer-aware evaluation and ranking-aware "
      "replacement keep their single-user savings");

  // Each user refines one of the designed topics; users beyond the
  // topic count share topics, giving the overlapping working sets the
  // shared pool exists for.
  std::vector<workload::RefinementSequence> sequences;
  uint64_t union_ws = 0;
  for (size_t ti = 0; ti < corpus.topics().size(); ++ti) {
    auto seq = workload::BuildRefinementSequence(
        corpus.topics()[ti].title, corpus.topics()[ti].query, index,
        workload::RefinementKind::kAddOnly);
    if (!seq.ok()) {
      std::fprintf(stderr, "sequence build failed\n");
      return 1;
    }
    union_ws += ir::SequenceWorkingSetPages(index, seq.value());
    sequences.push_back(std::move(seq).value());
  }
  const size_t pool_pages = std::max<size_t>(
      16, static_cast<size_t>(0.2 * static_cast<double>(union_ws)));

  std::printf(
      "%zu users x %zu loops, pool %zu pages (20%% of %llu-page union "
      "working set), %u us simulated read latency\n\n",
      args.users, args.loops, pool_pages,
      static_cast<unsigned long long>(union_ws), args.delay_us);

  // Shard counts 1 (the classic single-pool rows) through 8; the
  // sharded rows keep the same TOTAL page budget, split per shard.
  const Config configs[] = {
      {"DF/LRU", buffer::PolicyKind::kLru, false, false, 1},
      {"BAF/LRU", buffer::PolicyKind::kLru, true, false, 1},
      {"DF/RAP", buffer::PolicyKind::kRap, false, false, 1},
      {"BAF/RAP(shared)", buffer::PolicyKind::kRap, true, true, 1},
      {"DF/LRU x2 shards", buffer::PolicyKind::kLru, false, false, 2},
      {"DF/LRU x4 shards", buffer::PolicyKind::kLru, false, false, 4},
      {"DF/LRU x8 shards", buffer::PolicyKind::kLru, false, false, 8},
      {"DF/RAP x2 shards", buffer::PolicyKind::kRap, false, false, 2},
      {"DF/RAP x4 shards", buffer::PolicyKind::kRap, false, false, 4},
      {"DF/RAP x8 shards", buffer::PolicyKind::kRap, false, false, 8},
  };
  const size_t thread_counts[] = {1, 2, 4, 8};

  // Build each distinct shard count once; every cell of that shard
  // count serves from the same partition (fresh pools per cell).
  std::map<size_t, shard::ShardedIndex> sharded_indices;
  for (const Config& config : configs) {
    if (config.shards <= 1 || sharded_indices.count(config.shards) != 0) {
      continue;
    }
    shard::ShardOptions sharding;
    sharding.num_shards = config.shards;
    sharding.page_size = corpus.profile().page_size;
    auto sharded = shard::ShardIndex(index, sharding);
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharding failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }
    sharded_indices.emplace(config.shards, std::move(sharded).value());
  }

  bench::TelemetryFile telemetry("bench_serve_throughput");
  for (const Config& config : configs) {
    std::printf("%s\n", config.label);
    AsciiTable table({"workers", "wall s", "q/s", "p50 ms", "p90 ms",
                      "p99 ms", "hit rate", "disk reads", "latch wait"});
    double qps_1 = 0.0;
    double qps_last = 0.0;
    for (size_t threads : thread_counts) {
      const shard::ShardedIndex* sharded =
          config.shards > 1 ? &sharded_indices.at(config.shards) : nullptr;
      const CellResult cell =
          RunCell(index, sharded, sequences, config, threads, pool_pages,
                  /*prefetch_depth=*/0, args);
      if (threads == 1) qps_1 = cell.throughput_qps;
      qps_last = cell.throughput_qps;
      table.AddRow({StrFormat("%zu", threads),
                    StrFormat("%.3f", cell.wall_seconds),
                    StrFormat("%.1f", cell.throughput_qps),
                    StrFormat("%.2f", cell.p50_us / 1000.0),
                    StrFormat("%.2f", cell.p90_us / 1000.0),
                    StrFormat("%.2f", cell.p99_us / 1000.0),
                    StrFormat("%.3f", cell.hit_rate),
                    StrFormat("%llu",
                              static_cast<unsigned long long>(
                                  cell.disk_reads)),
                    bench::Percent(cell.latch_wait_share)});

      telemetry.AddRaw(CellJson(config.label, config, threads, args, cell));
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("  1 -> 8 workers: %.2fx throughput\n\n",
                qps_1 > 0.0 ? qps_last / qps_1 : 0.0);
  }

  // ---- Overload pair: FIFO baseline vs deadline-aware shedding. ----
  // Calibrate the deadline off an unloaded run (single user, single
  // worker, fresh pool), then hit a 2-worker server with twice the
  // sweep's population: queue dwell alone blows most budgets. The FIFO
  // baseline evaluates every stale query into a late answer (completed
  // but not good); the shedding server drops them typed and spends its
  // workers on queries that can still make their deadline. The gate —
  // ab_compare --min-speedup overload@2w=1.0, report-only in CI — is
  // that shedding's goodput never falls below FIFO's.
  {
    const size_t overload_threads = 2;
    const size_t overload_users = args.users * 2;
    std::vector<double> unloaded;
    {
      serve::ServerOptions calibration;
      calibration.num_threads = 1;
      calibration.buffer_pages = pool_pages;
      calibration.io_delay_us_per_miss = args.delay_us;
      serve::QueryServer server(&index, calibration);
      server.Start();
      for (const workload::RefinementStep& step : sequences[0].steps) {
        auto r = server.Execute(0, step.query);
        if (!r.ok()) {
          std::fprintf(stderr, "calibration query failed\n");
          return 1;
        }
        unloaded.push_back(static_cast<double>(r.value().latency.count()));
      }
      server.Stop();
    }
    const uint64_t deadline_us = static_cast<uint64_t>(
        std::max(1.0, 6.0 * metrics::Percentile(unloaded, 50.0)));

    std::printf("overload: %zu users vs %zu workers, deadline %.1f ms "
                "(6x unloaded p50)\n",
                overload_users, overload_threads,
                static_cast<double>(deadline_us) / 1000.0);
    AsciiTable table({"mode", "wall s", "goodput q/s", "good", "late",
                      "shed", "completed"});
    const struct {
      const char* label;
      bool shed;
    } modes[] = {{"legacy/overload", false}, {"block/overload", true}};
    for (const auto& mode : modes) {
      const OverloadCell cell = RunOverloadCell(
          index, sequences, mode.shed, deadline_us, overload_threads,
          overload_users, pool_pages, args);
      table.AddRow(
          {mode.label, StrFormat("%.3f", cell.wall_seconds),
           StrFormat("%.1f", cell.goodput_qps),
           StrFormat("%llu", static_cast<unsigned long long>(cell.good)),
           StrFormat("%llu", static_cast<unsigned long long>(cell.late)),
           StrFormat("%llu", static_cast<unsigned long long>(cell.shed)),
           StrFormat("%llu",
                     static_cast<unsigned long long>(cell.completed))});
      obs::JsonWriter w;
      w.BeginObject()
          .Key("label").Str(mode.label)
          .Key("workers").UInt(overload_threads)
          .Key("users").UInt(overload_users)
          .Key("deadline_us").UInt(deadline_us)
          .Key("wall_seconds").Num(cell.wall_seconds)
          .Key("throughput_qps").Num(cell.goodput_qps)  // Goodput.
          .Key("good").UInt(cell.good)
          .Key("late").UInt(cell.late)
          .Key("shed").UInt(cell.shed)
          .Key("completed").UInt(cell.completed)
          .Key("instrumented").Bool(false)
          .EndObject();
      telemetry.AddRaw(std::move(w).Take());
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // ---- Prefetch pair: synchronous misses vs the async miss pipeline. --
  // Same binary, same config (DF/RAP, single shared pool, 8 workers at
  // the committed miss delay): depth 0 IS the pre-pipeline synchronous
  // path (no I/O workers spawn, Prefetch() is a no-op), depth 4 arms
  // miss coalescing + plan-driven readahead. Besides the two full cells,
  // four dedicated lower-is-better records carry the gated numbers:
  // p99_us, and disk_reads (demand misses — readahead converts them
  // into prefetch_issued reads off the query's critical path; the full
  // cells report device_reads for the honest device total). CI gate,
  // report-only: ab_compare --min-speedup prefetch_p99@8w=1.0
  // --min-speedup prefetch_reads@8w=1.0.
  {
    const Config prefetch_config = {"prefetch", buffer::PolicyKind::kRap,
                                    false, false, 1};
    const size_t prefetch_threads = 8;
    std::printf("prefetch: DF/RAP, %zu workers, readahead depth 0 vs 4\n",
                prefetch_threads);
    AsciiTable table({"mode", "q/s", "p99 ms", "hit rate", "demand reads",
                      "device reads", "issued", "used", "wasted",
                      "coalesced"});
    const struct {
      const char* label;
      size_t depth;
    } modes[] = {{"legacy/prefetch", 0}, {"block/prefetch", 4}};
    for (const auto& mode : modes) {
      const CellResult cell =
          RunCell(index, nullptr, sequences, prefetch_config,
                  prefetch_threads, pool_pages, mode.depth, args);
      table.AddRow(
          {mode.label, StrFormat("%.1f", cell.throughput_qps),
           StrFormat("%.2f", cell.p99_us / 1000.0),
           StrFormat("%.3f", cell.hit_rate),
           StrFormat("%llu", static_cast<unsigned long long>(cell.disk_reads)),
           StrFormat("%llu",
                     static_cast<unsigned long long>(cell.device_reads)),
           StrFormat("%llu",
                     static_cast<unsigned long long>(cell.prefetch_issued)),
           StrFormat("%llu",
                     static_cast<unsigned long long>(cell.prefetch_used)),
           StrFormat("%llu",
                     static_cast<unsigned long long>(cell.prefetch_wasted)),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 cell.coalesced_misses))});
      telemetry.AddRaw(
          CellJson(mode.label, prefetch_config, prefetch_threads, args, cell));
      obs::JsonWriter p;
      p.BeginObject()
          .Key("label").Str(StrFormat("%s_p99", mode.label))
          .Key("workers").UInt(prefetch_threads)
          .Key("p99_us").Num(cell.p99_us)
          .Key("instrumented").Bool(false)
          .EndObject();
      telemetry.AddRaw(std::move(p).Take());
      obs::JsonWriter d;
      d.BeginObject()
          .Key("label").Str(StrFormat("%s_reads", mode.label))
          .Key("workers").UInt(prefetch_threads)
          .Key("disk_reads").UInt(cell.disk_reads)
          .Key("instrumented").Bool(false)
          .EndObject();
      telemetry.AddRaw(std::move(d).Take());
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  telemetry.Close();
  return 0;
}
