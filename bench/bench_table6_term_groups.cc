// Reproduces Table 6 ("Term groups in ADD-ONLY-QUERY1 sequence"): the
// terms of QUERY1 ranked by average contribution to the cosine similarity
// of the top-20 documents under unoptimized DF, in groups of three.

#include <cstdio>

#include "bench_util.h"
#include "util/str.h"
#include "workload/contribution.h"

using namespace irbuf;

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();

  bench::PrintHeader(
      "Table 6 - term groups of the ADD-ONLY-QUERY1 sequence",
      "36 terms in 12 groups of 3; top term dominates (contribution 5.56 "
      "vs 0.70 for the runner-up); idf/fq columns taken verbatim from the "
      "paper into the generator");

  const corpus::Topic& q1 = corpus.topics()[0];
  auto ranking = workload::RankTermsByContribution(q1.query, index);
  if (!ranking.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 ranking.status().ToString().c_str());
    return 1;
  }

  AsciiTable table(
      {"Group", "Term", "idf", "fq", "Pages", "Contribution"});
  for (size_t i = 0; i < ranking.value().size(); ++i) {
    const workload::RankedTerm& rt = ranking.value()[i];
    const index::TermInfo& info = index.lexicon().info(rt.qt.term);
    table.AddRow({
        i % 3 == 0 ? StrFormat("%zu.", i / 3 + 1) : "",
        info.text,
        StrFormat("%.2f", info.idf),
        StrFormat("%u", rt.qt.fq),
        StrFormat("%u", info.pages),
        StrFormat("%.2f", rt.contribution),
    });
  }
  std::printf("%s\n", table.ToString().c_str());

  const auto& ranked = ranking.value();
  if (ranked.size() >= 2 && ranked[1].contribution > 0.0) {
    std::printf("Dominance ratio (1st/2nd contribution): %.1fx "
                "(paper: 5.56/0.70 = 7.9x)\n",
                ranked[0].contribution / ranked[1].contribution);
  }
  return 0;
}
