// Reproduces Table 7 ("Disk reads for the last refinement"): at the
// buffer size yielding the most improvement, the last refinement of the
// ADD-ONLY sequences shows the headline savings (~90% for QUERY1, ~97%
// for QUERY2, BAF/RAP vs DF/LRU). Also runs the Section 5.2.2 collapsed
// variant: all refinements but the last merged into one large first
// query, where BAF/LRU and BAF/MRU lose most of their advantage but
// BAF/RAP does not.

#include <cstdio>

#include "bench_util.h"
#include "util/str.h"
#include "workload/refinement.h"

using namespace irbuf;

namespace {

// Buffer sizes are in pages and the scaled corpus preserves per-term page
// counts (the page size shrinks with the collection), so the paper's
// buffer sizes apply at every scale.
struct PaperRow {
  const char* alias;
  int buffers;
  // DF/LRU DF/MRU DF/RAP BAF/LRU BAF/MRU BAF/RAP.
  int reads[6];
};
constexpr PaperRow kPaper[] = {
    {"QUERY1", 125, {150, 38, 29, 34, 32, 17}},
    {"QUERY2", 250, {329, 80, 83, 8, 8, 8}},
};

uint64_t LastStepReads(const index::InvertedIndex& index,
                       const workload::RefinementSequence& sequence,
                       const bench::Combo& combo, size_t pages) {
  auto result = ir::RunRefinementSequence(index, sequence, {},
                                          bench::ComboOptions(combo,
                                                              pages));
  if (!result.ok()) {
    std::fprintf(stderr, "run failed\n");
    std::exit(1);
  }
  return result.value().steps.back().disk_reads;
}

}  // namespace

int main() {
  const corpus::SyntheticCorpus& corpus = bench::GetCorpus();
  const index::InvertedIndex& index = corpus.index();

  bench::PrintHeader(
      "Table 7 - disk reads for the last refinement (ADD-ONLY)",
      "QUERY1 @125 buffers: 150/38/29/34/32/17; QUERY2 @250 buffers: "
      "329/80/83/8/8/8 (DF/LRU..BAF/RAP); BAF/RAP saves ~90-97% vs "
      "DF/LRU");

  auto combos = bench::PaperCombos();
  for (int qi = 0; qi < 2; ++qi) {
    const corpus::Topic& topic = corpus.topics()[qi];
    auto sequence = workload::BuildRefinementSequence(
        kPaper[qi].alias, topic.query, index,
        workload::RefinementKind::kAddOnly);
    if (!sequence.ok()) {
      std::fprintf(stderr, "sequence build failed\n");
      return 1;
    }
    size_t pages = static_cast<size_t>(kPaper[qi].buffers);

    std::printf("\nADD-ONLY-%s, %zu buffer pages:\n", kPaper[qi].alias,
                pages);
    AsciiTable table({"Combination", "Last-refinement reads",
                      "(paper)", "Savings vs DF/LRU", "(paper)"});
    uint64_t df_lru = 0;
    std::vector<uint64_t> reads;
    for (const bench::Combo& combo : combos) {
      uint64_t r = LastStepReads(index, sequence.value(), combo, pages);
      reads.push_back(r);
      if (combo.label == "DF/LRU") df_lru = r;
    }
    for (size_t c = 0; c < combos.size(); ++c) {
      table.AddRow({
          combos[c].label,
          StrFormat("%llu", static_cast<unsigned long long>(reads[c])),
          StrFormat("%d", kPaper[qi].reads[c]),
          bench::Percent(bench::SavingsVs(reads[c], df_lru)),
          bench::Percent(bench::SavingsVs(kPaper[qi].reads[c],
                                          kPaper[qi].reads[0])),
      });
    }
    std::printf("%s", table.ToString().c_str());
  }

  // Section 5.2.2: the collapsed ADD-ONLY-QUERY2 sequence.
  {
    const corpus::Topic& topic = corpus.topics()[1];
    auto sequence = workload::BuildRefinementSequence(
        "QUERY2", topic.query, index, workload::RefinementKind::kAddOnly);
    if (!sequence.ok()) return 1;
    auto collapsed = workload::CollapseAllButLast(sequence.value());
    size_t pages = 250;

    std::printf("\nCollapsed ADD-ONLY-QUERY2 (one large first query, then "
                "the last refinement), %zu buffer pages:\n", pages);
    AsciiTable table({"Combination", "Last-refinement reads"});
    for (const bench::Combo& combo : combos) {
      if (!combo.buffer_aware) continue;
      uint64_t r = LastStepReads(index, collapsed, combo, pages);
      table.AddRow({combo.label,
                    StrFormat("%llu",
                              static_cast<unsigned long long>(r))});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("(paper: BAF/LRU and BAF/MRU degrade to ~80 reads; "
                "BAF/RAP still reads only ~8)\n");
  }
  return 0;
}
