// The evaluation-engine seam of QueryServer: the server owns admission,
// sessions, deadlines and metrics; *how* a picked-up query turns into an
// EvalResult is behind this interface. The default engine is the
// server's built-in single-pool path (one ConcurrentBufferPool + one
// FilteringEvaluator); the doc-partitioned scatter-gather engine in
// src/shard/ is the other implementation. The seam points this way —
// serve/ defines the interface, shard/ implements it — because the
// shard engine is built from serve/ parts (per-shard ConcurrentBufferPool
// and SharedQueryContext instances), so the reverse dependency would be
// circular.

#ifndef IRBUF_SERVE_QUERY_ENGINE_H_
#define IRBUF_SERVE_QUERY_ENGINE_H_

#include <cstdint>

#include "buffer/buffer_pool.h"
#include "core/filtering_evaluator.h"
#include "core/query.h"
#include "util/status.h"

namespace irbuf::serve {

/// Evaluates one query end to end on behalf of a QueryServer worker.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Evaluates `query`. `control` carries the per-query deadline (may be
  /// null); `query_id` is the server-unique id the engine should tag any
  /// spans it records with (so cross-thread work is attributed to the
  /// query on the trace timeline). Must be safe to call from multiple
  /// worker threads at once. Shared-context registration, when the
  /// engine supports it, is the engine's own responsibility — the
  /// server does not pre-register external-engine queries.
  virtual Result<core::EvalResult> Evaluate(
      const core::Query& query, const core::EvalControl* control,
      uint32_t query_id) = 0;

  /// Aggregate buffer statistics over every pool the engine owns.
  virtual buffer::BufferStats PoolStats() const = 0;
};

}  // namespace irbuf::serve

#endif  // IRBUF_SERVE_QUERY_ENGINE_H_
