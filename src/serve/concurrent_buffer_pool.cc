#include "serve/concurrent_buffer_pool.h"

#include "buffer/contracts.h"
#include "fault/backoff.h"
#include "util/str.h"

namespace irbuf::serve {

ConcurrentBufferPool::ConcurrentBufferPool(const storage::SimulatedDisk* disk,
                                           ConcurrentPoolOptions options)
    : disk_(disk),
      options_(options),
      policy_(buffer::MakePolicy(options.policy)),
      frames_(options.capacity == 0 ? 1 : options.capacity),
      term_resident_(disk->num_terms()) {
  free_frames_.reserve(frames_.size());
  // Hand out low frame ids first, exactly like BufferManager.
  for (size_t i = frames_.size(); i > 0; --i) {
    free_frames_.push_back(static_cast<buffer::FrameId>(i - 1));
  }
  if (options_.resilience.enabled) {
    resilient_ =
        std::make_unique<fault::ResilientReader>(options_.resilience);
  }
  if (options_.profile_contention) {
    // Attached before any worker can reach the pool, so the mutexes
    // never flip instrumentation modes under concurrent traffic.
    latch_mu_.TrackContention(&latch_waits_);
    for (Stripe& stripe : stripes_) stripe.mu.TrackContention(&stripe_waits_);
  }
  policy_->Attach(this);
}

ConcurrentBufferPool::~ConcurrentBufferPool() {
  // Quiescent-state contracts: every PinnedPage guard must have been
  // released (a live guard would read a destroyed frame), and with no
  // fetch in flight the counters must conserve exactly.
  for (const Frame& f : frames_) {
    IRBUF_DCHECK(f.pins.load(std::memory_order_relaxed) == 0,
                 "pool destroyed with outstanding pins");
  }
  buffer::contracts::CheckStatsConservation(
      fetches_.load(std::memory_order_relaxed),
      hits_.load(std::memory_order_relaxed),
      misses_.load(std::memory_order_relaxed));
}

Result<buffer::PinnedPage> ConcurrentBufferPool::FetchPinned(PageId id) {
  const uint64_t key = id.Pack();
  Stripe& stripe = StripeFor(key);
  buffer::FrameId hit_frame = buffer::kInvalidFrame;
  {
    MutexLock stripe_lock(stripe.mu);
    for (;;) {
      auto it = stripe.pages.find(key);
      if (it != stripe.pages.end()) {
        hit_frame = it->second;
        // Pinning under the stripe mutex excludes the eviction path,
        // which re-checks pins under this same mutex.
        frames_[hit_frame].pins.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (stripe.loading.count(key) == 0) {
        stripe.loading.insert(key);  // We become the loader.
        break;
      }
      // Another thread is reading this page; wait for it to publish (a
      // hit — one disk read serves every concurrent requester) or give
      // up, then re-examine.
      while (stripe.pages.count(key) == 0 && stripe.loading.count(key) != 0) {
        stripe.cv.Wait(stripe.mu);
      }
    }
  }

  if (hit_frame != buffer::kInvalidFrame) {
    fetches_.fetch_add(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.fetches != nullptr) {
      metrics_.fetches->Add(1);
      metrics_.hits->Add(1);
    }
    {
      MutexLock latch(latch_mu_);
      ++fetch_tick_;
      policy_->OnHit(hit_frame);
    }
    return buffer::PinnedPage(this, &frames_[hit_frame].page, hit_frame,
                              /*was_miss=*/false);
  }

  // Loader path: reserve a frame under the latch; read with no lock held.
  buffer::FrameId frame = buffer::kInvalidFrame;
  uint64_t tick = 0;
  {
    MutexLock latch(latch_mu_);
    tick = ++fetch_tick_;
    if (!free_frames_.empty()) {
      frame = free_frames_.back();
      free_frames_.pop_back();
    } else {
      frame = EvictOneLocked();
    }
    if (frame != buffer::kInvalidFrame) {
      // Reserve: the frame is unmapped, so this pin (which becomes the
      // caller's pin on success) is the only thing keeping eviction away.
      frames_[frame].pins.store(1, std::memory_order_relaxed);
    }
  }
  if (frame == buffer::kInvalidFrame) {
    AbandonLoad(key);
    return Status::ResourceExhausted(
        StrFormat("all %zu frames pinned; pool capacity must exceed the "
                  "number of concurrently pinned pages",
                  frames_.size()));
  }

  // As in BufferManager, the disk decodes straight into the frame's
  // page: the frame caches the decoded PostingBlock and recycles its
  // buffers across evictions. The decode (and any allocation it needs
  // on a cold frame) happens here, with no lock held.
  Frame& f = frames_[frame];
  // The injected latency-spike factor of the attempt that decided the
  // read's fate (the last one); scales the simulated device delay.
  double latency_multiplier = 1.0;
  const auto read_once = [&] {
    return disk_->ReadPage(id, &f.page, &latency_multiplier);
  };
  // The kMissRead span covers the whole lock-free miss cost — the read
  // (retries included) plus the simulated device delay — which is what
  // the attribution table should charge a miss with.
  const Status read = [&] {
    obs::ScopedSpan miss_span(options_.span_recorder,
                              obs::SpanStage::kMissRead, id.term);
    Status status = resilient_ != nullptr ? resilient_->Read(id, read_once)
                                          : read_once();
    if (status.ok() && options_.io_delay_us_per_miss > 0) {
      fault::SleepUs(static_cast<uint64_t>(
          static_cast<double>(options_.io_delay_us_per_miss) *
          latency_multiplier));
    }
    return status;
  }();
  if (!read.ok()) {
    {
      MutexLock latch(latch_mu_);
      f.pins.store(0, std::memory_order_relaxed);
      free_frames_.push_back(frame);
    }
    AbandonLoad(key);
    return read;
  }

  // Counted only after the read succeeded, so misses == disk reads.
  fetches_.fetch_add(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.fetches != nullptr) {
    metrics_.fetches->Add(1);
    metrics_.misses->Add(1);
  }

  {
    MutexLock latch(latch_mu_);
    f.meta.page = id;
    f.meta.max_weight = f.page.max_weight;
    f.meta.occupied = true;
    f.insert_tick = tick;
    if (id.term < term_resident_.size()) {
      term_resident_[id.term].fetch_add(1, std::memory_order_relaxed);
    }
    policy_->OnInsert(frame);
    // Publish the mapping only after the policy knows the frame, nested
    // inside the latch (lock order latch -> stripe), so a hitter's
    // OnHit can never reach the policy before our OnInsert.
    {
      MutexLock stripe_lock(stripe.mu);
      stripe.pages.emplace(key, frame);
      stripe.loading.erase(key);
    }
    stripe.cv.NotifyAll();
  }
  return buffer::PinnedPage(this, &f.page, frame, /*was_miss=*/true);
}

buffer::FrameId ConcurrentBufferPool::EvictOneLocked() {
  // A candidate can gain a pin between the probe and its stripe lock.
  // Never wait for a pin to drain while holding the latch (the pinner
  // may itself be blocked on the latch for its OnHit) — pick another
  // frame instead. Retries are bounded; in the degenerate case where
  // every re-check is foiled, the fetch reports ResourceExhausted.
  for (size_t attempt = 0; attempt <= frames_.size(); ++attempt) {
    buffer::FrameId candidate = policy_->ChooseVictim();
    if (candidate >= frames_.size() || !frames_[candidate].meta.occupied ||
        frames_[candidate].pins.load(std::memory_order_acquire) != 0) {
      // The policy's choice is unusable (pinned): fall back to the
      // oldest-inserted unpinned frame, as BufferManager does; exact
      // policy order resumes once the pins drain.
      buffer::FrameId fallback = buffer::kInvalidFrame;
      for (buffer::FrameId i = 0; i < frames_.size(); ++i) {
        if (!frames_[i].meta.occupied ||
            frames_[i].pins.load(std::memory_order_acquire) != 0) {
          continue;
        }
        if (fallback == buffer::kInvalidFrame ||
            frames_[i].insert_tick < frames_[fallback].insert_tick) {
          fallback = i;
        }
      }
      if (fallback == buffer::kInvalidFrame) return buffer::kInvalidFrame;
      candidate = fallback;
    }
    const PageId victim_page = frames_[candidate].meta.page;
    Stripe& vs = StripeFor(victim_page.Pack());
    MutexLock stripe_lock(vs.mu);
    if (frames_[candidate].pins.load(std::memory_order_acquire) != 0) {
      continue;  // Pinned while we took the stripe lock; try again.
    }
    buffer::contracts::CheckVictimEvictable(
        frames_[candidate].meta.occupied,
        frames_[candidate].pins.load(std::memory_order_acquire));
    // OnEvict runs while the victim's metadata is still readable.
    policy_->OnEvict(candidate);
    vs.pages.erase(victim_page.Pack());
    if (victim_page.term < term_resident_.size()) {
      term_resident_[victim_page.term].fetch_sub(1,
                                                 std::memory_order_relaxed);
    }
    frames_[candidate].meta.occupied = false;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.evictions != nullptr) metrics_.evictions->Add(1);
    return candidate;
  }
  return buffer::kInvalidFrame;
}

void ConcurrentBufferPool::AbandonLoad(uint64_t key) {
  Stripe& stripe = StripeFor(key);
  {
    MutexLock stripe_lock(stripe.mu);
    stripe.loading.erase(key);
  }
  stripe.cv.NotifyAll();
}

void ConcurrentBufferPool::Unpin(uint32_t frame) {
  if (frame < frames_.size()) {
    const uint32_t before =
        frames_[frame].pins.fetch_sub(1, std::memory_order_release);
    buffer::contracts::CheckPinRelease(before);
  }
}

uint32_t ConcurrentBufferPool::PinCount(PageId id) const {
  const uint64_t key = id.Pack();
  auto& stripe = const_cast<ConcurrentBufferPool*>(this)->StripeFor(key);
  MutexLock stripe_lock(stripe.mu);
  auto it = stripe.pages.find(key);
  return it == stripe.pages.end()
             ? 0
             : frames_[it->second].pins.load(std::memory_order_relaxed);
}

void ConcurrentBufferPool::SetQueryContext(buffer::QueryContext context) {
  if (external_context_.load(std::memory_order_relaxed)) return;
  PublishContext(
      std::make_shared<const buffer::QueryContext>(std::move(context)));
}

void ConcurrentBufferPool::PublishContext(
    std::shared_ptr<const buffer::QueryContext> context) {
  if (context == nullptr) {
    context = std::make_shared<const buffer::QueryContext>();
  }
  MutexLock latch(latch_mu_);
  context_ = std::move(context);
  policy_->SetQueryContext(context_.get());
}

buffer::BufferStats ConcurrentBufferPool::StatsSnapshot() const {
  buffer::BufferStats s;
  s.fetches = fetches_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

void ConcurrentBufferPool::BindMetrics(obs::MetricsRegistry* registry,
                                       const std::string& prefix) {
  if (resilient_ != nullptr) resilient_->BindMetrics(registry);
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    return;
  }
  metrics_.fetches =
      registry->AddCounter(prefix + ".fetches", "pages requested of the pool");
  metrics_.hits = registry->AddCounter(prefix + ".hits",
                                       "buffer-resident hits");
  metrics_.misses =
      registry->AddCounter(prefix + ".misses", "fetches that went to disk");
  metrics_.evictions = registry->AddCounter(
      prefix + ".evictions", "pages pushed out of the pool");
}

}  // namespace irbuf::serve
