#include "serve/concurrent_buffer_pool.h"

#include <algorithm>

#include "buffer/contracts.h"
#include "fault/backoff.h"
#include "util/monotonic_clock.h"
#include "util/str.h"

namespace irbuf::serve {

ConcurrentBufferPool::ConcurrentBufferPool(const storage::SimulatedDisk* disk,
                                           ConcurrentPoolOptions options)
    : disk_(disk),
      options_(options),
      policy_(buffer::MakePolicy(options.policy)),
      frames_(options.capacity == 0 ? 1 : options.capacity),
      term_resident_(disk->num_terms()) {
  free_frames_.reserve(frames_.size());
  // Hand out low frame ids first, exactly like BufferManager.
  for (size_t i = frames_.size(); i > 0; --i) {
    free_frames_.push_back(static_cast<buffer::FrameId>(i - 1));
  }
  if (options_.resilience.enabled) {
    resilient_ =
        std::make_unique<fault::ResilientReader>(options_.resilience);
  }
  if (options_.profile_contention) {
    // Attached before any worker can reach the pool, so the mutexes
    // never flip instrumentation modes under concurrent traffic.
    latch_mu_.TrackContention(&latch_waits_);
    for (Stripe& stripe : stripes_) stripe.mu.TrackContention(&stripe_waits_);
  }
  policy_->Attach(this);
  if (options_.prefetch_depth > 0) {
    prefetch_queue_cap_ = std::max<size_t>(64, options_.prefetch_depth * 8);
    prefetch_window_cap_ = std::max<size_t>(
        1, std::min(options_.prefetch_depth * 2, frames_.size() / 2));
    // Workers start last: the pool above is fully constructed before
    // any of them can touch it.
    prefetch_workers_.reserve(options_.prefetch_depth);
    for (size_t i = 0; i < options_.prefetch_depth; ++i) {
      prefetch_workers_.emplace_back([this] { PrefetchWorkerLoop(); });
    }
  }
}

ConcurrentBufferPool::~ConcurrentBufferPool() {
  if (!prefetch_workers_.empty()) {
    {
      MutexLock lock(prefetch_mu_);
      prefetch_stop_ = true;
    }
    prefetch_cv_.NotifyAll();
    for (std::thread& worker : prefetch_workers_) worker.join();
  }
  // Quiescent-state contracts: every PinnedPage guard must have been
  // released (a live guard would read a destroyed frame), every
  // in-flight load must have reached a terminal state, and with no
  // fetch in flight the counters must conserve exactly — including the
  // device-read identity that coalescing makes exact.
  for (const Frame& f : frames_) {
    IRBUF_DCHECK(f.pins.load(std::memory_order_relaxed) == 0,
                 "pool destroyed with outstanding pins");
  }
  for (Stripe& stripe : stripes_) {
    MutexLock stripe_lock(stripe.mu);
    IRBUF_DCHECK(stripe.loads.empty(),
                 "pool destroyed with in-flight page loads");
  }
  buffer::contracts::CheckStatsConservation(
      fetches_.load(std::memory_order_relaxed),
      hits_.load(std::memory_order_relaxed),
      misses_.load(std::memory_order_relaxed));
  buffer::contracts::CheckDiskReadConservation(
      misses_.load(std::memory_order_relaxed),
      prefetch_issued_.load(std::memory_order_relaxed),
      device_reads_.load(std::memory_order_relaxed));
}

Result<buffer::PinnedPage> ConcurrentBufferPool::FetchPinned(PageId id) {
  const uint64_t key = id.Pack();
  Stripe& stripe = StripeFor(key);
  buffer::FrameId hit_frame = buffer::kInvalidFrame;
  bool joined_load = false;
  uint64_t wait_start_ns = 0;
  {
    MutexLock stripe_lock(stripe.mu);
    for (;;) {
      auto it = stripe.pages.find(key);
      if (it != stripe.pages.end()) {
        hit_frame = it->second;
        // Pinning under the stripe mutex excludes the eviction path,
        // which re-checks pins under this same mutex.
        frames_[hit_frame].pins.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      auto load_it = stripe.loads.find(key);
      if (load_it == stripe.loads.end()) {
        stripe.loads.emplace(key, PageLoad{});  // We become the loader.
        break;
      }
      // Another thread — a demand loader or a readahead worker — is
      // already reading this page. Join its FSM instead of issuing a
      // duplicate read, and wait for a terminal transition: kResident
      // publishes the mapping (we wake to a hit), kFailed erases the
      // entry (we retry as the loader).
      load_it->second.demand_joined = true;
      if (!joined_load && options_.span_recorder != nullptr) {
        wait_start_ns = MonotonicNowNs();
      }
      joined_load = true;
      while (stripe.pages.count(key) == 0 && stripe.loads.count(key) != 0) {
        stripe.cv.Wait(stripe.mu);
      }
    }
  }
  if (joined_load && options_.span_recorder != nullptr) {
    // Time blocked on someone else's load is async-wait — charged to
    // this query, but it is not miss I/O and must not inflate kMissRead.
    options_.span_recorder->RecordManual(
        obs::SpanStage::kAsyncWait, wait_start_ns, MonotonicNowNs(),
        options_.span_recorder->BufferForThisThread()->current_query,
        id.term);
  }

  if (hit_frame != buffer::kInvalidFrame) {
    fetches_.fetch_add(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.fetches != nullptr) {
      metrics_.fetches->Add(1);
      metrics_.hits->Add(1);
    }
    if (joined_load) {
      // This fetch would have been a duplicate disk read before
      // coalescing; it shared the loader's read instead.
      coalesced_misses_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.coalesced_misses != nullptr) {
        metrics_.coalesced_misses->Add(1);
      }
    }
    {
      MutexLock latch(latch_mu_);
      ++fetch_tick_;
      if (frames_[hit_frame].prefetch_tagged) {
        PromoteLocked(hit_frame);
      } else {
        policy_->OnHit(hit_frame);
      }
    }
    return buffer::PinnedPage(this, &frames_[hit_frame].page, hit_frame,
                              /*was_miss=*/false);
  }

  // Loader path: reserve a frame under the latch; read with no lock held.
  buffer::FrameId frame = buffer::kInvalidFrame;
  uint64_t tick = 0;
  {
    MutexLock latch(latch_mu_);
    tick = ++fetch_tick_;
    if (!free_frames_.empty()) {
      frame = free_frames_.back();
      free_frames_.pop_back();
    } else {
      frame = EvictOneLocked();
      if (frame == buffer::kInvalidFrame) {
        // Every untagged frame is pinned: cannibalize the readahead
        // window rather than failing the fetch.
        frame = ReclaimPrefetchedLocked();
      }
    }
    if (frame != buffer::kInvalidFrame) {
      // Reserve: the frame is unmapped, so this pin (which becomes the
      // caller's pin on success) is the only thing keeping eviction away.
      frames_[frame].pins.store(1, std::memory_order_relaxed);
    }
  }
  if (frame == buffer::kInvalidFrame) {
    AbandonLoad(key);
    return Status::ResourceExhausted(
        StrFormat("all %zu frames pinned; pool capacity must exceed the "
                  "number of concurrently pinned pages",
                  frames_.size()));
  }

  // As in BufferManager, the disk decodes straight into the frame's
  // page: the frame caches the decoded PostingBlock and recycles its
  // buffers across evictions. The read, the simulated device delay and
  // the decode (plus any allocation a cold frame needs) all happen in
  // ExecuteLoad, with no lock held.
  Frame& f = frames_[frame];
  const Status read = ExecuteLoad(id, key, f, /*prefetch=*/false);
  if (!read.ok()) {
    ReleaseFailedLoad(key, frame);
    return read;
  }

  // Counted only after the read succeeded, so misses == demand disk
  // reads, exactly (coalescing leaves no duplicate-read window).
  fetches_.fetch_add(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.fetches != nullptr) {
    metrics_.fetches->Add(1);
    metrics_.misses->Add(1);
  }

  {
    MutexLock latch(latch_mu_);
    f.meta.page = id;
    f.meta.max_weight = f.page.max_weight;
    f.meta.occupied = true;
    f.insert_tick = tick;
    f.prefetch_tagged = false;
    if (id.term < term_resident_.size()) {
      term_resident_[id.term].fetch_add(1, std::memory_order_relaxed);
    }
    policy_->OnInsert(frame);
    // Publish the mapping only after the policy knows the frame, nested
    // inside the latch (lock order latch -> stripe), so a hitter's
    // OnHit can never reach the policy before our OnInsert.
    {
      MutexLock stripe_lock(stripe.mu);
      auto load_it = stripe.loads.find(key);
      if (load_it != stripe.loads.end()) {
        load_it->second.state = PageLoad::State::kResident;
        stripe.loads.erase(load_it);
      }
      stripe.pages.emplace(key, frame);
    }
    stripe.cv.NotifyAll();
  }
  return buffer::PinnedPage(this, &f.page, frame, /*was_miss=*/true);
}

Status ConcurrentBufferPool::ExecuteLoad(PageId id, uint64_t key,
                                         Frame& frame, bool prefetch) {
  const auto read_once = [&]() -> Status {
    // Phase 1: the simulated device transfer. A retrying attempt
    // re-enters kReading here.
    SetLoadState(key, PageLoad::State::kReading);
    storage::SimulatedDisk::PageReadOp op;
    IRBUF_RETURN_NOT_OK(disk_->BeginRead(id, &op));
    if (options_.io_delay_us_per_miss > 0) {
      fault::SleepUs(static_cast<uint64_t>(
          static_cast<double>(options_.io_delay_us_per_miss) *
          op.latency_multiplier));
    }
    // Phase 2: CRC + decode on this thread. While we sit in kDecoding,
    // other loads' phase-1 transfers are outstanding concurrently —
    // page n decodes while page n+1's read is in flight.
    SetLoadState(key, PageLoad::State::kDecoding);
    return disk_->FinishRead(id, op, &frame.page);
  };
  // The span covers the whole lock-free load — the read (retries
  // included), the simulated device delay and the decode — which is
  // what the attribution table should charge a miss (or a readahead
  // slot) with.
  const Status status = [&] {
    obs::ScopedSpan load_span(options_.span_recorder,
                              prefetch ? obs::SpanStage::kPrefetchIssue
                                       : obs::SpanStage::kMissRead,
                              id.term);
    return resilient_ != nullptr ? resilient_->Read(id, read_once)
                                 : read_once();
  }();
  if (status.ok()) {
    device_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void ConcurrentBufferPool::ReleaseFailedLoad(uint64_t key,
                                             buffer::FrameId frame) {
  {
    MutexLock latch(latch_mu_);
    // The frame never left reservation (unmapped, sole pin), so the
    // plain store cannot race a hitter's fetch_add.
    frames_[frame].pins.store(0, std::memory_order_relaxed);
    free_frames_.push_back(frame);
  }
  AbandonLoad(key);
}

buffer::FrameId ConcurrentBufferPool::EvictOneLocked() {
  // A candidate can gain a pin between the probe and its stripe lock.
  // Never wait for a pin to drain while holding the latch (the pinner
  // may itself be blocked on the latch for its OnHit) — pick another
  // frame instead. Retries are bounded; in the degenerate case where
  // every re-check is foiled, the fetch reports ResourceExhausted.
  for (size_t attempt = 0; attempt <= frames_.size(); ++attempt) {
    buffer::FrameId candidate = policy_->ChooseVictim();
    if (candidate >= frames_.size() || !frames_[candidate].meta.occupied ||
        frames_[candidate].prefetch_tagged ||
        frames_[candidate].pins.load(std::memory_order_acquire) != 0) {
      // The policy's choice is unusable (pinned): fall back to the
      // oldest-inserted unpinned frame, as BufferManager does; exact
      // policy order resumes once the pins drain. Prefetch-tagged
      // frames are skipped — the policy never saw them, so they are
      // not policy victims (ReclaimPrefetchedLocked handles them).
      buffer::FrameId fallback = buffer::kInvalidFrame;
      for (buffer::FrameId i = 0; i < frames_.size(); ++i) {
        if (!frames_[i].meta.occupied || frames_[i].prefetch_tagged ||
            frames_[i].pins.load(std::memory_order_acquire) != 0) {
          continue;
        }
        if (fallback == buffer::kInvalidFrame ||
            frames_[i].insert_tick < frames_[fallback].insert_tick) {
          fallback = i;
        }
      }
      if (fallback == buffer::kInvalidFrame) return buffer::kInvalidFrame;
      candidate = fallback;
    }
    const PageId victim_page = frames_[candidate].meta.page;
    Stripe& vs = StripeFor(victim_page.Pack());
    MutexLock stripe_lock(vs.mu);
    if (frames_[candidate].pins.load(std::memory_order_acquire) != 0) {
      continue;  // Pinned while we took the stripe lock; try again.
    }
    buffer::contracts::CheckVictimEvictable(
        frames_[candidate].meta.occupied,
        frames_[candidate].pins.load(std::memory_order_acquire));
    // OnEvict runs while the victim's metadata is still readable.
    policy_->OnEvict(candidate);
    vs.pages.erase(victim_page.Pack());
    if (victim_page.term < term_resident_.size()) {
      term_resident_[victim_page.term].fetch_sub(1,
                                                 std::memory_order_relaxed);
    }
    frames_[candidate].meta.occupied = false;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.evictions != nullptr) metrics_.evictions->Add(1);
    if (eviction_observer_) eviction_observer_(victim_page, true);
    return candidate;
  }
  return buffer::kInvalidFrame;
}

buffer::FrameId ConcurrentBufferPool::ReclaimPrefetchedLocked() {
  // Oldest tagged frame first (FIFO over the window): a reclaimed page
  // was read ahead but never demanded, which is the definition of a
  // wasted prefetch. The policy never knew the frame, so no OnEvict.
  for (size_t i = 0; i < prefetch_window_.size(); ++i) {
    const buffer::FrameId frame = prefetch_window_[i];
    Frame& f = frames_[frame];
    IRBUF_DCHECK(f.prefetch_tagged,
                 "prefetch window holds an untagged frame");
    const PageId victim_page = f.meta.page;
    Stripe& vs = StripeFor(victim_page.Pack());
    MutexLock stripe_lock(vs.mu);
    if (f.pins.load(std::memory_order_acquire) != 0) {
      // A demand fetch pinned it this instant and is about to promote:
      // that prefetch is anything but wasted. Pick the next-oldest.
      continue;
    }
    buffer::contracts::CheckVictimEvictable(
        f.meta.occupied, f.pins.load(std::memory_order_acquire));
    vs.pages.erase(victim_page.Pack());
    if (victim_page.term < term_resident_.size()) {
      term_resident_[victim_page.term].fetch_sub(1,
                                                 std::memory_order_relaxed);
    }
    f.meta.occupied = false;
    f.prefetch_tagged = false;
    prefetch_window_.erase(prefetch_window_.begin() +
                           static_cast<ptrdiff_t>(i));
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.evictions != nullptr) metrics_.evictions->Add(1);
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.prefetch_wasted != nullptr) metrics_.prefetch_wasted->Add(1);
    if (eviction_observer_) eviction_observer_(victim_page, false);
    return frame;
  }
  return buffer::kInvalidFrame;
}

void ConcurrentBufferPool::PromoteLocked(buffer::FrameId frame) {
  Frame& f = frames_[frame];
  f.prefetch_tagged = false;
  f.insert_tick = fetch_tick_;
  for (auto it = prefetch_window_.begin(); it != prefetch_window_.end();
       ++it) {
    if (*it == frame) {
      prefetch_window_.erase(it);
      break;
    }
  }
  // To the replacement policy this IS the insertion: it never saw the
  // readahead publish, so the first demand touch runs OnInsert (not
  // OnHit) and victim choice before this touch was undistorted.
  policy_->OnInsert(frame);
  prefetch_used_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.prefetch_used != nullptr) metrics_.prefetch_used->Add(1);
}

void ConcurrentBufferPool::AbandonLoad(uint64_t key) {
  Stripe& stripe = StripeFor(key);
  {
    MutexLock stripe_lock(stripe.mu);
    stripe.loads.erase(key);
  }
  stripe.cv.NotifyAll();
}

void ConcurrentBufferPool::SetLoadState(uint64_t key,
                                        PageLoad::State state) {
  Stripe& stripe = StripeFor(key);
  MutexLock stripe_lock(stripe.mu);
  auto it = stripe.loads.find(key);
  if (it != stripe.loads.end()) it->second.state = state;
}

void ConcurrentBufferPool::Prefetch(buffer::PageAccessPlan plan) {
  if (options_.prefetch_depth == 0 || plan.empty()) return;
  {
    MutexLock lock(prefetch_mu_);
    for (const PageId& id : plan) {
      if (prefetch_queue_.size() >= prefetch_queue_cap_) break;
      prefetch_queue_.push_back(id.Pack());
    }
  }
  prefetch_cv_.NotifyAll();
}

void ConcurrentBufferPool::PrefetchWorkerLoop() {
  for (;;) {
    uint64_t key = 0;
    {
      MutexLock lock(prefetch_mu_);
      while (!prefetch_stop_ && prefetch_queue_.empty()) {
        prefetch_cv_.Wait(prefetch_mu_);
      }
      if (prefetch_stop_) return;
      key = prefetch_queue_.front();
      prefetch_queue_.pop_front();
    }
    PrefetchOne(PageId{static_cast<TermId>(key >> 32),
                       static_cast<uint32_t>(key & 0xFFFFFFFFull)});
  }
}

void ConcurrentBufferPool::PrefetchOne(PageId id) {
  const uint64_t key = id.Pack();
  Stripe& stripe = StripeFor(key);
  {
    MutexLock stripe_lock(stripe.mu);
    if (stripe.pages.count(key) != 0) return;  // Already resident.
    if (stripe.loads.count(key) != 0) return;  // Already in flight.
    PageLoad load;
    load.prefetch = true;
    stripe.loads.emplace(key, load);
  }
  buffer::FrameId frame = buffer::kInvalidFrame;
  {
    MutexLock latch(latch_mu_);
    if (!free_frames_.empty()) {
      frame = free_frames_.back();
      free_frames_.pop_back();
    } else if (prefetch_window_.size() >= prefetch_window_cap_) {
      // Window full: readahead recycles its own oldest page instead of
      // squeezing demand-resident pages out of the pool.
      frame = ReclaimPrefetchedLocked();
    }
    if (frame == buffer::kInvalidFrame) frame = EvictOneLocked();
    if (frame == buffer::kInvalidFrame) frame = ReclaimPrefetchedLocked();
    if (frame != buffer::kInvalidFrame) {
      frames_[frame].pins.store(1, std::memory_order_relaxed);
    }
  }
  if (frame == buffer::kInvalidFrame) {
    // No frame to spare: drop the hint. The demand fetch reads it later.
    AbandonLoad(key);
    return;
  }
  Frame& f = frames_[frame];
  const Status read = ExecuteLoad(id, key, f, /*prefetch=*/true);
  if (!read.ok()) {
    // A faulted readahead is silent: the frame returns to the free
    // list, the in-flight entry clears (joined waiters retry as
    // loaders), and the demand fetch performs its own resilient read —
    // degrading exactly as it would have without the hint.
    ReleaseFailedLoad(key, frame);
    return;
  }
  prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.prefetch_issued != nullptr) metrics_.prefetch_issued->Add(1);

  {
    MutexLock latch(latch_mu_);
    f.meta.page = id;
    f.meta.max_weight = f.page.max_weight;
    f.meta.occupied = true;
    f.insert_tick = ++fetch_tick_;
    bool joined = false;
    {
      MutexLock stripe_lock(stripe.mu);
      auto load_it = stripe.loads.find(key);
      if (load_it != stripe.loads.end()) {
        joined = load_it->second.demand_joined;
        load_it->second.state = PageLoad::State::kResident;
        stripe.loads.erase(load_it);
      }
      stripe.pages.emplace(key, frame);
    }
    if (joined) {
      // A demand fetch is already waiting on this load: publish
      // promoted — the page was demanded, just like a coalesced miss.
      f.prefetch_tagged = false;
      policy_->OnInsert(frame);
      prefetch_used_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.prefetch_used != nullptr) metrics_.prefetch_used->Add(1);
    } else {
      f.prefetch_tagged = true;
      // The window cap is a hard bound, enforced where the window
      // grows: even with free frames to spare, readahead keeps at most
      // prefetch_window_cap_ undemanded pages and recycles its own
      // oldest (prefetch_wasted) rather than creeping over the pool.
      while (prefetch_window_.size() >= prefetch_window_cap_) {
        const buffer::FrameId reclaimed = ReclaimPrefetchedLocked();
        if (reclaimed == buffer::kInvalidFrame) break;  // All pinned.
        free_frames_.push_back(reclaimed);
      }
      prefetch_window_.push_back(frame);
    }
    if (id.term < term_resident_.size()) {
      term_resident_[id.term].fetch_add(1, std::memory_order_relaxed);
    }
    stripe.cv.NotifyAll();
    // Drop the reservation pin. fetch_sub, not a store: the mapping is
    // already published, so a hitter may have pinned concurrently.
    f.pins.fetch_sub(1, std::memory_order_release);
  }
}

void ConcurrentBufferPool::Unpin(uint32_t frame) {
  if (frame < frames_.size()) {
    const uint32_t before =
        frames_[frame].pins.fetch_sub(1, std::memory_order_release);
    buffer::contracts::CheckPinRelease(before);
  }
}

uint32_t ConcurrentBufferPool::PinCount(PageId id) const {
  const uint64_t key = id.Pack();
  auto& stripe = const_cast<ConcurrentBufferPool*>(this)->StripeFor(key);
  MutexLock stripe_lock(stripe.mu);
  auto it = stripe.pages.find(key);
  return it == stripe.pages.end()
             ? 0
             : frames_[it->second].pins.load(std::memory_order_relaxed);
}

void ConcurrentBufferPool::SetQueryContext(buffer::QueryContext context) {
  if (external_context_.load(std::memory_order_relaxed)) return;
  PublishContext(
      std::make_shared<const buffer::QueryContext>(std::move(context)));
}

void ConcurrentBufferPool::PublishContext(
    std::shared_ptr<const buffer::QueryContext> context) {
  if (context == nullptr) {
    context = std::make_shared<const buffer::QueryContext>();
  }
  MutexLock latch(latch_mu_);
  context_ = std::move(context);
  policy_->SetQueryContext(context_.get());
}

buffer::BufferStats ConcurrentBufferPool::StatsSnapshot() const {
  buffer::BufferStats s;
  s.fetches = fetches_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

PoolPrefetchStats ConcurrentBufferPool::PrefetchStatsSnapshot() const {
  PoolPrefetchStats s;
  s.issued = prefetch_issued_.load(std::memory_order_relaxed);
  s.used = prefetch_used_.load(std::memory_order_relaxed);
  s.wasted = prefetch_wasted_.load(std::memory_order_relaxed);
  s.coalesced_misses = coalesced_misses_.load(std::memory_order_relaxed);
  s.device_reads = device_reads_.load(std::memory_order_relaxed);
  return s;
}

void ConcurrentBufferPool::BindMetrics(obs::MetricsRegistry* registry,
                                       const std::string& prefix) {
  if (resilient_ != nullptr) resilient_->BindMetrics(registry);
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    return;
  }
  metrics_.fetches =
      registry->AddCounter(prefix + ".fetches", "pages requested of the pool");
  metrics_.hits = registry->AddCounter(prefix + ".hits",
                                       "buffer-resident hits");
  metrics_.misses =
      registry->AddCounter(prefix + ".misses", "fetches that went to disk");
  metrics_.evictions = registry->AddCounter(
      prefix + ".evictions", "pages pushed out of the pool");
  metrics_.prefetch_issued = registry->AddCounter(
      prefix + ".prefetch_issued", "readahead reads completed into frames");
  metrics_.prefetch_used = registry->AddCounter(
      prefix + ".prefetch_used", "prefetched pages later demand-touched");
  metrics_.prefetch_wasted = registry->AddCounter(
      prefix + ".prefetch_wasted", "prefetched pages reclaimed untouched");
  metrics_.coalesced_misses = registry->AddCounter(
      prefix + ".coalesced_misses",
      "fetches that joined an in-flight load instead of reading");
}

}  // namespace irbuf::serve
