#include "serve/query_server.h"

#include <algorithm>

#include "core/scorer.h"
#include "fault/backoff.h"
#include "util/str.h"

namespace irbuf::serve {

namespace {

ServerOptions Normalize(ServerOptions options) {
  options.num_threads = std::max<size_t>(1, options.num_threads);
  options.queue_depth = std::max<size_t>(1, options.queue_depth);
  return options;
}

ConcurrentPoolOptions PoolOptionsFor(const ServerOptions& options) {
  ConcurrentPoolOptions pool;
  pool.capacity = options.buffer_pages;
  pool.policy = options.policy;
  pool.io_delay_us_per_miss = options.io_delay_us_per_miss;
  pool.prefetch_depth = options.prefetch_depth;
  pool.resilience = options.resilience;
  pool.span_recorder = options.span_recorder;
  pool.profile_contention = options.profile_contention;
  return pool;
}

core::EvalOptions EvalOptionsFor(const ServerOptions& options) {
  core::EvalOptions eval = options.eval;
  eval.span_recorder = options.span_recorder;
  return eval;
}

// Shared by the service-time tracker and the serve.latency_us export:
// log-spaced sub-ms to multi-second. The top buckets matter for the
// shed decision, not just the export: Percentile() pins the +inf
// bucket to the last finite bound, so if real service times outran the
// top bucket the p50 estimate would saturate there and the
// `remaining < shed_factor * p50` test would underestimate service
// cost exactly in the heavy-overload regime shedding targets. Extends
// to 10s; beyond that p50 is a documented lower bound.
std::vector<double> LatencyBucketsUs() {
  return {100.0,    250.0,    500.0,     1000.0,    2500.0,
          5000.0,   10000.0,  25000.0,   50000.0,   100000.0,
          250000.0, 500000.0, 1000000.0, 2500000.0, 5000000.0,
          10000000.0};
}

}  // namespace

QueryServer::QueryServer(const index::InvertedIndex* index,
                         ServerOptions options)
    : index_(index),
      options_(Normalize(options)),
      pool_(&index->disk(), PoolOptionsFor(options_)),
      evaluator_(index, EvalOptionsFor(options_)),
      service_time_us_(LatencyBucketsUs()) {
  if (options_.shared_context && options_.engine == nullptr) {
    shared_context_.Attach(&pool_);
  }
  if (options_.profile_contention) {
    queue_mu_.TrackContention(&queue_waits_);
  }
  if (options_.span_recorder != nullptr && options_.engine == nullptr) {
    // The read-side spans (CRC verify, block decode) are recorded by
    // the disk itself, which the index hands out const — attach for the
    // server's lifetime, exactly like fault injection. An external
    // engine reads its own (per-shard) disks and attaches spans there.
    index_->disk().SetSpanRecorder(options_.span_recorder);
    attached_disk_spans_ = true;
  }
}

QueryServer::~QueryServer() {
  Stop();
  if (attached_disk_spans_) index_->disk().SetSpanRecorder(nullptr);
}

void QueryServer::Start() {
  MutexLock lock(queue_mu_);
  if (started_ || stopping_) return;
  started_ = true;
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void QueryServer::Stop() {
  // Claim the queue AND the worker handles under the latch, then fail /
  // join outside it: joining under queue_mu_ would deadlock (workers
  // take it to drain), and joining unsynchronized would race a
  // concurrent Stop (two callers iterating workers_ at once).
  std::deque<Task> orphans;
  std::vector<std::thread> workers;
  {
    MutexLock lock(queue_mu_);
    stopping_ = true;
    orphans.swap(queue_);
    workers.swap(workers_);
  }
  queue_cv_.NotifyAll();
  for (Task& task : orphans) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.failed != nullptr) metrics_.failed->Add(1);
    task.promise.set_value(
        Status::FailedPrecondition("server stopped before evaluation"));
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

Result<std::future<Result<QueryResponse>>> QueryServer::Submit(
    uint64_t session, core::Query query) {
  Task task;
  task.session = session;
  task.query = std::move(query);
  task.submitted_ns = MonotonicNowNs();
  task.query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  if (options_.overload.enabled && options_.deadline_us > 0) {
    // Overload control measures the deadline from SUBMISSION: queue
    // dwell spends the same budget evaluation does, which is what makes
    // the shed decision at dequeue meaningful.
    task.deadline_us = fault::MonotonicNowUs() + options_.deadline_us;
  }
  std::future<Result<QueryResponse>> future = task.promise.get_future();
  {
    MutexLock lock(queue_mu_);
    if (stopping_) {
      return Status::FailedPrecondition("server is stopped");
    }
    if (queue_.size() >= options_.queue_depth) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.rejected != nullptr) metrics_.rejected->Add(1);
      return Status::ResourceExhausted(
          StrFormat("admission queue full (%zu queries waiting); retry "
                    "after an answer drains",
                    queue_.size()));
    }
    queue_.push_back(std::move(task));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.submitted != nullptr) metrics_.submitted->Add(1);
  queue_cv_.NotifyOne();
  return future;
}

Result<QueryResponse> QueryServer::Execute(uint64_t session,
                                           core::Query query) {
  Result<std::future<Result<QueryResponse>>> submitted =
      Submit(session, std::move(query));
  if (!submitted.ok()) return submitted.status();
  return submitted.value().get();
}

void QueryServer::WorkerLoop() {
  for (;;) {
    Task task;
    double ewma_us = 0.0;
    {
      MutexLock lock(queue_mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // Stopping and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      if (options_.overload.enabled) {
        const double delay_us = static_cast<double>(
            (MonotonicNowNs() - task.submitted_ns) / 1000);
        const double alpha = options_.overload.ewma_alpha;
        queue_delay_ewma_us_ =
            alpha * delay_us + (1.0 - alpha) * queue_delay_ewma_us_;
        ewma_us = queue_delay_ewma_us_;
      }
    }
    std::string why;
    if (ShouldShed(task, &why)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.shed != nullptr) metrics_.shed->Add(1);
      // Shed queries never touch the latency histogram: the exported
      // percentiles describe served traffic, and a shed is visible in
      // its own counter, never as silent latency.
      task.promise.set_value(Status::ShedWhileQueued(why));
      continue;
    }
    RunTask(std::move(task), ewma_us);
  }
}

bool QueryServer::ShouldShed(const Task& task, std::string* why) const {
  if (!options_.overload.enabled || task.deadline_us == 0) return false;
  const uint64_t now_us = fault::MonotonicNowUs();
  if (now_us >= task.deadline_us) {
    *why = StrFormat("deadline already elapsed %llu us ago while queued",
                     static_cast<unsigned long long>(now_us -
                                                     task.deadline_us));
    return true;
  }
  if (service_time_us_.count() < options_.overload.min_service_samples) {
    return false;  // p50 not yet trustworthy; serve and learn.
  }
  const double remaining_us = static_cast<double>(task.deadline_us - now_us);
  const double p50_us = service_time_us_.Percentile(50.0);
  if (remaining_us < options_.overload.shed_factor * p50_us) {
    *why = StrFormat(
        "remaining budget %.0f us < %.2f x p50 service time %.0f us",
        remaining_us, options_.overload.shed_factor, p50_us);
    return true;
  }
  return false;
}

double QueryServer::QueueDelayEwmaUs() const {
  MutexLock lock(queue_mu_);
  return queue_delay_ewma_us_;
}

void QueryServer::RunTask(Task task, double queue_delay_ewma_us) {
  const uint64_t service_start_ns = MonotonicNowNs();
  obs::SpanRecorder* const spans = options_.span_recorder;
  if (spans != nullptr) {
    // Everything this worker records until the reset below belongs to
    // this query; the queue dwell is recorded manually because its
    // start happened on the submitting client's thread.
    spans->SetCurrentQuery(task.query_id);
    spans->RecordManual(obs::SpanStage::kQueueWait, task.submitted_ns,
                        service_start_ns, task.query_id);
  }
  const bool internal_context =
      options_.shared_context && options_.engine == nullptr;
  uint64_t ticket = 0;
  if (internal_context) {
    // Register this query's weights among the in-flight contexts before
    // the first fetch, so the published merge values its pages from the
    // start; the evaluator's own SetQueryContext call is a no-op in
    // external-context mode. (An external engine registers with its own
    // per-shard contexts inside Evaluate.)
    obs::ScopedSpan snapshot_span(spans, obs::SpanStage::kContextSnapshot);
    ticket = shared_context_.Register(
        core::BuildQueryContext(task.query, index_->lexicon()));
  }
  core::EvalControl control;
  const core::EvalControl* control_ptr = nullptr;
  if (task.deadline_us > 0) {
    // Submission-stamped budget (overload mode): queue dwell already
    // spent part of it.
    control.deadline_us = task.deadline_us;
    control_ptr = &control;
  } else if (options_.deadline_us > 0) {
    control.deadline_us = fault::MonotonicNowUs() + options_.deadline_us;
    control_ptr = &control;
  }
  if (options_.overload.enabled) {
    // Brownout ladder: trade bounded answer quality for latency before
    // overload escalates to shedding. Rung 1 trims tail terms, rung 2
    // additionally caps per-term page work.
    const OverloadOptions& ov = options_.overload;
    if (ov.brownout_term_threshold_us > 0 &&
        queue_delay_ewma_us >=
            static_cast<double>(ov.brownout_term_threshold_us)) {
      control.max_terms = ov.brownout_max_terms;
      control_ptr = &control;
      if (metrics_.brownout_trim_terms != nullptr) {
        metrics_.brownout_trim_terms->Add(1);
      }
    }
    if (ov.brownout_page_threshold_us > 0 &&
        queue_delay_ewma_us >=
            static_cast<double>(ov.brownout_page_threshold_us)) {
      control.max_pages_per_term = ov.brownout_max_pages_per_term;
      control_ptr = &control;
      if (metrics_.brownout_trim_pages != nullptr) {
        metrics_.brownout_trim_pages->Add(1);
      }
    }
  }
  Result<core::EvalResult> eval = [&] {
    obs::ScopedSpan eval_span(spans, obs::SpanStage::kEvaluate);
    if (options_.engine != nullptr) {
      return options_.engine->Evaluate(task.query, control_ptr,
                                       task.query_id);
    }
    return evaluator_.Evaluate(task.query, &pool_, control_ptr);
  }();
  if (internal_context) shared_context_.Unregister(ticket);
  const uint64_t end_ns = MonotonicNowNs();
  if (spans != nullptr) spans->SetCurrentQuery(obs::SpanRecorder::kNoQuery);

  if (!eval.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.failed != nullptr) metrics_.failed->Add(1);
    task.promise.set_value(eval.status());
    return;
  }

  QueryResponse response;
  response.eval = std::move(eval).value();
  response.session = task.session;
  if (response.eval.deadline_hit) {
    response.annotation = StatusCode::kDeadlineExceeded;
    if (metrics_.deadline_exceeded != nullptr) {
      metrics_.deadline_exceeded->Add(1);
    }
  }
  if (response.eval.degraded && metrics_.degraded != nullptr) {
    metrics_.degraded->Add(1);
  }
  response.latency =
      std::chrono::microseconds((end_ns - task.submitted_ns) / 1000);
  response.service_time =
      std::chrono::microseconds((end_ns - service_start_ns) / 1000);
  {
    MutexLock lock(sessions_mu_);
    SessionStats& session_stats = sessions_[task.session];
    ++session_stats.queries;
    session_stats.disk_reads += response.eval.disk_reads;
    session_stats.pages_processed += response.eval.pages_processed;
    response.session_step = session_stats.queries;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.completed != nullptr) metrics_.completed->Add(1);
  if (metrics_.latency_us != nullptr) {
    metrics_.latency_us->Observe(
        static_cast<double>(response.latency.count()));
  }
  // Feed the shed decision's p50 from every completed evaluation (shed
  // queries never reach here, so the estimate tracks served work).
  service_time_us_.Observe(static_cast<double>(response.service_time.count()));
  task.promise.set_value(std::move(response));
}

ServerStats QueryServer::StatsSnapshot() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  return s;
}

SessionStats QueryServer::SessionSnapshot(uint64_t session) const {
  MutexLock lock(sessions_mu_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? SessionStats{} : it->second;
}

size_t QueryServer::QueueDepth() const {
  MutexLock lock(queue_mu_);
  return queue_.size();
}

void QueryServer::BindMetrics(obs::MetricsRegistry* registry) {
  // With an external engine the built-in pool never serves a fetch;
  // binding it would only register always-zero buffer.* instruments
  // (the engine exposes its own, per-shard, BindMetrics).
  if (options_.engine == nullptr) pool_.BindMetrics(registry);
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    return;
  }
  metrics_.submitted =
      registry->AddCounter("serve.submitted", "queries admitted to the queue");
  metrics_.rejected = registry->AddCounter(
      "serve.rejected_at_admission",
      "submissions bounced by admission control (queue full)");
  metrics_.shed = registry->AddCounter(
      "serve.shed_while_queued",
      "admitted queries dropped at dequeue because the remaining "
      "deadline budget could not cover evaluation");
  metrics_.completed =
      registry->AddCounter("serve.completed", "queries answered");
  metrics_.failed =
      registry->AddCounter("serve.failed", "queries that errored or aborted");
  metrics_.deadline_exceeded = registry->AddCounter(
      "serve.deadline_exceeded",
      "queries answered partially because the deadline elapsed");
  metrics_.degraded = registry->AddCounter(
      "serve.degraded",
      "queries answered with pages lost or a deadline hit");
  metrics_.brownout_trim_terms = registry->AddCounter(
      "serve.brownout_trim_terms",
      "queries evaluated with the term budget trimmed (brownout rung 1)");
  metrics_.brownout_trim_pages = registry->AddCounter(
      "serve.brownout_trim_pages",
      "queries evaluated with per-term page work capped (brownout rung 2)");
  metrics_.latency_us = registry->AddHistogram(
      "serve.latency_us", LatencyBucketsUs(),
      "submit-to-answer latency in microseconds (shed queries excluded)");
}

}  // namespace irbuf::serve
