// QueryServer: the concurrent query-serving front end. A fixed pool of
// worker threads evaluates queries from a bounded admission queue over
// one shared ConcurrentBufferPool, with per-session accounting for
// refinement sequences and (optionally) shared-context ranking-aware
// replacement via SharedQueryContext.
//
// Admission control: Submit is non-blocking. When the queue holds
// `queue_depth` waiting queries the submission is REJECTED with
// ResourceExhausted — backpressure the caller can see — instead of
// queueing unboundedly. A closed-loop caller (one outstanding query per
// user) therefore never sees a rejection as long as queue_depth >= the
// number of users.
//
// The single-user simulator is the 1-thread special case: a QueryServer
// with num_threads = 1 evaluates queries in exact submission order over
// a pool that makes the same decisions as BufferManager, so its answers
// (and, with shared_context off, its hit/miss counts) are byte-identical
// to IrSystem's — tests/serve/query_server_test.cc asserts this, and the
// round-robin interleave of ir::RunMultiUserWorkload is reproduced by
// submitting the same interleave to a 1-thread server.

#ifndef IRBUF_SERVE_QUERY_SERVER_H_
#define IRBUF_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/filtering_evaluator.h"
#include "core/query.h"
#include "index/inverted_index.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/concurrent_buffer_pool.h"
#include "serve/query_engine.h"
#include "serve/shared_query_context.h"
#include "util/monotonic_clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace irbuf::serve {

/// Deadline-aware overload control (CoDel-style shedding plus a
/// brownout ladder). Off by default; when enabled, ServerOptions::
/// deadline_us is measured from SUBMISSION instead of worker pickup, so
/// queue dwell spends the same budget evaluation does — which is what
/// makes shedding meaningful: a query whose remaining budget cannot
/// cover the observed median service time is dropped at dequeue with
/// kShedWhileQueued rather than evaluated into a guaranteed-late
/// answer. Before shedding, overload degrades gracefully: a queue-delay
/// EWMA drives a brownout ladder that first trims low-impact tail terms
/// (EvalControl::max_terms), then caps per-term page work
/// (EvalControl::max_pages_per_term) — each rung visible in telemetry —
/// so the server trades bounded answer quality for latency before it
/// trades availability.
struct OverloadOptions {
  bool enabled = false;
  /// Shed a dequeued query when remaining deadline budget <
  /// shed_factor * observed p50 service time.
  double shed_factor = 1.0;
  /// Completed-query samples required before the p50 is trusted (cold
  /// servers never shed on a wild first estimate).
  uint32_t min_service_samples = 8;
  /// Queue-delay EWMA smoothing weight (fraction of the newest sample).
  double ewma_alpha = 0.2;
  /// Brownout rung 1: queue-delay EWMA at or beyond this trims query
  /// terms to brownout_max_terms. 0 disables the rung.
  uint64_t brownout_term_threshold_us = 2000;
  uint32_t brownout_max_terms = 4;
  /// Brownout rung 2: EWMA at or beyond this additionally caps pages
  /// per term to brownout_max_pages_per_term. 0 disables the rung.
  uint64_t brownout_page_threshold_us = 8000;
  uint32_t brownout_max_pages_per_term = 4;
};

/// Configuration of a QueryServer.
struct ServerOptions {
  /// Worker threads evaluating queries.
  size_t num_threads = 4;
  /// Maximum queries waiting for a worker; submissions beyond this are
  /// rejected with ResourceExhausted.
  size_t queue_depth = 64;
  /// Shared buffer pool capacity, in pages.
  size_t buffer_pages = 256;
  buffer::PolicyKind policy = buffer::PolicyKind::kLru;
  /// Evaluator tuning (DF vs BAF, thresholds, answer size).
  core::EvalOptions eval;
  /// Merge the weights of every in-flight query into the replacement
  /// context (Section 3.3; meaningful for ranking-aware policies). Off:
  /// each evaluation installs its own context, last writer wins — the
  /// honest per-query semantics under concurrency.
  bool shared_context = false;
  /// Simulated device latency per buffer miss (see ConcurrentPoolOptions).
  uint32_t io_delay_us_per_miss = 0;
  /// Readahead slots on the shared pool: background I/O workers that
  /// service the evaluators' page-access plans (see
  /// ConcurrentPoolOptions::prefetch_depth). 0 (default) disables
  /// readahead — the pool then behaves bit-identically to a server
  /// without the async pipeline.
  size_t prefetch_depth = 0;
  /// Per-query evaluation deadline in microseconds; 0 = none. A hit
  /// deadline returns the partial ranking built so far, annotated
  /// kDeadlineExceeded, instead of failing the query. Measured from the
  /// moment a worker picks the query up (queue wait excluded) — unless
  /// overload.enabled, which measures it from submission so queue dwell
  /// counts against the budget (see OverloadOptions).
  uint64_t deadline_us = 0;
  /// Deadline-aware load shedding and the brownout ladder.
  OverloadOptions overload;
  /// Retry/backoff + circuit breaker for the shared pool's disk reads
  /// (see ConcurrentPoolOptions::resilience). Disabled by default.
  fault::ResilienceOptions resilience;
  /// Latency-attribution recorder (obs/span.h). When set, the server
  /// wires it through the whole serve path — queue wait, context
  /// snapshot, evaluation (and, via the evaluator/pool/disk, term
  /// loops, page pins, miss reads, CRC verify, block decode,
  /// accumulator passes and the top-k merge) — and attaches it to the
  /// index's disk for the read-side spans (detached again when the
  /// server is destroyed; don't run two span-recording servers over one
  /// index at once). Not owned; must outlive the server. nullptr (the
  /// default) leaves only null-test branches on the hot path.
  obs::SpanRecorder* span_recorder = nullptr;
  /// Measure lock-contention waits on the admission-queue mutex and the
  /// shared pool's policy latch / page-table stripes (see
  /// QueueWaitStats and ConcurrentBufferPool::latch_wait_stats).
  bool profile_contention = false;
  /// External evaluation engine (e.g. shard::ShardedEngine). Not owned;
  /// must outlive the server. When set, workers route every query
  /// through it instead of the built-in single-pool path: `buffer_pages`,
  /// `policy`, `shared_context`, `io_delay_us_per_miss` and `resilience`
  /// above are then the *engine's* concern (configure them on the engine;
  /// the built-in pool sits idle), while admission, sessions,
  /// `deadline_us` and the serve.* metrics keep working unchanged.
  /// PoolStatsSnapshot() reports the engine's aggregate pool stats.
  QueryEngine* engine = nullptr;
};

/// One served answer plus its serving-side measurements.
struct QueryResponse {
  core::EvalResult eval;
  uint64_t session = 0;
  /// 1-based position of this query within its session.
  uint64_t session_step = 0;
  /// Submit-to-completion wall time.
  std::chrono::microseconds latency{0};
  /// Evaluation time only (latency minus queue wait).
  std::chrono::microseconds service_time{0};
  /// kOk for a full answer; kDeadlineExceeded when the per-query
  /// deadline cut evaluation and `eval` holds a partial ranking (its
  /// quality_bound says how partial).
  StatusCode annotation = StatusCode::kOk;
};

/// Cumulative per-session accounting (a session = one user's refinement
/// sequence; buffer contents persist across its steps, which is what the
/// refinement workloads exercise).
struct SessionStats {
  uint64_t queries = 0;
  uint64_t disk_reads = 0;
  uint64_t pages_processed = 0;
};

/// Server-level accounting.
struct ServerStats {
  uint64_t submitted = 0;
  /// Bounced at admission (queue full) with kResourceExhausted.
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Dropped from the queue by overload control with kShedWhileQueued
  /// (admitted, but the deadline budget could not cover evaluation).
  uint64_t shed = 0;
};

/// A concurrent query server over a prebuilt index.
class QueryServer {
 public:
  /// The index must outlive the server.
  QueryServer(const index::InvertedIndex* index, ServerOptions options);

  /// Stops and joins the workers (pending queries fail with
  /// FailedPrecondition).
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Launches the worker threads. Separate from construction so tests
  /// can pre-fill the queue deterministically. Idempotent.
  void Start() IRBUF_EXCLUDES(queue_mu_);

  /// Stops accepting work, fails queries still waiting in the queue with
  /// FailedPrecondition, and joins the workers (queries already being
  /// evaluated complete normally). Idempotent; also called by the
  /// destructor.
  void Stop() IRBUF_EXCLUDES(queue_mu_);

  /// Non-blocking admission. On success the future resolves when a
  /// worker has evaluated the query. Fails with ResourceExhausted when
  /// the admission queue is full and with FailedPrecondition after Stop.
  Result<std::future<Result<QueryResponse>>> Submit(uint64_t session,
                                                    core::Query query)
      IRBUF_EXCLUDES(queue_mu_);

  /// Blocking convenience: Submit + wait. Requires a started server.
  Result<QueryResponse> Execute(uint64_t session, core::Query query);

  /// Point-in-time copies (exact when the server is quiesced).
  ServerStats StatsSnapshot() const;
  SessionStats SessionSnapshot(uint64_t session) const;
  buffer::BufferStats PoolStatsSnapshot() const {
    return options_.engine != nullptr ? options_.engine->PoolStats()
                                      : pool_.StatsSnapshot();
  }

  /// Queries waiting for a worker right now.
  size_t QueueDepth() const IRBUF_EXCLUDES(queue_mu_);

  /// Resolves serve.* metric handles in `registry` (serve.submitted,
  /// serve.rejected_at_admission, serve.shed_while_queued,
  /// serve.completed, serve.failed, brownout-rung counters and the
  /// serve.latency_us histogram, whose JSON export carries p50/p90/p99;
  /// shed queries are excluded from the histogram so the percentiles
  /// reflect served traffic only) and binds the shared pool's buffer.*
  /// instruments. Call before Start; pass nullptr to unbind.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Current queue-delay EWMA in microseconds (0 until overload control
  /// has seen a dequeue). The brownout ladder's input, exposed for
  /// tests and telemetry.
  double QueueDelayEwmaUs() const IRBUF_EXCLUDES(queue_mu_);

  ConcurrentBufferPool* mutable_pool() { return &pool_; }
  const ServerOptions& options() const { return options_; }

  /// Wait accounting for the admission-queue mutex (populated only when
  /// options.profile_contention is on). Non-const so callers can Bind
  /// an obs::MutexWaitBinding or Reset between measurement windows.
  MutexWaitStats* queue_wait_stats() { return &queue_waits_; }

 private:
  struct Task {
    uint64_t session = 0;
    core::Query query;
    std::promise<Result<QueryResponse>> promise;
    /// MonotonicNowNs at submission — the queue-wait span's start and
    /// the latency measurement's zero.
    uint64_t submitted_ns = 0;
    /// Server-unique id tying this query's spans together across the
    /// client (submit) and worker (evaluate) threads.
    uint32_t query_id = 0;
    /// Absolute deadline on the fault::MonotonicNowUs clock, stamped at
    /// submission when overload control is on; 0 otherwise. What the
    /// shed decision and the evaluator's EvalControl both consume.
    uint64_t deadline_us = 0;
  };

  void WorkerLoop() IRBUF_EXCLUDES(queue_mu_);
  /// `queue_delay_ewma_us` is the ladder input snapshotted at this
  /// task's dequeue (0 with overload off).
  void RunTask(Task task, double queue_delay_ewma_us)
      IRBUF_EXCLUDES(sessions_mu_);
  /// Overload shed decision for a just-dequeued task; fills `why` with
  /// the budget arithmetic when shedding.
  bool ShouldShed(const Task& task, std::string* why) const;

  struct MetricHandles {
    obs::Counter* submitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* brownout_trim_terms = nullptr;
    obs::Counter* brownout_trim_pages = nullptr;
    obs::Histogram* latency_us = nullptr;
  };

  const index::InvertedIndex* index_;
  const ServerOptions options_;
  ConcurrentBufferPool pool_;
  SharedQueryContext shared_context_;
  core::FilteringEvaluator evaluator_;

  /// Admission-queue latch. Never held while joining a worker (the
  /// workers take it to drain the queue) or while evaluating.
  mutable Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<Task> queue_ IRBUF_GUARDED_BY(queue_mu_);
  bool stopping_ IRBUF_GUARDED_BY(queue_mu_) = false;
  bool started_ IRBUF_GUARDED_BY(queue_mu_) = false;
  /// Start fills this under queue_mu_; Stop swaps it out under queue_mu_
  /// and joins outside the lock (joining under it would deadlock with
  /// workers draining the queue).
  std::vector<std::thread> workers_ IRBUF_GUARDED_BY(queue_mu_);

  mutable Mutex sessions_mu_;
  std::unordered_map<uint64_t, SessionStats> sessions_
      IRBUF_GUARDED_BY(sessions_mu_);

  /// Queue-delay EWMA (microseconds), updated at every dequeue while
  /// overload control is on. Under queue_mu_ because it is read-modify-
  /// written exactly where the queue is already locked.
  double queue_delay_ewma_us_ IRBUF_GUARDED_BY(queue_mu_) = 0.0;
  /// Completed-query service times (microseconds) for the shed
  /// decision's p50. Log-spaced buckets from sub-ms to multi-second;
  /// Observe/Percentile are lock-free.
  obs::Histogram service_time_us_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint32_t> next_query_id_{0};
  MetricHandles metrics_;
  /// Contention accounting the constructor attaches to queue_mu_ when
  /// options.profile_contention is set.
  MutexWaitStats queue_waits_{"serve.queue"};
  /// True when the constructor attached options_.span_recorder to the
  /// index's disk (the destructor then detaches it).
  bool attached_disk_spans_ = false;
};

}  // namespace irbuf::serve

#endif  // IRBUF_SERVE_QUERY_SERVER_H_
