#include "serve/shared_query_context.h"

namespace irbuf::serve {

void SharedQueryContext::Attach(ConcurrentBufferPool* pool) {
  MutexLock lock(mu_);
  if (pool_ != nullptr && pool_ != pool) {
    pool_->SetExternalContextMode(false);
  }
  pool_ = pool;
  if (pool_ != nullptr) {
    pool_->SetExternalContextMode(true);
    PublishLocked();
  }
}

uint64_t SharedQueryContext::Register(buffer::QueryContext weights) {
  MutexLock lock(mu_);
  const uint64_t ticket = next_ticket_++;
  active_.emplace(ticket, std::move(weights));
  PublishLocked();
  return ticket;
}

void SharedQueryContext::Unregister(uint64_t ticket) {
  MutexLock lock(mu_);
  if (active_.erase(ticket) == 0) return;
  PublishLocked();
}

size_t SharedQueryContext::InFlight() const {
  MutexLock lock(mu_);
  return active_.size();
}

void SharedQueryContext::PublishLocked() {
  auto merged = std::make_shared<buffer::QueryContext>();
  for (const auto& [ticket, weights] : active_) {
    merged->MergeMax(weights);
  }
  std::shared_ptr<const buffer::QueryContext> snapshot = std::move(merged);
  snapshot_.store(snapshot, std::memory_order_release);
  if (pool_ != nullptr) pool_->PublishContext(std::move(snapshot));
}

}  // namespace irbuf::serve
