// The thread-safe serving counterpart of buffer::BufferManager: a fixed
// pool of page frames shared by every worker of a QueryServer, accessed
// exclusively through the pin/unpin protocol of buffer::BufferPool.
//
// Locking design (lock order: latch -> stripe; never the reverse while
// acquiring):
//
//  * The page table is striped: each stripe owns a mutex, the resident
//    page -> frame map of its hash slice, the set of pages currently
//    being loaded, and a condition variable that loading waiters block
//    on. Fetches of pages in different stripes never contend here.
//  * One pool-wide latch serializes everything the (single-threaded)
//    replacement policy and free list touch: victim choice, frame
//    metadata, OnInsert/OnHit/OnEvict and the published query context.
//  * Disk reads — and the optional simulated device delay — happen with
//    NO lock held: the target frame is reserved with a pin and is
//    unmapped, so no other thread can reach it, and concurrent misses
//    overlap their I/O time.
//  * Per-frame pin counts, per-term residency (b_t) and the pool
//    counters are atomics; recording never takes a lock.
//
// A second fetch of a page mid-load does not issue a second disk read:
// it waits on the stripe's condition variable until the loader publishes
// the frame, then counts as a hit (misses stay equal to disk reads).
//
// Single-threaded determinism: driven by one thread, the pool makes
// exactly the same decisions as BufferManager with the same policy —
// free frames are handed out lowest-id first, the policy sees the same
// OnInsert/OnHit/OnEvict sequence, and the pinned-victim fallback never
// engages (the single caller holds no pin while fetching). The
// differential tests in tests/serve/ assert this equivalence.

#ifndef IRBUF_SERVE_CONCURRENT_BUFFER_POOL_H_
#define IRBUF_SERVE_CONCURRENT_BUFFER_POOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/policy_factory.h"
#include "buffer/replacement_policy.h"
#include "fault/resilient.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/page.h"
#include "storage/simulated_disk.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace irbuf::serve {

/// Configuration of a ConcurrentBufferPool.
struct ConcurrentPoolOptions {
  /// Pool capacity in pages (>= 1). Must exceed the number of pages the
  /// workers can pin at once (the evaluators pin one page each).
  size_t capacity = 256;
  buffer::PolicyKind policy = buffer::PolicyKind::kLru;
  /// Simulated device latency charged per miss, slept with no lock held.
  /// 0 disables. The paper's cost model puts a disk read at ~10.5 ms
  /// (storage::CostModel, PaperEra); scaling that to microseconds keeps
  /// the benches fast while preserving the property that matters for a
  /// closed-loop load: misses of different workers overlap in time.
  /// Under an injected latency spike the delay is multiplied by the
  /// spike factor the disk reports.
  uint32_t io_delay_us_per_miss = 0;
  /// Retry/backoff + circuit breaker in front of miss-path reads.
  /// Disabled by default: reads then call the disk directly.
  fault::ResilienceOptions resilience;
  /// Span recorder for the miss path (a kMissRead span around the disk
  /// read + simulated device delay, recorded on the loading worker's
  /// thread). nullptr = tracing off, leaving one null-test per miss.
  obs::SpanRecorder* span_recorder = nullptr;
  /// Measure lock-contention waits on the pool-wide policy latch and
  /// the page-table stripes (see LatchWaitStats/StripeWaitStats). Off
  /// by default: locking then keeps the uninstrumented fast path.
  bool profile_contention = false;
};

/// A fixed-capacity, thread-safe buffer pool over the simulated disk.
class ConcurrentBufferPool final : public buffer::FrameDirectory,
                                   public buffer::BufferPool {
 public:
  /// The disk must outlive the pool.
  ConcurrentBufferPool(const storage::SimulatedDisk* disk,
                       ConcurrentPoolOptions options);

  /// Checks the quiescent-state contracts (all pins released, stats
  /// conservation) under IRBUF_DCHECK.
  ~ConcurrentBufferPool() override;

  ConcurrentBufferPool(const ConcurrentBufferPool&) = delete;
  ConcurrentBufferPool& operator=(const ConcurrentBufferPool&) = delete;

  // BufferPool:
  Result<buffer::PinnedPage> FetchPinned(PageId id) override
      IRBUF_EXCLUDES(latch_mu_);

  /// b_t, from a relaxed atomic — a racy-but-honest estimate, exactly
  /// what BAF's d_t = max(p_t - b_t, 0) needs under concurrency.
  uint32_t ResidentPages(TermId term) const override {
    return term < term_resident_.size()
               ? term_resident_[term].load(std::memory_order_relaxed)
               : 0;
  }

  /// Standalone mode (no external context publisher): installs `context`
  /// for ranking-aware policies, like BufferManager does — the evaluators
  /// call this at the top of Evaluate. Once SetExternalContextMode(true)
  /// is set (by SharedQueryContext), the call becomes a no-op: the
  /// replacement context is then the merged weights of every in-flight
  /// query, published via PublishContext, and must not be clobbered by
  /// whichever query happens to start last.
  void SetQueryContext(buffer::QueryContext context) override
      IRBUF_EXCLUDES(latch_mu_);

  buffer::BufferStats StatsSnapshot() const override;

  /// Installs a pre-merged replacement context (serving mode). The pool
  /// keeps the shared_ptr alive so the policy's raw pointer stays valid
  /// until the next publish.
  void PublishContext(std::shared_ptr<const buffer::QueryContext> context)
      IRBUF_EXCLUDES(latch_mu_);

  /// See SetQueryContext. Flipped on by SharedQueryContext::Attach.
  void SetExternalContextMode(bool external) {
    external_context_.store(external, std::memory_order_relaxed);
  }

  /// Resolves the buffer.* metric handles in `registry` (same names as
  /// BufferManager::BindMetrics, minus the victim-age histogram). Call
  /// before serving starts; pass nullptr to unbind. `prefix` replaces
  /// the leading "buffer" of every instrument name — the sharded pool
  /// binds its per-shard pools as "shard0.buffer", "shard1.buffer", ...
  /// so shard hit rates are individually observable in one registry.
  void BindMetrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "buffer");

  const char* policy_name() const {
    MutexLock lock(latch_mu_);
    return policy_->name();
  }

  /// Pins currently held on `id`'s frame (0 when not resident). Test
  /// helper; the answer may be stale by the time it returns.
  uint32_t PinCount(PageId id) const;

  /// Null unless options.resilience.enabled constructed one.
  const fault::ResilientReader* resilience() const {
    return resilient_.get();
  }

  /// Wait accounting for the pool-wide policy latch / the page-table
  /// stripes (all 16 stripes share the one stats object — the question
  /// is "how long do fetches wait", not "which stripe"). Populated only
  /// when options.profile_contention is on; non-const so callers can
  /// Bind an obs::MutexWaitBinding or Reset between measurement cells.
  MutexWaitStats* latch_wait_stats() { return &latch_waits_; }
  MutexWaitStats* stripe_wait_stats() { return &stripe_waits_; }

  // FrameDirectory (policy callbacks run under the latch):
  const buffer::FrameMeta& Meta(buffer::FrameId frame) const override {
    return frames_[frame].meta;
  }
  size_t capacity() const override { return frames_.size(); }

 private:
  struct Frame {
    storage::Page page;
    buffer::FrameMeta meta;  // Guarded by latch_mu_.
    uint64_t insert_tick = 0;  // Guarded by latch_mu_.
    /// Outstanding pins; > 0 makes the frame ineligible for eviction.
    /// fetch_sub uses release so a reader's last page access
    /// happens-before the frame's reuse (evictors load with acquire).
    std::atomic<uint32_t> pins{0};
  };

  /// One slice of the page table.
  struct Stripe {
    /// Acquired after latch_mu_ when both are needed (see the
    /// lock-ordering table in DESIGN.md); never held while acquiring
    /// latch_mu_.
    Mutex mu;
    CondVar cv;
    /// Resident pages of this slice: packed PageId -> frame.
    std::unordered_map<uint64_t, buffer::FrameId> pages IRBUF_GUARDED_BY(mu);
    /// Pages a loader is currently reading from disk.
    std::unordered_set<uint64_t> loading IRBUF_GUARDED_BY(mu);
  };

  static constexpr size_t kStripes = 16;

  Stripe& StripeFor(uint64_t key) {
    // Pack() keeps the term in the high bits; mix so consecutive pages
    // of one hot term spread over stripes.
    return stripes_[(key * 0x9E3779B97F4A7C15ull) >> 60];
  }
  const Stripe& StripeFor(uint64_t key) const {
    return const_cast<ConcurrentBufferPool*>(this)->StripeFor(key);
  }

  // BufferPool:
  void Unpin(uint32_t frame) override;

  /// Evicts one unpinned frame and returns it, or kInvalidFrame when
  /// every occupied frame is pinned. Takes the victim's stripe mutex
  /// nested inside the latch (the one legal nesting order).
  buffer::FrameId EvictOneLocked() IRBUF_REQUIRES(latch_mu_);

  /// Erases `key` from its stripe's loading set and wakes waiters (the
  /// load failed or could not get a frame; waiters retry as loaders).
  void AbandonLoad(uint64_t key);

  struct MetricHandles {
    obs::Counter* fetches = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
  };

  const storage::SimulatedDisk* disk_;
  const ConcurrentPoolOptions options_;

  std::array<Stripe, kStripes> stripes_;

  /// Pool-wide latch: policy_, free_frames_, frame metadata, fetch_tick_
  /// and context_. Lock order: latch_mu_ before any stripe mutex.
  mutable Mutex latch_mu_;
  /// The unique_ptr is set once at construction; the policy object's
  /// internal state mutates under the latch, hence PT_GUARDED_BY.
  std::unique_ptr<buffer::ReplacementPolicy> policy_
      IRBUF_PT_GUARDED_BY(latch_mu_);
  std::vector<buffer::FrameId> free_frames_ IRBUF_GUARDED_BY(latch_mu_);
  uint64_t fetch_tick_ IRBUF_GUARDED_BY(latch_mu_) = 0;
  /// The published replacement context; owning pointer keeps the
  /// QueryContext the policy points at alive.
  std::shared_ptr<const buffer::QueryContext> context_
      IRBUF_GUARDED_BY(latch_mu_);

  std::vector<Frame> frames_;
  std::vector<std::atomic<uint32_t>> term_resident_;
  std::atomic<bool> external_context_{false};

  // Counters are incremented pairwise (fetches with exactly one of
  // hits/misses), so fetches == hits + misses holds at quiescence.
  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  MetricHandles metrics_;
  /// Contention accounting the constructor attaches to latch_mu_ and
  /// every stripe mutex when options.profile_contention is set.
  MutexWaitStats latch_waits_{"pool.latch"};
  MutexWaitStats stripe_waits_{"pool.stripe"};
  /// Thread-safe miss-path retry/breaker wrapper; null = plain reads.
  std::unique_ptr<fault::ResilientReader> resilient_;
};

}  // namespace irbuf::serve

#endif  // IRBUF_SERVE_CONCURRENT_BUFFER_POOL_H_
