// The thread-safe serving counterpart of buffer::BufferManager: a fixed
// pool of page frames shared by every worker of a QueryServer, accessed
// exclusively through the pin/unpin protocol of buffer::BufferPool.
//
// Locking design (lock order: latch -> stripe; never the reverse while
// acquiring; prefetch_mu_ is a standalone leaf — never held while
// acquiring any other pool lock):
//
//  * The page table is striped: each stripe owns a mutex, the resident
//    page -> frame map of its hash slice, the in-flight table of pages
//    currently being loaded (PageLoad mini-FSMs), and a condition
//    variable that loading waiters block on. Fetches of pages in
//    different stripes never contend here.
//  * One pool-wide latch serializes everything the (single-threaded)
//    replacement policy and free list touch: victim choice, frame
//    metadata, OnInsert/OnHit/OnEvict, the prefetch-tagged window and
//    the published query context.
//  * Disk reads — and the optional simulated device delay — happen with
//    NO lock held: the target frame is reserved with a pin and is
//    unmapped, so no other thread can reach it, and concurrent misses
//    overlap their I/O time.
//  * Per-frame pin counts, per-term residency (b_t) and the pool
//    counters are atomics; recording never takes a lock.
//
// The async miss pipeline. Every load — demand miss or readahead — is a
// PageLoad mini-FSM in its stripe's in-flight table:
//
//        kRequested ──► kReading ──► kDecoding ──► kResident
//             │             │             │        (published in the
//             └─────────────┴─────────────┴──► kFailed   page table)
//
// kRequested: the load owns a table entry but no I/O has started (it may
// still be waiting for a frame). kReading: the simulated device transfer
// (SimulatedDisk::BeginRead + the configured miss delay) is in flight.
// kDecoding: CRC verification + posting-block decode
// (SimulatedDisk::FinishRead) are running on the loader's thread. The
// terminal states leave the table: kResident publishes the page->frame
// mapping (waiters wake to a hit), kFailed erases the entry with no
// mapping (waiters retry as loaders; a retryable attempt re-enters
// kReading first). Because the table is checked before any read is
// issued, a second fetch — or a readahead — of a page mid-load never
// issues a second disk read: it joins the FSM and waits on the stripe's
// condition variable (the wait is attributed to the kAsyncWait span
// stage), then counts as a coalesced hit. Misses therefore equal demand
// disk reads *exactly*, and misses + prefetch reads equal every read the
// pool ever issued (contracts::CheckDiskReadConservation, checked at
// destruction).
//
// Decode/I/O overlap falls out of the split read: while a demand miss
// (or a readahead worker) sits in kDecoding on its own thread, other
// loads' kReading device transfers are outstanding concurrently — page
// n decodes while page n+1's read is in flight.
//
// Readahead (prefetch_depth > 0). Prefetch(plan) enqueues hinted pages
// onto a bounded queue drained by prefetch_depth background I/O workers.
// A readahead load runs the same FSM and the same resilient read path as
// a demand miss (retry/backoff, breaker accounting, fault injection —
// a faulted readahead read is silently dropped and the demand fetch
// later degrades exactly as it would have without the hint). On success
// the page is published into an *unpinned, prefetch-tagged* frame: the
// replacement policy is NOT told about the frame (no OnInsert), so
// victim choice is undistorted until a demand fetch touches the page —
// promotion then runs OnInsert, unmarks the tag and counts
// prefetch_used. Tagged frames live in a bounded FIFO window
// (min(2*prefetch_depth, capacity/2)); when the window is full the next
// readahead reclaims the oldest tagged frame (counted prefetch_wasted —
// it was read but never demanded), so readahead can never consume more
// than the window's share of the pool. Demand evictions reclaim tagged
// frames only as a last resort when every untagged frame is pinned.
// With prefetch_depth == 0 the pipeline is inert: no worker threads
// exist, Prefetch returns immediately, no frame is ever tagged, and the
// pool's counters, policy-callback sequence and frame handout order are
// bit-identical to the pre-async pool.
//
// Single-threaded determinism: driven by one thread with prefetch off,
// the pool makes exactly the same decisions as BufferManager with the
// same policy — free frames are handed out lowest-id first, the policy
// sees the same OnInsert/OnHit/OnEvict sequence, and the pinned-victim
// fallback never engages (the single caller holds no pin while
// fetching). The differential tests in tests/serve/ assert this
// equivalence.

#ifndef IRBUF_SERVE_CONCURRENT_BUFFER_POOL_H_
#define IRBUF_SERVE_CONCURRENT_BUFFER_POOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/policy_factory.h"
#include "buffer/replacement_policy.h"
#include "fault/resilient.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/page.h"
#include "storage/simulated_disk.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace irbuf::serve {

/// Configuration of a ConcurrentBufferPool.
struct ConcurrentPoolOptions {
  /// Pool capacity in pages (>= 1). Must exceed the number of pages the
  /// workers can pin at once (the evaluators pin one page each).
  size_t capacity = 256;
  buffer::PolicyKind policy = buffer::PolicyKind::kLru;
  /// Simulated device latency charged per miss, slept with no lock held.
  /// 0 disables. The paper's cost model puts a disk read at ~10.5 ms
  /// (storage::CostModel, PaperEra); scaling that to microseconds keeps
  /// the benches fast while preserving the property that matters for a
  /// closed-loop load: misses of different workers overlap in time.
  /// Under an injected latency spike the delay is multiplied by the
  /// spike factor the disk reports. The delay models the device
  /// transfer, so it is slept between the read's two phases (after
  /// BeginRead, before the FinishRead decode).
  uint32_t io_delay_us_per_miss = 0;
  /// Readahead slots: the number of background I/O worker threads that
  /// drain Prefetch() plans, and hence the bound on outstanding
  /// readahead reads. 0 (the default) disables readahead entirely — no
  /// threads are created and the pool behaves bit-identically to the
  /// synchronous pool.
  size_t prefetch_depth = 0;
  /// Retry/backoff + circuit breaker in front of miss-path reads.
  /// Disabled by default: reads then call the disk directly. Readahead
  /// reads share the same ResilientReader, so their failures feed the
  /// same breaker a demand read would.
  fault::ResilienceOptions resilience;
  /// Span recorder for the miss path (a kMissRead span around the disk
  /// read + simulated device delay on the loading worker's thread; a
  /// kPrefetchIssue span around each readahead load on the I/O worker's
  /// thread; a kAsyncWait span on a fetch that blocked joining an
  /// in-flight load). nullptr = tracing off, one null-test per miss.
  obs::SpanRecorder* span_recorder = nullptr;
  /// Measure lock-contention waits on the pool-wide policy latch and
  /// the page-table stripes (see LatchWaitStats/StripeWaitStats). Off
  /// by default: locking then keeps the uninstrumented fast path.
  bool profile_contention = false;
};

/// Readahead + coalescing accounting (all zero with prefetch off except
/// coalesced_misses/device_reads, which the demand path also feeds).
struct PoolPrefetchStats {
  /// Readahead reads that completed successfully into a frame.
  uint64_t issued = 0;
  /// Prefetched pages later touched by a demand fetch (promoted).
  uint64_t used = 0;
  /// Prefetched pages reclaimed before any demand touch.
  uint64_t wasted = 0;
  /// Demand fetches that joined an in-flight load instead of issuing
  /// their own disk read (counted as hits in BufferStats).
  uint64_t coalesced_misses = 0;
  /// Every successful device read the pool issued (demand + readahead);
  /// conservation: misses + issued == device_reads at quiescence.
  uint64_t device_reads = 0;
};

/// A fixed-capacity, thread-safe buffer pool over the simulated disk.
class ConcurrentBufferPool final : public buffer::FrameDirectory,
                                   public buffer::BufferPool {
 public:
  /// Observes every frame eviction, called under the pool latch.
  /// `policy_victim` is true when the replacement policy chose the frame
  /// (OnEvict ran); false when a prefetch-tagged frame — which the
  /// policy never knew — was reclaimed. Test hook for asserting victim
  /// sequences; keep the callback trivial.
  using EvictionObserver = std::function<void(PageId, bool policy_victim)>;

  /// The disk must outlive the pool.
  ConcurrentBufferPool(const storage::SimulatedDisk* disk,
                       ConcurrentPoolOptions options);

  /// Joins the readahead workers, then checks the quiescent-state
  /// contracts (all pins released, stats conservation, device-read
  /// conservation, empty in-flight tables) under IRBUF_DCHECK.
  ~ConcurrentBufferPool() override;

  ConcurrentBufferPool(const ConcurrentBufferPool&) = delete;
  ConcurrentBufferPool& operator=(const ConcurrentBufferPool&) = delete;

  // BufferPool:
  Result<buffer::PinnedPage> FetchPinned(PageId id) override
      IRBUF_EXCLUDES(latch_mu_);

  /// b_t, from a relaxed atomic — a racy-but-honest estimate, exactly
  /// what BAF's d_t = max(p_t - b_t, 0) needs under concurrency.
  /// Prefetched pages count from the moment they are published: they
  /// are buffer-resident and a fetch of them will not read the disk.
  uint32_t ResidentPages(TermId term) const override {
    return term < term_resident_.size()
               ? term_resident_[term].load(std::memory_order_relaxed)
               : 0;
  }

  /// Standalone mode (no external context publisher): installs `context`
  /// for ranking-aware policies, like BufferManager does — the evaluators
  /// call this at the top of Evaluate. Once SetExternalContextMode(true)
  /// is set (by SharedQueryContext), the call becomes a no-op: the
  /// replacement context is then the merged weights of every in-flight
  /// query, published via PublishContext, and must not be clobbered by
  /// whichever query happens to start last.
  void SetQueryContext(buffer::QueryContext context) override
      IRBUF_EXCLUDES(latch_mu_);

  buffer::BufferStats StatsSnapshot() const override;

  /// Readahead slots (== options.prefetch_depth). Evaluators consult
  /// this before building a PageAccessPlan.
  size_t PrefetchDepth() const override { return options_.prefetch_depth; }

  /// Enqueues hinted pages for the background I/O workers. Pages
  /// already resident or already in flight are skipped (at dequeue
  /// time, so the hint path stays cheap); excess entries beyond the
  /// queue bound are dropped — a plan is a hint, not a contract. No-op
  /// when prefetch_depth == 0.
  void Prefetch(buffer::PageAccessPlan plan) override
      IRBUF_EXCLUDES(prefetch_mu_);

  /// Readahead/coalescing counters (relaxed; exact at quiescence).
  PoolPrefetchStats PrefetchStatsSnapshot() const;

  /// Installs a pre-merged replacement context (serving mode). The pool
  /// keeps the shared_ptr alive so the policy's raw pointer stays valid
  /// until the next publish.
  void PublishContext(std::shared_ptr<const buffer::QueryContext> context)
      IRBUF_EXCLUDES(latch_mu_);

  /// See SetQueryContext. Flipped on by SharedQueryContext::Attach.
  void SetExternalContextMode(bool external) {
    external_context_.store(external, std::memory_order_relaxed);
  }

  /// Installs `observer` (nullptr to clear) for eviction-sequence
  /// tests. Install before traffic; runs under the latch.
  void SetEvictionObserver(EvictionObserver observer)
      IRBUF_EXCLUDES(latch_mu_) {
    MutexLock latch(latch_mu_);
    eviction_observer_ = std::move(observer);
  }

  /// Resolves the buffer.* metric handles in `registry` (same names as
  /// BufferManager::BindMetrics, minus the victim-age histogram, plus
  /// the prefetch.* readahead counters). Call before serving starts;
  /// pass nullptr to unbind. `prefix` replaces the leading "buffer" of
  /// every instrument name — the sharded pool binds its per-shard pools
  /// as "shard0.buffer", "shard1.buffer", ... so shard hit rates are
  /// individually observable in one registry.
  void BindMetrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "buffer");

  const char* policy_name() const {
    MutexLock lock(latch_mu_);
    return policy_->name();
  }

  /// Pins currently held on `id`'s frame (0 when not resident). Test
  /// helper; the answer may be stale by the time it returns.
  uint32_t PinCount(PageId id) const;

  /// Null unless options.resilience.enabled constructed one.
  const fault::ResilientReader* resilience() const {
    return resilient_.get();
  }

  /// Wait accounting for the pool-wide policy latch / the page-table
  /// stripes (all 16 stripes share the one stats object — the question
  /// is "how long do fetches wait", not "which stripe"). Populated only
  /// when options.profile_contention is on; non-const so callers can
  /// Bind an obs::MutexWaitBinding or Reset between measurement cells.
  MutexWaitStats* latch_wait_stats() { return &latch_waits_; }
  MutexWaitStats* stripe_wait_stats() { return &stripe_waits_; }

  // FrameDirectory (policy callbacks run under the latch):
  const buffer::FrameMeta& Meta(buffer::FrameId frame) const override {
    return frames_[frame].meta;
  }
  size_t capacity() const override { return frames_.size(); }

 private:
  struct Frame {
    storage::Page page;
    buffer::FrameMeta meta;  // Guarded by latch_mu_.
    uint64_t insert_tick = 0;  // Guarded by latch_mu_.
    /// Published by a readahead worker and not yet demand-touched: the
    /// replacement policy does not know this frame (no OnInsert ran);
    /// it lives in prefetch_window_ instead. Guarded by latch_mu_.
    bool prefetch_tagged = false;
    /// Outstanding pins; > 0 makes the frame ineligible for eviction.
    /// fetch_sub uses release so a reader's last page access
    /// happens-before the frame's reuse (evictors load with acquire).
    std::atomic<uint32_t> pins{0};
  };

  /// One in-flight page load (see the FSM diagram atop this file). The
  /// entry lives in its stripe's `loads` table from the moment a loader
  /// claims the page until the load publishes (kResident) or fails
  /// (kFailed); both terminal transitions erase the entry.
  struct PageLoad {
    enum class State : uint8_t {
      kRequested,  // claimed; no I/O started yet (may await a frame)
      kReading,    // device transfer (BeginRead + miss delay) in flight
      kDecoding,   // CRC verify + posting decode on the loader's thread
      kResident,   // terminal: mapping published, entry about to erase
      kFailed,     // terminal: no mapping, entry erased, waiters retry
    };
    State state = State::kRequested;
    /// The load was started by a readahead worker (publishes into a
    /// prefetch-tagged frame unless a demand fetch joined meanwhile).
    bool prefetch = false;
    /// A demand fetch is waiting on this load; a joined readahead
    /// publishes promoted (OnInsert, untagged, counted prefetch_used).
    bool demand_joined = false;
  };

  /// One slice of the page table.
  struct Stripe {
    /// Acquired after latch_mu_ when both are needed (see the
    /// lock-ordering table in DESIGN.md); never held while acquiring
    /// latch_mu_.
    Mutex mu;
    CondVar cv;
    /// Resident pages of this slice: packed PageId -> frame.
    std::unordered_map<uint64_t, buffer::FrameId> pages IRBUF_GUARDED_BY(mu);
    /// In-flight table: pages currently being loaded, demand or
    /// readahead, keyed by packed PageId.
    std::unordered_map<uint64_t, PageLoad> loads IRBUF_GUARDED_BY(mu);
  };

  static constexpr size_t kStripes = 16;

  Stripe& StripeFor(uint64_t key) {
    // Pack() keeps the term in the high bits; mix so consecutive pages
    // of one hot term spread over stripes.
    return stripes_[(key * 0x9E3779B97F4A7C15ull) >> 60];
  }
  const Stripe& StripeFor(uint64_t key) const {
    return const_cast<ConcurrentBufferPool*>(this)->StripeFor(key);
  }

  // BufferPool:
  void Unpin(uint32_t frame) override;

  /// Evicts one unpinned, untagged frame and returns it, or
  /// kInvalidFrame when every such frame is pinned. Prefetch-tagged
  /// frames are invisible here — the policy never knew them, so neither
  /// ChooseVictim nor the fallback scan may pick one (reclaim is
  /// separate, see ReclaimPrefetchedLocked). Takes the victim's stripe
  /// mutex nested inside the latch (the one legal nesting order).
  buffer::FrameId EvictOneLocked() IRBUF_REQUIRES(latch_mu_);

  /// Reclaims the oldest unpinned prefetch-tagged frame (FIFO over the
  /// window), counting it prefetch_wasted, or returns kInvalidFrame if
  /// none can be freed. No policy callback runs — the policy never saw
  /// the frame.
  buffer::FrameId ReclaimPrefetchedLocked() IRBUF_REQUIRES(latch_mu_);

  /// Promotes a prefetch-tagged frame on its first demand touch: the
  /// policy finally learns the frame (OnInsert — to the policy this IS
  /// the insertion), the tag clears, the window forgets it and
  /// prefetch_used is counted.
  void PromoteLocked(buffer::FrameId frame) IRBUF_REQUIRES(latch_mu_);

  /// Erases `key` from its stripe's in-flight table and wakes waiters
  /// (the load failed or could not get a frame; waiters retry as
  /// loaders).
  void AbandonLoad(uint64_t key);

  /// Transitions `key`'s in-flight entry (if still present) to `state`.
  void SetLoadState(uint64_t key, PageLoad::State state);

  /// Runs one disk read into `frame.page` with no pool lock held:
  /// BeginRead, the simulated device delay, then FinishRead, moving the
  /// FSM through kReading/kDecoding (retries re-enter kReading). Wraps
  /// the attempts in the resilient reader when one is configured and in
  /// a kMissRead (demand) or kPrefetchIssue (readahead) span. Counts
  /// device_reads_ on success.
  Status ExecuteLoad(PageId id, uint64_t key, Frame& frame, bool prefetch)
      IRBUF_EXCLUDES(latch_mu_);

  /// Returns the reservation frame for a failed load to the free list
  /// and abandons the in-flight entry.
  void ReleaseFailedLoad(uint64_t key, buffer::FrameId frame)
      IRBUF_EXCLUDES(latch_mu_);

  /// Background I/O worker: drains prefetch_queue_ until shutdown.
  void PrefetchWorkerLoop();

  /// Loads one hinted page end to end (dequeue side of Prefetch).
  void PrefetchOne(PageId id);

  struct MetricHandles {
    obs::Counter* fetches = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* prefetch_issued = nullptr;
    obs::Counter* prefetch_used = nullptr;
    obs::Counter* prefetch_wasted = nullptr;
    obs::Counter* coalesced_misses = nullptr;
  };

  const storage::SimulatedDisk* disk_;
  const ConcurrentPoolOptions options_;

  std::array<Stripe, kStripes> stripes_;

  /// Pool-wide latch: policy_, free_frames_, frame metadata, fetch_tick_,
  /// the prefetch-tagged window and context_. Lock order: latch_mu_
  /// before any stripe mutex.
  mutable Mutex latch_mu_;
  /// The unique_ptr is set once at construction; the policy object's
  /// internal state mutates under the latch, hence PT_GUARDED_BY.
  std::unique_ptr<buffer::ReplacementPolicy> policy_
      IRBUF_PT_GUARDED_BY(latch_mu_);
  std::vector<buffer::FrameId> free_frames_ IRBUF_GUARDED_BY(latch_mu_);
  uint64_t fetch_tick_ IRBUF_GUARDED_BY(latch_mu_) = 0;
  /// The published replacement context; owning pointer keeps the
  /// QueryContext the policy points at alive.
  std::shared_ptr<const buffer::QueryContext> context_
      IRBUF_GUARDED_BY(latch_mu_);
  /// FIFO of prefetch-tagged frames, oldest first; bounded by
  /// prefetch_window_cap_. Frames leave on promotion or reclaim.
  std::deque<buffer::FrameId> prefetch_window_ IRBUF_GUARDED_BY(latch_mu_);
  EvictionObserver eviction_observer_ IRBUF_GUARDED_BY(latch_mu_);

  std::vector<Frame> frames_;
  std::vector<std::atomic<uint32_t>> term_resident_;
  std::atomic<bool> external_context_{false};

  // Counters are incremented pairwise (fetches with exactly one of
  // hits/misses), so fetches == hits + misses holds at quiescence; and
  // misses_ + prefetch_issued_ == device_reads_ (every successful read
  // is counted once, demand or readahead — coalescing makes it exact).
  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> device_reads_{0};
  std::atomic<uint64_t> prefetch_issued_{0};
  std::atomic<uint64_t> prefetch_used_{0};
  std::atomic<uint64_t> prefetch_wasted_{0};
  std::atomic<uint64_t> coalesced_misses_{0};
  MetricHandles metrics_;
  /// Contention accounting the constructor attaches to latch_mu_ and
  /// every stripe mutex when options.profile_contention is set.
  MutexWaitStats latch_waits_{"pool.latch"};
  MutexWaitStats stripe_waits_{"pool.stripe"};
  /// Thread-safe miss-path retry/breaker wrapper; null = plain reads.
  std::unique_ptr<fault::ResilientReader> resilient_;

  /// Readahead plumbing. prefetch_mu_ is a leaf lock protecting only
  /// the hint queue + stop flag: Prefetch() enqueues under it and the
  /// workers dequeue under it, but all actual load work (frame
  /// reservation, I/O, publish) runs with it released, so the hint path
  /// never serializes against the latch or a stripe.
  mutable Mutex prefetch_mu_;
  CondVar prefetch_cv_;
  std::deque<uint64_t> prefetch_queue_ IRBUF_GUARDED_BY(prefetch_mu_);
  bool prefetch_stop_ IRBUF_GUARDED_BY(prefetch_mu_) = false;
  /// Queue bound: hints past this are dropped (stale hints would only
  /// waste reads). Set once in the constructor.
  size_t prefetch_queue_cap_ = 0;
  /// Tagged-window bound: min(2*prefetch_depth, capacity/2), >= 1 when
  /// readahead is on. Set once in the constructor.
  size_t prefetch_window_cap_ = 0;
  /// Joined (in order) by the destructor after prefetch_stop_ is set.
  std::vector<std::thread> prefetch_workers_;
};

}  // namespace irbuf::serve

#endif  // IRBUF_SERVE_CONCURRENT_BUFFER_POOL_H_
