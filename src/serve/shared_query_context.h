// The serving-side implementation of the paper's Section 3.3 sketch for
// multi-user ranking-aware replacement: "if a term is shared by many
// queries, the highest w_{q,t} could be used". Every query entering
// evaluation registers its term weights; the registry merges the weights
// of ALL in-flight queries (max per term) into one immutable snapshot
// and publishes it to the ConcurrentBufferPool, so RAP never treats a
// page another active query still values as worthless.
//
// Snapshots are immutable QueryContext objects behind
// std::atomic<std::shared_ptr>, so readers (Snapshot()) are lock-free
// and a snapshot handed out stays valid however many register/
// unregister cycles follow. Register/Unregister serialize on a mutex —
// they are per-query, not per-page, events.

#ifndef IRBUF_SERVE_SHARED_QUERY_CONTEXT_H_
#define IRBUF_SERVE_SHARED_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "buffer/query_context.h"
#include "serve/concurrent_buffer_pool.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace irbuf::serve {

/// Registry of the term weights of every in-flight query.
class SharedQueryContext {
 public:
  SharedQueryContext() = default;

  SharedQueryContext(const SharedQueryContext&) = delete;
  SharedQueryContext& operator=(const SharedQueryContext&) = delete;

  /// Binds `pool` as the publish target and switches it to external
  /// context mode (the evaluators' own SetQueryContext calls become
  /// no-ops; the merged snapshot is the replacement context from now
  /// on). Pass nullptr to detach. The pool must outlive the attachment.
  void Attach(ConcurrentBufferPool* pool) IRBUF_EXCLUDES(mu_);

  /// Registers a query entering evaluation and publishes a fresh merged
  /// snapshot. Returns the ticket to pass to Unregister when the query
  /// completes (or fails).
  uint64_t Register(buffer::QueryContext weights) IRBUF_EXCLUDES(mu_);

  /// Drops a query's weights and publishes the shrunk merge. Unknown
  /// tickets are ignored (idempotent).
  void Unregister(uint64_t ticket) IRBUF_EXCLUDES(mu_);

  /// Lock-free read of the current merged snapshot (never null).
  std::shared_ptr<const buffer::QueryContext> Snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Number of queries currently registered.
  size_t InFlight() const IRBUF_EXCLUDES(mu_);

 private:
  /// Re-merges all active weights and publishes.
  void PublishLocked() IRBUF_REQUIRES(mu_);

  /// Registration latch (per-query, not per-page events). Acquired
  /// before the pool's latch_mu_ (PublishLocked -> PublishContext);
  /// the pool never calls back into this class, so the order is total.
  mutable Mutex mu_;
  uint64_t next_ticket_ IRBUF_GUARDED_BY(mu_) = 1;
  std::unordered_map<uint64_t, buffer::QueryContext> active_
      IRBUF_GUARDED_BY(mu_);
  ConcurrentBufferPool* pool_ IRBUF_GUARDED_BY(mu_) = nullptr;

  std::atomic<std::shared_ptr<const buffer::QueryContext>> snapshot_{
      std::make_shared<const buffer::QueryContext>()};
};

}  // namespace irbuf::serve

#endif  // IRBUF_SERVE_SHARED_QUERY_CONTEXT_H_
