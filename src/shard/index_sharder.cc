#include "shard/index_sharder.h"

#include <memory>
#include <utility>

#include "storage/codec.h"

namespace irbuf::shard {

Result<ShardedIndex> ShardIndex(const index::InvertedIndex& source,
                                const ShardOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.page_size == 0) {
    return Status::InvalidArgument("shard page_size must be >= 1");
  }
  const uint32_t num_docs = source.num_docs();
  if (num_docs == 0) {
    return Status::InvalidArgument("cannot shard an empty collection");
  }
  const size_t num_shards = options.num_shards;

  ShardedIndex out;
  out.num_docs_ = num_docs;
  out.docs_per_shard_ = static_cast<uint32_t>(
      std::max<uint64_t>(1, (num_docs + num_shards - 1) / num_shards));
  out.global_lexicon_ = source.lexicon();
  out.global_table_ = source.conversion_table();
  out.order_ = source.order();

  // Every shard carries the full global norm vector: postings keep their
  // global doc ids (the merge needs them), and per-shard norms would
  // change the step-5 normalization.
  std::vector<double> norms(num_docs);
  for (DocId d = 0; d < num_docs; ++d) norms[d] = source.doc_norm(d);

  struct ShardBuild {
    index::Lexicon lexicon;
    std::unique_ptr<storage::SimulatedDisk> disk;
  };
  std::vector<ShardBuild> builds(num_shards);
  for (ShardBuild& build : builds) {
    build.lexicon = source.lexicon();
    build.disk = std::make_unique<storage::SimulatedDisk>();
  }

  const index::Lexicon& lexicon = source.lexicon();
  const storage::SimulatedDisk& disk = source.disk();
  storage::PostingBlock block;
  std::vector<std::vector<Posting>> buckets(num_shards);
  std::vector<Posting> page;
  for (TermId t = 0; t < lexicon.size(); ++t) {
    for (std::vector<Posting>& bucket : buckets) bucket.clear();
    const index::TermInfo& info = lexicon.info(t);
    // Doc-range filtering of a list preserves its physical order: the
    // decoded pages are split posting-by-posting, in order, into the
    // owning shard's bucket. PageImage leaves the source's read
    // counters untouched (sharding is not a workload).
    for (uint32_t page_no = 0; page_no < disk.NumPages(t); ++page_no) {
      Result<const std::vector<uint8_t>*> image =
          disk.PageImage(PageId{t, page_no});
      IRBUF_RETURN_NOT_OK(image.status());
      IRBUF_RETURN_NOT_OK(storage::DecodePostingsInto(*image.value(),
                                                      &block));
      for (size_t i = 0; i < block.size(); ++i) {
        const DocId d = block.doc_ids[i];
        buckets[out.ShardOf(d)].push_back(Posting{d, block.freqs[i]});
      }
    }
    for (size_t s = 0; s < num_shards; ++s) {
      const std::vector<Posting>& postings = buckets[s];
      index::TermInfo& shard_info = builds[s].lexicon.mutable_info(t);
      // pages/fmax become shard-local; text, ft and idf stay global
      // (see the header's global-vs-local table).
      shard_info.pages = 0;
      shard_info.fmax = 0;
      for (const Posting& p : postings) {
        shard_info.fmax = std::max(shard_info.fmax, p.freq);
      }
      for (size_t i = 0; i < postings.size(); i += options.page_size) {
        const size_t end = std::min(postings.size(), i + options.page_size);
        page.assign(postings.begin() + static_cast<ptrdiff_t>(i),
                    postings.begin() + static_cast<ptrdiff_t>(end));
        uint32_t page_fmax = 0;
        for (const Posting& p : page) page_fmax = std::max(page_fmax, p.freq);
        // Same page metadata formula as IndexBuilder::FinalizeTerm, with
        // the same (global) idf — RAP values shard pages exactly as it
        // values the source's.
        const double max_weight = static_cast<double>(page_fmax) * info.idf;
        IRBUF_RETURN_NOT_OK(builds[s].disk->AppendPage(t, page, max_weight));
        ++shard_info.pages;
      }
    }
  }

  out.shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    out.shards_.emplace_back(std::move(builds[s].lexicon),
                             std::move(builds[s].disk), out.global_table_,
                             norms, out.order_);
  }
  return out;
}

}  // namespace irbuf::shard
