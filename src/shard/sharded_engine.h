// The scatter-gather evaluation engine: one TermwiseRun per shard,
// driven through a SHARED term order with a Smax barrier at every term
// boundary, partial top-k lists merged rank-safely at the end. Plugs
// into QueryServer as its serve::QueryEngine.
//
// Why sharded == unsharded, bit for bit:
//
//  1. Term order is decided by the COORDINATOR from global statistics —
//     DF's static decreasing-idf order verbatim (core::DfTermOrder over
//     the global lexicon); BAF's rounds from the global conversion
//     table, global lexicon and the shard pools' aggregated residency.
//  2. Thresholds depend on state only through Smax AT TERM START
//     (ProcessTerm computes f_ins/f_add once per term and only raises
//     Smax mid-term). The barrier exchanges per-shard Smax values at
//     every term boundary and takes the max; accumulators are disjoint
//     across shards (a doc lives in one shard), so max over shards of
//     the per-shard running max IS the unsharded running max, and every
//     shard enters the next term with the exact unsharded Smax.
//  3. Within a shard, postings are processed in the source order
//     restricted to the shard's doc range (doc-range filtering
//     preserves list order), so each document's accumulator sees the
//     same additions in the same sequence — FP-identical scores.
//  4. The merge sorts the union of per-shard top-k partials with
//     SelectTopN's exact comparator (see shard/scatter_gather.h).
//
// DF is therefore bit-identical to the unsharded evaluator always —
// across warm refinement sequences, any policy, any capacity. BAF's
// *term order* additionally consults buffer residency b_t: against a
// cold pool both paths see b_t = 0 for every not-yet-processed term for
// the whole query (a processed term is never reconsidered), so
// single-query-from-cold BAF is bit-identical too; across a WARM
// sequence the sharded engine aggregates honest per-shard residency,
// which may legitimately order terms differently than one shared pool
// would (same answers only when thresholds are saturated; the golden
// tests pin the cold identity).
//
// Execution model (rethinkdb-style per-shard cache ownership with
// cross-thread message passing): each shard owns a small fixed pool of
// "lane" threads. A coordinator (the QueryServer worker running the
// query) posts one Step per shard per term and blocks on a countdown
// barrier, so one query's buffer misses overlap ACROSS shards — the
// unsharded evaluator's misses are serial, and PR 6 measured exactly
// that serial miss time as 95-97% of the 8-worker p99 — while
// lanes_per_shard >= the server's worker count keeps concurrent
// queries from serializing behind each other on a shard.

#ifndef IRBUF_SHARD_SHARDED_ENGINE_H_
#define IRBUF_SHARD_SHARDED_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/filtering_evaluator.h"
#include "core/query.h"
#include "fault/circuit_breaker.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/query_engine.h"
#include "serve/shared_query_context.h"
#include "shard/index_sharder.h"
#include "shard/sharded_buffer_pool.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace irbuf::shard {

/// A fixed pool of worker threads bound to one shard. Closures posted
/// here touch only that shard's posting file and buffer pool, so a
/// lane never contends on another shard's latch (the "no shared latch"
/// property is structural, not just lock-granularity).
class ShardLanes {
 public:
  explicit ShardLanes(size_t num_lanes);
  /// Joins the lanes after draining already-posted closures.
  ~ShardLanes();

  ShardLanes(const ShardLanes&) = delete;
  ShardLanes& operator=(const ShardLanes&) = delete;

  /// Enqueues `fn` for the next free lane; never blocks the caller.
  void Post(std::function<void()> fn) IRBUF_EXCLUDES(mu_);

 private:
  void LaneLoop() IRBUF_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> tasks_ IRBUF_GUARDED_BY(mu_);
  bool stopping_ IRBUF_GUARDED_BY(mu_) = false;
  /// Filled in the constructor, joined in the destructor; never touched
  /// in between.
  std::vector<std::thread> lanes_;
};

/// Configuration of a ShardedEngine.
struct ShardedEngineOptions {
  /// Evaluator tuning, shared by every shard evaluator. buffer_aware
  /// selects DF vs BAF for the COORDINATOR's term ordering; tracer is
  /// ignored (per-shard tracer events would interleave meaninglessly);
  /// span_recorder is wired through shards, pools and disks.
  core::EvalOptions eval;
  /// Per-shard pool construction (total budget, policy, miss delay,
  /// resilience). pool.span_recorder defaults to eval.span_recorder
  /// when left null.
  ShardedPoolOptions pool;
  /// Lane threads per shard (>= 1). Use the serving worker count so
  /// every in-flight query can make progress on every shard at once.
  size_t lanes_per_shard = 1;
  /// Maintain one SharedQueryContext per shard and register every
  /// query's weights in all of them (Section 3.3 under sharding).
  bool shared_context = false;

  // --- Shard failure domains ---
  //
  // Each shard is its own failure domain: a per-shard circuit breaker
  // (fed by every step's I/O outcome — any lost page is a failure, a
  // clean step a success) plus an optional per-step soft deadline. A
  // shard whose breaker rejects a term, or that straggles past the soft
  // deadline, is FORFEITED for the rest of the query: its partial is
  // dropped wholesale and the merged result charges, per query term,
  // the shard-local page bound Σ PageMaxWeight * w_qt to quality_bound
  // (see LostShardTermBound) and the shard's page count to pages_lost.
  // The query still answers from the surviving shards, degraded but
  // honest. Breakers persist across queries, so a blacked-out shard
  // costs each query at most one probing term once tripped.

  /// Per-shard breakers on by default: with zero lost pages they never
  /// trip, so healthy-path behavior (and the p=0 goldens) is unchanged.
  bool shard_breakers = true;
  /// Tuning for every shard's breaker.
  fault::BreakerOptions shard_breaker;
  /// Wall-clock budget for any one shard to complete one term's step;
  /// a shard exceeding it is abandoned as a straggler (forfeited, its
  /// late completion discarded — never merged, never counted into
  /// Smax). 0 = wait indefinitely, the pre-failure-domain behavior.
  uint64_t shard_step_soft_deadline_us = 0;
};

/// Doc-partitioned scatter-gather engine over a ShardedIndex.
class ShardedEngine final : public serve::QueryEngine {
 public:
  /// `index` must outlive the engine.
  ShardedEngine(const ShardedIndex* index, ShardedEngineOptions options);
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Evaluates one query scatter-gather style. Thread-safe; each call
  /// owns its per-shard TermwiseRuns and barrier state, and the shard
  /// pools are concurrent. `query_id` tags lane-side spans so
  /// cross-thread work lands on the query's trace timeline.
  Result<core::EvalResult> Evaluate(const core::Query& query,
                                    const core::EvalControl* control,
                                    uint32_t query_id) override;

  buffer::BufferStats PoolStats() const override {
    return pool_.AggregateStats();
  }

  ShardedBufferPool* mutable_pool() { return &pool_; }
  size_t num_shards() const { return index_->num_shards(); }

  /// Upper bound on what one query term could have contributed from
  /// `shard`'s postings: sum over the shard-local pages of the term's
  /// list of PageMaxWeight * w_qt (w_qt from the GLOBAL idf, same as
  /// the unsharded evaluator). This is exactly the per-term charge a
  /// forfeited shard adds to the merged quality_bound — public so the
  /// chaos tests can assert the merge conserves it to the last bit.
  double LostShardTermBound(size_t shard, const core::QueryTerm& qt) const;

  /// Pages of `term`'s list living on `shard` — the per-term charge a
  /// forfeited shard adds to the merged pages_lost.
  uint32_t ShardTermPages(size_t shard, TermId term) const;

  /// The shard's failure-domain breaker; null when shard_breakers is
  /// off. Exposed so tests (and the chaos CLI) can pre-trip or inspect.
  fault::CircuitBreaker* shard_breaker(size_t shard) {
    return shard < breakers_.size() ? breakers_[shard].get() : nullptr;
  }

  /// Binds per-shard buffer instruments ("shard<i>.buffer.*"), shard
  /// breaker trip/reject counters ("shard<i>.breaker.*") and the
  /// engine-level forfeit counter ("engine.shards_lost").
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  /// Adds `qt`'s maximum possible single-document contribution (from
  /// GLOBAL fmax/idf — the same number the unsharded evaluator uses) to
  /// the quality bound of a deadline-forfeited term.
  void ForfeitGlobal(const core::QueryTerm& qt,
                     core::EvalResult* merged) const;

  /// Marks `shard` dead for the rest of this query and charges its
  /// whole possible contribution (every query term's shard-local page
  /// bound) to the merged result.
  void ForfeitShard(size_t shard, const core::Query& query,
                    std::vector<char>* dead, core::EvalResult* merged);

  const ShardedIndex* index_;
  const ShardedEngineOptions options_;
  ShardedBufferPool pool_;
  std::vector<core::FilteringEvaluator> evaluators_;
  /// Per-shard in-flight-context registries (shared_context mode).
  std::vector<std::unique_ptr<serve::SharedQueryContext>> contexts_;
  std::vector<std::unique_ptr<ShardLanes>> lanes_;
  /// Per-shard failure-domain breakers (empty when disabled). Their
  /// own mutex serializes feeding; persists across queries.
  std::vector<std::unique_ptr<fault::CircuitBreaker>> breakers_;
  /// Bumped once per shard forfeiture; wired at BindMetrics time (the
  /// Counter itself is thread-safe).
  obs::Counter* shards_lost_metric_ = nullptr;
  /// True when the constructor attached eval.span_recorder to the shard
  /// disks (the destructor then detaches it).
  bool attached_disk_spans_ = false;
};

}  // namespace irbuf::shard

#endif  // IRBUF_SHARD_SHARDED_ENGINE_H_
