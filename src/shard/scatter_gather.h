// Rank-safe merging of per-shard partial top-k lists.
//
// Why the merge is exact (no shard can "hide" a global winner): each
// document lives in exactly one shard, shard partials are that shard's
// top n under the SAME strict total order the unsharded SelectTopN uses
// (normalized score descending, doc id ascending on ties), and any
// document in the global top n is by definition among the best n of its
// own shard — so the union of partials is a superset of the global top
// n, and sorting the union by the same total order and truncating to n
// reproduces the unsharded answer element for element, tie-breaks
// included.

#ifndef IRBUF_SHARD_SCATTER_GATHER_H_
#define IRBUF_SHARD_SCATTER_GATHER_H_

#include <cstdint>
#include <vector>

#include "core/query.h"

namespace irbuf::shard {

/// Merges per-shard partial rankings (each already sorted best-first by
/// SelectTopN) into the global top `n`, with the unsharded path's exact
/// comparator: score descending, doc id ascending on ties.
class ScatterGatherMerger {
 public:
  static std::vector<core::ScoredDoc> MergeTopK(
      const std::vector<std::vector<core::ScoredDoc>>& partials, uint32_t n);
};

}  // namespace irbuf::shard

#endif  // IRBUF_SHARD_SCATTER_GATHER_H_
