// One ConcurrentBufferPool + replacement-policy instance per shard, with
// NO shared latch: shard s's pool serializes its own policy decisions
// behind its own latch_mu_, so misses of different shards overlap both
// their I/O (already true of one pool) and their policy/page-table work,
// and — the real win the PR 6 attribution data points at — one QUERY's
// independent misses overlap across shards instead of serializing
// through a single evaluator thread.
//
// The total page budget is split evenly: a 4-shard pool with
// total_pages=256 is four 64-page pools, one per shard's (re-paginated)
// posting file. That keeps memory comparisons against the unsharded
// pool honest in the serve bench.

#ifndef IRBUF_SHARD_SHARDED_BUFFER_POOL_H_
#define IRBUF_SHARD_SHARDED_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/policy_factory.h"
#include "fault/resilient.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/concurrent_buffer_pool.h"
#include "shard/index_sharder.h"

namespace irbuf::shard {

/// Configuration of a ShardedBufferPool.
struct ShardedPoolOptions {
  /// TOTAL page budget across all shards, split evenly (each shard pool
  /// gets at least 2 frames so one pinned page never wedges eviction).
  size_t total_pages = 256;
  buffer::PolicyKind policy = buffer::PolicyKind::kLru;
  /// Simulated device latency per miss, slept with no lock held (see
  /// ConcurrentPoolOptions); misses on different shards overlap.
  uint32_t io_delay_us_per_miss = 0;
  /// Readahead slots per shard pool (see
  /// ConcurrentPoolOptions::prefetch_depth). Each shard runs its own
  /// background I/O workers, so one query's readahead overlaps across
  /// shards: the per-shard plans ShardLanes issue are serviced
  /// concurrently. 0 (default) disables readahead.
  size_t prefetch_depth = 0;
  /// Retry/backoff + circuit breaker, instantiated per shard pool (a
  /// tripped breaker on one shard does not brown out the others).
  fault::ResilienceOptions resilience;
  obs::SpanRecorder* span_recorder = nullptr;
  /// Measure per-shard latch/stripe waits (latch_wait_stats on each
  /// shard pool).
  bool profile_contention = false;
};

/// The per-shard pools of one ShardedIndex.
class ShardedBufferPool {
 public:
  /// `index` must outlive the pool.
  ShardedBufferPool(const ShardedIndex* index,
                    const ShardedPoolOptions& options);

  ShardedBufferPool(const ShardedBufferPool&) = delete;
  ShardedBufferPool& operator=(const ShardedBufferPool&) = delete;

  size_t num_shards() const { return pools_.size(); }
  serve::ConcurrentBufferPool* shard(size_t s) { return pools_[s].get(); }
  const serve::ConcurrentBufferPool* shard(size_t s) const {
    return pools_[s].get();
  }

  /// Aggregate b_t over every shard pool — the global residency the
  /// coordinator's BAF ordering consults. Relaxed-atomic sums, same
  /// racy-but-honest contract as a single pool's ResidentPages.
  uint32_t ResidentPagesTotal(TermId term) const;

  /// Sums fetches/hits/misses/evictions over the shard pools. The
  /// fetches == hits + misses conservation survives summation.
  buffer::BufferStats AggregateStats() const;

  /// Binds each shard pool's instruments as "shard<i>.buffer.*" so
  /// per-shard hit rates are individually observable. Pass nullptr to
  /// unbind.
  void BindMetrics(obs::MetricsRegistry* registry);

  const char* policy_name() const { return pools_[0]->policy_name(); }

 private:
  std::vector<std::unique_ptr<serve::ConcurrentBufferPool>> pools_;
};

}  // namespace irbuf::shard

#endif  // IRBUF_SHARD_SHARDED_BUFFER_POOL_H_
