#include "shard/sharded_buffer_pool.h"

#include <algorithm>

#include "util/str.h"

namespace irbuf::shard {

ShardedBufferPool::ShardedBufferPool(const ShardedIndex* index,
                                     const ShardedPoolOptions& options) {
  const size_t num_shards = index->num_shards();
  const size_t per_shard =
      std::max<size_t>(2, options.total_pages / std::max<size_t>(1,
                                                                num_shards));
  pools_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    serve::ConcurrentPoolOptions pool;
    pool.capacity = per_shard;
    pool.policy = options.policy;
    pool.io_delay_us_per_miss = options.io_delay_us_per_miss;
    pool.prefetch_depth = options.prefetch_depth;
    pool.resilience = options.resilience;
    pool.span_recorder = options.span_recorder;
    pool.profile_contention = options.profile_contention;
    pools_.push_back(std::make_unique<serve::ConcurrentBufferPool>(
        &index->shard(s).disk(), pool));
  }
}

uint32_t ShardedBufferPool::ResidentPagesTotal(TermId term) const {
  uint32_t total = 0;
  for (const std::unique_ptr<serve::ConcurrentBufferPool>& pool : pools_) {
    total += pool->ResidentPages(term);
  }
  return total;
}

buffer::BufferStats ShardedBufferPool::AggregateStats() const {
  buffer::BufferStats total;
  for (const std::unique_ptr<serve::ConcurrentBufferPool>& pool : pools_) {
    const buffer::BufferStats stats = pool->StatsSnapshot();
    total.fetches += stats.fetches;
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.evictions += stats.evictions;
  }
  return total;
}

void ShardedBufferPool::BindMetrics(obs::MetricsRegistry* registry) {
  for (size_t s = 0; s < pools_.size(); ++s) {
    pools_[s]->BindMetrics(registry, StrFormat("shard%zu.buffer", s));
  }
}

}  // namespace irbuf::shard
