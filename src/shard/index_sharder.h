// Doc-range partitioning of a built inverted index into N self-contained
// shard indices for scatter-gather serving.
//
// Shard s owns the contiguous global doc-id range
// [doc_begin(s), doc_end(s)); each shard is a complete
// index::InvertedIndex — its own posting file (SimulatedDisk) with its
// own page numbering, a lexicon sharing the SOURCE's term ids, and a
// full copy of the source's document norms — so the unmodified
// FilteringEvaluator runs against a shard exactly as it runs against
// the source.
//
// What is global and what is per-shard decides whether sharded
// evaluation can reproduce the unsharded ranking bit-for-bit:
//
//  * idf_t, ft and the document norms W_d stay GLOBAL in every shard's
//    lexicon. Per-shard statistics here would change w_{d,t} = f_{d,t} *
//    idf_t and the normalization, i.e. change scores, not just their
//    partitioning.
//  * `pages` and `fmax` are SHARD-LOCAL: pages must be (the evaluator
//    walks [0, info.pages) of the shard's own posting file), and a
//    shard-local fmax only widens the fmax <= f_add whole-list skip to
//    lists whose in-shard postings all fall below the addition
//    threshold — work the unsharded evaluator performs and discards, so
//    scores are unchanged. Global fmax is recoverable as the max over
//    shards, which the scatter-gather engine uses when merging traces.
//  * The conversion table is copied verbatim; the sharded engine's BAF
//    ordering consults the GLOBAL table + lexicon (see
//    shard::ShardedEngine), never the per-shard copies.
//
// Filtering a frequency-sorted (or document-ordered) list by a doc
// range preserves its order, so each shard's lists keep the physical
// ordering the evaluator's early-exit logic depends on.

#ifndef IRBUF_SHARD_INDEX_SHARDER_H_
#define IRBUF_SHARD_INDEX_SHARDER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "index/inverted_index.h"
#include "storage/page.h"
#include "storage/types.h"
#include "util/status.h"

namespace irbuf::shard {

/// Partitioning knobs.
struct ShardOptions {
  /// Number of contiguous doc-range shards (>= 1). More shards than
  /// documents leaves the surplus shards with empty doc ranges (legal;
  /// they simply contribute empty partials).
  size_t num_shards = 1;
  /// Postings per page when re-paginating each shard's inverted lists.
  /// With num_shards == 1 and a page size equal to the one the source
  /// index was built with, the shard's posting file reproduces the
  /// source pages byte for byte (same chunking -> same images -> same
  /// CRCs), which the shards=1 differential test pins.
  uint32_t page_size = storage::kDefaultPageSize;
};

/// A doc-range partition of one source index: the per-shard indices
/// plus the global statistics the scatter-gather coordinator needs.
class ShardedIndex {
 public:
  size_t num_shards() const { return shards_.size(); }
  const index::InvertedIndex& shard(size_t s) const { return shards_[s]; }

  /// First global doc id owned by shard `s`.
  DocId doc_begin(size_t s) const {
    return static_cast<DocId>(
        std::min<uint64_t>(uint64_t{docs_per_shard_} * s, num_docs_));
  }
  /// One past the last global doc id owned by shard `s`.
  DocId doc_end(size_t s) const { return doc_begin(s + 1); }
  /// The shard owning global doc id `doc`.
  size_t ShardOf(DocId doc) const {
    return std::min<size_t>(doc / docs_per_shard_, shards_.size() - 1);
  }

  uint32_t num_docs() const { return num_docs_; }

  /// The SOURCE lexicon (global pages/fmax) — the coordinator's view
  /// for term ordering, thresholds and deadline forfeits.
  const index::Lexicon& lexicon() const { return global_lexicon_; }
  /// The source conversion table, for BAF's p_t estimates.
  const index::ConversionTable& conversion_table() const {
    return global_table_;
  }
  index::IndexListOrder order() const { return order_; }

 private:
  friend Result<ShardedIndex> ShardIndex(const index::InvertedIndex&,
                                         const ShardOptions&);

  std::vector<index::InvertedIndex> shards_;
  index::Lexicon global_lexicon_;
  index::ConversionTable global_table_;
  uint32_t num_docs_ = 0;
  uint32_t docs_per_shard_ = 1;
  index::IndexListOrder order_ = index::IndexListOrder::kFrequencySorted;
};

/// Partitions `source` into options.num_shards doc-range shards. Reads
/// every page image of the source (without touching its read counters),
/// splits each list by doc range, and re-paginates each shard's lists
/// at options.page_size. The source only needs to stay alive for the
/// duration of the call — the result is self-contained.
Result<ShardedIndex> ShardIndex(const index::InvertedIndex& source,
                                const ShardOptions& options);

}  // namespace irbuf::shard

#endif  // IRBUF_SHARD_INDEX_SHARDER_H_
