#include "shard/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "core/scorer.h"
#include "fault/backoff.h"
#include "shard/scatter_gather.h"

namespace irbuf::shard {

namespace {

ShardedEngineOptions Normalize(ShardedEngineOptions options) {
  if (options.pool.span_recorder == nullptr) {
    options.pool.span_recorder = options.eval.span_recorder;
  }
  options.lanes_per_shard = std::max<size_t>(1, options.lanes_per_shard);
  return options;
}

/// Countdown barrier for one per-term fan-out: the coordinator posts S
/// steps, each lane Completes once, the coordinator Waits. Collects the
/// cross-shard Smax max, the all-shards-skipped conjunction and the
/// first logic error.
struct FanOut {
  FanOut(size_t shards, double smax_in)
      : remaining(shards), smax_max(smax_in) {}

  Mutex mu;
  CondVar cv;
  size_t remaining IRBUF_GUARDED_BY(mu);
  double smax_max IRBUF_GUARDED_BY(mu);
  bool all_skipped IRBUF_GUARDED_BY(mu) = true;
  Status error IRBUF_GUARDED_BY(mu);

  void Complete(
      const Result<core::FilteringEvaluator::TermwiseRun::StepOutcome>&
          outcome) IRBUF_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (!outcome.ok()) {
      if (error.ok()) error = outcome.status();
    } else {
      smax_max = std::max(smax_max, outcome.value().smax);
      all_skipped = all_skipped && outcome.value().skipped;
    }
    if (--remaining == 0) cv.NotifyAll();
  }

  void CompleteVoid() IRBUF_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (--remaining == 0) cv.NotifyAll();
  }

  void Wait() IRBUF_EXCLUDES(mu) {
    MutexLock lock(mu);
    while (remaining > 0) cv.Wait(mu);
  }
};

}  // namespace

ShardLanes::ShardLanes(size_t num_lanes) {
  const size_t count = std::max<size_t>(1, num_lanes);
  lanes_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    lanes_.emplace_back([this] { LaneLoop(); });
  }
}

ShardLanes::~ShardLanes() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
}

void ShardLanes::Post(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ShardLanes::LaneLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && tasks_.empty()) cv_.Wait(mu_);
      if (tasks_.empty()) return;  // Stopping and drained.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ShardedEngine::ShardedEngine(const ShardedIndex* index,
                             ShardedEngineOptions options)
    : index_(index),
      options_(Normalize(std::move(options))),
      pool_(index, options_.pool) {
  const size_t num_shards = index_->num_shards();
  core::EvalOptions eval = options_.eval;
  eval.tracer = nullptr;
  evaluators_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    evaluators_.emplace_back(&index_->shard(s), eval);
  }
  if (options_.shared_context) {
    contexts_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      contexts_.push_back(std::make_unique<serve::SharedQueryContext>());
      contexts_[s]->Attach(pool_.shard(s));
    }
  }
  lanes_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    lanes_.push_back(std::make_unique<ShardLanes>(options_.lanes_per_shard));
  }
  if (options_.eval.span_recorder != nullptr) {
    // Read-side spans (CRC verify, block decode) are recorded by each
    // shard's disk; attach for the engine's lifetime, like QueryServer
    // does for the unsharded disk.
    for (size_t s = 0; s < num_shards; ++s) {
      index_->shard(s).disk().SetSpanRecorder(options_.eval.span_recorder);
    }
    attached_disk_spans_ = true;
  }
}

ShardedEngine::~ShardedEngine() {
  // Join the lanes before anything they might touch is torn down.
  lanes_.clear();
  if (attached_disk_spans_) {
    for (size_t s = 0; s < index_->num_shards(); ++s) {
      index_->shard(s).disk().SetSpanRecorder(nullptr);
    }
  }
}

void ShardedEngine::ForfeitGlobal(const core::QueryTerm& qt,
                                  core::EvalResult* merged) const {
  const index::TermInfo& info = index_->lexicon().info(qt.term);
  merged->quality_bound += core::DocTermWeight(info.fmax, info.idf) *
                           core::QueryTermWeight(qt.fq, info.idf);
}

Result<core::EvalResult> ShardedEngine::Evaluate(
    const core::Query& query, const core::EvalControl* control,
    uint32_t query_id) {
  core::EvalResult merged;
  if (query.empty()) return merged;

  const size_t num_shards = index_->num_shards();
  const index::Lexicon& lexicon = index_->lexicon();
  obs::SpanRecorder* const spans = options_.eval.span_recorder;

  // Register this query among every shard's in-flight contexts before
  // the first fetch (shared-context mode), exactly like the unsharded
  // server does for its one pool — and make sure all of them are
  // released on every exit path.
  std::vector<uint64_t> tickets;
  if (options_.shared_context) {
    obs::ScopedSpan snapshot_span(spans, obs::SpanStage::kContextSnapshot);
    const buffer::QueryContext weights =
        core::BuildQueryContext(query, lexicon);
    tickets.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      tickets.push_back(contexts_[s]->Register(weights));
    }
  }
  struct ContextCleanup {
    ShardedEngine* engine;
    const std::vector<uint64_t>* tickets;
    ~ContextCleanup() {
      for (size_t s = 0; s < tickets->size(); ++s) {
        engine->contexts_[s]->Unregister((*tickets)[s]);
      }
    }
  } cleanup{this, &tickets};

  std::vector<core::FilteringEvaluator::TermwiseRun> runs;
  runs.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    runs.emplace_back(&evaluators_[s], pool_.shard(s));
    runs[s].Begin(query);
  }

  // Deadline probe at term boundaries, identical to the unsharded
  // evaluator's: a hit deadline never tears a term mid-barrier.
  const auto deadline_passed = [control]() {
    if (control == nullptr || control->deadline_us == 0) return false;
    uint64_t (*clock)() = control->now_us != nullptr
                              ? control->now_us
                              : &fault::MonotonicNowUs;
    return clock() >= control->deadline_us;
  };

  double smax = 0.0;
  struct SmaxSpan {
    double before;
    double after;
  };
  std::vector<SmaxSpan> trajectory;  // Per executed term (trace merge).
  size_t executed_terms = 0;

  // One term across all shards: post Step(qt, smax) on every shard's
  // lane, barrier, take the cross-shard max as the next global Smax.
  const auto step_all = [&](const core::QueryTerm& qt, double* new_smax,
                            bool* all_skipped) -> Status {
    FanOut fan(num_shards, smax);
    for (size_t s = 0; s < num_shards; ++s) {
      core::FilteringEvaluator::TermwiseRun* run = &runs[s];
      lanes_[s]->Post([&fan, run, qt, spans, query_id, smax_in = smax] {
        if (spans != nullptr) spans->SetCurrentQuery(query_id);
        fan.Complete(run->Step(qt, smax_in));
        if (spans != nullptr) {
          spans->SetCurrentQuery(obs::SpanRecorder::kNoQuery);
        }
      });
    }
    fan.Wait();
    MutexLock lock(fan.mu);
    IRBUF_RETURN_NOT_OK(fan.error);
    *new_smax = fan.smax_max;
    *all_skipped = fan.all_skipped;
    return Status::OK();
  };

  if (!options_.eval.buffer_aware) {
    // --- DF: the unsharded evaluator's static order, verbatim. ---
    const std::vector<core::QueryTerm> order =
        core::DfTermOrder(query, lexicon);
    for (size_t i = 0; i < order.size(); ++i) {
      if (deadline_passed()) {
        merged.deadline_hit = true;
        for (size_t j = i; j < order.size(); ++j) {
          ForfeitGlobal(order[j], &merged);
        }
        break;
      }
      double new_smax = 0.0;
      bool all_skipped = false;
      IRBUF_RETURN_NOT_OK(step_all(order[i], &new_smax, &all_skipped));
      trajectory.push_back(SmaxSpan{smax, new_smax});
      smax = new_smax;
      if (all_skipped) ++merged.terms_skipped;
      ++executed_terms;
    }
  } else {
    // --- BAF rounds from GLOBAL statistics: thresholds and p_t from
    // the global lexicon + conversion table (Section 3.2.2's caching),
    // b_t as the shard pools' aggregated residency. ---
    struct Candidate {
      core::QueryTerm qt;
      double cached_smax = -1.0;
      double f_add = 0.0;
      uint32_t pt = 0;
      bool done = false;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(query.size());
    for (const core::QueryTerm& qt : query.terms()) {
      candidates.push_back(Candidate{qt, -1.0, 0.0, 0, false});
    }
    const index::ConversionTable& table = index_->conversion_table();

    for (size_t round = 0; round < candidates.size(); ++round) {
      if (deadline_passed()) {
        merged.deadline_hit = true;
        for (const Candidate& cand : candidates) {
          if (!cand.done) ForfeitGlobal(cand.qt, &merged);
        }
        break;
      }
      Candidate* best = nullptr;
      uint32_t best_dt = 0;
      double best_idf = 0.0;
      for (Candidate& cand : candidates) {
        if (cand.done) continue;
        const index::TermInfo& info = lexicon.info(cand.qt.term);
        if (cand.cached_smax != smax) {
          cand.f_add =
              core::ComputeThresholds(options_.eval.c_ins,
                                      options_.eval.c_add, smax,
                                      cand.qt.fq, info.idf)
                  .f_add;
          cand.pt = table.PagesToProcess(cand.qt.term, cand.f_add,
                                         info.pages, info.fmax);
          cand.cached_smax = smax;
        }
        const uint32_t bt = pool_.ResidentPagesTotal(cand.qt.term);
        const uint32_t dt = cand.pt > bt ? cand.pt - bt : 0;
        if (best == nullptr || dt < best_dt ||
            (dt == best_dt && (info.idf > best_idf ||
                               (info.idf == best_idf &&
                                cand.qt.term < best->qt.term)))) {
          best = &cand;
          best_dt = dt;
          best_idf = info.idf;
        }
      }
      best->done = true;
      double new_smax = 0.0;
      bool all_skipped = false;
      IRBUF_RETURN_NOT_OK(step_all(best->qt, &new_smax, &all_skipped));
      trajectory.push_back(SmaxSpan{smax, new_smax});
      smax = new_smax;
      if (all_skipped) ++merged.terms_skipped;
      ++executed_terms;
    }
  }

  // Gather: per-shard normalization + top-k selection runs on the
  // lanes (it walks shard-local accumulators), then the coordinator
  // merges the partials.
  std::vector<core::EvalResult> partials(num_shards);
  {
    FanOut fan(num_shards, 0.0);
    for (size_t s = 0; s < num_shards; ++s) {
      core::FilteringEvaluator::TermwiseRun* run = &runs[s];
      core::EvalResult* out = &partials[s];
      lanes_[s]->Post([&fan, run, out, spans, query_id] {
        if (spans != nullptr) spans->SetCurrentQuery(query_id);
        *out = run->Finish();
        if (spans != nullptr) {
          spans->SetCurrentQuery(obs::SpanRecorder::kNoQuery);
        }
        fan.CompleteVoid();
      });
    }
    fan.Wait();
  }
  {
    obs::ScopedSpan merge_span(spans, obs::SpanStage::kShardMerge);
    std::vector<std::vector<core::ScoredDoc>> tops;
    tops.reserve(num_shards);
    for (core::EvalResult& partial : partials) {
      tops.push_back(std::move(partial.top_docs));
    }
    merged.top_docs =
        ScatterGatherMerger::MergeTopK(tops, options_.eval.top_n);
  }
  for (const core::EvalResult& partial : partials) {
    merged.disk_reads += partial.disk_reads;
    merged.pages_processed += partial.pages_processed;
    merged.postings_processed += partial.postings_processed;
    merged.accumulators += partial.accumulators;
    merged.pages_lost += partial.pages_lost;
    merged.quality_bound += partial.quality_bound;
  }
  merged.degraded = merged.pages_lost > 0 || merged.deadline_hit;
  if (options_.eval.record_trace) {
    // Per-term merged trace: counters summed across shards, the Smax
    // trajectory and thresholds from the coordinator's (global) view.
    // A term is "skipped" when every shard skipped it, which equals
    // the unsharded fmax <= f_add test because global fmax is the max
    // of the shard fmaxes and f_add is shared.
    merged.trace.reserve(executed_terms);
    for (size_t i = 0; i < executed_terms; ++i) {
      core::TermTrace trace = partials[0].trace[i];
      trace.total_pages = 0;
      trace.pages_processed = 0;
      trace.pages_read = 0;
      trace.postings_processed = 0;
      trace.pages_lost = 0;
      trace.skipped = true;
      for (size_t s = 0; s < num_shards; ++s) {
        const core::TermTrace& shard_trace = partials[s].trace[i];
        trace.total_pages += shard_trace.total_pages;
        trace.pages_processed += shard_trace.pages_processed;
        trace.pages_read += shard_trace.pages_read;
        trace.postings_processed += shard_trace.postings_processed;
        trace.pages_lost += shard_trace.pages_lost;
        trace.skipped = trace.skipped && shard_trace.skipped;
      }
      trace.smax_before = trajectory[i].before;
      trace.smax_after = trajectory[i].after;
      merged.trace.push_back(trace);
    }
  }
  return merged;
}

}  // namespace irbuf::shard
