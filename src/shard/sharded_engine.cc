#include "shard/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "core/scorer.h"
#include "fault/backoff.h"
#include "shard/scatter_gather.h"
#include "util/str.h"

namespace irbuf::shard {

namespace {

ShardedEngineOptions Normalize(ShardedEngineOptions options) {
  if (options.pool.span_recorder == nullptr) {
    options.pool.span_recorder = options.eval.span_recorder;
  }
  options.lanes_per_shard = std::max<size_t>(1, options.lanes_per_shard);
  return options;
}

/// Countdown barrier for one per-term fan-out, built to survive lanes
/// dropping out: the coordinator posts one Step per LIVE shard, each
/// lane Completes its own slot, and the coordinator waits with an
/// optional timeout. Results are pull-based — the coordinator snapshots
/// the slots after its wait and aggregates only the shards that had
/// completed by then — so a straggler's late completion lands in a slot
/// nobody reads: its Smax can never leak into the query, and there is
/// no count left dangling that could deadlock a future barrier.
///
/// Heap-allocated under shared ownership (coordinator + every lane
/// closure): after straggler abandonment a lane may Complete long after
/// the coordinator moved on — or returned — and must still find the
/// barrier alive.
struct FanOut {
  using StepOutcome = core::FilteringEvaluator::TermwiseRun::StepOutcome;

  struct Slot {
    bool done = false;
    bool ok = false;
    StepOutcome outcome;
    Status status;
  };

  FanOut(size_t shards, size_t expected_in)
      : expected(expected_in), slots(shards) {}

  Mutex mu;
  CondVar cv;
  /// Completions the coordinator will wait for (= steps posted).
  const size_t expected;
  size_t completed IRBUF_GUARDED_BY(mu) = 0;
  std::vector<Slot> slots IRBUF_GUARDED_BY(mu);

  void Complete(size_t shard, Result<StepOutcome> outcome)
      IRBUF_EXCLUDES(mu) {
    MutexLock lock(mu);
    Slot& slot = slots[shard];
    slot.done = true;
    if (outcome.ok()) {
      slot.ok = true;
      slot.outcome = outcome.value();
    } else {
      slot.status = outcome.status();
    }
    if (++completed >= expected) cv.NotifyAll();
  }

  void CompleteVoid(size_t shard) IRBUF_EXCLUDES(mu) {
    MutexLock lock(mu);
    slots[shard].done = true;
    slots[shard].ok = true;
    if (++completed >= expected) cv.NotifyAll();
  }

  /// Waits for all expected completions, giving up after `timeout_us`
  /// (0 = wait forever). Returns true when everyone arrived. Notifies
  /// fire only at full completion, so a timed wait that wakes early is
  /// spurious; the deadline is absolute (computed once on entry) so
  /// spurious wakeups re-arm only the REMAINING time and the soft
  /// deadline never stretches past its configured value.
  bool Wait(uint64_t timeout_us) IRBUF_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (timeout_us == 0) {
      while (completed < expected) cv.Wait(mu);
      return true;
    }
    const uint64_t deadline_us = fault::MonotonicNowUs() + timeout_us;
    while (completed < expected) {
      const uint64_t now_us = fault::MonotonicNowUs();
      if (now_us >= deadline_us) return false;
      (void)cv.WaitFor(mu, deadline_us - now_us);
    }
    return true;
  }

  /// Coordinator-side snapshot after Wait: one lock hold, then all
  /// aggregation (and breaker feeding) happens lock-free on the copy.
  std::vector<Slot> Snapshot() IRBUF_EXCLUDES(mu) {
    MutexLock lock(mu);
    return slots;
  }
};

}  // namespace

ShardLanes::ShardLanes(size_t num_lanes) {
  const size_t count = std::max<size_t>(1, num_lanes);
  lanes_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    lanes_.emplace_back([this] { LaneLoop(); });
  }
}

ShardLanes::~ShardLanes() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
}

void ShardLanes::Post(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ShardLanes::LaneLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && tasks_.empty()) cv_.Wait(mu_);
      if (tasks_.empty()) return;  // Stopping and drained.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ShardedEngine::ShardedEngine(const ShardedIndex* index,
                             ShardedEngineOptions options)
    : index_(index),
      options_(Normalize(std::move(options))),
      pool_(index, options_.pool) {
  const size_t num_shards = index_->num_shards();
  core::EvalOptions eval = options_.eval;
  eval.tracer = nullptr;
  evaluators_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    evaluators_.emplace_back(&index_->shard(s), eval);
  }
  if (options_.shared_context) {
    contexts_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      contexts_.push_back(std::make_unique<serve::SharedQueryContext>());
      contexts_[s]->Attach(pool_.shard(s));
    }
  }
  lanes_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    lanes_.push_back(std::make_unique<ShardLanes>(options_.lanes_per_shard));
  }
  if (options_.shard_breakers) {
    breakers_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      breakers_.push_back(
          std::make_unique<fault::CircuitBreaker>(options_.shard_breaker));
    }
  }
  if (options_.eval.span_recorder != nullptr) {
    // Read-side spans (CRC verify, block decode) are recorded by each
    // shard's disk; attach for the engine's lifetime, like QueryServer
    // does for the unsharded disk.
    for (size_t s = 0; s < num_shards; ++s) {
      index_->shard(s).disk().SetSpanRecorder(options_.eval.span_recorder);
    }
    attached_disk_spans_ = true;
  }
}

ShardedEngine::~ShardedEngine() {
  // Join the lanes before anything they might touch is torn down.
  lanes_.clear();
  if (attached_disk_spans_) {
    for (size_t s = 0; s < index_->num_shards(); ++s) {
      index_->shard(s).disk().SetSpanRecorder(nullptr);
    }
  }
}

void ShardedEngine::ForfeitGlobal(const core::QueryTerm& qt,
                                  core::EvalResult* merged) const {
  const index::TermInfo& info = index_->lexicon().info(qt.term);
  merged->quality_bound += core::DocTermWeight(info.fmax, info.idf) *
                           core::QueryTermWeight(qt.fq, info.idf);
}

double ShardedEngine::LostShardTermBound(size_t shard,
                                         const core::QueryTerm& qt) const {
  // Every shard-local page of the term's list could have contributed at
  // most page_max_weight * w_qt per posting-touched document — the same
  // replacement-value bound an unreadable page gets one level down.
  // w_qt uses the GLOBAL idf, matching what the shard evaluator itself
  // would have used (shards share global statistics).
  const index::InvertedIndex& local = index_->shard(shard);
  const uint32_t pages = local.lexicon().info(qt.term).pages;
  const double wq =
      core::QueryTermWeight(qt.fq, index_->lexicon().info(qt.term).idf);
  double bound = 0.0;
  for (uint32_t page_no = 0; page_no < pages; ++page_no) {
    bound += local.disk().PageMaxWeight(PageId{qt.term, page_no}) * wq;
  }
  return bound;
}

uint32_t ShardedEngine::ShardTermPages(size_t shard, TermId term) const {
  return index_->shard(shard).lexicon().info(term).pages;
}

void ShardedEngine::ForfeitShard(size_t shard, const core::Query& query,
                                 std::vector<char>* dead,
                                 core::EvalResult* merged) {
  if ((*dead)[shard] != 0) return;
  (*dead)[shard] = 1;
  ++merged->shards_lost;
  if (shards_lost_metric_ != nullptr) shards_lost_metric_->Add(1);
  // The shard's whole possible contribution is charged, executed terms
  // included: its partial (accumulators, counters, earlier per-page
  // bounds) is dropped wholesale at gather time, so the per-term page
  // bounds below cover everything it could have added to any document.
  for (const core::QueryTerm& qt : query.terms()) {
    merged->quality_bound += LostShardTermBound(shard, qt);
    merged->pages_lost += ShardTermPages(shard, qt.term);
  }
}

void ShardedEngine::BindMetrics(obs::MetricsRegistry* registry) {
  pool_.BindMetrics(registry);
  if (registry == nullptr) {
    shards_lost_metric_ = nullptr;
    for (std::unique_ptr<fault::CircuitBreaker>& breaker : breakers_) {
      breaker->BindMetrics(nullptr, nullptr);
    }
    return;
  }
  shards_lost_metric_ = registry->AddCounter(
      "engine.shards_lost",
      "shards forfeited mid-query (breaker open or straggler abandoned)");
  for (size_t s = 0; s < breakers_.size(); ++s) {
    breakers_[s]->BindMetrics(
        registry->AddCounter(StrFormat("shard%zu.breaker.trips", s),
                             "shard failure-domain breaker trips"),
        registry->AddCounter(StrFormat("shard%zu.breaker.rejects", s),
                             "term steps fail-fasted by the shard breaker"));
  }
}

Result<core::EvalResult> ShardedEngine::Evaluate(
    const core::Query& query, const core::EvalControl* control,
    uint32_t query_id) {
  core::EvalResult merged;
  if (query.empty()) return merged;

  const size_t num_shards = index_->num_shards();
  const index::Lexicon& lexicon = index_->lexicon();
  obs::SpanRecorder* const spans = options_.eval.span_recorder;

  // Register this query among every shard's in-flight contexts before
  // the first fetch (shared-context mode), exactly like the unsharded
  // server does for its one pool — and make sure all of them are
  // released on every exit path.
  std::vector<uint64_t> tickets;
  if (options_.shared_context) {
    obs::ScopedSpan snapshot_span(spans, obs::SpanStage::kContextSnapshot);
    const buffer::QueryContext weights =
        core::BuildQueryContext(query, lexicon);
    tickets.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      tickets.push_back(contexts_[s]->Register(weights));
    }
  }
  struct ContextCleanup {
    ShardedEngine* engine;
    const std::vector<uint64_t>* tickets;
    ~ContextCleanup() {
      for (size_t s = 0; s < tickets->size(); ++s) {
        engine->contexts_[s]->Unregister((*tickets)[s]);
      }
    }
  } cleanup{this, &tickets};

  // Per-query evaluation state shared with the lanes. Straggler
  // abandonment means a lane may still be inside a Step after the
  // coordinator moved on (or returned), so the runs live on the heap
  // under shared ownership and every lane closure holds a reference.
  struct QueryRuns {
    std::vector<core::FilteringEvaluator::TermwiseRun> runs;
  };
  auto shared = std::make_shared<QueryRuns>();
  shared->runs.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shared->runs.emplace_back(&evaluators_[s], pool_.shard(s));
    shared->runs[s].Begin(query, control);
  }

  // Shard liveness for THIS query: a shard goes dead when its breaker
  // rejects a term or it straggles past the soft deadline; it never
  // comes back within the query (its forfeiture already charged its
  // whole contribution).
  std::vector<char> dead(num_shards, 0);
  const auto live_count = [&dead, num_shards]() {
    size_t live = 0;
    for (size_t s = 0; s < num_shards; ++s) live += dead[s] == 0 ? 1 : 0;
    return live;
  };

  // Deadline probe at term boundaries, identical to the unsharded
  // evaluator's: a hit deadline never tears a term mid-barrier.
  const auto deadline_passed = [control]() {
    if (control == nullptr || control->deadline_us == 0) return false;
    uint64_t (*clock)() = control->now_us != nullptr
                              ? control->now_us
                              : &fault::MonotonicNowUs;
    return clock() >= control->deadline_us;
  };

  double smax = 0.0;
  struct SmaxSpan {
    double before;
    double after;
  };
  std::vector<SmaxSpan> trajectory;  // Per executed term (trace merge).
  size_t executed_terms = 0;

  // One term across the live shards: breaker admission, post one Step
  // per live shard, timed barrier, straggler forfeiture, breaker
  // feedback, cross-shard Smax max. Dead shards are excluded from the
  // barrier AND from the aggregate, so a forfeited shard contributes
  // neither staleness nor deadlock.
  const auto step_all = [&](const core::QueryTerm& qt, double* new_smax,
                            bool* all_skipped) -> Status {
    // Breaker admission: a shard whose breaker rejects the request is
    // forfeited before any work is posted. A half-open breaker admits
    // exactly one query's step as its probe; everyone else degrades.
    if (!breakers_.empty()) {
      for (size_t s = 0; s < num_shards; ++s) {
        if (dead[s] != 0) continue;
        if (!breakers_[s]->AllowRequest()) {
          ForfeitShard(s, query, &dead, &merged);
        }
      }
    }

    const size_t live = live_count();
    if (live == 0) return Status::OK();  // Caller breaks out.
    auto fan = std::make_shared<FanOut>(num_shards, live);
    for (size_t s = 0; s < num_shards; ++s) {
      if (dead[s] != 0) continue;
      core::FilteringEvaluator::TermwiseRun* run = &shared->runs[s];
      lanes_[s]->Post(
          [fan, shared, s, run, qt, spans, query_id, smax_in = smax] {
            if (spans != nullptr) spans->SetCurrentQuery(query_id);
            fan->Complete(s, run->Step(qt, smax_in));
            if (spans != nullptr) {
              spans->SetCurrentQuery(obs::SpanRecorder::kNoQuery);
            }
          });
    }
    (void)fan->Wait(options_.shard_step_soft_deadline_us);

    const std::vector<FanOut::Slot> slots = fan->Snapshot();
    double agg_smax = smax;
    bool agg_skipped = true;
    size_t completed_live = 0;
    Status first_error;  // Deferred: breaker accounting must finish.
    for (size_t s = 0; s < num_shards; ++s) {
      if (dead[s] != 0) continue;  // Was not posted this term.
      const FanOut::Slot& slot = slots[s];
      if (!slot.done) {
        // Straggler: abandoned mid-term. Its admitted request is
        // recorded as a failure (frees a half-open probe slot, pushes
        // the breaker toward a trip) and the shard is forfeited; the
        // late completion writes a slot nobody reads.
        if (!breakers_.empty()) breakers_[s]->RecordFailure();
        ForfeitShard(s, query, &dead, &merged);
        continue;
      }
      if (!breakers_.empty()) {
        // Exactly one Record* per admitted step keeps the breaker's
        // probe accounting 1:1 with AllowRequest — on the logic-error
        // path too, or a half-open probe would wedge forever. A step
        // that completed with a logic error still got a device
        // response, so it counts as a success: the window measures
        // device health, not query validity.
        if (slot.ok && slot.outcome.pages_lost > 0) {
          breakers_[s]->RecordFailure();
        } else {
          breakers_[s]->RecordSuccess();
        }
      }
      if (!slot.ok) {
        // Logic error fails the query — but only after every admitted
        // shard this term has fed its breaker outcome above.
        if (first_error.ok()) first_error = slot.status;
        continue;
      }
      ++completed_live;
      agg_smax = std::max(agg_smax, slot.outcome.smax);
      agg_skipped = agg_skipped && slot.outcome.skipped;
    }
    if (!first_error.ok()) return first_error;
    *new_smax = agg_smax;
    *all_skipped = completed_live > 0 && agg_skipped;
    return Status::OK();
  };

  if (!options_.eval.buffer_aware) {
    // --- DF: the unsharded evaluator's static order, verbatim. ---
    const std::vector<core::QueryTerm> order =
        core::DfTermOrder(query, lexicon);
    for (size_t i = 0; i < order.size(); ++i) {
      if (live_count() == 0) break;  // Every shard already charged.
      if (control != nullptr && control->max_terms > 0 &&
          i >= control->max_terms) {
        merged.work_trimmed = true;
        for (size_t j = i; j < order.size(); ++j) {
          ForfeitGlobal(order[j], &merged);
        }
        break;
      }
      if (deadline_passed()) {
        merged.deadline_hit = true;
        for (size_t j = i; j < order.size(); ++j) {
          ForfeitGlobal(order[j], &merged);
        }
        break;
      }
      double new_smax = 0.0;
      bool all_skipped = false;
      IRBUF_RETURN_NOT_OK(step_all(order[i], &new_smax, &all_skipped));
      if (live_count() == 0) break;
      trajectory.push_back(SmaxSpan{smax, new_smax});
      smax = new_smax;
      if (all_skipped) ++merged.terms_skipped;
      ++executed_terms;
    }
  } else {
    // --- BAF rounds from GLOBAL statistics: thresholds and p_t from
    // the global lexicon + conversion table (Section 3.2.2's caching),
    // b_t as the LIVE shard pools' aggregated residency. ---
    struct Candidate {
      core::QueryTerm qt;
      double cached_smax = -1.0;
      double f_add = 0.0;
      uint32_t pt = 0;
      bool done = false;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(query.size());
    for (const core::QueryTerm& qt : query.terms()) {
      candidates.push_back(Candidate{qt, -1.0, 0.0, 0, false});
    }
    const index::ConversionTable& table = index_->conversion_table();

    for (size_t round = 0; round < candidates.size(); ++round) {
      if (live_count() == 0) break;  // Every shard already charged.
      if (control != nullptr && control->max_terms > 0 &&
          round >= control->max_terms) {
        merged.work_trimmed = true;
        for (const Candidate& cand : candidates) {
          if (!cand.done) ForfeitGlobal(cand.qt, &merged);
        }
        break;
      }
      if (deadline_passed()) {
        merged.deadline_hit = true;
        for (const Candidate& cand : candidates) {
          if (!cand.done) ForfeitGlobal(cand.qt, &merged);
        }
        break;
      }
      Candidate* best = nullptr;
      uint32_t best_dt = 0;
      double best_idf = 0.0;
      for (Candidate& cand : candidates) {
        if (cand.done) continue;
        const index::TermInfo& info = lexicon.info(cand.qt.term);
        if (cand.cached_smax != smax) {
          cand.f_add =
              core::ComputeThresholds(options_.eval.c_ins,
                                      options_.eval.c_add, smax,
                                      cand.qt.fq, info.idf)
                  .f_add;
          cand.pt = table.PagesToProcess(cand.qt.term, cand.f_add,
                                         info.pages, info.fmax);
          cand.cached_smax = smax;
        }
        // b_t over live shards only: a dead shard's resident pages are
        // unreachable for this query, so counting them would starve the
        // ordering of exactly the reads it still has to do.
        uint32_t bt = 0;
        for (size_t s = 0; s < num_shards; ++s) {
          if (dead[s] == 0) bt += pool_.shard(s)->ResidentPages(cand.qt.term);
        }
        const uint32_t dt = cand.pt > bt ? cand.pt - bt : 0;
        if (best == nullptr || dt < best_dt ||
            (dt == best_dt && (info.idf > best_idf ||
                               (info.idf == best_idf &&
                                cand.qt.term < best->qt.term)))) {
          best = &cand;
          best_dt = dt;
          best_idf = info.idf;
        }
      }
      best->done = true;
      double new_smax = 0.0;
      bool all_skipped = false;
      IRBUF_RETURN_NOT_OK(step_all(best->qt, &new_smax, &all_skipped));
      if (live_count() == 0) break;
      trajectory.push_back(SmaxSpan{smax, new_smax});
      smax = new_smax;
      if (all_skipped) ++merged.terms_skipped;
      ++executed_terms;
    }
  }

  // Gather: per-shard normalization + top-k selection runs on the
  // lanes (it walks shard-local accumulators), then the coordinator
  // merges the partials. Only surviving shards are gathered; a dead
  // shard's partial was already charged wholesale to the bound. Finish
  // is CPU-only (no device reads), so the gather barrier waits
  // untimed — a live shard always completes it.
  std::vector<core::EvalResult> partials(num_shards);
  if (live_count() > 0) {
    auto fan = std::make_shared<FanOut>(num_shards, live_count());
    for (size_t s = 0; s < num_shards; ++s) {
      if (dead[s] != 0) continue;
      core::FilteringEvaluator::TermwiseRun* run = &shared->runs[s];
      core::EvalResult* out = &partials[s];
      lanes_[s]->Post([fan, shared, s, run, out, spans, query_id] {
        if (spans != nullptr) spans->SetCurrentQuery(query_id);
        *out = run->Finish();
        if (spans != nullptr) {
          spans->SetCurrentQuery(obs::SpanRecorder::kNoQuery);
        }
        fan->CompleteVoid(s);
      });
    }
    (void)fan->Wait(0);
  }
  {
    obs::ScopedSpan merge_span(spans, obs::SpanStage::kShardMerge);
    std::vector<std::vector<core::ScoredDoc>> tops;
    tops.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      if (dead[s] != 0) continue;
      tops.push_back(std::move(partials[s].top_docs));
    }
    merged.top_docs =
        ScatterGatherMerger::MergeTopK(tops, options_.eval.top_n);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (dead[s] != 0) continue;
    const core::EvalResult& partial = partials[s];
    merged.disk_reads += partial.disk_reads;
    merged.pages_processed += partial.pages_processed;
    merged.postings_processed += partial.postings_processed;
    merged.accumulators += partial.accumulators;
    merged.pages_lost += partial.pages_lost;
    merged.pages_trimmed += partial.pages_trimmed;
    merged.work_trimmed = merged.work_trimmed || partial.work_trimmed;
    merged.quality_bound += partial.quality_bound;
  }
  merged.degraded = merged.pages_lost > 0 || merged.deadline_hit ||
                    merged.work_trimmed || merged.shards_lost > 0;
  if (options_.eval.record_trace) {
    // Per-term merged trace over the SURVIVING shards: counters summed,
    // the Smax trajectory and thresholds from the coordinator's
    // (global) view. Every surviving shard participated in every
    // executed term, so their traces align row-for-row; a forfeited
    // shard's rows (possibly truncated mid-query) are dropped with its
    // partial. A term is "skipped" when every surviving shard skipped
    // it, which equals the unsharded fmax <= f_add test because global
    // fmax is the max of the shard fmaxes and f_add is shared.
    size_t first_live = num_shards;
    for (size_t s = 0; s < num_shards; ++s) {
      if (dead[s] == 0) {
        first_live = s;
        break;
      }
    }
    if (first_live < num_shards) {
      merged.trace.reserve(executed_terms);
      for (size_t i = 0; i < executed_terms; ++i) {
        core::TermTrace trace = partials[first_live].trace[i];
        trace.total_pages = 0;
        trace.pages_processed = 0;
        trace.pages_read = 0;
        trace.postings_processed = 0;
        trace.pages_lost = 0;
        trace.pages_trimmed = 0;
        trace.skipped = true;
        for (size_t s = 0; s < num_shards; ++s) {
          if (dead[s] != 0) continue;
          const core::TermTrace& shard_trace = partials[s].trace[i];
          trace.total_pages += shard_trace.total_pages;
          trace.pages_processed += shard_trace.pages_processed;
          trace.pages_read += shard_trace.pages_read;
          trace.postings_processed += shard_trace.postings_processed;
          trace.pages_lost += shard_trace.pages_lost;
          trace.pages_trimmed += shard_trace.pages_trimmed;
          trace.skipped = trace.skipped && shard_trace.skipped;
        }
        trace.smax_before = trajectory[i].before;
        trace.smax_after = trajectory[i].after;
        merged.trace.push_back(trace);
      }
    }
  }
  return merged;
}

}  // namespace irbuf::shard
