#include "shard/scatter_gather.h"

#include <algorithm>

namespace irbuf::shard {

std::vector<core::ScoredDoc> ScatterGatherMerger::MergeTopK(
    const std::vector<std::vector<core::ScoredDoc>>& partials, uint32_t n) {
  std::vector<core::ScoredDoc> merged;
  size_t total = 0;
  for (const std::vector<core::ScoredDoc>& partial : partials) {
    total += partial.size();
  }
  merged.reserve(total);
  for (const std::vector<core::ScoredDoc>& partial : partials) {
    merged.insert(merged.end(), partial.begin(), partial.end());
  }
  // The exact comparator of core::SelectTopN's answer ordering; doc ids
  // are unique across shards (a doc lives in one shard), so this is a
  // strict total order and the top n is unique.
  std::sort(merged.begin(), merged.end(),
            [](const core::ScoredDoc& a, const core::ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (merged.size() > n) merged.resize(n);
  return merged;
}

}  // namespace irbuf::shard
