#include "core/top_n.h"

#include <algorithm>
#include <queue>

namespace irbuf::core {

namespace {

// Orders worst-first so the heap top is the weakest kept answer.
struct WorseFirst {
  bool operator()(const ScoredDoc& a, const ScoredDoc& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;  // Higher doc id is "worse" on ties.
  }
};

}  // namespace

std::vector<ScoredDoc> SelectTopN(const AccumulatorSet& accumulators,
                                  const index::InvertedIndex& index,
                                  uint32_t n) {
  if (n == 0) return {};
  std::priority_queue<ScoredDoc, std::vector<ScoredDoc>, WorseFirst> heap;
  for (const auto& [doc, acc] : accumulators) {
    const double norm = index.doc_norm(doc);
    const double score = norm > 0.0 ? acc / norm : 0.0;
    ScoredDoc cand{doc, score};
    if (heap.size() < n) {
      heap.push(cand);
    } else if (WorseFirst{}(cand, heap.top())) {
      heap.pop();
      heap.push(cand);
    }
  }
  std::vector<ScoredDoc> out(heap.size());
  for (size_t i = heap.size(); i > 0; --i) {
    out[i - 1] = heap.top();
    heap.pop();
  }
  return out;
}

}  // namespace irbuf::core
