#include "core/boolean_evaluator.h"

#include <algorithm>
#include <unordered_map>

#include "core/scorer.h"

namespace irbuf::core {

Result<BooleanResult> BooleanEvaluator::Evaluate(
    const Query& query, BooleanOp op,
    buffer::BufferPool* buffers) const {
  BooleanResult result;
  if (query.empty()) return result;

  buffers->SetQueryContext(BuildQueryContext(query, index_->lexicon()));

  // doc -> number of distinct query terms containing it.
  std::unordered_map<DocId, uint32_t> matches;
  for (const QueryTerm& qt : query.terms()) {
    const index::TermInfo& info = index_->lexicon().info(qt.term);
    for (uint32_t page_no = 0; page_no < info.pages; ++page_no) {
      Result<buffer::PinnedPage> page =
          buffers->FetchPinned(PageId{qt.term, page_no});
      if (!page.ok()) return page.status();
      ++result.pages_processed;
      if (page.value().was_miss()) ++result.disk_reads;
      // Boolean matching ignores frequencies entirely, so the block's
      // doc_ids[] array is the whole working set.
      const storage::PostingBlock& block = page.value()->block;
      result.postings_processed += block.size();
      for (const DocId doc : block.doc_ids) ++matches[doc];
    }
  }

  const uint32_t needed =
      op == BooleanOp::kAnd ? static_cast<uint32_t>(query.size()) : 1;
  for (const auto& [doc, count] : matches) {
    if (count >= needed) result.docs.push_back(doc);
  }
  std::sort(result.docs.begin(), result.docs.end());

  return result;
}

}  // namespace irbuf::core
